// Command ce-check runs the full certification pathway and prints the CE
// conformity gap analysis against the standards registry: which essential
// requirements are discharged by produced evidence, which remain open, and
// whether the pathway is CE-ready. SIGINT/SIGTERM cancel the evidence run at
// its next control tick.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/worksim"
	"repro/worksim/pathway"
	"repro/worksim/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ce-check:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Int64("seed", 42, "experiment seed")
		unsecured = flag.Bool("unsecured", false, "evaluate the unsecured baseline pathway")
		evidence  = flag.Duration("evidence-run", 10*time.Minute, "attack-campaign evidence run length")
		version   = flag.Bool("version", false, "print the worksim version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("ce-check", worksim.Version)
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := pathway.Run(ctx, pathway.Options{
		Seed:        *seed,
		Secured:     !*unsecured,
		EvidenceRun: *evidence,
	})
	if err != nil {
		return err
	}

	reg := report.NewTable("Standards & regulations registry (paper Sections I-II, IV-D)",
		"id", "kind", "status", "harmonized", "topic")
	for _, e := range pathway.Standards() {
		reg.AddRow(e.ID, e.Kind.String(), e.Status.String(), e.Harmonized, e.Topic)
	}
	fmt.Print(reg.Render())
	fmt.Println()

	t := report.NewTable("CE conformity gap analysis",
		"requirement", "standard", "mandatory", "covered", "matched_by / missing")
	for _, st := range res.Conformity.Statuses {
		detail := strings.Join(st.MatchedBy, ", ")
		if !st.Covered {
			detail = "missing: " + strings.Join(st.Missing, ", ")
		}
		t.AddRow(st.Requirement.ID, st.Requirement.StandardID,
			st.Requirement.Mandatory, st.Covered, detail)
	}
	fmt.Print(t.Render())
	fmt.Println()
	fmt.Printf("Mandatory: %d/%d covered; advisory: %d/%d; readiness %.0f%%; CE-ready: %v\n",
		res.Conformity.MandatoryCovered, res.Conformity.MandatoryTotal,
		res.Conformity.AdvisoryCovered, res.Conformity.AdvisoryTotal,
		100*res.Conformity.Readiness, res.Conformity.Ready)
	return nil
}
