// Command campaign runs Monte-Carlo scenario campaigns: any subset of the
// registered experiments, fanned out over a seed range with a bounded worker
// pool, with per-metric mean / stddev / 95%-CI aggregation and optional JSON
// export.
//
// Usage:
//
//	campaign -list
//	campaign -experiments e1,e5 -seeds 8 -seed-base 1 -parallel 8
//	campaign -experiments all -seeds 16 -json results.json
//	campaign -sweep -scenarios all -profiles unsecured,secured -seeds 8
//	campaign -sweep -scenarios rf-jamming,harsh-weather -duration 5m
//	campaign -version
//
// With -sweep the campaign fans the cross-product scenario × profile × seed
// out instead of the registered experiments: -scenarios selects named
// catalog scenarios (worksim.Catalog) and -profiles the defence selections.
//
// The seed range convention is [seed-base, seed-base+seeds); with a fixed
// seed set the aggregate tables and the JSON export are byte-identical across
// repeated runs regardless of -parallel.
//
// Campaigns are cancellable: SIGINT/SIGTERM drain the worker pool (in-flight
// simulation runs stop at their next control tick) and the command exits
// with the context error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/worksim"
	"repro/worksim/experiments"
	"repro/worksim/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expList   = flag.String("experiments", "all", "comma-separated experiment IDs, or \"all\"")
		seeds     = flag.Int("seeds", 8, "number of consecutive seeds to run")
		seedBase  = flag.Int64("seed-base", 1, "first seed of the range")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size")
		duration  = flag.Duration("duration", 0, "simulated duration override (0 = experiment default)")
		trials    = flag.Int("trials", 0, "detection trials override (0 = experiment default)")
		scenarios = flag.Int("sotif-scenarios", 0, "explored SOTIF scenarios override (0 = experiment default)")
		jsonPath  = flag.String("json", "", "write the campaign results as JSON to this path (\"-\" = stdout)")
		perSeed   = flag.Bool("per-seed", false, "also print every per-seed table/figure")
		csv       = flag.Bool("csv", false, "emit aggregate tables as CSV")
		list      = flag.Bool("list", false, "list registered experiments and scenarios, then exit")
		sweep     = flag.Bool("sweep", false, "sweep scenario x profile x seed instead of running experiments")
		scenList  = flag.String("scenarios", "all", "comma-separated catalog scenario names for -sweep, or \"all\"")
		profList  = flag.String("profiles", strings.Join(worksim.Profiles(), ","), "comma-separated security profiles for -sweep")
		sample    = flag.Duration("sample", 0, "record a per-seed timeseries point every this much simulated time (-sweep only, 0 = off)")
		earlyStop = flag.String("early-stop", "", "end each -sweep run at the first tick matching this predicate (collision|unsafe|safe-stop|first-alert)")
		version   = flag.Bool("version", false, "print the worksim version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("campaign", worksim.Version)
		return nil
	}

	// Flags belong to one mode; reject cross-mode use instead of silently
	// ignoring it (-scenarios in particular used to be the SOTIF count
	// override, now -sotif-scenarios).
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !*sweep {
		for _, name := range []string{"scenarios", "profiles", "sample", "early-stop"} {
			if set[name] {
				hint := ""
				if name == "scenarios" {
					hint = " (the SOTIF count override is -sotif-scenarios)"
				}
				return fmt.Errorf("-%s requires -sweep%s", name, hint)
			}
		}
	} else {
		for _, name := range []string{"experiments", "trials", "sotif-scenarios", "per-seed"} {
			if set[name] {
				return fmt.Errorf("-%s does not apply to -sweep", name)
			}
		}
	}

	if *list {
		st, err := scenarioTable()
		if err != nil {
			return err
		}
		fmt.Print(listTable().Render())
		fmt.Println()
		fmt.Print(st.Render())
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *sweep {
		return runSweep(ctx, sweepArgs{
			scenList: *scenList, profList: *profList,
			seeds: *seeds, seedBase: *seedBase, parallel: *parallel,
			duration: *duration, sample: *sample, earlyStop: *earlyStop,
			jsonPath: *jsonPath, csv: *csv,
		})
	}
	exps, err := experiments.Default.Select(strings.Split(*expList, ","))
	if err != nil {
		return err
	}
	if len(exps) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	opts := experiments.Options{
		Seeds:    experiments.SeedRange{Base: *seedBase, Count: *seeds},
		Parallel: *parallel,
		Params:   experiments.Params{Duration: *duration, Trials: *trials, Scenarios: *scenarios},
	}

	// With -json - the JSON stream owns stdout; table renderings are
	// suppressed so the output stays parseable.
	jsonToStdout := *jsonPath == "-"

	start := time.Now()
	var results []*experiments.Result
	for _, exp := range exps {
		res, err := experiments.Run(ctx, exp, opts)
		if err != nil {
			return err
		}
		results = append(results, res)
		if jsonToStdout {
			continue
		}
		if *perSeed {
			for i, out := range res.Outcomes {
				fmt.Printf("--- %s seed %d ---\n", res.ExperimentID, res.PerSeed[i].Seed)
				for _, t := range out.Tables {
					fmt.Println(t.Render())
				}
				for _, f := range out.Figures {
					fmt.Println(f.Render())
				}
			}
		}
		t := res.Table()
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "campaign: %d experiment(s) x %d seed(s), parallel %d, %.2fs wall\n",
		len(results), *seeds, *parallel, time.Since(start).Seconds())

	if *jsonPath != "" {
		return writeJSON(*jsonPath, results)
	}
	return nil
}

type sweepArgs struct {
	scenList, profList string
	seeds              int
	seedBase           int64
	parallel           int
	duration           time.Duration
	sample             time.Duration
	earlyStop          string
	jsonPath           string
	csv                bool
}

func runSweep(ctx context.Context, a sweepArgs) error {
	split := func(s string) []string {
		var out []string
		for _, part := range strings.Split(s, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
		return out
	}
	stop, err := worksim.EarlyStopByName(a.earlyStop)
	if err != nil {
		return err
	}
	opts := worksim.SweepOptions{
		Scenarios:   split(a.scenList),
		Profiles:    split(a.profList),
		Seeds:       worksim.SeedRange{Base: a.seedBase, Count: a.seeds},
		Parallel:    a.parallel,
		Duration:    a.duration,
		SampleEvery: a.sample,
		EarlyStop:   stop,
	}
	start := time.Now()
	res, err := worksim.Sweep(ctx, opts)
	if err != nil {
		return err
	}
	jsonToStdout := a.jsonPath == "-"
	if !jsonToStdout {
		t := res.Table()
		if a.csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: sweep of %d cell(s) x %d seed(s), parallel %d, %.2fs wall\n",
		len(res.Cells), a.seeds, a.parallel, time.Since(start).Seconds())
	if a.jsonPath != "" {
		j, err := res.JSON()
		if err != nil {
			return err
		}
		if jsonToStdout {
			_, err = os.Stdout.Write(append(j, '\n'))
			return err
		}
		return os.WriteFile(a.jsonPath, append(j, '\n'), 0o644)
	}
	return nil
}

func listTable() *report.Table {
	t := report.NewTable("registered experiments", "id", "section", "description")
	for _, e := range experiments.Default.All() {
		t.AddRow(e.ID, e.Section, e.Description)
	}
	return t
}

func scenarioTable() (*report.Table, error) {
	t := report.NewTable("scenario catalog (for -sweep / worksite-sim -scenario)", "name", "description")
	for _, name := range worksim.Catalog() {
		s, err := worksim.Lookup(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, s.Description)
	}
	return t, nil
}

func writeJSON(path string, results []*experiments.Result) error {
	var b strings.Builder
	b.WriteString("[\n")
	for i, r := range results {
		j, err := r.JSON()
		if err != nil {
			return err
		}
		b.Write(j)
		if i < len(results)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	if path == "-" {
		_, err := os.Stdout.WriteString(b.String())
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
