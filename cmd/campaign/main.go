// Command campaign runs Monte-Carlo scenario campaigns: any subset of the
// registered experiments, fanned out over a seed range with a bounded worker
// pool, with per-metric mean / stddev / 95%-CI aggregation and optional JSON
// export.
//
// Usage:
//
//	campaign -list
//	campaign -experiments e1,e5 -seeds 8 -seed-base 1 -parallel 8
//	campaign -experiments all -seeds 16 -json results.json
//	campaign -sweep -scenarios all -profiles unsecured,secured -seeds 8
//	campaign -sweep -scenarios rf-jamming,harsh-weather -duration 5m
//	campaign -sweep -shard 0/4 -checkpoint state/ -cache cache/ -json shard0.json
//	campaign -merge shard0.json shard1.json shard2.json shard3.json
//	campaign -version
//
// With -sweep the campaign fans the cross-product scenario × profile × seed
// out instead of the registered experiments: -scenarios selects named
// catalog scenarios (worksim.Catalog) and -profiles the defence selections.
//
// Sweeps scale out: -shard i/N runs only the runs shard i owns under the
// stable hash partition (each shard in its own process), -cache dir serves
// repeated runs from a content-addressed result cache, and -checkpoint dir
// journals completed runs so a killed campaign resumes at its watermark.
// -merge combines the shard result files into output byte-identical to the
// single-process sweep. Progress and statistics go to stderr, so `-json -`
// output on stdout pipes straight into -merge.
//
// The seed range convention is [seed-base, seed-base+seeds); with a fixed
// seed set the aggregate tables and the JSON export are byte-identical across
// repeated runs regardless of -parallel, -shard, or cache state.
//
// Campaigns are cancellable: SIGINT/SIGTERM drain the worker pool (in-flight
// simulation runs stop at their next control tick) and the command exits
// with the context error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/worksim"
	"repro/worksim/experiments"
	"repro/worksim/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expList   = flag.String("experiments", "all", "comma-separated experiment IDs, or \"all\"")
		seeds     = flag.Int("seeds", 8, "number of consecutive seeds to run")
		seedBase  = flag.Int64("seed-base", 1, "first seed of the range")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size")
		duration  = flag.Duration("duration", 0, "simulated duration override (0 = experiment default)")
		trials    = flag.Int("trials", 0, "detection trials override (0 = experiment default)")
		scenarios = flag.Int("sotif-scenarios", 0, "explored SOTIF scenarios override (0 = experiment default)")
		jsonPath  = flag.String("json", "", "write the campaign results as JSON to this path (\"-\" = stdout)")
		perSeed   = flag.Bool("per-seed", false, "also print every per-seed table/figure")
		csv       = flag.Bool("csv", false, "emit aggregate tables as CSV")
		list      = flag.Bool("list", false, "list registered experiments and scenarios, then exit")
		sweep     = flag.Bool("sweep", false, "sweep scenario x profile x seed instead of running experiments")
		scenList  = flag.String("scenarios", "all", "comma-separated catalog scenario names for -sweep, or \"all\"")
		profList  = flag.String("profiles", strings.Join(worksim.Profiles(), ","), "comma-separated security profiles for -sweep")
		sample    = flag.Duration("sample", 0, "record a per-seed timeseries point every this much simulated time (-sweep only, 0 = off)")
		earlyStop = flag.String("early-stop", "", "end each -sweep run at the first tick matching this predicate (collision|unsafe|safe-stop|first-alert)")
		shardSel  = flag.String("shard", "", "run only shard i of N of the sweep, as \"i/N\" (-sweep only)")
		cacheDir  = flag.String("cache", "", "serve repeated runs from a content-addressed result cache rooted here (-sweep only)")
		ckptDir   = flag.String("checkpoint", "", "journal completed runs here and resume a killed campaign from its watermark (-sweep only)")
		merge     = flag.Bool("merge", false, "merge sharded sweep result files (the positional args) into one sweep result on stdout")
		version   = flag.Bool("version", false, "print the worksim version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("campaign", worksim.Version)
		return nil
	}

	// Flags belong to one mode; reject cross-mode use instead of silently
	// ignoring it (-scenarios in particular used to be the SOTIF count
	// override, now -sotif-scenarios).
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *merge {
		for _, name := range []string{"sweep", "experiments", "trials", "sotif-scenarios", "per-seed",
			"scenarios", "profiles", "sample", "early-stop", "shard", "cache", "checkpoint",
			"seeds", "seed-base", "parallel", "duration", "csv"} {
			if set[name] {
				return fmt.Errorf("-%s does not apply to -merge", name)
			}
		}
		return runMerge(flag.Args(), *jsonPath)
	}
	if !*sweep {
		for _, name := range []string{"scenarios", "profiles", "sample", "early-stop", "shard", "cache", "checkpoint"} {
			if set[name] {
				hint := ""
				if name == "scenarios" {
					hint = " (the SOTIF count override is -sotif-scenarios)"
				}
				return fmt.Errorf("-%s requires -sweep%s", name, hint)
			}
		}
	} else {
		for _, name := range []string{"experiments", "trials", "sotif-scenarios", "per-seed"} {
			if set[name] {
				return fmt.Errorf("-%s does not apply to -sweep", name)
			}
		}
	}

	if *list {
		st, err := scenarioTable()
		if err != nil {
			return err
		}
		fmt.Print(listTable().Render())
		fmt.Println()
		fmt.Print(st.Render())
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *sweep {
		return runSweep(ctx, sweepArgs{
			scenList: *scenList, profList: *profList,
			seeds: *seeds, seedBase: *seedBase, parallel: *parallel,
			duration: *duration, sample: *sample, earlyStop: *earlyStop,
			shard: *shardSel, cacheDir: *cacheDir, ckptDir: *ckptDir,
			jsonPath: *jsonPath, csv: *csv,
		})
	}
	exps, err := experiments.Default.Select(strings.Split(*expList, ","))
	if err != nil {
		return err
	}
	if len(exps) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	opts := experiments.Options{
		Seeds:    experiments.SeedRange{Base: *seedBase, Count: *seeds},
		Parallel: *parallel,
		Params:   experiments.Params{Duration: *duration, Trials: *trials, Scenarios: *scenarios},
	}

	// With -json - the JSON stream owns stdout; table renderings are
	// suppressed so the output stays parseable.
	jsonToStdout := *jsonPath == "-"

	start := time.Now()
	var results []*experiments.Result
	for _, exp := range exps {
		res, err := experiments.Run(ctx, exp, opts)
		if err != nil {
			return err
		}
		results = append(results, res)
		if jsonToStdout {
			continue
		}
		if *perSeed {
			for i, out := range res.Outcomes {
				fmt.Printf("--- %s seed %d ---\n", res.ExperimentID, res.PerSeed[i].Seed)
				for _, t := range out.Tables {
					fmt.Println(t.Render())
				}
				for _, f := range out.Figures {
					fmt.Println(f.Render())
				}
			}
		}
		t := res.Table()
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "campaign: %d experiment(s) x %d seed(s), parallel %d, %.2fs wall\n",
		len(results), *seeds, *parallel, time.Since(start).Seconds())

	if *jsonPath != "" {
		return writeJSON(*jsonPath, results)
	}
	return nil
}

type sweepArgs struct {
	scenList, profList string
	seeds              int
	seedBase           int64
	parallel           int
	duration           time.Duration
	sample             time.Duration
	earlyStop          string
	shard              string
	cacheDir           string
	ckptDir            string
	jsonPath           string
	csv                bool
}

func runSweep(ctx context.Context, a sweepArgs) error {
	split := func(s string) []string {
		var out []string
		for _, part := range strings.Split(s, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
		return out
	}
	stop, err := worksim.EarlyStopByName(a.earlyStop)
	if err != nil {
		return err
	}
	var sel worksim.ShardSel
	if a.shard != "" {
		if sel, err = worksim.ParseShard(a.shard); err != nil {
			return err
		}
	}
	var stats worksim.SweepStats
	opts := worksim.SweepOptions{
		Scenarios:     split(a.scenList),
		Profiles:      split(a.profList),
		Seeds:         worksim.SeedRange{Base: a.seedBase, Count: a.seeds},
		Parallel:      a.parallel,
		Duration:      a.duration,
		SampleEvery:   a.sample,
		EarlyStop:     stop,
		EarlyStopName: a.earlyStop,
		Shard:         sel,
		CacheDir:      a.cacheDir,
		CheckpointDir: a.ckptDir,
		Stats:         &stats,
	}
	start := time.Now()
	res, err := worksim.Sweep(ctx, opts)
	if err != nil {
		return err
	}
	jsonToStdout := a.jsonPath == "-"
	if !jsonToStdout {
		t := res.Table()
		if a.csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
	}
	// Progress and statistics go to stderr only, so `-json -` keeps stdout
	// parseable (and pipeable into -merge).
	fmt.Fprintf(os.Stderr, "campaign: sweep of %d cell(s) x %d seed(s), parallel %d, %.2fs wall\n",
		len(res.Cells), a.seeds, a.parallel, time.Since(start).Seconds())
	sv := stats.View()
	fmt.Fprintf(os.Stderr, "campaign: sweep stats: executed=%d resumed=%d cacheHits=%d cacheMisses=%d cacheCorrupt=%d\n",
		sv.Executed, sv.Resumed, sv.CacheHits, sv.CacheMisses, sv.CacheCorrupt)
	if a.jsonPath != "" {
		j, err := res.JSON()
		if err != nil {
			return err
		}
		if jsonToStdout {
			_, err = os.Stdout.Write(append(j, '\n'))
			return err
		}
		return os.WriteFile(a.jsonPath, append(j, '\n'), 0o644)
	}
	return nil
}

// runMerge combines sharded sweep result files into the single result an
// unsharded sweep would have produced. Output goes to stdout (or -json
// path); it is byte-identical to the single-process sweep's -json export.
func runMerge(paths []string, jsonPath string) error {
	if len(paths) < 1 {
		return fmt.Errorf("-merge needs at least one shard result file argument")
	}
	blobs := make([][]byte, 0, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		blobs = append(blobs, b)
	}
	merged, out, err := worksim.MergeSweepJSON(blobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign: merged %d shard(s): %d cell(s), %s\n",
		len(paths), len(merged.Cells), merged.Seeds)
	if jsonPath != "" && jsonPath != "-" {
		return os.WriteFile(jsonPath, append(out, '\n'), 0o644)
	}
	_, err = os.Stdout.Write(append(out, '\n'))
	return err
}

func listTable() *report.Table {
	t := report.NewTable("registered experiments", "id", "section", "description")
	for _, e := range experiments.Default.All() {
		t.AddRow(e.ID, e.Section, e.Description)
	}
	return t
}

func scenarioTable() (*report.Table, error) {
	t := report.NewTable("scenario catalog (for -sweep / worksite-sim -scenario)", "name", "description")
	for _, name := range worksim.Catalog() {
		s, err := worksim.Lookup(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, s.Description)
	}
	return t, nil
}

func writeJSON(path string, results []*experiments.Result) error {
	var b strings.Builder
	b.WriteString("[\n")
	for i, r := range results {
		j, err := r.JSON()
		if err != nil {
			return err
		}
		b.Write(j)
		if i < len(results)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	if path == "-" {
		_, err := os.Stdout.WriteString(b.String())
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
