// Command worksite-sim runs the Fig. 1 forestry worksite simulation: an
// autonomous forwarder hauling logs between the harvest site and the landing
// area, observed by a drone, optionally under attack and optionally hardened
// with the full security stack.
//
// Usage:
//
//	worksite-sim [-seed N] [-duration 30m] [-secured] [-scenario NAME] [-json]
//	worksite-sim -scenario-file spec.json
//	worksite-sim -attack NAME        # sugar for -scenario NAME
//	worksite-sim -list-scenarios
//
// Scenarios come from the named catalog in internal/scenario (run with
// -list-scenarios to enumerate them) or from a JSON spec file. The accepted
// -attack names are derived from the scenario arming registry, so the help
// text can never drift from the implemented attack classes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/worksite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worksite-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 42, "experiment seed")
		duration = flag.Duration("duration", 30*time.Minute, "simulated duration")
		secured  = flag.Bool("secured", false, "enable the full security stack")
		scenName = flag.String("scenario", "", "named catalog scenario to run (see -list-scenarios)")
		specFile = flag.String("scenario-file", "", "JSON scenario spec file (fields overlay the baseline)")
		attackNm = flag.String("attack", "none",
			"attack scenario sugar (accepted: none|"+strings.Join(scenario.AttackNames(), "|")+")")
		asJSON   = flag.Bool("json", false, "emit the report as JSON")
		showMap  = flag.Bool("map", false, "print the ASCII worksite map before and after the run")
		timeline = flag.Int("timeline", 0, "print up to N operational timeline events after the run")
		listScen = flag.Bool("list-scenarios", false, "list the scenario catalog and exit")
	)
	flag.Parse()

	if *listScen {
		t := report.NewTable("scenario catalog", "name", "attacks", "description")
		for _, name := range scenario.List() {
			s, err := scenario.Get(name)
			if err != nil {
				return err
			}
			t.AddRow(name, len(s.Attacks), s.Description)
		}
		fmt.Print(t.Render())
		return nil
	}

	spec, err := resolveSpec(*scenName, *specFile, *attackNm)
	if err != nil {
		return err
	}
	if *secured {
		spec.Profile = worksite.Secured()
	}

	site, _, err := scenario.Build(spec, *seed, *duration)
	if err != nil {
		return err
	}
	if *showMap {
		fmt.Print(site.RenderMap(100))
		fmt.Println()
	}
	rep, err := site.Run(*duration)
	if err != nil {
		return err
	}
	if *showMap {
		fmt.Print(site.RenderMap(100))
		fmt.Println()
	}
	if *timeline > 0 {
		fmt.Print(site.RenderTimeline(*timeline))
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(rep, spec)
	return nil
}

// resolveSpec picks the scenario source: an explicit spec file wins, then a
// named catalog scenario, then the -attack sugar (which resolves through the
// same catalog; "none" is the clean baseline).
func resolveSpec(scenName, specFile, attackNm string) (scenario.Spec, error) {
	switch {
	case specFile != "":
		return scenario.LoadFile(specFile)
	case scenName != "":
		return scenario.Get(scenName)
	default:
		return scenario.ForAttack(attackNm)
	}
}

func printReport(rep worksite.Report, spec scenario.Spec) {
	var profile string
	switch spec.Profile {
	case worksite.Unsecured():
		profile = "unsecured"
	case worksite.Secured():
		profile = "secured"
	default:
		profile = "custom"
	}
	m := rep.Metrics
	t := report.NewTable(
		fmt.Sprintf("Worksite run: %v simulated, profile=%s, scenario=%s", rep.Duration, profile, spec.Name),
		"metric", "value")
	t.AddRow("logs delivered", m.LogsDelivered)
	t.AddRow("empty deliveries", m.EmptyDeliveries)
	t.AddRow("distance (m)", m.DistanceM)
	t.AddRow("safety stops", m.SafetyStops)
	t.AddRow("time stopped", m.StoppedFor.String())
	t.AddRow("unsafe episodes", m.UnsafeEpisodes)
	t.AddRow("collisions", m.Collisions)
	t.AddRow("min worker distance (m)", m.MinWorkerDistM)
	t.AddRow("nav error max (m)", m.NavErrMaxM)
	t.AddRow("forged commands applied", m.CommandsApplied)
	t.AddRow("forgeries blocked", m.ForgeriesBlocked)
	t.AddRow("replays blocked", m.ReplaysBlocked)
	fmt.Print(t.Render())

	if len(rep.Alerts) > 0 {
		at := report.NewTable("IDS alerts", "type", "count")
		for k, v := range rep.Alerts {
			at.AddRow(k, v)
		}
		fmt.Println()
		fmt.Print(at.Render())
	}
}
