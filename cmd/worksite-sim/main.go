// Command worksite-sim runs the Fig. 1 forestry worksite simulation: an
// autonomous forwarder hauling logs between the harvest site and the landing
// area, observed by a drone, optionally under attack and optionally hardened
// with the full security stack.
//
// Usage:
//
//	worksite-sim [-seed N] [-duration 30m] [-secured] [-attack NAME] [-json]
//
// Attack names: none, rf-jamming, deauth-flood, gnss-spoof, gnss-jam,
// camera-blind, command-injection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/geo"
	"repro/internal/report"
	"repro/internal/worksite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worksite-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 42, "experiment seed")
		duration = flag.Duration("duration", 30*time.Minute, "simulated duration")
		secured  = flag.Bool("secured", false, "enable the full security stack")
		attackNm = flag.String("attack", "none", "attack to run (none|rf-jamming|deauth-flood|gnss-spoof|gnss-jam|camera-blind|command-injection)")
		asJSON   = flag.Bool("json", false, "emit the report as JSON")
		showMap  = flag.Bool("map", false, "print the ASCII worksite map before and after the run")
		timeline = flag.Int("timeline", 0, "print up to N operational timeline events after the run")
	)
	flag.Parse()

	cfg := worksite.DefaultConfig(*seed)
	if *secured {
		cfg.Profile = worksite.Secured()
	}
	site, err := worksite.New(cfg)
	if err != nil {
		return err
	}
	if err := armAttack(site, *attackNm, *duration); err != nil {
		return err
	}
	if *showMap {
		fmt.Print(site.RenderMap(100))
		fmt.Println()
	}
	rep, err := site.Run(*duration)
	if err != nil {
		return err
	}
	if *showMap {
		fmt.Print(site.RenderMap(100))
		fmt.Println()
	}
	if *timeline > 0 {
		fmt.Print(site.RenderTimeline(*timeline))
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(rep, *attackNm, *secured)
	return nil
}

func armAttack(site *worksite.Site, name string, d time.Duration) error {
	if name == "none" {
		return nil
	}
	start, stop := d/10, d*8/10
	c := attack.NewCampaign()
	switch name {
	case "rf-jamming":
		mid := geo.V(0.5*site.Grid().Width(), 0.5*site.Grid().Height())
		c.Add(start, stop, attack.NewJamming(site.Medium(), "jam", mid, 1, 38, true))
	case "deauth-flood":
		c.Add(start, stop, attack.NewDeauthFlood(
			site.AttackerAdapter(), worksite.NodeForwarder, worksite.NodeCoordinator, 200*time.Millisecond))
	case "gnss-spoof":
		c.Add(start, stop, attack.NewGNSSSpoof(site.ForwarderGNSS(), geo.V(60, 40)))
	case "gnss-jam":
		c.Add(start, stop, attack.NewGNSSJam(site.ForwarderGNSS()))
	case "camera-blind":
		c.Add(start, stop, attack.NewCameraBlind("camera-blind", func(b bool) {
			site.ForwarderCamera().Blinded = b
		}))
	case "command-injection":
		c.Add(start, stop, attack.NewCommandInjection(
			site.AttackerAdapter(), worksite.NodeCoordinator, worksite.NodeForwarder,
			func() []byte {
				return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`)
			}, time.Second))
	default:
		return fmt.Errorf("unknown attack %q", name)
	}
	c.Schedule(site.Scheduler())
	return nil
}

func printReport(rep worksite.Report, attackNm string, secured bool) {
	profile := "unsecured"
	if secured {
		profile = "secured"
	}
	m := rep.Metrics
	t := report.NewTable(
		fmt.Sprintf("Worksite run: %v simulated, profile=%s, attack=%s", rep.Duration, profile, attackNm),
		"metric", "value")
	t.AddRow("logs delivered", m.LogsDelivered)
	t.AddRow("empty deliveries", m.EmptyDeliveries)
	t.AddRow("distance (m)", m.DistanceM)
	t.AddRow("safety stops", m.SafetyStops)
	t.AddRow("time stopped", m.StoppedFor.String())
	t.AddRow("unsafe episodes", m.UnsafeEpisodes)
	t.AddRow("collisions", m.Collisions)
	t.AddRow("min worker distance (m)", m.MinWorkerDistM)
	t.AddRow("nav error max (m)", m.NavErrMaxM)
	t.AddRow("forged commands applied", m.CommandsApplied)
	t.AddRow("forgeries blocked", m.ForgeriesBlocked)
	t.AddRow("replays blocked", m.ReplaysBlocked)
	fmt.Print(t.Render())

	if len(rep.Alerts) > 0 {
		at := report.NewTable("IDS alerts", "type", "count")
		for k, v := range rep.Alerts {
			at.AddRow(k, v)
		}
		fmt.Println()
		fmt.Print(at.Render())
	}
}
