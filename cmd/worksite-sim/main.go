// Command worksite-sim runs the Fig. 1 forestry worksite simulation: an
// autonomous forwarder hauling logs between the harvest site and the landing
// area, observed by a drone, optionally under attack and optionally hardened
// with the full security stack.
//
// Usage:
//
//	worksite-sim [-seed N] [-duration 30m] [-secured] [-scenario NAME] [-json]
//	worksite-sim -scenario-file spec.json
//	worksite-sim -attack NAME        # sugar for -scenario NAME
//	worksite-sim -trace -            # stream events as JSON lines to stdout
//	worksite-sim -list-scenarios
//	worksite-sim -version
//
// Scenarios come from the worksim catalog (run with -list-scenarios to
// enumerate them) or from a JSON spec file. The accepted -attack names are
// derived from the attack registry, so the help text can never drift from
// the implemented attack classes.
//
// With -trace PATH ("-" = stdout) the run streams its typed event feed —
// per-tick snapshots, IDS alerts, attack phase transitions, security
// responses, mode changes, mission transitions and safety events — as JSON
// lines of the form {"event": KIND, "data": {...}}, one per event, in
// simulation order. Combined with -json the machine-readable trace and
// report cover a single run end to end.
//
// The run is cancellable: SIGINT/SIGTERM stop the simulation at the next
// control tick and the command exits with the context error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/worksim"
	"repro/worksim/report"
	"repro/worksim/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worksite-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 42, "experiment seed")
		duration = flag.Duration("duration", 30*time.Minute, "simulated duration")
		secured  = flag.Bool("secured", false, "enable the full security stack")
		scenName = flag.String("scenario", "", "named catalog scenario to run (see -list-scenarios)")
		specFile = flag.String("scenario-file", "", "JSON scenario spec file (fields overlay the baseline)")
		attackNm = flag.String("attack", "none",
			"attack scenario sugar (accepted: none|"+strings.Join(worksim.AttackNames(), "|")+")")
		asJSON   = flag.Bool("json", false, "emit the report as JSON")
		traceTo  = flag.String("trace", "", "stream run events as JSON lines to this path (\"-\" = stdout)")
		showMap  = flag.Bool("map", false, "print the ASCII worksite map before and after the run")
		timeline = flag.Int("timeline", 0, "print up to N operational timeline events after the run")
		listScen = flag.Bool("list-scenarios", false, "list the scenario catalog and exit")
		version  = flag.Bool("version", false, "print the worksim version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("worksite-sim", worksim.Version)
		return nil
	}
	if *listScen {
		t := report.NewTable("scenario catalog", "name", "attacks", "description")
		for _, name := range worksim.Catalog() {
			s, err := worksim.Lookup(name)
			if err != nil {
				return err
			}
			t.AddRow(name, len(s.Attacks), s.Description)
		}
		fmt.Print(t.Render())
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec, err := resolveSpec(*scenName, *specFile, *attackNm)
	if err != nil {
		return err
	}
	opts := []worksim.Option{worksim.WithSeed(*seed), worksim.WithHorizon(*duration)}
	if *secured {
		opts = append(opts, worksim.WithProfile(worksim.Secured()))
	}

	sess, err := worksim.Open(spec, opts...)
	if err != nil {
		return err
	}
	closeTrace := func() error { return nil }
	if *traceTo != "" {
		if closeTrace, err = subscribeTrace(sess, *traceTo); err != nil {
			return err
		}
	}
	if *showMap {
		fmt.Print(sess.RenderMap(100))
		fmt.Println()
	}
	rep, runErr := sess.Run(ctx)
	// Flush the event stream unconditionally — on cancellation the buffered
	// tail of the trace is the most diagnostic part, and flushing before any
	// report rendering keeps a stdout trace from interleaving with the
	// tables. A SIGINT mid-run therefore never truncates the last event
	// line. The run error still wins over a flush error.
	if err := closeTrace(); err != nil && runErr == nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	if *showMap {
		fmt.Print(sess.RenderMap(100))
		fmt.Println()
	}
	if *timeline > 0 {
		fmt.Print(sess.RenderTimeline(*timeline))
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(rep, spec)
	return nil
}

// subscribeTrace attaches the shared JSON-lines event writer
// (worksim/trace — the same encoder behind worksimd's SSE stream) to the
// session. Every typed event becomes one line: {"event": KIND, "data":
// {...}}. The returned func flushes (and closes, for files) the sink; it is
// idempotent, so callers can flush on every exit path without bookkeeping.
func subscribeTrace(sess *worksim.Session, path string) (func() error, error) {
	var (
		sink io.Writer
		file *os.File
	)
	if path == "-" {
		sink = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		file, sink = f, f
	}
	w := trace.NewWriter(sink)
	sess.Subscribe(w.Observer())
	closed := false
	return func() error {
		if err := w.Flush(); err != nil {
			return err
		}
		if file != nil && !closed {
			closed = true
			return file.Close()
		}
		return nil
	}, nil
}

// resolveSpec picks the scenario source: an explicit spec file wins, then a
// named catalog scenario, then the -attack sugar (which resolves through the
// same catalog; "none" is the clean baseline).
func resolveSpec(scenName, specFile, attackNm string) (worksim.Scenario, error) {
	switch {
	case specFile != "":
		return worksim.LoadSpec(specFile)
	case scenName != "":
		return worksim.Lookup(scenName)
	default:
		return worksim.ForAttack(attackNm)
	}
}

func printReport(rep worksim.Report, spec worksim.Scenario) {
	// The report's config carries the profile that actually ran (options may
	// have overridden the spec's own).
	var profile string
	switch rep.Config.Profile {
	case worksim.Unsecured():
		profile = "unsecured"
	case worksim.Secured():
		profile = "secured"
	default:
		profile = "custom"
	}
	m := rep.Metrics
	t := report.NewTable(
		fmt.Sprintf("Worksite run: %v simulated, profile=%s, scenario=%s", rep.Duration, profile, spec.Name),
		"metric", "value")
	t.AddRow("logs delivered", m.LogsDelivered)
	t.AddRow("empty deliveries", m.EmptyDeliveries)
	t.AddRow("distance (m)", m.DistanceM)
	t.AddRow("safety stops", m.SafetyStops)
	t.AddRow("time stopped", m.StoppedFor.String())
	t.AddRow("unsafe episodes", m.UnsafeEpisodes)
	t.AddRow("collisions", m.Collisions)
	t.AddRow("min worker distance (m)", m.MinWorkerDistM)
	t.AddRow("nav error max (m)", m.NavErrMaxM)
	t.AddRow("forged commands applied", m.CommandsApplied)
	t.AddRow("forgeries blocked", m.ForgeriesBlocked)
	t.AddRow("replays blocked", m.ReplaysBlocked)
	fmt.Print(t.Render())

	if len(rep.Alerts) > 0 {
		at := report.NewTable("IDS alerts", "type", "count")
		report.AddCountRows(at, rep.Alerts)
		fmt.Println()
		fmt.Print(at.Render())
	}
	if len(rep.Radio) > 0 {
		rt := report.NewTable("Radio drops", "cause", "count")
		report.AddCountRows(rt, rep.Radio)
		fmt.Println()
		fmt.Print(rt.Render())
	}
}
