// Command worksimlint runs the repository's static-analysis suite — the
// seven analyzers that make the simulator's core invariants structural:
// determinism (no wall clock / ambient randomness / map-ordered output in
// simulation packages), facadeboundary (cmd/ and examples/ use only the
// public repro/worksim... façade; internal/ never imports it back),
// ctxdiscipline (leading context.Context on exported blocking façade APIs;
// //worksim:tickloop loops check cancellation), hotpath (allocation sources
// inside //worksim:hotpath functions), gohygiene (every go statement in the
// simulation packages is join-tracked), syncmisuse (sync primitives copied
// by value, fields mixing atomic and plain access, time.Sleep in tick
// loops), and escapebudget (the gc compiler's own escape/inlining
// diagnostics gated per hot-path function against lint/escape_budget.json
// with ratchet semantics).
//
// Usage:
//
//	worksimlint [packages]      # analyze packages (default ./...)
//	worksimlint -list           # list the analyzers, then exit
//	worksimlint -json           # machine-readable diagnostics
//	worksimlint -audit          # emit the //worksim:allow suppression ledger
//	worksimlint -update-budget  # re-record lint/escape_budget.json, then exit
//
// Diagnostics print as file:line:col: [analyzer] message — sorted by
// (file, line, col, analyzer) and root-relative, so two runs over the same
// tree are byte-identical — and any finding makes the process exit 1, so
// `go run ./cmd/worksimlint ./...` doubles as the CI gate. Suppress a
// deliberate exception at its line (or the line above) with
// `//worksim:allow <reason>`; -audit prints every such directive with the
// analyzers it suppresses as JSON and fails on directives that are bare or
// suppress nothing, so the exception inventory stays reviewable.
//
// The escapebudget analyzer ratchets in both directions: a hot-path
// function that gains a heap escape fails, and one that loses an escape
// also fails until the improvement is locked in with -update-budget.
//
// worksimlint deliberately imports only repro/internal/analysis: it is a
// build-time tool, not a simulation client, so the facadeboundary rule
// exempts nothing for it — it never touches the engine at all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis" //worksim:allow build-time lint tool, not an engine client; the façade rule for cmd/ intentionally does not cover the linter itself
)

func main() {
	var (
		list         = flag.Bool("list", false, "list the analyzer suite, then exit")
		jsonOut      = flag.Bool("json", false, "emit diagnostics as JSON")
		exitZero     = flag.Bool("exit-zero", false, "always exit 0 (report-only mode)")
		audit        = flag.Bool("audit", false, "emit the //worksim:allow suppression ledger as JSON; fail on bare or orphaned directives")
		updateBudget = flag.Bool("update-budget", false, "re-record lint/escape_budget.json for the loaded packages, then exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fatalf("%v", err)
	}

	if *updateBudget {
		n, err := analysis.UpdateEscapeBudget(root, pkgs)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "worksimlint: recorded escape budgets for %d hot-path function(s) in %s\n", n, analysis.EscapeBudgetPath)
		return
	}

	if *audit {
		report, failures, err := analysis.Audit(root, pkgs, analysis.All())
		if err != nil {
			fatalf("%v", err)
		}
		if err := analysis.EncodeAuditReport(os.Stdout, report); err != nil {
			fatalf("%v", err)
		}
		for _, d := range failures {
			fmt.Fprintln(os.Stderr, analysis.FormatDiagnostic(root, d))
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "worksimlint: %d suppression-ledger failure(s)\n", len(failures))
			if !*exitZero {
				os.Exit(1)
			}
		}
		return
	}

	diags, err := analysis.RunRoot(root, pkgs, analysis.All())
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonOut {
		if err := analysis.EncodeDiagnostics(os.Stdout, root, diags); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(analysis.FormatDiagnostic(root, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "worksimlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		if !*exitZero {
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "worksimlint: "+format+"\n", args...)
	os.Exit(2)
}
