// Command worksimlint runs the repository's static-analysis suite — the
// four analyzers that make the simulator's core invariants structural:
// determinism (no wall clock / ambient randomness / map-ordered output in
// simulation packages), facadeboundary (cmd/ and examples/ use only the
// public repro/worksim... façade; internal/ never imports it back),
// ctxdiscipline (leading context.Context on exported blocking façade APIs;
// //worksim:tickloop loops check cancellation), and hotpath (allocation
// sources inside //worksim:hotpath functions).
//
// Usage:
//
//	worksimlint [packages]      # analyze packages (default ./...)
//	worksimlint -list           # list the analyzers, then exit
//	worksimlint -json           # machine-readable diagnostics
//
// Diagnostics print as file:line:col: [analyzer] message and any finding
// makes the process exit 1, so `go run ./cmd/worksimlint ./...` doubles as
// the CI gate. Suppress a deliberate exception at its line (or the line
// above) with `//worksim:allow <reason>`.
//
// worksimlint deliberately imports only repro/internal/analysis: it is a
// build-time tool, not a simulation client, so the facadeboundary rule
// exempts nothing for it — it never touches the engine at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis" //worksim:allow build-time lint tool, not an engine client; the façade rule for cmd/ intentionally does not cover the linter itself
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the analyzer suite, then exit")
		jsonOut  = flag.Bool("json", false, "emit diagnostics as JSON")
		exitZero = flag.Bool("exit-zero", false, "always exit 0 (report-only mode)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fatalf("%v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "worksimlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		if !*exitZero {
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "worksimlint: "+format+"\n", args...)
	os.Exit(2)
}
