// Command attack-bench runs the E5 attack × defence matrix: every
// implemented attack class from the paper's survey against the unsecured and
// secured worksite under identical seeds, plus the E5a IDS-latency ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attack-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 42, "experiment seed")
		duration = flag.Duration("duration", 12*time.Minute, "simulated duration per cell")
		csv      = flag.Bool("csv", false, "emit as CSV")
	)
	flag.Parse()

	res, err := experiments.E5AttackMatrix(*seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(res.Table.CSV())
	} else {
		fmt.Print(res.Table.Render())
	}
	fmt.Println()

	lat, err := experiments.E5aIDSLatencyRun(*seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(lat.Table.CSV())
	} else {
		fmt.Print(lat.Table.Render())
	}
	fmt.Println()

	agility, err := experiments.E5bChannelAgility(*seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(agility.Table.CSV())
	} else {
		fmt.Print(agility.Table.Render())
	}
	return nil
}
