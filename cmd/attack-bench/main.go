// Command attack-bench runs the E5 attack × defence matrix: every
// implemented attack class from the paper's survey against the unsecured and
// secured worksite under identical seeds, plus the E5a IDS-latency and E5b
// channel-agility ablations. SIGINT/SIGTERM cancel the in-flight runs at
// their next control tick.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/worksim"
	"repro/worksim/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attack-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 42, "experiment seed")
		duration = flag.Duration("duration", 12*time.Minute, "simulated duration per cell")
		csv      = flag.Bool("csv", false, "emit as CSV")
		version  = flag.Bool("version", false, "print the worksim version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("attack-bench", worksim.Version)
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := experiments.E5AttackMatrix(ctx, *seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(res.Table.CSV())
	} else {
		fmt.Print(res.Table.Render())
	}
	fmt.Println()

	lat, err := experiments.E5aIDSLatencyRun(ctx, *seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(lat.Table.CSV())
	} else {
		fmt.Print(lat.Table.Render())
	}
	fmt.Println()

	agility, err := experiments.E5bChannelAgility(ctx, *seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(agility.Table.CSV())
	} else {
		fmt.Print(agility.Table.Render())
	}
	return nil
}
