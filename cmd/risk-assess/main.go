// Command risk-assess runs the combined safety–cybersecurity risk assessment
// on the AGRARSENSE use case: the ISO/SAE 21434 TARA before and after
// treatment, the IEC 62443 security-level gap analysis, the IEC TS 63074
// interplay (security-informed performance levels), and the Table-I
// characteristic coverage.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/risk"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "risk-assess:", err)
		os.Exit(1)
	}
}

func run() error {
	csv := flag.Bool("csv", false, "emit tables as CSV")
	flag.Parse()

	res, err := experiments.E6CombinedRisk()
	if err != nil {
		return err
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
		fmt.Println()
	}
	emit(res.Register)
	emit(res.Interplay)
	emit(experiments.E3CharacteristicTable())
	emit(experiments.E4KnowledgeTransfer().Table)

	uc := risk.BuildUseCase()
	slt := report.NewTable("IEC 62443 zone/conduit SL gap analysis (full controls)",
		"name", "kind", "met", "gaps")
	achieved := risk.AchievedSL(&uc.Model, uc.FullControls())
	for _, za := range risk.AssessArchitecture(uc.Architecture, achieved) {
		var gaps []string
		for _, g := range za.Gaps {
			gaps = append(gaps, fmt.Sprintf("%s: %d<%d", g.FR, g.Achieved, g.Target))
		}
		slt.AddRow(za.Name, za.Kind, za.Met, strings.Join(gaps, "; "))
	}
	emit(slt)
	return nil
}
