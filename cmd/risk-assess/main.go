// Command risk-assess runs the combined safety–cybersecurity risk assessment
// on the AGRARSENSE use case: the ISO/SAE 21434 TARA before and after
// treatment, the IEC 62443 security-level gap analysis, the IEC TS 63074
// interplay (security-informed performance levels), and the Table-I
// characteristic coverage.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/worksim"
	"repro/worksim/experiments"
	"repro/worksim/pathway"
	"repro/worksim/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "risk-assess:", err)
		os.Exit(1)
	}
}

func run() error {
	csv := flag.Bool("csv", false, "emit tables as CSV")
	version := flag.Bool("version", false, "print the worksim version and exit")
	flag.Parse()

	if *version {
		fmt.Println("risk-assess", worksim.Version)
		return nil
	}

	res, err := experiments.E6CombinedRisk()
	if err != nil {
		return err
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
		fmt.Println()
	}
	emit(res.Register)
	emit(res.Interplay)
	emit(experiments.E3CharacteristicTable())
	emit(experiments.E4KnowledgeTransfer().Table)

	uc := pathway.BuildUseCase()
	slt := report.NewTable("IEC 62443 zone/conduit SL gap analysis (full controls)",
		"name", "kind", "met", "gaps")
	achieved := pathway.AchievedSL(uc, uc.FullControls())
	for _, za := range pathway.AssessArchitecture(uc.Architecture, achieved) {
		var gaps []string
		for _, g := range za.Gaps {
			gaps = append(gaps, fmt.Sprintf("%s: %d<%d", g.FR, g.Achieved, g.Target))
		}
		slt.AddRow(za.Name, za.Kind, za.Met, strings.Join(gaps, "; "))
	}
	emit(slt)
	return nil
}
