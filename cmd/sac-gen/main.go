// Command sac-gen runs the certification pathway and emits the resulting
// security assurance case in GSN (default) or CAE form, with the evaluation
// verdict Section V's modular assurance approach produces. SIGINT/SIGTERM
// cancel the evidence run at its next control tick.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/worksim"
	"repro/worksim/pathway"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sac-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Int64("seed", 42, "experiment seed")
		unsecured = flag.Bool("unsecured", false, "evaluate the unsecured baseline pathway")
		cae       = flag.Bool("cae", false, "render Claim-Argument-Evidence instead of GSN")
		asJSON    = flag.Bool("json", false, "emit the case in interchange JSON")
		evidence  = flag.Duration("evidence-run", 10*time.Minute, "attack-campaign evidence run length")
		version   = flag.Bool("version", false, "print the worksim version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("sac-gen", worksim.Version)
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := pathway.Run(ctx, pathway.Options{
		Seed:        *seed,
		Secured:     !*unsecured,
		EvidenceRun: *evidence,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.SAC)
	}
	if *cae {
		fmt.Print(res.SAC.RenderCAE())
	} else {
		fmt.Print(res.SAC.RenderGSN())
	}
	fmt.Println()
	fmt.Printf("Modules: %v\n", res.SAC.Modules())
	fmt.Printf("Evaluation: supported=%v score=%.2f (%d/%d solutions)\n",
		res.SACEval.Supported, res.SACEval.Score,
		res.SACEval.SupportedSolutions, res.SACEval.Solutions)
	if len(res.SACEval.Unsupported) > 0 {
		fmt.Printf("Unsupported nodes: %v\n", res.SACEval.Unsupported)
	}
	return nil
}
