// Command worksimd serves the worksite simulation as a long-running JSON/REST
// daemon: submit runs and sweeps, poll their state, stream the typed event
// feed live over Server-Sent Events, and fetch final reports that are
// byte-identical to an in-process worksim run at the same parameters.
//
// Usage:
//
//	worksimd [-addr :8080] [-api-keys FILE] [-rate 20] [-burst 40]
//	         [-max-jobs 8] [-event-buffer 4096] [-drain-timeout 15s]
//	         [-cache-dir DIR] [-quiet]
//	worksimd -version
//
// With -cache-dir the daemon serves repeated sweep runs from a
// content-addressed result cache rooted there: completed (scenario, profile,
// seed) runs persist across sweeps and daemon restarts, and sweep progress
// reports how many runs came from the cache.
//
// API keys come from -api-keys (one key per line, # comments) or the
// WORKSIMD_API_KEYS environment variable (comma-separated); with neither,
// the daemon serves unauthenticated. Clients present a key as
// `Authorization: Bearer <key>` or `X-API-Key`.
//
// Quickstart:
//
//	worksimd -addr 127.0.0.1:8080 &
//	curl -s localhost:8080/v1/scenarios
//	curl -s -X POST localhost:8080/v1/runs -d '{"scenario":"gnss-spoof","profile":"secured","horizonNs":240000000000}'
//	curl -s localhost:8080/v1/runs/r-000001               # poll state / fetch report
//	curl -sN localhost:8080/v1/runs/r-000001/events       # live SSE event stream
//	curl -s -X DELETE localhost:8080/v1/runs/r-000001     # cancel
//
// The daemon prints its bound address on stdout once listening (useful with
// -addr :0), logs structured JSON lines to stderr, and drains gracefully on
// SIGINT/SIGTERM: it stops accepting work, waits out in-flight jobs up to
// -drain-timeout, cancels the stragglers between control ticks, and exits 0
// on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/worksim"
	"repro/worksim/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worksimd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address (\":0\" picks a free port, printed on stdout)")
		apiKeysFile  = flag.String("api-keys", "", "API key file: one key per line, # comments ("+serve.EnvAPIKeys+" env var used when unset)")
		rate         = flag.Float64("rate", 0, "per-key request rate limit in requests/sec (0 = default, negative disables)")
		burst        = flag.Int("burst", 0, "per-key token-bucket burst capacity (0 = default)")
		maxJobs      = flag.Int("max-jobs", 0, "max concurrently active run+sweep jobs, 429 beyond (0 = default, negative disables)")
		eventBuffer  = flag.Int("event-buffer", 0, "per-run SSE replay ring capacity in events (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "how long drain waits for in-flight jobs before cancelling them")
		cacheDir     = flag.String("cache-dir", "", "serve repeated sweep runs from a content-addressed result cache rooted here (empty = off)")
		quiet        = flag.Bool("quiet", false, "suppress the structured request log on stderr")
		version      = flag.Bool("version", false, "print the worksim version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("worksimd", worksim.Version)
		return nil
	}

	keys := serve.APIKeysFromEnv()
	if *apiKeysFile != "" {
		var err error
		if keys, err = serve.LoadAPIKeysFile(*apiKeysFile); err != nil {
			return err
		}
	}

	var logSink io.Writer = os.Stderr
	if *quiet {
		logSink = io.Discard
	}
	logger := slog.New(slog.NewJSONHandler(logSink, nil))

	srv := serve.New(serve.Config{
		APIKeys:           keys,
		RatePerSec:        *rate,
		Burst:             *burst,
		MaxConcurrentJobs: *maxJobs,
		EventBuffer:       *eventBuffer,
		DrainTimeout:      *drainTimeout,
		CacheDir:          *cacheDir,
		Logger:            logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mode := "open (no API keys configured)"
	if len(keys) > 0 {
		mode = fmt.Sprintf("%d API key(s)", len(keys))
	}
	return srv.ListenAndServe(ctx, *addr, func(bound net.Addr) {
		// The address line is machine-readable on purpose: scripts that
		// start worksimd on ":0" parse it to find the port.
		fmt.Printf("worksimd %s listening on http://%s (%s)\n", worksim.Version, bound, mode)
		logger.Info("listening", "addr", bound.String(), "auth", mode)
	})
}
