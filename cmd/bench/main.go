// Command bench runs the tracked benchmark catalog of the simulator and
// persists the results as BENCH_<date>.json, so the performance trajectory of
// the hot path is recorded in-repo and diffable PR over PR.
//
// Usage:
//
//	bench                          # run everything, write BENCH_<date>.json
//	bench -filter tick             # run only the tick micro-benchmarks
//	bench -label baseline          # write BENCH_<date>.baseline.json
//	bench -out results.json        # explicit output path
//	bench -against BENCH_old.json  # also print per-benchmark deltas
//	bench -against old.json -gate  # fail on secured-path regressions
//	bench -list                    # list the catalog, then exit
//
// -gate is the CI guard over the secured hot path: it fails (exit 1) when a
// gated benchmark is missing, reports allocations where the catalog requires
// zero, or regresses ns/op beyond the tolerance against the -against record.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/worksim"
	"repro/worksim/bench"
)

func main() {
	var (
		out     = flag.String("out", "", "output path (default BENCH_<date>.json, with -label appended)")
		label   = flag.String("label", "", "label recorded in the file and appended to the default filename")
		filter  = flag.String("filter", "", "regexp selecting which catalog benchmarks to run (default all)")
		against = flag.String("against", "", "older BENCH_*.json to diff the new results against")
		gate    = flag.Bool("gate", false, "fail on secured-path violations: missing gated benchmarks, allocations on zero-alloc entries, or ns/op regressions beyond -gate-tolerance vs -against")
		gateTol = flag.Float64("gate-tolerance", bench.DefaultGateTolerance, "fractional ns/op regression -gate tolerates on gated benchmarks")
		list    = flag.Bool("list", false, "list the benchmark catalog, then exit")
		version = flag.Bool("version", false, "print the worksim version, then exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(worksim.Version)
		return
	}
	if *list {
		for _, bm := range bench.Catalog() {
			fmt.Printf("%-16s %s\n", bm.Name, bm.Doc)
		}
		return
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		re, err = regexp.Compile(*filter)
		if err != nil {
			fatalf("bad -filter: %v", err)
		}
	}

	entries := bench.Run(re, func(line string) { fmt.Println(line) })
	if len(entries) == 0 {
		fatalf("no catalog benchmark matches -filter %q", *filter)
	}
	f := bench.NewFile(*label, entries)

	path := *out
	if path == "" {
		path = bench.DefaultPath(*label)
	}
	if err := f.Write(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(entries))

	if *against != "" {
		old, err := bench.Load(*against)
		if err != nil {
			// A missing or unreadable baseline is not a benchmarking failure:
			// the first run of a fresh checkout has nothing to diff against.
			// Record the new results and skip the delta instead of failing —
			// unless the run is gated, where a silently absent baseline would
			// void the guard.
			if *gate {
				fatalf("-gate needs a usable -against baseline: %v", err)
			}
			fmt.Fprintf(os.Stderr, "bench: no usable baseline, skipping delta: %v\n", err)
			return
		}
		fmt.Printf("\ndelta vs %s:\n%s", *against, bench.RenderDeltas(bench.Compare(old, f)))
		if *gate {
			if violations := bench.Gate(old, f, *gateTol); len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "bench: gate: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Println("secured-path gate passed")
		}
	} else if *gate {
		fatalf("-gate needs -against: the gate compares against the committed record")
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
