// Command bench runs the tracked benchmark catalog of the simulator and
// persists the results as BENCH_<date>.json, so the performance trajectory of
// the hot path is recorded in-repo and diffable PR over PR.
//
// Usage:
//
//	bench                          # run everything, write BENCH_<date>.json
//	bench -filter tick             # run only the tick micro-benchmarks
//	bench -label baseline          # write BENCH_<date>.baseline.json
//	bench -out results.json        # explicit output path
//	bench -against BENCH_old.json  # also print per-benchmark deltas
//	bench -list                    # list the catalog, then exit
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/worksim"
	"repro/worksim/bench"
)

func main() {
	var (
		out     = flag.String("out", "", "output path (default BENCH_<date>.json, with -label appended)")
		label   = flag.String("label", "", "label recorded in the file and appended to the default filename")
		filter  = flag.String("filter", "", "regexp selecting which catalog benchmarks to run (default all)")
		against = flag.String("against", "", "older BENCH_*.json to diff the new results against")
		list    = flag.Bool("list", false, "list the benchmark catalog, then exit")
		version = flag.Bool("version", false, "print the worksim version, then exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(worksim.Version)
		return
	}
	if *list {
		for _, bm := range bench.Catalog() {
			fmt.Printf("%-16s %s\n", bm.Name, bm.Doc)
		}
		return
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		re, err = regexp.Compile(*filter)
		if err != nil {
			fatalf("bad -filter: %v", err)
		}
	}

	entries := bench.Run(re, func(line string) { fmt.Println(line) })
	if len(entries) == 0 {
		fatalf("no catalog benchmark matches -filter %q", *filter)
	}
	f := bench.NewFile(*label, entries)

	path := *out
	if path == "" {
		path = bench.DefaultPath(*label)
	}
	if err := f.Write(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(entries))

	if *against != "" {
		old, err := bench.Load(*against)
		if err != nil {
			// A missing or unreadable baseline is not a benchmarking failure:
			// the first run of a fresh checkout has nothing to diff against.
			// Record the new results and skip the delta instead of failing.
			fmt.Fprintf(os.Stderr, "bench: no usable baseline, skipping delta: %v\n", err)
			return
		}
		fmt.Printf("\ndelta vs %s:\n%s", *against, bench.RenderDeltas(bench.Compare(old, f)))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
