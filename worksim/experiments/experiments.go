// Package experiments is the public surface of the paper's experiment
// registry and Monte-Carlo campaign engine: every reproduced table/figure is
// a registered experiment with a stable ID (e1, e2, ... e10 plus ablations),
// and Run fans any of them out over a seed range with a bounded,
// cancellable worker pool and per-metric mean / stddev / 95%-CI
// aggregation.
//
// Importing this package populates the registry (the internal experiment
// definitions register themselves), so consumers never need a blank import
// of an internal package to discover experiments.
package experiments

import (
	"context"
	"time"

	"repro/internal/campaign"
	iexp "repro/internal/experiments"
	"repro/worksim/report"
)

// Campaign machinery, re-exported from the engine.
type (
	// Experiment is a registered, discoverable experiment.
	Experiment = campaign.Experiment
	// Params parameterises a single experiment run.
	Params = campaign.Params
	// Options configures a campaign over one experiment.
	Options = campaign.Options
	// Outcome is what one run at one seed produces.
	Outcome = campaign.Outcome
	// Result is one experiment campaigned over a seed range.
	Result = campaign.Result
	// SeedRun is the per-seed record of a campaign.
	SeedRun = campaign.SeedRun
	// Aggregate summarises one metric across all seeds.
	Aggregate = campaign.Aggregate
	// SeedRange is the seed convention: Count consecutive seeds from Base.
	SeedRange = campaign.SeedRange
	// Registry holds registered experiments in registration order.
	Registry = campaign.Registry
)

// Default is the process-wide registry, populated at init time with every
// reproduced experiment.
var Default = campaign.Default

// Run fans exp out over the seed range with a bounded worker pool and
// aggregates the per-seed metrics; output is independent of
// Options.Parallel. The context cancels the campaign: workers stop claiming
// seeds, in-flight simulation-backed runs stop between control ticks, and
// Run returns ctx.Err() once the pool has drained.
func Run(ctx context.Context, exp Experiment, opts Options) (*Result, error) {
	return campaign.Run(ctx, exp, opts)
}

// RunAll campaigns each experiment in turn over the same seed range.
func RunAll(ctx context.Context, exps []Experiment, opts Options) ([]*Result, error) {
	return campaign.RunAll(ctx, exps, opts)
}

// Named experiment runners, for consumers that want one result object
// rather than a campaign. Result types carry the rendered paper artifact
// (tables/figures) plus structured rows.
type (
	E1Result  = iexp.E1Result
	E2Result  = iexp.E2Result
	E2aResult = iexp.E2aResult
	E4Result  = iexp.E4Result
	E5Result  = iexp.E5Result
	E5aResult = iexp.E5aResult
	E5bResult = iexp.E5bResult
	E6Result  = iexp.E6Result
)

// E1WorksiteBaseline runs the clean baseline scenario under both profiles.
func E1WorksiteBaseline(ctx context.Context, seed int64, d time.Duration) (E1Result, error) {
	return iexp.E1WorksiteBaseline(ctx, seed, d)
}

// E2DronePOV sweeps occlusion density and measures people-detection miss
// rates with and without the drone's additional point of view (Fig. 2).
func E2DronePOV(seed int64, trials int) E2Result { return iexp.E2DronePOV(seed, trials) }

// E2aFusionPolicy is the fusion confirmation-policy ablation.
func E2aFusionPolicy(seed int64, trials int) E2aResult { return iexp.E2aFusionPolicy(seed, trials) }

// E3CharacteristicTable regenerates the paper's Table I from the risk
// catalog with model coverage.
func E3CharacteristicTable() *report.Table { return iexp.E3CharacteristicTable() }

// E4KnowledgeTransfer evaluates the Fig. 3 knowledge-transfer claim.
func E4KnowledgeTransfer() E4Result { return iexp.E4KnowledgeTransfer() }

// E5AttackMatrix runs every registered attack class against both profiles
// under identical seeds (Sections III-B / IV-C).
func E5AttackMatrix(ctx context.Context, seed int64, d time.Duration) (E5Result, error) {
	return iexp.E5AttackMatrix(ctx, seed, d)
}

// E5aIDSLatencyRun measures IDS detection latency for the de-auth flood.
func E5aIDSLatencyRun(ctx context.Context, seed int64, d time.Duration) (E5aResult, error) {
	return iexp.E5aIDSLatencyRun(ctx, seed, d)
}

// E5bChannelAgility is the availability ablation: narrowband jamming with
// and without the channel-agility response.
func E5bChannelAgility(ctx context.Context, seed int64, d time.Duration) (E5bResult, error) {
	return iexp.E5bChannelAgility(ctx, seed, d)
}

// E6CombinedRisk runs the combined TARA + IEC TS 63074 interplay assessment,
// untreated vs treated (Section IV-D).
func E6CombinedRisk() (E6Result, error) { return iexp.E6CombinedRisk() }
