package worksim_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/worksim"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestSweepJSONGolden locks the public sweep JSON export — field names,
// order and number formatting — against testdata/sweep.golden.json. The
// export is the façade's machine-readable contract with downstream
// consumers, so any refactor that changes it must do so deliberately:
// regenerate with
//
//	go test ./worksim -run TestSweepJSONGolden -update
//
// and justify the diff in review.
func TestSweepJSONGolden(t *testing.T) {
	res, err := worksim.Sweep(context.Background(), worksim.SweepOptions{
		Scenarios:   []string{"baseline", "gnss-spoof"},
		Profiles:    []string{"unsecured", "secured"},
		Seeds:       worksim.SeedRange{Base: 1, Count: 2},
		Parallel:    2,
		Duration:    2 * time.Minute,
		SampleEvery: time.Minute, // timeseries fields are part of the schema
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "sweep.golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("sweep JSON drifted from %s (%d vs %d bytes).\n"+
			"If the change to the public schema is intentional, regenerate with -update and call it out in review.\ngot:\n%s",
			path, len(got), len(want), got)
	}
}
