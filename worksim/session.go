package worksim

import (
	"context"
	"time"

	"repro/internal/campaign"
	"repro/internal/scenario"
	"repro/internal/worksite"
	"repro/worksim/event"
)

// Defaults Open applies when the corresponding option is absent.
const (
	// DefaultSeed roots every random stream of a run opened without
	// WithSeed.
	DefaultSeed int64 = 42
	// DefaultHorizon is the simulated duration of a session opened without
	// WithHorizon.
	DefaultHorizon = 10 * time.Minute
)

// sessionConfig is the option-resolved state Open builds a session from.
type sessionConfig struct {
	seed      int64
	seedSet   bool // WithSeed was given (OpenBatch rejects it)
	horizon   time.Duration
	profile   *SecurityProfile
	sample    time.Duration
	observers []event.Observer
}

// Option configures Open.
type Option func(*sessionConfig)

// WithSeed roots every random stream of the run at seed. A scenario is an
// operational situation; the seed is deliberately a run parameter, so the
// same Scenario fans out over seed ranges.
func WithSeed(seed int64) Option {
	return func(c *sessionConfig) { c.seed = seed; c.seedSet = true }
}

// WithHorizon bounds the session at d of simulated time. The horizon also
// anchors the scenario's attack schedule: window fractions resolve against
// it, so the same Scenario scales to any duration.
func WithHorizon(d time.Duration) Option {
	return func(c *sessionConfig) { c.horizon = d }
}

// WithProfile replaces the scenario's security profile for this run — the
// sweep axis of the paper's unsecured-vs-secured comparison.
func WithProfile(p SecurityProfile) Option {
	return func(c *sessionConfig) { prof := p; c.profile = &prof }
}

// WithSampleInterval records a downsampled per-tick timeseries: one
// TimePoint per d of simulated time, readable via Session.Timeseries.
// Sampling is a passive observer; it never changes run outcomes.
func WithSampleInterval(d time.Duration) Option {
	return func(c *sessionConfig) { c.sample = d }
}

// WithObserver subscribes an observer to the session's typed event stream
// before the run starts. Repeatable; observers are invoked in subscription
// order.
func WithObserver(o event.Observer) Option {
	return func(c *sessionConfig) { c.observers = append(c.observers, o) }
}

// Session is a steppable, cancellable handle on one compiled scenario run.
// It owns the progression of virtual time — step one control tick at a
// time, advance in bulk with RunFor, or drive until a predicate fires — and
// fans the typed event stream out to subscribed observers.
//
// Determinism contract: a session produces a Report byte-identical for the
// same (Scenario, seed, horizon) however its time was advanced, whatever was
// subscribed, and whichever never-firing context drove it.
type Session struct {
	inner  *worksite.Session
	series []TimePoint
}

// Open compiles a Scenario into a runnable session: the worksite is
// commissioned from the spec, the attack schedule is resolved against the
// horizon and armed, and the session's event stream is wired. Options
// default to DefaultSeed, the scenario's own security profile, and — for the
// horizon — the spec's declared Horizon when it has one, DefaultHorizon
// otherwise.
func Open(spec Scenario, opts ...Option) (*Session, error) {
	c := sessionConfig{seed: DefaultSeed}
	for _, opt := range opts {
		opt(&c)
	}
	if c.horizon <= 0 {
		if spec.Horizon > 0 {
			c.horizon = spec.Horizon
		} else {
			c.horizon = DefaultHorizon
		}
	}
	if c.profile != nil {
		spec = spec.WithProfile(*c.profile)
	}
	inner, _, err := scenario.Build(spec, c.seed, c.horizon)
	if err != nil {
		return nil, err
	}
	s := &Session{inner: inner}
	if c.sample > 0 {
		// The exact observer sweep timeseries use, so Session.Timeseries and
		// SeedRun.Timeseries can never drift on policy or fields.
		inner.Subscribe(campaign.SampleObserver(c.sample, &s.series))
	}
	for _, o := range c.observers {
		inner.Subscribe(o)
	}
	return s, nil
}

// Subscribe registers an observer for the session's event stream; equivalent
// to the WithObserver option but usable between stepping phases.
func (s *Session) Subscribe(o event.Observer) { s.inner.Subscribe(o) }

// Step advances the simulation to exactly the next control tick and returns
// its snapshot. It reports false once the horizon is reached (after draining
// the final partial tick) or the simulation stopped — check Err to tell the
// two apart.
func (s *Session) Step() (event.Tick, bool) { return s.inner.Step() }

// RunFor advances the simulation by d of virtual time, clamped to the
// horizon. The context bounds wall-clock execution: cancellation is observed
// between control ticks and returns ctx.Err() with the session intact at the
// last completed tick; a context that never fires yields byte-identical
// results to context.Background().
func (s *Session) RunFor(ctx context.Context, d time.Duration) error {
	return s.inner.RunFor(ctx, d)
}

// RunUntil steps tick by tick until stop returns true for a snapshot, the
// horizon is reached, the context fires, or the simulation stops. It reports
// whether the predicate fired. Predicates must be pure functions of the
// snapshot so runs stay deterministic.
func (s *Session) RunUntil(ctx context.Context, stop func(event.Tick) bool) (bool, error) {
	return s.inner.RunUntil(ctx, stop)
}

// Run is the convenience closed loop: advance to the horizon, then Report.
func (s *Session) Run(ctx context.Context) (Report, error) {
	if err := s.inner.RunFor(ctx, s.inner.Horizon()-s.inner.Now()); err != nil {
		return Report{}, err
	}
	return s.inner.Report(), nil
}

// Report finalises and returns the report over the time advanced so far. The
// session remains steppable afterwards; a later Report covers the longer
// window.
func (s *Session) Report() Report { return s.inner.Report() }

// Now returns how much virtual time the session has advanced.
func (s *Session) Now() time.Duration { return s.inner.Now() }

// Horizon returns the session's simulated-time bound.
func (s *Session) Horizon() time.Duration { return s.inner.Horizon() }

// Done reports whether the session has reached its horizon or stopped.
func (s *Session) Done() bool { return s.inner.Done() }

// Err returns the sticky simulation-stop error, nil for a session that only
// ran out its horizon (or was merely cancelled).
func (s *Session) Err() error { return s.inner.Err() }

// Timeseries returns the downsampled per-tick series recorded under
// WithSampleInterval (nil without it). The slice grows as the session
// advances; callers must not retain it across further stepping if they need
// a stable snapshot.
func (s *Session) Timeseries() []TimePoint { return s.series }

// RenderMap renders the ASCII worksite map at the session's current state,
// capped at maxCols columns.
func (s *Session) RenderMap(maxCols int) string { return s.inner.Site().RenderMap(maxCols) }

// RenderTimeline renders up to n operational timeline events accumulated so
// far.
func (s *Session) RenderTimeline(n int) string { return s.inner.Site().RenderTimeline(n) }
