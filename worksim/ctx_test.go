package worksim_test

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/worksim"
	"repro/worksim/event"
)

// checkGoroutineLeak snapshots the live goroutine count and returns a
// function to defer: it fails the test if, after a settle window, more
// goroutines are alive than at the snapshot — catching workers that outlive
// a cancelled call. The settle loop tolerates runtime-internal goroutines
// that take a moment to park; only a stable surplus is a leak.
func checkGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d still running after settle window", before, runtime.NumGoroutine())
	}
}

// TestRunForCancelMidRun cancels the context from an observer during the
// run: RunFor must stop before the next control tick executes and return
// context.Canceled, leaving the session intact at the last completed tick.
// The leak check confirms cancellation leaves no goroutine behind.
func TestRunForCancelMidRun(t *testing.T) {
	defer checkGoroutineLeak(t)()
	const cancelAt = time.Minute
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sess, err := worksim.Open(worksim.Baseline(),
		worksim.WithHorizon(10*time.Minute),
		worksim.WithObserver(&event.ObserverFuncs{Tick: func(tk event.TickSnapshot) {
			if tk.At >= cancelAt {
				cancel()
			}
		}}))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.RunFor(ctx, 10*time.Minute)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunFor under mid-run cancel: err = %v, want context.Canceled", err)
	}
	// The cancelling tick completes; nothing after it may run. One tick of
	// slack covers the tick that invoked the observer.
	tick := worksim.Baseline().Timing.TickPeriod
	if now := sess.Now(); now < cancelAt || now > cancelAt+tick {
		t.Fatalf("session stopped at %v, want within one tick (%v) of %v", now, tick, cancelAt)
	}
	if sess.Err() != nil {
		t.Fatalf("cancellation must not latch a simulation error, got %v", sess.Err())
	}

	// The session stays usable: a fresh context resumes to the horizon.
	rep, err := sess.Run(context.Background())
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if rep.Duration != 10*time.Minute {
		t.Fatalf("resumed report covers %v, want the full 10m horizon", rep.Duration)
	}
}

// TestRunForPreCancelled: a context that is already dead advances nothing.
func TestRunForPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := worksim.Open(worksim.Baseline(), worksim.WithHorizon(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunFor(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sess.Now() != 0 {
		t.Fatalf("pre-cancelled RunFor advanced time to %v", sess.Now())
	}
}

// TestRunUntilCancelled: RunUntil surfaces ctx.Err() too.
func TestRunUntilCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := worksim.Open(worksim.Baseline(), worksim.WithHorizon(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	fired, err := sess.RunUntil(ctx, func(event.Tick) bool { return false })
	if fired || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunUntil = (%v, %v), want (false, context.Canceled)", fired, err)
	}
}

// TestNeverFiredContextByteIdentical locks the determinism contract of the
// redesign: a cancellable context that never fires must produce a report
// byte-identical to context.Background() — the cancellable path advances
// tick by tick, the background path in one stride, and the two must be the
// same simulation.
func TestNeverFiredContextByteIdentical(t *testing.T) {
	spec, err := worksim.Lookup("multi-attack")
	if err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context) []byte {
		sess, err := worksim.Open(spec,
			worksim.WithSeed(7),
			worksim.WithHorizon(6*time.Minute),
			worksim.WithProfile(worksim.Secured()))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plain := run(context.Background())
	armed := run(ctx)
	if string(plain) != string(armed) {
		t.Fatalf("report under a never-fired cancellable context differs from context.Background()\nbackground: %s\ncancellable: %s", plain, armed)
	}
}

// TestSweepCancelDrainsWorkers cancels a sweep that could never finish in
// the allotted time and verifies (a) the cancellation error surfaces and
// (b) the worker pool drains — no goroutine outlives the call. Run under
// -race (CI does) this also exercises the pool's cancellation paths for
// data races.
func TestSweepCancelDrainsWorkers(t *testing.T) {
	defer checkGoroutineLeak(t)()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	_, err := worksim.Sweep(ctx, worksim.SweepOptions{
		Scenarios: []string{"all"},
		Seeds:     worksim.SeedRange{Base: 1, Count: 8},
		Parallel:  4,
		Duration:  4 * time.Hour, // far beyond what 50ms of wall clock can simulate
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

// TestSweepNeverFiredContextByteIdentical: the sweep JSON export is
// byte-identical between context.Background() and a cancellable context
// that never fires.
func TestSweepNeverFiredContextByteIdentical(t *testing.T) {
	opts := worksim.SweepOptions{
		Scenarios: []string{"baseline", "gnss-spoof"},
		Profiles:  []string{"secured"},
		Seeds:     worksim.SeedRange{Base: 1, Count: 2},
		Parallel:  2,
		Duration:  2 * time.Minute,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plain, err := worksim.Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	armed, err := worksim.Sweep(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	aj, err := armed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(pj) != string(aj) {
		t.Fatal("sweep JSON under a never-fired cancellable context differs from context.Background()")
	}
}
