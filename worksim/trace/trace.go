// Package trace is the public JSON-lines encoding of the typed event
// stream — the `worksite-sim -trace` file format and, verbatim, the SSE
// data: payload of the worksimd daemon. One line per event, in simulation
// order:
//
//	{"event": KIND, "data": {...}}
//
// where KIND is the event's stable kind tag ("tick", "alert",
// "attack-phase", "security-response", "mode-change", "mission-phase",
// "safety") and data carries the event's own stable JSON fields. The schema
// is shared by both transports from a single encoder, so it cannot fork.
package trace

import (
	"io"

	"repro/internal/tracefmt"
	"repro/worksim/event"
)

// Writer streams a session's events as JSON lines to a sink through an
// internal buffer. Subscribe Writer.Observer() on a session, run, then
// Flush — including on the cancellation path, where the buffered tail of
// the trace is the most diagnostic part. Flush is idempotent; write errors
// latch and surface on Flush/Err.
type Writer = tracefmt.Writer

// NewWriter returns a Writer streaming JSON lines to w.
func NewWriter(w io.Writer) *Writer { return tracefmt.NewWriter(w) }

// Marshal encodes one event as a single JSON line (no trailing newline) —
// the exact bytes a Writer emits and the daemon streams as an SSE payload.
func Marshal(e event.Event) ([]byte, error) { return tracefmt.Marshal(e) }

// Observer adapts a per-event callback into an event.Observer receiving
// every event type in publication order.
func Observer(fn func(event.Event)) event.Observer { return tracefmt.Observer(fn) }
