package worksim_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/worksim"
	"repro/worksim/event"
)

// streamRecorder captures the full typed event stream of a run in arrival
// order, tagging each event with its virtual time for ordering checks.
type streamRecorder struct {
	ticks    []event.TickSnapshot
	attacks  []event.AttackPhase
	failsafe []event.SafetyEvent
	unsafe   []event.SafetyEvent
}

func (r *streamRecorder) observer() event.Observer {
	return &event.ObserverFuncs{
		Tick:        func(t event.TickSnapshot) { r.ticks = append(r.ticks, t) },
		AttackPhase: func(a event.AttackPhase) { r.attacks = append(r.attacks, a) },
		Safety: func(s event.SafetyEvent) {
			switch s.Kind {
			case event.SafetyFailSafeEngaged, event.SafetyFailSafeReleased:
				r.failsafe = append(r.failsafe, s)
			case event.SafetyUnsafeEnter, event.SafetyUnsafeExit:
				r.unsafe = append(r.unsafe, s)
			}
		},
	}
}

// TestEventStreamInvariants drives every catalog scenario under both
// security profiles and checks the structural invariants of the session
// event stream:
//
//   - tick snapshots are strictly monotonic: N counts 1,2,3,... and virtual
//     time strictly increases;
//   - every AttackPhase start is matched by a stop of the same attack or by
//     run-end, with no double-start, double-stop, or stop-before-start;
//   - fail-safe latch events never interleave out of order: per latch
//     (Detail), engaged and released strictly alternate starting engaged;
//   - unsafe-episode boundaries (enter/exit) alternate the same way.
func TestEventStreamInvariants(t *testing.T) {
	const horizon = 4 * time.Minute
	for _, name := range worksim.Catalog() {
		for _, profile := range worksim.Profiles() {
			name, profile := name, profile
			t.Run(fmt.Sprintf("%s/%s", name, profile), func(t *testing.T) {
				t.Parallel()
				spec, err := worksim.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				prof, err := worksim.ResolveProfile(profile)
				if err != nil {
					t.Fatal(err)
				}
				rec := &streamRecorder{}
				s, err := worksim.Open(spec,
					worksim.WithSeed(7),
					worksim.WithHorizon(horizon),
					worksim.WithProfile(prof),
					worksim.WithObserver(rec.observer()),
				)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Run(context.Background()); err != nil {
					t.Fatal(err)
				}

				checkTickMonotonic(t, rec.ticks)
				checkAttackPairing(t, rec.attacks)
				checkAlternating(t, "fail-safe", rec.failsafe,
					event.SafetyFailSafeEngaged, event.SafetyFailSafeReleased)
				checkAlternating(t, "unsafe-episode", rec.unsafe,
					event.SafetyUnsafeEnter, event.SafetyUnsafeExit)
			})
		}
	}
}

func checkTickMonotonic(t *testing.T, ticks []event.TickSnapshot) {
	t.Helper()
	if len(ticks) == 0 {
		t.Fatal("run published no tick snapshots")
	}
	for i, tick := range ticks {
		if tick.N != i+1 {
			t.Fatalf("tick %d has N=%d: tick numbers must count 1,2,3,...", i, tick.N)
		}
		if i > 0 && tick.At <= ticks[i-1].At {
			t.Fatalf("tick %d at %v does not advance past previous tick at %v", tick.N, tick.At, ticks[i-1].At)
		}
	}
}

// checkAttackPairing verifies per-attack start/stop discipline: phases for
// one attack name strictly alternate active/inactive beginning with a start,
// and only a final unmatched start (an attack running to the horizon) may
// remain open.
func checkAttackPairing(t *testing.T, phases []event.AttackPhase) {
	t.Helper()
	active := map[string]bool{}
	for i, p := range phases {
		if i > 0 && p.At < phases[i-1].At {
			t.Fatalf("attack phase %d (%s) at %v precedes phase %d at %v",
				i, p.Attack, p.At, i-1, phases[i-1].At)
		}
		if p.Active {
			if active[p.Attack] {
				t.Fatalf("attack %q started twice without a stop", p.Attack)
			}
			active[p.Attack] = true
		} else {
			if !active[p.Attack] {
				t.Fatalf("attack %q stopped without a matching start", p.Attack)
			}
			active[p.Attack] = false
		}
	}
	// Anything still active ran to the horizon — that is the documented
	// "stop or run-end" contract, so it is allowed.
}

// checkAlternating verifies that a latch-style event sequence strictly
// alternates onKind/offKind per latch identity (Detail), starting with
// onKind.
func checkAlternating(t *testing.T, what string, events []event.SafetyEvent, onKind, offKind string) {
	t.Helper()
	on := map[string]bool{}
	for i, e := range events {
		if i > 0 && e.At < events[i-1].At {
			t.Fatalf("%s event %d (%s %s) at %v precedes event %d at %v",
				what, i, e.Kind, e.Detail, e.At, i-1, events[i-1].At)
		}
		switch e.Kind {
		case onKind:
			if on[e.Detail] {
				t.Fatalf("%s %q engaged twice in a row (event %d)", what, e.Detail, i)
			}
			on[e.Detail] = true
		case offKind:
			if !on[e.Detail] {
				t.Fatalf("%s %q released while not engaged (event %d)", what, e.Detail, i)
			}
			on[e.Detail] = false
		default:
			t.Fatalf("%s stream contains unexpected kind %q", what, e.Kind)
		}
	}
}
