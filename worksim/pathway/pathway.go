// Package pathway is the public surface of the paper's certification
// pathway: one call runs the combined safety–security risk assessment
// (ISO/SAE 21434 TARA, IEC 62443 security levels, IEC TS 63074 interplay),
// generates operational evidence from an attack campaign against the
// simulated worksite, probes platform integrity and simulation validity,
// assembles the modular security assurance case, and checks CE conformity
// against the standards registry.
//
// The risk-model helpers (BuildUseCase, AchievedSL, AssessArchitecture,
// SummarizeInterplay) expose the methodology's building blocks for consumers
// that assess their own architectures; Standards exposes the registry the
// conformity check discharges evidence against.
package pathway

import (
	"context"

	"repro/internal/core"
	"repro/internal/risk"
	"repro/internal/standards"
)

// Options parameterise a pathway evaluation; Result is its complete output
// (risk registers before/after treatment, worksite evidence report,
// boot/attestation evidence, SOTIF probes, assurance case and evaluation,
// CE conformity verdict).
type (
	Options = core.PathwayOptions
	Result  = core.PathwayResult
)

// Run executes the full certification-pathway pipeline. The context bounds
// the wall-clock of the operational-evidence campaign (the pipeline's only
// long-running stage): a cancelled or expired context surfaces as ctx.Err().
func Run(ctx context.Context, opts Options) (*Result, error) {
	return core.RunPathway(ctx, opts)
}

// Risk-methodology types, re-exported for consumers assessing their own
// configurations.
type (
	// UseCase bundles the AGRARSENSE model: threat/control catalog, zone
	// architecture, and safety functions.
	UseCase = risk.UseCase
	// SLVector maps IEC 62443 foundational requirements to security levels.
	SLVector = risk.SLVector
	// ZoneAssessment is the per-zone/conduit SL gap verdict.
	ZoneAssessment = risk.ZoneAssessment
	// SiteArchitecture is the zone/conduit decomposition under assessment.
	SiteArchitecture = risk.SiteArchitecture
	// AssessedRisk is one TARA register row.
	AssessedRisk = risk.AssessedRisk
	// SecurityInformedPL is one safety function's security-informed
	// performance level (IEC TS 63074 interplay).
	SecurityInformedPL = risk.SecurityInformedPL
	// InterplaySummary aggregates interplay results.
	InterplaySummary = risk.InterplaySummary
)

// BuildUseCase returns the paper's AGRARSENSE use-case model.
func BuildUseCase() *UseCase { return risk.BuildUseCase() }

// AchievedSL computes the SL vector the applied controls achieve over the
// use-case model (nil controls = untreated baseline).
func AchievedSL(uc *UseCase, appliedControls []string) SLVector {
	return risk.AchievedSL(&uc.Model, appliedControls)
}

// AssessArchitecture checks every zone and conduit of the architecture
// against an achieved SL vector.
func AssessArchitecture(arch SiteArchitecture, achieved SLVector) []ZoneAssessment {
	return risk.AssessArchitecture(arch, achieved)
}

// SummarizeInterplay aggregates security-informed performance-level results.
func SummarizeInterplay(results []SecurityInformedPL) InterplaySummary {
	return risk.Summarize(results)
}

// StandardsEntry is one row of the standards-and-regulations registry.
type StandardsEntry = standards.Entry

// Standards returns the registry of standards and regulations the
// conformity check evaluates against (paper Sections I–II, IV-D).
func Standards() []StandardsEntry { return standards.Registry() }
