package worksim_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/worksim"
	"repro/worksim/trace"
)

// identityDuration keeps the capture cheap while still covering every attack
// window (catalog windows are fractions of the horizon, so any duration
// exercises them all).
const identityDuration = 2 * time.Minute

// runDigest executes one (scenario, profile, seed) run with a trace observer
// attached and returns the SHA-256 over the report JSON plus the full
// JSON-lines event stream — a content address of everything the run can
// externalise.
func runDigest(t *testing.T, spec worksim.Scenario, profile worksim.SecurityProfile, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	s, err := worksim.Open(spec,
		worksim.WithSeed(seed),
		worksim.WithHorizon(identityDuration),
		worksim.WithProfile(profile),
		worksim.WithObserver(w.Observer()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sessionDigest(t, s, w, &buf)
}

// sessionDigest runs an opened session (with w already subscribed, writing
// into buf) to its horizon and content-addresses report + trace.
func sessionDigest(t *testing.T, s *worksim.Session, w *trace.Writer, buf *bytes.Buffer) string {
	t.Helper()
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	repJSON, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	h.Write(repJSON)
	h.Write(buf.Bytes())
	return hex.EncodeToString(h.Sum(nil))
}

// TestOpenBatchByteIdentity is the differential half of the batching
// tentpole: for every (scenario, profile, seed) probed, a session forked
// from an OpenBatch shared commission must produce report and trace bytes
// identical to an independent Open of the same run — proving the shared PKI
// material, forked channels, and skipped per-seed handshakes are invisible
// to every observable byte.
func TestOpenBatchByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("differential batch capture is not -short friendly")
	}
	seeds := []int64{1, 2, 7, 42}
	scenarios := worksim.Catalog()[:3]
	for _, name := range scenarios {
		for _, prof := range worksim.Profiles() {
			spec, err := worksim.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			profile, err := worksim.ResolveProfile(prof)
			if err != nil {
				t.Fatal(err)
			}
			b, err := worksim.OpenBatch(spec, seeds,
				worksim.WithHorizon(identityDuration),
				worksim.WithProfile(profile),
			)
			if err != nil {
				t.Fatal(err)
			}
			if b.Len() != len(seeds) {
				t.Fatalf("batch has %d sessions, want %d", b.Len(), len(seeds))
			}
			for i := 0; i < b.Len(); i++ {
				var buf bytes.Buffer
				w := trace.NewWriter(&buf)
				s := b.Session(i)
				s.Subscribe(w.Observer())
				got := sessionDigest(t, s, w, &buf)
				want := runDigest(t, spec, profile, b.Seed(i))
				if got != want {
					t.Errorf("%s/%s seed %d: batched session bytes drifted from independent Open (digest %s, want %s)",
						name, prof, b.Seed(i), got, want)
				}
			}
		}
	}
}

// TestCatalogByteIdentity locks the report and trace bytes of every catalog
// scenario under both security profiles against checked-in digests. The
// golden file was captured before the secured-path pooling/batching work, so
// it proves the optimisation never changed a single observable byte.
// Regenerate deliberately with:
//
//	go test ./worksim -run TestCatalogByteIdentity -update
func TestCatalogByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog capture is not -short friendly")
	}
	type key struct{ scenario, profile string }
	got := make(map[string]string)
	var keys []key
	for _, name := range worksim.Catalog() {
		for _, prof := range worksim.Profiles() {
			keys = append(keys, key{name, prof})
		}
	}
	type res struct {
		k      string
		digest string
	}
	results := make(chan res, len(keys))
	sem := make(chan struct{}, 4)
	for _, k := range keys {
		k := k
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			spec, err := worksim.Lookup(k.scenario)
			if err != nil {
				t.Error(err)
				results <- res{}
				return
			}
			profile, err := worksim.ResolveProfile(k.profile)
			if err != nil {
				t.Error(err)
				results <- res{}
				return
			}
			results <- res{k.scenario + "/" + k.profile, runDigest(t, spec, profile, worksim.DefaultSeed)}
		}()
	}
	for range keys {
		r := <-results
		if r.k != "" {
			got[r.k] = r.digest
		}
	}
	if t.Failed() {
		t.Fatalf("capture failed")
	}

	path := filepath.Join("testdata", "catalog_identity.golden.json")
	if *update {
		names := make([]string, 0, len(got))
		for k := range got {
			names = append(names, k)
		}
		sort.Strings(names)
		var buf bytes.Buffer
		buf.WriteString("{\n")
		for i, k := range names {
			fmt.Fprintf(&buf, "  %q: %q", k, got[k])
			if i < len(names)-1 {
				buf.WriteString(",")
			}
			buf.WriteString("\n")
		}
		buf.WriteString("}\n")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("catalog shape drifted: %d runs captured, golden has %d", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: missing from capture", k)
		} else if g != w {
			t.Errorf("%s: report/trace bytes drifted (digest %s, want %s)", k, g, w)
		}
	}
}
