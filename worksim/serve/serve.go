// Package serve is the public surface of the simulation-as-a-service
// subsystem: the configuration and server types behind the worksimd daemon.
// It wraps repro/internal/serve the way the worksim package wraps the
// engine — binaries and examples import this package, never the internal
// one.
//
// A Server exposes the worksim run lifecycle over JSON/REST (stdlib
// net/http only):
//
//	POST   /v1/runs              submit a run (catalog name or inline spec), get an ID
//	GET    /v1/runs/{id}         state + final report (byte-identical to worksim.Open(...).Run)
//	GET    /v1/runs/{id}/events  live SSE stream of the typed event feed (-trace schema)
//	DELETE /v1/runs/{id}         cancel via the run's context
//	POST   /v1/sweeps            async scenario × profile × seed sweep on the bounded pool
//	GET    /v1/sweeps/{id}       sweep progress (seeds completed) and result
//	GET    /v1/scenarios         the named catalog, profiles and attack classes
//	GET    /v1/healthz           liveness + drain state (unauthenticated)
//	GET    /v1/version           façade version (unauthenticated)
//
// Cross-cutting: static API-key auth, per-key token-bucket rate limiting, a
// concurrent-job quota, structured request logs with job-ID correlation,
// and graceful drain (Serve returns cleanly once its context fires and
// every job wound down).
package serve

import (
	internal "repro/internal/serve"

	"repro/worksim"
)

// Config configures a Server; the zero value serves with defaults (no
// auth, default rate limits and quotas).
type Config = internal.Config

// Server is the simulation-as-a-service HTTP server. Use Handler to mount
// it on an existing mux, or Serve/ListenAndServe for the full lifecycle
// including graceful drain.
type Server = internal.Server

// State is a job lifecycle state: pending → running → done | failed |
// cancelled.
type State = internal.State

// Job lifecycle states.
const (
	StatePending   = internal.StatePending
	StateRunning   = internal.StateRunning
	StateDone      = internal.StateDone
	StateFailed    = internal.StateFailed
	StateCancelled = internal.StateCancelled
)

// EnvAPIKeys is the environment variable worksimd reads API keys from when
// no key file is given (comma-separated).
const EnvAPIKeys = internal.EnvAPIKeys

// New builds a Server. The reported version defaults to the worksim façade
// version.
func New(cfg Config) *Server {
	if cfg.Version == "" {
		cfg.Version = worksim.Version
	}
	return internal.New(cfg)
}

// LoadAPIKeysFile reads a key file: one key per line, blank lines and
// #-comments ignored.
func LoadAPIKeysFile(path string) ([]string, error) { return internal.LoadAPIKeysFile(path) }

// APIKeysFromEnv returns the keys of EnvAPIKeys, nil when unset.
func APIKeysFromEnv() []string { return internal.APIKeysFromEnv() }
