package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/worksim"
	"repro/worksim/serve"
)

// checkGoroutineLeak snapshots the live goroutine count and returns a
// function to call at the end of the test: it fails if, after a settle
// window, more goroutines are alive than at the snapshot — catching job
// goroutines or SSE streams that outlive their server.
func checkGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d still running after settle window", before, runtime.NumGoroutine())
	}
}

// newTestServer mounts a default-config server on httptest.
func newTestServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(cfg).Handler())
	t.Cleanup(func() {
		ts.Close()
		http.DefaultClient.CloseIdleConnections()
	})
	return ts
}

// postJSON posts a JSON body and decodes the JSON response into out.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("response %s is not JSON: %v", data, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("response %s is not JSON: %v", data, err)
		}
	}
	return resp.StatusCode
}

// runStatus mirrors the daemon's run wire schema.
type runStatus struct {
	ID        string          `json:"id"`
	State     serve.State     `json:"state"`
	Scenario  string          `json:"scenario"`
	Profile   string          `json:"profile"`
	Seed      int64           `json:"seed"`
	HorizonNs int64           `json:"horizonNs"`
	Events    uint64          `json:"events"`
	Error     string          `json:"error"`
	Report    json.RawMessage `json:"report"`
}

// pollRun polls a run until pred holds or the deadline passes.
func pollRun(t *testing.T, base, id string, pred func(runStatus) bool) runStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st runStatus
	for time.Now().Before(deadline) {
		if code := getJSON(t, base+"/v1/runs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET run %s: status %d", id, code)
		}
		if pred(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s never reached the desired state; last: %+v", id, st)
	return st
}

// TestRunLifecycleByteIdenticalReport is the service's core contract: submit
// → poll → done, with a report byte-identical to an in-process worksim run
// at the same scenario, profile, seed and horizon.
func TestRunLifecycleByteIdenticalReport(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	const (
		scenarioName = "gnss-spoof"
		seed         = int64(7)
		horizon      = 2 * time.Minute
	)
	var st runStatus
	code := postJSON(t, ts.URL+"/v1/runs",
		fmt.Sprintf(`{"scenario":%q,"profile":"secured","seed":%d,"horizonNs":%d}`, scenarioName, seed, int64(horizon)), &st)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: status %d, want 202", code)
	}
	if st.ID == "" || st.State == "" {
		t.Fatalf("submission response incomplete: %+v", st)
	}
	if st.Scenario != scenarioName || st.Profile != "secured" || st.Seed != seed || st.HorizonNs != int64(horizon) {
		t.Fatalf("echoed parameters wrong: %+v", st)
	}

	final := pollRun(t, ts.URL, st.ID, func(s runStatus) bool { return s.State == serve.StateDone })
	if final.Error != "" || len(final.Report) == 0 {
		t.Fatalf("done run has error=%q report=%d bytes", final.Error, len(final.Report))
	}
	if final.Events == 0 {
		t.Fatal("done run published no events")
	}

	// The same run, in process, through the façade.
	spec, err := worksim.Lookup(scenarioName)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := worksim.Open(spec,
		worksim.WithSeed(seed), worksim.WithHorizon(horizon),
		worksim.WithProfile(worksim.Secured()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Report, want) {
		t.Fatalf("daemon report is not byte-identical to the in-process run:\ndaemon: %s\ndirect: %s", final.Report, want)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE consumes an SSE stream until the terminal `event: end` frame (or
// maxFrames), returning the parsed frames.
func readSSE(t *testing.T, r io.Reader, maxFrames int) []sseEvent {
	t.Helper()
	var (
		frames []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur != (sseEvent{}) {
				frames = append(frames, cur)
				if cur.event == "end" || len(frames) >= maxFrames {
					return frames
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

// TestRunEventsSSEAndReplay: the event stream frames the -trace JSON lines,
// ends with a terminal frame, and replays exactly from a Last-Event-ID
// cursor on reconnect.
func TestRunEventsSSEAndReplay(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	var st runStatus
	code := postJSON(t, ts.URL+"/v1/runs", `{"scenario":"baseline","horizonNs":60000000000}`, &st)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: status %d", code)
	}
	pollRun(t, ts.URL, st.ID, func(s runStatus) bool { return s.State == serve.StateDone })

	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	frames := readSSE(t, resp.Body, 100000)
	if len(frames) < 4 {
		t.Fatalf("stream produced %d frames, want at least 3 events plus the end frame", len(frames))
	}
	last := frames[len(frames)-1]
	if last.event != "end" {
		t.Fatalf("stream did not finish with an end frame: %+v", last)
	}
	var endStatus runStatus
	if err := json.Unmarshal([]byte(last.data), &endStatus); err != nil || endStatus.State != serve.StateDone {
		t.Fatalf("end frame data = %s (err %v), want the done run status", last.data, err)
	}
	events := frames[: len(frames)-1 : len(frames)-1]
	for i, f := range events {
		if f.id != fmt.Sprint(i+1) {
			t.Fatalf("frame %d id = %s, want dense 1-based sequence", i, f.id)
		}
		// The data payload is the -trace encoding verbatim:
		// {"event": KIND, "data": {...}} with KIND matching the SSE event.
		var line struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal([]byte(f.data), &line); err != nil {
			t.Fatalf("frame %d data is not a trace line: %v", i, err)
		}
		if line.Event != f.event || len(line.Data) == 0 {
			t.Fatalf("frame %d: SSE event %q vs trace line event %q (data %d bytes)",
				i, f.event, line.Event, len(line.Data))
		}
	}

	// Reconnect mid-stream: replay resumes exactly after the cursor.
	cursor := len(events) / 2
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(cursor))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, resp2.Body, 100000)
	if len(replay) != len(frames)-cursor {
		t.Fatalf("replay after id %d returned %d frames, want %d", cursor, len(replay), len(frames)-cursor)
	}
	if replay[0].id != fmt.Sprint(cursor+1) {
		t.Fatalf("replay resumed at id %s, want %d", replay[0].id, cursor+1)
	}
	for i, f := range replay[:len(replay)-1] {
		orig := events[cursor+i]
		if f.id != orig.id || f.event != orig.event || f.data != orig.data {
			t.Fatalf("replayed frame %d differs from the original stream:\nreplay: %+v\nfirst:  %+v", i, f, orig)
		}
	}
}

// TestCancelMidRun: DELETE stops a long run between control ticks, the job
// reaches the cancelled state, and no goroutine outlives it.
func TestCancelMidRun(t *testing.T) {
	leakCheck := checkGoroutineLeak(t)
	ts := newTestServer(t, serve.Config{})

	var st runStatus
	// A 200-hour horizon cannot finish during the test; only cancellation
	// ends it.
	code := postJSON(t, ts.URL+"/v1/runs", `{"scenario":"baseline","horizonNs":720000000000000}`, &st)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: status %d", code)
	}
	// Ensure it is actually simulating before cancelling.
	pollRun(t, ts.URL, st.ID, func(s runStatus) bool { return s.Events > 0 })

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE run: status %d", resp.StatusCode)
	}

	final := pollRun(t, ts.URL, st.ID, func(s runStatus) bool { return s.State.Terminal() })
	if final.State != serve.StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if len(final.Report) != 0 {
		t.Fatal("cancelled run carries a report")
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	leakCheck()
}

// TestAuth: with keys configured every endpoint except the probes demands a
// valid key via Bearer or X-API-Key.
func TestAuth(t *testing.T) {
	ts := newTestServer(t, serve.Config{APIKeys: []string{"s3cret"}})

	status := func(headers map[string]string, path string) int {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status(nil, "/v1/scenarios"); got != http.StatusUnauthorized {
		t.Fatalf("no key: status %d, want 401", got)
	}
	if got := status(map[string]string{"X-API-Key": "wrong"}, "/v1/scenarios"); got != http.StatusUnauthorized {
		t.Fatalf("wrong key: status %d, want 401", got)
	}
	if got := status(map[string]string{"Authorization": "Bearer s3cret"}, "/v1/scenarios"); got != http.StatusOK {
		t.Fatalf("bearer key: status %d, want 200", got)
	}
	if got := status(map[string]string{"X-API-Key": "s3cret"}, "/v1/scenarios"); got != http.StatusOK {
		t.Fatalf("X-API-Key: status %d, want 200", got)
	}
	// The probes stay open for load balancers and humans.
	if got := status(nil, "/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz without key: status %d, want 200", got)
	}
	if got := status(nil, "/v1/version"); got != http.StatusOK {
		t.Fatalf("version without key: status %d, want 200", got)
	}
}

// TestRateLimit: the per-key token bucket throttles with 429 + Retry-After
// and refills with the (injected) clock.
func TestRateLimit(t *testing.T) {
	// The injected clock is read from handler goroutines while the test
	// advances it, so guard it.
	var (
		mu    sync.Mutex
		clock = time.Unix(1000, 0)
	)
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		clock = clock.Add(d)
	}
	ts := newTestServer(t, serve.Config{RatePerSec: 1, Burst: 2, Now: now})

	get := func() *http.Response {
		resp, err := http.Get(ts.URL + "/v1/scenarios")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	for i := 0; i < 2; i++ {
		if resp := get(); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request beyond burst: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	advance(time.Second) // refill one token
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after refill: status %d, want 200", resp.StatusCode)
	}
}

// apiErrorBody is the daemon's error envelope.
type apiErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Field   string `json:"field"`
	} `json:"error"`
}

// TestSubmitValidation: bad submissions are 4xx with typed, field-naming
// errors — never failed jobs.
func TestSubmitValidation(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	cases := []struct {
		name   string
		body   string
		status int
		field  string
	}{
		{"scenario and spec together", `{"scenario":"baseline","spec":{}}`, http.StatusBadRequest, ""},
		{"neither scenario nor spec", `{}`, http.StatusBadRequest, ""},
		{"unknown scenario", `{"scenario":"warp-drive"}`, http.StatusUnprocessableEntity, "scenario"},
		{"unknown profile", `{"scenario":"baseline","profile":"paranoid"}`, http.StatusUnprocessableEntity, "profile"},
		{"non-positive declared horizon", `{"spec":{"horizonNs":-5}}`, http.StatusUnprocessableEntity, "horizonNs"},
		{"duplicate attack schedule", `{"spec":{"attacks":[{"name":"gnss-jam","startFrac":0.1,"stopFrac":0.3},{"name":"gnss-jam","startFrac":0.4,"stopFrac":0.6}]}}`,
			http.StatusUnprocessableEntity, "attacks[1].name"},
		{"trailing garbage", `{"scenario":"baseline"} extra`, http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body apiErrorBody
			code := postJSON(t, ts.URL+"/v1/runs", tc.body, &body)
			if code != tc.status {
				t.Fatalf("status %d, want %d (error: %+v)", code, tc.status, body.Error)
			}
			if body.Error.Code == "" || body.Error.Message == "" {
				t.Fatalf("error envelope incomplete: %+v", body.Error)
			}
			if body.Error.Field != tc.field {
				t.Fatalf("error.field = %q, want %q", body.Error.Field, tc.field)
			}
		})
	}
	// No job was created by any rejected submission.
	var runs struct {
		Runs []runStatus `json:"runs"`
	}
	if code := getJSON(t, ts.URL+"/v1/runs", &runs); code != http.StatusOK || len(runs.Runs) != 0 {
		t.Fatalf("rejected submissions created jobs: status %d, runs %+v", code, runs.Runs)
	}
}

// TestSweepLifecycle: an async sweep reports seed-level progress and
// finishes with the campaign's JSON export.
func TestSweepLifecycle(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	type sweepStatus struct {
		ID       string      `json:"id"`
		State    serve.State `json:"state"`
		Progress struct {
			Done  int `json:"done"`
			Total int `json:"total"`
		} `json:"progress"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	var st sweepStatus
	code := postJSON(t, ts.URL+"/v1/sweeps",
		`{"scenarios":["baseline"],"profiles":["secured"],"seeds":{"base":1,"count":2},"durationNs":60000000000,"parallel":2}`, &st)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d", code)
	}
	if st.Progress.Total != 2 {
		t.Fatalf("progress total = %d, want 2 (1 scenario × 1 profile × 2 seeds)", st.Progress.Total)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !st.State.Terminal() {
		time.Sleep(10 * time.Millisecond)
		if code := getJSON(t, ts.URL+"/v1/sweeps/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("GET sweep: status %d", code)
		}
	}
	if st.State != serve.StateDone || st.Error != "" {
		t.Fatalf("sweep ended %s (error %q), want done", st.State, st.Error)
	}
	if st.Progress.Done != st.Progress.Total {
		t.Fatalf("done sweep progress %d/%d, want full", st.Progress.Done, st.Progress.Total)
	}
	if len(st.Result) == 0 {
		t.Fatal("done sweep has no result")
	}
}

// TestSweepCacheProgress: with Config.CacheDir set, a repeated sweep is
// served from the content-addressed result cache — progress reports every
// run as cached and the result bytes are identical to the cold run's.
func TestSweepCacheProgress(t *testing.T) {
	ts := newTestServer(t, serve.Config{CacheDir: t.TempDir()})
	type sweepStatus struct {
		ID       string      `json:"id"`
		State    serve.State `json:"state"`
		Progress struct {
			Done   int `json:"done"`
			Total  int `json:"total"`
			Cached int `json:"cached"`
		} `json:"progress"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	submit := func() sweepStatus {
		t.Helper()
		var st sweepStatus
		code := postJSON(t, ts.URL+"/v1/sweeps",
			`{"scenarios":["baseline"],"profiles":["unsecured","secured"],"seeds":{"base":1,"count":2},"durationNs":60000000000,"parallel":2}`, &st)
		if code != http.StatusAccepted {
			t.Fatalf("POST /v1/sweeps: status %d", code)
		}
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) && !st.State.Terminal() {
			time.Sleep(10 * time.Millisecond)
			if code := getJSON(t, ts.URL+"/v1/sweeps/"+st.ID, &st); code != http.StatusOK {
				t.Fatalf("GET sweep: status %d", code)
			}
		}
		if st.State != serve.StateDone || st.Error != "" {
			t.Fatalf("sweep ended %s (error %q), want done", st.State, st.Error)
		}
		return st
	}
	cold := submit()
	if cold.Progress.Cached != 0 {
		t.Fatalf("cold sweep reports %d cached runs, want 0", cold.Progress.Cached)
	}
	warm := submit()
	if warm.Progress.Cached != warm.Progress.Total {
		t.Fatalf("warm sweep progress = %+v, want every run cached", warm.Progress)
	}
	if string(warm.Result) != string(cold.Result) {
		t.Fatal("warm-cache sweep result differs from the cold run")
	}
}

// TestQuota: submissions beyond MaxConcurrentJobs are rejected with 429
// until a slot frees up.
func TestQuota(t *testing.T) {
	ts := newTestServer(t, serve.Config{MaxConcurrentJobs: 1})
	var first runStatus
	if code := postJSON(t, ts.URL+"/v1/runs", `{"scenario":"baseline","horizonNs":720000000000000}`, &first); code != http.StatusAccepted {
		t.Fatalf("first submission: status %d", code)
	}
	var errBody apiErrorBody
	if code := postJSON(t, ts.URL+"/v1/runs", `{"scenario":"baseline"}`, &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("submission beyond quota: status %d, want 429", code)
	}
	if errBody.Error.Code != "quota_exceeded" {
		t.Fatalf("quota error code = %q", errBody.Error.Code)
	}
	// Cancel the hog; the slot frees and submissions flow again.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+first.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	pollRun(t, ts.URL, first.ID, func(s runStatus) bool { return s.State.Terminal() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		var again runStatus
		if code := postJSON(t, ts.URL+"/v1/runs", `{"scenario":"baseline","horizonNs":1000000000}`, &again); code == http.StatusAccepted {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("slot never freed after cancelling the active run")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain: cancelling Serve's context drains cleanly — in-flight
// jobs are cancelled within the drain deadline, no goroutine survives, and
// Serve returns nil.
func TestGracefulDrain(t *testing.T) {
	leakCheck := checkGoroutineLeak(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{DrainTimeout: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	var st runStatus
	if code := postJSON(t, base+"/v1/runs", `{"scenario":"baseline","horizonNs":720000000000000}`, &st); code != http.StatusAccepted {
		t.Fatalf("submission: status %d", code)
	}
	pollRun(t, base, st.ID, func(s runStatus) bool { return s.Events > 0 })

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after its context fired")
	}
	if !srv.Draining() {
		t.Fatal("server does not report draining after shutdown")
	}
	if n := srv.ActiveJobs(); n != 0 {
		t.Fatalf("%d jobs still active after drain", n)
	}
	http.DefaultClient.CloseIdleConnections()
	leakCheck()
}

// TestHealthzAndVersion: the probes report liveness, drain state and the
// façade version.
func TestHealthzAndVersion(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	var health struct {
		Status     string `json:"status"`
		Draining   bool   `json:"draining"`
		ActiveJobs int    `json:"activeJobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Status != "ok" || health.Draining {
		t.Fatalf("healthz = %+v, want status ok, not draining", health)
	}
	var ver struct {
		Version string `json:"version"`
	}
	if code := getJSON(t, ts.URL+"/v1/version", &ver); code != http.StatusOK {
		t.Fatalf("version: status %d", code)
	}
	if ver.Version != worksim.Version {
		t.Fatalf("version = %q, want the façade version %q", ver.Version, worksim.Version)
	}
}

// TestScenariosEndpoint: the catalog listing matches the façade's catalog.
func TestScenariosEndpoint(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	var got struct {
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
		Profiles []string `json:"profiles"`
	}
	if code := getJSON(t, ts.URL+"/v1/scenarios", &got); code != http.StatusOK {
		t.Fatalf("scenarios: status %d", code)
	}
	names := make([]string, 0, len(got.Scenarios))
	for _, s := range got.Scenarios {
		names = append(names, s.Name)
	}
	if want := worksim.Catalog(); !equalStrings(names, want) {
		t.Fatalf("scenario names = %v, want the catalog %v", names, want)
	}
	if len(got.Profiles) == 0 {
		t.Fatal("no profiles listed")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
