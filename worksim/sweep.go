package worksim

import (
	"context"

	"repro/internal/campaign"
	"repro/worksim/event"
)

// Sweep configuration and result types, re-exported from the campaign
// engine. SweepResult.JSON is the public machine-readable export — its
// schema (field names and order) is locked by a golden-file test.
type (
	// SweepOptions configures a scenario sweep: catalog scenarios × security
	// profiles × seeds, with optional per-seed timeseries sampling and
	// early-stop predicates.
	SweepOptions = campaign.SweepOptions
	// SweepResult is the outcome of a full sweep, cells ordered
	// scenario-major in the requested order.
	SweepResult = campaign.SweepResult
	// SweepCell is one (scenario, profile) cell with its per-seed runs and
	// aggregates.
	SweepCell = campaign.SweepCell
	// SeedRange is the seed convention: Count consecutive seeds from Base.
	SeedRange = campaign.SeedRange
	// TimePoint is one downsampled sample of a run's per-tick timeseries.
	TimePoint = campaign.TimePoint
)

// DefaultSweepDuration is the per-run simulated duration when
// SweepOptions.Duration is zero.
const DefaultSweepDuration = campaign.DefaultSweepDuration

// Sweep fans the scenario × profile × seed cross-product out over a bounded
// worker pool and aggregates per-seed metrics into mean / stddev / 95%-CI
// summaries. For a fixed seed set the result (and its JSON export) is
// byte-identical regardless of SweepOptions.Parallel.
//
// The context cancels the sweep end to end: workers stop claiming seeds,
// in-flight simulation runs stop between control ticks, and Sweep returns
// ctx.Err() once the pool has drained — no goroutines outlive the call. A
// context that never fires yields byte-identical output to
// context.Background().
func Sweep(ctx context.Context, opts SweepOptions) (*SweepResult, error) {
	return campaign.Sweep(ctx, opts)
}

// EarlyStopByName resolves a named early-stop predicate (collision, unsafe,
// safe-stop, first-alert) — the CLI surface of SweepOptions.EarlyStop. The
// empty name resolves to nil (no early stop).
func EarlyStopByName(name string) (func(event.TickSnapshot) bool, error) {
	return campaign.EarlyStopByName(name)
}
