package worksim

import (
	"context"

	"repro/internal/campaign"
	"repro/internal/shard"
	"repro/worksim/event"
)

// Sweep configuration and result types, re-exported from the campaign
// engine. SweepResult.JSON is the public machine-readable export — its
// schema (field names and order) is locked by a golden-file test.
type (
	// SweepOptions configures a scenario sweep: catalog scenarios × security
	// profiles × seeds, with optional per-seed timeseries sampling and
	// early-stop predicates.
	SweepOptions = campaign.SweepOptions
	// SweepResult is the outcome of a full sweep, cells ordered
	// scenario-major in the requested order.
	SweepResult = campaign.SweepResult
	// SweepCell is one (scenario, profile) cell with its per-seed runs and
	// aggregates.
	SweepCell = campaign.SweepCell
	// SeedRange is the seed convention: Count consecutive seeds from Base.
	SeedRange = campaign.SeedRange
	// TimePoint is one downsampled sample of a run's per-tick timeseries.
	TimePoint = campaign.TimePoint
	// ShardSel selects one shard of a sharded sweep (SweepOptions.Shard):
	// index i of count N, partitioning the scenario × profile × seed cube by
	// a stable hash that is independent of enumeration order.
	ShardSel = shard.Sel
	// ShardKey identifies one (scenario, profile, seed) run — the unit the
	// shard partition assigns.
	ShardKey = shard.Key
	// ShardInfo is the shard header a sharded sweep result carries (and
	// MergeSweeps strips).
	ShardInfo = campaign.ShardInfo
	// SweepStats carries a sweep's live execution counters (fresh runs,
	// cache hits/misses/corruptions, checkpoint resumes); hand one to
	// SweepOptions.Stats and snapshot it with View. Counters are never part
	// of sweep JSON, so cold and warm runs stay byte-identical.
	SweepStats = campaign.SweepStats
	// SweepStatsView is a point-in-time snapshot of SweepStats.
	SweepStatsView = campaign.SweepStatsView
)

// DefaultSweepDuration is the per-run simulated duration when
// SweepOptions.Duration is zero.
const DefaultSweepDuration = campaign.DefaultSweepDuration

// Sweep fans the scenario × profile × seed cross-product out over a bounded
// worker pool and aggregates per-seed metrics into mean / stddev / 95%-CI
// summaries. For a fixed seed set the result (and its JSON export) is
// byte-identical regardless of SweepOptions.Parallel.
//
// The context cancels the sweep end to end: workers stop claiming seeds,
// in-flight simulation runs stop between control ticks, and Sweep returns
// ctx.Err() once the pool has drained — no goroutines outlive the call. A
// context that never fires yields byte-identical output to
// context.Background().
func Sweep(ctx context.Context, opts SweepOptions) (*SweepResult, error) {
	return campaign.Sweep(ctx, opts)
}

// EarlyStopByName resolves a named early-stop predicate (collision, unsafe,
// safe-stop, first-alert) — the CLI surface of SweepOptions.EarlyStop. The
// empty name resolves to nil (no early stop). Callers that cache or
// checkpoint must also record the name in SweepOptions.EarlyStopName so the
// predicate enters the run key.
func EarlyStopByName(name string) (func(event.TickSnapshot) bool, error) {
	return campaign.EarlyStopByName(name)
}

// ParseShard parses an "i/N" shard selector (e.g. "0/4") — the CLI surface
// of SweepOptions.Shard. "0/1" means unsharded.
func ParseShard(s string) (ShardSel, error) { return shard.Parse(s) }

// AssignShard returns which shard of count owns a run — the stable hash
// partition sharded sweeps and MergeSweeps agree on. It depends only on the
// key and count, never on enumeration order, so any process computes the
// same answer.
func AssignShard(k ShardKey, count int) int { return shard.Assign(k, count) }

// MergeSweeps combines a complete set of sharded sweep results (any order)
// into the single result an unsharded sweep would have produced — the JSON
// export of the merge is byte-identical to the single-process sweep. It
// fails loudly on a missing, duplicate or inconsistent shard, or any seed
// reported by a shard that does not own it.
func MergeSweeps(in []*SweepResult) (*SweepResult, error) {
	return campaign.MergeSweeps(in)
}

// MergeSweepJSON merges serialized sharded sweep results and returns the
// merged result plus its indented JSON export.
func MergeSweepJSON(blobs [][]byte) (*SweepResult, []byte, error) {
	return campaign.MergeSweepJSON(blobs)
}
