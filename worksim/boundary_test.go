package worksim_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFacadeBoundary is the internal-import lint: every binary under cmd/
// and every example under examples/ must reach the engine exclusively
// through the public worksim façade. A direct repro/internal/... import
// would silently erode the API boundary this package exists to hold, so the
// test fails naming the offending file and import.
func TestFacadeBoundary(t *testing.T) {
	for _, dir := range []string{"../cmd", "../examples"} {
		checked := 0
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			checked++
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				facade := ipath == "repro/worksim" || strings.HasPrefix(ipath, "repro/worksim/")
				if strings.HasPrefix(ipath, "repro/") && !facade {
					t.Errorf("%s imports %s: cmd/ and examples/ must import only repro/worksim... packages", path, ipath)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", dir, err)
		}
		if checked == 0 {
			t.Fatalf("walk %s: no Go files found (moved? the lint silently passing would be worse)", dir)
		}
	}
}
