// Package scenariospec is the public declarative scenario model: a Spec is a
// JSON-serializable description of one worksite operational situation — site
// geometry, weather, workers, drone, fusion policy, security profile, and an
// attack schedule expressed as {name, startFrac, stopFrac, params} data.
//
// Specs are pure data; worksim.Open compiles one into a runnable session and
// worksim.Sweep fans catalog specs over profiles and seeds. The attack
// classes a spec may schedule come from the engine's arming registry
// (AttackNames), so a spec file can never name an attack the simulator does
// not implement.
package scenariospec

import (
	"repro/internal/scenario"
	"repro/internal/sensors"
)

// Spec is a complete declarative scenario. The zero value is not runnable;
// start from Baseline() (or a worksim catalog entry) and override fields.
type Spec = scenario.Spec

// Component specs of a scenario.
type (
	// SiteSpec is the terrain: grid geometry and forest composition.
	SiteSpec = scenario.SiteSpec
	// TimingSpec is the mission timing (load/unload dwell, tick period).
	TimingSpec = scenario.TimingSpec
	// AttackSpec schedules one attack class as data, with its active window
	// expressed as fractions of the run duration.
	AttackSpec = scenario.AttackSpec
	// Params carries attack-class tuning knobs; unknown keys are ignored and
	// missing keys fall back to class defaults.
	Params = scenario.Params
	// Weather holds the environmental conditions for the whole run.
	Weather = sensors.Weather
)

// SpecError is the typed validation failure Parse and Spec.Validate return:
// it names the offending field (e.g. "attacks[2].name", "horizonNs") so
// wire consumers — the worksimd daemon maps one to HTTP 422 — can point at
// the exact field. Match with errors.As.
type SpecError = scenario.SpecError

// Baseline returns the clean E1 baseline scenario: a 400x400 m site,
// moderate forest, three workers, clear weather, drone on, no defences, no
// attacks.
func Baseline() Spec { return scenario.Baseline() }

// Parse decodes a JSON spec on top of the baseline, so partial documents
// only state what they change from the E1 scenario.
func Parse(data []byte) (Spec, error) { return scenario.Parse(data) }

// LoadFile reads and parses a JSON spec file (see Parse).
func LoadFile(path string) (Spec, error) { return scenario.LoadFile(path) }

// AttackNames lists the registered attack classes a spec may schedule,
// sorted.
func AttackNames() []string { return scenario.AttackNames() }

// AttackDescription returns the one-line description of a registered attack
// class ("" for unknown names).
func AttackDescription(name string) string { return scenario.AttackDescription(name) }
