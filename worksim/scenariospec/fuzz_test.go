package scenariospec_test

import (
	"testing"

	"repro/worksim"
	"repro/worksim/scenariospec"
)

// FuzzParseSpec fuzzes the public JSON scenario-spec parser. The seed corpus
// is the real catalog (every named scenario, serialized by the spec's own
// canonical encoder) plus structural edge cases, so the fuzzer starts from
// the grammar production actually uses and mutates outward.
//
// Invariants checked on every accepted input:
//   - the spec validates (Parse must never return an invalid spec),
//   - it has a non-empty name (Parse defaults to "custom"),
//   - it serializes, and re-parsing the serialization is a fixed point —
//     the canonical JSON round-trips byte-identically.
func FuzzParseSpec(f *testing.F) {
	for _, name := range worksim.Catalog() {
		spec, err := worksim.Lookup(name)
		if err != nil {
			f.Fatal(err)
		}
		data, err := spec.JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		``, `{}`, `null`, `[]`, `{"name":"x"}`,
		`{"workers":-1}`,
		`{"attacks":[{"name":"gnss-spoof","startFrac":0.2,"stopFrac":0.8}]}`,
		`{"attacks":[{"name":"nope"}]}`,
		`{"attacks":[{"name":"gnss-spoof","startFrac":2}]}`,
		`{"site":{"cols":0},"timing":{"tickPeriodNs":1}}`,
		`{"weather":{"rain":0.5,"fog":1,"darkness":0},"drone":false,"profile":{"idsEnabled":true}}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := scenariospec.Parse(data)
		if err != nil {
			return // rejected input: nothing further to hold
		}
		if spec.Name == "" {
			t.Fatalf("accepted spec has empty name: %q", data)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("Parse returned an invalid spec (%v): %q", err, data)
		}
		canon, err := spec.JSON()
		if err != nil {
			t.Fatalf("accepted spec does not serialize (%v): %q", err, data)
		}
		again, err := scenariospec.Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse (%v): %s", err, canon)
		}
		canon2, err := again.JSON()
		if err != nil {
			t.Fatalf("re-parsed spec does not serialize (%v): %s", err, canon)
		}
		if string(canon) != string(canon2) {
			t.Fatalf("canonical JSON is not a fixed point:\nfirst:  %s\nsecond: %s", canon, canon2)
		}
	})
}
