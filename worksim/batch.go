package worksim

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// Batch is a set of per-seed sessions over one commissioned scenario:
// OpenBatch builds and commissions the expensive shared state (validated
// spec, PKI material, established secure channels) once, then forks a cheap
// session per seed. Each session carries the determinism contract of Open —
// a batched session's report and event stream are byte-identical to an
// independent Open of the same (Scenario, seed, horizon, profile).
type Batch struct {
	seeds    []int64
	sessions []*Session
}

// OpenBatch compiles spec once and returns one session per seed, in seed
// order. Options apply to every session; WithSeed is rejected, because the
// seeds argument is the batch's seed axis. A WithObserver observer is
// subscribed to every session: fine for the sequential Batch.Run, but
// callers running sessions concurrently should instead attach per-session
// observers via Session(i).Subscribe before starting.
func OpenBatch(spec Scenario, seeds []int64, opts ...Option) (*Batch, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("worksim: OpenBatch needs at least one seed")
	}
	c := sessionConfig{seed: DefaultSeed}
	for _, opt := range opts {
		opt(&c)
	}
	if c.seedSet {
		return nil, fmt.Errorf("worksim: OpenBatch got WithSeed; seeds are the batch argument")
	}
	if c.horizon <= 0 {
		if spec.Horizon > 0 {
			c.horizon = spec.Horizon
		} else {
			c.horizon = DefaultHorizon
		}
	}
	if c.profile != nil {
		spec = spec.WithProfile(*c.profile)
	}
	sb, err := scenario.NewBatch(spec)
	if err != nil {
		return nil, err
	}
	b := &Batch{seeds: append([]int64(nil), seeds...)}
	for _, seed := range b.seeds {
		inner, _, err := sb.Build(seed, c.horizon)
		if err != nil {
			return nil, err
		}
		s := &Session{inner: inner}
		if c.sample > 0 {
			inner.Subscribe(campaign.SampleObserver(c.sample, &s.series))
		}
		for _, o := range c.observers {
			inner.Subscribe(o)
		}
		b.sessions = append(b.sessions, s)
	}
	return b, nil
}

// Len returns the number of per-seed sessions.
func (b *Batch) Len() int { return len(b.sessions) }

// Seed returns the i-th session's seed.
func (b *Batch) Seed(i int) int64 { return b.seeds[i] }

// Session returns the i-th per-seed session, in the order of OpenBatch's
// seeds argument.
func (b *Batch) Session(i int) *Session { return b.sessions[i] }

// Run executes every session to its horizon sequentially, in seed order, and
// returns the reports in the same order. Each report is byte-identical to
// the same seed run through Open + Run.
func (b *Batch) Run(ctx context.Context) ([]Report, error) {
	reports := make([]Report, 0, len(b.sessions))
	for i, s := range b.sessions {
		rep, err := s.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("worksim: batch seed %d: %w", b.seeds[i], err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
