package worksim_test

// Façade tests for the campaign scale-out surface: spec hashing, shard
// selection and shard merging must compose through the public API exactly as
// they do through the internal engine.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/worksim"
)

// TestSpecHash: hashing is exposed on the façade, stable, and sensitive to
// the profile — the property callers rely on to pre-compute cache keys.
func TestSpecHash(t *testing.T) {
	base := worksim.Baseline()
	h1, err := worksim.SpecHash(base)
	if err != nil {
		t.Fatalf("SpecHash: %v", err)
	}
	h2, err := worksim.SpecHash(base)
	if err != nil || h1 != h2 {
		t.Fatalf("SpecHash not stable: %q vs %q (err %v)", h1, h2, err)
	}
	if len(h1) != 64 {
		t.Fatalf("SpecHash %q is not a sha256 hex digest", h1)
	}
	hs, err := worksim.SpecHash(base.WithProfile(worksim.Secured()))
	if err != nil {
		t.Fatalf("SpecHash(secured): %v", err)
	}
	if hs == h1 {
		t.Fatal("profile change did not change the spec hash")
	}
}

// TestShardSurface: ParseShard and AssignShard agree with the sweep's own
// partition, and a façade-level shard+merge reproduces the unsharded bytes.
func TestShardSurface(t *testing.T) {
	sel, err := worksim.ParseShard("1/2")
	if err != nil {
		t.Fatalf("ParseShard: %v", err)
	}
	if sel.Index != 1 || sel.Count != 2 {
		t.Fatalf("ParseShard = %+v", sel)
	}
	if _, err := worksim.ParseShard("2/2"); err == nil {
		t.Fatal("ParseShard accepted an out-of-range selector")
	}

	base := worksim.SweepOptions{
		Scenarios: []string{"baseline"},
		Profiles:  []string{"unsecured", "secured"},
		Seeds:     worksim.SeedRange{Base: 1, Count: 3},
		Parallel:  2,
		Duration:  2 * time.Minute,
	}
	single, err := worksim.Sweep(context.Background(), base)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	singleJSON, err := single.JSON()
	if err != nil {
		t.Fatal(err)
	}

	var parts []*worksim.SweepResult
	for i := 0; i < 2; i++ {
		opts := base
		opts.Shard = worksim.ShardSel{Index: i, Count: 2}
		res, err := worksim.Sweep(context.Background(), opts)
		if err != nil {
			t.Fatalf("Sweep(shard %d): %v", i, err)
		}
		// Every run the shard reports is one AssignShard says it owns.
		for _, c := range res.Cells {
			for _, run := range c.Result.PerSeed {
				k := worksim.ShardKey{Scenario: c.Scenario, Profile: c.Profile, Seed: run.Seed}
				if got := worksim.AssignShard(k, 2); got != i {
					t.Fatalf("shard %d reported %v, but AssignShard says shard %d", i, k, got)
				}
			}
		}
		parts = append(parts, res)
	}
	merged, err := worksim.MergeSweeps(parts)
	if err != nil {
		t.Fatalf("MergeSweeps: %v", err)
	}
	got, err := merged.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(singleJSON) {
		t.Fatal("façade shard+merge differs from the unsharded sweep")
	}
	if !strings.Contains(string(got), "\"version\": \""+worksim.Version+"\"") {
		t.Fatal("merged export lacks the façade version stamp")
	}
}
