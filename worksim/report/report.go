// Package report re-exports the rendering primitives every worksim artifact
// uses: padded ASCII tables with CSV export and ASCII line figures. Consumers
// that print campaign, sweep or experiment output build their own tables
// with the same machinery, so façade output and consumer output align.
package report

import "repro/internal/report"

// Table is a padded ASCII table with deterministic float formatting and CSV
// export; Figure is a multi-series ASCII line plot; Series is one named
// series of a figure.
type (
	Table  = report.Table
	Figure = report.Figure
	Series = report.Series
)

// NewTable creates a titled table with the given column headers.
func NewTable(title string, headers ...string) *Table { return report.NewTable(title, headers...) }

// NewFigure creates a titled figure with the given x-axis label.
func NewFigure(title, xLabel string) *Figure { return report.NewFigure(title, xLabel) }

// FormatFloat renders a float the way tables and CSV exports do (handles
// NaN, ±Inf and very large magnitudes deterministically).
func FormatFloat(v float64) string { return report.FormatFloat(v) }

// AddCountRows appends one "key, count" row per entry of counts in sorted
// key order, so counter maps (Report.Alerts, Report.Radio) render
// byte-identically on every run.
func AddCountRows[V int | int64](t *Table, counts map[string]V) {
	report.AddCountRows(t, counts)
}
