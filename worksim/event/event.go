// Package event is the public typed event stream of a worksim session: the
// per-tick snapshot plus the discrete incidents a run publishes (IDS alerts,
// attack phase transitions, security responses, operating-mode changes,
// mission transitions, safety events), and the Observer interface that
// receives them.
//
// Observers are passive taps on the simulation loop: they run synchronously
// inside it and must not mutate the site, so a run is byte-identical with
// and without subscribers. Use ObserverFuncs to implement a subset of the
// interface.
//
// Every type here is a stable alias of the engine's own event type, so a
// value received from a session can be stored, marshalled (each event
// carries stable JSON field names and an EventKind tag) or compared without
// conversion.
package event

import "repro/internal/worksite"

// Event is the common interface of everything a session publishes.
type Event = worksite.Event

// TickSnapshot is the per-control-tick state of the worksite; Tick is the
// same record under the name Session.Step returns.
type (
	TickSnapshot = worksite.TickSnapshot
	Tick         = worksite.Tick
)

// Discrete events.
type (
	// AlertRaised is published for every IDS alert, as it fires.
	AlertRaised = worksite.AlertRaised
	// AttackPhase is published when a scheduled attack window begins or ends.
	AttackPhase = worksite.AttackPhase
	// SecurityResponse is published when the site actively responds to an
	// attack (mode escalation, channel hop).
	SecurityResponse = worksite.SecurityResponse
	// ModeChange is published on every operating-mode transition.
	ModeChange = worksite.ModeChange
	// MissionPhase is published on every haul-cycle phase transition.
	MissionPhase = worksite.MissionPhase
	// SafetyEvent is published on safety-relevant transitions: unsafe-episode
	// boundaries, collision ticks, fail-safe latch changes.
	SafetyEvent = worksite.SafetyEvent
)

// Observer receives the typed event stream of a session; ObserverFuncs
// adapts a set of optional callbacks into one (nil fields ignore their event
// type).
type (
	Observer      = worksite.Observer
	ObserverFuncs = worksite.ObserverFuncs
)

// Security-response kinds (SecurityResponse.Kind).
const (
	ResponseModeEscalation = worksite.ResponseModeEscalation
	ResponseChannelHop     = worksite.ResponseChannelHop
)

// Safety-event kinds (SafetyEvent.Kind).
const (
	SafetyUnsafeEnter      = worksite.SafetyUnsafeEnter
	SafetyUnsafeExit       = worksite.SafetyUnsafeExit
	SafetyCollision        = worksite.SafetyCollision
	SafetyFailSafeEngaged  = worksite.SafetyFailSafeEngaged
	SafetyFailSafeReleased = worksite.SafetyFailSafeReleased
)
