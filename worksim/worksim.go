// Package worksim is the public façade of the forestry-worksite simulation:
// the supported, stable surface of the reproduction of "Cybersecurity
// Pathways Towards CE-Certified Autonomous Forestry Machines" (Mohamad et
// al., DSN 2024).
//
// The shape of the API:
//
//   - A Scenario ([scenariospec.Spec]) declaratively describes one
//     operational situation. Catalog lists the named standard scenarios,
//     Lookup fetches one, LoadSpec reads a JSON spec file.
//   - Open compiles a Scenario into a steppable *Session under functional
//     options (WithSeed, WithHorizon, WithProfile, WithSampleInterval,
//     WithObserver). Sessions publish the typed event stream of package
//     [repro/worksim/event] and produce a Report.
//   - Execution is context-aware end to end: Session.RunFor / RunUntil /
//     Run and the campaign pool behind Sweep observe cancellation between
//     control ticks and surface ctx.Err(). A context that never fires —
//     including context.Background() — yields byte-identical results to an
//     uncancellable run.
//   - Sweep fans the scenario × profile × seed cross-product out over a
//     bounded worker pool with per-metric aggregation, byte-reproducible
//     for a fixed seed set regardless of parallelism.
//
// Everything under internal/ remains free to evolve; the compatibility
// surface consumers may rely on is this package and its subpackages
// (event, scenariospec, report, pathway, experiments).
package worksim

import (
	"repro/internal/scenario"
	"repro/internal/version"
	"repro/internal/worksite"
	"repro/worksim/scenariospec"
)

// Version is the engine's semantic version, re-exported from
// internal/version so campaign results, cache keys and checkpoint journals
// stamp the same string the façade reports. Bump the minor on surface
// additions and the major on breaking changes; every cmd/ binary reports it
// via -version, and every sweep/campaign JSON export carries it.
const Version = version.Engine

// Scenario declaratively describes one worksite operational situation. It is
// the same type as scenariospec.Spec — compose one from Baseline(), a
// catalog entry, or a JSON spec file.
type Scenario = scenariospec.Spec

// Baseline returns the clean E1 baseline scenario.
func Baseline() Scenario { return scenario.Baseline() }

// Catalog returns every named standard scenario, sorted: the E1 baseline,
// one scenario per implemented attack class, weather/terrain/fleet variants,
// and multi-attack campaigns.
func Catalog() []string { return scenario.List() }

// Lookup returns the named catalog scenario as a fresh copy, so callers can
// mutate profiles or attack windows freely.
func Lookup(name string) (Scenario, error) { return scenario.Get(name) }

// ForAttack returns the single-attack scenario for a registered attack class
// ("none" yields the clean baseline) — the sugar behind the E5 matrix rows.
func ForAttack(name string) (Scenario, error) { return scenario.ForAttack(name) }

// AttackNames lists the registered attack classes, sorted.
func AttackNames() []string { return scenario.AttackNames() }

// LoadSpec reads a JSON scenario spec file; fields overlay the baseline, so
// a file only states what it changes.
func LoadSpec(path string) (Scenario, error) { return scenario.LoadFile(path) }

// SpecHash returns the scenario's canonical content address: SHA-256 hex
// over its compact canonical JSON. It is the spec component of the result
// cache's run key — any change to the scenario (site, weather, workers,
// timing, profile, attack schedule, declared horizon, even name or
// description) changes the hash, so cached runs can never be confused across
// situations. Hash a profile-resolved spec (Scenario.WithProfile) to get the
// exact key sweeps cache under.
func SpecHash(s Scenario) (string, error) { return s.Hash() }

// ParseSpec decodes a JSON scenario spec document (see LoadSpec).
// Validation failures — a declared horizon that is not positive, unknown or
// duplicate attack schedule entries, out-of-range window fractions — are
// typed [scenariospec.SpecError] values naming the offending field, which
// the worksimd daemon surfaces as HTTP 422.
func ParseSpec(data []byte) (Scenario, error) { return scenario.Parse(data) }

// SecurityProfile selects the active defence stack of a run.
type SecurityProfile = worksite.SecurityProfile

// Unsecured returns the baseline profile with every defence off; Secured
// returns the full defence stack of the paper's pathway.
func Unsecured() SecurityProfile { return worksite.Unsecured() }

// Secured returns the full defence stack.
func Secured() SecurityProfile { return worksite.Secured() }

// Profiles returns the named security profiles a sweep can select, in
// presentation order (the paper's unsecured-vs-secured comparison axis).
func Profiles() []string { return scenario.Profiles() }

// ResolveProfile maps a profile name to its defence selection.
func ResolveProfile(name string) (SecurityProfile, error) { return scenario.ResolveProfile(name) }

// Config is the compiled per-run worksite configuration a Scenario produces
// (Scenario.Config); Report and Metrics are the outcome of a run.
type (
	Config  = worksite.Config
	Report  = worksite.Report
	Metrics = worksite.Metrics
)
