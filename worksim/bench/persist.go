package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Entry is the recorded outcome of one catalog benchmark.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// File is the persisted BENCH_<date>.json document. Entries are sorted by
// name so the file is byte-stable for a fixed set of results.
type File struct {
	// GeneratedAt is the RFC 3339 generation timestamp.
	GeneratedAt string `json:"generatedAt"`
	// Label distinguishes runs recorded on the same date (e.g. "baseline").
	Label     string  `json:"label,omitempty"`
	GoVersion string  `json:"goVersion"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Entries   []Entry `json:"benchmarks"`
}

// Run executes every catalog benchmark whose name matches filter (nil runs
// all) under the standard `testing` benchmark loop and returns the recorded
// entries, sorted by name. progress, when non-nil, receives one line per
// completed benchmark.
func Run(filter *regexp.Regexp, progress func(string)) []Entry {
	var entries []Entry
	for _, bm := range Catalog() {
		if filter != nil && !filter.MatchString(bm.Name) {
			continue
		}
		res := testing.Benchmark(bm.Fn)
		e := Entry{
			Name:        bm.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		entries = append(entries, e)
		if progress != nil {
			progress(fmt.Sprintf("%-16s %12.0f ns/op %12d B/op %9d allocs/op (%d iterations)",
				e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Iterations))
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// NewFile wraps entries in a File stamped with the current time and
// toolchain.
func NewFile(label string, entries []Entry) File {
	return File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //worksim:allow provenance stamp: records when the benchmark ran; never compared between runs
		Label:       label,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Entries:     entries,
	}
}

// DefaultPath returns the conventional output path for a run recorded today:
// BENCH_<yyyy-mm-dd>.json, with the label (if any) appended before the
// extension.
func DefaultPath(label string) string {
	name := "BENCH_" + time.Now().UTC().Format("2006-01-02") //worksim:allow provenance: the conventional BENCH_<date> filename carries the run date
	if label != "" {
		name += "." + label
	}
	return name + ".json"
}

// Write persists f as indented JSON at path.
func (f File) Write(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// Load reads a previously written BENCH file.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("bench: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return f, nil
}

// Delta is the comparison of one benchmark between two recorded files.
type Delta struct {
	Name string
	// Old/New are nil when the benchmark exists on only one side.
	Old, New *Entry
	// NsChange is the fractional ns/op change (new-old)/old, valid when both
	// sides exist.
	NsChange float64
}

// Compare matches two files' entries by name and computes per-benchmark
// deltas, sorted by name.
func Compare(old, new File) []Delta {
	byName := func(f File) map[string]*Entry {
		m := make(map[string]*Entry, len(f.Entries))
		for i := range f.Entries {
			m[f.Entries[i].Name] = &f.Entries[i]
		}
		return m
	}
	om, nm := byName(old), byName(new)
	names := make(map[string]struct{})
	for n := range om {
		names[n] = struct{}{}
	}
	for n := range nm {
		names[n] = struct{}{}
	}
	var out []Delta
	for n := range names {
		d := Delta{Name: n, Old: om[n], New: nm[n]}
		if d.Old != nil && d.New != nil && d.Old.NsPerOp > 0 {
			d.NsChange = (d.New.NsPerOp - d.Old.NsPerOp) / d.Old.NsPerOp
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RenderDeltas formats a Compare result as an aligned text table.
func RenderDeltas(deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %9s %16s\n", "benchmark", "old ns/op", "new ns/op", "ns %", "allocs old->new")
	for _, d := range deltas {
		switch {
		case d.Old == nil:
			fmt.Fprintf(&b, "%-16s %14s %14.0f %9s %16d\n", d.Name, "-", d.New.NsPerOp, "new", d.New.AllocsPerOp)
		case d.New == nil:
			fmt.Fprintf(&b, "%-16s %14.0f %14s %9s %16s\n", d.Name, d.Old.NsPerOp, "-", "gone", "-")
		default:
			fmt.Fprintf(&b, "%-16s %14.0f %14.0f %+8.1f%% %7d -> %d\n",
				d.Name, d.Old.NsPerOp, d.New.NsPerOp, 100*d.NsChange, d.Old.AllocsPerOp, d.New.AllocsPerOp)
		}
	}
	return b.String()
}
