// Package bench is the tracked benchmark harness of the simulator: a fixed
// catalog of named micro and macro benchmarks over the public worksim façade,
// runnable both from `go test -bench` (bench_test.go wraps the catalog) and
// from the cmd/bench tool, which persists results as BENCH_<date>.json so the
// performance trajectory of the hot path is diffable PR over PR.
//
// The catalog deliberately spans the altitude ladder of the simulation:
//
//   - tick-baseline / tick-secured: one steady-state control tick — the
//     innermost hot loop (sensing, fusion, safety, radio, events).
//   - e1-run / e1-run-secured: one full 10-minute E1 baseline run including
//     commissioning — the unit of every experiment and sweep.
//   - sweep-32seed: a 32-seed campaign sweep over the bounded worker pool —
//     the production-shaped fan-out workload.
//
// Benchmark names are stable identifiers: renaming one breaks the ability to
// diff against older BENCH files, so add new names instead of reusing them.
package bench

import (
	"context"
	"testing"
	"time"

	"repro/worksim"
)

// tickHorizon bounds the steady-state tick benchmarks. It only needs to
// exceed b.N ticks at the default 500 ms tick period; a benchmark stepping
// past it would report false and fail loudly.
const tickHorizon = 10000 * time.Hour

// Benchmark is one named entry of the tracked catalog.
type Benchmark struct {
	// Name is the stable identifier used in BENCH files and sub-benchmark
	// names.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Fn runs the benchmark.
	Fn func(b *testing.B)
}

// Catalog returns the tracked benchmarks in presentation order: the macro
// ladder first, then the secured-path micro-benchmarks (secured.go).
func Catalog() []Benchmark {
	macro := []Benchmark{
		{
			Name: "tick-baseline",
			Doc:  "one steady-state control tick, E1 baseline (unsecured, drone on)",
			Fn:   func(b *testing.B) { benchTick(b, false) },
		},
		{
			Name: "tick-secured",
			Doc:  "one steady-state control tick under the full defence stack",
			Fn:   func(b *testing.B) { benchTick(b, true) },
		},
		{
			Name: "e1-run",
			Doc:  "full 10-minute E1 baseline run including commissioning (unsecured)",
			Fn:   func(b *testing.B) { benchRun(b, false) },
		},
		{
			Name: "e1-run-secured",
			Doc:  "full 10-minute E1 baseline run including commissioning (secured)",
			Fn:   func(b *testing.B) { benchRun(b, true) },
		},
		{
			Name: "sweep-32seed",
			Doc:  "32-seed baseline sweep (2 min/run) over the bounded worker pool",
			Fn:   benchSweep32,
		},
		{
			Name: "sweep-32seed-batched",
			Doc:  "32 secured-baseline seeds (2 min/run) forked from one OpenBatch shared commission",
			Fn:   benchSweep32Batched,
		},
	}
	return append(macro, securedCatalog()...)
}

// Lookup returns the catalog entry with the given name.
func Lookup(name string) (Benchmark, bool) {
	for _, bm := range Catalog() {
		if bm.Name == name {
			return bm, true
		}
	}
	return Benchmark{}, false
}

// benchTick measures one steady-state control tick: a session is opened and
// warmed past commissioning transients, then each iteration advances exactly
// one tick.
func benchTick(b *testing.B, secured bool) {
	opts := []worksim.Option{worksim.WithSeed(42), worksim.WithHorizon(tickHorizon)}
	if secured {
		opts = append(opts, worksim.WithProfile(worksim.Secured()))
	}
	s, err := worksim.Open(worksim.Baseline(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 120; i++ { // one minute of warm-up ticks
		if _, ok := s.Step(); !ok {
			b.Fatal("session ended during warm-up")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Step(); !ok {
			b.Fatal("session ended mid-benchmark")
		}
	}
}

// benchRun measures the unit of every experiment: commission the E1 baseline
// and run it for 10 simulated minutes.
func benchRun(b *testing.B, secured bool) {
	opts := []worksim.Option{worksim.WithSeed(42), worksim.WithHorizon(10 * time.Minute)}
	if secured {
		opts = append(opts, worksim.WithProfile(worksim.Secured()))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := worksim.Open(worksim.Baseline(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Duration != 10*time.Minute {
			b.Fatalf("run covered %v, want 10m", rep.Duration)
		}
	}
}

// benchSweep32 measures the campaign fan-out: 32 seeds of the baseline
// scenario, 2 simulated minutes each, on the default bounded pool.
func benchSweep32(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := worksim.Sweep(context.Background(), worksim.SweepOptions{
			Scenarios: []string{"baseline"},
			Profiles:  []string{"unsecured"},
			Seeds:     worksim.SeedRange{Base: 1, Count: 32},
			Duration:  2 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 1 || len(res.Cells[0].Result.PerSeed) != 32 {
			b.Fatal("sweep shape drifted")
		}
	}
}

// benchSweep32Batched measures the batched fan-out under the full defence
// stack: one shared commission (PKI keygen, issuance, handshakes) forked
// into 32 per-seed secured sessions of 2 simulated minutes each.
func benchSweep32Batched(b *testing.B) {
	seeds := make([]int64, 32)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch, err := worksim.OpenBatch(worksim.Baseline(), seeds,
			worksim.WithHorizon(2*time.Minute),
			worksim.WithProfile(worksim.Secured()),
		)
		if err != nil {
			b.Fatal(err)
		}
		reports, err := batch.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != 32 {
			b.Fatalf("batch produced %d reports, want 32", len(reports))
		}
	}
}
