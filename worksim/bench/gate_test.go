package bench

import (
	"strings"
	"testing"
)

func gateFile(entries ...Entry) File { return File{Entries: entries} }

// A run matching the record within tolerance, with every gated benchmark
// allocation-free where required, passes the gate.
func TestGatePasses(t *testing.T) {
	old := gateFile(
		Entry{Name: "tick-secured", NsPerOp: 9000, AllocsPerOp: 0},
		Entry{Name: "securechan-seal", NsPerOp: 120, AllocsPerOp: 0},
		Entry{Name: "securechan-open", NsPerOp: 110, AllocsPerOp: 0},
		Entry{Name: "e1-run-secured", NsPerOp: 11e6},
	)
	new := gateFile(
		Entry{Name: "tick-secured", NsPerOp: 9500, AllocsPerOp: 0},
		Entry{Name: "securechan-seal", NsPerOp: 125, AllocsPerOp: 0},
		Entry{Name: "securechan-open", NsPerOp: 100, AllocsPerOp: 0},
		Entry{Name: "e1-run-secured", NsPerOp: 11.5e6, AllocsPerOp: 29000},
	)
	if v := Gate(old, new, DefaultGateTolerance); len(v) != 0 {
		t.Fatalf("gate failed on an in-tolerance run: %v", v)
	}
}

// Each rule fires independently: a regained allocation, an ns/op regression
// beyond tolerance, and a gated benchmark missing from the run.
func TestGateViolations(t *testing.T) {
	old := gateFile(
		Entry{Name: "tick-secured", NsPerOp: 9000, AllocsPerOp: 0},
		Entry{Name: "securechan-seal", NsPerOp: 120, AllocsPerOp: 0},
		Entry{Name: "securechan-open", NsPerOp: 110, AllocsPerOp: 0},
		Entry{Name: "e1-run-secured", NsPerOp: 11e6},
	)
	new := gateFile(
		Entry{Name: "tick-secured", NsPerOp: 9000, AllocsPerOp: 3}, // regained allocs
		Entry{Name: "securechan-seal", NsPerOp: 150, AllocsPerOp: 0}, // +25% ns/op
		Entry{Name: "e1-run-secured", NsPerOp: 11e6},
		// securechan-open missing entirely
	)
	v := Gate(old, new, DefaultGateTolerance)
	if len(v) != 3 {
		t.Fatalf("want 3 violations, got %d: %v", len(v), v)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{
		"tick-secured: 3 allocs/op",
		"securechan-seal: ns/op regressed +25.0%",
		"securechan-open: gated benchmark missing",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
}

// A gated benchmark absent from the committed record (its first recorded
// run) skips the delta rule but still enforces the zero-alloc bound.
func TestGateNewBenchmark(t *testing.T) {
	old := gateFile(
		Entry{Name: "tick-secured", NsPerOp: 9000},
		Entry{Name: "securechan-open", NsPerOp: 110},
		Entry{Name: "e1-run-secured", NsPerOp: 11e6},
	)
	new := gateFile(
		Entry{Name: "tick-secured", NsPerOp: 9000, AllocsPerOp: 0},
		Entry{Name: "securechan-seal", NsPerOp: 99999, AllocsPerOp: 1}, // no baseline: delta skipped, allocs still gated
		Entry{Name: "securechan-open", NsPerOp: 110, AllocsPerOp: 0},
		Entry{Name: "e1-run-secured", NsPerOp: 11e6},
	)
	v := Gate(old, new, DefaultGateTolerance)
	if len(v) != 1 || !strings.Contains(v[0], "securechan-seal: 1 allocs/op") {
		t.Fatalf("want exactly the zero-alloc violation for the new benchmark, got %v", v)
	}
}
