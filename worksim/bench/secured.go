package bench

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/pki"
	"repro/internal/rng"
	"repro/internal/securechan"
)

// securedCatalog returns the secured-path micro-benchmarks: the record-layer
// and IDS costs that dominate the secured profile's per-tick overhead, pinned
// here so the escape-budget ratchet has a matching wall-clock/allocs view.
func securedCatalog() []Benchmark {
	return []Benchmark{
		{
			Name: "securechan-seal",
			Doc:  "seal one 64-byte record on an established secure channel",
			Fn:   benchSeal,
		},
		{
			Name: "securechan-open",
			Doc:  "open (authenticate + decrypt) one 64-byte record",
			Fn:   benchOpen,
		},
		{
			Name: "ids-detect",
			Doc:  "one IDS tick: four per-tick events through the full detector suite",
			Fn:   benchIDSDetect,
		},
	}
}

// pairedChannels commissions a CA, two identities and a completed handshake,
// all from deterministic randomness, and returns the established endpoints.
func pairedChannels(b *testing.B) (*securechan.Channel, *securechan.Channel) {
	b.Helper()
	r := rng.New(42)
	ca, err := pki.NewCA("bench-ca", r.Derive("ca"))
	if err != nil {
		b.Fatal(err)
	}
	year := 365 * 24 * time.Hour
	alice, err := ca.Issue("alice", pki.RoleMachine, 0, year)
	if err != nil {
		b.Fatal(err)
	}
	bob, err := ca.Issue("bob", pki.RoleCoordinator, 0, year)
	if err != nil {
		b.Fatal(err)
	}
	verifier := pki.NewVerifier(ca.Cert(), nil)
	init := securechan.NewInitiator(alice, verifier, securechan.Options{Rand: r.Derive("init")})
	resp := securechan.NewResponder(bob, verifier, securechan.Options{Rand: r.Derive("resp")})

	msg, err := init.Start()
	if err != nil {
		b.Fatal(err)
	}
	for msg != nil {
		reply, err := resp.HandleHandshake(msg)
		if err != nil {
			b.Fatal(err)
		}
		if reply == nil {
			break
		}
		msg, err = init.HandleHandshake(reply)
		if err != nil {
			b.Fatal(err)
		}
		if msg != nil {
			if _, err := resp.HandleHandshake(msg); err != nil {
				b.Fatal(err)
			}
			break
		}
	}
	if !init.Established() || !resp.Established() {
		b.Fatal("handshake did not establish both endpoints")
	}
	return init, resp
}

// benchPayload is the representative 64-byte telemetry record.
var benchPayload = func() []byte {
	p := make([]byte, 64)
	rng.New(7).Read(p)
	return p
}()

func benchSeal(b *testing.B) {
	init, _ := pairedChannels(b)
	// Warm the pooled record buffer to its steady-state capacity before the
	// timed loop, so b.ReportAllocs measures the per-record cost rather than
	// the one-time pool growth.
	if _, err := init.Seal(benchPayload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := init.Seal(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOpen(b *testing.B) {
	init, resp := pairedChannels(b)
	// Pre-seal the records outside the timed loop; each must be opened in
	// sequence (the receiver enforces monotonic sequence numbers), and each
	// must be copied out of Seal's pooled record buffer to be retained.
	records := make([][]byte, b.N+1)
	for i := range records {
		rec, err := init.Seal(benchPayload)
		if err != nil {
			b.Fatal(err)
		}
		records[i] = append([]byte(nil), rec...)
	}
	// Warm the receiver's pooled plaintext buffer (records[0] is the warm-up
	// record; the timed loop opens the rest).
	if _, err := resp.Open(records[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resp.Open(records[i+1]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIDSDetect pushes one tick's worth of steady-state telemetry — two
// healthy link samples, a good GNSS verdict and a benign event the signature
// detector ignores — through the full default detector suite.
func benchIDSDetect(b *testing.B) {
	engine := ids.DefaultEngine()
	events := []ids.Event{
		{Kind: ids.EventLinkSample, Source: "harvester-1", OK: true, Value: 1},
		{Kind: ids.EventLinkSample, Source: "forwarder-1", OK: true, Value: 1},
		{Kind: ids.EventGNSSVerdict, Source: "harvester-1", OK: true},
		{Kind: ids.EventDeauth, Source: "ap-1", OK: true},
	}
	// Warm the per-source detector state (EWMA maps, de-auth window rings) to
	// steady-state capacity, so the timed loop measures detection, not the
	// one-time window growth.
	const warm = 64
	for i := 0; i < warm; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		for _, ev := range events {
			ev.At = at
			engine.Ingest(ev)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(warm+i) * 500 * time.Millisecond
		for _, ev := range events {
			ev.At = at
			engine.Ingest(ev)
		}
	}
}
