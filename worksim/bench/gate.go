package bench

import "fmt"

// gatedBenchmark is one entry of the secured-path CI gate: the benchmarks
// whose regressions the paper's defence-overhead claims are most sensitive
// to. zeroAlloc entries additionally must report 0 allocs/op — the alloc
// locks (TestSecuredTickZeroAllocs and friends) enforce the same bound under
// `go test`, but the gate re-checks it on the timed harness so a BENCH file
// recording an allocating secured path can never be committed as the new
// baseline.
type gatedBenchmark struct {
	name      string
	zeroAlloc bool
}

// securedGate lists the gated benchmarks. Names are catalog identifiers
// (bench.Catalog); renaming one breaks the gate loudly via the
// missing-benchmark violation rather than silently ungating it.
var securedGate = []gatedBenchmark{
	{name: "tick-secured", zeroAlloc: true},
	{name: "securechan-seal", zeroAlloc: true},
	{name: "securechan-open", zeroAlloc: true},
	{name: "e1-run-secured"},
}

// DefaultGateTolerance is the fractional ns/op regression the gate accepts
// on gated benchmarks before failing — headroom for shared-runner noise, far
// below any real secured-path regression.
const DefaultGateTolerance = 0.10

// Gate checks the secured-path acceptance rules of a fresh run against the
// committed record: every gated benchmark must be present, zero-alloc
// benchmarks must report 0 allocs/op, and ns/op must not regress by more
// than tolerance relative to old. A benchmark absent from old (first run
// after it was added) skips the delta check but keeps the absolute ones.
// The returned violations are human-readable; empty means the gate passes.
func Gate(old, new File, tolerance float64) []string {
	byName := make(map[string]*Entry, len(new.Entries))
	for i := range new.Entries {
		byName[new.Entries[i].Name] = &new.Entries[i]
	}
	oldByName := make(map[string]*Entry, len(old.Entries))
	for i := range old.Entries {
		oldByName[old.Entries[i].Name] = &old.Entries[i]
	}
	var violations []string
	for _, g := range securedGate {
		e := byName[g.name]
		if e == nil {
			violations = append(violations, fmt.Sprintf("%s: gated benchmark missing from the run", g.name))
			continue
		}
		if g.zeroAlloc && e.AllocsPerOp > 0 {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op, must be allocation-free", g.name, e.AllocsPerOp))
		}
		o := oldByName[g.name]
		if o == nil || o.NsPerOp <= 0 {
			continue
		}
		if change := (e.NsPerOp - o.NsPerOp) / o.NsPerOp; change > tolerance {
			violations = append(violations, fmt.Sprintf("%s: ns/op regressed %+.1f%% (%.0f -> %.0f), tolerance %.0f%%",
				g.name, 100*change, o.NsPerOp, e.NsPerOp, 100*tolerance))
		}
	}
	return violations
}
