package bench

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	f := NewFile("baseline", []Entry{
		{Name: "tick-baseline", Iterations: 1000, NsPerOp: 5000, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "e1-run", Iterations: 100, NsPerOp: 8e6, BytesPerOp: 350000, AllocsPerOp: 1700},
	})
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "baseline" || len(got.Entries) != 2 || got.Entries[1].Name != "e1-run" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestCompareAndRender(t *testing.T) {
	old := NewFile("", []Entry{
		{Name: "tick", NsPerOp: 10000, AllocsPerOp: 50},
		{Name: "gone", NsPerOp: 5},
	})
	new := NewFile("", []Entry{
		{Name: "tick", NsPerOp: 5000, AllocsPerOp: 0},
		{Name: "fresh", NsPerOp: 7},
	})
	deltas := Compare(old, new)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["tick"]; d.NsChange != -0.5 {
		t.Fatalf("tick ns change = %v, want -0.5", d.NsChange)
	}
	if d := byName["gone"]; d.New != nil {
		t.Fatal("removed benchmark should have nil New")
	}
	if d := byName["fresh"]; d.Old != nil {
		t.Fatal("added benchmark should have nil Old")
	}
	out := RenderDeltas(deltas)
	for _, want := range []string{"tick", "-50.0%", "new", "gone", "50 -> 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered deltas missing %q:\n%s", want, out)
		}
	}
}

func TestCatalogLookup(t *testing.T) {
	names := map[string]bool{}
	for _, bm := range Catalog() {
		if bm.Name == "" || bm.Fn == nil {
			t.Fatalf("catalog entry malformed: %+v", bm)
		}
		if names[bm.Name] {
			t.Fatalf("duplicate benchmark name %q", bm.Name)
		}
		names[bm.Name] = true
	}
	for _, want := range []string{"tick-baseline", "e1-run", "sweep-32seed"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("catalog lost tracked benchmark %q (names are a stable contract)", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup invented a benchmark")
	}
}

func TestDefaultPath(t *testing.T) {
	if p := DefaultPath(""); !regexp.MustCompile(`^BENCH_\d{4}-\d{2}-\d{2}\.json$`).MatchString(p) {
		t.Fatalf("default path %q", p)
	}
	if p := DefaultPath("baseline"); !strings.HasSuffix(p, ".baseline.json") {
		t.Fatalf("labelled path %q", p)
	}
}
