package worksim_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/worksim"
	"repro/worksim/event"
	"repro/worksim/scenariospec"
)

func TestVersionIsSemver(t *testing.T) {
	parts := strings.Split(worksim.Version, ".")
	if len(parts) != 3 {
		t.Fatalf("worksim.Version = %q, want MAJOR.MINOR.PATCH", worksim.Version)
	}
	for _, p := range parts {
		if _, err := strconv.Atoi(p); err != nil {
			t.Fatalf("worksim.Version = %q: non-numeric component %q", worksim.Version, p)
		}
	}
}

// TestOpenDefaultsAndOptions: the options move the run; the defaults are
// the documented ones.
func TestOpenDefaultsAndOptions(t *testing.T) {
	sess, err := worksim.Open(worksim.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if sess.Horizon() != worksim.DefaultHorizon {
		t.Fatalf("default horizon = %v, want %v", sess.Horizon(), worksim.DefaultHorizon)
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.Seed != worksim.DefaultSeed {
		t.Fatalf("default seed = %d, want %d", rep.Config.Seed, worksim.DefaultSeed)
	}

	sess2, err := worksim.Open(worksim.Baseline(),
		worksim.WithSeed(99),
		worksim.WithHorizon(3*time.Minute),
		worksim.WithProfile(worksim.Secured()))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sess2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Config.Seed != 99 || rep2.Duration != 3*time.Minute {
		t.Fatalf("options ignored: seed=%d duration=%v", rep2.Config.Seed, rep2.Duration)
	}
	if rep2.Config.Profile != worksim.Secured() {
		t.Fatal("WithProfile did not replace the scenario profile")
	}
}

// TestOpenMatchesInternalRun: the façade's closed loop is the same
// simulation as the engine's — byte-identical reports for the same
// (scenario, seed, horizon).
func TestOpenMatchesInternalRun(t *testing.T) {
	spec, err := worksim.Lookup("gnss-spoof")
	if err != nil {
		t.Fatal(err)
	}
	const seed, d = 11, 4 * time.Minute

	sessA, err := worksim.Open(spec, worksim.WithSeed(seed), worksim.WithHorizon(d))
	if err != nil {
		t.Fatal(err)
	}
	repA, err := sessA.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Same run driven tick by tick through the stepper.
	sessB, err := worksim.Open(spec, worksim.WithSeed(seed), worksim.WithHorizon(d))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := sessB.Step(); !ok {
			break
		}
	}
	if err := sessB.Err(); err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(repA)
	jb, _ := json.Marshal(sessB.Report())
	if string(ja) != string(jb) {
		t.Fatal("stepped session report differs from closed-loop report")
	}
}

// TestWithSampleInterval: the sampler records a downsampled series and does
// not perturb the run.
func TestWithSampleInterval(t *testing.T) {
	spec := worksim.Baseline()
	const d = 4 * time.Minute

	plain, err := worksim.Open(spec, worksim.WithHorizon(d))
	if err != nil {
		t.Fatal(err)
	}
	plainRep, err := plain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	sampled, err := worksim.Open(spec, worksim.WithHorizon(d), worksim.WithSampleInterval(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sampled.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	series := sampled.Timeseries()
	if len(series) != 3 {
		// Samples land on the first tick at/after 1m, 2m, 3m; the 4m
		// boundary has no following tick inside the horizon.
		t.Fatalf("len(series) = %d, want 3 (at 1m, 2m, 3m)", len(series))
	}
	for i, p := range series {
		want := time.Duration(i+1) * time.Minute
		if p.At < want || p.At >= want+time.Minute {
			t.Fatalf("series[%d].At = %v, want in [%v, %v)", i, p.At, want, want+time.Minute)
		}
	}
	if !reflect.DeepEqual(plainRep, rep) {
		t.Fatal("sampling observer changed the run outcome")
	}
	if plain.Timeseries() != nil {
		t.Fatal("Timeseries without WithSampleInterval should be nil")
	}
}

// TestCatalogSurface: the catalog is non-empty, sorted lookups round-trip,
// and every attack class has a same-named scenario reachable through the
// façade.
func TestCatalogSurface(t *testing.T) {
	names := worksim.Catalog()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	for _, name := range names {
		spec, err := worksim.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if spec.Name != name {
			t.Fatalf("Lookup(%q).Name = %q", name, spec.Name)
		}
	}
	if _, err := worksim.Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup of unknown scenario succeeded")
	}
	for _, atk := range worksim.AttackNames() {
		spec, err := worksim.ForAttack(atk)
		if err != nil {
			t.Fatalf("ForAttack(%q): %v", atk, err)
		}
		if len(spec.Attacks) == 0 {
			t.Fatalf("ForAttack(%q) returned a clean scenario", atk)
		}
	}
	clean, err := worksim.ForAttack("none")
	if err != nil || len(clean.Attacks) != 0 {
		t.Fatalf("ForAttack(none) = (%d attacks, %v), want clean baseline", len(clean.Attacks), err)
	}
}

// TestParseSpecOverlay: ParseSpec overlays the baseline, and the spec/event
// subpackage types interoperate with the top-level aliases without
// conversion.
func TestParseSpecOverlay(t *testing.T) {
	spec, err := worksim.ParseSpec([]byte(`{"name":"x","workers":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Workers != 7 {
		t.Fatalf("Workers = %d, want 7", spec.Workers)
	}
	base := scenariospec.Baseline()
	if spec.Site != base.Site {
		t.Fatal("unstated fields did not inherit the baseline")
	}

	// Alias interop: a scenariospec.Spec is a worksim.Scenario; an
	// event.Tick flows through a predicate typed either way.
	var s worksim.Scenario = base
	sess, err := worksim.Open(s, worksim.WithHorizon(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	fired, err := sess.RunUntil(context.Background(), func(tk event.Tick) bool { return tk.N >= 3 })
	if err != nil || !fired {
		t.Fatalf("RunUntil = (%v, %v), want fired", fired, err)
	}
}
