package secureboot

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pki"
	"repro/internal/rng"
)

type bootFixture struct {
	vendor  pki.Identity
	machine pki.Identity
	chain   Chain
}

func newBootFixture(t *testing.T) bootFixture {
	t.Helper()
	r := rng.New(11)
	ca, err := pki.NewCA("vendor-root", r.Derive("ca"))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	vendor, err := ca.Issue("komatsu-signing", pki.RoleOperator, 0, 24*time.Hour)
	if err != nil {
		t.Fatalf("Issue vendor: %v", err)
	}
	machine, err := ca.Issue("forwarder-ecu", pki.RoleMachine, 0, 24*time.Hour)
	if err != nil {
		t.Fatalf("Issue machine: %v", err)
	}
	images := []Image{
		{Name: "bootloader", Version: 3, Content: []byte("BL v3")},
		{Name: "rtos", Version: 7, Content: []byte("RTOS v7")},
		{Name: "control-app", Version: 12, Content: []byte("CTRL v12")},
	}
	var chain Chain
	for _, im := range images {
		chain.Stages = append(chain.Stages, Stage{Image: im, Manifest: SignManifest(vendor, im)})
	}
	return bootFixture{vendor: vendor, machine: machine, chain: chain}
}

func TestCleanBoot(t *testing.T) {
	f := newBootFixture(t)
	dev := NewDevice(f.vendor.Cert)
	rep, err := dev.Boot(f.chain)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	if !rep.OK {
		t.Fatal("clean boot reported not OK")
	}
	if len(rep.Log) != 3 {
		t.Fatalf("log entries = %d, want 3", len(rep.Log))
	}
	if rep.PCR != GoldenPCR(f.chain) {
		t.Fatal("PCR does not match golden value")
	}
}

func TestTamperedImageHaltsBoot(t *testing.T) {
	f := newBootFixture(t)
	dev := NewDevice(f.vendor.Cert)
	f.chain.Stages[1].Image.Content = []byte("RTOS v7 + implant")
	rep, err := dev.Boot(f.chain)
	if !errors.Is(err, ErrDigest) {
		t.Fatalf("err = %v, want ErrDigest", err)
	}
	if rep.OK {
		t.Fatal("tampered boot reported OK")
	}
	if len(rep.Log) != 2 { // bootloader ok, rtos failed, app never reached
		t.Fatalf("log entries = %d, want 2", len(rep.Log))
	}
	if rep.Log[1].OK {
		t.Fatal("failed stage marked OK in log")
	}
}

func TestForgedManifestRejected(t *testing.T) {
	f := newBootFixture(t)
	r := rng.New(99)
	rogueCA, err := pki.NewCA("rogue", r)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	rogue, err := rogueCA.Issue("rogue-signer", pki.RoleOperator, 0, time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	evil := Image{Name: "rtos", Version: 8, Content: []byte("evil rtos")}
	f.chain.Stages[1] = Stage{Image: evil, Manifest: SignManifest(rogue, evil)}
	dev := NewDevice(f.vendor.Cert)
	if _, err := dev.Boot(f.chain); !errors.Is(err, ErrManifestSig) {
		t.Fatalf("err = %v, want ErrManifestSig", err)
	}
}

func TestRollbackRejected(t *testing.T) {
	f := newBootFixture(t)
	dev := NewDevice(f.vendor.Cert)
	if _, err := dev.Boot(f.chain); err != nil {
		t.Fatalf("first boot: %v", err)
	}
	// Attacker installs an older, signed (vulnerable) rtos.
	old := Image{Name: "rtos", Version: 5, Content: []byte("RTOS v5 vulnerable")}
	f.chain.Stages[1] = Stage{Image: old, Manifest: SignManifest(f.vendor, old)}
	if _, err := dev.Boot(f.chain); !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
}

func TestUpgradeAdvancesFloor(t *testing.T) {
	f := newBootFixture(t)
	dev := NewDevice(f.vendor.Cert)
	if _, err := dev.Boot(f.chain); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if dev.MinVersions["rtos"] != 7 {
		t.Fatalf("rtos floor = %d, want 7", dev.MinVersions["rtos"])
	}
	up := Image{Name: "rtos", Version: 9, Content: []byte("RTOS v9")}
	f.chain.Stages[1] = Stage{Image: up, Manifest: SignManifest(f.vendor, up)}
	if _, err := dev.Boot(f.chain); err != nil {
		t.Fatalf("upgrade boot: %v", err)
	}
	if dev.MinVersions["rtos"] != 9 {
		t.Fatalf("rtos floor = %d, want 9", dev.MinVersions["rtos"])
	}
}

func TestManifestImageMismatch(t *testing.T) {
	f := newBootFixture(t)
	// Swap manifests between stages 0 and 1.
	f.chain.Stages[0].Manifest, f.chain.Stages[1].Manifest =
		f.chain.Stages[1].Manifest, f.chain.Stages[0].Manifest
	dev := NewDevice(f.vendor.Cert)
	if _, err := dev.Boot(f.chain); !errors.Is(err, ErrWrongImage) {
		t.Fatalf("err = %v, want ErrWrongImage", err)
	}
}

func TestAttestationRoundTrip(t *testing.T) {
	f := newBootFixture(t)
	dev := NewDevice(f.vendor.Cert)
	rep, err := dev.Boot(f.chain)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	nonce := []byte("fresh-challenge-123")
	q := Attest(f.machine, rep, nonce)
	if err := VerifyQuote(f.machine.Cert, q, GoldenPCR(f.chain), nonce); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
}

func TestAttestationDetectsTamperedChain(t *testing.T) {
	f := newBootFixture(t)
	golden := GoldenPCR(f.chain)
	// A device that booted a modified-but-signed newer image has a different
	// PCR and must fail attestation against the golden value.
	up := Image{Name: "control-app", Version: 13, Content: []byte("CTRL v13 unapproved build")}
	f.chain.Stages[2] = Stage{Image: up, Manifest: SignManifest(f.vendor, up)}
	dev := NewDevice(f.vendor.Cert)
	rep, err := dev.Boot(f.chain)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	nonce := []byte("n1")
	q := Attest(f.machine, rep, nonce)
	if err := VerifyQuote(f.machine.Cert, q, golden, nonce); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("err = %v, want ErrQuoteInvalid", err)
	}
}

func TestAttestationNonceFreshness(t *testing.T) {
	f := newBootFixture(t)
	dev := NewDevice(f.vendor.Cert)
	rep, err := dev.Boot(f.chain)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	q := Attest(f.machine, rep, []byte("old-nonce"))
	err = VerifyQuote(f.machine.Cert, q, GoldenPCR(f.chain), []byte("new-nonce"))
	if !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("replayed quote err = %v, want ErrQuoteInvalid", err)
	}
}

func TestAttestationWrongSigner(t *testing.T) {
	f := newBootFixture(t)
	dev := NewDevice(f.vendor.Cert)
	rep, err := dev.Boot(f.chain)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	nonce := []byte("n")
	q := Attest(f.machine, rep, nonce)
	// Verify against the vendor cert instead of the machine cert.
	if err := VerifyQuote(f.vendor.Cert, q, GoldenPCR(f.chain), nonce); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("err = %v, want ErrQuoteInvalid", err)
	}
}

func TestPropertyDigestBindsContent(t *testing.T) {
	f := func(a, b []byte) bool {
		imA := Image{Name: "x", Version: 1, Content: a}
		imB := Image{Name: "x", Version: 1, Content: b}
		sameContent := string(a) == string(b)
		sameDigest := imA.Digest() == imB.Digest()
		return sameContent == sameDigest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPCRSensitiveToOrder(t *testing.T) {
	imA := Image{Name: "a", Version: 1, Content: []byte("a")}
	imB := Image{Name: "b", Version: 1, Content: []byte("b")}
	mkChain := func(first, second Image) Chain {
		return Chain{Stages: []Stage{{Image: first}, {Image: second}}}
	}
	if GoldenPCR(mkChain(imA, imB)) == GoldenPCR(mkChain(imB, imA)) {
		t.Fatal("PCR must be order-sensitive")
	}
}
