// Package secureboot simulates the measured/verified boot chain of a worksite
// machine's control units.
//
// The repro band notes that a hardware secure-boot layer is not directly
// representable; per the substitution rule this package reproduces the
// *certification-relevant* behaviour entirely in software: signed image
// manifests with anti-rollback version counters, a hash-chained measurement
// register (PCR-style), a boot-time verification pass that halts on the first
// tampered stage, and remote attestation quotes signed with the machine's
// worksite-PKI identity. The evidence this produces (boot reports,
// attestation results) feeds the assurance case as "system integrity"
// solutions per IEC 62443 SR 3.x.
package secureboot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pki"
)

// Boot errors, matchable with errors.Is.
var (
	ErrManifestSig  = errors.New("manifest signature invalid")
	ErrDigest       = errors.New("image digest mismatch")
	ErrRollback     = errors.New("image version rollback")
	ErrWrongImage   = errors.New("manifest names a different image")
	ErrQuoteInvalid = errors.New("attestation quote invalid")
)

// Image is a firmware/software stage payload.
type Image struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Content []byte `json:"content"`
}

// Digest returns the SHA-256 digest of the image identity and content.
//
//worksim:hotpath
func (im Image) Digest() [32]byte {
	h := sha256.New()
	h.Write([]byte(im.Name))
	h.Write([]byte{0})
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], im.Version)
	h.Write(v[:])
	h.Write(im.Content)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Manifest is the vendor-signed description of an approved image.
type Manifest struct {
	ImageName string   `json:"imageName"`
	Version   uint64   `json:"version"`
	Digest    [32]byte `json:"digest"`
	Signature []byte   `json:"signature"`
}

func (m Manifest) tbs() []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, []byte(m.ImageName)...)
	buf = append(buf, 0)
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], m.Version)
	buf = append(buf, v[:]...)
	buf = append(buf, m.Digest[:]...)
	return buf
}

// SignManifest produces the vendor manifest for an image.
func SignManifest(vendor pki.Identity, im Image) Manifest {
	m := Manifest{ImageName: im.Name, Version: im.Version, Digest: im.Digest()}
	m.Signature = vendor.Sign(m.tbs())
	return m
}

// Stage couples the image present on the device with the manifest it claims
// to satisfy.
type Stage struct {
	Image    Image
	Manifest Manifest
}

// Chain is an ordered boot chain (e.g. bootloader → RTOS → control app).
type Chain struct {
	Stages []Stage
}

// Measurement records one verified (or failed) stage in the boot log.
type Measurement struct {
	Stage   string   `json:"stage"`
	Version uint64   `json:"version"`
	Digest  [32]byte `json:"digest"`
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
}

// Report is the outcome of a boot attempt.
type Report struct {
	OK  bool          `json:"ok"`
	PCR [32]byte      `json:"pcr"`
	Log []Measurement `json:"log"`
}

// Device models a control unit with verified boot. MinVersions is the
// anti-rollback store (monotonic per image name).
type Device struct {
	vendorCert  pki.Certificate
	MinVersions map[string]uint64
}

// NewDevice creates a device trusting the given vendor signing certificate.
func NewDevice(vendorCert pki.Certificate) *Device {
	return &Device{vendorCert: vendorCert, MinVersions: make(map[string]uint64)}
}

// Boot verifies the chain stage by stage, extending the measurement register.
// On the first failing stage the boot halts: the report carries the partial
// log and OK=false, and the error describes the failure.
func (d *Device) Boot(chain Chain) (Report, error) {
	rep := Report{OK: true}
	for _, st := range chain.Stages {
		m := Measurement{Stage: st.Image.Name, Version: st.Image.Version}
		if err := d.verifyStage(st); err != nil {
			m.OK = false
			m.Err = err.Error()
			rep.Log = append(rep.Log, m)
			rep.OK = false
			return rep, fmt.Errorf("boot stage %q: %w", st.Image.Name, err)
		}
		dg := st.Image.Digest()
		m.Digest = dg
		m.OK = true
		rep.Log = append(rep.Log, m)
		rep.PCR = extend(rep.PCR, dg)
		// Advance the anti-rollback floor.
		if st.Image.Version > d.MinVersions[st.Image.Name] {
			d.MinVersions[st.Image.Name] = st.Image.Version
		}
	}
	return rep, nil
}

//worksim:hotpath
func (d *Device) verifyStage(st Stage) error {
	if st.Manifest.ImageName != st.Image.Name {
		return fmt.Errorf("%w: manifest %q vs image %q", ErrWrongImage, st.Manifest.ImageName, st.Image.Name) //worksim:allow cold rejection path, runs only for tampered boot stages
	}
	if !pki.VerifySignature(d.vendorCert, st.Manifest.tbs(), st.Manifest.Signature) {
		return ErrManifestSig
	}
	if st.Image.Version < d.MinVersions[st.Image.Name] {
		return fmt.Errorf("%w: version %d below floor %d", ErrRollback, st.Image.Version, d.MinVersions[st.Image.Name]) //worksim:allow cold rejection path, runs only under rollback attack
	}
	if st.Manifest.Version != st.Image.Version {
		return fmt.Errorf("%w: manifest version %d vs image %d", ErrWrongImage, st.Manifest.Version, st.Image.Version) //worksim:allow cold rejection path, runs only for tampered boot stages
	}
	dg := st.Image.Digest()
	if !bytes.Equal(dg[:], st.Manifest.Digest[:]) {
		return ErrDigest
	}
	return nil
}

// extend computes the PCR-style measurement extension.
//
//worksim:hotpath
func extend(pcr, digest [32]byte) [32]byte {
	h := sha256.New()
	h.Write(pcr[:])
	h.Write(digest[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// GoldenPCR computes the expected measurement register for a pristine chain,
// the reference value an attestation verifier holds.
func GoldenPCR(chain Chain) [32]byte {
	var pcr [32]byte
	for _, st := range chain.Stages {
		pcr = extend(pcr, st.Image.Digest())
	}
	return pcr
}

// Quote is a signed attestation of the device's measurement register.
type Quote struct {
	PCR       [32]byte `json:"pcr"`
	Nonce     []byte   `json:"nonce"`
	Signature []byte   `json:"signature"`
}

//worksim:hotpath
func quoteTBS(pcr [32]byte, nonce []byte) []byte {
	buf := make([]byte, 0, 64) //worksim:allow single pre-sized buffer per quote; the appends below reuse it via the scratch pattern
	buf = append(buf, pcr[:]...)
	buf = append(buf, nonce...)
	return buf
}

// Attest produces a quote over the report's PCR, bound to the verifier's
// freshness nonce, signed with the machine identity.
//
//worksim:hotpath
func Attest(machine pki.Identity, rep Report, nonce []byte) Quote {
	return Quote{
		PCR:       rep.PCR,
		Nonce:     append([]byte(nil), nonce...), //worksim:allow the quote must own its nonce copy (caller may reuse the buffer); one small allocation per attestation round
		Signature: machine.Sign(quoteTBS(rep.PCR, nonce)),
	}
}

// VerifyQuote checks a quote against the machine certificate, the expected
// golden PCR, and the challenge nonce.
//
//worksim:hotpath
func VerifyQuote(machineCert pki.Certificate, q Quote, golden [32]byte, nonce []byte) error {
	if !bytes.Equal(q.Nonce, nonce) {
		return fmt.Errorf("%w: nonce mismatch", ErrQuoteInvalid) //worksim:allow cold rejection path, runs only for replayed or stale quotes
	}
	if !pki.VerifySignature(machineCert, quoteTBS(q.PCR, q.Nonce), q.Signature) {
		return fmt.Errorf("%w: signature", ErrQuoteInvalid) //worksim:allow cold rejection path, runs only for forged quotes
	}
	if !bytes.Equal(q.PCR[:], golden[:]) {
		return fmt.Errorf("%w: PCR mismatch (tampered chain)", ErrQuoteInvalid) //worksim:allow cold rejection path, runs only for tampered boot chains
	}
	return nil
}
