package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/worksite"
)

// TestCatalogNamesSortedUnique pins the catalog contract: List is sorted,
// free of duplicates, and every name resolves to a spec carrying that name.
func TestCatalogNamesSortedUnique(t *testing.T) {
	names := List()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("catalog names not sorted: %v", names)
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate catalog name %q", name)
		}
		seen[name] = true
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Get(%q) returned spec named %q", name, s.Name)
		}
		if s.Description == "" {
			t.Fatalf("catalog entry %q has no description", name)
		}
	}
}

// TestCatalogCoversAttackRegistry: every registered attack class has a
// same-named catalog scenario (the E5 matrix rows), and ForAttack resolves
// both it and the "none" control.
func TestCatalogCoversAttackRegistry(t *testing.T) {
	for _, name := range AttackNames() {
		s, err := ForAttack(name)
		if err != nil {
			t.Fatalf("ForAttack(%q): %v", name, err)
		}
		if len(s.Attacks) != 1 || s.Attacks[0].Name != name {
			t.Fatalf("ForAttack(%q) schedule = %+v, want exactly one %q window", name, s.Attacks, name)
		}
	}
	clean, err := ForAttack("none")
	if err != nil {
		t.Fatalf("ForAttack(none): %v", err)
	}
	if len(clean.Attacks) != 0 || clean.Name != "baseline" {
		t.Fatalf("ForAttack(none) = %q with %d attacks, want clean baseline", clean.Name, len(clean.Attacks))
	}
	if _, err := ForAttack("no-such-attack"); err == nil {
		t.Fatal("ForAttack accepted an unknown attack class")
	}
}

// TestCatalogJSONRoundTrip: every catalog spec survives marshal/unmarshal
// exactly — the serialized form is the spec.
func TestCatalogJSONRoundTrip(t *testing.T) {
	for _, name := range List() {
		spec, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		data, err := spec.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Spec
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(spec, got) {
			t.Fatalf("%s: JSON round-trip drifted:\nbefore: %+v\nafter:  %+v", name, spec, got)
		}
	}
}

// TestCatalogSpecsBuild: every catalog entry arms and schedules without
// error under both profiles — no spec can rot into an unrunnable state.
func TestCatalogSpecsBuild(t *testing.T) {
	for _, name := range List() {
		spec, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		sess, c, err := Build(spec.WithProfile(worksite.Secured()), 3, 10*time.Minute)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if sess == nil || sess.Site() == nil || c == nil {
			t.Fatalf("Build(%q) returned nil session or campaign", name)
		}
		if sess.Horizon() != 10*time.Minute {
			t.Fatalf("Build(%q) horizon = %v, want 10m", name, sess.Horizon())
		}
		if got := len(c.Windows()); got != len(spec.Attacks) {
			t.Fatalf("Build(%q) scheduled %d windows, spec has %d attacks", name, got, len(spec.Attacks))
		}
	}
}

// TestBuildDeterminism: the same spec and seed must produce byte-identical
// reports — the property the whole campaign aggregation rests on.
func TestBuildDeterminism(t *testing.T) {
	spec, err := Get("multi-attack")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		rep, err := Run(context.Background(), spec.WithProfile(worksite.Secured()), 42, 8*time.Minute)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		j, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal report: %v", err)
		}
		return j
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same spec+seed produced different reports:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestRunSeedSensitivity guards the converse: different seeds must diverge,
// or the sweep's seed axis measures nothing.
func TestRunSeedSensitivity(t *testing.T) {
	spec := Baseline()
	one, err := Run(context.Background(), spec, 1, 8*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(context.Background(), spec, 2, 8*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(one.Metrics)
	jb, _ := json.Marshal(two.Metrics)
	if string(ja) == string(jb) {
		t.Fatal("seeds 1 and 2 produced identical metrics; seed plumbing broken")
	}
}

// TestParseOverlay: a partial JSON file overlays the baseline — unstated
// fields keep their baseline values.
func TestParseOverlay(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "wet-jam",
		"weather": {"rain": 0.5},
		"attacks": [{"name": "gnss-jam", "startFrac": 0.2, "stopFrac": 0.6}]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	base := Baseline()
	if spec.Name != "wet-jam" || spec.Weather.Rain != 0.5 {
		t.Fatalf("overrides not applied: %+v", spec)
	}
	if spec.Site != base.Site || spec.Timing != base.Timing || !spec.Drone || spec.Workers != base.Workers {
		t.Fatalf("baseline fields not preserved: %+v", spec)
	}
	if len(spec.Attacks) != 1 || spec.Attacks[0].Name != "gnss-jam" {
		t.Fatalf("attack schedule not decoded: %+v", spec.Attacks)
	}
	// An empty file is the plain baseline under the "custom" name.
	empty, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatalf("Parse({}): %v", err)
	}
	if empty.Name != "custom" || empty.Site != base.Site {
		t.Fatalf("empty spec != baseline: %+v", empty)
	}
}

// TestSpecValidation: unknown attack classes and out-of-range window
// fractions are rejected at parse/build time with messages naming the slot.
func TestSpecValidation(t *testing.T) {
	if _, err := Parse([]byte(`{"attacks":[{"name":"warp-drive","startFrac":0.1,"stopFrac":0.5}]}`)); err == nil ||
		!strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("unknown attack class not rejected: %v", err)
	}
	if _, err := Parse([]byte(`{"attacks":[{"name":"gnss-jam","startFrac":-0.1,"stopFrac":0.5}]}`)); err == nil ||
		!strings.Contains(err.Error(), "fractions") {
		t.Fatalf("bad window fraction not rejected: %v", err)
	}
	spec := Baseline()
	spec.Site.Cols = 0
	if _, _, err := Build(spec, 1, time.Minute); err == nil ||
		!strings.Contains(err.Error(), "grid") {
		t.Fatalf("invalid worksite config not rejected: %v", err)
	}
	if _, _, err := Build(Baseline(), 1, 0); err == nil {
		t.Fatal("zero duration not rejected")
	}
}

// TestAttackNamesSorted pins the registry listing used by CLI help strings
// and the E5 matrix ordering.
func TestAttackNamesSorted(t *testing.T) {
	names := AttackNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("attack names not sorted: %v", names)
	}
	for _, want := range []string{"rf-jamming", "deauth-flood", "gnss-spoof", "gnss-jam", "camera-blind", "replay", "command-injection"} {
		if _, ok := lookupAttack(want); !ok {
			t.Fatalf("built-in attack class %q missing from registry", want)
		}
	}
}

// TestProfiles: the named profile axis resolves and rejects unknowns.
func TestProfiles(t *testing.T) {
	for _, name := range Profiles() {
		if _, err := ResolveProfile(name); err != nil {
			t.Fatalf("ResolveProfile(%q): %v", name, err)
		}
	}
	sec, _ := ResolveProfile("secured")
	if sec != worksite.Secured() {
		t.Fatal("secured profile mismatch")
	}
	if _, err := ResolveProfile("tinfoil"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestBaselineMatchesWorksiteDefault: the baseline spec compiles to exactly
// worksite.DefaultConfig, so spec-built experiments reproduce the seed
// harness's numbers.
func TestBaselineMatchesWorksiteDefault(t *testing.T) {
	got := Baseline().Config(99)
	want := worksite.DefaultConfig(99)
	if got != want {
		t.Fatalf("Baseline().Config drifted from worksite.DefaultConfig:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParseSpecHardening is the table-driven error-path suite over the
// hardened Parse: declared horizons must be positive, attack schedule
// entries must be unique per class, and every rejection is a typed
// *SpecError naming the offending field — the contract the worksimd daemon
// relies on to answer HTTP 422 with a field pointer.
func TestParseSpecHardening(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		// field is the expected SpecError.Field; empty means the document
		// must parse cleanly.
		field string
		// reason is a substring of the expected SpecError.Reason.
		reason string
	}{
		{
			name: "positive declared horizon accepted",
			doc:  `{"horizonNs": 60000000000}`,
		},
		{
			name: "undeclared horizon accepted",
			doc:  `{}`,
		},
		{
			name:   "zero declared horizon rejected",
			doc:    `{"horizonNs": 0}`,
			field:  "horizonNs",
			reason: "must be positive",
		},
		{
			name:   "negative declared horizon rejected",
			doc:    `{"horizonNs": -1}`,
			field:  "horizonNs",
			reason: "must be positive",
		},
		{
			name: "distinct attack classes accepted",
			doc:  `{"attacks":[{"name":"gnss-jam","startFrac":0.1,"stopFrac":0.3},{"name":"gnss-spoof","startFrac":0.5,"stopFrac":0.7}]}`,
		},
		{
			name:   "duplicate attack schedule names rejected",
			doc:    `{"attacks":[{"name":"gnss-jam","startFrac":0.1,"stopFrac":0.3},{"name":"gnss-jam","startFrac":0.5,"stopFrac":0.7}]}`,
			field:  "attacks[1].name",
			reason: "duplicate",
		},
		{
			name:   "unknown attack class names its slot",
			doc:    `{"attacks":[{"name":"gnss-jam","startFrac":0.1,"stopFrac":0.3},{"name":"warp-drive"}]}`,
			field:  "attacks[1].name",
			reason: "unknown attack class",
		},
		{
			name:   "window fraction out of range names its slot",
			doc:    `{"attacks":[{"name":"gnss-jam","startFrac":1.5,"stopFrac":0.3}]}`,
			field:  "attacks[0]",
			reason: "fractions",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Parse(%s): unexpected error %v", tc.doc, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse(%s) accepted, want SpecError on field %s", tc.doc, tc.field)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Parse(%s): error %v is not a *SpecError", tc.doc, err)
			}
			if se.Field != tc.field {
				t.Fatalf("Parse(%s): SpecError.Field = %q, want %q", tc.doc, se.Field, tc.field)
			}
			if !strings.Contains(se.Reason, tc.reason) {
				t.Fatalf("Parse(%s): SpecError.Reason = %q, want substring %q", tc.doc, se.Reason, tc.reason)
			}
			// Sanity: the flat message names the field too.
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("Parse(%s): error text %q does not name field %s", tc.doc, err, tc.field)
			}
		})
	}
}

// TestSpecHorizonRoundTrip: a declared horizon survives the canonical JSON
// round trip and stays omitted when undeclared.
func TestSpecHorizonRoundTrip(t *testing.T) {
	spec := Baseline()
	spec.Horizon = 4 * time.Minute
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Horizon != 4*time.Minute {
		t.Fatalf("horizon after round trip = %v, want 4m", back.Horizon)
	}
	plain, err := Baseline().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "horizonNs") {
		t.Fatalf("undeclared horizon serialized: %s", plain)
	}
}
