package scenario

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/worksite"
)

// batchTemplateSeed roots the shared bundle's key material. Any seed works:
// key bytes never reach simulation-observable output (the worksim
// OpenBatch-vs-Open differential test locks this), so per-seed sessions built
// from the bundle stay byte-identical to independently built ones.
const batchTemplateSeed int64 = 0

// Batch compiles one spec into shareable commissioned state — validated
// spec, security bundle (CA, identities, established channels) — and builds
// arbitrarily many cheap per-seed sessions from it. This is how a seed sweep
// stops paying for keygen and four handshakes per seed.
//
// A Batch is immutable after NewBatch and safe for concurrent Build/Run
// calls from pool workers.
type Batch struct {
	spec   Spec
	shared *worksite.SharedSecurity
}

// NewBatch validates the spec and commissions its shared security state
// once.
func NewBatch(spec Spec) (*Batch, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	shared, err := worksite.CommissionSecurity(spec.Config(batchTemplateSeed))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: commission shared security: %w", spec.Name, err)
	}
	return &Batch{spec: spec, shared: shared}, nil
}

// Spec returns the batch's compiled spec.
func (b *Batch) Spec() Spec { return b.spec }

// Build compiles one per-seed session over the shared commissioned state,
// with the same contract as the package-level Build.
func (b *Batch) Build(seed int64, d time.Duration) (*worksite.Session, *attack.Campaign, error) {
	return buildShared(b.spec, b.shared, seed, d)
}

// Run builds one per-seed session and executes it for d of simulated time,
// with the same contract as the package-level Run.
func (b *Batch) Run(ctx context.Context, seed int64, d time.Duration) (worksite.Report, error) {
	sess, _, err := b.Build(seed, d)
	if err != nil {
		return worksite.Report{}, err
	}
	rep, err := sess.Run(ctx, d)
	if err != nil {
		return worksite.Report{}, fmt.Errorf("scenario %q: %w", b.spec.Name, err)
	}
	return rep, nil
}
