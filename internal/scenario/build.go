package scenario

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/worksite"
)

// Build compiles a spec into a commissioned worksite and its scheduled
// attack campaign. The attack schedule is resolved against d (window
// fractions become simulated times), armed through the registry, and already
// installed on the site's scheduler — the caller only has to site.Run(d).
// The returned campaign exposes the window and phase logs for reports.
func Build(spec Spec, seed int64, d time.Duration) (*worksite.Site, *attack.Campaign, error) {
	if d <= 0 {
		return nil, nil, fmt.Errorf("scenario %q: duration must be positive, got %v", spec.Name, d)
	}
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	site, err := worksite.New(spec.Config(seed))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	c := attack.NewCampaign()
	for i, a := range spec.Attacks {
		cls, ok := lookupAttack(a.Name)
		if !ok {
			// Validate caught unknown names already; keep the guard for
			// specs mutated after validation.
			return nil, nil, fmt.Errorf("scenario %q: attacks[%d]: unknown attack class %q", spec.Name, i, a.Name)
		}
		ctx := ArmContext{
			Site:     site,
			Campaign: c,
			Start:    time.Duration(a.StartFrac * float64(d)),
			Stop:     time.Duration(a.StopFrac * float64(d)),
			Duration: d,
			Params:   a.Params,
		}
		if err := cls.arm(ctx); err != nil {
			return nil, nil, fmt.Errorf("scenario %q: arm %s: %w", spec.Name, a.Name, err)
		}
	}
	c.Schedule(site.Scheduler())
	return site, c, nil
}

// Run builds the spec and executes it for d of simulated time.
func Run(spec Spec, seed int64, d time.Duration) (worksite.Report, error) {
	site, _, err := Build(spec, seed, d)
	if err != nil {
		return worksite.Report{}, err
	}
	rep, err := site.Run(d)
	if err != nil {
		return worksite.Report{}, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	return rep, nil
}
