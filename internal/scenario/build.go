package scenario

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/worksite"
)

// Build compiles a spec into a steppable worksite session and its scheduled
// attack campaign. The attack schedule is resolved against d (window
// fractions become simulated times), armed through the registry, installed
// on the site's scheduler, and wired into the session's event stream, so a
// subscriber sees AttackPhase events interleaved with the per-tick
// snapshots. The session's horizon is d: callers either close the loop with
// sess.Run(ctx, d) / RunFor(ctx, d), or drive it tick by tick with Step /
// RunUntil.
// The returned campaign exposes the window and phase logs for reports.
func Build(spec Spec, seed int64, d time.Duration) (*worksite.Session, *attack.Campaign, error) {
	return buildShared(spec, nil, seed, d)
}

// buildShared is Build with an optional shared security bundle (see Batch):
// identical compilation, but the session adopts the batch's commissioned
// PKI/channel state instead of re-running keygen and handshakes.
func buildShared(spec Spec, sh *worksite.SharedSecurity, seed int64, d time.Duration) (*worksite.Session, *attack.Campaign, error) {
	if d <= 0 {
		return nil, nil, fmt.Errorf("scenario %q: duration must be positive, got %v", spec.Name, d)
	}
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	sess, err := worksite.NewSessionShared(spec.Config(seed), sh)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	sess.SetHorizon(d)
	site := sess.Site()
	c := attack.NewCampaign()
	c.OnPhase = func(e attack.PhaseEvent) {
		sess.EmitAttackPhase(e.At, e.Attack, e.Active)
	}
	for i, a := range spec.Attacks {
		cls, ok := lookupAttack(a.Name)
		if !ok {
			// Validate caught unknown names already; keep the guard for
			// specs mutated after validation.
			return nil, nil, fmt.Errorf("scenario %q: attacks[%d]: unknown attack class %q", spec.Name, i, a.Name)
		}
		ctx := ArmContext{
			Site:     site,
			Campaign: c,
			Start:    time.Duration(a.StartFrac * float64(d)),
			Stop:     time.Duration(a.StopFrac * float64(d)),
			Duration: d,
			Params:   a.Params,
		}
		if err := cls.arm(ctx); err != nil {
			return nil, nil, fmt.Errorf("scenario %q: arm %s: %w", spec.Name, a.Name, err)
		}
	}
	c.Schedule(site.Scheduler())
	return sess, c, nil
}

// Run builds the spec and executes it for d of simulated time. The context
// bounds wall-clock execution (see worksite.Session.RunFor): a cancelled or
// expired context ends the run between ticks with ctx.Err(), and a context
// that never fires leaves the result byte-identical to an uncancellable run.
func Run(ctx context.Context, spec Spec, seed int64, d time.Duration) (worksite.Report, error) {
	sess, _, err := Build(spec, seed, d)
	if err != nil {
		return worksite.Report{}, err
	}
	rep, err := sess.Run(ctx, d)
	if err != nil {
		return worksite.Report{}, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	return rep, nil
}
