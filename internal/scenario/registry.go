package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/worksite"
)

// ArmContext is what an attack class gets to wire itself onto a commissioned
// site: the site's attack surfaces, the campaign to append windows to, and
// the resolved activation window.
type ArmContext struct {
	Site     *worksite.Site
	Campaign *attack.Campaign
	// Start and Stop are the activation window in simulated time, already
	// resolved from the spec's fractions of Duration.
	Start, Stop time.Duration
	// Duration is the total simulated run length.
	Duration time.Duration
	// Params are the attack-class knobs from the spec.
	Params Params
}

// ArmFunc arms one attack class: it constructs the attack against the site's
// surfaces and appends its window(s) to the campaign.
type ArmFunc func(ctx ArmContext) error

// attackClass is one registered attack with its documentation.
type attackClass struct {
	name        string
	description string
	arm         ArmFunc
}

var attackClasses = map[string]attackClass{}

// RegisterAttack adds an attack class to the arming registry. Every consumer
// (the E5 matrix, the worksite-sim -attack flag, catalog specs, sweep cells)
// resolves names through this registry, so the accepted set can never drift
// between harnesses. Registration happens at init time; conflicts panic.
func RegisterAttack(name, description string, arm ArmFunc) {
	if name == "" || arm == nil {
		panic("scenario: attack class needs a name and an ArmFunc")
	}
	if _, dup := attackClasses[name]; dup {
		panic(fmt.Sprintf("scenario: attack class %q already registered", name))
	}
	attackClasses[name] = attackClass{name: name, description: description, arm: arm}
}

func lookupAttack(name string) (attackClass, bool) {
	c, ok := attackClasses[name]
	return c, ok
}

// AttackNames returns every registered attack class, sorted.
func AttackNames() []string {
	out := make([]string, 0, len(attackClasses))
	for name := range attackClasses {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AttackDescription returns the one-line summary of a registered class.
func AttackDescription(name string) string { return attackClasses[name].description }

// The built-in attack classes of the paper's Section IV-C survey. Each armer
// reads its knobs from Params with the historical experiment values as
// defaults, so a bare {name, window} spec reproduces the E5 cells.
//
// Registered from a package-level var (not func init) so the registry is
// populated before the catalog's init runs, regardless of file order.
var _ = registerBuiltinAttacks()

func registerBuiltinAttacks() struct{} {
	RegisterAttack("rf-jamming",
		"RF jammer on the victim channel (params: channel, powerDBm, wideband, posXFrac, posYFrac)",
		func(ctx ArmContext) error {
			grid := ctx.Site.Grid()
			pos := geo.V(
				ctx.Params.Get("posXFrac", 0.5)*grid.Width(),
				ctx.Params.Get("posYFrac", 0.5)*grid.Height(),
			)
			ctx.Campaign.Add(ctx.Start, ctx.Stop, attack.NewJamming(
				ctx.Site.Medium(), "jam", pos,
				int(ctx.Params.Get("channel", 1)),
				ctx.Params.Get("powerDBm", 38),
				ctx.Params.Bool("wideband", true)))
			return nil
		})

	RegisterAttack("deauth-flood",
		"forged de-authentication frames against the forwarder (params: periodMs)",
		func(ctx ArmContext) error {
			ctx.Campaign.Add(ctx.Start, ctx.Stop, attack.NewDeauthFlood(
				ctx.Site.AttackerAdapter(), worksite.NodeForwarder, worksite.NodeCoordinator,
				paramPeriod(ctx.Params, 200*time.Millisecond)))
			return nil
		})

	RegisterAttack("gnss-spoof",
		"GNSS spoofing displacing the forwarder's fixes (params: offsetEastM, offsetNorthM)",
		func(ctx ArmContext) error {
			ctx.Campaign.Add(ctx.Start, ctx.Stop, attack.NewGNSSSpoof(
				ctx.Site.ForwarderGNSS(), geo.V(
					ctx.Params.Get("offsetEastM", 60),
					ctx.Params.Get("offsetNorthM", 40))))
			return nil
		})

	RegisterAttack("gnss-jam",
		"GNSS jamming denying the forwarder its position fix",
		func(ctx ArmContext) error {
			ctx.Campaign.Add(ctx.Start, ctx.Stop, attack.NewGNSSJam(ctx.Site.ForwarderGNSS()))
			return nil
		})

	RegisterAttack("camera-blind",
		"laser/glare blinding of the perception cameras (forwarder and drone)",
		func(ctx ArmContext) error {
			site := ctx.Site
			ctx.Campaign.Add(ctx.Start, ctx.Stop, attack.NewCameraBlind("camera-blind", func(b bool) {
				site.ForwarderCamera().Blinded = b
				if cam := site.DroneCamera(); cam != nil {
					cam.Blinded = b
				}
			}))
			return nil
		})

	RegisterAttack("replay",
		"records forwarder-bound frames off the air and replays them verbatim (params: periodMs)",
		func(ctx ArmContext) error {
			// The recorder taps the medium from t=0 so the replay window has
			// captured traffic to draw from; the spec's StartFrac should leave
			// it that lead time (the catalog uses 0.2 where other classes
			// start at 0.1).
			rec := &attack.Recorder{FilterDst: worksite.NodeForwarder}
			med := ctx.Site.Medium()
			prev := med.Observer
			med.Observer = func(p radio.Packet, to radio.NodeID, sinr float64, cause radio.DropCause) {
				rec.Tap(p, to, sinr, cause)
				if prev != nil {
					prev(p, to, sinr, cause)
				}
			}
			ctx.Campaign.Add(ctx.Start, ctx.Stop, attack.NewReplay(
				ctx.Site.AttackerAdapter(), rec, paramPeriod(ctx.Params, time.Second)))
			return nil
		})

	RegisterAttack("command-injection",
		"forged clear-stops commands claiming to come from the coordinator (params: periodMs)",
		func(ctx ArmContext) error {
			ctx.Campaign.Add(ctx.Start, ctx.Stop, attack.NewCommandInjection(
				ctx.Site.AttackerAdapter(), worksite.NodeCoordinator, worksite.NodeForwarder,
				func() []byte {
					return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`)
				}, paramPeriod(ctx.Params, time.Second)))
			return nil
		})
	return struct{}{}
}

// paramPeriod reads the periodMs knob, falling back to def.
func paramPeriod(p Params, def time.Duration) time.Duration {
	ms := p.Get("periodMs", float64(def/time.Millisecond))
	if ms <= 0 {
		return def
	}
	return time.Duration(ms * float64(time.Millisecond))
}
