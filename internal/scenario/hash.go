package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns the spec's canonical serialized form: compact JSON in
// Spec's fixed struct-field order, with attack-param map keys sorted by
// encoding/json. Two specs describing the same operational situation under
// the same profile produce identical canonical bytes, so the form is the
// stable input of content addressing.
func (s Spec) Canonical() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalize spec: %w", err)
	}
	return b, nil
}

// Hash returns the canonical spec hash: SHA-256 hex over Canonical. It is
// the spec component of the result-cache key — changing any field of the
// spec (site, weather, workers, timing, profile, attack schedule, declared
// horizon, even name or description) changes the hash, so cached results can
// never be served for a different situation.
func (s Spec) Hash() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
