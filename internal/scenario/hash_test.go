package scenario

// Spec-hash tests: the canonical hash is the spec component of the result
// cache's content address, so it must be stable across calls and sensitive
// to every spec field — a hash that ignored a field would let a cached
// result be served for a different situation.

import (
	"testing"
	"time"

	"repro/internal/worksite"
)

// TestHashStable: hashing is a pure function — same spec, same hash — and
// the hex form is a 64-char SHA-256 digest.
func TestHashStable(t *testing.T) {
	a, err := Baseline().Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	b, err := Baseline().Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if a != b {
		t.Fatalf("hash not stable: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", a)
	}
}

// TestHashSensitivity: every kind of spec change — identity, horizon, site,
// weather, workers, fusion policy, drone, timing, profile, attacks — changes
// the hash.
func TestHashSensitivity(t *testing.T) {
	base := Baseline()
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(Spec) Spec
	}{
		{"name", func(s Spec) Spec { s.Name = "other"; return s }},
		{"description", func(s Spec) Spec { s.Description = "changed"; return s }},
		{"horizon", func(s Spec) Spec { s.Horizon = 5 * time.Minute; return s }},
		{"site", func(s Spec) Spec { s.Site.Cols++; return s }},
		{"workers", func(s Spec) Spec { s.Workers++; return s }},
		{"confirmHits", func(s Spec) Spec { s.ConfirmHits++; return s }},
		{"drone", func(s Spec) Spec { s.Drone = !s.Drone; return s }},
		{"profile", func(s Spec) Spec { return s.WithProfile(worksite.Secured()) }},
		{"attacks", func(s Spec) Spec {
			s.Attacks = append(s.Attacks, AttackSpec{Name: "gnss-spoof"})
			return s
		}},
	}
	seen := map[string]string{baseHash: "base"}
	for _, m := range mutations {
		h, err := m.mutate(base).Hash()
		if err != nil {
			t.Fatalf("Hash(%s): %v", m.name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s collides with %s (hash %s)", m.name, prev, h)
		}
		seen[h] = m.name
	}
}

// TestCanonicalIsCompactJSON: the canonical form round-trips through the
// spec codec, so hashing and serving share one serialization.
func TestCanonicalIsCompactJSON(t *testing.T) {
	b, err := Baseline().Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	spec, err := Parse(b)
	if err != nil {
		t.Fatalf("Parse(Canonical): %v", err)
	}
	again, err := spec.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if string(b) != string(again) {
		t.Fatal("canonical form does not round-trip through Parse")
	}
}
