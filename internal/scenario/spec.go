// Package scenario turns operational situations into data. A Spec is a
// declarative, JSON-serializable description of one worksite scenario — site
// geometry, weather, workers, drone, fusion policy, security profile, and an
// attack schedule expressed as {name, startFrac, stopFrac, params} — and
// Build compiles a Spec into a commissioned worksite plus a scheduled attack
// campaign through a single attack-arming registry.
//
// The paper's certification argument rests on exercising the pathway across
// many operational situations (attack classes, weather, fleet and defence
// variants). With specs, adding a situation is a data change: write a Spec
// (or drop a JSON file next to the binary), not a new switch arm in every
// harness. The named catalog (List / Get) ships the standard situations —
// the E1 baseline, one scenario per attack class of the E5 matrix, weather
// and terrain variants, and multi-attack combinations — and the campaign
// sweep (internal/campaign.Sweep) fans the cross-product
// scenario × profile × seed out over the bounded worker pool.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/sensors"
	"repro/internal/worksite"
)

// SiteSpec is the terrain part of a scenario: grid geometry and forest
// composition.
type SiteSpec struct {
	// Cols and Rows are the grid dimensions in cells.
	Cols int `json:"cols"`
	Rows int `json:"rows"`
	// CellSizeM is the cell edge length in metres.
	CellSizeM float64 `json:"cellSizeM"`
	// TreeDensity and RockDensity are obstacle probabilities in [0, 1].
	TreeDensity float64 `json:"treeDensity"`
	RockDensity float64 `json:"rockDensity"`
}

// TimingSpec is the mission-timing part of a scenario. Durations marshal as
// nanoseconds, matching the repo-wide JSON convention.
type TimingSpec struct {
	// LoadTime and UnloadTime are the dwell times at the harvest site and
	// the landing area.
	LoadTime   time.Duration `json:"loadTimeNs"`
	UnloadTime time.Duration `json:"unloadTimeNs"`
	// TickPeriod is the control-loop period.
	TickPeriod time.Duration `json:"tickPeriodNs"`
}

// Params carries attack-class tuning knobs as data. Unknown keys are
// ignored by the armer; missing keys fall back to the class defaults.
type Params map[string]float64

// Get returns the value for key, or def when absent.
func (p Params) Get(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Bool interprets the value for key as a flag (non-zero = true).
func (p Params) Bool(key string, def bool) bool {
	v, ok := p[key]
	if !ok {
		return def
	}
	return v != 0
}

// AttackSpec schedules one attack class as data. Start and stop are
// fractions of the run duration, so the same spec scales to any -duration.
type AttackSpec struct {
	// Name selects the attack class in the arming registry (AttackNames).
	Name string `json:"name"`
	// StartFrac and StopFrac bound the active window as fractions of the
	// simulated duration, both in [0, 1]. StopFrac <= StartFrac means the
	// attack never ends once begun.
	StartFrac float64 `json:"startFrac"`
	StopFrac  float64 `json:"stopFrac"`
	// Params tunes the attack class (e.g. jammer power, flood period).
	Params Params `json:"params,omitempty"`
}

// SpecError is a typed spec-validation failure naming the offending field
// in JSON-pointer-ish dotted form (e.g. "attacks[2].name", "horizonNs").
// Consumers that surface specs over a wire — the worksimd daemon maps one to
// HTTP 422 Unprocessable Entity — can point the client at the exact field
// instead of parroting an opaque message.
type SpecError struct {
	// Field names the offending spec field.
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario spec: field %s: %s", e.Field, e.Reason)
}

// specErrorf builds a SpecError with a formatted reason.
func specErrorf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Spec is a complete declarative scenario. The zero value is not runnable;
// start from Baseline() (or a catalog entry) and override fields. JSON spec
// files are decoded on top of Baseline(), so a file only needs the fields it
// changes.
type Spec struct {
	// Name identifies the scenario in catalogs, tables and sweep cells.
	Name string `json:"name,omitempty"`
	// Description is a one-line summary for listings.
	Description string `json:"description,omitempty"`
	// Horizon, when positive, is the simulated duration the scenario
	// declares for itself; runs opened without an explicit horizon use it
	// instead of the engine default. Zero means undeclared.
	Horizon time.Duration `json:"horizonNs,omitempty"`
	// Site is the terrain.
	Site SiteSpec `json:"site"`
	// Weather holds for the whole run.
	Weather sensors.Weather `json:"weather"`
	// Workers is the number of workers on foot near the harvest site.
	Workers int `json:"workers"`
	// ConfirmHits is the fusion confirmation policy (1 = OR-fusion).
	ConfirmHits int `json:"confirmHits"`
	// Drone toggles the observation drone (the Fig. 2 point of view).
	Drone bool `json:"drone"`
	// Timing is the mission timing.
	Timing TimingSpec `json:"timing"`
	// Profile selects the active defences. Sweeps override it per cell.
	Profile worksite.SecurityProfile `json:"profile"`
	// Attacks is the adversary schedule; empty means a clean run.
	Attacks []AttackSpec `json:"attacks,omitempty"`
}

// Baseline returns the E1 baseline scenario: a 400x400 m site, moderate
// forest, three workers, clear weather, drone on, no defences, no attacks.
// It mirrors worksite.DefaultConfig.
func Baseline() Spec {
	return Spec{
		Name:        "baseline",
		Description: "clean E1 worksite: moderate forest, clear weather, drone on",
		Site: SiteSpec{
			Cols:        100,
			Rows:        100,
			CellSizeM:   4,
			TreeDensity: 0.22,
			RockDensity: 0.03,
		},
		Workers:     3,
		ConfirmHits: 2,
		Drone:       true,
		Timing: TimingSpec{
			LoadTime:   45 * time.Second,
			UnloadTime: 30 * time.Second,
			TickPeriod: 500 * time.Millisecond,
		},
	}
}

// WithProfile returns a copy of the spec with the security profile replaced —
// the sweep axis the E5 comparison methodology varies.
func (s Spec) WithProfile(p worksite.SecurityProfile) Spec {
	s.Profile = p
	return s
}

// Config compiles the spec into a worksite configuration rooted at seed.
// The seed is deliberately not part of the spec: a scenario is an
// operational situation, and the campaign layer owns the seed sweep.
func (s Spec) Config(seed int64) worksite.Config {
	return worksite.Config{
		Seed:         seed,
		Cols:         s.Site.Cols,
		Rows:         s.Site.Rows,
		CellSizeM:    s.Site.CellSizeM,
		TreeDensity:  s.Site.TreeDensity,
		RockDensity:  s.Site.RockDensity,
		Weather:      s.Weather,
		Workers:      s.Workers,
		Profile:      s.Profile,
		ConfirmHits:  s.ConfirmHits,
		DroneEnabled: s.Drone,
		LoadTime:     s.Timing.LoadTime,
		UnloadTime:   s.Timing.UnloadTime,
		TickPeriod:   s.Timing.TickPeriod,
	}
}

// Validate checks the scenario-level invariants: a declared horizon is
// positive, every scheduled attack is a registered class, schedule entries
// are unique per class, and window fractions are sane. Failures are typed
// *SpecError values naming the offending field. Worksite-level values
// (grid, timing, densities) are validated by worksite.Config.Validate when
// the spec is built.
func (s Spec) Validate() error {
	if s.Horizon < 0 {
		return specErrorf("horizonNs", "declared horizon must be positive, got %v", s.Horizon)
	}
	seen := make(map[string]int, len(s.Attacks))
	for i, a := range s.Attacks {
		if _, ok := lookupAttack(a.Name); !ok {
			return specErrorf(fmt.Sprintf("attacks[%d].name", i),
				"unknown attack class %q (registered: %v)", a.Name, AttackNames())
		}
		if prev, dup := seen[a.Name]; dup {
			return specErrorf(fmt.Sprintf("attacks[%d].name", i),
				"duplicate attack schedule entry %q (already scheduled at attacks[%d]); merge the windows into one entry", a.Name, prev)
		}
		seen[a.Name] = i
		if a.StartFrac < 0 || a.StartFrac > 1 || a.StopFrac < 0 || a.StopFrac > 1 {
			return specErrorf(fmt.Sprintf("attacks[%d]", i),
				"(%s): window fractions must be in [0,1], got start=%v stop=%v", a.Name, a.StartFrac, a.StopFrac)
		}
	}
	return nil
}

// Parse decodes a JSON spec on top of the baseline, so partial files only
// state what they change from the E1 scenario.
func Parse(data []byte) (Spec, error) {
	s := Baseline()
	s.Name = ""
	s.Description = ""
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	// A horizon the document declares explicitly must be positive; zero is
	// indistinguishable from "absent" after decoding, so probe the raw JSON
	// for a declared-but-non-positive value.
	var probe struct {
		Horizon *int64 `json:"horizonNs"`
	}
	if json.Unmarshal(data, &probe) == nil && probe.Horizon != nil && *probe.Horizon <= 0 {
		return Spec{}, specErrorf("horizonNs", "declared horizon must be positive, got %dns", *probe.Horizon)
	}
	if s.Name == "" {
		s.Name = "custom"
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadFile reads and parses a JSON spec file (see Parse).
func LoadFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// JSON renders the spec as indented JSON — the canonical serialized form,
// suitable as a -scenario-file starting point.
func (s Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Profiles returns the named security profiles a sweep can select, in
// presentation order (the paper's unsecured-vs-secured comparison axis).
func Profiles() []string { return []string{"unsecured", "secured"} }

// ResolveProfile maps a profile name to its defence selection.
func ResolveProfile(name string) (worksite.SecurityProfile, error) {
	switch name {
	case "unsecured":
		return worksite.Unsecured(), nil
	case "secured":
		return worksite.Secured(), nil
	default:
		return worksite.SecurityProfile{}, fmt.Errorf("scenario: unknown profile %q (known: %v)",
			name, Profiles())
	}
}
