package scenario

import (
	"fmt"
	"sort"

	"repro/internal/sensors"
)

// The catalog holds the named standard scenarios. Entries are constructor
// functions so Get always hands out an independent copy — callers can mutate
// profiles or attack windows without corrupting the catalog.
var catalog = map[string]func() Spec{}

// registerScenario adds a catalog entry at init time; conflicts panic.
func registerScenario(build func() Spec) {
	s := build()
	if s.Name == "" {
		panic("scenario: catalog entry without a name")
	}
	if _, dup := catalog[s.Name]; dup {
		panic(fmt.Sprintf("scenario: catalog entry %q already registered", s.Name))
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: invalid catalog entry %q: %v", s.Name, err))
	}
	catalog[s.Name] = build
}

// List returns every catalog scenario name, sorted.
func List() []string {
	out := make([]string, 0, len(catalog))
	for name := range catalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns the named catalog scenario. The result is a fresh copy.
func Get(name string) (Spec, error) {
	build, ok := catalog[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (catalog: %v)", name, List())
	}
	return build(), nil
}

// ForAttack returns the single-attack scenario for a registered attack
// class, or the clean baseline for "none" — the sugar behind the E5 matrix
// rows and the worksite-sim -attack flag. Every registered attack class has
// a same-named catalog entry (enforced by tests).
func ForAttack(name string) (Spec, error) {
	if name == "none" {
		return Baseline(), nil
	}
	if _, ok := lookupAttack(name); !ok {
		return Spec{}, fmt.Errorf("scenario: unknown attack %q (accepted: none, %v)", name, AttackNames())
	}
	return Get(name)
}

// attackWindow is the standard E5 activation window: the middle of the run,
// leaving a clean lead-in and tail for before/after comparison.
const (
	attackStartFrac = 0.1
	attackStopFrac  = 0.8
	// Replay starts later: its recorder needs captured traffic first.
	replayStartFrac = 0.2
)

func init() {
	registerScenario(Baseline)

	// One scenario per registered attack class, under the class's own name,
	// with the standard window and default parameters — the E5 matrix rows.
	for _, name := range AttackNames() {
		name := name
		start := attackStartFrac
		if name == "replay" {
			start = replayStartFrac
		}
		registerScenario(func() Spec {
			s := Baseline()
			s.Name = name
			s.Description = AttackDescription(name)
			s.Attacks = []AttackSpec{{Name: name, StartFrac: start, StopFrac: attackStopFrac}}
			return s
		})
	}

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "rf-jamming-narrowband"
		s.Description = "narrowband jammer on channel 1 — the channel-agility (E5b) adversary"
		s.Attacks = []AttackSpec{{
			Name:      "rf-jamming",
			StartFrac: attackStartFrac,
			StopFrac:  attackStopFrac,
			Params:    Params{"wideband": 0},
		}}
		return s
	})

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "harsh-weather"
		s.Description = "heavy rain, fog and failing light degrade every sensor"
		s.Weather = sensors.Weather{Rain: 0.7, Fog: 0.5, Darkness: 0.3}
		return s
	})

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "night-ops"
		s.Description = "night shift: camera-hostile darkness, clear air"
		s.Weather = sensors.Weather{Darkness: 0.9}
		return s
	})

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "dense-forest"
		s.Description = "double tree density and more rocks: occlusion-heavy terrain"
		s.Site.TreeDensity = 0.45
		s.Site.RockDensity = 0.06
		return s
	})

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "no-drone"
		s.Description = "forwarder-only perception: the Fig. 2 point of view removed"
		s.Drone = false
		return s
	})

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "crowded-site"
		s.Description = "eight workers on foot near the harvest site"
		s.Workers = 8
		return s
	})

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "multi-attack"
		s.Description = "phased campaign: de-auth flood, command injection, GNSS spoofing, wideband jamming"
		s.Attacks = []AttackSpec{
			{Name: "deauth-flood", StartFrac: 0.1, StopFrac: 0.3},
			{Name: "command-injection", StartFrac: 0.3, StopFrac: 0.5},
			{Name: "gnss-spoof", StartFrac: 0.5, StopFrac: 0.7},
			{Name: "rf-jamming", StartFrac: 0.7, StopFrac: 0.9},
		}
		return s
	})

	registerScenario(func() Spec {
		s := Baseline()
		s.Name = "storm-assault"
		s.Description = "harsh weather plus simultaneous narrowband jamming and GNSS denial"
		s.Weather = sensors.Weather{Rain: 0.7, Fog: 0.5, Darkness: 0.3}
		s.Attacks = []AttackSpec{
			{Name: "rf-jamming", StartFrac: 0.1, StopFrac: 0.8, Params: Params{"wideband": 0}},
			{Name: "gnss-jam", StartFrac: 0.4, StopFrac: 0.8},
		}
		return s
	})
}
