// Package netsim implements the link/session layer of the worksite network on
// top of the radio medium: frames, association, and 802.11-style
// de-authentication.
//
// The de-auth attack called out by the paper's mining-industry survey
// ("Wi-Fi De-Auth attacks to disconnect AHS vehicles from the network,
// disrupting operations") is representable only if management frames exist as
// first-class objects, so this layer models them explicitly. Management-frame
// protection (the 802.11w countermeasure) is a per-adapter option: with it
// enabled, de-auth frames carry an HMAC over a site-wide management key and
// forged frames are rejected and surfaced to the IDS.
package netsim

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/radio"
)

// FrameKind classifies a link-layer frame.
type FrameKind int

// Frame kinds.
const (
	FrameData FrameKind = iota + 1
	FrameAssocReq
	FrameAssocResp
	FrameDeauth
	FrameBeacon
)

// String returns a short kind label.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "data"
	case FrameAssocReq:
		return "assoc-req"
	case FrameAssocResp:
		return "assoc-resp"
	case FrameDeauth:
		return "deauth"
	case FrameBeacon:
		return "beacon"
	default:
		return fmt.Sprintf("frame(%d)", int(k))
	}
}

// Frame is a link-layer protocol data unit. Src is the *claimed* sender — the
// radio layer does not authenticate it, which is exactly what spoofing
// attacks exploit.
type Frame struct {
	Kind    FrameKind
	Src     radio.NodeID
	Dst     radio.NodeID
	Seq     uint64
	Payload []byte
	// MIC is the management integrity check for protected management frames.
	MIC []byte
}

const (
	frameHeaderSize = 24
	micSize         = 8
)

// wireSize approximates the frame's on-air size in bytes.
func (f Frame) wireSize() int { return frameHeaderSize + len(f.Payload) + len(f.MIC) }

// pooledFrame is the recycled over-the-air representation of adapter-sent
// frames: the payload is copied into frame-owned storage and the medium's
// reference counting returns the frame to its adapter's pool once the last
// scheduled delivery has run. Capturing observers must deep-copy via
// SnapshotFrame before retaining one.
type pooledFrame struct {
	Frame
	refs int
	pool *framePool
	buf  []byte // payload backing storage, reused across sends
}

var _ radio.Refcounted = (*pooledFrame)(nil)

// Retain implements radio.Refcounted.
//
//worksim:hotpath
func (f *pooledFrame) Retain() { f.refs++ }

// Release implements radio.Refcounted.
//
//worksim:hotpath
func (f *pooledFrame) Release() {
	f.refs--
	if f.refs == 0 {
		f.pool.put(f)
	}
}

type framePool struct {
	free []*pooledFrame
}

//worksim:hotpath
func (p *framePool) get() *pooledFrame {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		f.refs = 1
		return f
	}
	return &pooledFrame{refs: 1, pool: p} //worksim:allow pool warm-up: allocates only until the free list reaches high water
}

//worksim:hotpath
func (p *framePool) put(f *pooledFrame) {
	buf := f.buf
	f.Frame = Frame{}
	f.buf = buf[:0]
	p.free = append(p.free, f)
}

// frameView extracts the link-layer frame carried by a packet, pooled or
// not. The returned value shares the payload storage of an in-flight pooled
// frame: it is valid during a synchronous delivery callback, but must be
// deep-copied (SnapshotFrame) before being retained.
//
//worksim:hotpath
func frameView(p radio.Packet) (Frame, bool) {
	switch v := p.Payload.(type) {
	case *pooledFrame:
		return v.Frame, true
	case Frame:
		return v, true
	case *Frame:
		return *v, true
	default:
		return Frame{}, false
	}
}

// SnapshotFrame extracts the frame carried by a packet as a retainable deep
// copy (payload and MIC storage owned by the caller) — the capture primitive
// for recording observers, which may hold frames long after the in-flight
// pooled original has been recycled.
func SnapshotFrame(p radio.Packet) (Frame, bool) {
	f, ok := frameView(p)
	if !ok {
		return Frame{}, false
	}
	f.Payload = append([]byte(nil), f.Payload...)
	f.MIC = append([]byte(nil), f.MIC...)
	return f, true
}

// Stats aggregates per-adapter counters.
type Stats struct {
	FramesSent       int64 `json:"framesSent"`
	FramesReceived   int64 `json:"framesReceived"`
	DataDelivered    int64 `json:"dataDelivered"`
	DataRejected     int64 `json:"dataRejected"` // data from non-associated peers
	DeauthsAccepted  int64 `json:"deauthsAccepted"`
	DeauthsRejected  int64 `json:"deauthsRejected"` // bad MIC under protected mgmt
	AssocEstablished int64 `json:"assocEstablished"`
}

// Adapter is a worksite network interface bound to one radio node.
// It is single-threaded under the simulation scheduler.
type Adapter struct {
	id     radio.NodeID
	medium *radio.Medium

	protectedMgmt bool
	mgmtKey       []byte

	links  map[radio.NodeID]*link
	txSeq  uint64
	stats  Stats
	online bool
	pool   framePool

	// OnMessage receives data payloads from associated peers.
	OnMessage func(from radio.NodeID, payload []byte)
	// OnDeauth is invoked when a de-auth frame addressed to this adapter is
	// processed; authentic reports whether it passed management protection
	// (always true when protection is disabled — the attack's premise).
	OnDeauth func(from radio.NodeID, authentic bool)
	// OnMgmtReject is invoked when a protected management frame fails its MIC
	// check; the IDS subscribes here.
	OnMgmtReject func(f Frame)
	// OnAssociated is invoked when a link reaches the associated state.
	OnAssociated func(peer radio.NodeID)
}

type link struct {
	associated bool
	rxSeq      uint64
}

// Options configures an adapter.
type Options struct {
	// ProtectedMgmt enables 802.11w-style management-frame protection.
	ProtectedMgmt bool
	// MgmtKey is the site-wide management key; required when ProtectedMgmt
	// is enabled.
	MgmtKey []byte
}

// NewAdapter creates an adapter for the radio node with the given ID, which
// must already be registered on the medium. The node's Recv hook is taken
// over by the adapter.
func NewAdapter(medium *radio.Medium, id radio.NodeID, opts Options) (*Adapter, error) {
	node, ok := medium.Node(id)
	if !ok {
		return nil, fmt.Errorf("new adapter: radio node %q not registered", id)
	}
	if opts.ProtectedMgmt && len(opts.MgmtKey) == 0 {
		return nil, fmt.Errorf("new adapter %q: protected management requires a key", id)
	}
	a := &Adapter{
		id:            id,
		medium:        medium,
		protectedMgmt: opts.ProtectedMgmt,
		mgmtKey:       append([]byte(nil), opts.MgmtKey...),
		links:         make(map[radio.NodeID]*link),
		online:        true,
	}
	node.Recv = a.receive
	return a, nil
}

// ID returns the adapter's node ID.
func (a *Adapter) ID() radio.NodeID { return a.id }

// Stats returns a copy of the adapter counters.
func (a *Adapter) Stats() Stats { return a.stats }

// Associated reports whether a link to peer is established.
func (a *Adapter) Associated(peer radio.NodeID) bool {
	l, ok := a.links[peer]
	return ok && l.associated
}

// Associate initiates association with peer by sending an AssocReq. The link
// becomes usable when the peer's AssocResp arrives.
func (a *Adapter) Associate(peer radio.NodeID) error {
	return a.send(Frame{Kind: FrameAssocReq, Src: a.id, Dst: peer})
}

// SendData transmits payload to an associated peer. It returns an error if
// the link is not associated (the upper layer may then re-associate).
//
//worksim:hotpath
func (a *Adapter) SendData(peer radio.NodeID, payload []byte) error {
	if !a.Associated(peer) {
		return fmt.Errorf("send data %s->%s: link not associated", a.id, peer) //worksim:allow cold error exit: unassociated links occur only under attack or before commissioning
	}
	return a.send(Frame{Kind: FrameData, Src: a.id, Dst: peer, Payload: payload})
}

// Deauth tears down the link with peer, notifying it with a (protected, if
// configured) de-auth frame.
func (a *Adapter) Deauth(peer radio.NodeID) error {
	delete(a.links, peer)
	f := Frame{Kind: FrameDeauth, Src: a.id, Dst: peer}
	if a.protectedMgmt {
		f.MIC = mgmtMIC(a.mgmtKey, f)
	}
	return a.send(f)
}

// TuneTo retunes this adapter's radio to peer's current channel and reports
// whether the peer was found. It models a channel-scanning adversary (and,
// for legitimate nodes, re-joining after a coordinated hop).
func (a *Adapter) TuneTo(peer radio.NodeID) bool {
	target, ok := a.medium.Node(peer)
	if !ok {
		return false
	}
	self, ok := a.medium.Node(a.id)
	if !ok {
		return false
	}
	self.Channel = target.Channel
	return true
}

// InjectRaw transmits an arbitrary frame without adapter bookkeeping. It
// exists for the attack framework: a forger claims any Src it likes.
func (a *Adapter) InjectRaw(f Frame) error {
	return a.medium.Transmit(radio.Packet{
		From:    a.id,
		To:      f.Dst,
		Size:    f.wireSize(),
		Payload: f,
	})
}

//worksim:hotpath
func (a *Adapter) send(f Frame) error {
	a.txSeq++
	f.Seq = a.txSeq
	a.stats.FramesSent++
	// Ship a pooled frame: the payload is copied into frame-owned storage so
	// the caller's buffer is reusable the moment Transmit returns, and the
	// frame itself recycles once the last scheduled delivery lands.
	pf := a.pool.get()
	pf.Frame = f
	if len(f.Payload) > 0 {
		pf.buf = append(pf.buf[:0], f.Payload...)
		pf.Frame.Payload = pf.buf
	}
	err := a.medium.Transmit(radio.Packet{
		From:    a.id,
		To:      f.Dst,
		Size:    f.wireSize(),
		Payload: pf,
	})
	pf.Release() // drop the sender's reference
	return err
}

//worksim:hotpath
func (a *Adapter) receive(p radio.Packet) {
	f, ok := frameView(p)
	if !ok {
		return
	}
	if f.Dst != a.id && f.Dst != radio.Broadcast {
		return
	}
	a.stats.FramesReceived++
	switch f.Kind {
	case FrameAssocReq:
		a.linkFor(f.Src).associated = true
		a.stats.AssocEstablished++
		resp := Frame{Kind: FrameAssocResp, Src: a.id, Dst: f.Src}
		if err := a.send(resp); err == nil && a.OnAssociated != nil {
			a.OnAssociated(f.Src)
		}
	case FrameAssocResp:
		l := a.linkFor(f.Src)
		if !l.associated {
			l.associated = true
			a.stats.AssocEstablished++
			if a.OnAssociated != nil {
				a.OnAssociated(f.Src)
			}
		}
	case FrameDeauth:
		a.handleDeauth(f)
	case FrameData:
		l, ok := a.links[f.Src]
		if !ok || !l.associated {
			a.stats.DataRejected++
			return
		}
		l.rxSeq = f.Seq
		a.stats.DataDelivered++
		if a.OnMessage != nil {
			a.OnMessage(f.Src, f.Payload)
		}
	case FrameBeacon:
		// Beacons carry no state in this model.
	}
}

func (a *Adapter) handleDeauth(f Frame) {
	if a.protectedMgmt {
		if !hmac.Equal(f.MIC, mgmtMIC(a.mgmtKey, f)) {
			a.stats.DeauthsRejected++
			if a.OnMgmtReject != nil {
				a.OnMgmtReject(f)
			}
			if a.OnDeauth != nil {
				a.OnDeauth(f.Src, false)
			}
			return
		}
	}
	delete(a.links, f.Src)
	a.stats.DeauthsAccepted++
	if a.OnDeauth != nil {
		a.OnDeauth(f.Src, true)
	}
}

//worksim:hotpath
func (a *Adapter) linkFor(peer radio.NodeID) *link {
	l, ok := a.links[peer]
	if !ok {
		l = &link{} //worksim:allow one allocation per peer at first contact; steady state hits the map
		a.links[peer] = l
	}
	return l
}

// mgmtMIC computes the truncated HMAC protecting management frames. The Seq
// field is excluded because it is assigned at send time after MIC
// computation; replay handling is the secure channel's job.
func mgmtMIC(key []byte, f Frame) []byte {
	mac := hmac.New(sha256.New, key)
	var kind [4]byte
	binary.BigEndian.PutUint32(kind[:], uint32(f.Kind))
	mac.Write(kind[:])
	mac.Write([]byte(f.Src))
	mac.Write([]byte{0})
	mac.Write([]byte(f.Dst))
	return mac.Sum(nil)[:micSize]
}
