package netsim

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/simclock"
)

type net struct {
	sched  *simclock.Scheduler
	medium *radio.Medium
}

// newNet builds a near-lossless medium so link-layer logic is tested in
// isolation from propagation randomness.
func newNet(t *testing.T) *net {
	t.Helper()
	sched := simclock.New()
	grid, err := geo.NewGrid(50, 50, 2)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := radio.NewMedium(sched, grid, rng.New(1), radio.Config{
		ShadowSigmaDB:   0.001,
		SINRThresholdDB: -50,
	})
	return &net{sched: sched, medium: m}
}

func (n *net) adapter(t *testing.T, id radio.NodeID, pos geo.Vec, opts Options) *Adapter {
	t.Helper()
	n.medium.AddNode(&radio.Node{
		ID:         id,
		Pos:        func() geo.Vec { return pos },
		Channel:    1,
		TxPowerDBm: 20,
		Online:     true,
	})
	a, err := NewAdapter(n.medium, id, opts)
	if err != nil {
		t.Fatalf("NewAdapter(%s): %v", id, err)
	}
	return a
}

func (n *net) pump(t *testing.T) {
	t.Helper()
	if err := n.sched.Run(n.sched.Now() + 1e9); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAssociateAndData(t *testing.T) {
	n := newNet(t)
	a := n.adapter(t, "fw", geo.V(10, 10), Options{})
	b := n.adapter(t, "coord", geo.V(14, 10), Options{})

	var got []string
	b.OnMessage = func(from radio.NodeID, payload []byte) {
		got = append(got, string(from)+":"+string(payload))
	}
	if err := a.Associate("coord"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	n.pump(t)
	if !a.Associated("coord") || !b.Associated("fw") {
		t.Fatal("association did not establish on both sides")
	}
	if err := a.SendData("coord", []byte("hello")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	n.pump(t)
	if len(got) != 1 || got[0] != "fw:hello" {
		t.Fatalf("messages = %v", got)
	}
}

func TestSendWithoutAssociationFails(t *testing.T) {
	n := newNet(t)
	a := n.adapter(t, "fw", geo.V(10, 10), Options{})
	n.adapter(t, "coord", geo.V(14, 10), Options{})
	if err := a.SendData("coord", []byte("x")); err == nil {
		t.Fatal("want error sending on non-associated link")
	}
}

func TestDataFromUnassociatedPeerRejected(t *testing.T) {
	n := newNet(t)
	a := n.adapter(t, "attacker", geo.V(10, 10), Options{})
	b := n.adapter(t, "coord", geo.V(14, 10), Options{})
	delivered := false
	b.OnMessage = func(radio.NodeID, []byte) { delivered = true }
	// Inject a raw data frame without association.
	if err := a.InjectRaw(Frame{Kind: FrameData, Src: "attacker", Dst: "coord", Payload: []byte("evil")}); err != nil {
		t.Fatalf("InjectRaw: %v", err)
	}
	n.pump(t)
	if delivered {
		t.Fatal("unassociated data frame delivered to upper layer")
	}
	if b.Stats().DataRejected != 1 {
		t.Fatalf("DataRejected = %d, want 1", b.Stats().DataRejected)
	}
}

func TestLegitimateDeauth(t *testing.T) {
	n := newNet(t)
	a := n.adapter(t, "fw", geo.V(10, 10), Options{})
	b := n.adapter(t, "coord", geo.V(14, 10), Options{})
	if err := a.Associate("coord"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	n.pump(t)
	if err := a.Deauth("coord"); err != nil {
		t.Fatalf("Deauth: %v", err)
	}
	n.pump(t)
	if b.Associated("fw") {
		t.Fatal("peer still associated after deauth")
	}
	if a.Associated("coord") {
		t.Fatal("local side still associated after deauth")
	}
}

func TestSpoofedDeauthSucceedsWithoutProtection(t *testing.T) {
	// The classic attack from the mining survey: no management protection
	// means any node can forge a deauth and disconnect a machine.
	n := newNet(t)
	a := n.adapter(t, "fw", geo.V(10, 10), Options{})
	b := n.adapter(t, "coord", geo.V(14, 10), Options{})
	atk := n.adapter(t, "attacker", geo.V(12, 12), Options{})

	if err := a.Associate("coord"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	n.pump(t)

	deauthSeen := false
	b.OnDeauth = func(from radio.NodeID, authentic bool) {
		deauthSeen = true
		if !authentic {
			t.Fatal("unprotected deauth should be treated as authentic")
		}
	}
	// Forged: claims Src "fw".
	if err := atk.InjectRaw(Frame{Kind: FrameDeauth, Src: "fw", Dst: "coord"}); err != nil {
		t.Fatalf("InjectRaw: %v", err)
	}
	n.pump(t)
	if !deauthSeen {
		t.Fatal("deauth not processed")
	}
	if b.Associated("fw") {
		t.Fatal("spoofed deauth failed to tear down unprotected link")
	}
}

func TestSpoofedDeauthRejectedWithProtection(t *testing.T) {
	n := newNet(t)
	key := []byte("site-mgmt-key-0123456789abcdef")
	a := n.adapter(t, "fw", geo.V(10, 10), Options{ProtectedMgmt: true, MgmtKey: key})
	b := n.adapter(t, "coord", geo.V(14, 10), Options{ProtectedMgmt: true, MgmtKey: key})
	atk := n.adapter(t, "attacker", geo.V(12, 12), Options{})

	if err := a.Associate("coord"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	n.pump(t)

	rejects := 0
	b.OnMgmtReject = func(Frame) { rejects++ }
	if err := atk.InjectRaw(Frame{Kind: FrameDeauth, Src: "fw", Dst: "coord"}); err != nil {
		t.Fatalf("InjectRaw: %v", err)
	}
	n.pump(t)
	if !b.Associated("fw") {
		t.Fatal("protected link torn down by forged deauth")
	}
	if rejects != 1 {
		t.Fatalf("mgmt rejects = %d, want 1", rejects)
	}
	if b.Stats().DeauthsRejected != 1 {
		t.Fatalf("DeauthsRejected = %d, want 1", b.Stats().DeauthsRejected)
	}

	// A legitimate protected deauth still works.
	if err := a.Deauth("coord"); err != nil {
		t.Fatalf("Deauth: %v", err)
	}
	n.pump(t)
	if b.Associated("fw") {
		t.Fatal("legitimate protected deauth rejected")
	}
}

func TestProtectedMgmtRequiresKey(t *testing.T) {
	n := newNet(t)
	n.medium.AddNode(&radio.Node{
		ID: "x", Pos: func() geo.Vec { return geo.V(0, 0) }, Channel: 1, TxPowerDBm: 20, Online: true,
	})
	if _, err := NewAdapter(n.medium, "x", Options{ProtectedMgmt: true}); err == nil {
		t.Fatal("want error for protected mgmt without key")
	}
}

func TestAdapterUnknownNode(t *testing.T) {
	n := newNet(t)
	if _, err := NewAdapter(n.medium, "ghost", Options{}); err == nil {
		t.Fatal("want error for unregistered radio node")
	}
}

func TestFramesToOthersIgnored(t *testing.T) {
	n := newNet(t)
	a := n.adapter(t, "fw", geo.V(10, 10), Options{})
	b := n.adapter(t, "coord", geo.V(14, 10), Options{})
	c := n.adapter(t, "drone", geo.V(12, 12), Options{})
	_ = c
	if err := a.Associate("coord"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	n.pump(t)
	if err := a.SendData("coord", []byte("m")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	n.pump(t)
	// Drone never processed frames addressed to coord.
	if c.Stats().FramesReceived != 0 {
		t.Fatalf("drone processed %d frames not addressed to it", c.Stats().FramesReceived)
	}
	_ = b
}

func TestTuneTo(t *testing.T) {
	n := newNet(t)
	a := n.adapter(t, "attacker", geo.V(10, 10), Options{})
	n.adapter(t, "victim", geo.V(14, 10), Options{})
	victimNode, _ := n.medium.Node("victim")
	attackerNode, _ := n.medium.Node("attacker")
	victimNode.Channel = 7
	if !a.TuneTo("victim") {
		t.Fatal("TuneTo known peer failed")
	}
	if attackerNode.Channel != 7 {
		t.Fatalf("attacker channel = %d, want 7", attackerNode.Channel)
	}
	if a.TuneTo("ghost") {
		t.Fatal("TuneTo unknown peer succeeded")
	}
}

func TestStatsProgression(t *testing.T) {
	n := newNet(t)
	a := n.adapter(t, "fw", geo.V(10, 10), Options{})
	b := n.adapter(t, "coord", geo.V(14, 10), Options{})
	if err := a.Associate("coord"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	n.pump(t)
	for i := 0; i < 10; i++ {
		if err := a.SendData("coord", []byte{byte(i)}); err != nil {
			t.Fatalf("SendData: %v", err)
		}
	}
	n.pump(t)
	if b.Stats().DataDelivered != 10 {
		t.Fatalf("DataDelivered = %d, want 10", b.Stats().DataDelivered)
	}
	if a.Stats().FramesSent < 11 { // assoc req + 10 data
		t.Fatalf("FramesSent = %d, want >= 11", a.Stats().FramesSent)
	}
}
