// Package simval implements the simulation-validity toolkit Section III-D of
// the paper calls for: "ensuring the validity and representativeness of the
// simulation data compared to the real world ... requires systematic
// validation of the components in the simulation toolchain".
//
// Given a reference sample (real-world measurements — in this reproduction,
// a designated golden simulation run) and a synthetic sample (the simulator
// output under test), the toolkit computes distribution-distance statistics
// (two-sample Kolmogorov–Smirnov, population stability index, moment errors)
// and classifies the synthetic source as representative or not against
// configurable criteria. Per-sensor reports aggregate into a toolchain
// validity statement consumed by the assurance case.
package simval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSampleTooSmall is returned when a sample has fewer than two points.
var ErrSampleTooSmall = errors.New("sample too small")

// KSStatistic computes the two-sample Kolmogorov–Smirnov statistic (the
// maximum distance between empirical CDFs), in [0, 1].
func KSStatistic(a, b []float64) (float64, error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, ErrSampleTooSmall
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// PSI computes the population stability index between a reference and a
// synthetic sample over `bins` equal-width bins spanning the combined range.
// PSI < 0.1 is conventionally "no significant shift"; > 0.25 "major shift".
func PSI(ref, syn []float64, bins int) (float64, error) {
	if len(ref) < 2 || len(syn) < 2 {
		return 0, ErrSampleTooSmall
	}
	if bins < 2 {
		return 0, fmt.Errorf("psi: need >= 2 bins, got %d", bins)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ref {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, v := range syn {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi == lo {
		return 0, nil // both samples constant and equal range
	}
	width := (hi - lo) / float64(bins)
	count := func(sample []float64) []float64 {
		c := make([]float64, bins)
		for _, v := range sample {
			idx := int((v - lo) / width)
			if idx >= bins {
				idx = bins - 1
			}
			if idx < 0 {
				idx = 0
			}
			c[idx]++
		}
		// Laplace smoothing avoids log(0) on empty bins.
		total := float64(len(sample)) + float64(bins)*0.5
		for i := range c {
			c[i] = (c[i] + 0.5) / total
		}
		return c
	}
	pRef, pSyn := count(ref), count(syn)
	var psi float64
	for i := 0; i < bins; i++ {
		psi += (pSyn[i] - pRef[i]) * math.Log(pSyn[i]/pRef[i])
	}
	return psi, nil
}

// Moments returns the mean and standard deviation of a sample.
func Moments(sample []float64) (mean, std float64) {
	if len(sample) == 0 {
		return 0, 0
	}
	for _, v := range sample {
		mean += v
	}
	mean /= float64(len(sample))
	for _, v := range sample {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(sample)))
	return mean, std
}

// Criteria are the representativeness thresholds.
type Criteria struct {
	// MaxKS is the maximum tolerated KS statistic.
	MaxKS float64
	// MaxPSI is the maximum tolerated PSI.
	MaxPSI float64
	// MaxMeanRelErr is the maximum relative mean error.
	MaxMeanRelErr float64
	// MaxStdRelErr is the maximum relative standard-deviation error.
	MaxStdRelErr float64
	// Bins for the PSI histogram.
	Bins int
}

// DefaultCriteria returns conventional thresholds (KS 0.1, PSI 0.25, moments
// within 15%).
func DefaultCriteria() Criteria {
	return Criteria{MaxKS: 0.1, MaxPSI: 0.25, MaxMeanRelErr: 0.15, MaxStdRelErr: 0.15, Bins: 20}
}

// Result is a single validity comparison.
type Result struct {
	Name       string   `json:"name"`
	KS         float64  `json:"ks"`
	PSI        float64  `json:"psi"`
	MeanRelErr float64  `json:"meanRelErr"`
	StdRelErr  float64  `json:"stdRelErr"`
	Valid      bool     `json:"valid"`
	Reasons    []string `json:"reasons,omitempty"`
}

// Validate compares a synthetic sample against a reference under the given
// criteria.
func Validate(name string, ref, syn []float64, c Criteria) (Result, error) {
	ks, err := KSStatistic(ref, syn)
	if err != nil {
		return Result{}, fmt.Errorf("validate %q: %w", name, err)
	}
	psi, err := PSI(ref, syn, c.Bins)
	if err != nil {
		return Result{}, fmt.Errorf("validate %q: %w", name, err)
	}
	refMean, refStd := Moments(ref)
	synMean, synStd := Moments(syn)
	res := Result{Name: name, KS: ks, PSI: psi}
	res.MeanRelErr = relErr(synMean, refMean)
	res.StdRelErr = relErr(synStd, refStd)

	if ks > c.MaxKS {
		res.Reasons = append(res.Reasons, fmt.Sprintf("KS %.3f > %.3f", ks, c.MaxKS))
	}
	if psi > c.MaxPSI {
		res.Reasons = append(res.Reasons, fmt.Sprintf("PSI %.3f > %.3f", psi, c.MaxPSI))
	}
	if res.MeanRelErr > c.MaxMeanRelErr {
		res.Reasons = append(res.Reasons, fmt.Sprintf("mean error %.1f%% > %.1f%%", 100*res.MeanRelErr, 100*c.MaxMeanRelErr))
	}
	if res.StdRelErr > c.MaxStdRelErr {
		res.Reasons = append(res.Reasons, fmt.Sprintf("std error %.1f%% > %.1f%%", 100*res.StdRelErr, 100*c.MaxStdRelErr))
	}
	res.Valid = len(res.Reasons) == 0
	return res, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// ToolchainReport aggregates per-sensor validity results into the Section
// III-D statement about the simulation toolchain as a whole.
type ToolchainReport struct {
	Results []Result `json:"results"`
	Valid   bool     `json:"valid"`
	Failed  []string `json:"failed,omitempty"`
}

// Aggregate combines results: the toolchain is valid iff every component is.
func Aggregate(results []Result) ToolchainReport {
	rep := ToolchainReport{Results: results, Valid: true}
	for _, r := range results {
		if !r.Valid {
			rep.Valid = false
			rep.Failed = append(rep.Failed, r.Name)
		}
	}
	sort.Strings(rep.Failed)
	return rep
}
