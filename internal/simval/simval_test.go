package simval

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func normalSample(r *rng.Rand, n int, mean, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Norm(mean, std)
	}
	return out
}

func TestKSIdenticalDistributions(t *testing.T) {
	r := rng.New(1)
	a := normalSample(r.Derive("a"), 2000, 0, 1)
	b := normalSample(r.Derive("b"), 2000, 0, 1)
	ks, err := KSStatistic(a, b)
	if err != nil {
		t.Fatalf("KS: %v", err)
	}
	if ks > 0.06 {
		t.Fatalf("KS = %.3f for identical distributions, want small", ks)
	}
}

func TestKSShiftedDistributions(t *testing.T) {
	r := rng.New(2)
	a := normalSample(r.Derive("a"), 2000, 0, 1)
	b := normalSample(r.Derive("b"), 2000, 2, 1)
	ks, err := KSStatistic(a, b)
	if err != nil {
		t.Fatalf("KS: %v", err)
	}
	if ks < 0.5 {
		t.Fatalf("KS = %.3f for 2-sigma shift, want large", ks)
	}
}

func TestKSSampleTooSmall(t *testing.T) {
	if _, err := KSStatistic([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrSampleTooSmall) {
		t.Fatalf("err = %v, want ErrSampleTooSmall", err)
	}
}

func TestKSBounds(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{10, 10, 10, 10}
	ks, err := KSStatistic(a, b)
	if err != nil {
		t.Fatalf("KS: %v", err)
	}
	if ks != 1 {
		t.Fatalf("disjoint samples KS = %v, want 1", ks)
	}
}

func TestPSIMatchedVsShifted(t *testing.T) {
	r := rng.New(3)
	ref := normalSample(r.Derive("ref"), 3000, 5, 2)
	matched := normalSample(r.Derive("m"), 3000, 5, 2)
	shifted := normalSample(r.Derive("s"), 3000, 9, 2)
	psiM, err := PSI(ref, matched, 20)
	if err != nil {
		t.Fatalf("PSI: %v", err)
	}
	psiS, err := PSI(ref, shifted, 20)
	if err != nil {
		t.Fatalf("PSI: %v", err)
	}
	if psiM > 0.1 {
		t.Fatalf("matched PSI = %.3f, want < 0.1", psiM)
	}
	if psiS < 0.25 {
		t.Fatalf("shifted PSI = %.3f, want > 0.25", psiS)
	}
}

func TestPSIInvalidBins(t *testing.T) {
	if _, err := PSI([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Fatal("want error for < 2 bins")
	}
}

func TestMoments(t *testing.T) {
	mean, std := Moments([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", std)
	}
	if m, s := Moments(nil); m != 0 || s != 0 {
		t.Fatal("empty sample moments should be zero")
	}
}

func TestValidateRepresentative(t *testing.T) {
	r := rng.New(4)
	ref := normalSample(r.Derive("ref"), 3000, 10, 3)
	syn := normalSample(r.Derive("syn"), 3000, 10, 3)
	res, err := Validate("lidar-range", ref, syn, DefaultCriteria())
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !res.Valid {
		t.Fatalf("matched synthetic flagged invalid: %v", res.Reasons)
	}
}

func TestValidateBiased(t *testing.T) {
	r := rng.New(5)
	ref := normalSample(r.Derive("ref"), 3000, 10, 3)
	biased := normalSample(r.Derive("b"), 3000, 14, 3)
	res, err := Validate("camera-confidence", ref, biased, DefaultCriteria())
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if res.Valid {
		t.Fatal("biased synthetic passed validation")
	}
	if len(res.Reasons) == 0 {
		t.Fatal("invalid result carries no reasons")
	}
}

func TestValidateDegenerate(t *testing.T) {
	r := rng.New(6)
	ref := normalSample(r.Derive("ref"), 3000, 10, 3)
	degenerate := make([]float64, 3000)
	for i := range degenerate {
		degenerate[i] = 10 // correct mean, zero variance
	}
	res, err := Validate("gnss-noise", ref, degenerate, DefaultCriteria())
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if res.Valid {
		t.Fatal("degenerate synthetic passed validation")
	}
}

func TestAggregate(t *testing.T) {
	rep := Aggregate([]Result{
		{Name: "a", Valid: true},
		{Name: "b", Valid: false},
		{Name: "c", Valid: true},
	})
	if rep.Valid {
		t.Fatal("toolchain valid despite failed component")
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != "b" {
		t.Fatalf("failed = %v", rep.Failed)
	}
	if !Aggregate([]Result{{Name: "a", Valid: true}}).Valid {
		t.Fatal("all-valid toolchain flagged invalid")
	}
}
