package pki

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("worksite-ca", rng.New(1))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func issue(t *testing.T, ca *CA, name string, role Role) Identity {
	t.Helper()
	id, err := ca.Issue(name, role, 0, 24*time.Hour)
	if err != nil {
		t.Fatalf("Issue(%s): %v", name, err)
	}
	return id
}

func TestIssueAndVerify(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "forwarder-1", RoleMachine)
	v := NewVerifier(ca.Cert(), nil)
	if err := v.Verify(fw.Cert, time.Hour); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyExpired(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "fw", RoleMachine)
	v := NewVerifier(ca.Cert(), nil)
	err := v.Verify(fw.Cert, 25*time.Hour)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestVerifyNotYetValid(t *testing.T) {
	ca := newTestCA(t)
	id, err := ca.Issue("fw", RoleMachine, time.Hour, 2*time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	v := NewVerifier(ca.Cert(), nil)
	if err := v.Verify(id.Cert, 0); !errors.Is(err, ErrNotYetValid) {
		t.Fatalf("err = %v, want ErrNotYetValid", err)
	}
}

func TestVerifyRevoked(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "fw", RoleMachine)
	ca.Revoke(fw.Cert.Serial)
	v := NewVerifier(ca.Cert(), ca.CRL())
	if err := v.Verify(fw.Cert, time.Hour); !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v, want ErrRevoked", err)
	}
}

func TestVerifyTamperedSignature(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "fw", RoleMachine)
	cert := fw.Cert
	cert.Subject = "impostor"
	v := NewVerifier(ca.Cert(), nil)
	if err := v.Verify(cert, time.Hour); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyWrongIssuer(t *testing.T) {
	ca := newTestCA(t)
	other, err := NewCA("rogue-ca", rng.New(2))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	rogue := issue(t, other, "fw", RoleMachine)
	v := NewVerifier(ca.Cert(), nil)
	if err := v.Verify(rogue.Cert, time.Hour); !errors.Is(err, ErrWrongIssuer) {
		t.Fatalf("err = %v, want ErrWrongIssuer", err)
	}
}

func TestVerifyForgedBySameNameCA(t *testing.T) {
	// A rogue CA that *claims* the trusted CA's name still fails, because the
	// signature does not verify under the anchor key.
	ca := newTestCA(t)
	rogue, err := NewCA("worksite-ca", rng.New(3))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	forged := issue(t, rogue, "fw", RoleMachine)
	v := NewVerifier(ca.Cert(), nil)
	if err := v.Verify(forged.Cert, time.Hour); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestRolePolicy(t *testing.T) {
	ca := newTestCA(t)
	drone := issue(t, ca, "drone-1", RoleDrone)
	v := NewVerifier(ca.Cert(), nil)
	v.AllowedRoles = map[Role]struct{}{RoleCoordinator: {}}
	if err := v.Verify(drone.Cert, time.Hour); !errors.Is(err, ErrRoleDenied) {
		t.Fatalf("err = %v, want ErrRoleDenied", err)
	}
	v.AllowedRoles = map[Role]struct{}{RoleDrone: {}}
	if err := v.Verify(drone.Cert, time.Hour); err != nil {
		t.Fatalf("Verify with allowed role: %v", err)
	}
}

func TestCannotIssueCARole(t *testing.T) {
	ca := newTestCA(t)
	if _, err := ca.Issue("evil", RoleCA, 0, time.Hour); err == nil {
		t.Fatal("want error issuing RoleCA")
	}
}

func TestEmptyValidityRejected(t *testing.T) {
	ca := newTestCA(t)
	if _, err := ca.Issue("fw", RoleMachine, time.Hour, time.Hour); err == nil {
		t.Fatal("want error for empty validity window")
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "fw", RoleMachine)
	msg := []byte("emergency stop")
	sig := fw.Sign(msg)
	if !VerifySignature(fw.Cert, msg, sig) {
		t.Fatal("signature round trip failed")
	}
	if VerifySignature(fw.Cert, []byte("go faster"), sig) {
		t.Fatal("signature verified for different message")
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "fw", RoleMachine)
	data, err := fw.Cert.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseCertificate(data)
	if err != nil {
		t.Fatalf("ParseCertificate: %v", err)
	}
	v := NewVerifier(ca.Cert(), nil)
	if err := v.Verify(back, time.Hour); err != nil {
		t.Fatalf("Verify after round trip: %v", err)
	}
	if back.Fingerprint() != fw.Cert.Fingerprint() {
		t.Fatal("fingerprint changed across marshal round trip")
	}
}

func TestSerialsUnique(t *testing.T) {
	ca := newTestCA(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 20; i++ {
		id := issue(t, ca, "m", RoleMachine)
		if seen[id.Cert.Serial] {
			t.Fatalf("duplicate serial %d", id.Cert.Serial)
		}
		seen[id.Cert.Serial] = true
	}
}

func TestCRLSnapshotIsolated(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "fw", RoleMachine)
	crl := ca.CRL()
	ca.Revoke(fw.Cert.Serial)
	if _, ok := crl[fw.Cert.Serial]; ok {
		t.Fatal("CRL snapshot mutated by later revocation")
	}
}

func TestPropertySignatureBindsMessage(t *testing.T) {
	ca := newTestCA(t)
	fw := issue(t, ca, "fw", RoleMachine)
	f := func(msg []byte, flipByte uint8, flipPos uint16) bool {
		sig := fw.Sign(msg)
		if !VerifySignature(fw.Cert, msg, sig) {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		mutated := append([]byte(nil), msg...)
		pos := int(flipPos) % len(mutated)
		mutated[pos] ^= flipByte | 1 // guarantee at least one bit flips
		return !VerifySignature(fw.Cert, mutated, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
