// Package pki implements the worksite public-key infrastructure.
//
// Chattopadhyay & Lam (cited in Section IV-C) emphasise a Certificate
// Authority issuing certificates to every component communicating with a
// cyber-physical system so that untrusted components cannot initiate attacks.
// This package provides that CA for the forestry worksite: Ed25519 identities,
// a compact certificate profile (a real deployment would carry the same fields
// in X.509 or IEEE 1609.2), revocation via CRL, and role-based issuance so a
// drone certificate cannot impersonate the coordinator.
//
// Validity is expressed in virtual simulation time (duration since site
// commissioning), keeping runs deterministic.
package pki

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Role restricts what a certificate's subject may do on the worksite.
type Role int

// Worksite roles.
const (
	RoleCA Role = iota + 1
	RoleCoordinator
	RoleMachine
	RoleDrone
	RoleSensor
	RoleOperator
)

// String returns a short role label.
func (r Role) String() string {
	switch r {
	case RoleCA:
		return "ca"
	case RoleCoordinator:
		return "coordinator"
	case RoleMachine:
		return "machine"
	case RoleDrone:
		return "drone"
	case RoleSensor:
		return "sensor"
	case RoleOperator:
		return "operator"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Verification errors, matchable with errors.Is.
var (
	ErrBadSignature = errors.New("certificate signature invalid")
	ErrExpired      = errors.New("certificate expired")
	ErrNotYetValid  = errors.New("certificate not yet valid")
	ErrRevoked      = errors.New("certificate revoked")
	ErrWrongIssuer  = errors.New("certificate issued by a different CA")
	ErrRoleDenied   = errors.New("certificate role not permitted here")
)

// Certificate binds a subject name and role to an Ed25519 public key, signed
// by the worksite CA.
type Certificate struct {
	Serial    uint64            `json:"serial"`
	Subject   string            `json:"subject"`
	Role      Role              `json:"role"`
	PublicKey ed25519.PublicKey `json:"publicKey"`
	Issuer    string            `json:"issuer"`
	NotBefore time.Duration     `json:"notBeforeNs"` // virtual time since commissioning
	NotAfter  time.Duration     `json:"notAfterNs"`
	Signature []byte            `json:"signature"`
}

// tbs returns the deterministic to-be-signed encoding of the certificate.
//
//worksim:hotpath
func (c Certificate) tbs() []byte {
	return c.appendTBS(make([]byte, 0, 128)) //worksim:allow single pre-sized buffer per encoding; reuse appendTBS directly to amortise it away
}

// appendTBS appends the to-be-signed encoding to dst and returns the grown
// slice, so callers with a scratch buffer encode without allocating.
//
//worksim:hotpath
func (c Certificate) appendTBS(dst []byte) []byte {
	buf := dst
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], c.Serial)
	buf = append(buf, u64[:]...)
	buf = append(buf, []byte(c.Subject)...)
	buf = append(buf, 0)
	binary.BigEndian.PutUint64(u64[:], uint64(c.Role))
	buf = append(buf, u64[:]...)
	buf = append(buf, c.PublicKey...)
	buf = append(buf, []byte(c.Issuer)...)
	buf = append(buf, 0)
	binary.BigEndian.PutUint64(u64[:], uint64(c.NotBefore))
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(c.NotAfter))
	buf = append(buf, u64[:]...)
	return buf
}

// Fingerprint returns the SHA-256 digest of the to-be-signed encoding,
// suitable as a stable identifier in logs and assurance evidence.
//
//worksim:hotpath
func (c Certificate) Fingerprint() [32]byte { return sha256.Sum256(c.tbs()) }

// Marshal serialises the certificate to JSON.
func (c Certificate) Marshal() ([]byte, error) { return json.Marshal(c) }

// ParseCertificate deserialises a certificate from JSON.
func ParseCertificate(data []byte) (Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return Certificate{}, fmt.Errorf("parse certificate: %w", err)
	}
	return c, nil
}

// Identity is a certificate plus its private key.
type Identity struct {
	Cert Certificate
	priv ed25519.PrivateKey
}

// Sign signs msg with the identity's private key.
//
//worksim:hotpath
func (id Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// PublicKey returns the identity's public key.
func (id Identity) PublicKey() ed25519.PublicKey { return id.Cert.PublicKey }

// CA is the worksite certificate authority.
type CA struct {
	ident      Identity
	randSrc    io.Reader
	nextSerial uint64
	revoked    map[uint64]struct{}
}

// NewCA creates a CA named name. randSrc supplies key material; pass nil for
// crypto/rand (production) or a deterministic reader (reproducible tests).
func NewCA(name string, randSrc io.Reader) (*CA, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(randSrc)
	if err != nil {
		return nil, fmt.Errorf("new ca: generate key: %w", err)
	}
	ca := &CA{
		randSrc:    randSrc,
		nextSerial: 1,
		revoked:    make(map[uint64]struct{}),
	}
	cert := Certificate{
		Serial:    ca.nextSerial,
		Subject:   name,
		Role:      RoleCA,
		PublicKey: pub,
		Issuer:    name,
		NotBefore: 0,
		NotAfter:  100 * 365 * 24 * time.Hour,
	}
	cert.Signature = ed25519.Sign(priv, cert.tbs())
	ca.ident = Identity{Cert: cert, priv: priv}
	ca.nextSerial++
	return ca, nil
}

// Cert returns the CA's self-signed certificate (the worksite trust anchor).
func (ca *CA) Cert() Certificate { return ca.ident.Cert }

// Issue generates a fresh key pair and certificate for subject with the given
// role and validity window, returning the complete identity.
func (ca *CA) Issue(subject string, role Role, notBefore, notAfter time.Duration) (Identity, error) {
	if role == RoleCA {
		return Identity{}, fmt.Errorf("issue %q: cannot issue CA role", subject)
	}
	if notAfter <= notBefore {
		return Identity{}, fmt.Errorf("issue %q: empty validity window", subject)
	}
	pub, priv, err := ed25519.GenerateKey(ca.randSrc)
	if err != nil {
		return Identity{}, fmt.Errorf("issue %q: generate key: %w", subject, err)
	}
	cert := Certificate{
		Serial:    ca.nextSerial,
		Subject:   subject,
		Role:      role,
		PublicKey: pub,
		Issuer:    ca.ident.Cert.Subject,
		NotBefore: notBefore,
		NotAfter:  notAfter,
	}
	ca.nextSerial++
	cert.Signature = ed25519.Sign(ca.ident.priv, cert.tbs())
	return Identity{Cert: cert, priv: priv}, nil
}

// Revoke adds the serial to the CA's revocation list.
func (ca *CA) Revoke(serial uint64) { ca.revoked[serial] = struct{}{} }

// CRL returns the current revocation list as a lookup set.
func (ca *CA) CRL() map[uint64]struct{} {
	out := make(map[uint64]struct{}, len(ca.revoked))
	for s := range ca.revoked {
		out[s] = struct{}{}
	}
	return out
}

// Verifier validates certificates against a trust anchor and CRL snapshot.
// Distributing the Verifier (rather than the CA) to worksite actors mirrors
// real deployments: machines hold the root cert and a CRL, not the CA key.
type Verifier struct {
	anchor Certificate
	crl    map[uint64]struct{}
	// AllowedRoles, when non-empty, restricts which roles verify successfully.
	AllowedRoles map[Role]struct{}

	// tbsScratch is the reusable to-be-signed encoding buffer for Verify.
	// Verifiers are not safe for concurrent Verify calls (they never were:
	// UpdateCRL already races with Verify); each handshake runner owns or
	// serialises its verifier.
	tbsScratch []byte
}

// NewVerifier builds a verifier for the given trust anchor. crl may be nil.
func NewVerifier(anchor Certificate, crl map[uint64]struct{}) *Verifier {
	return &Verifier{anchor: anchor, crl: crl}
}

// UpdateCRL replaces the verifier's revocation snapshot.
func (v *Verifier) UpdateCRL(crl map[uint64]struct{}) { v.crl = crl }

// Verify checks cert at virtual time now. It returns nil if the certificate
// chains to the anchor, is within validity, not revoked, and (if role policy
// is set) has an allowed role.
//
//worksim:hotpath
func (v *Verifier) Verify(cert Certificate, now time.Duration) error {
	if cert.Issuer != v.anchor.Subject {
		return fmt.Errorf("verify %q: issuer %q: %w", cert.Subject, cert.Issuer, ErrWrongIssuer) //worksim:allow cold rejection path, runs only for untrusted peers
	}
	v.tbsScratch = cert.appendTBS(v.tbsScratch[:0])
	if !ed25519.Verify(v.anchor.PublicKey, v.tbsScratch, cert.Signature) {
		return fmt.Errorf("verify %q: %w", cert.Subject, ErrBadSignature) //worksim:allow cold rejection path, runs only for forged certificates
	}
	if now < cert.NotBefore {
		return fmt.Errorf("verify %q: %w", cert.Subject, ErrNotYetValid) //worksim:allow cold rejection path, runs only for out-of-window certificates
	}
	if now > cert.NotAfter {
		return fmt.Errorf("verify %q: %w", cert.Subject, ErrExpired) //worksim:allow cold rejection path, runs only for out-of-window certificates
	}
	if v.crl != nil {
		if _, revoked := v.crl[cert.Serial]; revoked {
			return fmt.Errorf("verify %q (serial %d): %w", cert.Subject, cert.Serial, ErrRevoked) //worksim:allow cold rejection path, runs only for revoked certificates
		}
	}
	if len(v.AllowedRoles) > 0 {
		if _, ok := v.AllowedRoles[cert.Role]; !ok {
			return fmt.Errorf("verify %q: role %s: %w", cert.Subject, cert.Role, ErrRoleDenied) //worksim:allow cold rejection path, runs only for role-policy violations
		}
	}
	return nil
}

// VerifySignature checks that sig is a valid signature by cert's key over msg.
//
//worksim:hotpath
func VerifySignature(cert Certificate, msg, sig []byte) bool {
	return ed25519.Verify(cert.PublicKey, msg, sig)
}
