// Package serve is the simulation-as-a-service layer behind the worksimd
// daemon: a JSON/REST front on the simulation engine (stdlib net/http only)
// with asynchronous run and sweep jobs, live Server-Sent-Event streaming of
// the typed event feed, static API-key authentication, per-key token-bucket
// rate limiting, a concurrent-job quota, structured request logging and
// graceful drain.
//
// The package deliberately reuses the engine's existing seams instead of
// inventing new ones: a submitted spec goes through the same
// scenario.Parse/Get → scenario.Build pipeline the worksim façade uses, so a
// daemon run's report JSON is byte-identical to an in-process
// worksim.Open(...).Run at the same (spec, profile, seed, horizon); the SSE
// payload is exactly the `worksite-sim -trace` JSON-lines encoding
// (internal/tracefmt); and sweeps fan out on the campaign engine's bounded
// pool with its cancellation semantics.
//
// Lifecycle: POST /v1/runs registers a job and returns immediately with an
// ID; the run advances on its own goroutine, feeding a bounded in-memory
// event ring that any number of SSE consumers replay at their own pace
// (slow consumers lose evicted events, they never stall the tick loop).
// DELETE cancels through the run's context — cancellation lands between
// control ticks, like every other context in the repo. On drain the server
// stops accepting work, waits out in-flight jobs up to a deadline, then
// cancels the stragglers and exits cleanly.
//
// This package reads the wall clock (rate limiting, request logs, drain
// deadlines) — serving infrastructure, never simulation state: the
// simulated runs it hosts stay byte-reproducible.
package serve

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultRatePerSec is the per-key request refill rate.
	DefaultRatePerSec = 20.0
	// DefaultBurst is the per-key token-bucket capacity.
	DefaultBurst = 40
	// DefaultMaxConcurrentJobs bounds simultaneously active run+sweep jobs.
	DefaultMaxConcurrentJobs = 8
	// DefaultEventBuffer is the per-run SSE replay ring capacity, in events.
	DefaultEventBuffer = 4096
	// DefaultDrainTimeout bounds how long drain waits for in-flight jobs
	// before cancelling them.
	DefaultDrainTimeout = 15 * time.Second
	// DefaultSeed and DefaultHorizon mirror the worksim façade defaults so
	// a daemon run and a worksim.Open run agree without options.
	DefaultSeed    int64 = 42
	DefaultHorizon       = 10 * time.Minute
	// maxRequestBody bounds request bodies (a scenario spec is ~1 KiB).
	maxRequestBody = 1 << 20
)

// Config configures a Server. The zero value is serveable: no auth (every
// request accepted), default rate limits, quotas and buffers.
type Config struct {
	// Version is reported by GET /v1/version (the worksim façade version).
	Version string
	// APIKeys is the static key set. Empty disables authentication;
	// otherwise every request (except healthz/version) must present a key
	// via `Authorization: Bearer <key>` or `X-API-Key`.
	APIKeys []string
	// RatePerSec and Burst parameterise the per-key token bucket
	// (anonymous requests share one bucket). RatePerSec < 0 disables rate
	// limiting.
	RatePerSec float64
	Burst      int
	// MaxConcurrentJobs caps simultaneously active run+sweep jobs;
	// submissions beyond it are rejected with 429. < 0 disables the quota.
	MaxConcurrentJobs int
	// EventBuffer is the per-run SSE replay ring capacity in events. Slow
	// consumers that fall more than EventBuffer events behind lose the
	// evicted prefix (flagged with an SSE comment) instead of stalling the
	// simulation.
	EventBuffer int
	// DrainTimeout bounds how long Serve waits for in-flight jobs after
	// its context fires before cancelling them.
	DrainTimeout time.Duration
	// CacheDir, when non-empty, roots a content-addressed result cache
	// shared by every sweep the daemon runs: completed (scenario, profile,
	// seed) runs are stored there and repeated sweeps are served from disk,
	// with per-sweep cached-run counts reported in progress. Empty disables
	// caching.
	CacheDir string
	// Logger receives structured request and job-lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
	// Now supplies wall-clock time for rate limiting and request timing;
	// nil uses time.Now. Injectable so tests can steer the token buckets.
	Now func() time.Time
}

// Server hosts the REST API over the simulation engine. Create one with
// New, mount Handler on any mux, or run ListenAndServe/Serve for the full
// lifecycle including graceful drain.
type Server struct {
	cfg  Config
	log  *slog.Logger
	now  func() time.Time
	auth *authenticator

	runs   *registry[*runJob]
	sweeps *registry[*sweepJob]

	jobs     jobGroup
	active   atomic.Int64
	draining atomic.Bool

	handler http.Handler
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.RatePerSec == 0 {
		cfg.RatePerSec = DefaultRatePerSec
	}
	if cfg.Burst == 0 {
		cfg.Burst = DefaultBurst
	}
	if cfg.MaxConcurrentJobs == 0 {
		cfg.MaxConcurrentJobs = DefaultMaxConcurrentJobs
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = DefaultEventBuffer
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	if cfg.Now == nil {
		// Serving infrastructure reads the wall clock; simulation state
		// never does.
		cfg.Now = time.Now
	}
	s := &Server{
		cfg:    cfg,
		log:    cfg.Logger,
		now:    cfg.Now,
		auth:   newAuthenticator(cfg.APIKeys, cfg.RatePerSec, cfg.Burst, cfg.Now),
		runs:   newRegistry[*runJob]("r"),
		sweeps: newRegistry[*sweepJob]("w"),
	}
	s.handler = s.routes()
	return s
}

// routes assembles the API surface behind the auth, rate-limit and logging
// middleware.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancelRun)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	return s.logging(s.authenticate(mux))
}

// Handler returns the server's HTTP handler (auth + rate limiting + logging
// included), for callers that own the http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// Draining reports whether the server has stopped accepting new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// ActiveJobs returns the number of currently active (pending or running)
// run and sweep jobs.
func (s *Server) ActiveJobs() int { return int(s.active.Load()) }

// Serve runs the HTTP server on ln until ctx fires, then drains: it stops
// accepting connections and new submissions, waits up to DrainTimeout for
// in-flight jobs to finish, cancels the stragglers, and returns once every
// job goroutine and connection has wound down. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	httpSrv := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		// Listener failure before any drain was requested.
		return err
	case <-ctx.Done():
	}
	return s.drain(httpSrv)
}

// ListenAndServe binds addr and calls Serve. It reports the bound address
// through onListen (when non-nil) before serving, so callers using ":0" can
// learn the chosen port.
func (s *Server) ListenAndServe(ctx context.Context, addr string, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return s.Serve(ctx, ln)
}

// drain executes the graceful-shutdown sequence described on Serve.
func (s *Server) drain(httpSrv *http.Server) error {
	s.draining.Store(true)
	timeout := s.cfg.DrainTimeout
	s.log.Info("drain: stopped accepting new work",
		"activeJobs", s.active.Load(), "timeout", timeout.String())

	// Close the listener and start winding connections down; SSE streams
	// end as their jobs finish below. The shutdown context outlives the
	// job deadline so handlers of freshly-cancelled jobs can flush.
	shCtx, cancelSh := context.WithTimeout(context.Background(), 2*timeout)
	defer cancelSh()
	shErr := make(chan error, 1)
	go func() { shErr <- httpSrv.Shutdown(shCtx) }()

	done := make(chan struct{})
	go func() { s.jobs.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.log.Warn("drain: deadline reached, cancelling in-flight jobs",
			"activeJobs", s.active.Load())
		s.cancelAllJobs()
		<-done
	}
	err := <-shErr
	s.log.Info("drain: complete", "err", errString(err))
	return err
}

// cancelAllJobs fires every registered job's context. Finished jobs ignore
// it; active ones stop between control ticks.
func (s *Server) cancelAllJobs() {
	for _, j := range s.runs.all() {
		j.cancel()
	}
	for _, j := range s.sweeps.all() {
		j.cancel()
	}
}

// acquireJobSlot reserves quota for one job, or reports the violated limit.
func (s *Server) acquireJobSlot() *apiError {
	if s.draining.Load() {
		return &apiError{Status: http.StatusServiceUnavailable, Code: "draining",
			Message: "server is draining and no longer accepts new work"}
	}
	if max := s.cfg.MaxConcurrentJobs; max > 0 && s.active.Load() >= int64(max) {
		return &apiError{Status: http.StatusTooManyRequests, Code: "quota_exceeded",
			Message: "max concurrent jobs reached; retry after an active run or sweep finishes"}
	}
	s.active.Add(1)
	return nil
}

// releaseJobSlot returns a reserved slot once the job goroutine ends.
func (s *Server) releaseJobSlot() { s.active.Add(-1) }

// jobGroup is a WaitGroup the drain path can Wait on repeatedly.
type jobGroup struct{ wg atomic.Int64 }

func (g *jobGroup) Add(n int64) { g.wg.Add(n) }

// Wait spins until every registered job goroutine has exited. Jobs observe
// cancelled contexts between control ticks, so the wait is short-lived.
func (g *jobGroup) Wait() {
	for g.wg.Load() > 0 {
		time.Sleep(5 * time.Millisecond)
	}
}

// discardHandler is a slog.Handler that drops everything (slog.DiscardHandler
// arrives in go1.24; the module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
