package serve

import (
	"net/http"

	"repro/internal/scenario"
)

// scenarioInfo is one catalog entry of GET /v1/scenarios.
type scenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Attacks     int    `json:"attacks"`
	// HorizonNs is the scenario's declared horizon, 0 when it defers to
	// the run request.
	HorizonNs int64 `json:"horizonNs,omitempty"`
}

// handleScenarios is GET /v1/scenarios: the named catalog, sorted, plus the
// profile axis — everything a client needs to compose a run request.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	names := scenario.List()
	infos := make([]scenarioInfo, 0, len(names))
	for _, name := range names {
		spec, err := scenario.Get(name)
		if err != nil {
			writeError(w, &apiError{Status: http.StatusInternalServerError,
				Code: "catalog", Message: err.Error()})
			return
		}
		infos = append(infos, scenarioInfo{
			Name:        name,
			Description: spec.Description,
			Attacks:     len(spec.Attacks),
			HorizonNs:   int64(spec.Horizon),
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Scenarios []scenarioInfo `json:"scenarios"`
		Profiles  []string       `json:"profiles"`
		Attacks   []string       `json:"attacks"`
	}{infos, scenario.Profiles(), scenario.AttackNames()})
}

// handleHealthz is GET /v1/healthz (unauthenticated): liveness plus drain
// visibility for load balancers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status     string `json:"status"`
		Draining   bool   `json:"draining"`
		ActiveJobs int    `json:"activeJobs"`
	}{status, s.draining.Load(), s.ActiveJobs()})
}

// handleVersion is GET /v1/version (unauthenticated).
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Version string `json:"version"`
	}{s.cfg.Version})
}
