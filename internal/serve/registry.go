package serve

import (
	"fmt"
	"sort"
	"sync"
)

// State is the lifecycle state of an asynchronous job.
type State string

// Job lifecycle: pending → running → done | failed | cancelled.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// registry is the in-memory job table behind /v1/runs and /v1/sweeps: IDs
// are dense and ordered ("r-000001", "r-000002", ...) so listings are
// deterministic and correlate trivially with request logs.
type registry[T any] struct {
	prefix string

	mu   sync.Mutex
	next int
	jobs map[string]T
	ids  []string // insertion (= ID) order
}

func newRegistry[T any](prefix string) *registry[T] {
	return &registry[T]{prefix: prefix, jobs: make(map[string]T)}
}

// add allocates the next ID and registers the job make builds for it.
func (r *registry[T]) add(make func(id string) T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	id := fmt.Sprintf("%s-%06d", r.prefix, r.next)
	j := make(id)
	r.jobs[id] = j
	r.ids = append(r.ids, id)
	return j
}

// get looks a job up by ID.
func (r *registry[T]) get(id string) (T, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// all returns every job in ID order.
func (r *registry[T]) all() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := append([]string(nil), r.ids...)
	sort.Strings(ids)
	out := make([]T, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.jobs[id])
	}
	return out
}
