package serve

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// EnvAPIKeys is the environment variable worksimd reads keys from when no
// key file is given: a comma-separated list.
const EnvAPIKeys = "WORKSIMD_API_KEYS"

// ParseAPIKeys parses a key file: one key per line, blank lines and
// #-comments ignored.
func ParseAPIKeys(data []byte) []string {
	var keys []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys = append(keys, line)
	}
	return keys
}

// LoadAPIKeysFile reads and parses a key file (see ParseAPIKeys).
func LoadAPIKeysFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("api keys: %w", err)
	}
	return ParseAPIKeys(data), nil
}

// APIKeysFromEnv returns the comma-separated key list of EnvAPIKeys, nil
// when unset.
func APIKeysFromEnv() []string {
	v := strings.TrimSpace(os.Getenv(EnvAPIKeys))
	if v == "" {
		return nil
	}
	var keys []string
	for _, k := range strings.Split(v, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}

// authenticator checks static API keys and meters per-key token buckets.
// With an empty key set authentication is disabled and all requests share
// one anonymous bucket.
type authenticator struct {
	keys  map[string]bool
	rate  float64 // tokens per second; <= 0 disables rate limiting
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one token bucket: tokens refill at rate/s up to burst, one
// token per request.
type bucket struct {
	tokens float64
	last   time.Time
}

func newAuthenticator(keys []string, rate float64, burst int, now func() time.Time) *authenticator {
	a := &authenticator{
		keys:    make(map[string]bool, len(keys)),
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*bucket),
	}
	for _, k := range keys {
		a.keys[k] = true
	}
	return a
}

// requestKey extracts the presented API key: `Authorization: Bearer <key>`
// wins, then `X-API-Key`.
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if k, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// keyID is the loggable fingerprint of a key — never the key itself.
func keyID(key string) string {
	if key == "" {
		return "anonymous"
	}
	sum := sha256.Sum256([]byte(key))
	return fmt.Sprintf("%x", sum[:4])
}

// check authorises one request and spends one rate-limit token. It returns
// the key fingerprint for logging, or the 401/429 to reject with.
func (a *authenticator) check(r *http.Request) (string, *apiError) {
	key := requestKey(r)
	if len(a.keys) > 0 {
		if key == "" {
			return "", &apiError{Status: http.StatusUnauthorized, Code: "unauthorized",
				Message: "missing API key; present it as `Authorization: Bearer <key>` or `X-API-Key`"}
		}
		if !a.keys[key] {
			return "", &apiError{Status: http.StatusUnauthorized, Code: "unauthorized",
				Message: "unknown API key"}
		}
	}
	id := keyID(key)
	if !a.allow(id) {
		return id, &apiError{Status: http.StatusTooManyRequests, Code: "rate_limited",
			Message: fmt.Sprintf("rate limit exceeded for key %s; retry shortly", id)}
	}
	return id, nil
}

// allow spends one token from the key's bucket, creating it full on first
// use.
func (a *authenticator) allow(id string) bool {
	if a.rate <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b, ok := a.buckets[id]
	if !ok {
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[id] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// authenticate gates every endpoint except the unauthenticated probes
// (healthz, version) behind key auth and rate limiting.
func (s *Server) authenticate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" || r.URL.Path == "/v1/version" {
			next.ServeHTTP(w, r)
			return
		}
		id, apiErr := s.auth.check(r)
		if id != "" {
			w.Header().Set(headerKeyID, id)
		}
		if apiErr != nil {
			if apiErr.Status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, apiErr)
			return
		}
		next.ServeHTTP(w, r)
	})
}
