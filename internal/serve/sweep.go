package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// sweepRequest is the POST /v1/sweeps body: the scenario × profile × seed
// cross-product the campaign engine fans out over its bounded pool.
type sweepRequest struct {
	// Scenarios are catalog names; empty (or ["all"]) selects the whole
	// catalog.
	Scenarios []string `json:"scenarios,omitempty"`
	// Profiles are named defence selections; empty selects every profile.
	Profiles []string `json:"profiles,omitempty"`
	// Seeds is the per-cell seed range; a zero count defaults to one run
	// at seed 42.
	Seeds campaign.SeedRange `json:"seeds"`
	// DurationNs is the simulated duration per run (0 = 10 minutes).
	DurationNs int64 `json:"durationNs,omitempty"`
	// Parallel bounds the worker pool (0 = 1).
	Parallel int `json:"parallel,omitempty"`
	// SampleNs, when positive, records a downsampled per-seed timeseries.
	SampleNs int64 `json:"sampleNs,omitempty"`
	// EarlyStop names an early-stop predicate (collision, unsafe,
	// safe-stop, first-alert).
	EarlyStop string `json:"earlyStop,omitempty"`
}

// sweepProgress is the progress counter of a sweep: simulation runs
// (seeds × cells) completed out of the total, and — when the daemon runs
// with a result cache — how many of the completed runs were served from it.
type sweepProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cached counts completed runs served from the content-addressed result
	// cache instead of simulated. Always ≤ Done; omitted when the daemon has
	// no cache configured.
	Cached int `json:"cached,omitempty"`
}

// sweepStatus is the wire representation of a sweep job.
type sweepStatus struct {
	ID         string             `json:"id"`
	State      State              `json:"state"`
	Scenarios  []string           `json:"scenarios"`
	Profiles   []string           `json:"profiles"`
	Seeds      campaign.SeedRange `json:"seeds"`
	DurationNs int64              `json:"durationNs"`
	Progress   sweepProgress      `json:"progress"`
	Error      string             `json:"error,omitempty"`
	// Result is the sweep's JSON export (the schema locked by the façade
	// golden file), present once State is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// sweepJob is one asynchronous sweep.
type sweepJob struct {
	id        string
	scenarios []string
	profiles  []string
	seeds     campaign.SeedRange
	duration  time.Duration
	total     int
	done      atomic.Int64
	cached    atomic.Int64
	cancel    context.CancelFunc

	mu     sync.Mutex
	state  State
	errMsg string
	result json.RawMessage
}

func (j *sweepJob) status(withResult bool) sweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := sweepStatus{
		ID:         j.id,
		State:      j.state,
		Scenarios:  j.scenarios,
		Profiles:   j.profiles,
		Seeds:      j.seeds,
		DurationNs: int64(j.duration),
		Progress: sweepProgress{
			Done:   int(j.done.Load()),
			Total:  j.total,
			Cached: int(j.cached.Load()),
		},
		Error: j.errMsg,
	}
	if withResult {
		st.Result = j.result
	}
	return st
}

func (j *sweepJob) setState(s State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		j.state = s
	}
}

func (j *sweepJob) finish(state State, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
}

// handleSubmitSweep is POST /v1/sweeps: validate the axes synchronously,
// register the job, and fan it out on the campaign pool asynchronously.
func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if apiErr := decodeBody(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	scenarios := req.Scenarios
	if len(scenarios) == 0 || (len(scenarios) == 1 && scenarios[0] == "all") {
		scenarios = scenario.List()
	}
	for _, name := range scenarios {
		if _, err := scenario.Get(name); err != nil {
			writeError(w, &apiError{Status: http.StatusUnprocessableEntity,
				Code: "unknown_scenario", Field: "scenarios", Message: err.Error()})
			return
		}
	}
	profiles := req.Profiles
	if len(profiles) == 0 {
		profiles = scenario.Profiles()
	}
	for _, name := range profiles {
		if _, err := scenario.ResolveProfile(name); err != nil {
			writeError(w, &apiError{Status: http.StatusUnprocessableEntity,
				Code: "unknown_profile", Field: "profiles", Message: err.Error()})
			return
		}
	}
	earlyStop, err := campaign.EarlyStopByName(req.EarlyStop)
	if err != nil {
		writeError(w, &apiError{Status: http.StatusUnprocessableEntity,
			Code: "unknown_early_stop", Field: "earlyStop", Message: err.Error()})
		return
	}
	seeds := req.Seeds
	if seeds.Count <= 0 {
		seeds = campaign.SeedRange{Base: DefaultSeed, Count: 1}
	}
	duration := time.Duration(req.DurationNs)
	if duration < 0 {
		writeError(w, &apiError{Status: http.StatusUnprocessableEntity,
			Code: "invalid_spec", Field: "durationNs", Message: "duration must be positive"})
		return
	}
	if duration == 0 {
		duration = campaign.DefaultSweepDuration
	}
	if apiErr := s.acquireJobSlot(); apiErr != nil {
		writeError(w, apiErr)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := s.sweeps.add(func(id string) *sweepJob {
		return &sweepJob{
			id:        id,
			scenarios: scenarios,
			profiles:  profiles,
			seeds:     seeds,
			duration:  duration,
			total:     len(scenarios) * len(profiles) * seeds.Count,
			cancel:    cancel,
			state:     StatePending,
		}
	})
	opts := campaign.SweepOptions{
		Scenarios:     scenarios,
		Profiles:      profiles,
		Seeds:         seeds,
		Parallel:      req.Parallel,
		Duration:      duration,
		SampleEvery:   time.Duration(req.SampleNs),
		EarlyStop:     earlyStop,
		EarlyStopName: req.EarlyStop,
		CacheDir:      s.cfg.CacheDir,
		OnRunDone:     func() { j.done.Add(1) },
		OnRunCached:   func() { j.cached.Add(1) },
	}

	s.jobs.Add(1)
	go s.executeSweep(ctx, j, opts)

	s.log.Info("sweep submitted", "sweepID", j.id,
		"cells", len(scenarios)*len(profiles), "seeds", seeds.Count, "duration", duration.String())
	w.Header().Set(headerJobID, j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// executeSweep drives one sweep to completion on its own goroutine.
func (s *Server) executeSweep(ctx context.Context, j *sweepJob, opts campaign.SweepOptions) {
	defer s.jobs.Add(-1)
	defer s.releaseJobSlot()
	j.setState(StateRunning)
	res, err := campaign.Sweep(ctx, opts)
	switch {
	case err == nil:
		b, jerr := res.JSON()
		if jerr != nil {
			j.finish(StateFailed, nil, "encode result: "+jerr.Error())
		} else {
			j.finish(StateDone, b, "")
		}
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, nil, "")
	default:
		j.finish(StateFailed, nil, err.Error())
	}
	st := j.status(false)
	s.log.Info("sweep finished", "sweepID", j.id, "state", string(st.State),
		"done", st.Progress.Done, "total", st.Progress.Total,
		"cached", st.Progress.Cached, "err", st.Error)
}

// handleGetSweep is GET /v1/sweeps/{id}: status, progress and — once done —
// the sweep result.
func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sweeps.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("sweep", r.PathValue("id")))
		return
	}
	w.Header().Set(headerJobID, j.id)
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleListSweeps is GET /v1/sweeps: every sweep in ID order, results
// elided.
func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	jobs := s.sweeps.all()
	out := make([]sweepStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	writeJSON(w, http.StatusOK, struct {
		Sweeps []sweepStatus `json:"sweeps"`
	}{out})
}

// handleCancelSweep is DELETE /v1/sweeps/{id}: fire the sweep's context;
// the pool stops claiming seeds and in-flight runs stop between ticks.
func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sweeps.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("sweep", r.PathValue("id")))
		return
	}
	j.cancel()
	s.log.Info("sweep cancel requested", "sweepID", j.id)
	w.Header().Set(headerJobID, j.id)
	writeJSON(w, http.StatusOK, j.status(false))
}
