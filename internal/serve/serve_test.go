package serve

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestEventLogSequencesAndReplay: appends are 1-based dense sequences; a
// cursor replays exactly the entries beyond it.
func TestEventLogSequencesAndReplay(t *testing.T) {
	l := newEventLog(10)
	for i := 0; i < 5; i++ {
		l.append("tick", []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	if got := l.total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	batch, evicted, closed, _ := l.since(0)
	if evicted != 0 || closed {
		t.Fatalf("since(0): evicted=%d closed=%v, want 0/false", evicted, closed)
	}
	if len(batch) != 5 {
		t.Fatalf("since(0) returned %d entries, want 5", len(batch))
	}
	for i, e := range batch {
		if e.seq != uint64(i+1) {
			t.Fatalf("entry %d seq = %d, want %d", i, e.seq, i+1)
		}
	}
	batch, _, _, _ = l.since(3)
	if len(batch) != 2 || batch[0].seq != 4 || batch[1].seq != 5 {
		t.Fatalf("since(3) = %+v, want seqs [4 5]", batch)
	}
	if batch, _, _, _ = l.since(5); len(batch) != 0 {
		t.Fatalf("since(5) = %+v, want empty", batch)
	}
}

// TestEventLogEviction: the ring keeps the newest cap entries; a stale
// cursor reports the gap and resumes at the oldest retained event.
func TestEventLogEviction(t *testing.T) {
	l := newEventLog(3)
	for i := 1; i <= 8; i++ {
		l.append("tick", []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	// Retained: seqs 6, 7, 8. A from-the-start cursor lost 5 events.
	batch, evicted, _, _ := l.since(0)
	if evicted != 5 {
		t.Fatalf("since(0) evicted = %d, want 5", evicted)
	}
	if len(batch) != 3 || batch[0].seq != 6 || batch[2].seq != 8 {
		t.Fatalf("since(0) batch seqs = %+v, want [6 7 8]", batch)
	}
	// A cursor inside the retained window sees no gap.
	batch, evicted, _, _ = l.since(6)
	if evicted != 0 || len(batch) != 2 || batch[0].seq != 7 {
		t.Fatalf("since(6) = %+v evicted=%d, want seqs [7 8] gap 0", batch, evicted)
	}
}

// TestEventLogNotifyAndClose: waiting consumers wake on append and on close;
// appends after close are dropped.
func TestEventLogNotifyAndClose(t *testing.T) {
	l := newEventLog(10)
	_, _, closed, notify := l.since(0)
	if closed {
		t.Fatal("fresh log reports closed")
	}
	select {
	case <-notify:
		t.Fatal("notify fired before any append")
	default:
	}
	l.append("tick", []byte(`{}`))
	select {
	case <-notify:
	case <-time.After(time.Second):
		t.Fatal("append did not wake the waiting consumer")
	}
	batch, _, closed, notify := l.since(0)
	if len(batch) != 1 || closed {
		t.Fatalf("after append: batch=%d closed=%v, want 1/false", len(batch), closed)
	}
	l.close()
	select {
	case <-notify:
	case <-time.After(time.Second):
		t.Fatal("close did not wake the waiting consumer")
	}
	l.append("tick", []byte(`{}`)) // dropped
	if _, _, closed, _ := l.since(1); !closed {
		t.Fatal("closed log does not report closed")
	}
	if got := l.total(); got != 1 {
		t.Fatalf("append after close changed total to %d, want 1", got)
	}
}

// TestParseAPIKeys: one key per line, comments and blanks ignored.
func TestParseAPIKeys(t *testing.T) {
	keys := ParseAPIKeys([]byte("# ops keys\nalpha\n\n  beta  \n# trailing\n"))
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "beta" {
		t.Fatalf("ParseAPIKeys = %v, want [alpha beta]", keys)
	}
	if keys := ParseAPIKeys(nil); keys != nil {
		t.Fatalf("ParseAPIKeys(nil) = %v, want nil", keys)
	}
}

// fakeClock is an injectable wall clock for the token-bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestTokenBucketRefill: a key gets burst requests instantly, is rejected
// once drained, and refills at the configured rate.
func TestTokenBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAuthenticator(nil, 2, 4, clk.now) // 2 req/s, burst 4
	for i := 0; i < 4; i++ {
		if !a.allow("k") {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	if a.allow("k") {
		t.Fatal("request beyond burst allowed")
	}
	clk.advance(500 * time.Millisecond) // refills one token at 2/s
	if !a.allow("k") {
		t.Fatal("request after refill rejected")
	}
	if a.allow("k") {
		t.Fatal("second request after a one-token refill allowed")
	}
	clk.advance(time.Hour) // refill caps at burst
	for i := 0; i < 4; i++ {
		if !a.allow("k") {
			t.Fatalf("request %d after long idle rejected", i)
		}
	}
	if a.allow("k") {
		t.Fatal("burst cap not enforced after long idle")
	}
}

// TestTokenBucketPerKey: buckets are independent per key fingerprint.
func TestTokenBucketPerKey(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAuthenticator(nil, 1, 1, clk.now)
	if !a.allow("a") {
		t.Fatal("first request on key a rejected")
	}
	if a.allow("a") {
		t.Fatal("drained key a still allowed")
	}
	if !a.allow("b") {
		t.Fatal("key b throttled by key a's bucket")
	}
}

// TestAuthenticatorCheck: key-set enforcement and the loggable fingerprint.
func TestAuthenticatorCheck(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAuthenticator([]string{"secret"}, -1, 0, clk.now)

	req := func(header, value string) *http.Request {
		r, err := http.NewRequest(http.MethodGet, "/v1/runs", nil)
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			r.Header.Set(header, value)
		}
		return r
	}

	if _, apiErr := a.check(req("", "")); apiErr == nil || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("missing key: %+v, want 401", apiErr)
	}
	if _, apiErr := a.check(req("X-API-Key", "wrong")); apiErr == nil || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("unknown key: %+v, want 401", apiErr)
	}
	id, apiErr := a.check(req("Authorization", "Bearer secret"))
	if apiErr != nil {
		t.Fatalf("valid bearer key rejected: %+v", apiErr)
	}
	if id == "" || id == "secret" || id == "anonymous" {
		t.Fatalf("keyID = %q, want a fingerprint that is neither empty nor the key", id)
	}
	if id2, _ := a.check(req("X-API-Key", "secret")); id2 != id {
		t.Fatalf("X-API-Key fingerprint %q differs from bearer fingerprint %q", id2, id)
	}
}

// TestRegistryIDsAndOrder: dense prefixed IDs, lookup, and sorted listing.
func TestRegistryIDsAndOrder(t *testing.T) {
	reg := newRegistry[*runJob]("r")
	a := reg.add(func(id string) *runJob { return &runJob{id: id} })
	b := reg.add(func(id string) *runJob { return &runJob{id: id} })
	if a.id != "r-000001" || b.id != "r-000002" {
		t.Fatalf("ids = %q, %q, want r-000001, r-000002", a.id, b.id)
	}
	if got, ok := reg.get("r-000002"); !ok || got != b {
		t.Fatalf("get(r-000002) = %v, %v", got, ok)
	}
	if _, ok := reg.get("r-999999"); ok {
		t.Fatal("get of an unknown id succeeded")
	}
	all := reg.all()
	if len(all) != 2 || all[0] != a || all[1] != b {
		t.Fatalf("all() not in ID order: %v", all)
	}
}
