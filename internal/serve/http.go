package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/scenario"
)

// apiError is the uniform error envelope of the API:
//
//	{"error": {"code": "invalid_spec", "message": "...", "field": "attacks[2].name"}}
//
// Status picks the HTTP status; Field points at the offending request field
// for validation failures (422).
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (e *apiError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s: field %s: %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// badRequest builds a 400 for malformed requests.
func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request",
		Message: fmt.Sprintf(format, args...)}
}

// unprocessable builds a 422 for well-formed requests the engine rejects.
func unprocessable(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusUnprocessableEntity, Code: "invalid_spec",
		Message: fmt.Sprintf(format, args...)}
}

// notFound builds a 404 for unknown job IDs.
func notFound(kind, id string) *apiError {
	return &apiError{Status: http.StatusNotFound, Code: "not_found",
		Message: fmt.Sprintf("no %s with id %q", kind, id)}
}

// specError maps a spec/build rejection to 422, carrying the field name when
// the failure is a typed scenario.SpecError.
func specError(err error) *apiError {
	var se *scenario.SpecError
	if errors.As(err, &se) {
		return &apiError{Status: http.StatusUnprocessableEntity, Code: "invalid_spec",
			Message: se.Reason, Field: se.Field}
	}
	return unprocessable("%v", err)
}

// writeJSON writes v as a compact JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, struct {
		Error *apiError `json:"error"`
	}{e})
}

// decodeBody decodes a bounded JSON request body into v, rejecting trailing
// garbage.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(v); err != nil {
		return badRequest("decode request body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON request body")
	}
	return nil
}

// statusRecorder captures the response status for request logging while
// passing Flush through, which SSE streaming depends on.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logging emits one structured line per request: method, path, status,
// wall-clock duration, and the key fingerprint + job ID correlators the
// handlers annotate via request headers set during handling.
func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"durMs", s.now().Sub(start).Milliseconds(),
		}
		if key := rec.Header().Get(headerKeyID); key != "" {
			attrs = append(attrs, "key", key)
		}
		if id := rec.Header().Get(headerJobID); id != "" {
			attrs = append(attrs, "jobID", id)
		}
		s.log.Info("request", attrs...)
	})
}

// Correlation headers the middleware reads back out of the response: the
// auth layer stamps the key fingerprint, submit/get handlers stamp the job
// ID. Both double as useful response metadata for clients.
const (
	headerKeyID = "X-Worksimd-Key-Id"
	headerJobID = "X-Worksimd-Job-Id"
)
