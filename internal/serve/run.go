package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/tracefmt"
	"repro/internal/worksite"
)

// runRequest is the POST /v1/runs body. Exactly one of Scenario (a catalog
// name) or Spec (an inline scenario-spec document, same schema as
// `worksite-sim -scenario-file`) selects the scenario.
type runRequest struct {
	// Scenario names a catalog scenario.
	Scenario string `json:"scenario,omitempty"`
	// Spec is an inline JSON scenario spec; fields overlay the baseline.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Profile optionally overrides the scenario's security profile
	// ("unsecured" | "secured").
	Profile string `json:"profile,omitempty"`
	// Seed roots the run's random streams (default 42).
	Seed *int64 `json:"seed,omitempty"`
	// HorizonNs is the simulated duration in nanoseconds; 0 falls back to
	// the spec's declared horizon, then the 10-minute default.
	HorizonNs int64 `json:"horizonNs,omitempty"`
}

// runStatus is the wire representation of a run job.
type runStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Scenario string `json:"scenario"`
	Profile  string `json:"profile"`
	Seed     int64  `json:"seed"`
	// HorizonNs is the resolved simulated duration.
	HorizonNs int64 `json:"horizonNs"`
	// Events counts the events published to the SSE feed so far — the
	// run's progress signal.
	Events uint64 `json:"events"`
	// Error carries the failure reason of a failed run.
	Error string `json:"error,omitempty"`
	// Report is the final run report (byte-identical to an in-process
	// worksim run at the same spec/profile/seed/horizon), present once
	// State is "done".
	Report json.RawMessage `json:"report,omitempty"`
}

// runJob is one asynchronous simulation run.
type runJob struct {
	id       string
	scenario string
	profile  string
	seed     int64
	horizon  time.Duration
	log      *eventLog
	cancel   context.CancelFunc

	mu     sync.Mutex
	state  State
	errMsg string
	report json.RawMessage
}

// status snapshots the job for the wire.
func (j *runJob) status(withReport bool) runStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := runStatus{
		ID:        j.id,
		State:     j.state,
		Scenario:  j.scenario,
		Profile:   j.profile,
		Seed:      j.seed,
		HorizonNs: int64(j.horizon),
		Events:    j.log.total(),
		Error:     j.errMsg,
	}
	if withReport {
		st.Report = j.report
	}
	return st
}

// statusJSON renders the status (without the report) for the terminal SSE
// frame.
func (j *runJob) statusJSON() []byte {
	b, err := json.Marshal(j.status(false))
	if err != nil {
		return []byte(`{}`)
	}
	return b
}

// setState moves the job to a new state; terminal states stick.
func (j *runJob) setState(s State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		j.state = s
	}
}

// finish records the terminal outcome.
func (j *runJob) finish(state State, report json.RawMessage, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.report = report
	j.errMsg = errMsg
}

// resolveRunSpec turns a run request into a validated scenario spec plus
// the resolved profile label, applying the same precedence the worksim
// façade uses: explicit profile option over the spec's own profile.
func resolveRunSpec(req *runRequest) (scenario.Spec, string, *apiError) {
	var (
		spec scenario.Spec
		err  error
	)
	switch {
	case req.Scenario != "" && len(req.Spec) > 0:
		return spec, "", badRequest("scenario and spec are mutually exclusive; submit one of them")
	case req.Scenario != "":
		if spec, err = scenario.Get(req.Scenario); err != nil {
			return spec, "", &apiError{Status: http.StatusUnprocessableEntity, Code: "unknown_scenario",
				Field: "scenario", Message: err.Error()}
		}
	case len(req.Spec) > 0:
		if spec, err = scenario.Parse(req.Spec); err != nil {
			return spec, "", specError(err)
		}
	default:
		return spec, "", badRequest("submit a catalog scenario name (scenario) or an inline spec (spec)")
	}
	profile := req.Profile
	if profile != "" {
		prof, err := scenario.ResolveProfile(profile)
		if err != nil {
			return spec, "", &apiError{Status: http.StatusUnprocessableEntity, Code: "unknown_profile",
				Field: "profile", Message: err.Error()}
		}
		spec = spec.WithProfile(prof)
	} else {
		profile = profileLabel(spec)
	}
	return spec, profile, nil
}

// profileLabel names the spec's own profile for status reporting.
func profileLabel(spec scenario.Spec) string {
	switch spec.Profile {
	case worksite.Unsecured():
		return "unsecured"
	case worksite.Secured():
		return "secured"
	default:
		return "custom"
	}
}

// handleSubmitRun is POST /v1/runs: validate, commission the session
// synchronously (so every rejection is a 4xx, not a failed job), register
// the job and run it on its own goroutine.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if apiErr := decodeBody(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	spec, profile, apiErr := resolveRunSpec(&req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	seed := DefaultSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	horizon := time.Duration(req.HorizonNs)
	if horizon <= 0 {
		if spec.Horizon > 0 {
			horizon = spec.Horizon
		} else {
			horizon = DefaultHorizon
		}
	}
	if apiErr := s.acquireJobSlot(); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	// Commission now: Build validates the compiled config, so an
	// unrunnable spec is rejected with 422 before a job ever exists.
	sess, _, err := scenario.Build(spec, seed, horizon)
	if err != nil {
		s.releaseJobSlot()
		writeError(w, specError(err))
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := s.runs.add(func(id string) *runJob {
		return &runJob{
			id:       id,
			scenario: spec.Name,
			profile:  profile,
			seed:     seed,
			horizon:  horizon,
			log:      newEventLog(s.cfg.EventBuffer),
			cancel:   cancel,
			state:    StatePending,
		}
	})
	// The event feed is the -trace encoding verbatim: one JSON line per
	// event, framed into the replay ring for SSE consumers.
	sess.Subscribe(tracefmt.Observer(func(e worksite.Event) {
		line, err := tracefmt.Marshal(e)
		if err != nil {
			s.log.Error("run event encode", "runID", j.id, "err", err.Error())
			return
		}
		j.log.append(e.EventKind(), line)
	}))

	s.jobs.Add(1)
	go s.executeRun(ctx, j, sess)

	s.log.Info("run submitted", "runID", j.id,
		"scenario", spec.Name, "profile", profile, "seed", seed, "horizon", horizon.String())
	w.Header().Set(headerJobID, j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// executeRun drives one run to completion on its own goroutine.
func (s *Server) executeRun(ctx context.Context, j *runJob, sess *worksite.Session) {
	defer s.jobs.Add(-1)
	defer s.releaseJobSlot()
	defer j.log.close()
	j.setState(StateRunning)
	err := sess.RunFor(ctx, j.horizon)
	switch {
	case err == nil:
		rep, merr := json.Marshal(sess.Report())
		if merr != nil {
			j.finish(StateFailed, nil, "encode report: "+merr.Error())
		} else {
			j.finish(StateDone, rep, "")
		}
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, nil, "")
	default:
		j.finish(StateFailed, nil, err.Error())
	}
	st := j.status(false)
	s.log.Info("run finished", "runID", j.id, "state", string(st.State),
		"events", st.Events, "err", st.Error)
}

// handleGetRun is GET /v1/runs/{id}: full status including the final report
// once done.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("run", r.PathValue("id")))
		return
	}
	w.Header().Set(headerJobID, j.id)
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleListRuns is GET /v1/runs: every run in ID order, reports elided.
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	jobs := s.runs.all()
	out := make([]runStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	writeJSON(w, http.StatusOK, struct {
		Runs []runStatus `json:"runs"`
	}{out})
}

// handleCancelRun is DELETE /v1/runs/{id}: fire the run's context. The run
// stops between control ticks; cancelling a finished run is a no-op.
func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("run", r.PathValue("id")))
		return
	}
	j.cancel()
	s.log.Info("run cancel requested", "runID", j.id)
	w.Header().Set(headerJobID, j.id)
	writeJSON(w, http.StatusOK, j.status(false))
}
