package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// eventLog is the bounded replay ring between one run's event stream and
// its SSE consumers. The simulation-side producer (an observer inside the
// tick loop) only ever appends under a short critical section — it never
// blocks on consumers — while each consumer pages through the ring at its
// own pace. A consumer that falls more than the ring capacity behind loses
// the evicted prefix; sequence numbers (1-based, monotonically increasing)
// make the gap visible and let a reconnecting client resume exactly where
// it left off via Last-Event-ID.
type eventLog struct {
	cap int

	mu      sync.Mutex
	entries []sseEntry
	next    uint64 // sequence number of the next event appended
	closed  bool
	notify  chan struct{}
}

// sseEntry is one encoded event: the tracefmt JSON line plus its SSE
// framing metadata.
type sseEntry struct {
	seq  uint64
	kind string
	data []byte
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{cap: capacity, next: 1, notify: make(chan struct{})}
}

// append stores one encoded event, evicting the oldest beyond capacity, and
// wakes waiting consumers.
func (l *eventLog) append(kind string, data []byte) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.entries = append(l.entries, sseEntry{seq: l.next, kind: kind, data: data})
	l.next++
	if len(l.entries) > l.cap {
		// Drop the oldest; copy to keep the backing array from pinning
		// evicted payloads.
		l.entries = append(l.entries[:0], l.entries[1:]...)
	}
	notify := l.notify
	l.notify = make(chan struct{})
	l.mu.Unlock()
	close(notify)
}

// close marks the stream complete and wakes consumers a final time.
func (l *eventLog) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	notify := l.notify
	l.notify = make(chan struct{})
	l.mu.Unlock()
	close(notify)
}

// total returns how many events have been published so far.
func (l *eventLog) total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// since returns the retained entries with sequence numbers beyond after,
// how many requested events were already evicted, whether the stream is
// complete, and a channel closed on the next append/close. The returned
// slice is a snapshot safe to read without the lock.
func (l *eventLog) since(after uint64) (batch []sseEntry, evicted uint64, closed bool, notify chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.entries); n > 0 {
		first := l.entries[0].seq
		if after+1 < first {
			evicted = first - after - 1
			after = first - 1
		}
		// Entries are seq-ordered and dense: index straight to the cursor.
		if idx := int(after+1) - int(first); idx < n {
			batch = append([]sseEntry(nil), l.entries[idx:]...)
		}
	} else if l.next > 0 && after+1 < l.next {
		// Everything the client asked to resume from is long gone.
		evicted = l.next - 1 - after
	}
	return batch, evicted, l.closed, l.notify
}

// handleRunEvents streams one run's event feed as Server-Sent Events:
//
//	id: <seq>
//	event: <kind>                      // tick, alert, attack-phase, ...
//	data: {"event": KIND, "data": {...}}   // the -trace JSON line, verbatim
//
// The stream replays from the beginning (or from Last-Event-ID / ?after= on
// reconnect), then follows the live feed until the run reaches a terminal
// state, and closes with a final `event: end` carrying the run status. A
// replay cursor that points at evicted events resumes at the oldest
// retained event after an SSE comment stating the gap size.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("run", r.PathValue("id")))
		return
	}
	w.Header().Set(headerJobID, j.id)
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &apiError{Status: http.StatusInternalServerError,
			Code: "unsupported", Message: "response writer does not support streaming"})
		return
	}
	after := parseCursor(r)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		batch, evicted, closed, notify := j.log.since(after)
		if evicted > 0 {
			// SSE comment: invisible to EventSource handlers, explicit on
			// the wire. The client's cursor jumps over the evicted gap.
			if _, err := fmt.Fprintf(w, ": replay gap: %d event(s) evicted from the ring buffer\n\n", evicted); err != nil {
				return
			}
			after += evicted
		}
		for _, e := range batch {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.seq, e.kind, e.data); err != nil {
				return
			}
			after = e.seq
		}
		if len(batch) > 0 || evicted > 0 {
			flusher.Flush()
		}
		if closed {
			// Terminal frame so clients need not poll for the final state.
			_, _ = fmt.Fprintf(w, "id: %d\nevent: end\ndata: %s\n\n", after+1, j.statusJSON())
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-notify:
		}
	}
}

// parseCursor resolves the replay cursor: the SSE-standard Last-Event-ID
// header, or an ?after= query parameter for curl-driven resumption. Zero
// replays from the beginning.
func parseCursor(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		v = q
	}
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}
