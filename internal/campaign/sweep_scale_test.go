package campaign_test

// Scale-out tests: sharding, the content-addressed result cache and the
// checkpoint journal must never change a byte of sweep output — only where
// the bytes come from. The byte-identity comparisons here are the contract
// the CLI's -shard/-merge/-cache/-checkpoint modes stand on, including a
// genuine process kill (re-exec helper) between seeds.

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/shard"
	"repro/internal/version"
)

// scaleOpts is the shared small-but-nontrivial campaign every test in this
// file runs: 2 scenarios × 2 profiles × 4 seeds = 16 runs.
func scaleOpts() campaign.SweepOptions {
	return campaign.SweepOptions{
		Scenarios: []string{"baseline", "gnss-spoof"},
		Profiles:  []string{"unsecured", "secured"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 4},
		Parallel:  4,
		Duration:  2 * time.Minute,
	}
}

func sweepBytes(t *testing.T, opts campaign.SweepOptions) []byte {
	t.Helper()
	res, err := campaign.Sweep(context.Background(), opts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	return j
}

// TestShardMergeByteIdentity: running every shard in isolation and merging
// reproduces the single-process sweep byte for byte — through the typed API
// and through the serialized (CLI) surface.
func TestShardMergeByteIdentity(t *testing.T) {
	single := sweepBytes(t, scaleOpts())

	const shards = 3
	parts := make([]*campaign.SweepResult, shards)
	blobs := make([][]byte, shards)
	for i := 0; i < shards; i++ {
		opts := scaleOpts()
		opts.Shard = shard.Sel{Index: i, Count: shards}
		res, err := campaign.Sweep(context.Background(), opts)
		if err != nil {
			t.Fatalf("Sweep(shard %d): %v", i, err)
		}
		if res.Shard == nil || res.Shard.Index != i || res.Shard.Count != shards {
			t.Fatalf("shard %d result header = %+v", i, res.Shard)
		}
		if len(res.Cells) != 4 {
			t.Fatalf("shard %d reports %d cells, want all 4", i, len(res.Cells))
		}
		parts[i] = res
		if blobs[i], err = res.JSON(); err != nil {
			t.Fatalf("JSON(shard %d): %v", i, err)
		}
	}

	// Merge in a scrambled order: input order must not matter.
	merged, err := campaign.MergeSweeps([]*campaign.SweepResult{parts[2], parts[0], parts[1]})
	if err != nil {
		t.Fatalf("MergeSweeps: %v", err)
	}
	if merged.Shard != nil {
		t.Fatal("merged result still carries a shard header")
	}
	got, err := merged.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if string(got) != string(single) {
		t.Fatal("merged shard output differs from the single-process sweep")
	}

	_, fromBlobs, err := campaign.MergeSweepJSON(blobs)
	if err != nil {
		t.Fatalf("MergeSweepJSON: %v", err)
	}
	if string(fromBlobs) != string(single) {
		t.Fatal("MergeSweepJSON output differs from the single-process sweep")
	}

	// The shard partition actually split the work: no shard ran everything,
	// and together they ran each run exactly once.
	totalRuns := 0
	for _, p := range parts {
		runs := 0
		for _, c := range p.Cells {
			runs += len(c.Result.PerSeed)
		}
		if runs == 16 {
			t.Fatal("one shard owned every run; the partition did not split")
		}
		totalRuns += runs
	}
	if totalRuns != 16 {
		t.Fatalf("shards ran %d runs in total, want exactly 16", totalRuns)
	}
}

// TestWarmCacheByteIdentity: a second sweep over a warm cache executes
// nothing, serves every run from disk, and produces identical bytes.
func TestWarmCacheByteIdentity(t *testing.T) {
	dir := t.TempDir()
	plain := sweepBytes(t, scaleOpts())

	var cold campaign.SweepStats
	coldOpts := scaleOpts()
	coldOpts.CacheDir = dir
	coldOpts.Stats = &cold
	coldBytes := sweepBytes(t, coldOpts)
	cs := cold.View()
	if cs.Executed != 16 || cs.CacheHits != 0 || cs.CacheMisses != 16 {
		t.Fatalf("cold stats = %+v, want 16 executed / 16 misses", cs)
	}
	if string(coldBytes) != string(plain) {
		t.Fatal("cache-enabled sweep output differs from the plain sweep")
	}

	var warm campaign.SweepStats
	var cachedCalls atomic.Int64
	warmOpts := scaleOpts()
	warmOpts.CacheDir = dir
	warmOpts.Stats = &warm
	warmOpts.OnRunCached = func() { cachedCalls.Add(1) }
	warmBytes := sweepBytes(t, warmOpts)
	ws := warm.View()
	if ws.Executed != 0 || ws.CacheHits != 16 || ws.CacheMisses != 0 || ws.CacheCorrupt != 0 {
		t.Fatalf("warm stats = %+v, want every run served from cache", ws)
	}
	if cachedCalls.Load() != 16 {
		t.Fatalf("OnRunCached fired %d times, want 16", cachedCalls.Load())
	}
	if string(warmBytes) != string(coldBytes) {
		t.Fatal("warm-cache sweep output differs from the cold run")
	}
}

// TestCacheCorruptEntryRecomputed: damaging one cached entry costs exactly
// one recomputation — the corrupt entry is detected, evicted and recomputed,
// and output stays byte-identical.
func TestCacheCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	coldOpts := scaleOpts()
	coldOpts.CacheDir = dir
	coldBytes := sweepBytes(t, coldOpts)

	// Flip one bit near the end of one entry (inside the payload, where only
	// the checksum catches it).
	var entries []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".json") {
			entries = append(entries, path)
		}
		return nil
	})
	if len(entries) != 16 {
		t.Fatalf("cache holds %d entries, want 16", len(entries))
	}
	b, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-10] ^= 0x01
	if err := os.WriteFile(entries[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	var stats campaign.SweepStats
	opts := scaleOpts()
	opts.CacheDir = dir
	opts.Stats = &stats
	got := sweepBytes(t, opts)
	sv := stats.View()
	if sv.CacheCorrupt != 1 || sv.Executed != 1 || sv.CacheHits != 15 {
		t.Fatalf("stats after corruption = %+v, want 1 corrupt / 1 executed / 15 hits", sv)
	}
	if string(got) != string(coldBytes) {
		t.Fatal("output after corruption recovery differs from the cold run")
	}
}

// TestCacheKeyCoversRunShape: changing the simulated duration (or sampling,
// or the early-stop predicate) changes every run key, so a warm cache for
// one shape serves nothing for another.
func TestCacheKeyCoversRunShape(t *testing.T) {
	dir := t.TempDir()
	coldOpts := scaleOpts()
	coldOpts.CacheDir = dir
	_ = sweepBytes(t, coldOpts)

	var stats campaign.SweepStats
	longer := scaleOpts()
	longer.CacheDir = dir
	longer.Duration = 3 * time.Minute
	longer.Stats = &stats
	_ = sweepBytes(t, longer)
	sv := stats.View()
	if sv.CacheHits != 0 || sv.Executed != 16 {
		t.Fatalf("stats for changed duration = %+v, want 0 hits / 16 executed", sv)
	}
}

// TestUnnamedEarlyStopRejected: an opaque early-stop func cannot be content
// addressed, so enabling the cache or checkpoint without naming it is an
// error rather than a silently wrong key.
func TestUnnamedEarlyStopRejected(t *testing.T) {
	stop, err := campaign.EarlyStopByName("collision")
	if err != nil {
		t.Fatal(err)
	}
	for _, enable := range []func(*campaign.SweepOptions){
		func(o *campaign.SweepOptions) { o.CacheDir = t.TempDir() },
		func(o *campaign.SweepOptions) { o.CheckpointDir = t.TempDir() },
	} {
		opts := scaleOpts()
		opts.EarlyStop = stop // EarlyStopName deliberately empty
		enable(&opts)
		if _, err := campaign.Sweep(context.Background(), opts); err == nil {
			t.Fatal("Sweep accepted an unnamed EarlyStop with caching enabled")
		}
	}
}

// TestCheckpointResumeInProcess: cancel a checkpointed sweep mid-flight,
// re-run it, and the journaled runs are replayed instead of recomputed —
// with output byte-identical to an uninterrupted sweep.
func TestCheckpointResumeInProcess(t *testing.T) {
	plain := sweepBytes(t, scaleOpts())
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	first := scaleOpts()
	first.CheckpointDir = dir
	first.Parallel = 1
	first.OnRunDone = func() {
		if done.Add(1) == 3 {
			cancel()
		}
	}
	if _, err := campaign.Sweep(ctx, first); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}
	if done.Load() < 3 {
		t.Fatalf("only %d runs completed before cancel", done.Load())
	}

	var stats campaign.SweepStats
	second := scaleOpts()
	second.CheckpointDir = dir
	second.Stats = &stats
	got := sweepBytes(t, second)
	sv := stats.View()
	if sv.Resumed < 3 {
		t.Fatalf("resume replayed %d runs, want at least the 3 journaled ones", sv.Resumed)
	}
	if sv.Resumed+sv.Executed != 16 {
		t.Fatalf("stats = %+v: resumed+executed != 16", sv)
	}
	if string(got) != string(plain) {
		t.Fatal("resumed sweep output differs from an uninterrupted sweep")
	}

	// A third run replays everything and executes nothing.
	var all campaign.SweepStats
	third := scaleOpts()
	third.CheckpointDir = dir
	third.Stats = &all
	_ = sweepBytes(t, third)
	if av := all.View(); av.Resumed != 16 || av.Executed != 0 {
		t.Fatalf("fully-journaled rerun stats = %+v, want 16 resumed / 0 executed", av)
	}
}

// TestCheckpointRejectsForeignJournal: a journal written by a campaign with
// different parameters must refuse to resume, not corrupt the output.
func TestCheckpointRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	first := scaleOpts()
	first.CheckpointDir = dir
	_ = sweepBytes(t, first)

	changed := scaleOpts()
	changed.CheckpointDir = dir
	changed.Duration = 3 * time.Minute
	_, err := campaign.Sweep(context.Background(), changed)
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign journal resume returned %v, want a different-campaign error", err)
	}
}

// TestVersionStamp: sweep and per-cell results carry the engine version,
// and it leads the JSON export.
func TestVersionStamp(t *testing.T) {
	res, err := campaign.Sweep(context.Background(), campaign.SweepOptions{
		Scenarios: []string{"baseline"},
		Profiles:  []string{"unsecured"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 1},
		Duration:  2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if res.Version != version.Engine {
		t.Fatalf("SweepResult.Version = %q, want %q", res.Version, version.Engine)
	}
	for _, c := range res.Cells {
		if c.Result.Version != version.Engine {
			t.Fatalf("cell %s/%s Version = %q, want %q", c.Scenario, c.Profile, c.Result.Version, version.Engine)
		}
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(j), "{\n  \"version\": \""+version.Engine+"\"") {
		t.Fatalf("JSON export does not lead with the version stamp: %.60s", j)
	}
}

// TestMergeValidation: every way a shard set can be wrong is a loud error.
func TestMergeValidation(t *testing.T) {
	shardResult := func(i, n int) *campaign.SweepResult {
		opts := scaleOpts()
		opts.Shard = shard.Sel{Index: i, Count: n}
		res, err := campaign.Sweep(context.Background(), opts)
		if err != nil {
			t.Fatalf("Sweep(%d/%d): %v", i, n, err)
		}
		return res
	}
	s0, s1 := shardResult(0, 2), shardResult(1, 2)

	cases := []struct {
		name string
		in   []*campaign.SweepResult
		want string
	}{
		{"empty", nil, "no shard results"},
		{"missing shard", []*campaign.SweepResult{s0}, "got 1 result(s)"},
		{"duplicate shard", []*campaign.SweepResult{s0, s0}, "appears twice"},
		{"unsharded input", func() []*campaign.SweepResult {
			r := *s0
			r.Shard = nil
			return []*campaign.SweepResult{&r}
		}(), "no shard header"},
		{"version mismatch", func() []*campaign.SweepResult {
			r := *s1
			r.Version = "0.0.0"
			return []*campaign.SweepResult{s0, &r}
		}(), "version mismatch"},
		{"foreign seed", func() []*campaign.SweepResult {
			// Hand shard 1 a deep-copied cell whose first run claims a seed
			// shard 1 does not own (one of shard 0's).
			r := *s1
			r.Cells = append([]campaign.SweepCell(nil), s1.Cells...)
			for ci, c := range r.Cells {
				for _, run := range s0.Cells[ci].Result.PerSeed {
					cr := *c.Result
					cr.PerSeed = append(append([]campaign.SeedRun(nil), c.Result.PerSeed...), run)
					r.Cells[ci] = campaign.SweepCell{Scenario: c.Scenario, Profile: c.Profile, Result: &cr}
					return []*campaign.SweepResult{s0, &r}
				}
			}
			t.Fatal("shard 0 owns no runs to steal")
			return nil
		}(), "owned by shard"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := campaign.MergeSweeps(c.in)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("MergeSweeps = %v, want error containing %q", err, c.want)
			}
		})
	}
}

// --- genuine process-kill resume ---

const (
	helperEnv     = "CAMPAIGN_TEST_HELPER_KILL"
	helperCkptEnv = "CAMPAIGN_TEST_HELPER_CKPT"
	helperExit    = 57
)

// TestHelperKilledShardSweep is not a test: re-executed as a child process
// by TestProcessKillResume, it starts shard 0/2 of the standard campaign
// with a checkpoint journal and exits hard (os.Exit, no cleanup) after two
// completed runs — a real mid-campaign crash.
func TestHelperKilledShardSweep(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process for TestProcessKillResume")
	}
	opts := scaleOpts()
	opts.Shard = shard.Sel{Index: 0, Count: 2}
	opts.CheckpointDir = os.Getenv(helperCkptEnv)
	opts.Parallel = 1
	var done atomic.Int64
	opts.OnRunDone = func() {
		if done.Add(1) == 2 {
			os.Exit(helperExit)
		}
	}
	_, _ = campaign.Sweep(context.Background(), opts)
	// Reaching here means shard 0 owned fewer than 2 runs and the kill never
	// fired; the parent checks the exit code and will fail.
	os.Exit(0)
}

// TestProcessKillResume: kill a sharded, checkpointed campaign between seeds
// in a real child process, resume it, run the sibling shard, merge — and the
// result is byte-identical to a single uninterrupted sweep, with the
// journaled runs demonstrably not recomputed.
func TestProcessKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	// The kill fires after 2 completed runs, so shard 0 must own at least 3
	// for the crash to interrupt anything. That is a property of the stable
	// hash over this fixed campaign, so check it explicitly.
	owned := 0
	for _, sc := range []string{"baseline", "gnss-spoof"} {
		for _, pr := range []string{"unsecured", "secured"} {
			for seed := int64(1); seed <= 4; seed++ {
				if shard.Assign(shard.Key{Scenario: sc, Profile: pr, Seed: seed}, 2) == 0 {
					owned++
				}
			}
		}
	}
	if owned < 3 {
		t.Fatalf("shard 0 owns only %d of 16 runs; pick a different fixture", owned)
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperKilledShardSweep$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"=1", helperCkptEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != helperExit {
		t.Fatalf("helper process: err=%v (want exit code %d)\noutput:\n%s", err, helperExit, out)
	}

	// Resume shard 0 from the journal the killed process left behind.
	var stats campaign.SweepStats
	resume := scaleOpts()
	resume.Shard = shard.Sel{Index: 0, Count: 2}
	resume.CheckpointDir = dir
	resume.Stats = &stats
	res0, err := campaign.Sweep(context.Background(), resume)
	if err != nil {
		t.Fatalf("resume shard 0: %v", err)
	}
	sv := stats.View()
	if sv.Resumed < 2 {
		t.Fatalf("resume replayed %d runs, want at least the 2 the killed process journaled", sv.Resumed)
	}
	if sv.Resumed+sv.Executed != int64(owned) {
		t.Fatalf("resume stats = %+v, want resumed+executed == %d", sv, owned)
	}

	other := scaleOpts()
	other.Shard = shard.Sel{Index: 1, Count: 2}
	res1, err := campaign.Sweep(context.Background(), other)
	if err != nil {
		t.Fatalf("shard 1: %v", err)
	}

	merged, err := campaign.MergeSweeps([]*campaign.SweepResult{res0, res1})
	if err != nil {
		t.Fatalf("MergeSweeps: %v", err)
	}
	got, err := merged.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if single := sweepBytes(t, scaleOpts()); string(got) != string(single) {
		t.Fatal("killed-and-resumed campaign output differs from an uninterrupted sweep")
	}
}
