package campaign

// Checkpointing: a per-shard JSON-lines journal of completed runs, so a
// killed campaign resumes instead of restarting. The first line is a header
// binding the journal to one campaign (engine version, duration, seed range,
// sampling, early-stop name, shard selector and axes); every later line is
// one completed (scenario, profile, seed) run with its stored record. Lines
// are appended as runs complete, so a process killed between seeds leaves a
// journal whose valid prefix is exactly the finished work; on resume the
// journal is replayed (a torn tail from the kill is detected and dropped),
// rewritten clean, and every journaled run is served from memory instead of
// recomputed.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/shard"
)

// checkpointHeader binds a journal to the campaign that writes it. Two
// campaigns with different parameters may never share a journal: replaying
// run records into a differently-shaped sweep would corrupt its output.
type checkpointHeader struct {
	Kind       string    `json:"kind"`
	Version    string    `json:"version"`
	DurationNs int64     `json:"durationNs"`
	Seeds      SeedRange `json:"seeds"`
	SampleNs   int64     `json:"sampleNs"`
	EarlyStop  string    `json:"earlyStop"`
	Shard      ShardInfo `json:"shard"`
	Scenarios  []string  `json:"scenarios"`
	Profiles   []string  `json:"profiles"`
}

// checkpointKind guards against replaying an unrelated JSON-lines file.
const checkpointKind = "worksim-sweep-checkpoint"

// checkpointRecord is one journaled run.
type checkpointRecord struct {
	Scenario string    `json:"scenario"`
	Profile  string    `json:"profile"`
	Seed     int64     `json:"seed"`
	Run      runRecord `json:"run"`
}

// checkpoint is an open journal: the replayed completed-run watermark plus
// an append handle for newly completed runs. Safe for concurrent use by the
// sweep pool.
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	done map[shard.Key]runRecord
}

// checkpointFile names the journal of one shard inside the checkpoint
// directory; the unsharded case is shard 0 of 1, so sharded and unsharded
// campaigns can share a directory without colliding.
func checkpointFile(dir string, sel shard.Sel) string {
	count := sel.Count
	if count < 1 {
		count = 1
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.jsonl", sel.Index, count))
}

// openCheckpoint opens (creating if absent) the journal for one shard,
// replays any completed runs recorded by a previous process, rewrites the
// file clean (dropping a torn tail), and leaves it open for appends.
func openCheckpoint(dir string, sel shard.Sel, hdr checkpointHeader) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	path := checkpointFile(dir, sel)
	ck := &checkpoint{done: make(map[shard.Key]runRecord)}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh campaign.
	case err != nil:
		return nil, fmt.Errorf("checkpoint: %w", err)
	default:
		if err := ck.replay(path, data, hdr); err != nil {
			return nil, err
		}
	}

	// Rewrite the journal from the replayed state so appends always land on
	// a clean line boundary, then reopen for appending. The rewrite goes
	// through a temp file + rename, so a crash here loses nothing.
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var buf bytes.Buffer
	hb, err := json.Marshal(hdr)
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("checkpoint: marshal header: %w", err)
	}
	buf.Write(hb)
	buf.WriteByte('\n')
	keys := make([]shard.Key, 0, len(ck.done))
	for k := range ck.done {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.Profile != b.Profile {
			return a.Profile < b.Profile
		}
		return a.Seed < b.Seed
	})
	for _, k := range keys {
		rb, err := json.Marshal(checkpointRecord{Scenario: k.Scenario, Profile: k.Profile, Seed: k.Seed, Run: ck.done[k]})
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, fmt.Errorf("checkpoint: marshal record: %w", err)
		}
		buf.Write(rb)
		buf.WriteByte('\n')
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("checkpoint: rewrite journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	ck.f = f
	return ck, nil
}

// replay loads an existing journal: the header must match this campaign
// exactly, then records accumulate until the end of the file or the first
// undecodable line (the torn tail a killed process leaves; everything after
// it is discarded and recomputed).
func (ck *checkpoint) replay(path string, data []byte, want checkpointHeader) error {
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 {
		return fmt.Errorf("checkpoint %s: empty journal", path)
	}
	var got checkpointHeader
	if err := json.Unmarshal(lines[0], &got); err != nil || got.Kind != checkpointKind {
		return fmt.Errorf("checkpoint %s: not a sweep checkpoint journal", path)
	}
	gotB, _ := json.Marshal(got)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(gotB, wantB) {
		return fmt.Errorf("checkpoint %s: journal was written by a different campaign (journal %s, this campaign %s); resume with identical parameters or use a fresh -checkpoint dir",
			path, gotB, wantB)
	}
	for _, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r checkpointRecord
		if err := json.Unmarshal(line, &r); err != nil {
			// Torn tail: the process died mid-append. The prefix up to here
			// is trustworthy; the rest is recomputed.
			break
		}
		ck.done[shard.Key{Scenario: r.Scenario, Profile: r.Profile, Seed: r.Seed}] = r.Run
	}
	return nil
}

// lookup returns the journaled record for a run key, if the run already
// completed in a previous (or this) process.
func (ck *checkpoint) lookup(k shard.Key) (runRecord, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	rec, ok := ck.done[k]
	return rec, ok
}

// record journals one completed run: one appended JSON line, flushed by the
// unbuffered write itself, so the watermark survives a kill immediately
// after the run finishes.
func (ck *checkpoint) record(k shard.Key, rec runRecord) error {
	line, err := json.Marshal(checkpointRecord{Scenario: k.Scenario, Profile: k.Profile, Seed: k.Seed, Run: rec})
	if err != nil {
		return fmt.Errorf("checkpoint: marshal record: %w", err)
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if _, dup := ck.done[k]; dup {
		return nil
	}
	if _, err := ck.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("checkpoint: append record: %w", err)
	}
	ck.done[k] = rec
	return nil
}

// close releases the journal handle.
func (ck *checkpoint) close() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.f.Close()
}
