package campaign

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRegistryRegisterAndSelect(t *testing.T) {
	r := NewRegistry()
	mk := func(id string) Experiment {
		return Experiment{ID: id, Run: func(context.Context, Params) (Outcome, error) { return Outcome{}, nil }}
	}
	for _, id := range []string{"b", "a", "c"} {
		if err := r.Register(mk(id)); err != nil {
			t.Fatalf("register %q: %v", id, err)
		}
	}
	if err := r.Register(mk("a")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(mk("")); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := r.Register(mk("UPPER")); err == nil {
		t.Fatal("uppercase ID accepted")
	}
	if err := r.Register(Experiment{ID: "norun"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	// Registration order is preserved.
	ids := r.IDs()
	if len(ids) != 3 || ids[0] != "b" || ids[1] != "a" || ids[2] != "c" {
		t.Fatalf("IDs = %v", ids)
	}
	sel, err := r.Select([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].ID != "c" || sel[1].ID != "a" {
		t.Fatalf("Select order broken: %v", sel)
	}
	all, err := r.Select([]string{"all"})
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(all) = %d exps, err %v", len(all), err)
	}
	if _, err := r.Select([]string{"nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown ID not rejected: %v", err)
	}
}

func TestSeedRange(t *testing.T) {
	s := SeedRange{Base: 5, Count: 3}
	got := s.Seeds()
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Fatalf("Seeds() = %v", got)
	}
	if (SeedRange{Base: 1, Count: 0}).Seeds() != nil && len((SeedRange{Count: 0}).Seeds()) != 0 {
		t.Fatal("empty range not empty")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	d := Params{Duration: time.Minute, Trials: 10, Scenarios: 4}
	p := Params{Seed: 9}.WithDefaults(d)
	if p.Seed != 9 || p.Duration != time.Minute || p.Trials != 10 || p.Scenarios != 4 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	p = Params{Seed: 0, Duration: time.Second, Trials: 1, Scenarios: 1}.WithDefaults(d)
	if p.Seed != 0 || p.Duration != time.Second || p.Trials != 1 || p.Scenarios != 1 {
		t.Fatalf("explicit params overridden: %+v", p)
	}
}

// seedEcho is a synthetic experiment whose metric is a pure function of the
// seed, convenient for checking aggregation math exactly.
func seedEcho() Experiment {
	return Experiment{
		ID:      "echo",
		Section: "test",
		Run: func(_ context.Context, p Params) (Outcome, error) {
			return Outcome{Metrics: map[string]float64{"seed": float64(p.Seed)}}, nil
		},
	}
}

func TestRunAggregation(t *testing.T) {
	res, err := Run(context.Background(), seedEcho(), Options{Seeds: SeedRange{Base: 1, Count: 4}, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSeed) != 4 {
		t.Fatalf("per-seed runs = %d", len(res.PerSeed))
	}
	for i, r := range res.PerSeed {
		if r.Seed != int64(1+i) {
			t.Fatalf("per-seed order broken: %v", res.PerSeed)
		}
	}
	if len(res.Aggregates) != 1 {
		t.Fatalf("aggregates = %v", res.Aggregates)
	}
	a := res.Aggregates[0]
	// seeds 1..4: mean 2.5, sample stddev sqrt(5/3), min 1, max 4.
	wantStd := math.Sqrt(5.0 / 3.0)
	if a.Metric != "seed" || a.N != 4 || a.Mean != 2.5 || a.Min != 1 || a.Max != 4 {
		t.Fatalf("aggregate = %+v", a)
	}
	if math.Abs(a.Stddev-wantStd) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", a.Stddev, wantStd)
	}
	half := 1.96 * wantStd / 2
	if math.Abs(a.CI95Lo-(2.5-half)) > 1e-12 || math.Abs(a.CI95Hi-(2.5+half)) > 1e-12 {
		t.Fatalf("CI = [%v, %v]", a.CI95Lo, a.CI95Hi)
	}
}

func TestRunSingleSeedCI(t *testing.T) {
	res, err := Run(context.Background(), seedEcho(), Options{Seeds: SeedRange{Base: 7, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregates[0]
	if a.Stddev != 0 || a.CI95Lo != a.Mean || a.CI95Hi != a.Mean {
		t.Fatalf("single-seed CI must collapse to the mean: %+v", a)
	}
}

func TestRunSeedIndependentCollapses(t *testing.T) {
	calls := 0
	exp := Experiment{
		ID:              "pure",
		SeedIndependent: true,
		Run: func(_ context.Context, p Params) (Outcome, error) {
			calls++
			return Outcome{Metrics: map[string]float64{"x": 7}}, nil
		},
	}
	res, err := Run(context.Background(), exp, Options{Seeds: SeedRange{Base: 3, Count: 8}, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("seed-independent experiment ran %d times, want 1", calls)
	}
	if len(res.PerSeed) != 1 || res.PerSeed[0].Seed != 3 {
		t.Fatalf("per-seed = %+v", res.PerSeed)
	}
	if res.Seeds.Count != 1 {
		t.Fatalf("recorded seed range not collapsed: %+v", res.Seeds)
	}
	if a := res.Aggregates[0]; a.N != 1 || a.Mean != 7 {
		t.Fatalf("aggregate = %+v", a)
	}
}

func TestRunEmptySeedRange(t *testing.T) {
	if _, err := Run(context.Background(), seedEcho(), Options{}); err == nil {
		t.Fatal("empty seed range accepted")
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := Experiment{ID: "boom", Run: func(_ context.Context, p Params) (Outcome, error) {
		if p.Seed == 3 {
			return Outcome{}, errSentinel
		}
		return Outcome{Metrics: map[string]float64{"x": 1}}, nil
	}}
	_, err := Run(context.Background(), boom, Options{Seeds: SeedRange{Base: 1, Count: 4}, Parallel: 4})
	if err == nil || !strings.Contains(err.Error(), "seed 3") {
		t.Fatalf("error not propagated with seed: %v", err)
	}
}

var errSentinel = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestResultTableAndJSONDeterministic(t *testing.T) {
	run := func(parallel int) *Result {
		res, err := Run(context.Background(), seedEcho(), Options{Seeds: SeedRange{Base: 1, Count: 6}, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(6)
	if a.Table().Render() != b.Table().Render() {
		t.Fatal("aggregate table depends on pool width")
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("JSON export depends on pool width")
	}
}
