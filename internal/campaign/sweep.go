package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/version"
	"repro/internal/worksite"
)

// SweepOptions configures a scenario sweep: the cross-product of named
// catalog scenarios × security profiles × seeds.
type SweepOptions struct {
	// Scenarios are catalog names. Empty (or the single element "all")
	// selects the whole catalog.
	Scenarios []string
	// Profiles are named defence selections (scenario.Profiles). Empty
	// selects every named profile — the paper's unsecured-vs-secured axis.
	Profiles []string
	// Seeds is the seed range each cell fans out over.
	Seeds SeedRange
	// Parallel bounds the per-cell worker pool.
	Parallel int
	// Duration is the simulated duration per run (0 = 10 minutes).
	Duration time.Duration
	// SampleEvery, when positive, records a downsampled per-seed timeseries
	// in every SeedRun: one TimePoint per SampleEvery of simulated time.
	// Sampling is a passive observer; it never changes run outcomes.
	SampleEvery time.Duration
	// EarlyStop, when non-nil, ends each run at the first control tick for
	// which it returns true (the run's report then covers the shortened
	// window and SeedRun.StoppedAt records the cut). Predicates must be
	// pure functions of the snapshot so runs stay deterministic; with
	// EarlyStop nil, sweep output is byte-identical to a sweep without
	// session instrumentation, across any Parallel width.
	EarlyStop func(worksite.TickSnapshot) bool
	// EarlyStopName names the EarlyStop predicate (EarlyStopByName) so it
	// can participate in cache and checkpoint keys. Required when EarlyStop
	// is non-nil and CacheDir or CheckpointDir is set: an opaque func has no
	// content address, so an unnamed predicate cannot be cached.
	EarlyStopName string
	// Shard, when enabled (Count > 1), restricts the sweep to the runs the
	// selected shard owns under the stable hash partition of internal/shard,
	// so the cube can run as independent processes. Every cell still appears
	// in the result (shard outputs carry the full cell order); cells whose
	// runs all hash elsewhere have empty per-seed slices. MergeSweeps
	// recombines a complete shard set into bytes identical to an unsharded
	// sweep.
	Shard shard.Sel
	// CacheDir, when non-empty, enables the content-addressed result cache
	// rooted there: every completed run is stored keyed on (canonical spec
	// hash, profile, seed, duration, sampling, early-stop name, engine
	// version), and runs whose key already has a verified entry are served
	// from disk instead of recomputed.
	CacheDir string
	// CheckpointDir, when non-empty, journals every completed run into a
	// per-shard JSON-lines file under the directory, and replays the journal
	// on start: a killed campaign re-run with identical options resumes at
	// its completed-run watermark instead of restarting from zero.
	CheckpointDir string
	// OnRunDone, when non-nil, is invoked once after every completed
	// (scenario, profile, seed) run — the progress seam async consumers
	// (the worksimd daemon) count seeds with. It is called from pool
	// worker goroutines and must be safe for concurrent use; it observes
	// progress only and must not influence results. Runs served from the
	// cache or checkpoint count as done.
	OnRunDone func()
	// OnRunCached, when non-nil, is invoked (after OnRunDone, from pool
	// goroutines) for every run served from the result cache.
	OnRunCached func()
	// Stats, when non-nil, receives the sweep's live execution counters:
	// how many runs were simulated fresh, served from cache, or resumed
	// from a checkpoint. Counters are never part of the sweep's JSON export,
	// so a warm-cache re-run stays byte-identical to its cold run.
	Stats *SweepStats
}

// SweepStats counts how a sweep's runs were satisfied. All counters are
// atomically updated by pool workers; read a consistent snapshot with View.
type SweepStats struct {
	executed     atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	cacheCorrupt atomic.Int64
	resumed      atomic.Int64
}

// SweepStatsView is a point-in-time snapshot of SweepStats.
type SweepStatsView struct {
	// Executed counts runs simulated fresh in this process.
	Executed int64 `json:"executed"`
	// CacheHits / CacheMisses / CacheCorrupt are the result-cache counters:
	// verified entries served, lookups that found nothing, and damaged
	// entries that were rejected and recomputed.
	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	CacheCorrupt int64 `json:"cacheCorrupt"`
	// Resumed counts runs replayed from a checkpoint journal.
	Resumed int64 `json:"resumed"`
}

// View snapshots the counters.
func (s *SweepStats) View() SweepStatsView {
	return SweepStatsView{
		Executed:     s.executed.Load(),
		CacheHits:    s.cacheHits.Load(),
		CacheMisses:  s.cacheMisses.Load(),
		CacheCorrupt: s.cacheCorrupt.Load(),
		Resumed:      s.resumed.Load(),
	}
}

// TimePoint is one downsampled sample of a run's per-tick timeseries — the
// raw material for time-resolved figures (attack windows vs nav error,
// productivity ramps, alert bursts).
type TimePoint struct {
	At             time.Duration `json:"atNs"`
	Mission        string        `json:"mission"`
	Mode           string        `json:"mode"`
	NavErrM        float64       `json:"navErrM"`
	MinWorkerDistM float64       `json:"minWorkerDistM"`
	Stopped        bool          `json:"stopped"`
	LogsDelivered  int           `json:"logsDelivered"`
	Collisions     int           `json:"collisions"`
	UnsafeEpisodes int           `json:"unsafeEpisodes"`
	Alerts         int           `json:"alerts"`
}

// SampleObserver returns the downsampling observer behind per-run
// timeseries: the first tick at or past each multiple of every becomes one
// TimePoint appended to *into. Both the sweep's SampleEvery path and the
// worksim façade's WithSampleInterval option install this same observer, so
// the two surfaces can never drift on sampling policy or recorded fields.
func SampleObserver(every time.Duration, into *[]TimePoint) worksite.Observer {
	next := every
	return &worksite.ObserverFuncs{Tick: func(t worksite.TickSnapshot) {
		if t.At < next {
			return
		}
		for next <= t.At {
			next += every
		}
		*into = append(*into, TimePoint{
			At:             t.At,
			Mission:        t.Mission,
			Mode:           t.Mode,
			NavErrM:        t.NavErrM,
			MinWorkerDistM: t.MinWorkerDistM,
			Stopped:        t.Stopped,
			LogsDelivered:  t.LogsDelivered,
			Collisions:     t.Collisions,
			UnsafeEpisodes: t.UnsafeEpisodes,
			Alerts:         t.Alerts,
		})
	}}
}

// EarlyStopByName resolves a named early-stop predicate — the CLI surface
// of SweepOptions.EarlyStop. Callers that also cache or checkpoint should
// record the name in SweepOptions.EarlyStopName so the predicate enters the
// run key.
func EarlyStopByName(name string) (func(worksite.TickSnapshot) bool, error) {
	switch name {
	case "":
		return nil, nil
	case "collision":
		return func(t worksite.TickSnapshot) bool { return t.Colliding }, nil
	case "unsafe":
		return func(t worksite.TickSnapshot) bool { return t.Unsafe }, nil
	case "safe-stop":
		return func(t worksite.TickSnapshot) bool { return t.Mode == "safe-stop" }, nil
	case "first-alert":
		return func(t worksite.TickSnapshot) bool { return t.Alerts > 0 }, nil
	default:
		return nil, fmt.Errorf("campaign: unknown early-stop predicate %q (known: collision, unsafe, safe-stop, first-alert)", name)
	}
}

// DefaultSweepDuration is the per-run simulated duration when none is given.
const DefaultSweepDuration = 10 * time.Minute

// SweepCell is one (scenario, profile) cell with its per-seed runs and
// aggregates.
type SweepCell struct {
	Scenario string  `json:"scenario"`
	Profile  string  `json:"profile"`
	Result   *Result `json:"result"`
}

// ShardInfo records which slice of the cube a sharded sweep result covers.
type ShardInfo struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// SweepResult is the outcome of a full scenario × profile × seed sweep.
// Cells are ordered scenario-major in the requested order, so rendering and
// JSON export are deterministic. Version heads the export: every sweep
// artifact names the engine version that produced it.
type SweepResult struct {
	Version  string        `json:"version"`
	Duration time.Duration `json:"durationNs"`
	Seeds    SeedRange     `json:"seeds"`
	// Shard is set on the output of a sharded sweep and stripped by
	// MergeSweeps, so merged output is byte-identical to an unsharded sweep.
	Shard *ShardInfo  `json:"shard,omitempty"`
	Cells []SweepCell `json:"cells"`
}

// Sweep fans the scenario × profile × seed cross-product out with the
// existing bounded pool and aggregation machinery: each cell becomes an
// ephemeral experiment campaigned over the seed range, so per-cell output is
// byte-reproducible regardless of Parallel.
//
// With Shard enabled only the owned slice of the cube executes; with
// CacheDir set completed runs are stored in (and served from) the
// content-addressed result cache; with CheckpointDir set completed runs are
// journaled so a killed campaign resumes at its watermark. None of the three
// changes a single byte of the result for the runs they cover — they only
// change where the bytes come from.
//
// The context cancels the sweep end to end: the per-cell worker pool stops
// claiming seeds, in-flight simulation runs stop between control ticks, and
// Sweep returns ctx.Err() once the pool has drained. A context that never
// fires yields byte-identical output to an uncancellable sweep.
func Sweep(ctx context.Context, opts SweepOptions) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	names := opts.Scenarios
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = scenario.List()
	}
	profiles := opts.Profiles
	if len(profiles) == 0 {
		profiles = scenario.Profiles()
	}
	d := opts.Duration
	if d <= 0 {
		d = DefaultSweepDuration
	}
	if err := opts.Shard.Validate(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}

	env := &sweepEnv{opts: opts, stats: opts.Stats}
	if env.stats == nil {
		env.stats = &SweepStats{}
	}
	if opts.CacheDir != "" || opts.CheckpointDir != "" {
		if opts.EarlyStop != nil && opts.EarlyStopName == "" {
			return nil, fmt.Errorf("sweep: caching/checkpointing requires EarlyStopName when an EarlyStop predicate is set (an opaque func has no content address)")
		}
	}
	if opts.CacheDir != "" {
		c, err := resultcache.Open(opts.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		env.cache = c
		// Fold the cache's own counters into the sweep stats once the
		// sweep ends, however it ends.
		defer func() {
			cs := c.Stats()
			env.stats.cacheMisses.Store(cs.Misses)
			env.stats.cacheCorrupt.Store(cs.Corrupt)
		}()
	}
	if opts.CheckpointDir != "" {
		count := opts.Shard.Count
		if count < 1 {
			count = 1
		}
		hdr := checkpointHeader{
			Kind:       checkpointKind,
			Version:    version.Engine,
			DurationNs: int64(d),
			Seeds:      opts.Seeds,
			SampleNs:   int64(opts.SampleEvery),
			EarlyStop:  opts.EarlyStopName,
			Shard:      ShardInfo{Index: opts.Shard.Index, Count: count},
			Scenarios:  names,
			Profiles:   profiles,
		}
		ck, err := openCheckpoint(opts.CheckpointDir, opts.Shard, hdr)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		defer ck.close()
		env.ckpt = ck
	}

	res := &SweepResult{Version: version.Engine, Duration: d, Seeds: opts.Seeds}
	if opts.Shard.Enabled() {
		res.Shard = &ShardInfo{Index: opts.Shard.Index, Count: opts.Shard.Count}
	}
	for _, name := range names {
		spec, err := scenario.Get(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		for _, profName := range profiles {
			prof, err := scenario.ResolveProfile(profName)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			cell := cellRef{scenario: name, profile: profName, spec: spec.WithProfile(prof)}
			if env.cache != nil {
				h, err := cell.spec.Hash()
				if err != nil {
					return nil, fmt.Errorf("sweep %s/%s: %w", name, profName, err)
				}
				cell.specHash = h
			}
			// One shared commission per cell: every seed forks the batch's
			// established security state instead of re-running keygen and
			// handshakes (byte-identical output — scenario.Batch's contract).
			batch, err := scenario.NewBatch(cell.spec)
			if err != nil {
				return nil, fmt.Errorf("sweep %s/%s: %w", name, profName, err)
			}
			cell.batch = batch
			exp := Experiment{
				ID:          name + "/" + profName,
				Section:     "sweep",
				Description: spec.Description,
				Defaults:    Params{Duration: d},
				Run: func(ctx context.Context, p Params) (Outcome, error) {
					return env.runCell(ctx, cell, p)
				},
			}
			runOpts := Options{Seeds: opts.Seeds, Parallel: opts.Parallel}
			if opts.Shard.Enabled() {
				sel := opts.Shard
				runOpts.SeedFilter = func(seed int64) bool {
					return sel.Owns(shard.Key{Scenario: cell.scenario, Profile: cell.profile, Seed: seed})
				}
			}
			cellRes, err := Run(ctx, exp, runOpts)
			if err != nil {
				return nil, fmt.Errorf("sweep %s: %w", exp.ID, err)
			}
			res.Cells = append(res.Cells, SweepCell{Scenario: name, Profile: profName, Result: cellRes})
		}
	}
	return res, nil
}

// sweepEnv carries the per-sweep caching/checkpointing machinery into the
// pool workers.
type sweepEnv struct {
	opts  SweepOptions
	stats *SweepStats
	cache *resultcache.Cache
	ckpt  *checkpoint
}

// cellRef names one (scenario, profile) cell with its compiled spec, the
// cell's shared-commission batch, and — when the cache is on — the spec's
// canonical hash, computed once per cell.
type cellRef struct {
	scenario string
	profile  string
	spec     scenario.Spec
	specHash string
	batch    *scenario.Batch
}

// runRecord is the serialized form of one completed run: the payload both
// the result cache and the checkpoint journal store. It mirrors SeedRun
// minus the seed (the key carries it), so a replayed record reconstructs the
// exact Outcome byte for byte.
type runRecord struct {
	Metrics     map[string]float64 `json:"metrics"`
	Timeseries  []TimePoint        `json:"timeseries,omitempty"`
	StoppedAtNs int64              `json:"stoppedAtNs,omitempty"`
}

func (r runRecord) outcome() Outcome {
	return Outcome{Metrics: r.Metrics, Timeseries: r.Timeseries, StoppedAt: time.Duration(r.StoppedAtNs)}
}

func recordOf(out Outcome) runRecord {
	return runRecord{Metrics: out.Metrics, Timeseries: out.Timeseries, StoppedAtNs: int64(out.StoppedAt)}
}

// runCell satisfies one (scenario, profile, seed) run: from the checkpoint
// journal, the result cache, or a fresh simulation — in that order. Fresh
// results are stored back into both before progress is reported, so a kill
// immediately after a run completes never loses it.
func (e *sweepEnv) runCell(ctx context.Context, cell cellRef, p Params) (Outcome, error) {
	key := shard.Key{Scenario: cell.scenario, Profile: cell.profile, Seed: p.Seed}
	if e.ckpt != nil {
		if rec, ok := e.ckpt.lookup(key); ok {
			e.stats.resumed.Add(1)
			e.done()
			return rec.outcome(), nil
		}
	}
	var ck resultcache.Key
	if e.cache != nil {
		ck = resultcache.Key{
			SpecHash:   cell.specHash,
			Profile:    cell.profile,
			Seed:       p.Seed,
			DurationNs: int64(p.Duration),
			SampleNs:   int64(e.opts.SampleEvery),
			EarlyStop:  e.opts.EarlyStopName,
			Engine:     version.Engine,
		}
		var rec runRecord
		hit, err := e.cache.Get(ck, &rec)
		if err != nil {
			return Outcome{}, err
		}
		if hit {
			if e.ckpt != nil {
				if err := e.ckpt.record(key, rec); err != nil {
					return Outcome{}, err
				}
			}
			e.stats.cacheHits.Add(1)
			e.done()
			if e.opts.OnRunCached != nil {
				e.opts.OnRunCached()
			}
			return rec.outcome(), nil
		}
	}

	out, err := e.execute(ctx, cell, p)
	if err != nil {
		return Outcome{}, err
	}
	rec := recordOf(out)
	if e.cache != nil {
		if err := e.cache.Put(ck, rec); err != nil {
			return Outcome{}, err
		}
	}
	if e.ckpt != nil {
		if err := e.ckpt.record(key, rec); err != nil {
			return Outcome{}, err
		}
	}
	e.stats.executed.Add(1)
	e.done()
	return out, nil
}

func (e *sweepEnv) done() {
	if e.opts.OnRunDone != nil {
		e.opts.OnRunDone()
	}
}

// execute runs one (scenario, profile, seed) simulation. The plain path (no
// sampling, no early stop) closes the loop with scenario.Run; the
// instrumented path drives a session tick by tick, so the two are the same
// simulation advanced in different strides — deterministically identical
// when no predicate cuts the run short.
func (e *sweepEnv) execute(ctx context.Context, cell cellRef, p Params) (Outcome, error) {
	if e.opts.SampleEvery <= 0 && e.opts.EarlyStop == nil {
		rep, err := cell.batch.Run(ctx, p.Seed, p.Duration)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Metrics: SweepMetrics(rep)}, nil
	}

	sess, _, err := cell.batch.Build(p.Seed, p.Duration)
	if err != nil {
		return Outcome{}, err
	}
	var series []TimePoint
	if e.opts.SampleEvery > 0 {
		sess.Subscribe(SampleObserver(e.opts.SampleEvery, &series))
	}
	stopped, err := sess.RunUntil(ctx, e.opts.EarlyStop)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Metrics: SweepMetrics(sess.Report()), Timeseries: series}
	if stopped {
		out.StoppedAt = sess.Now()
	}
	return out, nil
}

// SweepMetrics flattens a worksite report into the sweep's per-seed metric
// record. Scenario and profile are cell axes, so keys carry no prefix.
func SweepMetrics(rep worksite.Report) map[string]float64 {
	m := rep.Metrics
	out := map[string]float64{
		"logs":              float64(m.LogsDelivered),
		"distance_m":        m.DistanceM,
		"safety_stops":      float64(m.SafetyStops),
		"unsafe_episodes":   float64(m.UnsafeEpisodes),
		"collisions":        float64(m.Collisions),
		"min_worker_dist_m": m.MinWorkerDistM,
		"nav_err_max_m":     m.NavErrMaxM,
		"send_failures":     float64(m.SendFailures),
		"replays_blocked":   float64(m.ReplaysBlocked),
		"forgeries_blocked": float64(m.ForgeriesBlocked),
		"cmds_applied":      float64(m.CommandsApplied),
		"channel_hops":      float64(m.ChannelHops),
		"tracks_confirmed":  float64(m.TracksConfirmed),
		"false_alarms":      float64(m.FalseAlarms),
	}
	var alerts float64
	for _, n := range rep.Alerts {
		alerts += float64(n)
	}
	out["alerts_total"] = alerts
	return out
}

// summaryMetrics are the columns of the sweep summary table, in order.
var summaryMetrics = []string{
	"logs", "unsafe_episodes", "collisions", "nav_err_max_m",
	"forgeries_blocked", "replays_blocked", "alerts_total",
}

// Table renders the sweep as one summary table: a row per cell with the
// per-metric means across seeds.
func (r *SweepResult) Table() *report.Table {
	cols := append([]string{"scenario", "profile"}, summaryMetrics...)
	t := report.NewTable(
		fmt.Sprintf("scenario sweep: %d cell(s), %s, %v simulated (per-metric means)",
			len(r.Cells), r.Seeds, r.Duration),
		cols...)
	for _, c := range r.Cells {
		means := make(map[string]float64, len(c.Result.Aggregates))
		for _, a := range c.Result.Aggregates {
			means[a.Metric] = a.Mean
		}
		row := []any{c.Scenario, c.Profile}
		for _, k := range summaryMetrics {
			row = append(row, means[k])
		}
		t.AddRow(row...)
	}
	return t
}

// JSON renders the sweep as indented JSON. Like the single-experiment
// export, it contains no wall-clock data, so a fixed seed set produces
// byte-identical bytes regardless of Parallel.
func (r *SweepResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
