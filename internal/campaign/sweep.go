package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/worksite"
)

// SweepOptions configures a scenario sweep: the cross-product of named
// catalog scenarios × security profiles × seeds.
type SweepOptions struct {
	// Scenarios are catalog names. Empty (or the single element "all")
	// selects the whole catalog.
	Scenarios []string
	// Profiles are named defence selections (scenario.Profiles). Empty
	// selects every named profile — the paper's unsecured-vs-secured axis.
	Profiles []string
	// Seeds is the seed range each cell fans out over.
	Seeds SeedRange
	// Parallel bounds the per-cell worker pool.
	Parallel int
	// Duration is the simulated duration per run (0 = 10 minutes).
	Duration time.Duration
	// SampleEvery, when positive, records a downsampled per-tick timeseries
	// in every SeedRun: one TimePoint per SampleEvery of simulated time.
	// Sampling is a passive observer; it never changes run outcomes.
	SampleEvery time.Duration
	// EarlyStop, when non-nil, ends each run at the first control tick for
	// which it returns true (the run's report then covers the shortened
	// window and SeedRun.StoppedAt records the cut). Predicates must be
	// pure functions of the snapshot so runs stay deterministic; with
	// EarlyStop nil, sweep output is byte-identical to a sweep without
	// session instrumentation, across any Parallel width.
	EarlyStop func(worksite.TickSnapshot) bool
	// OnRunDone, when non-nil, is invoked once after every completed
	// (scenario, profile, seed) run — the progress seam async consumers
	// (the worksimd daemon) count seeds with. It is called from pool
	// worker goroutines and must be safe for concurrent use; it observes
	// progress only and must not influence results.
	OnRunDone func()
}

// TimePoint is one downsampled sample of a run's per-tick timeseries — the
// raw material for time-resolved figures (attack windows vs nav error,
// productivity ramps, alert bursts).
type TimePoint struct {
	At             time.Duration `json:"atNs"`
	Mission        string        `json:"mission"`
	Mode           string        `json:"mode"`
	NavErrM        float64       `json:"navErrM"`
	MinWorkerDistM float64       `json:"minWorkerDistM"`
	Stopped        bool          `json:"stopped"`
	LogsDelivered  int           `json:"logsDelivered"`
	Collisions     int           `json:"collisions"`
	UnsafeEpisodes int           `json:"unsafeEpisodes"`
	Alerts         int           `json:"alerts"`
}

// SampleObserver returns the downsampling observer behind per-run
// timeseries: the first tick at or past each multiple of every becomes one
// TimePoint appended to *into. Both the sweep's SampleEvery path and the
// worksim façade's WithSampleInterval option install this same observer, so
// the two surfaces can never drift on sampling policy or recorded fields.
func SampleObserver(every time.Duration, into *[]TimePoint) worksite.Observer {
	next := every
	return &worksite.ObserverFuncs{Tick: func(t worksite.TickSnapshot) {
		if t.At < next {
			return
		}
		for next <= t.At {
			next += every
		}
		*into = append(*into, TimePoint{
			At:             t.At,
			Mission:        t.Mission,
			Mode:           t.Mode,
			NavErrM:        t.NavErrM,
			MinWorkerDistM: t.MinWorkerDistM,
			Stopped:        t.Stopped,
			LogsDelivered:  t.LogsDelivered,
			Collisions:     t.Collisions,
			UnsafeEpisodes: t.UnsafeEpisodes,
			Alerts:         t.Alerts,
		})
	}}
}

// EarlyStopByName resolves a named early-stop predicate — the CLI surface
// of SweepOptions.EarlyStop.
func EarlyStopByName(name string) (func(worksite.TickSnapshot) bool, error) {
	switch name {
	case "":
		return nil, nil
	case "collision":
		return func(t worksite.TickSnapshot) bool { return t.Colliding }, nil
	case "unsafe":
		return func(t worksite.TickSnapshot) bool { return t.Unsafe }, nil
	case "safe-stop":
		return func(t worksite.TickSnapshot) bool { return t.Mode == "safe-stop" }, nil
	case "first-alert":
		return func(t worksite.TickSnapshot) bool { return t.Alerts > 0 }, nil
	default:
		return nil, fmt.Errorf("campaign: unknown early-stop predicate %q (known: collision, unsafe, safe-stop, first-alert)", name)
	}
}

// DefaultSweepDuration is the per-run simulated duration when none is given.
const DefaultSweepDuration = 10 * time.Minute

// SweepCell is one (scenario, profile) cell with its per-seed runs and
// aggregates.
type SweepCell struct {
	Scenario string  `json:"scenario"`
	Profile  string  `json:"profile"`
	Result   *Result `json:"result"`
}

// SweepResult is the outcome of a full scenario × profile × seed sweep.
// Cells are ordered scenario-major in the requested order, so rendering and
// JSON export are deterministic.
type SweepResult struct {
	Duration time.Duration `json:"durationNs"`
	Seeds    SeedRange     `json:"seeds"`
	Cells    []SweepCell   `json:"cells"`
}

// Sweep fans the scenario × profile × seed cross-product out with the
// existing bounded pool and aggregation machinery: each cell becomes an
// ephemeral experiment campaigned over the seed range, so per-cell output is
// byte-reproducible regardless of Parallel.
//
// The context cancels the sweep end to end: the per-cell worker pool stops
// claiming seeds, in-flight simulation runs stop between control ticks, and
// Sweep returns ctx.Err() once the pool has drained. A context that never
// fires yields byte-identical output to an uncancellable sweep.
func Sweep(ctx context.Context, opts SweepOptions) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	names := opts.Scenarios
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = scenario.List()
	}
	profiles := opts.Profiles
	if len(profiles) == 0 {
		profiles = scenario.Profiles()
	}
	d := opts.Duration
	if d <= 0 {
		d = DefaultSweepDuration
	}

	res := &SweepResult{Duration: d, Seeds: opts.Seeds}
	for _, name := range names {
		spec, err := scenario.Get(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		for _, profName := range profiles {
			prof, err := scenario.ResolveProfile(profName)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			cellSpec := spec.WithProfile(prof)
			exp := Experiment{
				ID:          name + "/" + profName,
				Section:     "sweep",
				Description: spec.Description,
				Defaults:    Params{Duration: d},
				Run: func(ctx context.Context, p Params) (Outcome, error) {
					return runSweepCell(ctx, cellSpec, p, opts)
				},
			}
			cell, err := Run(ctx, exp, Options{Seeds: opts.Seeds, Parallel: opts.Parallel})
			if err != nil {
				return nil, fmt.Errorf("sweep %s: %w", exp.ID, err)
			}
			res.Cells = append(res.Cells, SweepCell{Scenario: name, Profile: profName, Result: cell})
		}
	}
	return res, nil
}

// runSweepCell executes one (scenario, profile, seed) run. The plain path
// (no sampling, no early stop) closes the loop with scenario.Run; the
// instrumented path drives a session tick by tick, so the two are the same
// simulation advanced in different strides — deterministically identical
// when no predicate cuts the run short.
func runSweepCell(ctx context.Context, spec scenario.Spec, p Params, opts SweepOptions) (out Outcome, err error) {
	if opts.OnRunDone != nil {
		// Count completed runs only: a failed or cancelled run is not
		// progress.
		defer func() {
			if err == nil {
				opts.OnRunDone()
			}
		}()
	}
	if opts.SampleEvery <= 0 && opts.EarlyStop == nil {
		rep, err := scenario.Run(ctx, spec, p.Seed, p.Duration)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Metrics: SweepMetrics(rep)}, nil
	}

	sess, _, err := scenario.Build(spec, p.Seed, p.Duration)
	if err != nil {
		return Outcome{}, err
	}
	var series []TimePoint
	if opts.SampleEvery > 0 {
		sess.Subscribe(SampleObserver(opts.SampleEvery, &series))
	}
	stopped, err := sess.RunUntil(ctx, opts.EarlyStop)
	if err != nil {
		return Outcome{}, err
	}
	out = Outcome{Metrics: SweepMetrics(sess.Report()), Timeseries: series}
	if stopped {
		out.StoppedAt = sess.Now()
	}
	return out, nil
}

// SweepMetrics flattens a worksite report into the sweep's per-seed metric
// record. Scenario and profile are cell axes, so keys carry no prefix.
func SweepMetrics(rep worksite.Report) map[string]float64 {
	m := rep.Metrics
	out := map[string]float64{
		"logs":              float64(m.LogsDelivered),
		"distance_m":        m.DistanceM,
		"safety_stops":      float64(m.SafetyStops),
		"unsafe_episodes":   float64(m.UnsafeEpisodes),
		"collisions":        float64(m.Collisions),
		"min_worker_dist_m": m.MinWorkerDistM,
		"nav_err_max_m":     m.NavErrMaxM,
		"send_failures":     float64(m.SendFailures),
		"replays_blocked":   float64(m.ReplaysBlocked),
		"forgeries_blocked": float64(m.ForgeriesBlocked),
		"cmds_applied":      float64(m.CommandsApplied),
		"channel_hops":      float64(m.ChannelHops),
		"tracks_confirmed":  float64(m.TracksConfirmed),
		"false_alarms":      float64(m.FalseAlarms),
	}
	var alerts float64
	for _, n := range rep.Alerts {
		alerts += float64(n)
	}
	out["alerts_total"] = alerts
	return out
}

// summaryMetrics are the columns of the sweep summary table, in order.
var summaryMetrics = []string{
	"logs", "unsafe_episodes", "collisions", "nav_err_max_m",
	"forgeries_blocked", "replays_blocked", "alerts_total",
}

// Table renders the sweep as one summary table: a row per cell with the
// per-metric means across seeds.
func (r *SweepResult) Table() *report.Table {
	cols := append([]string{"scenario", "profile"}, summaryMetrics...)
	t := report.NewTable(
		fmt.Sprintf("scenario sweep: %d cell(s), %s, %v simulated (per-metric means)",
			len(r.Cells), r.Seeds, r.Duration),
		cols...)
	for _, c := range r.Cells {
		means := make(map[string]float64, len(c.Result.Aggregates))
		for _, a := range c.Result.Aggregates {
			means[a.Metric] = a.Mean
		}
		row := []any{c.Scenario, c.Profile}
		for _, k := range summaryMetrics {
			row = append(row, means[k])
		}
		t.AddRow(row...)
	}
	return t
}

// JSON renders the sweep as indented JSON. Like the single-experiment
// export, it contains no wall-clock data, so a fixed seed set produces
// byte-identical bytes regardless of Parallel.
func (r *SweepResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
