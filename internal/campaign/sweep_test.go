package campaign_test

// Sweep tests: the scenario × profile × seed fan-out must reuse the bounded
// pool's reproducibility guarantees — identical bytes regardless of the
// worker-pool width — and keep cells in the requested scenario-major order.

import (
	"context"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/worksite"
)

func sweepJSON(t *testing.T, parallel int) []byte {
	t.Helper()
	res, err := campaign.Sweep(context.Background(), campaign.SweepOptions{
		Scenarios: []string{"gnss-spoof", "baseline"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 3},
		Parallel:  parallel,
		Duration:  4 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Sweep(parallel=%d): %v", parallel, err)
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	return j
}

// TestSweepParallelEquality: the sweep export is byte-identical across
// worker-pool widths (the E5 secured-vs-unsecured reproduction guarantee).
func TestSweepParallelEquality(t *testing.T) {
	serial := sweepJSON(t, 1)
	wide := sweepJSON(t, 8)
	if string(serial) != string(wide) {
		t.Fatal("sweep JSON differs between parallel widths 1 and 8")
	}
}

// TestSweepShapeAndOrder: cells come back scenario-major in request order,
// profiles within each scenario, every cell carrying per-seed runs and
// aggregates.
func TestSweepShapeAndOrder(t *testing.T) {
	res, err := campaign.Sweep(context.Background(), campaign.SweepOptions{
		Scenarios: []string{"gnss-spoof", "baseline"},
		Profiles:  []string{"unsecured", "secured"},
		Seeds:     campaign.SeedRange{Base: 5, Count: 2},
		Parallel:  4,
		Duration:  4 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	wantCells := []struct{ scen, prof string }{
		{"gnss-spoof", "unsecured"},
		{"gnss-spoof", "secured"},
		{"baseline", "unsecured"},
		{"baseline", "secured"},
	}
	if len(res.Cells) != len(wantCells) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(wantCells))
	}
	for i, want := range wantCells {
		c := res.Cells[i]
		if c.Scenario != want.scen || c.Profile != want.prof {
			t.Fatalf("cell %d = %s/%s, want %s/%s", i, c.Scenario, c.Profile, want.scen, want.prof)
		}
		if len(c.Result.PerSeed) != 2 {
			t.Fatalf("cell %s/%s has %d per-seed runs, want 2", c.Scenario, c.Profile, len(c.Result.PerSeed))
		}
		if len(c.Result.Aggregates) == 0 {
			t.Fatalf("cell %s/%s has no aggregates", c.Scenario, c.Profile)
		}
	}
	// The defence axis must actually bite: spoofed nav error is worse on the
	// unsecured profile.
	navErr := func(i int) float64 {
		for _, a := range res.Cells[i].Result.Aggregates {
			if a.Metric == "nav_err_max_m" {
				return a.Mean
			}
		}
		t.Fatalf("cell %d missing nav_err_max_m", i)
		return 0
	}
	if navErr(0) <= navErr(1) {
		t.Fatalf("gnss-spoof nav error not worse unsecured (%v) than secured (%v)", navErr(0), navErr(1))
	}
	if res.Table().Rows() != len(wantCells) {
		t.Fatalf("summary table rows = %d, want %d", res.Table().Rows(), len(wantCells))
	}
}

// TestSweepInstrumentationInert: enabling sampling must not change any run
// outcome — the session instrumentation is a passive tap, so the metric
// record matches the uninstrumented sweep exactly.
func TestSweepInstrumentationInert(t *testing.T) {
	base := campaign.SweepOptions{
		Scenarios: []string{"gnss-spoof"},
		Profiles:  []string{"unsecured"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 2},
		Parallel:  2,
		Duration:  4 * time.Minute,
	}
	plain, err := campaign.Sweep(context.Background(), base)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	sampled := base
	sampled.SampleEvery = 30 * time.Second
	inst, err := campaign.Sweep(context.Background(), sampled)
	if err != nil {
		t.Fatalf("instrumented Sweep: %v", err)
	}
	for i, run := range inst.Cells[0].Result.PerSeed {
		want := plain.Cells[0].Result.PerSeed[i]
		if len(run.Metrics) != len(want.Metrics) {
			t.Fatalf("seed %d metric sets differ", run.Seed)
		}
		for k, v := range want.Metrics {
			if run.Metrics[k] != v {
				t.Fatalf("seed %d metric %s: sampled %v != plain %v", run.Seed, k, run.Metrics[k], v)
			}
		}
		if len(run.Timeseries) == 0 {
			t.Fatalf("seed %d has no timeseries with SampleEvery set", run.Seed)
		}
		// About one point per 30s over 4 minutes, strictly increasing.
		if n := len(run.Timeseries); n < 6 || n > 8 {
			t.Fatalf("seed %d timeseries has %d points over 4m/30s", run.Seed, n)
		}
		for j := 1; j < len(run.Timeseries); j++ {
			if run.Timeseries[j].At <= run.Timeseries[j-1].At {
				t.Fatalf("seed %d timeseries not increasing at %d", run.Seed, j)
			}
		}
		if run.StoppedAt != 0 {
			t.Fatalf("seed %d reports early stop without a predicate", run.Seed)
		}
	}
}

// TestSweepEarlyStop: a predicate cuts runs short and records the cut.
func TestSweepEarlyStop(t *testing.T) {
	res, err := campaign.Sweep(context.Background(), campaign.SweepOptions{
		Scenarios: []string{"gnss-spoof"},
		Profiles:  []string{"secured"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 2},
		Parallel:  2,
		Duration:  6 * time.Minute,
		// The secured profile raises gnss-anomaly alerts once the spoof
		// window opens; stop each run at the first alert.
		EarlyStop: mustPredicate(t, "first-alert"),
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, run := range res.Cells[0].Result.PerSeed {
		if run.StoppedAt == 0 {
			t.Fatalf("seed %d never stopped (no alert before horizon?)", run.Seed)
		}
		if run.StoppedAt >= 6*time.Minute {
			t.Fatalf("seed %d stopped at %v, not early", run.Seed, run.StoppedAt)
		}
	}
}

func mustPredicate(t *testing.T, name string) func(worksite.TickSnapshot) bool {
	t.Helper()
	p, err := campaign.EarlyStopByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEarlyStopByName: known names resolve, the empty name is nil, unknown
// names fail.
func TestEarlyStopByName(t *testing.T) {
	for _, name := range []string{"collision", "unsafe", "safe-stop", "first-alert"} {
		if p, err := campaign.EarlyStopByName(name); err != nil || p == nil {
			t.Fatalf("EarlyStopByName(%q): nil=%v err=%v", name, p == nil, err)
		}
	}
	if p, err := campaign.EarlyStopByName(""); err != nil || p != nil {
		t.Fatalf("empty name should resolve to nil predicate, got nil=%v err=%v", p == nil, err)
	}
	if _, err := campaign.EarlyStopByName("quantum"); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

// TestSweepRejectsUnknownNames: bad scenario or profile names fail fast.
func TestSweepRejectsUnknownNames(t *testing.T) {
	if _, err := campaign.Sweep(context.Background(), campaign.SweepOptions{
		Scenarios: []string{"atlantis"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 1},
	}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := campaign.Sweep(context.Background(), campaign.SweepOptions{
		Scenarios: []string{"baseline"},
		Profiles:  []string{"tinfoil"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 1},
	}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
