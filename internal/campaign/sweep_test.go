package campaign_test

// Sweep tests: the scenario × profile × seed fan-out must reuse the bounded
// pool's reproducibility guarantees — identical bytes regardless of the
// worker-pool width — and keep cells in the requested scenario-major order.

import (
	"testing"
	"time"

	"repro/internal/campaign"
)

func sweepJSON(t *testing.T, parallel int) []byte {
	t.Helper()
	res, err := campaign.Sweep(campaign.SweepOptions{
		Scenarios: []string{"gnss-spoof", "baseline"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 3},
		Parallel:  parallel,
		Duration:  4 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Sweep(parallel=%d): %v", parallel, err)
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	return j
}

// TestSweepParallelEquality: the sweep export is byte-identical across
// worker-pool widths (the E5 secured-vs-unsecured reproduction guarantee).
func TestSweepParallelEquality(t *testing.T) {
	serial := sweepJSON(t, 1)
	wide := sweepJSON(t, 8)
	if string(serial) != string(wide) {
		t.Fatal("sweep JSON differs between parallel widths 1 and 8")
	}
}

// TestSweepShapeAndOrder: cells come back scenario-major in request order,
// profiles within each scenario, every cell carrying per-seed runs and
// aggregates.
func TestSweepShapeAndOrder(t *testing.T) {
	res, err := campaign.Sweep(campaign.SweepOptions{
		Scenarios: []string{"gnss-spoof", "baseline"},
		Profiles:  []string{"unsecured", "secured"},
		Seeds:     campaign.SeedRange{Base: 5, Count: 2},
		Parallel:  4,
		Duration:  4 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	wantCells := []struct{ scen, prof string }{
		{"gnss-spoof", "unsecured"},
		{"gnss-spoof", "secured"},
		{"baseline", "unsecured"},
		{"baseline", "secured"},
	}
	if len(res.Cells) != len(wantCells) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(wantCells))
	}
	for i, want := range wantCells {
		c := res.Cells[i]
		if c.Scenario != want.scen || c.Profile != want.prof {
			t.Fatalf("cell %d = %s/%s, want %s/%s", i, c.Scenario, c.Profile, want.scen, want.prof)
		}
		if len(c.Result.PerSeed) != 2 {
			t.Fatalf("cell %s/%s has %d per-seed runs, want 2", c.Scenario, c.Profile, len(c.Result.PerSeed))
		}
		if len(c.Result.Aggregates) == 0 {
			t.Fatalf("cell %s/%s has no aggregates", c.Scenario, c.Profile)
		}
	}
	// The defence axis must actually bite: spoofed nav error is worse on the
	// unsecured profile.
	navErr := func(i int) float64 {
		for _, a := range res.Cells[i].Result.Aggregates {
			if a.Metric == "nav_err_max_m" {
				return a.Mean
			}
		}
		t.Fatalf("cell %d missing nav_err_max_m", i)
		return 0
	}
	if navErr(0) <= navErr(1) {
		t.Fatalf("gnss-spoof nav error not worse unsecured (%v) than secured (%v)", navErr(0), navErr(1))
	}
	if res.Table().Rows() != len(wantCells) {
		t.Fatalf("summary table rows = %d, want %d", res.Table().Rows(), len(wantCells))
	}
}

// TestSweepRejectsUnknownNames: bad scenario or profile names fail fast.
func TestSweepRejectsUnknownNames(t *testing.T) {
	if _, err := campaign.Sweep(campaign.SweepOptions{
		Scenarios: []string{"atlantis"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 1},
	}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := campaign.Sweep(campaign.SweepOptions{
		Scenarios: []string{"baseline"},
		Profiles:  []string{"tinfoil"},
		Seeds:     campaign.SeedRange{Base: 1, Count: 1},
	}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
