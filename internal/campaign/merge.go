package campaign

// Merging: recombining the per-shard outputs of a sharded sweep into one
// result byte-identical to the unsharded sweep. Every shard reports every
// cell (zero-owned cells carry empty per-seed slices), so merging is a
// positional zip over cells with a per-seed union — validated end to end:
// the shard set must be complete and mutually consistent, and every seed
// must come from exactly the shard that owns it under the stable hash.

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/shard"
)

// MergeSweeps combines a complete set of sharded sweep results into the
// single result an unsharded sweep would have produced. Inputs may arrive in
// any order. The merge fails loudly on anything that would silently corrupt
// the combined artifact: a missing or duplicate shard, results from
// different campaigns (version, duration, seed range or cell set mismatch),
// a seed reported by a shard that does not own it, or a seed missing or
// duplicated across the set.
func MergeSweeps(in []*SweepResult) (*SweepResult, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("merge: no shard results")
	}
	first := in[0]
	if first.Shard == nil {
		return nil, fmt.Errorf("merge: result 0 has no shard header (not the output of a sharded sweep)")
	}
	count := first.Shard.Count
	if count < 1 || len(in) != count {
		return nil, fmt.Errorf("merge: got %d result(s) for a %d-shard campaign", len(in), count)
	}
	seen := make([]bool, count)
	for i, r := range in {
		if r.Shard == nil {
			return nil, fmt.Errorf("merge: result %d has no shard header", i)
		}
		if r.Shard.Count != count {
			return nil, fmt.Errorf("merge: result %d is shard %d/%d, want count %d", i, r.Shard.Index, r.Shard.Count, count)
		}
		if r.Shard.Index < 0 || r.Shard.Index >= count {
			return nil, fmt.Errorf("merge: result %d has shard index %d out of range [0,%d)", i, r.Shard.Index, count)
		}
		if seen[r.Shard.Index] {
			return nil, fmt.Errorf("merge: shard %d/%d appears twice", r.Shard.Index, count)
		}
		seen[r.Shard.Index] = true
		if r.Version != first.Version {
			return nil, fmt.Errorf("merge: engine version mismatch: %q vs %q", r.Version, first.Version)
		}
		if r.Duration != first.Duration || r.Seeds != first.Seeds {
			return nil, fmt.Errorf("merge: shard %d ran a different campaign (duration/seeds mismatch)", r.Shard.Index)
		}
		if len(r.Cells) != len(first.Cells) {
			return nil, fmt.Errorf("merge: shard %d has %d cell(s), want %d", r.Shard.Index, len(r.Cells), len(first.Cells))
		}
	}

	out := &SweepResult{Version: first.Version, Duration: first.Duration, Seeds: first.Seeds}
	for ci := range first.Cells {
		cell, err := mergeCell(in, ci, count)
		if err != nil {
			return nil, err
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// mergeCell zips cell ci across all shards: per-seed runs union by seed
// (each from its owning shard, verified), aggregates recomputed over the
// union, metadata taken from shard 0's copy.
func mergeCell(in []*SweepResult, ci, count int) (SweepCell, error) {
	ref := in[0].Cells[ci]
	bySeed := make(map[int64]SeedRun)
	for _, r := range in {
		c := r.Cells[ci]
		if c.Scenario != ref.Scenario || c.Profile != ref.Profile {
			return SweepCell{}, fmt.Errorf("merge: shard %d cell %d is %s/%s, want %s/%s",
				r.Shard.Index, ci, c.Scenario, c.Profile, ref.Scenario, ref.Profile)
		}
		for _, run := range c.Result.PerSeed {
			k := shard.Key{Scenario: c.Scenario, Profile: c.Profile, Seed: run.Seed}
			if owner := shard.Assign(k, count); owner != r.Shard.Index {
				return SweepCell{}, fmt.Errorf("merge: shard %d reports %s seed %d owned by shard %d",
					r.Shard.Index, c.Scenario+"/"+c.Profile, run.Seed, owner)
			}
			if _, dup := bySeed[run.Seed]; dup {
				return SweepCell{}, fmt.Errorf("merge: %s seed %d appears twice", c.Scenario+"/"+c.Profile, run.Seed)
			}
			bySeed[run.Seed] = run
		}
	}

	seeds := ref.Result.Seeds.Seeds()
	merged := &Result{
		Version:      ref.Result.Version,
		ExperimentID: ref.Result.ExperimentID,
		Section:      ref.Result.Section,
		Description:  ref.Result.Description,
		Params:       ref.Result.Params,
		Seeds:        ref.Result.Seeds,
	}
	missing := make([]int64, 0)
	for _, s := range seeds {
		run, ok := bySeed[s]
		if !ok {
			missing = append(missing, s)
			continue
		}
		merged.PerSeed = append(merged.PerSeed, run)
	}
	if len(missing) > 0 {
		return SweepCell{}, fmt.Errorf("merge: %s/%s missing seed(s) %v (incomplete shard set?)",
			ref.Scenario, ref.Profile, missing)
	}
	if extra := len(bySeed) - len(seeds); extra > 0 {
		got := make([]int64, 0, len(bySeed))
		for s := range bySeed {
			got = append(got, s)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		return SweepCell{}, fmt.Errorf("merge: %s/%s has %d run(s) outside the declared seed range %s: got seeds %v",
			ref.Scenario, ref.Profile, extra, ref.Result.Seeds, got)
	}
	merged.Aggregates = aggregate(merged.PerSeed)
	return SweepCell{Scenario: ref.Scenario, Profile: ref.Profile, Result: merged}, nil
}

// MergeSweepJSON merges serialized shard results (the -json export of
// sharded campaign runs) and returns the merged result plus its indented
// JSON — the byte-identity surface the CLI merge mode writes to stdout.
func MergeSweepJSON(blobs [][]byte) (*SweepResult, []byte, error) {
	in := make([]*SweepResult, 0, len(blobs))
	for i, b := range blobs {
		var r SweepResult
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, nil, fmt.Errorf("merge: parse input %d: %w", i, err)
		}
		in = append(in, &r)
	}
	merged, err := MergeSweeps(in)
	if err != nil {
		return nil, nil, err
	}
	out, err := merged.JSON()
	if err != nil {
		return nil, nil, err
	}
	return merged, out, nil
}
