// Package campaign turns the one-shot E1–E10 reproduction into a Monte-Carlo
// evidence generator for the paper's assurance case: every experiment is
// registered under a stable ID with its paper section and default parameters,
// and the campaign runner fans any registered experiment out over a range of
// seeds with a bounded worker pool, then aggregates the per-seed domain
// metrics into mean / stddev / 95%-confidence summaries.
//
// The contract that makes this sound: an experiment's Run must be a pure
// function of its Params — no shared mutable state, no wall-clock
// measurements in Metrics — so concurrent runs at different seeds are
// independent and the aggregate over a fixed seed set is byte-reproducible.
// Wall-clock throughput numbers (E9/E9a) stay in their tables and in the
// testing.B micro-benchmarks; they are deliberately not exported as campaign
// metrics.
package campaign

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/report"
)

// Params parameterises a single experiment run. Not every experiment uses
// every field; unused fields are ignored by its Run function.
type Params struct {
	// Seed roots every random stream of the run.
	Seed int64 `json:"seed"`
	// Duration is the simulated duration for worksite-based experiments.
	Duration time.Duration `json:"durationNs,omitempty"`
	// Trials is the number of detection trials per sweep point.
	Trials int `json:"trials,omitempty"`
	// Scenarios is the number of explored SOTIF scenarios (E10).
	Scenarios int `json:"scenarios,omitempty"`
}

// WithDefaults fills zero fields from d. Seed is kept as-is: zero is a valid
// seed.
func (p Params) WithDefaults(d Params) Params {
	if p.Duration == 0 {
		p.Duration = d.Duration
	}
	if p.Trials == 0 {
		p.Trials = d.Trials
	}
	if p.Scenarios == 0 {
		p.Scenarios = d.Scenarios
	}
	return p
}

// Outcome is what one experiment run at one seed produces: the rendered
// artifacts (tables/figures, as in the paper) plus a flat map of domain
// metrics for cross-seed aggregation. Metrics must be a deterministic
// function of Params.
type Outcome struct {
	Tables  []*report.Table
	Figures []*report.Figure
	Metrics map[string]float64

	// Timeseries is the optional downsampled per-tick series of the run
	// (session-driven experiments with sampling enabled; nil otherwise).
	Timeseries []TimePoint
	// StoppedAt is the virtual time an early-stop predicate ended the run,
	// 0 when it ran to its full duration.
	StoppedAt time.Duration
}

// Experiment is a registered, discoverable experiment.
type Experiment struct {
	// ID is the stable lowercase identifier ("e1", "e5a", ...).
	ID string
	// Section names the paper section / figure the experiment reproduces.
	Section string
	// Description is a one-line summary.
	Description string
	// Defaults are the parameters the benchmark harness uses.
	Defaults Params
	// SeedIndependent marks experiments whose outcome does not depend on the
	// seed (pure model analyses like E3/E4/E6). The campaign runner executes
	// them once instead of fanning out, so aggregates honestly report n=1
	// rather than N identical pseudo-samples.
	SeedIndependent bool
	// Run executes the experiment. It must be safe for concurrent use.
	// Long-running experiments should honour ctx (simulation runners stop
	// between control ticks and return ctx.Err()); pure analyses may ignore
	// it. The campaign pool passes its own context through, so cancelling a
	// campaign cancels every in-flight run.
	Run func(ctx context.Context, p Params) (Outcome, error)
}

// Registry holds registered experiments in registration order.
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]Experiment
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]Experiment)}
}

// Register adds an experiment. IDs must be unique, non-empty and lowercase.
func (r *Registry) Register(e Experiment) error {
	if e.ID == "" || e.ID != strings.ToLower(e.ID) {
		return fmt.Errorf("campaign: invalid experiment ID %q", e.ID)
	}
	if e.Run == nil {
		return fmt.Errorf("campaign: experiment %q has no Run function", e.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[e.ID]; dup {
		return fmt.Errorf("campaign: experiment %q already registered", e.ID)
	}
	r.byID[e.ID] = e
	r.order = append(r.order, e.ID)
	return nil
}

// Get returns the experiment registered under id.
func (r *Registry) Get(id string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byID[strings.ToLower(id)]
	return e, ok
}

// IDs returns all registered IDs in registration order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// All returns every registered experiment in registration order.
func (r *Registry) All() []Experiment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Experiment, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Select resolves a list of IDs (or the single element "all") to experiments,
// preserving request order and rejecting unknown IDs.
func (r *Registry) Select(ids []string) ([]Experiment, error) {
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		return r.All(), nil
	}
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := r.Get(strings.TrimSpace(id))
		if !ok {
			known := r.IDs()
			sort.Strings(known)
			return nil, fmt.Errorf("campaign: unknown experiment %q (registered: %s)",
				id, strings.Join(known, ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// Default is the process-wide registry that internal/experiments populates at
// init time.
var Default = NewRegistry()

// Register adds an experiment to the Default registry, panicking on conflict
// (registration happens at init time, where a conflict is a programming
// error).
func Register(e Experiment) {
	if err := Default.Register(e); err != nil {
		panic(err)
	}
}

// Lookup finds an experiment in the Default registry.
func Lookup(id string) (Experiment, bool) { return Default.Get(id) }
