package campaign_test

// Race-safety and parallel-equivalence tests for the campaign runner against
// real registered experiments. Run under the race detector:
//
//	go test -race ./internal/campaign/...
//
// The invariant: fanning an experiment out over K seeds with any worker-pool
// width yields exactly the per-seed metrics, aggregate table and JSON export
// of the serial run — the parallel runner may not perturb a single bit.

import (
	"context"
	"testing"
	"time"

	"repro/internal/campaign"
	_ "repro/internal/experiments" // populates the Default registry
)

// campaignShortRun keeps the worksite race probe fast under -race.
const campaignShortRun = 3 * time.Minute

func mustLookup(t *testing.T, id string) campaign.Experiment {
	t.Helper()
	exp, ok := campaign.Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return exp
}

// TestCampaignParallelMatchesSerial runs E2 across 8 seeds with parallel=4
// and checks every per-seed metric and the aggregate against the serial run.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	exp := mustLookup(t, "e2")
	opts := campaign.Options{
		Seeds:  campaign.SeedRange{Base: 1, Count: 8},
		Params: campaign.Params{Trials: 20},
	}
	opts.Parallel = 1
	serial, err := campaign.Run(context.Background(), exp, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 4
	parallel, err := campaign.Run(context.Background(), exp, opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.PerSeed) != len(parallel.PerSeed) {
		t.Fatalf("per-seed counts differ: %d vs %d", len(serial.PerSeed), len(parallel.PerSeed))
	}
	for i := range serial.PerSeed {
		s, p := serial.PerSeed[i], parallel.PerSeed[i]
		if s.Seed != p.Seed {
			t.Fatalf("seed order differs at %d: %d vs %d", i, s.Seed, p.Seed)
		}
		if len(s.Metrics) != len(p.Metrics) {
			t.Fatalf("seed %d: metric counts differ", s.Seed)
		}
		for k, v := range s.Metrics {
			if pv, ok := p.Metrics[k]; !ok || pv != v {
				t.Fatalf("seed %d metric %q: serial %v, parallel %v", s.Seed, k, v, pv)
			}
		}
	}
	if serial.Table().Render() != parallel.Table().Render() {
		t.Fatal("aggregate tables differ between serial and parallel runs")
	}
	js, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != string(jp) {
		t.Fatal("JSON exports differ between serial and parallel runs")
	}
}

// TestCampaignWorksiteParallel exercises the full worksite simulation (E1,
// short runs) concurrently — the sharpest race probe, since one worksite run
// touches the scheduler, radio medium, sensors, fusion, PKI and IDS.
func TestCampaignWorksiteParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	exp := mustLookup(t, "e1")
	opts := campaign.Options{
		Seeds:    campaign.SeedRange{Base: 1, Count: 4},
		Parallel: 4,
		Params:   campaign.Params{Duration: campaignShortRun},
	}
	par, err := campaign.Run(context.Background(), exp, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 1
	ser, err := campaign.Run(context.Background(), exp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.Table().Render() != ser.Table().Render() {
		t.Fatal("worksite campaign differs between serial and parallel runs")
	}
}

// TestRegistryComplete pins the experiment inventory: every paper experiment
// is discoverable by ID.
func TestRegistryComplete(t *testing.T) {
	want := []string{"e1", "e2", "e2a", "e3", "e4", "e5", "e5a", "e5b", "e6", "e7", "e8", "e9", "e9a", "e10"}
	ids := campaign.Default.IDs()
	if len(ids) != len(want) {
		t.Fatalf("registered %d experiments (%v), want %d", len(ids), ids, len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("registration order: got %v", ids)
		}
		exp, ok := campaign.Lookup(id)
		if !ok {
			t.Fatalf("%q not registered", id)
		}
		if exp.Section == "" || exp.Description == "" {
			t.Fatalf("%q missing section/description", id)
		}
	}
}
