package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
	"repro/internal/version"
)

// SeedRange is the campaign seed convention: Count consecutive seeds starting
// at Base (Base, Base+1, ..., Base+Count-1).
type SeedRange struct {
	Base  int64 `json:"base"`
	Count int   `json:"count"`
}

// Seeds expands the range.
func (s SeedRange) Seeds() []int64 {
	out := make([]int64, 0, s.Count)
	for i := 0; i < s.Count; i++ {
		out = append(out, s.Base+int64(i))
	}
	return out
}

func (s SeedRange) String() string {
	if s.Count == 1 {
		return fmt.Sprintf("seed %d", s.Base)
	}
	return fmt.Sprintf("seeds %d..%d", s.Base, s.Base+int64(s.Count)-1)
}

// Options configures a campaign over one experiment.
type Options struct {
	// Seeds is the seed range to fan out over.
	Seeds SeedRange
	// Parallel bounds the worker pool (clamped to [1, Seeds.Count]).
	Parallel int
	// Params is the per-run parameter template; Seed is overridden per seed
	// and zero fields are filled from the experiment defaults.
	Params Params
	// SeedFilter, when non-nil, restricts the campaign to the seeds it
	// accepts — the seam sharded sweeps partition the cube through. The
	// result keeps the full Seeds range as metadata; PerSeed carries only
	// the accepted seeds, and a filter that accepts none yields an empty
	// (not failed) result so every shard can report every cell.
	SeedFilter func(int64) bool
}

// SeedRun is the per-seed record of a campaign.
type SeedRun struct {
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics"`
	// Timeseries is the downsampled per-tick series when the producing
	// experiment sampled one (sweeps with SampleEvery set).
	Timeseries []TimePoint `json:"timeseries,omitempty"`
	// StoppedAt is the virtual time an early-stop predicate ended this run,
	// 0 when it ran to the full duration.
	StoppedAt time.Duration `json:"stoppedAtNs,omitempty"`
}

// Aggregate summarises one metric across all seeds of a campaign. CI95Lo/Hi
// use the normal approximation mean ± 1.96·s/√n with the sample standard
// deviation s; with a single seed the interval collapses to the mean.
type Aggregate struct {
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CI95Lo float64 `json:"ci95Lo"`
	CI95Hi float64 `json:"ci95Hi"`
}

// Result is the outcome of one experiment campaigned over a seed range.
// Version heads the record: every exported result names the engine version
// that produced it, so archived artifacts and cache entries stay traceable.
type Result struct {
	Version      string      `json:"version"`
	ExperimentID string      `json:"experimentId"`
	Section      string      `json:"section,omitempty"`
	Description  string      `json:"description,omitempty"`
	Params       Params      `json:"params"`
	Seeds        SeedRange   `json:"seeds"`
	PerSeed      []SeedRun   `json:"perSeed"`
	Aggregates   []Aggregate `json:"aggregates"`

	// Outcomes holds the full per-seed artifacts (tables/figures), ordered
	// like PerSeed. Excluded from JSON: the JSON export is the metric record.
	Outcomes []Outcome `json:"-"`
}

// Run fans exp out over the seed range with a bounded worker pool and
// aggregates the per-seed metrics. The per-seed result order is the seed
// order regardless of scheduling, so output is independent of Parallel.
//
// The context cancels the campaign: workers stop claiming seeds once it
// fires, in-flight runs receive it through exp.Run (simulation-backed
// experiments stop between control ticks), and after the pool drains Run
// returns ctx.Err(). A context that never fires yields byte-identical
// results to an uncancellable run.
func Run(ctx context.Context, exp Experiment, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	seeds := opts.Seeds.Seeds()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("campaign %s: empty seed range", exp.ID)
	}
	if exp.SeedIndependent {
		// One run tells the whole story; n=1 in the aggregate is honest.
		seeds = seeds[:1]
		opts.Seeds = SeedRange{Base: seeds[0], Count: 1}
	}
	if opts.SeedFilter != nil {
		kept := make([]int64, 0, len(seeds))
		for _, s := range seeds {
			if opts.SeedFilter(s) {
				kept = append(kept, s)
			}
		}
		seeds = kept
		if len(seeds) == 0 {
			// Every seed of this cell hashes to another shard: an empty
			// slice is a valid answer, not a failure.
			return &Result{
				Version:      version.Engine,
				ExperimentID: exp.ID,
				Section:      exp.Section,
				Description:  exp.Description,
				Params:       opts.Params.WithDefaults(exp.Defaults),
				Seeds:        opts.Seeds,
				Aggregates:   aggregate(nil),
			}, nil
		}
	}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	params := opts.Params.WithDefaults(exp.Defaults)

	type slot struct {
		out Outcome
		err error
	}
	slots := make([]slot, len(seeds))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//worksim:tickloop
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(seeds) {
					return
				}
				p := params
				p.Seed = seeds[i]
				out, err := exp.Run(ctx, p)
				slots[i] = slot{out: out, err: err}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The pool has drained; partial per-seed results are discarded so a
		// cancelled campaign can never be mistaken for a completed one.
		return nil, fmt.Errorf("campaign %s: %w", exp.ID, err)
	}

	res := &Result{
		Version:      version.Engine,
		ExperimentID: exp.ID,
		Section:      exp.Section,
		Description:  exp.Description,
		Params:       params,
		Seeds:        opts.Seeds,
	}
	for i, s := range slots {
		if s.err != nil {
			return nil, fmt.Errorf("campaign %s seed %d: %w", exp.ID, seeds[i], s.err)
		}
		res.PerSeed = append(res.PerSeed, SeedRun{
			Seed:       seeds[i],
			Metrics:    s.out.Metrics,
			Timeseries: s.out.Timeseries,
			StoppedAt:  s.out.StoppedAt,
		})
		res.Outcomes = append(res.Outcomes, s.out)
	}
	res.Aggregates = aggregate(res.PerSeed)
	return res, nil
}

// aggregate computes per-metric summaries over the union of metric keys,
// sorted by metric name for deterministic output.
func aggregate(runs []SeedRun) []Aggregate {
	byMetric := make(map[string][]float64)
	for _, r := range runs {
		for k, v := range r.Metrics {
			byMetric[k] = append(byMetric[k], v)
		}
	}
	names := make([]string, 0, len(byMetric))
	for k := range byMetric {
		names = append(names, k)
	}
	sort.Strings(names)

	out := make([]Aggregate, 0, len(names))
	for _, name := range names {
		vs := byMetric[name]
		a := Aggregate{Metric: name, N: len(vs), Min: math.Inf(1), Max: math.Inf(-1)}
		var sum float64
		for _, v := range vs {
			sum += v
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
		}
		a.Mean = sum / float64(len(vs))
		if len(vs) > 1 {
			var ss float64
			for _, v := range vs {
				d := v - a.Mean
				ss += d * d
			}
			a.Stddev = math.Sqrt(ss / float64(len(vs)-1))
		}
		half := 1.96 * a.Stddev / math.Sqrt(float64(len(vs)))
		a.CI95Lo = a.Mean - half
		a.CI95Hi = a.Mean + half
		out = append(out, a)
	}
	return out
}

// Table renders the aggregate summary as a report.Table.
func (r *Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("campaign %s (%s): %s, n=%d",
			r.ExperimentID, r.Section, r.Seeds, r.Seeds.Count),
		"metric", "n", "mean", "stddev", "min", "max", "ci95_lo", "ci95_hi")
	for _, a := range r.Aggregates {
		t.AddRow(a.Metric, a.N, a.Mean, a.Stddev, a.Min, a.Max, a.CI95Lo, a.CI95Hi)
	}
	return t
}

// JSON renders the result as indented JSON. Map keys marshal sorted, and no
// wall-clock data is included, so the export is byte-reproducible for a fixed
// seed set.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunAll campaigns each experiment in turn over the same seed range. The
// per-experiment fan-out is parallel; experiments run sequentially so their
// summary tables stream in a stable order. A fired context aborts between
// (and inside) experiments with ctx.Err().
func RunAll(ctx context.Context, exps []Experiment, opts Options) ([]*Result, error) {
	out := make([]*Result, 0, len(exps))
	for _, e := range exps {
		res, err := Run(ctx, e, opts)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
