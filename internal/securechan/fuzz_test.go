package securechan

import (
	"bytes"
	"testing"
)

// FuzzSealOpen is the differential fuzz harness over the record layer. For
// every fuzzed payload it checks, on a pooled and an unpooled channel pair in
// lockstep:
//
//  1. the pooled fast path and the unpooled reference path produce
//     byte-identical records (the optimisation cannot change the wire format),
//  2. flipping any single bit of the record — sequence header (which is both
//     the AAD and the nonce source) or GCM ciphertext/tag — fails
//     authentication with an error, never a panic, and never commits receiver
//     state,
//  3. after the rejected forgery the genuine record still opens to the exact
//     payload, and a follow-up record round-trips, on both paths.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte("status forwarder-1 pos=12.5,88.0"), uint16(0), uint8(0))
	f.Add([]byte{}, uint16(3), uint8(7))     // empty payload, header flip
	f.Add([]byte{0xff}, uint16(8), uint8(0)) // first ciphertext byte
	f.Add(bytes.Repeat([]byte{0xa5}, 300), uint16(200), uint8(4))
	f.Add([]byte("x"), uint16(65535), uint8(255)) // flip position wraps

	f.Fuzz(func(t *testing.T, payload []byte, flipIdx uint16, flipBit uint8) {
		// The unpooled twin must share the pooled pair's session keys, and a
		// second handshake would not reproduce them: Go's X25519 keygen
		// deliberately consumes a coin-flip byte from its entropy source
		// (randutil.MaybeReadByte), so ephemeral keys differ run to run.
		// Forking the established channels shares the keys exactly — and
		// puts Fork itself under the fuzzer.
		pooled := handshakePair(t, Options{})
		upInit, err := pooled.init.Fork()
		if err != nil {
			t.Fatalf("fork initiator: %v", err)
		}
		upResp, err := pooled.resp.Fork()
		if err != nil {
			t.Fatalf("fork responder: %v", err)
		}
		upInit.opts.Unpooled = true
		upResp.opts.Unpooled = true
		unpooled := pair{init: upInit, resp: upResp}

		seal := func() []byte {
			recP, err := pooled.init.Seal(payload)
			if err != nil {
				t.Fatalf("pooled Seal: %v", err)
			}
			recU, err := unpooled.init.Seal(payload)
			if err != nil {
				t.Fatalf("unpooled Seal: %v", err)
			}
			if !bytes.Equal(recP, recU) {
				t.Fatalf("pooled and unpooled records differ:\n  pooled   %x\n  unpooled %x", recP, recU)
			}
			// recP aliases the pooled record buffer; copy to retain.
			return append([]byte(nil), recP...)
		}
		open := func(rec []byte) {
			ptP, err := pooled.resp.Open(rec)
			if err != nil {
				t.Fatalf("pooled Open: %v", err)
			}
			ptU, err := unpooled.resp.Open(rec)
			if err != nil {
				t.Fatalf("unpooled Open: %v", err)
			}
			if !bytes.Equal(ptP, payload) || !bytes.Equal(ptU, payload) {
				t.Fatalf("round-trip mismatch:\n  payload  %x\n  pooled   %x\n  unpooled %x", payload, ptP, ptU)
			}
		}

		rec := seal()

		// Forge: flip one bit anywhere in the record. The 8-byte header is
		// the AAD and the nonce source, the rest is GCM ciphertext + tag, so
		// every position must break authentication.
		mut := append([]byte(nil), rec...)
		idx := int(flipIdx) % len(mut)
		mut[idx] ^= 1 << (flipBit % 8)
		if pt, err := pooled.resp.Open(mut); err == nil {
			t.Fatalf("pooled Open accepted a record with bit %d of byte %d flipped: %x", flipBit%8, idx, pt)
		}
		if pt, err := unpooled.resp.Open(mut); err == nil {
			t.Fatalf("unpooled Open accepted a record with bit %d of byte %d flipped: %x", flipBit%8, idx, pt)
		}

		// The rejected forgery must not have perturbed receiver state: the
		// genuine record still opens, and the channel keeps working for the
		// next record.
		open(rec)
		open(seal())
	})
}
