package securechan

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pki"
	"repro/internal/rng"
)

type pair struct {
	init, resp *Channel
	ca         *pki.CA
}

func handshakePair(t *testing.T, opts Options) pair {
	t.Helper()
	r := rng.New(42)
	ca, err := pki.NewCA("site-ca", r.Derive("ca"))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	a, err := ca.Issue("forwarder", pki.RoleMachine, 0, time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	b, err := ca.Issue("coordinator", pki.RoleCoordinator, 0, time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	v := pki.NewVerifier(ca.Cert(), nil)
	optsA, optsB := opts, opts
	optsA.Rand = r.Derive("a")
	optsB.Rand = r.Derive("b")
	p := pair{
		init: NewInitiator(a, v, optsA),
		resp: NewResponder(b, v, optsB),
		ca:   ca,
	}
	runHandshake(t, p)
	return p
}

func runHandshake(t *testing.T, p pair) {
	t.Helper()
	m1, err := p.init.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	m2, err := p.resp.HandleHandshake(m1)
	if err != nil {
		t.Fatalf("responder HandleHandshake: %v", err)
	}
	m3, err := p.init.HandleHandshake(m2)
	if err != nil {
		t.Fatalf("initiator HandleHandshake: %v", err)
	}
	if _, err := p.resp.HandleHandshake(m3); err != nil {
		t.Fatalf("responder finish: %v", err)
	}
	if !p.init.Established() || !p.resp.Established() {
		t.Fatal("channel not established after handshake")
	}
}

func TestHandshakeAndRoundTrip(t *testing.T) {
	p := handshakePair(t, Options{})
	msg := []byte("position report: 12.5, 48.2")
	rec, err := p.init.Seal(msg)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := p.resp.Open(rec)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip = %q, want %q", got, msg)
	}
	// Reverse direction.
	rec2, err := p.resp.Seal([]byte("ack"))
	if err != nil {
		t.Fatalf("Seal reverse: %v", err)
	}
	got2, err := p.init.Open(rec2)
	if err != nil {
		t.Fatalf("Open reverse: %v", err)
	}
	if string(got2) != "ack" {
		t.Fatalf("reverse = %q", got2)
	}
}

func TestPeerCertExposed(t *testing.T) {
	p := handshakePair(t, Options{})
	cert, ok := p.init.PeerCert()
	if !ok || cert.Subject != "coordinator" {
		t.Fatalf("initiator peer = %v/%v, want coordinator", cert.Subject, ok)
	}
	cert, ok = p.resp.PeerCert()
	if !ok || cert.Subject != "forwarder" {
		t.Fatalf("responder peer = %v/%v, want forwarder", cert.Subject, ok)
	}
}

func TestReplayRejected(t *testing.T) {
	p := handshakePair(t, Options{})
	rec, err := p.init.Seal([]byte("cmd"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := p.resp.Open(rec); err != nil {
		t.Fatalf("first Open: %v", err)
	}
	if _, err := p.resp.Open(rec); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
	if p.resp.Stats().ReplaysRejected != 1 {
		t.Fatalf("ReplaysRejected = %d, want 1", p.resp.Stats().ReplaysRejected)
	}
}

func TestDropsToleratedReplaysNot(t *testing.T) {
	p := handshakePair(t, Options{})
	var recs [][]byte
	for i := 0; i < 5; i++ {
		rec, err := p.init.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		// Seal's result aliases the pooled record buffer; copy to retain.
		recs = append(recs, append([]byte(nil), rec...))
	}
	// Deliver 0, skip 1-2 (lost), deliver 3; then replay 1 (stale).
	if _, err := p.resp.Open(recs[0]); err != nil {
		t.Fatalf("Open 0: %v", err)
	}
	if _, err := p.resp.Open(recs[3]); err != nil {
		t.Fatalf("Open 3 after drops: %v", err)
	}
	if _, err := p.resp.Open(recs[1]); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale record err = %v, want ErrReplay", err)
	}
}

func TestTamperedRecordFails(t *testing.T) {
	p := handshakePair(t, Options{})
	rec, err := p.init.Seal([]byte("stop"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	rec[len(rec)-1] ^= 0xff
	if _, err := p.resp.Open(rec); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("tamper err = %v, want ErrDecrypt", err)
	}
	if p.resp.Stats().DecryptFailures != 1 {
		t.Fatalf("DecryptFailures = %d, want 1", p.resp.Stats().DecryptFailures)
	}
}

func TestSealBeforeEstablished(t *testing.T) {
	r := rng.New(1)
	ca, _ := pki.NewCA("ca", r.Derive("ca"))
	id, _ := ca.Issue("m", pki.RoleMachine, 0, time.Hour)
	c := NewInitiator(id, pki.NewVerifier(ca.Cert(), nil), Options{Rand: r})
	if _, err := c.Seal([]byte("x")); !errors.Is(err, ErrNotEstablished) {
		t.Fatalf("err = %v, want ErrNotEstablished", err)
	}
	if _, err := c.Open([]byte("xxxxxxxxxx")); !errors.Is(err, ErrNotEstablished) {
		t.Fatalf("err = %v, want ErrNotEstablished", err)
	}
}

func TestUntrustedPeerRejected(t *testing.T) {
	r := rng.New(7)
	ca, _ := pki.NewCA("site-ca", r.Derive("ca"))
	rogueCA, _ := pki.NewCA("rogue", r.Derive("rogue"))
	legit, _ := ca.Issue("coordinator", pki.RoleCoordinator, 0, time.Hour)
	impostor, _ := rogueCA.Issue("forwarder", pki.RoleMachine, 0, time.Hour)

	v := pki.NewVerifier(ca.Cert(), nil)
	init := NewInitiator(impostor, pki.NewVerifier(rogueCA.Cert(), nil), Options{Rand: r.Derive("a")})
	resp := NewResponder(legit, v, Options{Rand: r.Derive("b")})

	m1, err := init.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := resp.HandleHandshake(m1); !errors.Is(err, ErrPeerAuth) {
		t.Fatalf("err = %v, want ErrPeerAuth", err)
	}
}

func TestRevokedPeerRejected(t *testing.T) {
	r := rng.New(9)
	ca, _ := pki.NewCA("site-ca", r.Derive("ca"))
	a, _ := ca.Issue("forwarder", pki.RoleMachine, 0, time.Hour)
	b, _ := ca.Issue("coordinator", pki.RoleCoordinator, 0, time.Hour)
	ca.Revoke(a.Cert.Serial)
	v := pki.NewVerifier(ca.Cert(), ca.CRL())

	init := NewInitiator(a, v, Options{Rand: r.Derive("a")})
	resp := NewResponder(b, v, Options{Rand: r.Derive("b")})
	m1, err := init.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := resp.HandleHandshake(m1); !errors.Is(err, ErrPeerAuth) {
		t.Fatalf("err = %v, want ErrPeerAuth", err)
	}
}

func TestMITMSubstitutedEphemeralFails(t *testing.T) {
	// A classic MITM swaps the server hello for its own. Without a matching
	// transcript signature from a *trusted* certificate, the initiator must
	// reject it. We simulate by handing the initiator a server hello from a
	// different handshake (signature over a different transcript).
	r := rng.New(13)
	ca, _ := pki.NewCA("site-ca", r.Derive("ca"))
	a, _ := ca.Issue("forwarder", pki.RoleMachine, 0, time.Hour)
	b, _ := ca.Issue("coordinator", pki.RoleCoordinator, 0, time.Hour)
	v := pki.NewVerifier(ca.Cert(), nil)

	init1 := NewInitiator(a, v, Options{Rand: r.Derive("a1")})
	resp1 := NewResponder(b, v, Options{Rand: r.Derive("b1")})
	init2 := NewInitiator(a, v, Options{Rand: r.Derive("a2")})
	resp2 := NewResponder(b, v, Options{Rand: r.Derive("b2")})

	m1a, _ := init1.Start()
	m1b, _ := init2.Start()
	if _, err := resp1.HandleHandshake(m1a); err != nil {
		t.Fatalf("resp1: %v", err)
	}
	m2b, err := resp2.HandleHandshake(m1b)
	if err != nil {
		t.Fatalf("resp2: %v", err)
	}
	// Cross-feed: init1 receives the hello meant for init2's session.
	if _, err := init1.HandleHandshake(m2b); !errors.Is(err, ErrPeerAuth) {
		t.Fatalf("cross-session hello err = %v, want ErrPeerAuth", err)
	}
}

func TestRekeyRatchet(t *testing.T) {
	p := handshakePair(t, Options{RekeyInterval: 4})
	for i := 0; i < 20; i++ {
		rec, err := p.init.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatalf("Seal %d: %v", i, err)
		}
		got, err := p.resp.Open(rec)
		if err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
	if p.init.Stats().Rekeys == 0 {
		t.Fatal("expected rekeys with interval 4 over 20 records")
	}
}

func TestRekeyAcrossDroppedBoundary(t *testing.T) {
	p := handshakePair(t, Options{RekeyInterval: 4})
	var recs [][]byte
	for i := 0; i < 12; i++ {
		rec, err := p.init.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		// Seal's result aliases the pooled record buffer; copy to retain.
		recs = append(recs, append([]byte(nil), rec...))
	}
	// Drop everything up to record 9 (two epoch boundaries crossed silently).
	got, err := p.resp.Open(recs[9])
	if err != nil {
		t.Fatalf("Open across epochs: %v", err)
	}
	if got[0] != 9 {
		t.Fatalf("payload = %d, want 9", got[0])
	}
}

func TestHandshakeStateErrors(t *testing.T) {
	p := handshakePair(t, Options{})
	// Further handshake messages on an established channel must fail.
	if _, err := p.init.HandleHandshake([]byte("{}")); !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
	// Starting a responder must fail.
	if _, err := p.resp.Start(); !errors.Is(err, ErrHandshake) {
		t.Fatalf("responder Start err = %v, want ErrHandshake", err)
	}
}

func TestGarbageHandshakeMessage(t *testing.T) {
	r := rng.New(21)
	ca, _ := pki.NewCA("ca", r.Derive("ca"))
	b, _ := ca.Issue("coordinator", pki.RoleCoordinator, 0, time.Hour)
	resp := NewResponder(b, pki.NewVerifier(ca.Cert(), nil), Options{Rand: r})
	if _, err := resp.HandleHandshake([]byte("not json")); !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
}

func TestPropertySealOpenRoundTrip(t *testing.T) {
	p := handshakePair(t, Options{})
	f := func(payload []byte) bool {
		rec, err := p.init.Seal(payload)
		if err != nil {
			return false
		}
		got, err := p.resp.Open(rec)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHKDFLength(t *testing.T) {
	for _, n := range []int{1, 16, 32, 33, 64, 100} {
		out := hkdf([]byte("secret"), []byte("salt"), []byte("info"), n)
		if len(out) != n {
			t.Fatalf("hkdf length = %d, want %d", len(out), n)
		}
	}
	a := hkdf([]byte("s"), []byte("x"), []byte("i"), 32)
	b := hkdf([]byte("s"), []byte("y"), []byte("i"), 32)
	if bytes.Equal(a, b) {
		t.Fatal("hkdf ignores salt")
	}
}
