package securechan

import (
	"testing"
)

// TestSealOpenZeroAllocs locks the pooled record layer at zero heap
// allocations per steady-state Seal and per steady-state Open, mirroring the
// worksite tick-loop lock: a regression fails `go test` instead of waiting
// for someone to read the securechan-seal/open benchmarks.
func TestSealOpenZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	p := handshakePair(t, Options{})
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}

	// Warm both pooled record buffers to steady-state capacity.
	rec, err := p.init.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.resp.Open(rec); err != nil {
		t.Fatal(err)
	}

	// AllocsPerRun calls the function once extra for warm-up; every call
	// seals one record, and the paired receiver opens it inside the same
	// measured call so both directions are locked together. The record is
	// consumed before the next Seal overwrites the pooled buffer.
	avg := testing.AllocsPerRun(100, func() {
		rec, err := p.init.Seal(payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.resp.Open(rec); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Seal+Open allocates: %v allocs/op, want 0", avg)
	}
}
