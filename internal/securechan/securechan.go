// Package securechan implements the authenticated, encrypted channel used for
// all machine-to-machine communication on the secured worksite.
//
// The paper's pathway requires that "attacks on communication" (Section
// III-B) cannot inject or replay commands: every link is mutually
// authenticated against the worksite PKI and encrypted. The handshake is a
// SIGMA-style 3-message exchange (X25519 ephemeral ECDH, certificate
// signatures over the transcript, HKDF key derivation) and the record layer
// is AES-256-GCM with monotonic sequence numbers (replay rejection) and
// periodic key ratcheting.
//
// The package is transport-agnostic: handshake messages and records are byte
// slices the caller moves over netsim data frames.
package securechan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/pki"
)

// Channel errors, matchable with errors.Is.
var (
	ErrNotEstablished = errors.New("channel not established")
	ErrHandshake      = errors.New("handshake failure")
	ErrPeerAuth       = errors.New("peer authentication failed")
	ErrReplay         = errors.New("record replayed or out of order")
	ErrDecrypt        = errors.New("record decryption failed")
)

// DefaultRekeyInterval is the number of records after which the traffic keys
// ratchet forward.
const DefaultRekeyInterval = 1 << 12

// Options configures a channel endpoint.
type Options struct {
	// Rand supplies ephemeral key material; nil means crypto/rand.
	Rand io.Reader
	// RekeyInterval overrides DefaultRekeyInterval when positive.
	RekeyInterval uint64
	// Now returns the current virtual time for certificate validation; nil
	// means time zero.
	Now func() time.Duration
	// Unpooled disables the record-buffer and cipher reuse of the steady
	// state: every Seal/Open rebuilds the AEAD from the traffic key and
	// returns a freshly allocated record/plaintext. It exists for the
	// differential tests that prove the pooled fast path produces the exact
	// bytes of the allocation-per-record reference implementation.
	Unpooled bool
}

// Stats counts record-layer events.
type Stats struct {
	RecordsSealed   int64 `json:"recordsSealed"`
	RecordsOpened   int64 `json:"recordsOpened"`
	ReplaysRejected int64 `json:"replaysRejected"`
	DecryptFailures int64 `json:"decryptFailures"`
	Rekeys          int64 `json:"rekeys"`
}

type state int

const (
	stateIdle state = iota + 1
	stateAwaitServerHello
	stateAwaitFinished
	stateEstablished
	stateFailed
)

// Channel is one endpoint of a secure session. It is not safe for concurrent
// use; the simulation is single-threaded per scheduler.
type Channel struct {
	ident     pki.Identity
	verifier  *pki.Verifier
	initiator bool
	opts      Options

	st         state
	ephPriv    *ecdh.PrivateKey
	transcript []byte
	peerCert   pki.Certificate

	txKey, rxKey     []byte
	txSeq, rxSeq     uint64
	rxEpoch, txEpoch uint64
	rekeyEvery       uint64

	// Cached record-layer state: the AEADs for the current tx/rx key epochs
	// and the pooled buffers the steady state reuses record over record.
	// Traffic keys are never mutated in place (ratchet replaces the slice),
	// so the cached cipher is valid exactly until its epoch advances.
	txAEAD, rxAEAD cipher.AEAD
	sealBuf        []byte   // previous sealed record; overwritten by the next Seal
	openBuf        []byte   // previous opened plaintext; overwritten by the next Open
	nonceBuf       [12]byte // per-record GCM nonce scratch

	stats Stats
}

// NewInitiator creates the initiating endpoint of a channel.
func NewInitiator(ident pki.Identity, verifier *pki.Verifier, opts Options) *Channel {
	return newChannel(ident, verifier, true, opts)
}

// NewResponder creates the responding endpoint of a channel.
func NewResponder(ident pki.Identity, verifier *pki.Verifier, opts Options) *Channel {
	return newChannel(ident, verifier, false, opts)
}

func newChannel(ident pki.Identity, verifier *pki.Verifier, initiator bool, opts Options) *Channel {
	if opts.Rand == nil {
		opts.Rand = rand.Reader
	}
	interval := opts.RekeyInterval
	if interval == 0 {
		interval = DefaultRekeyInterval
	}
	return &Channel{
		ident:      ident,
		verifier:   verifier,
		initiator:  initiator,
		opts:       opts,
		st:         stateIdle,
		rekeyEvery: interval,
	}
}

// Established reports whether the channel is ready for Seal/Open.
func (c *Channel) Established() bool { return c.st == stateEstablished }

// PeerCert returns the authenticated peer certificate once established.
func (c *Channel) PeerCert() (pki.Certificate, bool) {
	if c.st != stateEstablished {
		return pki.Certificate{}, false
	}
	return c.peerCert, true
}

// Stats returns a copy of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

type helloMsg struct {
	Cert  json.RawMessage `json:"cert"`
	Eph   []byte          `json:"eph"`
	Nonce []byte          `json:"nonce"`
	Sig   []byte          `json:"sig,omitempty"`
}

type finishedMsg struct {
	Sig []byte `json:"sig"`
}

// Start produces the ClientHello. Only valid on an idle initiator.
func (c *Channel) Start() ([]byte, error) {
	if !c.initiator || c.st != stateIdle {
		return nil, fmt.Errorf("%w: start in state %d", ErrHandshake, c.st)
	}
	msg, err := c.makeHello(nil)
	if err != nil {
		return nil, err
	}
	c.transcript = append(c.transcript, msg...)
	c.st = stateAwaitServerHello
	return msg, nil
}

// HandleHandshake advances the handshake with an inbound message, returning
// the next outbound message (nil when the handshake has nothing further to
// send from this side).
func (c *Channel) HandleHandshake(msg []byte) ([]byte, error) {
	switch {
	case !c.initiator && c.st == stateIdle:
		return c.respondToClientHello(msg)
	case c.initiator && c.st == stateAwaitServerHello:
		return c.finishAsInitiator(msg)
	case !c.initiator && c.st == stateAwaitFinished:
		return nil, c.verifyFinished(msg)
	default:
		return nil, fmt.Errorf("%w: unexpected message in state %d", ErrHandshake, c.st)
	}
}

func (c *Channel) makeHello(sig []byte) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(c.opts.Rand)
	if err != nil {
		return nil, fmt.Errorf("%w: ephemeral key: %v", ErrHandshake, err)
	}
	c.ephPriv = eph
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(c.opts.Rand, nonce); err != nil {
		return nil, fmt.Errorf("%w: nonce: %v", ErrHandshake, err)
	}
	certJSON, err := c.ident.Cert.Marshal()
	if err != nil {
		return nil, fmt.Errorf("%w: marshal cert: %v", ErrHandshake, err)
	}
	return json.Marshal(helloMsg{Cert: certJSON, Eph: eph.PublicKey().Bytes(), Nonce: nonce, Sig: sig})
}

func (c *Channel) respondToClientHello(msg []byte) ([]byte, error) {
	clientHello, clientCert, err := c.parseHello(msg)
	if err != nil {
		c.st = stateFailed
		return nil, err
	}
	c.peerCert = clientCert
	c.transcript = append(c.transcript, msg...)

	// Build our hello without signature first, sign transcript+core, rebuild.
	core, err := c.makeHello(nil)
	if err != nil {
		c.st = stateFailed
		return nil, err
	}
	h := sha256.Sum256(append(append([]byte{}, c.transcript...), core...))
	sig := c.ident.Sign(h[:])
	var serverHello helloMsg
	if err := json.Unmarshal(core, &serverHello); err != nil {
		c.st = stateFailed
		return nil, fmt.Errorf("%w: internal: %v", ErrHandshake, err)
	}
	serverHello.Sig = sig
	out, err := json.Marshal(serverHello)
	if err != nil {
		c.st = stateFailed
		return nil, fmt.Errorf("%w: marshal server hello: %v", ErrHandshake, err)
	}
	// The transcript the client signs covers msg1 + the server core (the
	// signed portion), not the signature itself.
	c.transcript = append(c.transcript, core...)

	if err := c.deriveKeys(clientHello.Eph, clientHello.Nonce, serverHello.Nonce); err != nil {
		c.st = stateFailed
		return nil, err
	}
	c.st = stateAwaitFinished
	return out, nil
}

func (c *Channel) finishAsInitiator(msg []byte) ([]byte, error) {
	serverHello, serverCert, err := c.parseHello(msg)
	if err != nil {
		c.st = stateFailed
		return nil, err
	}
	// Reconstruct the signed core: the server hello without its signature.
	core, err := json.Marshal(helloMsg{Cert: serverHello.Cert, Eph: serverHello.Eph, Nonce: serverHello.Nonce})
	if err != nil {
		c.st = stateFailed
		return nil, fmt.Errorf("%w: internal: %v", ErrHandshake, err)
	}
	h := sha256.Sum256(append(append([]byte{}, c.transcript...), core...))
	if !pki.VerifySignature(serverCert, h[:], serverHello.Sig) {
		c.st = stateFailed
		return nil, fmt.Errorf("%w: server transcript signature", ErrPeerAuth)
	}
	c.peerCert = serverCert
	c.transcript = append(c.transcript, core...)

	// Client hello carried our nonce; recover it from the transcript head.
	var clientHello helloMsg
	// Transcript = msg1 || core; msg1 length unknown here, so keep our nonce
	// from Start via ephPriv? Instead re-derive from stored fields.
	if err := json.Unmarshal(c.transcript[:len(c.transcript)-len(core)], &clientHello); err != nil {
		c.st = stateFailed
		return nil, fmt.Errorf("%w: internal transcript: %v", ErrHandshake, err)
	}
	if err := c.deriveKeys(serverHello.Eph, clientHello.Nonce, serverHello.Nonce); err != nil {
		c.st = stateFailed
		return nil, err
	}

	fh := sha256.Sum256(append(append([]byte{}, c.transcript...), []byte("client-finished")...))
	fin, err := json.Marshal(finishedMsg{Sig: c.ident.Sign(fh[:])})
	if err != nil {
		c.st = stateFailed
		return nil, fmt.Errorf("%w: marshal finished: %v", ErrHandshake, err)
	}
	c.st = stateEstablished
	return fin, nil
}

func (c *Channel) verifyFinished(msg []byte) error {
	var fin finishedMsg
	if err := json.Unmarshal(msg, &fin); err != nil {
		c.st = stateFailed
		return fmt.Errorf("%w: parse finished: %v", ErrHandshake, err)
	}
	fh := sha256.Sum256(append(append([]byte{}, c.transcript...), []byte("client-finished")...))
	if !pki.VerifySignature(c.peerCert, fh[:], fin.Sig) {
		c.st = stateFailed
		return fmt.Errorf("%w: client finished signature", ErrPeerAuth)
	}
	c.st = stateEstablished
	return nil
}

func (c *Channel) parseHello(msg []byte) (helloMsg, pki.Certificate, error) {
	var hello helloMsg
	if err := json.Unmarshal(msg, &hello); err != nil {
		return helloMsg{}, pki.Certificate{}, fmt.Errorf("%w: parse hello: %v", ErrHandshake, err)
	}
	cert, err := pki.ParseCertificate(hello.Cert)
	if err != nil {
		return helloMsg{}, pki.Certificate{}, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	now := time.Duration(0)
	if c.opts.Now != nil {
		now = c.opts.Now()
	}
	if err := c.verifier.Verify(cert, now); err != nil {
		return helloMsg{}, pki.Certificate{}, fmt.Errorf("%w: %v", ErrPeerAuth, err)
	}
	return hello, cert, nil
}

func (c *Channel) deriveKeys(peerEph, initNonce, respNonce []byte) error {
	peer, err := ecdh.X25519().NewPublicKey(peerEph)
	if err != nil {
		return fmt.Errorf("%w: peer ephemeral: %v", ErrHandshake, err)
	}
	secret, err := c.ephPriv.ECDH(peer)
	if err != nil {
		return fmt.Errorf("%w: ecdh: %v", ErrHandshake, err)
	}
	salt := append(append([]byte{}, initNonce...), respNonce...)
	keys := hkdf(secret, salt, []byte("forestsec-channel-v1"), 64)
	i2r, r2i := keys[:32], keys[32:]
	if c.initiator {
		c.txKey, c.rxKey = i2r, r2i
	} else {
		c.txKey, c.rxKey = r2i, i2r
	}
	if !c.opts.Unpooled {
		var err error
		if c.txAEAD, err = newAEAD(c.txKey); err != nil {
			return err
		}
		if c.rxAEAD, err = newAEAD(c.rxKey); err != nil {
			return err
		}
	}
	return nil
}

// Fork clones an established channel into an independent endpoint with fresh
// sequence numbers, statistics and record buffers. The immutable key material
// and cached ciphers are shared: traffic keys are only ever replaced (the
// ratchet derives a new slice), never mutated, and the AES-GCM AEAD is
// stateless, so concurrent forks cannot interfere. Fork is how batched
// executions reuse one commissioned handshake across many sessions — a forked
// endpoint behaves byte-identically to the endpoint it was forked from at the
// moment the handshake completed.
func (c *Channel) Fork() (*Channel, error) {
	if c.st != stateEstablished {
		return nil, ErrNotEstablished
	}
	if c.txSeq != 0 || c.rxSeq != 0 {
		return nil, fmt.Errorf("%w: fork after traffic (txSeq=%d rxSeq=%d)", ErrHandshake, c.txSeq, c.rxSeq)
	}
	fork := &Channel{
		ident:      c.ident,
		verifier:   c.verifier,
		initiator:  c.initiator,
		opts:       Options{RekeyInterval: c.rekeyEvery, Unpooled: c.opts.Unpooled},
		st:         stateEstablished,
		peerCert:   c.peerCert,
		txKey:      c.txKey,
		rxKey:      c.rxKey,
		rekeyEvery: c.rekeyEvery,
		txAEAD:     c.txAEAD,
		rxAEAD:     c.rxAEAD,
	}
	return fork, nil
}

// Seal encrypts plaintext into a record: [8-byte seq | GCM ciphertext].
//
// The returned slice aliases the channel's pooled record buffer and is valid
// until the next Seal on this channel; callers that retain records across
// seals must copy (the simulator's network adapter copies the payload into
// its own frame storage before transmitting). Under Options.Unpooled every
// record is a fresh allocation instead.
//
//worksim:hotpath
func (c *Channel) Seal(plaintext []byte) ([]byte, error) {
	if c.st != stateEstablished {
		return nil, ErrNotEstablished
	}
	seq := c.txSeq
	c.txSeq++
	if epoch := seq / c.rekeyEvery; epoch > c.txEpoch {
		for c.txEpoch < epoch { // cold rekey loop: runs once per RekeyInterval records
			c.txKey = ratchet(c.txKey)
			c.txEpoch++
			c.stats.Rekeys++
		}
		aead, err := newAEAD(c.txKey)
		if err != nil {
			return nil, err
		}
		c.txAEAD = aead
	}
	if c.opts.Unpooled {
		return c.sealUnpooled(seq, plaintext)
	}
	buf := c.sealBuf[:0]
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	buf = append(buf, hdr[:]...)
	binary.BigEndian.PutUint64(c.nonceBuf[4:], seq)
	record := c.txAEAD.Seal(buf, c.nonceBuf[:], plaintext, buf[:8])
	c.sealBuf = record
	c.stats.RecordsSealed++
	return record, nil
}

// sealUnpooled is the allocation-per-record reference path: rebuild the
// cipher from the traffic key, derive a fresh nonce and return a fresh
// record. The pooled fast path above must produce exactly these bytes —
// FuzzSealOpen holds the two together.
func (c *Channel) sealUnpooled(seq uint64, plaintext []byte) ([]byte, error) {
	aead, err := newAEAD(c.txKey)
	if err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	ct := aead.Seal(nil, recordNonce(seq), plaintext, hdr[:])
	c.stats.RecordsSealed++
	return append(hdr[:], ct...), nil
}

// maxEpochSkip bounds how many key epochs a single record may advance the
// receiver. Without the bound, a forged record with an astronomical sequence
// number would make the receiver ratchet (and desynchronise) its key state —
// a denial-of-service on the channel itself.
const maxEpochSkip = 1 << 10

// Open authenticates and decrypts a record, enforcing strictly increasing
// sequence numbers (drops allowed, replays rejected). Receiver key state is
// only committed after the record authenticates, so forged records cannot
// perturb the channel.
//
// The returned plaintext aliases the channel's pooled buffer and is valid
// until the next Open on this channel; under Options.Unpooled it is a fresh
// allocation instead.
//
//worksim:hotpath
func (c *Channel) Open(record []byte) ([]byte, error) {
	if c.st != stateEstablished {
		return nil, ErrNotEstablished
	}
	if len(record) < 8 {
		c.stats.DecryptFailures++
		return nil, fmt.Errorf("%w: short record", ErrDecrypt) //worksim:allow cold rejection path, runs only on malformed input
	}
	seq := binary.BigEndian.Uint64(record[:8])
	if c.stats.RecordsOpened > 0 && seq < c.rxSeq {
		c.stats.ReplaysRejected++
		return nil, fmt.Errorf("%w: seq %d < %d", ErrReplay, seq, c.rxSeq) //worksim:allow cold rejection path, runs only under replay attack
	}
	epoch := seq / c.rekeyEvery
	if epoch < c.rxEpoch {
		c.stats.ReplaysRejected++
		return nil, fmt.Errorf("%w: epoch %d already ratcheted away", ErrReplay, epoch) //worksim:allow cold rejection path, runs only under replay attack
	}
	if epoch-c.rxEpoch > maxEpochSkip {
		c.stats.DecryptFailures++
		return nil, fmt.Errorf("%w: implausible epoch skip %d", ErrDecrypt, epoch-c.rxEpoch) //worksim:allow cold rejection path, runs only on forged records
	}
	key, aead := c.rxKey, c.rxAEAD
	if epoch > c.rxEpoch || aead == nil {
		// Epoch advance (or unpooled mode): derive the candidate key and
		// cipher transiently; receiver state commits only after the record
		// authenticates, so forged records cannot perturb the channel.
		for e := c.rxEpoch; e < epoch; e++ { // cold rekey loop: runs once per RekeyInterval records
			key = ratchet(key)
		}
		var err error
		aead, err = newAEAD(key)
		if err != nil {
			return nil, err
		}
	}
	var pt []byte
	var err error
	if c.opts.Unpooled {
		pt, err = aead.Open(nil, recordNonce(seq), record[8:], record[:8])
	} else {
		binary.BigEndian.PutUint64(c.nonceBuf[4:], seq)
		pt, err = aead.Open(c.openBuf[:0], c.nonceBuf[:], record[8:], record[:8])
	}
	if err != nil {
		c.stats.DecryptFailures++
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err) //worksim:allow cold rejection path, runs only on tampered records
	}
	if !c.opts.Unpooled {
		c.openBuf = pt
		c.rxAEAD = aead
	}
	c.rxKey, c.rxEpoch = key, epoch
	c.rxSeq = seq + 1
	c.stats.RecordsOpened++
	return pt, nil
}

// newAEAD builds the record cipher for a traffic-key epoch. The steady state
// reuses the cached per-epoch AEAD (txAEAD/rxAEAD), so this runs only at key
// derivation and on epoch ratchets — the construction used to dominate the
// secured record path, and its heap behavior stays pinned by the escape
// budget so it cannot creep back onto the per-record path unnoticed.
//
//worksim:hotpath
func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("record cipher: %w", err) //worksim:allow cold path: AES key sizes are fixed by the handshake, so this never runs in steady state
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("record aead: %w", err) //worksim:allow cold path: GCM over AES never fails for the keys the handshake derives
	}
	return aead, nil
}

// recordNonce derives the per-record GCM nonce from the sequence number.
//
//worksim:hotpath
func recordNonce(seq uint64) []byte {
	nonce := make([]byte, 12) //worksim:allow fixed 12-byte nonce required by the AEAD API; counted in lint/escape_budget.json
	binary.BigEndian.PutUint64(nonce[4:], seq)
	return nonce
}

// ratchet derives the next epoch key one-way, so key compromise does not
// expose earlier traffic.
func ratchet(key []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("forestsec-rekey"))
	return mac.Sum(nil)
}

// hkdf implements HKDF-SHA256 (RFC 5869) extract-and-expand.
func hkdf(secret, salt, info []byte, length int) []byte {
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	var out []byte
	var prev []byte
	for i := byte(1); len(out) < length; i++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(prev)
		exp.Write(info)
		exp.Write([]byte{i})
		prev = exp.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}
