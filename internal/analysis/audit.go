package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// AllowEntry is one //worksim:allow directive resolved against the findings
// it suppresses — a row of the auditable suppression ledger.
type AllowEntry struct {
	// File is the directive's location, relative to the module root.
	File string `json:"file"`
	Line int    `json:"line"`
	// Reason is the directive's mandatory justification text.
	Reason string `json:"reason"`
	// Analyzers lists, sorted and deduplicated, the analyzers whose
	// diagnostics this directive suppresses. Empty means the directive is
	// orphaned: it suppresses nothing and should be deleted.
	Analyzers []string `json:"analyzers"`
	// Suppressed counts the individual diagnostics the directive covers.
	Suppressed int `json:"suppressed"`
}

// AuditReport is the JSON document emitted by `worksimlint -audit`: the
// complete inventory of suppression directives, sorted by (file, line).
type AuditReport struct {
	Version int          `json:"version"`
	Allows  []AllowEntry `json:"allows"`
}

// auditReportVersion is the schema version stamped into the report.
const auditReportVersion = 1

// Audit runs every analyzer with suppression DISABLED, attributes each
// diagnostic to the allow directive covering its line (same line or the
// line above, mirroring normal suppression), and returns the ledger plus
// the failures the audit itself raises: bare directives (no reason) and
// orphaned directives (suppressing nothing). Diagnostics that no directive
// covers are the caller's concern — a normal RunRoot pass reports those.
func Audit(root string, pkgs []*Package, analyzers []*Analyzer) (*AuditReport, []Diagnostic, error) {
	raw, dirs, err := runRaw(root, pkgs, analyzers)
	if err != nil {
		return nil, nil, err
	}
	// One bucket per directive, addressed by file+line.
	type bucket struct {
		analyzers map[string]bool
		count     int
	}
	buckets := make(map[string]*bucket)
	key := func(file string, line int) string { return fmt.Sprintf("%s\x00%d", file, line) }
	var failures []Diagnostic
	for _, d := range raw {
		if d.Analyzer == "allowdirective" {
			failures = append(failures, d) // bare directive: always a failure
			continue
		}
		lines := dirs.allow[d.Pos.Filename]
		if lines == nil {
			continue
		}
		line := 0
		if _, ok := lines[d.Pos.Line]; ok {
			line = d.Pos.Line
		} else if _, ok := lines[d.Pos.Line-1]; ok {
			line = d.Pos.Line - 1
		} else {
			continue
		}
		b := buckets[key(d.Pos.Filename, line)]
		if b == nil {
			b = &bucket{analyzers: make(map[string]bool)}
			buckets[key(d.Pos.Filename, line)] = b
		}
		b.analyzers[d.Analyzer] = true
		b.count++
	}

	report := &AuditReport{Version: auditReportVersion}
	for file, lines := range dirs.allow {
		rel := relFile(root, file)
		for line, reason := range lines {
			entry := AllowEntry{File: rel, Line: line, Reason: reason, Analyzers: []string{}}
			if b := buckets[key(file, line)]; b != nil {
				for a := range b.analyzers {
					entry.Analyzers = append(entry.Analyzers, a)
				}
				sort.Strings(entry.Analyzers)
				entry.Suppressed = b.count
			}
			if entry.Suppressed == 0 {
				failures = append(failures, Diagnostic{
					Analyzer: "allowdirective",
					Pos:      positionAt(file, line),
					Message:  "//worksim:allow suppresses nothing (orphaned): the finding it excused is gone — delete the directive so the ledger stays honest",
				})
			}
			report.Allows = append(report.Allows, entry)
		}
	}
	sort.Slice(report.Allows, func(i, j int) bool {
		a, b := report.Allows[i], report.Allows[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	SortDiagnostics(failures)
	return report, failures, nil
}

// positionAt fabricates a column-less position for directive-level findings.
func positionAt(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	p.Column = 1
	return p
}

// EncodeAuditReport writes the ledger as indented, key-sorted JSON — the
// byte-stable artifact CI uploads.
func EncodeAuditReport(w io.Writer, r *AuditReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
