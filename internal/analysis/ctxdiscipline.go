package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxDiscipline enforces the cancellation contract introduced with the
// worksim façade:
//
//   - exported façade APIs (repro/worksim...) that take a context.Context
//     take it as the first parameter, the Go convention every caller and
//     linter assumes.
//   - exported façade functions containing a statically unbounded loop
//     (`for { ... }` / `for cond { ... }`) are blocking APIs and must accept
//     a leading context.Context, so no public entry point can spin without a
//     cancellation seam.
//   - loops marked //worksim:tickloop — the simulation-advancing loops that
//     may run for millions of iterations — must actually consult their
//     context (ctx.Err() or ctx.Done()) in the loop body. Deleting the
//     per-tick cancellation check turns mid-run cancellation into a no-op;
//     this rule makes that a lint failure instead of a flaky test.
var CtxDiscipline = &Analyzer{
	Name: "ctxdiscipline",
	Doc: "require leading context.Context on exported blocking façade APIs and " +
		"a cancellation check inside every //worksim:tickloop loop",
	Run: runCtxDiscipline,
}

func runCtxDiscipline(pass *Pass) error {
	facade := pass.Path == "repro/worksim" || strings.HasPrefix(pass.Path, "repro/worksim/")
	for _, f := range pass.Files {
		tickLines := directiveEndLines(pass.Fset, f, TickloopDirective)
		if facade {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if ok {
					checkExportedSignature(pass, fn)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			line := pass.Fset.Position(n.Pos()).Line
			if tickLines[line-1] && !containsCtxCheck(pass.Info, body) {
				pass.Reportf(n.Pos(), "loop marked //worksim:tickloop must check cancellation each iteration (ctx.Err() or ctx.Done()); without it mid-run cancellation is a no-op")
			}
			return true
		})
	}
	return nil
}

// checkExportedSignature applies the façade signature rules to one function
// declaration.
func checkExportedSignature(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || !exportedReceiver(fn) || fn.Type.Params == nil {
		return
	}
	ctxAt := -1
	idx := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.Info, field.Type) && ctxAt < 0 {
			ctxAt = idx
		}
		idx += n
	}
	switch {
	case ctxAt > 0:
		pass.Reportf(fn.Pos(), "%s: context.Context must be the first parameter of an exported façade API", fn.Name.Name)
	case ctxAt < 0 && fn.Body != nil && hasUnboundedLoop(fn.Body):
		pass.Reportf(fn.Pos(), "%s: exported façade API contains an unbounded loop but takes no context.Context; blocking entry points need a leading ctx for cancellation", fn.Name.Name)
	}
}

// exportedReceiver reports whether fn is a plain function or a method on an
// exported named type — the combinations that form public API.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// hasUnboundedLoop reports whether the body contains (outside nested
// function literals) a for statement with no init and no post clause — the
// `for {}` / `for cond {}` shapes whose trip count nothing bounds
// statically.
func hasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Init == nil && n.Post == nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsCtxCheck reports whether the loop body consults a context:
// a call to .Err() or .Done() on a context.Context value.
func containsCtxCheck(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return !found
		}
		if isContextValue(info, sel.X) {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether a parameter type expression denotes
// context.Context, by type information when available and syntactically
// otherwise.
func isContextType(info *types.Info, expr ast.Expr) bool {
	if info != nil {
		if tv, ok := info.Types[expr]; ok {
			return isContext(tv.Type)
		}
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// isContextValue reports whether expr is a value of type context.Context.
func isContextValue(info *types.Info, expr ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[expr]
	return ok && isContext(tv.Type)
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// directiveEndLines returns the set of lines on which a comment group
// carrying the given directive ends, so a statement starting on line+1 is
// considered annotated.
func directiveEndLines(fset *token.FileSet, f *ast.File, directive string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		if HasDirective(cg, directive) {
			lines[fset.Position(cg.End()).Line] = true
		}
	}
	return lines
}
