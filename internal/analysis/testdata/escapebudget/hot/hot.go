//worksimtest:importpath repro/internal/fixture/escapehot

// Package escapehot is the escapebudget gate fixture: two annotated hot-path
// functions whose compiler diagnostics the tests synthesize, and an
// unannotated control that must stay outside the budget.
package escapehot

//worksim:hotpath
func Leaky() *int {
	v := 42
	return &v
}

type Codec struct{ scratch []byte }

//worksim:hotpath
func (c *Codec) Encode(b []byte) []byte {
	c.scratch = append(c.scratch[:0], b...)
	return c.scratch
}

func unbudgeted() *int {
	v := 7
	return &v
}
