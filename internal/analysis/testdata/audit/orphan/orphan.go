//worksimtest:importpath repro/internal/fixture/orphan

// Package orphan exercises the -audit failure modes: an allow directive that
// suppresses nothing (orphaned) and a bare directive without a reason. The
// go statement below is untracked so the package also yields one genuinely
// suppressed finding for the ledger.
package orphan

func fire() {}

func spawn() {
	//worksim:allow fixture: deliberate fire-and-forget spawn
	go fire()
}

//worksim:allow fixture: this once excused a finding that has since been fixed
func quiet() {}

//worksim:allow
func bare() {}
