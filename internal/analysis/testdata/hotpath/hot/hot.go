//worksimtest:importpath repro/internal/fixture/hot

// Package hot exercises the hotpath analyzer over an annotated tick
// function, a suppressed pool warm-up and an unannotated control.
package hot

import "fmt"

type state struct {
	scratch []int
	free    []*state
}

func box(v interface{}) { _ = v }

//worksim:hotpath
func (s *state) tick(values []int) {
	s.scratch = s.scratch[:0]
	for _, v := range values {
		s.scratch = append(s.scratch, v) // scratch pattern: clean
	}
	grown := append(values, 1) // want `append outside the scratch pattern`
	_ = grown
	hook := func() {} // want `closure literal in hot path`
	_ = hook
	buf := make([]int, 4) // want `make allocates in hot path`
	_ = buf
}

//worksim:hotpath
func (s *state) emit(n int, pn *int) {
	box(n) // want `boxes the value`
	box(pn)
}

//worksim:hotpath
func label(name string) string {
	msg := name + ":"             // want `string concatenation allocates`
	return fmt.Sprintf("%q", msg) // want `fmt\.Sprintf allocates in hot path`
}

//worksim:hotpath
func (s *state) get() *state {
	if n := len(s.free); n > 0 {
		st := s.free[n-1]
		s.free = s.free[:n-1]
		return st
	}
	return &state{} //worksim:allow fixture: pool warm-up, runs once per capacity step
}

// cold is unannotated: the same constructs pass unflagged.
func cold() []int {
	return append(make([]int, 0, 4), 1)
}
