//worksimtest:importpath repro/internal/fixture/spawn

// Package spawn exercises the gohygiene analyzer: join-tracked goroutines in
// every accepted shape, an allow-suppressed fire-and-forget, and untracked
// spawns that must be reported.
package spawn

import (
	"context"
	"sync"
)

type workGroup struct{ n int }

func (g *workGroup) Add(int) {}
func (g *workGroup) Done()   {}
func (g *workGroup) Wait()   {}

func worker(ctx context.Context) { _ = ctx }
func fire()                      {}

func tracked(ctx context.Context, wg *sync.WaitGroup, g *workGroup, done chan struct{}, results chan int) {
	go worker(ctx) // clean: ctx argument joins the cancellation tree

	go func() { // clean: WaitGroup Done signals completion
		defer wg.Done()
	}()

	go func() { // clean: custom ...Group type counts like sync.WaitGroup
		defer g.Done()
	}()

	go func() { // clean: channel send signals completion
		results <- 1
	}()

	go func() { // clean: close() signals completion
		close(done)
	}()

	go func() { // clean: the closure observes ctx
		<-ctx.Done()
	}()
}

func untracked() {
	go fire() // want `go statement is not join-tracked`

	go func() { // want `go statement is not join-tracked`
		fire()
	}()
}

func deliberate() {
	//worksim:allow fixture: metrics flusher is fire-and-forget by design
	go fire() // clean: suppressed with a reasoned allow
}
