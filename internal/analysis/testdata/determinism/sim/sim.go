//worksimtest:importpath repro/internal/fixture/sim

// Package sim is a determinism fixture: a pretend simulation package that
// reads the wall clock, imports ambient randomness and feeds map iteration
// into output.
package sim

import (
	"fmt"
	"math/rand" // want `ambient randomness breaks reproducibility`
	"time"
)

// Tick reads host time twice on the simulated path.
func Tick() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	_ = rand.Int()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Stamp carries a justified suppression, so no diagnostic may surface.
func Stamp() time.Time {
	return time.Now() //worksim:allow fixture: provenance stamp recorded outside any simulated run
}

// Dump leaks randomized map order straight into printed output.
func Dump(m map[string]int) {
	for k, v := range m { // want `map iteration order is randomized`
		fmt.Println(k, v)
	}
}

// Collect ranges over a map without producing output, which is fine.
func Collect(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
