//worksimtest:importpath repro/cmd/fixturetool

// Command fixturetool is a facadeboundary fixture: a binary reaching around
// the public façade into engine internals.
package main

import (
	_ "repro/internal/worksite" // want `must reach the engine only through the public repro/worksim`
	_ "repro/worksim"

	_ "repro/internal/analysis" //worksim:allow fixture: build-time tooling import, the documented exception cmd/worksimlint itself uses
)

func main() {}
