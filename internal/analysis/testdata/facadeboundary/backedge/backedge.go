//worksimtest:importpath repro/internal/fixture/backedge

// Package backedge is a facadeboundary fixture: an internal package
// importing the public façade back, inverting the layering.
package backedge

import (
	_ "repro/worksim" // want `internal packages must not import the public façade`
)
