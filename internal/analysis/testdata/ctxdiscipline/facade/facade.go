//worksimtest:importpath repro/worksim/fixture

// Package fixture exercises the ctxdiscipline analyzer: exported façade
// signatures and //worksim:tickloop cancellation checks.
package fixture

import "context"

// Drain spins unboundedly with no cancellation seam.
func Drain(step func() bool) { // want `unbounded loop but takes no context\.Context`
	for {
		if step() {
			return
		}
	}
}

// Misplaced buries the context behind another parameter.
func Misplaced(n int, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = n
	return ctx.Err()
}

// Run is the disciplined shape: leading ctx, cancellation checked per tick.
func Run(ctx context.Context, n int) error {
	//worksim:tickloop
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Spin drops the per-iteration cancellation check from a marked tick loop.
func Spin(ctx context.Context) {
	done := false
	//worksim:tickloop
	for !done { // want `must check cancellation each iteration`
		done = true
	}
	_ = ctx
}

// Pump is suppressed: the caller owns cancellation one layer up.
func Pump(step func() bool) { //worksim:allow fixture: caller-bounded pump, the cancellation seam lives one layer up
	for {
		if step() {
			return
		}
	}
}

// claim is unexported, so only the tickloop rule applies; the suppression on
// the loop line keeps it clean.
func claim(stop func() bool) {
	//worksim:tickloop
	for { //worksim:allow fixture: the stop predicate is the cancellation seam here
		if stop() {
			return
		}
	}
}
