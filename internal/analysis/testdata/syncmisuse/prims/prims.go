//worksimtest:importpath repro/internal/fixture/prims

// Package prims exercises the syncmisuse analyzer: by-value copies of sync
// primitives, mixed atomic/plain field access, and time.Sleep inside a
// //worksim:tickloop loop — each with a clean or allow-suppressed
// counterpart.
package prims

import (
	"sync"
	"sync/atomic"
	"time"
)

type counters struct {
	hits  int64
	plain int64
}

func takesValue(mu sync.Mutex) { mu.Lock() } // want `sync.Mutex passed by value`

func takesPointer(mu *sync.Mutex) { mu.Lock() } // clean

func returnsValue() sync.WaitGroup { // want `sync.WaitGroup returned by value`
	var wg sync.WaitGroup
	return wg
}

func copies() {
	var mu sync.Mutex
	dup := mu // want `sync.Mutex copied by value`
	dup.Lock()

	fresh := sync.Mutex{} // clean: composite literal is initialization, not a copy
	fresh.Lock()

	ptr := &mu // clean: taking a pointer shares the lock
	_ = ptr
}

func mixedAccess(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1) // clean: the atomic site itself
	total := c.hits             // want `field hits is accessed atomically elsewhere`
	c.plain++                   // clean: plain is never touched atomically
	//worksim:allow fixture: read happens before the goroutines that use atomics start
	startup := c.hits // clean: suppressed with a reasoned allow
	return total + startup
}

func tickSleep(ticks <-chan struct{}) {
	//worksim:tickloop
	for range ticks {
		time.Sleep(time.Millisecond) // want `time.Sleep inside a //worksim:tickloop loop`
	}
	for range ticks {
		time.Sleep(time.Millisecond) // clean: not a tick loop
	}
}
