//worksimtest:importpath repro/internal/fixture/bare

// Package bare carries a reasonless //worksim:allow, which must itself be
// reported and must not suppress the diagnostic on the next line.
package bare

import "time"

func stamp() time.Time {
	//worksim:allow
	return time.Now()
}
