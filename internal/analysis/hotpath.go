package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath screens functions annotated //worksim:hotpath — the steady-state
// tick path locked at zero heap allocations by TestTickLoopZeroAllocs — for
// the allocation sources that regress that invariant, so a regression is
// reported at the offending line instead of as an opaque AllocsPerRun count:
//
//   - closure literals: the func value and its captured variables escape.
//   - fmt calls and non-constant string concatenation: formatting builds
//     new strings on the heap.
//   - make/new/&T{...}: direct heap construction; hot-path state lives in
//     pooled or scratch objects.
//   - interface boxing at call sites: passing a non-pointer-shaped value
//     (struct, string, int, slice) to an interface parameter allocates the
//     boxed copy. Pointers, channels, maps and funcs are word-sized and box
//     for free, so they pass.
//   - append to anything but the self-assigned scratch pattern
//     (x = append(x, ...) / x = append(x[:0], ...)): growing a fresh slice
//     allocates every call.
//
// Deliberate cold branches inside hot functions (pool warm-up, error exits)
// carry //worksim:allow <reason>.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "flag allocation sources (closures, fmt, string concat, make/new, " +
		"interface boxing, non-scratch append) inside //worksim:hotpath functions",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasDirective(fn.Doc, HotpathDirective) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	selfAppends := collectSelfAppends(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path: the func value and captured variables allocate; hoist to a method or pooled simclock.Task")
			return false // the literal's body runs elsewhere; one finding suffices
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in hot path; reuse a pooled or scratch object")
				}
			}
		case *ast.BinaryExpr:
			checkStringConcat(pass, n)
		case *ast.CallExpr:
			checkHotCall(pass, n, selfAppends)
		}
		return true
	})
}

func checkStringConcat(pass *Pass, n *ast.BinaryExpr) {
	if n.Op.String() != "+" || pass.Info == nil {
		return
	}
	tv, ok := pass.Info.Types[n]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		pass.Reportf(n.Pos(), "string concatenation allocates in hot path; precompute the string or use a reused byte buffer")
	}
}

func checkHotCall(pass *Pass, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	if name, ok := pkgFuncCall(pass.Info, call, "fmt"); ok {
		pass.Reportf(call.Pos(), "fmt.%s allocates in hot path (formatting and argument boxing); hot-path strings must be precomputed", name)
		return
	}
	switch builtinName(pass.Info, call) {
	case "append":
		if !selfAppends[call] {
			pass.Reportf(call.Pos(), "append outside the scratch pattern allocates when the slice grows; write x = append(x, ...) or x = append(x[:0], ...) on a reused buffer")
		}
		return
	case "make", "new":
		pass.Reportf(call.Pos(), "%s allocates in hot path; construct scratch storage at commissioning time and reuse it", builtinName(pass.Info, call))
		return
	case "":
		// Not a builtin: fall through to the boxing check.
	default:
		return // len, cap, copy, delete, ... are allocation-free
	}
	checkInterfaceBoxing(pass, call)
}

// collectSelfAppends records append calls in the amortized scratch form
// `x = append(x, ...)` or `x = append(x[:0], ...)` (also `x := append(x...)`
// shadowing and multi-assign positions), keyed by call node.
func collectSelfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ok := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, isCall := rhs.(*ast.CallExpr)
			if !isCall || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(sliceCore(call.Args[0])) == types.ExprString(as.Lhs[i]) {
				ok[call] = true
			}
		}
		return true
	})
	return ok
}

// sliceCore unwraps slicing and parens: s[:0] -> s, (s) -> s.
func sliceCore(e ast.Expr) ast.Expr {
	for {
		switch ee := e.(type) {
		case *ast.SliceExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		default:
			return e
		}
	}
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || info == nil {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// checkInterfaceBoxing flags arguments whose passing converts a
// non-pointer-shaped concrete value into an interface parameter.
func checkInterfaceBoxing(pass *Pass, call *ast.CallExpr) {
	if pass.Info == nil {
		return
	}
	funTV, ok := pass.Info.Types[call.Fun]
	if !ok || funTV.IsType() { // conversions are checked elsewhere
		return
	}
	sig, ok := funTV.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			param = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			slice, isSlice := params.At(params.Len() - 1).Type().(*types.Slice)
			if !isSlice {
				continue
			}
			param = slice.Elem()
		default:
			continue // f(xs...) passes the slice through unboxed
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		argTV, ok := pass.Info.Types[arg]
		if !ok || argTV.Type == nil || argTV.IsNil() {
			continue
		}
		if boxingFree(argTV.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes the value (allocates); pass a pointer-shaped value or a typed API", argTV.Type)
	}
}

// boxingFree reports whether converting t to an interface needs no
// allocation: interfaces themselves, and word-sized pointer-shaped kinds.
func boxingFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
