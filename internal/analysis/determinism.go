package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the byte-reproducibility contract of the simulation
// packages (repro/internal/... and repro/worksim...):
//
//   - no wall clock: time.Now and time.Since read host time, so two runs of
//     the same seed could diverge. Simulated components take time from
//     internal/simclock.
//   - no ambient randomness: math/rand is importable only by internal/rng,
//     which derives named, seed-stable streams; crypto/rand only by
//     internal/pki and internal/securechan, which accept a deterministic
//     reader for reproducible runs.
//   - no map-ordered output: iterating a map while printing, encoding JSON
//     or building report tables leaks Go's randomized map order into
//     artifacts that must be byte-identical across runs.
//
// Legitimate exceptions (wall-clock provenance stamps, host-timing metrics)
// carry a //worksim:allow <reason> directive.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, ambient randomness and map-ordered output " +
		"in the simulation packages, so every run stays byte-reproducible",
	Run: runDeterminism,
}

// rng/pki/securechan own the randomness seams the rest of the tree must go
// through.
var (
	mathRandImporters   = map[string]bool{"repro/internal/rng": true}
	cryptoRandImporters = map[string]bool{
		"repro/internal/pki":        true,
		"repro/internal/securechan": true,
	}
)

// simulationPackage reports whether path is inside the determinism
// perimeter. The analysis tooling itself is exempt: it is a build-time
// checker, not part of any simulated run.
func simulationPackage(path string) bool {
	if path == "repro/internal/analysis" || strings.HasPrefix(path, "repro/internal/analysis/") {
		return false
	}
	return strings.HasPrefix(path, "repro/internal/") ||
		path == "repro/worksim" || strings.HasPrefix(path, "repro/worksim/")
}

func runDeterminism(pass *Pass) error {
	if !simulationPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch path := importPath(imp); path {
			case "math/rand", "math/rand/v2":
				if !mathRandImporters[pass.Path] {
					pass.Reportf(imp.Pos(), "import %s: ambient randomness breaks reproducibility; derive a named stream from repro/internal/rng", path)
				}
			case "crypto/rand":
				if !cryptoRandImporters[pass.Path] {
					pass.Reportf(imp.Pos(), "import crypto/rand: system entropy breaks reproducibility outside internal/pki and internal/securechan; inject a deterministic reader instead")
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := pkgFuncCall(pass.Info, n, "time"); ok && (name == "Now" || name == "Since") {
					pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulated time comes from internal/simclock (Scheduler.Now)", name)
				}
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRangeOutput flags a range over a map whose body feeds output
// directly — printing, JSON encoding or report building — because map
// iteration order is randomized per process.
func checkMapRangeOutput(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		// Function literals run later, outside the iteration, so output
		// inside them is not ordered by this loop.
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg := calleePackage(pass.Info, call); outputPackage(pkg) {
			pass.Reportf(rng.Pos(), "map iteration order is randomized and this loop feeds output (%s); iterate sorted keys instead", pkg)
			reported = true
			return false
		}
		return true
	})
}

// outputPackage reports whether calls into pkg emit run artifacts whose byte
// order matters.
func outputPackage(pkg string) bool {
	switch pkg {
	case "fmt", "encoding/json":
		return true
	}
	return strings.HasSuffix(pkg, "/report")
}

// pkgFuncCall matches a call of the form pkgname.Func where pkgname is an
// import of pkgPath, returning the function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || info == nil {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleePackage resolves the package path of a call's callee, or "" when it
// is not a package-level function or method of a named package (builtins,
// locals, etc.).
func calleePackage(info *types.Info, call *ast.CallExpr) string {
	if info == nil {
		return ""
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// importPath unquotes an import spec path, tolerating malformed specs.
func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}
