package analysis

import (
	"strings"
)

// FacadeBoundary is the import-graph analyzer behind the repository's API
// boundary, replacing the earlier reflective TestFacadeBoundary walk:
//
//   - binaries (repro/cmd/...) and examples (repro/examples/...) may reach
//     the engine only through the public façade, repro/worksim...; a direct
//     repro/internal/... import silently erodes the only stable surface.
//   - internal packages must not import repro/worksim... back: the façade
//     wraps the engine, so the reverse edge is a layering cycle waiting to
//     happen (and defeats the point of internal/ being swappable).
//
// The check is purely syntactic — import declarations and the package's own
// import path — so it also runs on packages that do not type-check yet.
var FacadeBoundary = &Analyzer{
	Name: "facadeboundary",
	Doc: "restrict repro/cmd and repro/examples to the public repro/worksim... " +
		"façade, and keep internal/ from importing the façade back",
	Run: runFacadeBoundary,
}

func runFacadeBoundary(pass *Pass) error {
	consumer := strings.HasPrefix(pass.Path, "repro/cmd/") ||
		strings.HasPrefix(pass.Path, "repro/examples/")
	internal := pass.Path == "repro/internal" || strings.HasPrefix(pass.Path, "repro/internal/")
	if !consumer && !internal {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			facade := path == "repro/worksim" || strings.HasPrefix(path, "repro/worksim/")
			switch {
			case consumer && strings.HasPrefix(path, "repro/") && !facade:
				pass.Reportf(imp.Pos(), "import %s: cmd/ and examples/ must reach the engine only through the public repro/worksim... façade", path)
			case internal && facade:
				pass.Reportf(imp.Pos(), "import %s: internal packages must not import the public façade (worksim wraps internal, never the reverse)", path)
			}
		}
	}
	return nil
}
