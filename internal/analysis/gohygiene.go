package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoHygiene enforces goroutine join-tracking inside the simulation packages
// (repro/internal/... and repro/worksim...): the engine promises "cancelled
// Sweep drains goroutines" and the serve layer promises a graceful drain, so
// an untracked `go` statement — one whose goroutine nothing can wait for —
// is a leak the race detector only notices when a schedule happens to
// trigger it. A go statement passes when its completion is observable:
//
//   - the spawned call carries a context.Context argument (the goroutine
//     participates in the cancellation tree), or
//   - the goroutine is a function literal that signals on its way out: a
//     Done/Add/Wait call on a sync.WaitGroup-like type (any named type
//     containing "Group", covering jobGroup), a send on a channel, a
//     close(), or an observed context value.
//
// Deliberate fire-and-forget spawns carry //worksim:allow <reason>.
var GoHygiene = &Analyzer{
	Name: "gohygiene",
	Doc: "require every go statement in the simulation packages to be " +
		"join-tracked (WaitGroup/…Group, channel send/close, or an observed context)",
	Run: runGoHygiene,
}

func runGoHygiene(pass *Pass) error {
	if !simulationPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !joinTracked(pass.Info, gs) {
				pass.Reportf(gs.Pos(), "go statement is not join-tracked: nothing can wait for this goroutine (no WaitGroup/…Group signal, channel send/close, or context in the spawned code); leaks like this survive until the race detector gets lucky — track it or mark deliberate fire-and-forget with //worksim:allow <reason>")
			}
			return true
		})
	}
	return nil
}

// joinTracked reports whether the go statement's completion is observable.
func joinTracked(info *types.Info, gs *ast.GoStmt) bool {
	for _, arg := range gs.Call.Args {
		if isContextValue(info, arg) {
			return true
		}
	}
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return closureSignals(info, lit)
	}
	return false
}

// closureSignals scans a goroutine body for any completion signal: a channel
// send, a close(), a Done/Add/Wait call on a group-like type, or a context
// value the goroutine observes.
func closureSignals(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if builtinName(info, n) == "close" {
				found = true
				break
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok && groupJoinMethod(sel.Sel.Name) && groupTyped(info, sel.X) {
				found = true
			}
		case *ast.Ident:
			if isContextValue(info, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// groupJoinMethod reports whether name is a WaitGroup-style join method.
func groupJoinMethod(name string) bool {
	return name == "Done" || name == "Add" || name == "Wait"
}

// groupTyped reports whether expr's type (through pointers) is a named type
// whose name contains "Group" — sync.WaitGroup, errgroup.Group, the serve
// layer's jobGroup.
func groupTyped(info *types.Info, expr ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && strings.Contains(named.Obj().Name(), "Group")
}
