package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package under analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// golist runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func golist(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to compiled export data produced by
// `go list -export`. It backs the stdlib gc importer, so dependencies —
// standard library and module packages alike — are imported from export
// data rather than re-type-checked from source.
type exportLookup struct {
	dir     string
	exports map[string]string
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	if f, ok := l.exports[path]; ok {
		return os.Open(f)
	}
	// Lazily resolve paths outside the already-listed dependency closure
	// (e.g. a fixture importing a stdlib package the repo itself does not
	// use).
	pkgs, err := golist(l.dir, "-deps", "-export", "-json", "--", path)
	if err != nil {
		return nil, fmt.Errorf("no export data for %q: %w", path, err)
	}
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	if f, ok := l.exports[path]; ok {
		return os.Open(f)
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

// Load resolves patterns (e.g. "./...") against the Go module rooted at or
// above dir and returns the matched packages parsed with comments and fully
// type-checked. Test files are excluded: the analyzers guard the shipped
// simulation code, and tests legitimately use wall clock and ad-hoc output.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := golist(dir, append([]string{"-json", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := golist(dir, append([]string{"-deps", "-export", "-json", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	lk := &exportLookup{dir: dir, exports: make(map[string]string, len(deps))}
	for _, p := range deps {
		if p.Export != "" {
			lk.exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lk.lookup)
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// typecheck parses and type-checks one listed package from source, importing
// its dependencies from export data.
func typecheck(fset *token.FileSet, imp types.Importer, t listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Dir:   t.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ModuleRoot locates the root directory of the enclosing Go module — the
// anchor both the repo-lint test and the CLI resolve "./..." against.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (go env GOMOD = %q)", gomod)
	}
	return filepath.Dir(gomod), nil
}
