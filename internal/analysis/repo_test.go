package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoLintClean runs the full analyzer suite over the whole module and
// requires zero findings — the same gate CI applies via cmd/worksimlint. It
// subsumes the old reflective façade-boundary walk: an eroding import, a
// wall-clock read on a simulated path or a deleted tick-loop cancellation
// check all fail this test with a file:line diagnostic.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
