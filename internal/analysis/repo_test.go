package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoLintClean runs the full analyzer suite — module-level escapebudget
// included — over the whole module and requires zero findings: the same gate
// CI applies via cmd/worksimlint. It subsumes the old reflective
// façade-boundary walk: an eroding import, a wall-clock read on a simulated
// path, a deleted tick-loop cancellation check, an untracked goroutine or a
// hot-path escape regression all fail this test with a file:line diagnostic.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks and compiles the whole module; skipped in -short mode")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.RunRoot(root, pkgs, analysis.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRepoAuditClean requires every //worksim:allow in the tree to carry a
// reason and to suppress at least one live finding — the ledger never
// accumulates stale exceptions.
func TestRepoAuditClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks and compiles the whole module; skipped in -short mode")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	report, failures, err := analysis.Audit(root, pkgs, analysis.All())
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if len(report.Allows) == 0 {
		t.Fatalf("audit returned an empty ledger; the tree has known allow directives")
	}
	for _, d := range failures {
		t.Errorf("%s", d)
	}
}
