package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncMisuse flags the synchronization mistakes that the runtime either
// cannot detect or detects only when a schedule happens to expose them:
//
//   - sync.Mutex / RWMutex / WaitGroup / Once / Cond / Map / Pool copied by
//     value — as a parameter, result, or plain value assignment. A copied
//     lock guards nothing; `go vet` catches some shapes, this keeps the rule
//     inside the repo's own gate alongside the rest of the suite.
//   - a struct field accessed both through sync/atomic calls and with plain
//     loads/stores in the same package: the plain access tears the atomicity
//     the other call sites paid for. (Typed atomics — atomic.Int64 and
//     friends — are immune by construction and preferred.)
//   - time.Sleep inside a //worksim:tickloop loop: the simulation advances
//     on virtual time, so a host sleep in a tick loop stalls the scheduler
//     without simulating anything.
//
// Deliberate exceptions carry //worksim:allow <reason>.
var SyncMisuse = &Analyzer{
	Name: "syncmisuse",
	Doc: "flag sync primitives copied by value, struct fields mixing atomic and " +
		"plain access, and time.Sleep inside //worksim:tickloop loops",
	Run: runSyncMisuse,
}

func runSyncMisuse(pass *Pass) error {
	atomicFields := collectAtomicFields(pass)
	for _, f := range pass.Files {
		tickLines := directiveEndLines(pass.Fset, f, TickloopDirective)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSyncSignature(pass, n.Type)
			case *ast.FuncLit:
				checkSyncSignature(pass, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkSyncCopy(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkSyncCopy(pass, v)
				}
			case *ast.SelectorExpr:
				checkPlainAtomicAccess(pass, atomicFields, n)
			case *ast.ForStmt:
				checkTickloopSleep(pass, tickLines, n.Pos(), n.Body)
			case *ast.RangeStmt:
				checkTickloopSleep(pass, tickLines, n.Pos(), n.Body)
			}
			return true
		})
	}
	return nil
}

// syncValueType returns the sync primitive's name when t is a by-value use
// of one, and "" otherwise.
func syncValueType(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
		return obj.Name()
	}
	return ""
}

// checkSyncSignature flags parameters and results that pass a sync primitive
// by value.
func checkSyncSignature(pass *Pass, ft *ast.FuncType) {
	if pass.Info == nil {
		return
	}
	fields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			if name := syncValueType(tv.Type); name != "" {
				pass.Reportf(field.Pos(), "sync.%s %s by value: the copy is independent of the original and synchronizes nothing; pass *sync.%s", name, what, name)
			}
		}
	}
	fields(ft.Params, "passed")
	fields(ft.Results, "returned")
}

// checkSyncCopy flags `x := mu` / `x = mu` style value copies of a sync
// primitive. Composite literals and calls construct fresh values, which is
// initialization rather than a copy of a possibly-locked original.
func checkSyncCopy(pass *Pass, rhs ast.Expr) {
	if pass.Info == nil {
		return
	}
	switch rhs.(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.UnaryExpr:
		return
	}
	tv, ok := pass.Info.Types[rhs]
	if !ok || tv.Type == nil {
		return
	}
	if name := syncValueType(tv.Type); name != "" {
		pass.Reportf(rhs.Pos(), "sync.%s copied by value: the copy shares no state with the original (a held lock is silently dropped); take a pointer instead", name)
	}
}

// atomicFieldUse records where a struct field is touched by sync/atomic
// calls, so plain accesses elsewhere can be flagged.
type atomicFieldUse struct {
	// nodes are the selector expressions inside atomic call arguments —
	// excluded from the plain-access sweep.
	nodes map[*ast.SelectorExpr]bool
	// fields maps the field object to one atomic call position (for the
	// message).
	fields map[types.Object]token.Position
}

// collectAtomicFields finds every `atomic.Op(&x.f, ...)` call in the package
// and records the field objects involved.
func collectAtomicFields(pass *Pass) atomicFieldUse {
	use := atomicFieldUse{
		nodes:  make(map[*ast.SelectorExpr]bool),
		fields: make(map[types.Object]token.Position),
	}
	if pass.Info == nil {
		return use
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isAtomic := pkgFuncCall(pass.Info, call, "sync/atomic"); !isAtomic {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := fieldObject(pass.Info, sel)
				if obj == nil {
					continue
				}
				use.nodes[sel] = true
				if _, seen := use.fields[obj]; !seen {
					use.fields[obj] = pass.Fset.Position(call.Pos())
				}
			}
			return true
		})
	}
	return use
}

// fieldObject resolves a selector to the struct field it denotes, or nil.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// checkPlainAtomicAccess flags a plain (non-atomic) use of a field that the
// package also accesses through sync/atomic.
func checkPlainAtomicAccess(pass *Pass, use atomicFieldUse, sel *ast.SelectorExpr) {
	if len(use.fields) == 0 || use.nodes[sel] {
		return
	}
	obj := fieldObject(pass.Info, sel)
	if obj == nil {
		return
	}
	at, ok := use.fields[obj]
	if !ok {
		return
	}
	pass.Reportf(sel.Pos(), "field %s is accessed atomically elsewhere (e.g. %s) but plainly here: the plain load/store races with the atomic sites; use sync/atomic everywhere or a typed atomic.Int64-style field", obj.Name(), at)
}

// checkTickloopSleep flags time.Sleep inside a //worksim:tickloop loop.
func checkTickloopSleep(pass *Pass, tickLines map[int]bool, loopPos token.Pos, body *ast.BlockStmt) {
	line := pass.Fset.Position(loopPos).Line
	if !tickLines[line-1] {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := pkgFuncCall(pass.Info, call, "time"); ok && name == "Sleep" {
			pass.Reportf(call.Pos(), "time.Sleep inside a //worksim:tickloop loop stalls the scheduler on host time; advance virtual time through the simulation clock instead")
		}
		return true
	})
}
