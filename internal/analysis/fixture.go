package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// importPathDirective lets a fixture file declare the import path its package
// should be analyzed under, so a file in testdata/ can stand in for e.g. a
// repro/cmd/... binary:
//
//	//worksimtest:importpath repro/cmd/fixturetool
const importPathDirective = "//worksimtest:importpath"

// LoadFixture parses and type-checks the one package in dir — a testdata
// fixture outside the module's package graph. Imports resolve like Load's:
// from `go list -export` data, so stdlib references carry real type
// information; import paths that do not resolve (fixture-only repro/...
// paths) fall back to empty stub packages, which suffices for the syntactic
// analyzers as long as the fixture only blank-imports them.
//
// The package's import path is taken from a //worksimtest:importpath
// directive in any file, defaulting to fixture/<dirname>.
func LoadFixture(dir string) (*Package, error) {
	names, err := fixtureSources(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse fixture %s: %w", name, err)
		}
		files = append(files, f)
	}
	path := fixtureImportPath(files)
	if path == "" {
		path = "fixture/" + filepath.Base(dir)
	}

	lk := &exportLookup{dir: dir, exports: make(map[string]string)}
	imp := &stubbingImporter{
		real:  importer.ForCompiler(fset, "gc", lk.lookup),
		stubs: make(map[string]*types.Package),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", dir, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// fixtureSources lists the .go files of dir in stable order.
func fixtureSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture dir %s: no .go files", dir)
	}
	sort.Strings(names)
	return names, nil
}

// fixtureImportPath extracts the first //worksimtest:importpath directive.
func fixtureImportPath(files []*ast.File) string {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, importPathDirective+" "); ok {
					return strings.TrimSpace(rest)
				}
			}
		}
	}
	return ""
}

// stubbingImporter resolves imports from export data when possible and
// otherwise fabricates an empty, complete package, so fixtures can
// blank-import paths that exist only in the scenario they simulate.
type stubbingImporter struct {
	real  types.Importer
	stubs map[string]*types.Package
}

func (si *stubbingImporter) Import(path string) (*types.Package, error) {
	if p, err := si.real.Import(path); err == nil {
		return p, nil
	}
	if p, ok := si.stubs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	si.stubs[path] = p
	return p, nil
}
