// Package analysis is the static-analysis layer of the repository: a small
// analyzer framework in the spirit of golang.org/x/tools/go/analysis (which
// the build environment does not vendor), plus the seven worksim analyzers
// that make the simulator's core invariants structural rather than
// empirical:
//
//   - determinism: no wall clock, no ambient randomness, no map-ordered
//     output inside the simulation packages (byte-reproducible runs).
//   - facadeboundary: cmd/ and examples/ reach the engine only through
//     repro/worksim..., and internal/ never imports the façade back.
//   - ctxdiscipline: exported blocking APIs of the façade take a leading
//     context.Context, and //worksim:tickloop loops check cancellation.
//   - hotpath: //worksim:hotpath functions (the zero-alloc tick path) are
//     screened for allocation sources at the offending line.
//   - gohygiene: every go statement in the simulation packages is
//     join-tracked (WaitGroup-style Done, channel send/close, or an
//     observed context), so no goroutine outlives its owner invisibly.
//   - syncmisuse: sync primitives copied by value, struct fields accessed
//     both atomically and plainly, and time.Sleep inside tick loops.
//   - escapebudget: the gc compiler's own escape-analysis and inlining
//     diagnostics (go build -gcflags=-m=2), gated per //worksim:hotpath
//     function against the checked-in budgets in lint/escape_budget.json
//     with ratchet semantics — both a new escape and an unrecorded
//     improvement fail, so optimization wins get locked in.
//
// Three comment directives steer the analyzers:
//
//	//worksim:allow <reason>    suppress diagnostics on this or the next line
//	//worksim:hotpath           mark a function as part of the zero-alloc tick path
//	//worksim:tickloop          mark a loop that must observe ctx cancellation
//
// An allow directive without a reason suppresses nothing and is itself
// reported, so every suppression stays auditable; worksimlint -audit emits
// the full suppression inventory and fails on directives that suppress
// nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Run inspects a single type-checked
// package via the Pass and reports findings with Pass.Reportf. Module-level
// analyzers set RunModule instead and see the whole loaded package set at
// once.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI listings.
	Name string
	// Doc is the one-paragraph description shown by `worksimlint -list`.
	Doc string
	// Run performs the check on one package. It must not retain the Pass.
	// Nil for module-level analyzers.
	Run func(*Pass) error
	// RunModule, when set, runs once over the whole loaded module instead
	// of per package. root is the module root directory; analyzers that
	// consult external ground truth (the compiler, checked-in budget files)
	// resolve paths against it. RunModule analyzers only execute under
	// RunRoot — Run (rootless, used by fixtures) skips them.
	RunModule func(root string, pkgs []*Package) ([]Diagnostic, error)
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with comments.
	Files []*ast.File
	// Path is the package import path (e.g. repro/internal/worksite).
	Path string
	// Pkg is the type-checked package; nil when type checking was skipped
	// (syntactic fixtures). Analyzers needing types must tolerate nil Info
	// lookups.
	Pkg *types.Package
	// Info holds type information for the package's syntax trees.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos. Suppression via //worksim:allow is
// applied by the driver after the analyzer returns.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directives are the //worksim:* comment markers of one package, indexed for
// the driver (allow) and the analyzers (hotpath, tickloop).
type directives struct {
	// allow maps file -> line -> reason for well-formed allow directives.
	// The directive suppresses diagnostics on its own line and, when it
	// stands alone on a line, on the directive's following line.
	allow map[string]map[int]string
	// malformed are allow directives without a reason.
	malformed []Diagnostic
}

const (
	allowPrefix       = "//worksim:allow"
	HotpathDirective  = "//worksim:hotpath"
	TickloopDirective = "//worksim:tickloop"
)

// collectDirectives scans the comments of files for //worksim:allow markers.
func collectDirectives(fset *token.FileSet, files []*ast.File) directives {
	d := directives{allow: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //worksim:allowance — not our directive
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(rest)
				if reason == "" {
					d.malformed = append(d.malformed, Diagnostic{
						Analyzer: "allowdirective",
						Pos:      pos,
						Message:  "//worksim:allow requires a reason (//worksim:allow <why this is safe>); the bare directive suppresses nothing",
					})
					continue
				}
				lines := d.allow[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					d.allow[pos.Filename] = lines
				}
				lines[pos.Line] = reason
			}
		}
	}
	return d
}

// suppressed reports whether a diagnostic at pos is covered by an allow
// directive on the same line or on the line directly above.
func (d directives) suppressed(pos token.Position) bool {
	lines := d.allow[pos.Filename]
	if lines == nil {
		return false
	}
	if _, ok := lines[pos.Line]; ok {
		return true
	}
	_, ok := lines[pos.Line-1]
	return ok
}

// HasDirective reports whether the comment group contains the given
// stand-alone directive (e.g. //worksim:hotpath) as a whole comment line,
// optionally followed by explanatory text after a space.
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// RunPackage runs one analyzer over one loaded package and returns its
// diagnostics with //worksim:allow suppression applied.
func RunPackage(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	dir := collectDirectives(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !dir.suppressed(d.Pos) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// Run executes every per-package analyzer over every package and returns the
// combined, position-sorted findings. Malformed //worksim:allow directives
// are reported once per package under the synthetic check name
// "allowdirective". Module-level analyzers (RunModule) are skipped — use
// RunRoot when a module root is known.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunRoot("", pkgs, analyzers)
}

// RunRoot executes the full analyzer set — per-package and, when root is
// non-empty, module-level — over the loaded packages. //worksim:allow
// suppression is applied across the whole set, so a module-level diagnostic
// landing on an allowed line is suppressed exactly like a per-package one,
// and the result is sorted by (file, line, col, analyzer, message) so output
// is deterministic run over run.
func RunRoot(root string, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, dirs, err := runRaw(root, pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, d := range all {
		if d.Analyzer == "allowdirective" || !dirs.suppressed(d.Pos) {
			kept = append(kept, d)
		}
	}
	SortDiagnostics(kept)
	return kept, nil
}

// runRaw produces the unsuppressed diagnostics of every analyzer plus the
// union of the packages' allow directives — the shared substrate of RunRoot
// and the -audit ledger.
func runRaw(root string, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, directives, error) {
	union := directives{allow: make(map[string]map[int]string)}
	var all []Diagnostic
	for _, pkg := range pkgs {
		dir := collectDirectives(pkg.Fset, pkg.Files)
		all = append(all, dir.malformed...)
		for file, lines := range dir.allow {
			if union.allow[file] == nil {
				union.allow[file] = lines
				continue
			}
			for line, reason := range lines {
				union.allow[file][line] = reason
			}
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, directives{}, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			all = append(all, diags...)
		}
	}
	if root != "" {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			diags, err := a.RunModule(root, pkgs)
			if err != nil {
				return nil, directives{}, fmt.Errorf("%s: %w", a.Name, err)
			}
			all = append(all, diags...)
		}
	}
	return all, union, nil
}

// SortDiagnostics orders diagnostics by (file, line, col, analyzer, message)
// — the stable order both output modes print in.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// All returns the full worksim analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, FacadeBoundary, CtxDiscipline, HotPath,
		GoHygiene, SyncMisuse, EscapeBudgetAnalyzer,
	}
}
