// Package analysistest drives one worksim analyzer over a fixture directory
// and checks the emitted diagnostics against expectation comments in the
// fixture sources, in the spirit of golang.org/x/tools/go/analysis/analysistest:
//
//	x := time.Now() // want `time\.Now reads the wall clock`
//
// A `// want` comment expects, on its own line, one diagnostic per quoted
// regular expression (backquoted or double-quoted Go string syntax). Every
// diagnostic must be claimed by exactly one expectation and every expectation
// must be claimed by exactly one diagnostic, so fixtures prove both the true
// positives and the //worksim:allow-suppressed negatives of each analyzer.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantMarker introduces an expectation comment.
const wantMarker = "// want "

// stringLit matches one backquoted or double-quoted Go string literal.
var stringLit = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one parsed `// want` regexp, anchored to a source line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	claimed bool
}

// Run loads the fixture package in dir, applies the analyzer, and fails the
// test unless diagnostics and `// want` expectations match one-to-one.
// Malformed //worksim:allow directives surface like any other diagnostic
// (analyzer name "allowdirective") and can be expected the same way.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadFixture(dir)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every `// want` comment of the fixture package.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, strings.TrimSuffix(wantMarker, " "))
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := stringLit.FindAllString(rest, -1)
				if len(lits) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q: no quoted regexp", pos.Filename, pos.Line, c.Text)
				}
				for _, lit := range lits {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: malformed want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, lit, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: lit})
				}
			}
		}
	}
	return wants
}

// claim marks the first unclaimed expectation matching the diagnostic.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.claimed && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.claimed = true
			return true
		}
	}
	return false
}
