package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the locked `worksimlint -json` record. The field set and
// order are part of the tool's contract — CI and editor integrations parse
// it — and are pinned by TestJSONSchemaGolden. Extend only by appending
// fields.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// relFile renders file relative to root (when possible) with forward slashes,
// so output is identical regardless of the absolute checkout path.
func relFile(root, file string) string {
	if root != "" {
		if r, err := filepath.Rel(root, file); err == nil {
			file = r
		}
	}
	return filepath.ToSlash(file)
}

// FormatDiagnostic renders one finding for text output, root-relative:
//
//	file:line:col: [analyzer] message
func FormatDiagnostic(root string, d Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", relFile(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// EncodeDiagnostics writes findings as an indented JSON array in the locked
// schema. The caller passes diagnostics already sorted (RunRoot sorts); the
// encoder adds no ordering of its own, so byte-stability follows from the
// input order plus root-relative paths.
func EncodeDiagnostics(w io.Writer, root string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     relFile(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
