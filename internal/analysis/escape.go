package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// EscapeBudgetAnalyzer gates every //worksim:hotpath function against the
// gc compiler's own escape-analysis and inlining decisions. Where the
// hotpath analyzer screens for allocation *sources* syntactically, this
// analyzer consumes ground truth: `go build -gcflags=-m=2` diagnostics,
// attributed to their enclosing functions and compared against the
// checked-in per-function budgets in lint/escape_budget.json.
//
// The comparison is a ratchet, in both directions:
//
//   - more escapes (or a new inlining failure) than budgeted fails — an
//     allocation regressed exactly where the zero-alloc campaign works.
//   - fewer than budgeted also fails, until the budget is re-recorded with
//     `worksimlint -update-budget` — so an optimization win is locked in
//     the moment it lands instead of silently eroding later.
//
// Budgets are coupled to the compiler that produced them: the budget file
// records the go minor version, and a toolchain mismatch is a finding (not
// a silent skip), because escape analysis changes between releases.
// escapeBudgetName is referenced from runEscapeBudget's diagnostics; a named
// constant keeps the initialization graph acyclic.
const escapeBudgetName = "escapebudget"

var EscapeBudgetAnalyzer = &Analyzer{
	Name: escapeBudgetName,
	Doc: "gate //worksim:hotpath functions against per-function compiler escape/" +
		"inline budgets (lint/escape_budget.json) with ratchet semantics",
	RunModule: runEscapeBudget,
}

// EscapeBudgetPath is the budget file, relative to the module root.
const EscapeBudgetPath = "lint/escape_budget.json"

// escapeBudgetVersion is the schema version stamped into the budget file.
const escapeBudgetVersion = 1

// An EscapeDiag is one parsed compiler diagnostic of interest.
type EscapeDiag struct {
	File string // absolute path
	Line int
	Col  int
	// Kind is "escape" (heap escape / moved to heap) or "noinline"
	// (inlining failure).
	Kind string
	// Message is the compiler's one-line diagnostic text.
	Message string
}

// FuncBudget is the recorded compiler profile of one hot-path function.
type FuncBudget struct {
	// Escapes counts distinct heap-escape positions inside the function
	// ("escapes to heap" and "moved to heap" diagnostics).
	Escapes int `json:"escapes"`
	// InlineFailures counts "cannot inline" diagnostics inside the
	// function's span (the function itself and any closures it contains).
	InlineFailures int `json:"inlineFailures"`
}

// EscapeBudget is the checked-in lint/escape_budget.json model: per-package,
// per-function compiler budgets plus the toolchain that recorded them.
type EscapeBudget struct {
	Version int `json:"version"`
	// Go is the major.minor toolchain the budgets were recorded with
	// (e.g. "go1.24"); escape analysis changes between releases, so a
	// mismatch is a finding rather than a silent skip.
	Go string `json:"go"`
	// Packages maps import path -> function key -> budget. Function keys
	// follow the compiler's spelling: "Seal", "(*Channel).Open".
	Packages map[string]map[string]FuncBudget `json:"packages"`
}

// LoadEscapeBudget reads the budget file under root. A missing file returns
// (nil, nil): the caller decides whether that is a finding.
func LoadEscapeBudget(root string) (*EscapeBudget, error) {
	data, err := os.ReadFile(filepath.Join(root, EscapeBudgetPath))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", EscapeBudgetPath, err)
	}
	var b EscapeBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", EscapeBudgetPath, err)
	}
	return &b, nil
}

// WriteEscapeBudget writes the budget file under root (creating lint/),
// with sorted keys so the file is byte-stable for a given code state.
func WriteEscapeBudget(root string, b *EscapeBudget) error {
	path := filepath.Join(root, EscapeBudgetPath)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// goToolVersion returns the major.minor version of the go tool that will
// compile the module (e.g. "go1.24") — the budget's compatibility key.
func goToolVersion(root string) (string, error) {
	cmd := exec.Command("go", "env", "GOVERSION")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOVERSION: %w", err)
	}
	full := strings.TrimSpace(string(out)) // e.g. go1.24.0
	if i := strings.LastIndexByte(full, '.'); strings.Count(full, ".") == 2 && i > 0 {
		return full[:i], nil
	}
	return full, nil
}

// CollectEscapes compiles the loaded packages with -gcflags=-m=2 and parses
// the compiler's escape and inlining diagnostics. The build cache replays
// compiler output, so warm runs cost no recompilation. Binaries of main
// packages land in a throwaway directory.
func CollectEscapes(root string, pkgs []*Package) ([]EscapeDiag, error) {
	paths := make([]string, 0, len(pkgs))
	hasMain := false
	for _, p := range pkgs {
		paths = append(paths, p.Path)
		if p.Types != nil && p.Types.Name() == "main" {
			hasMain = true
		}
	}
	args := []string{"build", "-gcflags=-m=2"}
	if hasMain {
		tmp, err := os.MkdirTemp("", "worksimlint-escape-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		args = append(args, "-o", tmp)
	}
	cmd := exec.Command("go", append(args, paths...)...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2: %v\n%s", err, stderr.String())
	}
	return ParseEscapeDiags(root, &stderr)
}

// ParseEscapeDiags extracts heap-escape and inlining-failure diagnostics
// from -gcflags=-m=2 output. Flow-trace continuations, "does not escape"
// notes, "# package" headers and <autogenerated> positions are dropped, and
// the surviving diagnostics are deduplicated by position and message (the
// compiler re-reports an escape once per inlining context).
func ParseEscapeDiags(root string, r io.Reader) ([]EscapeDiag, error) {
	seen := make(map[string]bool)
	var out []EscapeDiag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "<autogenerated>") {
			continue
		}
		d, ok := parseEscapeLine(root, line)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan -m output: %w", err)
	}
	return out, nil
}

// parseEscapeLine classifies one "file:line:col: message" compiler line.
func parseEscapeLine(root, line string) (EscapeDiag, bool) {
	file, rest, ok := strings.Cut(line, ":")
	if !ok || file == "" {
		return EscapeDiag{}, false
	}
	lineStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return EscapeDiag{}, false
	}
	colStr, msg, ok := strings.Cut(rest, ":")
	if !ok {
		return EscapeDiag{}, false
	}
	ln, err1 := strconv.Atoi(lineStr)
	col, err2 := strconv.Atoi(colStr)
	if err1 != nil || err2 != nil {
		return EscapeDiag{}, false
	}
	msg = strings.TrimPrefix(msg, " ")
	if msg == "" || msg[0] == ' ' || msg[0] == '\t' {
		return EscapeDiag{}, false // indented flow-trace continuation
	}
	msg = strings.TrimSuffix(msg, ":") // the flow-introducing variant
	kind := ""
	switch {
	case strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap"):
		kind = "escape"
	case strings.HasPrefix(msg, "cannot inline"):
		kind = "noinline"
	default:
		return EscapeDiag{}, false
	}
	if !filepath.IsAbs(file) {
		file = filepath.Join(root, file)
	}
	return EscapeDiag{File: file, Line: ln, Col: col, Kind: kind, Message: msg}, true
}

// hotFunc is one //worksim:hotpath function resolved to its source span.
type hotFunc struct {
	pkg        string // import path
	key        string // compiler-style name: "Seal", "(*Channel).Open"
	file       string // absolute
	start, end int    // line span (inclusive)
	pos        token.Position
}

// hotpathFuncs collects every annotated function of the loaded packages.
func hotpathFuncs(pkgs []*Package) []hotFunc {
	var out []hotFunc
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !HasDirective(fn.Doc, HotpathDirective) {
					continue
				}
				start := pkg.Fset.Position(fn.Pos())
				end := pkg.Fset.Position(fn.End())
				out = append(out, hotFunc{
					pkg:   pkg.Path,
					key:   funcKey(fn),
					file:  start.Filename,
					start: start.Line,
					end:   end.Line,
					pos:   start,
				})
			}
		}
	}
	return out
}

// funcKey renders a function name the way the compiler spells it in
// diagnostics: "Seal" for functions, "(*Channel).Open" / "Identity.Sign"
// for methods.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := types.ExprString(fn.Recv.List[0].Type)
	if strings.HasPrefix(recv, "*") {
		return "(" + recv + ")." + fn.Name.Name
	}
	return recv + "." + fn.Name.Name
}

// observeBudgets attributes compiler diagnostics to hot-path functions by
// span containment and returns the per-function observed profile plus the
// raw escape diags per function key for reporting.
func observeBudgets(hot []hotFunc, diags []EscapeDiag) (map[string]FuncBudget, map[string][]EscapeDiag) {
	counts := make(map[string]FuncBudget, len(hot))
	detail := make(map[string][]EscapeDiag)
	for _, hf := range hot {
		id := hf.pkg + "\x00" + hf.key
		counts[id] = FuncBudget{}
		for _, d := range diags {
			if d.File != hf.file || d.Line < hf.start || d.Line > hf.end {
				continue
			}
			c := counts[id]
			switch d.Kind {
			case "escape":
				c.Escapes++
				detail[id] = append(detail[id], d)
			case "noinline":
				c.InlineFailures++
			}
			counts[id] = c
		}
	}
	return counts, detail
}

// runEscapeBudget is the analyzer entry point: collect compiler diagnostics
// for the loaded packages and gate every hot-path function against the
// checked-in budget.
func runEscapeBudget(root string, pkgs []*Package) ([]Diagnostic, error) {
	hot := hotpathFuncs(pkgs)
	if len(hot) == 0 {
		return nil, nil
	}
	budget, err := LoadEscapeBudget(root)
	if err != nil {
		return nil, err
	}
	budgetPos := token.Position{Filename: filepath.Join(root, EscapeBudgetPath), Line: 1, Column: 1}
	if budget == nil {
		return []Diagnostic{{
			Analyzer: escapeBudgetName,
			Pos:      budgetPos,
			Message:  fmt.Sprintf("%s missing but %d //worksim:hotpath function(s) loaded; record budgets with `worksimlint -update-budget`", EscapeBudgetPath, len(hot)),
		}}, nil
	}
	tool, err := goToolVersion(root)
	if err != nil {
		return nil, err
	}
	if budget.Go != tool {
		return []Diagnostic{{
			Analyzer: escapeBudgetName,
			Pos:      budgetPos,
			Message: fmt.Sprintf("escape budgets were recorded with %s but the active toolchain is %s; escape analysis differs between releases — re-record with `worksimlint -update-budget` under the pinned toolchain",
				budget.Go, tool),
		}}, nil
	}
	diags, err := CollectEscapes(root, pkgs)
	if err != nil {
		return nil, err
	}
	return GateEscapeBudget(root, pkgs, hot, diags, budget), nil
}

// GateEscapeBudget compares observed compiler diagnostics against the budget
// and returns the ratchet findings: regressions, unrecorded improvements,
// missing entries, and orphaned entries for packages in the loaded set.
func GateEscapeBudget(root string, pkgs []*Package, hot []hotFunc, diags []EscapeDiag, budget *EscapeBudget) []Diagnostic {
	counts, detail := observeBudgets(hot, diags)
	var out []Diagnostic
	report := func(pos token.Position, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Analyzer: escapeBudgetName,
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, hf := range hot {
		id := hf.pkg + "\x00" + hf.key
		obs := counts[id]
		want, ok := budget.Packages[hf.pkg][hf.key]
		if !ok {
			report(hf.pos, "%s has no entry in %s; record its budget with `worksimlint -update-budget`", hf.key, EscapeBudgetPath)
			continue
		}
		switch {
		case obs.Escapes > want.Escapes:
			report(hf.pos, "escape regression: %s now has %d heap escape(s), budget is %d — %s; optimize the new allocation away or consciously re-record with `worksimlint -update-budget`",
				hf.key, obs.Escapes, want.Escapes, summarizeEscapes(root, detail[id]))
		case obs.Escapes < want.Escapes:
			report(hf.pos, "escape improvement not ratcheted: %s now has %d heap escape(s), budget still says %d; lock the win in with `worksimlint -update-budget`",
				hf.key, obs.Escapes, want.Escapes)
		}
		switch {
		case obs.InlineFailures > want.InlineFailures:
			report(hf.pos, "inlining regression: %s now has %d `cannot inline` diagnostic(s), budget is %d; simplify the function or re-record with `worksimlint -update-budget`",
				hf.key, obs.InlineFailures, want.InlineFailures)
		case obs.InlineFailures < want.InlineFailures:
			report(hf.pos, "inlining improvement not ratcheted: %s now has %d `cannot inline` diagnostic(s), budget still says %d; lock the win in with `worksimlint -update-budget`",
				hf.key, obs.InlineFailures, want.InlineFailures)
		}
	}
	// Orphans: budget entries for loaded packages whose function is gone or
	// no longer annotated. Packages outside the loaded set are left alone so
	// linting a subset never reports the rest of the budget as stale.
	loaded := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		loaded[p.Path] = true
	}
	known := make(map[string]bool, len(hot))
	for _, hf := range hot {
		known[hf.pkg+"\x00"+hf.key] = true
	}
	budgetPos := token.Position{Filename: filepath.Join(root, EscapeBudgetPath), Line: 1, Column: 1}
	var orphans []string
	for pkgPath, fns := range budget.Packages {
		if !loaded[pkgPath] {
			continue
		}
		for key := range fns {
			if !known[pkgPath+"\x00"+key] {
				orphans = append(orphans, pkgPath+"."+key)
			}
		}
	}
	sort.Strings(orphans)
	for _, o := range orphans {
		report(budgetPos, "orphaned budget entry %s: the function is gone or no longer //worksim:hotpath; prune it with `worksimlint -update-budget`", o)
	}
	return out
}

// summarizeEscapes renders up to three escape positions for a regression
// message, root-relative for readability.
func summarizeEscapes(root string, diags []EscapeDiag) string {
	if len(diags) == 0 {
		return "no positions attributed"
	}
	n := len(diags)
	if n > 3 {
		n = 3
	}
	parts := make([]string, 0, n)
	for _, d := range diags[:n] {
		file := d.File
		if rel, err := filepath.Rel(root, file); err == nil {
			file = rel
		}
		parts = append(parts, fmt.Sprintf("%s:%d:%d: %s", file, d.Line, d.Col, d.Message))
	}
	s := strings.Join(parts, "; ")
	if len(diags) > n {
		s += fmt.Sprintf("; +%d more", len(diags)-n)
	}
	return s
}

// UpdateEscapeBudget re-records budgets for every hot-path function of the
// loaded packages, merging into any existing budget file: entries for loaded
// packages are replaced wholesale (pruning orphans), entries for packages
// outside the loaded set are preserved. Returns the number of recorded
// functions.
func UpdateEscapeBudget(root string, pkgs []*Package) (int, error) {
	hot := hotpathFuncs(pkgs)
	diags, err := CollectEscapes(root, pkgs)
	if err != nil {
		return 0, err
	}
	counts, _ := observeBudgets(hot, diags)
	tool, err := goToolVersion(root)
	if err != nil {
		return 0, err
	}
	budget, err := LoadEscapeBudget(root)
	if err != nil {
		return 0, err
	}
	if budget == nil {
		budget = &EscapeBudget{}
	}
	budget.Version = escapeBudgetVersion
	budget.Go = tool
	if budget.Packages == nil {
		budget.Packages = make(map[string]map[string]FuncBudget)
	}
	for _, p := range pkgs {
		delete(budget.Packages, p.Path)
	}
	for _, hf := range hot {
		fns := budget.Packages[hf.pkg]
		if fns == nil {
			fns = make(map[string]FuncBudget)
			budget.Packages[hf.pkg] = fns
		}
		fns[hf.key] = counts[hf.pkg+"\x00"+hf.key]
	}
	if err := WriteEscapeBudget(root, budget); err != nil {
		return 0, err
	}
	return len(hot), nil
}
