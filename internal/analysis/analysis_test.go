package analysis_test

import (
	"bytes"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, fixture("determinism", "sim"), analysis.Determinism)
}

func TestFacadeBoundaryCmdFixture(t *testing.T) {
	analysistest.Run(t, fixture("facadeboundary", "cmdtool"), analysis.FacadeBoundary)
}

func TestFacadeBoundaryBackedgeFixture(t *testing.T) {
	analysistest.Run(t, fixture("facadeboundary", "backedge"), analysis.FacadeBoundary)
}

func TestCtxDisciplineFixture(t *testing.T) {
	analysistest.Run(t, fixture("ctxdiscipline", "facade"), analysis.CtxDiscipline)
}

func TestHotPathFixture(t *testing.T) {
	analysistest.Run(t, fixture("hotpath", "hot"), analysis.HotPath)
}

// TestBareAllowDirective pins the auditability contract of the escape hatch:
// a //worksim:allow without a reason is itself reported and suppresses
// nothing, so the wall-clock read on the next line still surfaces.
func TestBareAllowDirective(t *testing.T) {
	pkg, err := analysis.LoadFixture(fixture("allowdirective", "bare"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Determinism})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var names []string
	for _, d := range diags {
		names = append(names, d.Analyzer)
	}
	if len(diags) != 2 || diags[0].Analyzer != "allowdirective" || diags[1].Analyzer != "determinism" {
		t.Fatalf("want [allowdirective determinism] (bare allow reported, wall-clock read not suppressed), got %v:\n%v", names, diags)
	}
}

func TestGoHygieneFixture(t *testing.T) {
	analysistest.Run(t, fixture("gohygiene", "spawn"), analysis.GoHygiene)
}

func TestSyncMisuseFixture(t *testing.T) {
	analysistest.Run(t, fixture("syncmisuse", "prims"), analysis.SyncMisuse)
}

// TestAuditLedger pins the -audit contract against the gohygiene fixture: the
// reasoned allow that suppresses a real finding appears in the ledger with
// the suppressing analyzer attributed, and the audit itself raises no
// failures.
func TestAuditLedger(t *testing.T) {
	pkg, err := analysis.LoadFixture(fixture("gohygiene", "spawn"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	report, failures, err := analysis.Audit("", []*analysis.Package{pkg}, []*analysis.Analyzer{analysis.GoHygiene})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if len(failures) != 0 {
		t.Fatalf("clean fixture must audit without failures, got:\n%v", failures)
	}
	if len(report.Allows) != 1 {
		t.Fatalf("want 1 ledger entry, got %d: %+v", len(report.Allows), report.Allows)
	}
	entry := report.Allows[0]
	if entry.Suppressed != 1 || len(entry.Analyzers) != 1 || entry.Analyzers[0] != "gohygiene" {
		t.Errorf("entry must attribute one gohygiene suppression, got %+v", entry)
	}
	if !strings.Contains(entry.Reason, "fire-and-forget") {
		t.Errorf("entry must carry the directive's reason, got %q", entry.Reason)
	}
}

// TestAuditOrphans pins the -audit failure modes: an orphaned directive (it
// suppresses nothing) and a bare directive both fail, while the genuinely
// suppressing directive passes.
func TestAuditOrphans(t *testing.T) {
	pkg, err := analysis.LoadFixture(fixture("audit", "orphan"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	report, failures, err := analysis.Audit("", []*analysis.Package{pkg}, []*analysis.Analyzer{analysis.GoHygiene})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	var orphaned, bare int
	for _, d := range failures {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			bare++
		case strings.Contains(d.Message, "suppresses nothing"):
			orphaned++
		}
	}
	if orphaned != 1 || bare != 1 {
		t.Fatalf("want 1 orphaned + 1 bare failure, got %d/%d:\n%v", orphaned, bare, failures)
	}
	// The ledger lists both reasoned directives; the orphan's analyzer list is
	// empty while the live one attributes gohygiene.
	if len(report.Allows) != 2 {
		t.Fatalf("want 2 ledger entries, got %+v", report.Allows)
	}
	live, orphan := report.Allows[0], report.Allows[1]
	if live.Suppressed != 1 || orphan.Suppressed != 0 || len(orphan.Analyzers) != 0 {
		t.Errorf("want live entry first (suppressed=1) and orphan second (suppressed=0), got %+v", report.Allows)
	}
}

// TestJSONSchemaGolden locks the `worksimlint -json` record schema — field
// names, order, root-relative slash-separated paths and array framing — so
// downstream parsers (CI annotations, editor integrations) never break
// silently.
func TestJSONSchemaGolden(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Analyzer: "determinism",
			Pos:      token.Position{Filename: "/m/internal/radio/radio.go", Line: 42, Column: 7},
			Message:  "time.Now reads the wall clock",
		},
		{
			Analyzer: "escapebudget",
			Pos:      token.Position{Filename: "/m/lint/escape_budget.json", Line: 1, Column: 1},
			Message:  "orphaned budget entry",
		},
	}
	var buf bytes.Buffer
	if err := analysis.EncodeDiagnostics(&buf, "/m", diags); err != nil {
		t.Fatalf("encode: %v", err)
	}
	const golden = `[
  {
    "file": "internal/radio/radio.go",
    "line": 42,
    "col": 7,
    "analyzer": "determinism",
    "message": "time.Now reads the wall clock"
  },
  {
    "file": "lint/escape_budget.json",
    "line": 1,
    "col": 1,
    "analyzer": "escapebudget",
    "message": "orphaned budget entry"
  }
]
`
	if buf.String() != golden {
		t.Errorf("-json schema drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), golden)
	}

	// The empty result is a JSON array too, never null.
	buf.Reset()
	if err := analysis.EncodeDiagnostics(&buf, "/m", nil); err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if buf.String() != "[]\n" {
		t.Errorf("empty diagnostics must encode as [], got %q", buf.String())
	}
}

// TestFormatDiagnosticRootRelative pins the text output form.
func TestFormatDiagnosticRootRelative(t *testing.T) {
	d := analysis.Diagnostic{
		Analyzer: "gohygiene",
		Pos:      token.Position{Filename: "/m/worksim/serve.go", Line: 9, Column: 2},
		Message:  "go statement is not join-tracked",
	}
	got := analysis.FormatDiagnostic("/m", d)
	want := "worksim/serve.go:9:2: [gohygiene] go statement is not join-tracked"
	if got != want {
		t.Errorf("FormatDiagnostic = %q, want %q", got, want)
	}
}
