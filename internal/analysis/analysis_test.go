package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, fixture("determinism", "sim"), analysis.Determinism)
}

func TestFacadeBoundaryCmdFixture(t *testing.T) {
	analysistest.Run(t, fixture("facadeboundary", "cmdtool"), analysis.FacadeBoundary)
}

func TestFacadeBoundaryBackedgeFixture(t *testing.T) {
	analysistest.Run(t, fixture("facadeboundary", "backedge"), analysis.FacadeBoundary)
}

func TestCtxDisciplineFixture(t *testing.T) {
	analysistest.Run(t, fixture("ctxdiscipline", "facade"), analysis.CtxDiscipline)
}

func TestHotPathFixture(t *testing.T) {
	analysistest.Run(t, fixture("hotpath", "hot"), analysis.HotPath)
}

// TestBareAllowDirective pins the auditability contract of the escape hatch:
// a //worksim:allow without a reason is itself reported and suppresses
// nothing, so the wall-clock read on the next line still surfaces.
func TestBareAllowDirective(t *testing.T) {
	pkg, err := analysis.LoadFixture(fixture("allowdirective", "bare"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Determinism})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var names []string
	for _, d := range diags {
		names = append(names, d.Analyzer)
	}
	if len(diags) != 2 || diags[0].Analyzer != "allowdirective" || diags[1].Analyzer != "determinism" {
		t.Fatalf("want [allowdirective determinism] (bare allow reported, wall-clock read not suppressed), got %v:\n%v", names, diags)
	}
}
