package resultcache

// Result-cache tests: the content address must cover every key field, and a
// damaged entry — truncated, bit-flipped, or copied to the wrong address —
// must always be detected, counted, evicted and recomputed, never trusted.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Metrics map[string]float64 `json:"metrics"`
	Note    string             `json:"note,omitempty"`
}

func baseKey() Key {
	return Key{
		SpecHash:   strings.Repeat("ab", 32),
		Profile:    "secured",
		Seed:       7,
		DurationNs: int64(240e9),
		SampleNs:   0,
		EarlyStop:  "",
		Engine:     "0.6.0",
	}
}

// TestRoundTrip: Put then Get returns the exact payload and counts one
// store, one hit.
func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := baseKey()
	in := payload{Metrics: map[string]float64{"logs": 12, "collisions": 0}, Note: "x"}
	if err := c.Put(k, in); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var out payload
	hit, err := c.Get(k, &out)
	if err != nil || !hit {
		t.Fatalf("Get = (%v, %v), want hit", hit, err)
	}
	if out.Note != in.Note || out.Metrics["logs"] != 12 || out.Metrics["collisions"] != 0 {
		t.Fatalf("payload mismatch: got %+v", out)
	}
	st := c.Stats()
	if st.Stored != 1 || st.Hits != 1 || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 1 stored / 1 hit", st)
	}
}

// TestMiss: an absent key is a miss, not an error.
func TestMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var out payload
	hit, err := c.Get(baseKey(), &out)
	if err != nil || hit {
		t.Fatalf("Get on empty cache = (%v, %v), want clean miss", hit, err)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

// TestKeySensitivity: changing any single key field changes the content
// address — the property that makes a stale or foreign hit impossible.
func TestKeySensitivity(t *testing.T) {
	base := baseKey()
	variants := map[string]Key{}
	k := base
	k.SpecHash = strings.Repeat("cd", 32)
	variants["specHash"] = k
	k = base
	k.Profile = "unsecured"
	variants["profile"] = k
	k = base
	k.Seed = 8
	variants["seed"] = k
	k = base
	k.DurationNs++
	variants["durationNs"] = k
	k = base
	k.SampleNs = int64(1e9)
	variants["sampleNs"] = k
	k = base
	k.EarlyStop = "collision"
	variants["earlyStop"] = k
	k = base
	k.Engine = "0.7.0"
	variants["engine"] = k

	ids := map[string]string{"": base.ID()}
	for field, v := range variants {
		id := v.ID()
		if id == base.ID() {
			t.Errorf("changing %s did not change the cache ID", field)
		}
		for prev, prevID := range ids {
			if id == prevID {
				t.Errorf("variants %q and %q collide on ID %s", field, prev, id)
			}
		}
		ids[field] = id
	}

	// And the cache behaves accordingly: an entry stored under the base key
	// is invisible to every variant.
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := c.Put(base, payload{Note: "base"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for field, v := range variants {
		var out payload
		hit, err := c.Get(v, &out)
		if err != nil {
			t.Fatalf("Get(%s variant): %v", field, err)
		}
		if hit {
			t.Errorf("variant %q hit the base entry", field)
		}
	}
}

// entryPath locates the single entry file of a one-entry cache.
func entryPath(t *testing.T, c *Cache, k Key) string {
	t.Helper()
	id := k.ID()
	p := filepath.Join(c.Root(), id[:2], id+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file %s: %v", p, err)
	}
	return p
}

// TestCorruptionDetected: truncation, bit flips and key tampering are all
// rejected by checksum/key comparison, counted as corrupt, evicted from
// disk, and reported as a miss so the caller recomputes.
func TestCorruptionDetected(t *testing.T) {
	damage := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			// Flip one bit inside the payload section (past the envelope
			// prefix), where only the checksum can catch it.
			out[len(out)-10] ^= 0x01
			return out
		},
		"empty":              func([]byte) []byte { return nil },
		"not-json":           func([]byte) []byte { return []byte("not an entry at all") },
		"truncated-one-byte": func(b []byte) []byte { return b[:len(b)-1] },
	}
	for name, mutate := range damage {
		t.Run(name, func(t *testing.T) {
			c, err := Open(t.TempDir())
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			k := baseKey()
			if err := c.Put(k, payload{Metrics: map[string]float64{"logs": 3}}); err != nil {
				t.Fatalf("Put: %v", err)
			}
			p := entryPath(t, c, k)
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatalf("read entry: %v", err)
			}
			if err := os.WriteFile(p, mutate(b), 0o644); err != nil {
				t.Fatalf("write damaged entry: %v", err)
			}

			var out payload
			hit, err := c.Get(k, &out)
			if err != nil {
				t.Fatalf("Get on damaged entry: %v", err)
			}
			if hit {
				t.Fatal("damaged entry served as a hit")
			}
			if st := c.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats = %+v, want 1 corrupt", st)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("damaged entry not evicted: stat err = %v", err)
			}
			// Recompute path: a fresh Put fully heals the slot.
			if err := c.Put(k, payload{Metrics: map[string]float64{"logs": 3}}); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
			hit, err = c.Get(k, &out)
			if err != nil || !hit {
				t.Fatalf("Get after heal = (%v, %v), want hit", hit, err)
			}
		})
	}
}

// TestWrongAddress: an entry copied to another key's address fails the
// stored-key comparison even though its checksum is intact.
func TestWrongAddress(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := baseKey()
	if err := c.Put(k, payload{Note: "original"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	src := entryPath(t, c, k)
	other := k
	other.Seed = 99
	id := other.ID()
	dst := filepath.Join(c.Root(), id[:2], id+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var out payload
	hit, err := c.Get(other, &out)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if hit {
		t.Fatal("entry at the wrong address served as a hit")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}
}

// TestEvictionIsRemove: deleting any entry file (or the whole cache root)
// reads as a plain miss — eviction needs no index maintenance.
func TestEvictionIsRemove(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := baseKey()
	if err := c.Put(k, payload{Note: "x"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.Remove(entryPath(t, c, k)); err != nil {
		t.Fatal(err)
	}
	var out payload
	hit, err := c.Get(k, &out)
	if err != nil || hit {
		t.Fatalf("Get after eviction = (%v, %v), want clean miss", hit, err)
	}
	if st := c.Stats(); st.Corrupt != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want a miss and no corruption", st)
	}
}

// TestLayout: entries fan out under two-hex-digit prefix directories and no
// temp files survive a completed Put.
func TestLayout(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := baseKey()
	if err := c.Put(k, payload{Note: "x"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	id := k.ID()
	if _, err := os.Stat(filepath.Join(dir, id[:2], id+".json")); err != nil {
		t.Fatalf("entry not at <root>/%s/%s.json: %v", id[:2], id, err)
	}
	var stray []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), ".put-") {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) > 0 {
		t.Fatalf("temp files left behind: %v", stray)
	}
}

// TestOpenRejectsEmptyDir: an empty root is a configuration error.
func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") unexpectedly succeeded")
	}
}
