// Package resultcache is a content-addressed, file-backed cache for
// completed simulation runs: the layer that makes repeated campaigns cheap.
// A cache entry is keyed on everything that shapes a run's outcome — the
// canonical scenario-spec hash (profile included), the profile name for
// auditability, the seed, the simulated duration, the sampling interval, the
// named early-stop predicate and the engine version — so two runs share an
// entry exactly when the engine guarantees them byte-identical results.
//
// Layout and safety: an entry lives at <root>/<id[:2]>/<id>.json where id is
// the SHA-256 of the key's canonical JSON. The file is an envelope carrying
// the full key (for audit and collision detection), the SHA-256 of the
// payload bytes, and the payload itself. Writes go through a temp file and
// an atomic rename, so a reader never observes a partial entry; any file may
// be deleted at any time (eviction is `rm`), which reads as a miss; and a
// truncated, bit-flipped or otherwise damaged entry fails its checksum or
// key comparison, is counted as corrupt, removed, and recomputed — a damaged
// entry is never trusted.
//
// The cache deliberately stores no wall-clock metadata: entries are pure
// functions of their key, so the package stays inside the repo's
// determinism perimeter.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Key addresses one cached run. Every field participates in the content
// address; none carries an omitempty tag, so the canonical key bytes are a
// fixed-shape JSON document.
type Key struct {
	// SpecHash is the canonical scenario-spec hash (scenario.Spec.Hash) of
	// the profile-resolved spec the run executed.
	SpecHash string `json:"specHash"`
	// Profile is the security-profile name, kept alongside the hash for
	// auditability even though the hash already covers the resolved profile.
	Profile string `json:"profile"`
	// Seed roots every random stream of the run.
	Seed int64 `json:"seed"`
	// DurationNs is the simulated duration.
	DurationNs int64 `json:"durationNs"`
	// SampleNs is the timeseries sampling interval (0 = no sampling).
	SampleNs int64 `json:"sampleNs"`
	// EarlyStop is the named early-stop predicate ("" = none). Unnamed
	// predicates cannot be cached — a bare func has no content address.
	EarlyStop string `json:"earlyStop"`
	// Engine is the engine version that produced the result.
	Engine string `json:"engine"`
}

// ID returns the entry's content address: SHA-256 hex over the key's
// canonical JSON. Changing any key field changes the ID.
func (k Key) ID() string {
	b, err := json.Marshal(k)
	if err != nil {
		// A struct of strings and ints cannot fail to marshal.
		panic("resultcache: marshal key: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Gets served from a verified entry.
	Hits int64 `json:"hits"`
	// Misses counts Gets that found no entry.
	Misses int64 `json:"misses"`
	// Corrupt counts entries rejected by checksum, key or decode failure.
	Corrupt int64 `json:"corrupt"`
	// Stored counts successful Puts.
	Stored int64 `json:"stored"`
}

// Cache is a file-backed result cache rooted at one directory. All methods
// are safe for concurrent use by any number of goroutines and processes
// (cross-process safety comes from the atomic-rename write path).
type Cache struct {
	root string

	hits, misses, corrupt, stored atomic.Int64
}

// Open returns a cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("resultcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{root: dir}, nil
}

// Root returns the cache's root directory.
func (c *Cache) Root() string { return c.root }

// entry is the on-disk envelope of one cached run.
type entry struct {
	// Key is the full content-address key, stored for audit and compared on
	// read so a hash collision (or a file copied to the wrong address) can
	// never serve a foreign result.
	Key Key `json:"key"`
	// PayloadSHA256 checksums the exact payload bytes below.
	PayloadSHA256 string `json:"payloadSha256"`
	// Payload is the cached run record, opaque to the cache.
	Payload json.RawMessage `json:"payload"`
}

// path maps an ID to its entry file, fanned out over a two-hex-digit prefix
// directory so huge caches stay listable.
func (c *Cache) path(id string) string {
	return filepath.Join(c.root, id[:2], id+".json")
}

// Get looks k up and, on a verified hit, unmarshals the stored payload into
// into and returns true. A missing entry is a miss (false, nil). A damaged
// entry — undecodable envelope, key mismatch, checksum mismatch, or a
// payload that no longer unmarshals — is counted corrupt, removed so it
// cannot damage a later run, and reported as a miss: callers always
// recompute rather than trust it. A non-nil error is an I/O failure, not a
// miss.
func (c *Cache) Get(k Key, into any) (bool, error) {
	id := k.ID()
	b, err := os.ReadFile(c.path(id))
	if errors.Is(err, os.ErrNotExist) {
		c.misses.Add(1)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("resultcache: read %s: %w", id, err)
	}
	var e entry
	if json.Unmarshal(b, &e) != nil || e.Key != k {
		return c.reject(id), nil
	}
	sum := sha256.Sum256(e.Payload)
	if hex.EncodeToString(sum[:]) != e.PayloadSHA256 {
		return c.reject(id), nil
	}
	if json.Unmarshal(e.Payload, into) != nil {
		return c.reject(id), nil
	}
	c.hits.Add(1)
	return true, nil
}

// reject counts and removes a damaged entry. Removal is best-effort: even if
// it fails the caller recomputes, and the next Put overwrites atomically.
func (c *Cache) reject(id string) bool {
	c.corrupt.Add(1)
	os.Remove(c.path(id))
	return false
}

// Put stores payload under k. The write is atomic (temp file + rename in
// the entry's own directory), so concurrent readers and crashed writers
// never surface a partial entry.
func (c *Cache) Put(k Key, payload any) error {
	pb, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("resultcache: marshal payload: %w", err)
	}
	sum := sha256.Sum256(pb)
	eb, err := json.Marshal(entry{Key: k, PayloadSHA256: hex.EncodeToString(sum[:]), Payload: pb})
	if err != nil {
		return fmt.Errorf("resultcache: marshal entry: %w", err)
	}
	path := c.path(k.ID())
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(eb); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: write entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: close entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: commit entry: %w", err)
	}
	c.stored.Add(1)
	return nil
}

// Stats snapshots the hit/miss/corrupt/stored counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Stored:  c.stored.Load(),
	}
}
