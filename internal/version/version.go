// Package version pins the engine version every artifact-stamping layer
// shares: the worksim façade re-exports it as worksim.Version, the campaign
// engine stamps it into sweep JSON and campaign result headers, and the
// content-addressed result cache folds it into every cache key so artifacts
// produced by one engine version are never mistaken for another's.
//
// The constant lives under internal/ (rather than on the façade) because
// internal packages may never import the façade back — the boundary the
// facadeboundary analyzer enforces — while the façade is free to re-export
// internal constants.
package version

// Engine is the engine/façade semantic version. Bump the minor on surface
// additions and the major on breaking changes; every cmd/ binary reports it
// via -version, every sweep export and campaign result carries it in its
// "version" header, and every result-cache entry is keyed on it.
const Engine = "0.6.0"
