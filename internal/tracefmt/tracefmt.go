// Package tracefmt is the JSON-lines wire encoding of the typed event
// stream: every event a session publishes becomes one line of the form
//
//	{"event": KIND, "data": {...}}
//
// in simulation order. The format is shared verbatim by the two transports
// that expose live event feeds — `worksite-sim -trace` writes the lines to a
// file or stdout, and the worksimd daemon replays them as Server-Sent-Event
// payloads — so the schema can never fork between the CLI and the service.
package tracefmt

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/worksite"
)

// Line is the wire envelope of one event.
type Line struct {
	Event string `json:"event"`
	Data  any    `json:"data"`
}

// Marshal encodes one event as a single JSON line without the trailing
// newline — the exact bytes a Writer emits for the same event, and the exact
// SSE data: payload the daemon streams.
func Marshal(e worksite.Event) ([]byte, error) {
	return json.Marshal(Line{Event: e.EventKind(), Data: e})
}

// Observer adapts a per-event callback into a full worksite.Observer: every
// event type is forwarded to fn in publication order. It is the single
// fan-in point both trace transports subscribe with.
func Observer(fn func(worksite.Event)) worksite.Observer {
	return &worksite.ObserverFuncs{
		Tick:             func(e worksite.TickSnapshot) { fn(e) },
		Alert:            func(e worksite.AlertRaised) { fn(e) },
		AttackPhase:      func(e worksite.AttackPhase) { fn(e) },
		SecurityResponse: func(e worksite.SecurityResponse) { fn(e) },
		ModeChange:       func(e worksite.ModeChange) { fn(e) },
		MissionPhase:     func(e worksite.MissionPhase) { fn(e) },
		Safety:           func(e worksite.SafetyEvent) { fn(e) },
	}
}

// Writer streams events as JSON lines to an io.Writer through an internal
// buffer. Writes happen inside the simulation loop (observers run
// synchronously), so errors are latched rather than surfaced per event:
// check Err or the Flush result once the run ends.
//
// Flush is idempotent and must be called (directly or via Close) before the
// sink is read or the process exits — in particular on the cancellation
// path, where the buffered tail of the trace is the most diagnostic part. A
// flushed Writer never leaves a truncated line behind for events it
// observed.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewWriter returns a Writer streaming JSON lines to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Observer returns the observer to subscribe on a session: every published
// event becomes one buffered JSON line.
func (w *Writer) Observer() worksite.Observer {
	return Observer(func(e worksite.Event) { w.encode(e) })
}

// encode writes one event line, latching the first error.
func (w *Writer) encode(e worksite.Event) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(Line{Event: e.EventKind(), Data: e})
}

// Flush drains the internal buffer to the sink and returns the first error
// seen by any write so far. Safe to call repeatedly; later calls after a
// clean flush are no-ops.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Err returns the latched write error, if any.
func (w *Writer) Err() error { return w.err }
