package tracefmt

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/worksite"
)

// TestMarshalEnvelope: Marshal wraps any event in the stable
// {"event": KIND, "data": {...}} envelope, one line, no trailing newline.
func TestMarshalEnvelope(t *testing.T) {
	events := []worksite.Event{
		worksite.ModeChange{At: 3 * time.Second, From: "normal", To: "cautious"},
		worksite.AttackPhase{At: time.Minute, Attack: "gnss-jam", Active: true},
		worksite.MissionPhase{At: 9 * time.Second, Phase: "loading", Detail: "phase -> loading"},
		worksite.SafetyEvent{At: 2 * time.Second, Kind: worksite.SafetyUnsafeEnter},
		worksite.SecurityResponse{At: time.Second, Kind: worksite.ResponseChannelHop, Detail: "ch 3 -> 7"},
	}
	for _, e := range events {
		b, err := Marshal(e)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", e, err)
		}
		if bytes.ContainsRune(b, '\n') {
			t.Fatalf("Marshal(%T) contains a newline: %q", e, b)
		}
		var line struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(b, &line); err != nil {
			t.Fatalf("Marshal(%T) is not a JSON object: %v", e, err)
		}
		if line.Event != e.EventKind() {
			t.Fatalf("Marshal(%T).event = %q, want %q", e, line.Event, e.EventKind())
		}
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line.Data, want) {
			t.Fatalf("Marshal(%T).data = %s, want %s", e, line.Data, want)
		}
	}
}

// TestObserverFansInAllEventTypes: the adapter forwards every event type to
// the single callback, in publication order.
func TestObserverFansInAllEventTypes(t *testing.T) {
	var kinds []string
	obs := Observer(func(e worksite.Event) { kinds = append(kinds, e.EventKind()) })
	obs.OnTick(worksite.TickSnapshot{})
	obs.OnAlert(worksite.AlertRaised{})
	obs.OnAttackPhase(worksite.AttackPhase{})
	obs.OnSecurityResponse(worksite.SecurityResponse{})
	obs.OnModeChange(worksite.ModeChange{})
	obs.OnMissionPhase(worksite.MissionPhase{})
	obs.OnSafetyEvent(worksite.SafetyEvent{})
	want := []string{"tick", "alert", "attack-phase", "security-response",
		"mode-change", "mission-phase", "safety"}
	if len(kinds) != len(want) {
		t.Fatalf("observer forwarded %d events, want %d: %v", len(kinds), len(want), kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("event %d kind = %q, want %q (all: %v)", i, kinds[i], k, kinds)
		}
	}
}

// TestWriterLinesMatchMarshal: the buffered Writer emits exactly one line per
// event, each byte-identical to Marshal of the same event.
func TestWriterLinesMatchMarshal(t *testing.T) {
	events := []worksite.Event{
		worksite.ModeChange{At: time.Second, From: "normal", To: "alarmed"},
		worksite.AttackPhase{At: 2 * time.Second, Attack: "rf-jam", Active: true},
		worksite.AttackPhase{At: 3 * time.Second, Attack: "rf-jam", Active: false},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		w.encode(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("writer emitted %d lines, want %d:\n%s", len(lines), len(events), buf.String())
	}
	for i, e := range events {
		want, err := Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if lines[i] != string(want) {
			t.Fatalf("line %d = %s, want %s", i, lines[i], want)
		}
	}
}

// TestWriterFlushIdempotent: repeated flushes after a clean flush are no-ops
// and emit nothing new.
func TestWriterFlushIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.encode(worksite.ModeChange{From: "a", To: "b"})
	if err := w.Flush(); err != nil {
		t.Fatalf("first Flush: %v", err)
	}
	n := buf.Len()
	if err := w.Flush(); err != nil {
		t.Fatalf("second Flush: %v", err)
	}
	if buf.Len() != n {
		t.Fatalf("second Flush wrote %d extra bytes", buf.Len()-n)
	}
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, errors.New("sink gone") }

// TestWriterLatchesError: a failing sink latches the first error; later
// encodes are dropped and Flush/Err surface the latched error.
func TestWriterLatchesError(t *testing.T) {
	w := NewWriter(errWriter{})
	// Overflow the bufio buffer so the underlying write error fires.
	for i := 0; i < 10000; i++ {
		w.encode(worksite.MissionPhase{Phase: "to-landing", Detail: strings.Repeat("x", 64)})
	}
	if w.Err() == nil {
		t.Fatal("Err() = nil after writing through a failing sink")
	}
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "sink gone") {
		t.Fatalf("Flush = %v, want latched sink error", err)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("error did not stay latched across Flush calls")
	}
}
