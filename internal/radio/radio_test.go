package radio

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/simclock"
)

type fixture struct {
	sched  *simclock.Scheduler
	medium *Medium
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sched := simclock.New()
	grid, err := geo.NewGrid(100, 100, 2)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := NewMedium(sched, grid, rng.New(1), Config{})
	return &fixture{sched: sched, medium: m}
}

func staticNode(id NodeID, pos geo.Vec, ch int) *Node {
	return &Node{
		ID:         id,
		Pos:        func() geo.Vec { return pos },
		Channel:    ch,
		TxPowerDBm: 20,
		Online:     true,
	}
}

func (f *fixture) pump(t *testing.T) {
	t.Helper()
	if err := f.sched.Run(f.sched.Now() + 1e9); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCloseRangeDelivery(t *testing.T) {
	f := newFixture(t)
	var got []Packet
	a := staticNode("a", geo.V(10, 10), 1)
	b := staticNode("b", geo.V(20, 10), 1)
	b.Recv = func(p Packet) { got = append(got, p) }
	f.medium.AddNode(a)
	f.medium.AddNode(b)

	delivered := 0
	for i := 0; i < 100; i++ {
		if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 100}); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	f.pump(t)
	delivered = len(got)
	if delivered < 95 {
		t.Fatalf("close-range delivery = %d/100, want >= 95", delivered)
	}
}

func TestFarRangeDrops(t *testing.T) {
	f := newFixture(t)
	received := 0
	a := staticNode("a", geo.V(0, 0), 1)
	b := staticNode("b", geo.V(4000, 4000), 1) // far outside the grid, huge path loss
	b.Recv = func(Packet) { received++ }
	f.medium.AddNode(a)
	f.medium.AddNode(b)
	for i := 0; i < 50; i++ {
		if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 100}); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	f.pump(t)
	if received > 5 {
		t.Fatalf("far-range delivery = %d/50, want ~0", received)
	}
	if f.medium.Stats().Drops["weak-signal"] == 0 {
		t.Fatal("expected weak-signal drops")
	}
}

func TestChannelIsolation(t *testing.T) {
	f := newFixture(t)
	received := 0
	a := staticNode("a", geo.V(10, 10), 1)
	b := staticNode("b", geo.V(12, 10), 2)
	b.Recv = func(Packet) { received++ }
	f.medium.AddNode(a)
	f.medium.AddNode(b)
	if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 10}); err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	f.pump(t)
	if received != 0 {
		t.Fatal("cross-channel packet delivered")
	}
}

func TestBroadcastReachesAllOnChannel(t *testing.T) {
	f := newFixture(t)
	counts := map[NodeID]int{}
	a := staticNode("a", geo.V(50, 50), 1)
	f.medium.AddNode(a)
	for _, id := range []NodeID{"b", "c", "d"} {
		id := id
		n := staticNode(id, geo.V(55, 50), 1)
		n.Recv = func(Packet) { counts[id]++ }
		f.medium.AddNode(n)
	}
	other := staticNode("e", geo.V(55, 50), 2)
	other.Recv = func(Packet) { counts["e"]++ }
	f.medium.AddNode(other)

	for i := 0; i < 20; i++ {
		if err := f.medium.Transmit(Packet{From: "a", To: Broadcast, Size: 50}); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	f.pump(t)
	for _, id := range []NodeID{"b", "c", "d"} {
		if counts[id] < 15 {
			t.Fatalf("node %s received %d/20 broadcasts", id, counts[id])
		}
	}
	if counts["e"] != 0 {
		t.Fatal("broadcast leaked across channels")
	}
}

func TestJammingCausesLoss(t *testing.T) {
	f := newFixture(t)
	received := 0
	a := staticNode("a", geo.V(10, 10), 1)
	b := staticNode("b", geo.V(40, 10), 1)
	b.Recv = func(Packet) { received++ }
	f.medium.AddNode(a)
	f.medium.AddNode(b)

	jammer := &Jammer{
		ID:       "jam-1",
		Pos:      func() geo.Vec { return geo.V(42, 10) },
		Channel:  1,
		PowerDBm: 30,
		Active:   true,
	}
	f.medium.AddJammer(jammer)
	for i := 0; i < 50; i++ {
		if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 100}); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	f.pump(t)
	jammedLoss := 50 - received

	// Deactivate and compare.
	jammer.Active = false
	received = 0
	for i := 0; i < 50; i++ {
		if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 100}); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	f.pump(t)
	cleanLoss := 50 - received
	if jammedLoss <= cleanLoss {
		t.Fatalf("jamming loss %d not worse than clean loss %d", jammedLoss, cleanLoss)
	}
	if f.medium.Stats().Drops["jammed"] == 0 {
		t.Fatal("expected jammed drop classification")
	}
}

func TestWidebandJammerHitsAllChannels(t *testing.T) {
	f := newFixture(t)
	received := 0
	a := staticNode("a", geo.V(10, 10), 3)
	b := staticNode("b", geo.V(40, 10), 3)
	b.Recv = func(Packet) { received++ }
	f.medium.AddNode(a)
	f.medium.AddNode(b)
	f.medium.AddJammer(&Jammer{
		ID:       "wb",
		Pos:      func() geo.Vec { return geo.V(40, 12) },
		Channel:  1, // mismatched, but wideband
		Wideband: true,
		PowerDBm: 30,
		Active:   true,
	})
	for i := 0; i < 50; i++ {
		if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 100}); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	f.pump(t)
	if received > 25 {
		t.Fatalf("wideband jammer: %d/50 delivered, want heavy loss", received)
	}
}

func TestOfflineSenderErrors(t *testing.T) {
	f := newFixture(t)
	a := staticNode("a", geo.V(10, 10), 1)
	a.Online = false
	f.medium.AddNode(a)
	if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 10}); err == nil {
		t.Fatal("want error for offline sender")
	}
	if err := f.medium.Transmit(Packet{From: "ghost", To: "b", Size: 10}); err == nil {
		t.Fatal("want error for unknown sender")
	}
}

func TestOfflineReceiverDropped(t *testing.T) {
	f := newFixture(t)
	received := 0
	a := staticNode("a", geo.V(10, 10), 1)
	b := staticNode("b", geo.V(12, 10), 1)
	b.Online = false
	b.Recv = func(Packet) { received++ }
	f.medium.AddNode(a)
	f.medium.AddNode(b)
	if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 10}); err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	f.pump(t)
	if received != 0 {
		t.Fatal("offline receiver got packet")
	}
	if f.medium.Stats().Drops["offline"] != 1 {
		t.Fatalf("offline drops = %d, want 1", f.medium.Stats().Drops["offline"])
	}
}

func TestFoliageAttenuation(t *testing.T) {
	sched := simclock.New()
	grid, err := geo.NewGrid(100, 1, 1)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := NewMedium(sched, grid, rng.New(5), Config{ShadowSigmaDB: 0.001})
	a := staticNode("a", geo.V(0.5, 0.5), 1)
	b := staticNode("b", geo.V(80.5, 0.5), 1)
	m.AddNode(a)
	m.AddNode(b)
	clearSINR, ok := m.SINRBetween("a", "b")
	if !ok {
		t.Fatal("SINRBetween failed")
	}
	// Plant a dense grove between them.
	for col := 20; col < 60; col++ {
		grid.Set(geo.C(col, 0), geo.Tree)
	}
	groveSINR, _ := m.SINRBetween("a", "b")
	if groveSINR >= clearSINR-5 {
		t.Fatalf("foliage attenuation too weak: clear %.1f dB vs grove %.1f dB", clearSINR, groveSINR)
	}
}

func TestObserverSeesTraffic(t *testing.T) {
	f := newFixture(t)
	a := staticNode("a", geo.V(10, 10), 1)
	b := staticNode("b", geo.V(12, 10), 1)
	f.medium.AddNode(a)
	f.medium.AddNode(b)
	observed := 0
	f.medium.Observer = func(Packet, NodeID, float64, DropCause) { observed++ }
	for i := 0; i < 5; i++ {
		if err := f.medium.Transmit(Packet{From: "a", To: "b", Size: 10}); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	f.pump(t)
	if observed != 5 {
		t.Fatalf("observer saw %d attempts, want 5", observed)
	}
}

func TestAirtimeScalesWithSize(t *testing.T) {
	f := newFixture(t)
	small := f.medium.Airtime(10)
	large := f.medium.Airtime(1000)
	if large <= small {
		t.Fatalf("airtime(1000)=%v not > airtime(10)=%v", large, small)
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	f := newFixture(t)
	s := f.medium.Stats()
	s.Drops["weak-signal"] = 999
	if f.medium.Stats().Drops["weak-signal"] == 999 {
		t.Fatal("Stats returned a live reference")
	}
}
