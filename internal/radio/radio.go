// Package radio simulates the shared wireless medium of the forestry
// worksite.
//
// The paper's survey (Section IV-C, after Gaber et al.) identifies wireless
// communication as the dominant cybersecurity attack surface of autonomous
// haulage-style systems: frequency interference, channel utilisation, signal
// jamming. This package reproduces that surface at the physical abstraction
// those attacks target: a log-distance path-loss model with per-tree foliage
// attenuation, a noise floor, additive interference from jammers, and an
// SINR-driven packet error model. Everything above (frames, association,
// de-auth) lives in package netsim.
package radio

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// NodeID identifies a radio on the worksite.
type NodeID string

// Broadcast addresses all nodes on the sender's channel.
const Broadcast NodeID = "*"

// Packet is an over-the-air transmission. The payload is opaque to the radio
// layer; Size drives airtime and is in bytes.
type Packet struct {
	From    NodeID
	To      NodeID
	Size    int
	Payload interface{}
}

// Refcounted is implemented by pooled packet payloads (the link layer's
// recycled frames). The medium retains one reference per scheduled delivery
// and releases it once the delivery callback has run, so the payload's owner
// can recycle it as soon as the last in-flight copy lands. Payloads that do
// not implement it are simply garbage-collected.
type Refcounted interface {
	Retain()
	Release()
}

// DropCause classifies why a packet failed to reach a receiver.
type DropCause int

// Drop causes.
const (
	DropNone DropCause = iota
	DropWeakSignal
	DropJammed
	DropOffline
)

// String returns a short cause label.
func (c DropCause) String() string {
	switch c {
	case DropNone:
		return "delivered"
	case DropWeakSignal:
		return "weak-signal"
	case DropJammed:
		return "jammed"
	case DropOffline:
		return "offline"
	default:
		return fmt.Sprintf("drop(%d)", int(c))
	}
}

// Node is a radio endpoint. Pos is sampled at transmit time so moving
// machines are handled naturally. Recv is invoked on successful delivery.
type Node struct {
	ID         NodeID
	Pos        func() geo.Vec
	Channel    int
	TxPowerDBm float64
	Online     bool
	Recv       func(p Packet)
}

// Jammer is an interference source. While active it raises the interference
// power at every receiver on its channel (or on all channels if Wideband).
type Jammer struct {
	ID       string
	Pos      func() geo.Vec
	Channel  int
	Wideband bool
	PowerDBm float64
	Active   bool
}

// Config tunes the propagation model. Zero fields take the documented
// defaults from DefaultConfig.
type Config struct {
	// PathLossExponent is the log-distance exponent; forest terrain is harsher
	// than free space. Default 2.9.
	PathLossExponent float64
	// RefLossDB is the loss at 1 m. Default 40 dB (2.4 GHz-ish).
	RefLossDB float64
	// FoliageLossDB is the extra attenuation per occluding cell crossed by the
	// propagation path. Default 1.5 dB.
	FoliageLossDB float64
	// NoiseFloorDBm is the thermal noise floor. Default -96 dBm.
	NoiseFloorDBm float64
	// SINRThresholdDB is the 50% packet-error point. Default 10 dB.
	SINRThresholdDB float64
	// SINRSlopeDB controls how sharply PER falls around the threshold.
	// Default 2 dB.
	SINRSlopeDB float64
	// ShadowSigmaDB is the per-packet log-normal shadowing deviation.
	// Default 3 dB.
	ShadowSigmaDB float64
	// BitrateMbps sets frame airtime. Default 6 Mbps.
	BitrateMbps float64
	// PreambleTime is fixed per-frame overhead. Default 100 µs.
	PreambleTime time.Duration
}

// DefaultConfig returns the propagation defaults documented on Config.
func DefaultConfig() Config {
	return Config{
		PathLossExponent: 2.9,
		RefLossDB:        40,
		FoliageLossDB:    1.5,
		NoiseFloorDBm:    -96,
		SINRThresholdDB:  10,
		SINRSlopeDB:      2,
		ShadowSigmaDB:    3,
		BitrateMbps:      6,
		PreambleTime:     100 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PathLossExponent == 0 {
		c.PathLossExponent = d.PathLossExponent
	}
	if c.RefLossDB == 0 {
		c.RefLossDB = d.RefLossDB
	}
	if c.FoliageLossDB == 0 {
		c.FoliageLossDB = d.FoliageLossDB
	}
	if c.NoiseFloorDBm == 0 {
		c.NoiseFloorDBm = d.NoiseFloorDBm
	}
	if c.SINRThresholdDB == 0 {
		c.SINRThresholdDB = d.SINRThresholdDB
	}
	if c.SINRSlopeDB == 0 {
		c.SINRSlopeDB = d.SINRSlopeDB
	}
	if c.ShadowSigmaDB == 0 {
		c.ShadowSigmaDB = d.ShadowSigmaDB
	}
	if c.BitrateMbps == 0 {
		c.BitrateMbps = d.BitrateMbps
	}
	if c.PreambleTime == 0 {
		c.PreambleTime = d.PreambleTime
	}
	return c
}

// Stats aggregates medium-level counters.
type Stats struct {
	Transmissions int64            `json:"transmissions"`
	Deliveries    int64            `json:"deliveries"`
	Drops         map[string]int64 `json:"drops"`
}

// Medium is the shared wireless channel. It is single-threaded: all calls
// must come from simulation events on the owning scheduler.
type Medium struct {
	cfg     Config
	sched   *simclock.Scheduler
	grid    *geo.Grid // optional; nil disables foliage loss
	rand    *rng.Rand
	nodes   map[NodeID]*Node
	jammers map[string]*Jammer
	stats   Stats
	// order is the deterministic receiver iteration order (sorted node IDs),
	// maintained on Add/RemoveNode so Transmit does not sort per packet.
	order []NodeID
	// freeDeliveries recycles the scheduled delivery tasks.
	freeDeliveries []*delivery

	// Observer, if set, is called for every delivery attempt. The IDS taps
	// the medium here (promiscuous monitoring port).
	Observer func(p Packet, to NodeID, sinrDB float64, cause DropCause)
}

// NewMedium creates a medium over the given scheduler. grid may be nil.
func NewMedium(sched *simclock.Scheduler, grid *geo.Grid, r *rng.Rand, cfg Config) *Medium {
	return &Medium{
		cfg:     cfg.withDefaults(),
		sched:   sched,
		grid:    grid,
		rand:    r.Derive("radio"),
		nodes:   make(map[NodeID]*Node),
		jammers: make(map[string]*Jammer),
		stats:   Stats{Drops: make(map[string]int64)},
	}
}

// AddNode registers a radio endpoint. Re-adding an ID replaces the node.
func (m *Medium) AddNode(n *Node) {
	if _, exists := m.nodes[n.ID]; !exists {
		i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= n.ID })
		m.order = append(m.order, "")
		copy(m.order[i+1:], m.order[i:])
		m.order[i] = n.ID
	}
	m.nodes[n.ID] = n
}

// RemoveNode unregisters a radio endpoint.
func (m *Medium) RemoveNode(id NodeID) {
	if _, exists := m.nodes[id]; exists {
		i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= id })
		if i < len(m.order) && m.order[i] == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
		}
	}
	delete(m.nodes, id)
}

// Node returns the registered node with the given ID, if any.
func (m *Medium) Node(id NodeID) (*Node, bool) {
	n, ok := m.nodes[id]
	return n, ok
}

// AddJammer registers an interference source.
func (m *Medium) AddJammer(j *Jammer) { m.jammers[j.ID] = j }

// RemoveJammer unregisters an interference source.
func (m *Medium) RemoveJammer(id string) { delete(m.jammers, id) }

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats {
	out := Stats{
		Transmissions: m.stats.Transmissions,
		Deliveries:    m.stats.Deliveries,
		Drops:         make(map[string]int64, len(m.stats.Drops)),
	}
	for k, v := range m.stats.Drops {
		out.Drops[k] = v
	}
	return out
}

// Airtime returns the on-air duration of a packet of the given size.
//
//worksim:hotpath
func (m *Medium) Airtime(size int) time.Duration {
	bits := float64(size * 8)
	return m.cfg.PreambleTime + time.Duration(bits/m.cfg.BitrateMbps)*time.Microsecond
}

// Transmit sends p from its sender. Delivery (or silent loss) happens after
// the frame airtime. It returns an error if the sender is unknown or offline.
//
//worksim:hotpath
func (m *Medium) Transmit(p Packet) error {
	tx, ok := m.nodes[p.From]
	if !ok {
		return fmt.Errorf("transmit: unknown node %q", p.From) //worksim:allow cold error exit: misconfigured topology, never the steady state
	}
	if !tx.Online {
		return fmt.Errorf("transmit: node %q is offline", p.From) //worksim:allow cold error exit: offline nodes occur only under attack transitions
	}
	m.stats.Transmissions++
	airtime := m.Airtime(p.Size)
	txPos := tx.Pos()

	// m.order is the receivers in deterministic (sorted) order; deliveries
	// are deferred by airtime, so no node set mutation can happen mid-loop.
	for _, id := range m.order {
		if id == p.From {
			continue
		}
		rx := m.nodes[id]
		if rx.Channel != tx.Channel {
			continue
		}
		if p.To != Broadcast && p.To != id {
			continue
		}
		m.attemptDelivery(p, tx, rx, txPos, airtime)
	}
	return nil
}

//worksim:hotpath
func (m *Medium) attemptDelivery(p Packet, tx, rx *Node, txPos geo.Vec, airtime time.Duration) {
	if !rx.Online {
		m.drop(p, rx.ID, 0, DropOffline)
		return
	}
	rxPos := rx.Pos()
	sinr := m.sinrDB(tx.TxPowerDBm, txPos, rxPos, tx.Channel)
	perr := m.packetErrorProb(sinr)
	if m.rand.Bool(perr) {
		cause := DropWeakSignal
		if m.interferenceMW(rxPos, tx.Channel) > dbmToMW(m.cfg.NoiseFloorDBm)*10 {
			cause = DropJammed
		}
		m.drop(p, rx.ID, sinr, cause)
		return
	}
	m.stats.Deliveries++
	if m.Observer != nil {
		m.Observer(p, rx.ID, sinr, DropNone)
	}
	recv := rx.Recv
	if recv == nil {
		return
	}
	if rc, ok := p.Payload.(Refcounted); ok {
		rc.Retain()
	}
	d := m.getDelivery()
	*d = delivery{m: m, recv: recv, p: p}
	m.sched.AfterTask(airtime, d)
}

// delivery is a pooled scheduled frame arrival: one per receiver per
// transmission, recycled through the medium so the send path stays
// allocation-free.
type delivery struct {
	m    *Medium
	recv func(Packet)
	p    Packet
}

// RunEvent implements simclock.Task.
//
//worksim:hotpath
func (d *delivery) RunEvent(*simclock.Scheduler) {
	m, recv, p := d.m, d.recv, d.p
	// Return the task first: the receive callback may transmit (and so
	// schedule new deliveries) reusing this node.
	m.putDelivery(d)
	recv(p)
	if rc, ok := p.Payload.(Refcounted); ok {
		rc.Release()
	}
}

//worksim:hotpath
func (m *Medium) getDelivery() *delivery {
	if n := len(m.freeDeliveries); n > 0 {
		d := m.freeDeliveries[n-1]
		m.freeDeliveries[n-1] = nil
		m.freeDeliveries = m.freeDeliveries[:n-1]
		return d
	}
	return new(delivery) //worksim:allow pool warm-up: allocates only until the delivery pool reaches high water
}

//worksim:hotpath
func (m *Medium) putDelivery(d *delivery) {
	*d = delivery{}
	m.freeDeliveries = append(m.freeDeliveries, d)
}

//worksim:hotpath
func (m *Medium) drop(p Packet, to NodeID, sinr float64, cause DropCause) {
	m.stats.Drops[cause.String()]++
	if m.Observer != nil {
		m.Observer(p, to, sinr, cause)
	}
}

// SINRBetween reports the current SINR in dB from node a to node b, for
// diagnostics and IDS anomaly baselines. It returns false if either node is
// missing.
func (m *Medium) SINRBetween(a, b NodeID) (float64, bool) {
	tx, ok1 := m.nodes[a]
	rx, ok2 := m.nodes[b]
	if !ok1 || !ok2 {
		return 0, false
	}
	return m.sinrDB(tx.TxPowerDBm, tx.Pos(), rx.Pos(), tx.Channel), true
}

//worksim:hotpath
func (m *Medium) sinrDB(txPowerDBm float64, txPos, rxPos geo.Vec, channel int) float64 {
	rxPower := txPowerDBm - m.pathLossDB(txPos, rxPos)
	rxPower += m.rand.Norm(0, m.cfg.ShadowSigmaDB)
	interfMW := m.interferenceMW(rxPos, channel)
	totalNoiseMW := dbmToMW(m.cfg.NoiseFloorDBm) + interfMW
	return rxPower - mwToDBm(totalNoiseMW)
}

//worksim:hotpath
func (m *Medium) pathLossDB(a, b geo.Vec) float64 {
	d := a.Dist(b)
	if d < 1 {
		d = 1
	}
	loss := m.cfg.RefLossDB + 10*m.cfg.PathLossExponent*math.Log10(d)
	if m.grid != nil {
		loss += m.cfg.FoliageLossDB * float64(m.occludingCells(a, b))
	}
	return loss
}

// occludingCells counts tree/rock cells along the propagation path, capped so
// a deep-forest link saturates rather than becoming -inf.
//
//worksim:hotpath
func (m *Medium) occludingCells(a, b geo.Vec) int {
	const cap = 20
	n := 0
	steps := int(a.Dist(b)/m.grid.CellSize()) + 1
	for i := 1; i < steps; i++ {
		p := a.Lerp(b, float64(i)/float64(steps))
		if m.grid.OccludedAt(p) {
			n++
			if n >= cap {
				return cap
			}
		}
	}
	return n
}

//worksim:hotpath
func (m *Medium) interferenceMW(rxPos geo.Vec, channel int) float64 {
	var total float64
	for _, j := range m.jammers {
		if !j.Active {
			continue
		}
		if !j.Wideband && j.Channel != channel {
			continue
		}
		rx := j.PowerDBm - m.pathLossDB(j.Pos(), rxPos)
		total += dbmToMW(rx)
	}
	return total
}

// packetErrorProb maps SINR to packet error probability with a logistic
// curve centred at the configured threshold.
//
//worksim:hotpath
func (m *Medium) packetErrorProb(sinrDB float64) float64 {
	x := (sinrDB - m.cfg.SINRThresholdDB) / m.cfg.SINRSlopeDB
	return 1 / (1 + math.Exp(x))
}

func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

func mwToDBm(mw float64) float64 {
	if mw <= 0 {
		return -300
	}
	return 10 * math.Log10(mw)
}
