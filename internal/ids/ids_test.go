package ids

import (
	"testing"
	"time"
)

func TestSignatureDetectorImmediateAlerts(t *testing.T) {
	tests := []struct {
		kind     EventKind
		wantType string
		wantSev  Severity
	}{
		{EventMgmtForgery, "mgmt-forgery", SeverityCritical},
		{EventReplayRejected, "replay", SeverityWarning},
		{EventAuthFailure, "auth-failure", SeverityCritical},
		{EventDecryptFailure, "tampered-record", SeverityWarning},
		{EventBootFailure, "boot-integrity", SeverityCritical},
		{EventAttestationFailure, "attestation", SeverityCritical},
	}
	for _, tt := range tests {
		t.Run(tt.wantType, func(t *testing.T) {
			e := NewEngine(NewSignatureDetector())
			e.Ingest(Event{Kind: tt.kind, At: time.Second, Source: "link"})
			alerts := e.Alerts()
			if len(alerts) != 1 {
				t.Fatalf("alerts = %d, want 1", len(alerts))
			}
			if alerts[0].Type != tt.wantType || alerts[0].Severity != tt.wantSev {
				t.Fatalf("got %s/%s, want %s/%s",
					alerts[0].Type, alerts[0].Severity, tt.wantType, tt.wantSev)
			}
		})
	}
}

func TestSignatureDetectorIgnoresBenign(t *testing.T) {
	e := NewEngine(NewSignatureDetector())
	e.Ingest(Event{Kind: EventLinkSample, OK: true, Value: 1})
	e.Ingest(Event{Kind: EventGNSSVerdict, OK: true})
	if len(e.Alerts()) != 0 {
		t.Fatalf("benign events raised %d alerts", len(e.Alerts()))
	}
}

func TestDeauthFloodThreshold(t *testing.T) {
	d := NewDeauthFloodDetector(5, 10*time.Second)
	e := NewEngine(d)
	for i := 0; i < 4; i++ {
		e.Ingest(Event{Kind: EventDeauth, At: time.Duration(i) * time.Second, Source: "fw"})
	}
	if len(e.Alerts()) != 0 {
		t.Fatal("alert before threshold")
	}
	e.Ingest(Event{Kind: EventDeauth, At: 4 * time.Second, Source: "fw"})
	if len(e.Alerts()) != 1 {
		t.Fatalf("alerts = %d, want 1 at threshold", len(e.Alerts()))
	}
	if e.Alerts()[0].Type != "deauth-flood" {
		t.Fatalf("type = %s", e.Alerts()[0].Type)
	}
}

func TestDeauthFloodWindowSlides(t *testing.T) {
	d := NewDeauthFloodDetector(3, 5*time.Second)
	e := NewEngine(d)
	// Three events spread over 30 s never fill a 5 s window.
	for i := 0; i < 3; i++ {
		e.Ingest(Event{Kind: EventDeauth, At: time.Duration(i*15) * time.Second, Source: "fw"})
	}
	if len(e.Alerts()) != 0 {
		t.Fatal("slow drip raised flood alert")
	}
}

func TestDeauthFloodRateLimited(t *testing.T) {
	d := NewDeauthFloodDetector(2, 10*time.Second)
	e := NewEngine(d)
	for i := 0; i < 20; i++ {
		e.Ingest(Event{Kind: EventDeauth, At: time.Duration(i*100) * time.Millisecond, Source: "fw"})
	}
	if n := len(e.Alerts()); n != 1 {
		t.Fatalf("alerts = %d, want 1 (rate-limited per window)", n)
	}
}

func TestDeauthFloodPerSource(t *testing.T) {
	d := NewDeauthFloodDetector(3, 10*time.Second)
	e := NewEngine(d)
	// Two sources at 2 events each: below per-source threshold.
	for i := 0; i < 2; i++ {
		e.Ingest(Event{Kind: EventDeauth, At: time.Second, Source: "a"})
		e.Ingest(Event{Kind: EventDeauth, At: time.Second, Source: "b"})
	}
	if len(e.Alerts()) != 0 {
		t.Fatal("cross-source events pooled into one counter")
	}
}

func TestLinkQualityCollapseAndRecovery(t *testing.T) {
	d := NewLinkQualityDetector(0.3, 0.5)
	e := NewEngine(d)
	feed := func(v float64, n int, start time.Duration) {
		for i := 0; i < n; i++ {
			e.Ingest(Event{
				Kind: EventLinkSample, At: start + time.Duration(i)*time.Second,
				Source: "fw<->coord", Value: v, OK: v > 0.5,
			})
		}
	}
	feed(1, 10, 0) // healthy warm-up
	if len(e.Alerts()) != 0 {
		t.Fatal("healthy link raised alerts")
	}
	feed(0, 10, 10*time.Second) // jamming: total loss
	alerts := e.Alerts()
	if len(alerts) == 0 || alerts[0].Type != "link-degraded" {
		t.Fatalf("expected link-degraded alert, got %v", alerts)
	}
	feed(1, 10, 20*time.Second) // recovery
	last := e.Alerts()[len(e.Alerts())-1]
	if last.Type != "link-recovered" {
		t.Fatalf("last alert = %s, want link-recovered", last.Type)
	}
}

func TestLinkQualityWarmup(t *testing.T) {
	d := NewLinkQualityDetector(0.3, 0.5)
	e := NewEngine(d)
	// Fewer than 5 samples: no alert even if all lost.
	for i := 0; i < 4; i++ {
		e.Ingest(Event{Kind: EventLinkSample, Source: "l", Value: 0})
	}
	if len(e.Alerts()) != 0 {
		t.Fatal("alert during warm-up")
	}
}

func TestGNSSConsistencyStreak(t *testing.T) {
	d := NewGNSSConsistencyDetector(3)
	e := NewEngine(d)
	bad := Event{Kind: EventGNSSVerdict, Source: "fw", OK: false, Detail: "jump"}
	good := Event{Kind: EventGNSSVerdict, Source: "fw", OK: true}
	e.Ingest(bad)
	e.Ingest(bad)
	e.Ingest(good) // streak reset
	e.Ingest(bad)
	e.Ingest(bad)
	if len(e.Alerts()) != 0 {
		t.Fatal("alert without full streak")
	}
	e.Ingest(bad)
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].Type != "gnss-anomaly" {
		t.Fatalf("alerts = %v, want one gnss-anomaly", alerts)
	}
	// Recovery info alert.
	e.Ingest(good)
	last := e.Alerts()[len(e.Alerts())-1]
	if last.Type != "gnss-recovered" {
		t.Fatalf("last = %s, want gnss-recovered", last.Type)
	}
}

func TestEngineCallbacksAndCounts(t *testing.T) {
	e := NewEngine(NewSignatureDetector())
	var seen []Alert
	e.OnAlert = func(a Alert) { seen = append(seen, a) }
	e.Ingest(Event{Kind: EventMgmtForgery, Source: "x"})
	e.Ingest(Event{Kind: EventMgmtForgery, Source: "y"})
	e.Ingest(Event{Kind: EventReplayRejected, Source: "z"})
	if len(seen) != 3 {
		t.Fatalf("callback saw %d alerts, want 3", len(seen))
	}
	counts := e.CountByType()
	if counts["mgmt-forgery"] != 2 || counts["replay"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if e.CriticalCount() != 2 {
		t.Fatalf("critical = %d, want 2", e.CriticalCount())
	}
}

func TestDetectionLatency(t *testing.T) {
	e := NewEngine(NewDeauthFloodDetector(3, 10*time.Second))
	for i := 0; i < 3; i++ {
		e.Ingest(Event{
			Kind: EventDeauth, At: time.Duration(i) * time.Second,
			Source: "fw", OK: false,
		})
	}
	lat, ok := e.DetectionLatency("deauth-flood", EventDeauth.String())
	if !ok {
		t.Fatal("latency unavailable")
	}
	if lat != 2*time.Second {
		t.Fatalf("latency = %v, want 2s", lat)
	}
}

func TestDefaultEngineIntegrates(t *testing.T) {
	e := DefaultEngine()
	// A realistic burst: forged mgmt frames plus deauth flood.
	for i := 0; i < 8; i++ {
		at := time.Duration(i) * 200 * time.Millisecond
		e.Ingest(Event{Kind: EventDeauth, At: at, Source: "coord"})
		e.Ingest(Event{Kind: EventMgmtForgery, At: at, Source: "coord"})
	}
	counts := e.CountByType()
	if counts["mgmt-forgery"] != 8 {
		t.Fatalf("mgmt-forgery = %d, want 8", counts["mgmt-forgery"])
	}
	if counts["deauth-flood"] == 0 {
		t.Fatal("flood detector missed the burst")
	}
}
