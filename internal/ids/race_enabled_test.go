//go:build race

package ids

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions skip under it.
const raceEnabled = true
