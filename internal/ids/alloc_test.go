package ids

import (
	"testing"
	"time"
)

// TestDetectZeroAllocs locks the full default detector suite at zero heap
// allocations per steady-state tick of benign telemetry, mirroring the
// worksite tick-loop lock. The event mix covers every detector's hot path —
// link EWMA updates, GNSS streak tracking, the de-auth sliding window — while
// staying below every alert threshold, because alert construction is a
// discrete transition and deliberately out of scope.
func TestDetectZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	engine := DefaultEngine()
	const period = 500 * time.Millisecond
	tickNo := 0
	tick := func() {
		at := time.Duration(tickNo) * period
		tickNo++
		engine.Ingest(Event{Kind: EventLinkSample, At: at, Source: "harvester-1", OK: true, Value: 1})
		engine.Ingest(Event{Kind: EventLinkSample, At: at, Source: "forwarder-1", OK: true, Value: 1})
		engine.Ingest(Event{Kind: EventGNSSVerdict, At: at, Source: "harvester-1", OK: true})
		// One de-auth every five ticks (2.5s) keeps four events inside the
		// 10s flood window — exercising the window trim without crossing the
		// five-event alert threshold.
		if tickNo%5 == 0 {
			engine.Ingest(Event{Kind: EventDeauth, At: at, Source: "ap-1", OK: true})
		}
	}

	// Warm per-source detector state (EWMA maps, de-auth window) to
	// steady-state capacity.
	for i := 0; i < 64; i++ {
		tick()
	}
	avg := testing.AllocsPerRun(200, tick)
	if avg != 0 {
		t.Fatalf("steady-state detection allocates: %v allocs/op, want 0", avg)
	}
}
