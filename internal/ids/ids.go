// Package ids implements the worksite intrusion detection system.
//
// The forestry characteristics table (paper Table I, "Remote Monitoring and
// Control", "Autonomous Machinery") and IEC 62443's monitoring requirements
// motivate a site-local IDS: forestry sites have no SOC uplink, so detection
// and first response must run inside the system of systems. The engine fans
// security-relevant events (management-frame forgeries, de-auth floods, link
// quality collapse, GNSS implausibility, record replays, failed
// authentications, boot/attestation failures) to a set of detectors —
// signature rules for protocol violations, EWMA anomaly detectors for link
// and navigation quality — and aggregates alerts into an incident log that
// later becomes assurance-case evidence.
package ids

import (
	"fmt"
	"time"
)

// Severity ranks an alert.
type Severity int

// Severities.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityCritical
)

// String returns a short severity label.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// EventKind classifies an ingested telemetry event.
type EventKind int

// Event kinds the sensors/network stack feed into the IDS.
const (
	EventDeauth EventKind = iota + 1
	EventMgmtForgery
	EventLinkSample // Value = delivery success (1) or loss (0) for a link
	EventGNSSVerdict
	EventReplayRejected
	EventAuthFailure
	EventDecryptFailure
	EventBootFailure
	EventAttestationFailure
)

// String returns a short kind label.
func (k EventKind) String() string {
	switch k {
	case EventDeauth:
		return "deauth"
	case EventMgmtForgery:
		return "mgmt-forgery"
	case EventLinkSample:
		return "link-sample"
	case EventGNSSVerdict:
		return "gnss-verdict"
	case EventReplayRejected:
		return "replay-rejected"
	case EventAuthFailure:
		return "auth-failure"
	case EventDecryptFailure:
		return "decrypt-failure"
	case EventBootFailure:
		return "boot-failure"
	case EventAttestationFailure:
		return "attestation-failure"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one telemetry observation.
type Event struct {
	Kind   EventKind     `json:"kind"`
	At     time.Duration `json:"atNs"`
	Source string        `json:"source"` // link or machine identifier
	OK     bool          `json:"ok"`     // semantic success flag (kind-specific)
	Value  float64       `json:"value"`  // kind-specific magnitude
	Detail string        `json:"detail,omitempty"`
}

// Alert is a detector finding.
type Alert struct {
	At       time.Duration `json:"atNs"`
	Severity Severity      `json:"severity"`
	Type     string        `json:"type"`
	Source   string        `json:"source"`
	Detail   string        `json:"detail"`
}

// Detector turns events into alerts. Implementations keep per-source state.
type Detector interface {
	// Name identifies the detector in alerts and reports.
	Name() string
	// Process consumes one event and returns any alerts it raises.
	Process(ev Event) []Alert
}

// Engine fans events to detectors and aggregates their alerts.
type Engine struct {
	detectors []Detector
	alerts    []Alert
	byType    map[string]int

	firstEventAt map[string]time.Duration // earliest suspicious event per type
	firstAlertAt map[string]time.Duration

	// OnAlert, if set, is invoked for every alert (e.g. to trigger fail-safe
	// responses at the coordinator).
	OnAlert func(Alert)
}

// NewEngine creates an engine with the given detectors.
func NewEngine(detectors ...Detector) *Engine {
	return &Engine{
		detectors:    detectors,
		byType:       make(map[string]int),
		firstEventAt: make(map[string]time.Duration),
		firstAlertAt: make(map[string]time.Duration),
	}
}

// DefaultEngine returns an engine with the full worksite detector suite.
func DefaultEngine() *Engine {
	return NewEngine(
		NewSignatureDetector(),
		NewDeauthFloodDetector(5, 10*time.Second),
		NewLinkQualityDetector(0.3, 0.5),
		NewGNSSConsistencyDetector(3),
	)
}

// Ingest feeds one event through all detectors.
//
//worksim:hotpath
func (e *Engine) Ingest(ev Event) {
	if !ev.OK {
		if _, seen := e.firstEventAt[ev.Kind.String()]; !seen {
			e.firstEventAt[ev.Kind.String()] = ev.At
		}
	}
	for _, d := range e.detectors {
		for _, a := range d.Process(ev) {
			e.record(a)
		}
	}
}

//worksim:hotpath
func (e *Engine) record(a Alert) {
	e.alerts = append(e.alerts, a)
	e.byType[a.Type]++
	if _, seen := e.firstAlertAt[a.Type]; !seen {
		e.firstAlertAt[a.Type] = a.At
	}
	if e.OnAlert != nil {
		e.OnAlert(a)
	}
}

// Alerts returns a copy of the alert log.
func (e *Engine) Alerts() []Alert {
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

// Total returns the number of alerts raised so far.
func (e *Engine) Total() int { return len(e.alerts) }

// CountByType returns a copy of the per-type alert counters.
func (e *Engine) CountByType() map[string]int {
	out := make(map[string]int, len(e.byType))
	for k, v := range e.byType {
		out[k] = v
	}
	return out
}

// CriticalCount returns the number of critical alerts.
func (e *Engine) CriticalCount() int {
	n := 0
	for _, a := range e.alerts {
		if a.Severity == SeverityCritical {
			n++
		}
	}
	return n
}

// DetectionLatency returns, for an alert type, the delay between the first
// suspicious event of the matching kind and the first alert, if both exist.
// This is the E5a metric (IDS reaction time vs. damage done).
func (e *Engine) DetectionLatency(alertType, eventKind string) (time.Duration, bool) {
	ev, okE := e.firstEventAt[eventKind]
	al, okA := e.firstAlertAt[alertType]
	if !okE || !okA || al < ev {
		return 0, false
	}
	return al - ev, true
}

// --- Detectors ---

// SignatureDetector raises immediate alerts on protocol-violation events that
// are malicious by definition: forged management frames, rejected replays,
// failed peer authentications, tampered records, failed boots/attestations.
type SignatureDetector struct{}

// NewSignatureDetector returns the rule-based detector.
func NewSignatureDetector() *SignatureDetector { return &SignatureDetector{} }

var _ Detector = (*SignatureDetector)(nil)

// Name implements Detector.
func (d *SignatureDetector) Name() string { return "signature" }

// Process implements Detector.
//
//worksim:hotpath
func (d *SignatureDetector) Process(ev Event) []Alert {
	mk := func(sev Severity, typ, detail string) []Alert { //worksim:allow alert construction is the cold branch; benign events return nil before the closure is invoked
		return []Alert{{At: ev.At, Severity: sev, Type: typ, Source: ev.Source, Detail: detail}}
	}
	switch ev.Kind {
	case EventMgmtForgery:
		return mk(SeverityCritical, "mgmt-forgery", "management frame with invalid MIC: "+ev.Detail) //worksim:allow alert detail built only when an attack fires, never in steady state
	case EventReplayRejected:
		return mk(SeverityWarning, "replay", "secure channel rejected replayed record")
	case EventAuthFailure:
		return mk(SeverityCritical, "auth-failure", "peer failed PKI authentication: "+ev.Detail) //worksim:allow alert detail built only when an attack fires, never in steady state
	case EventDecryptFailure:
		return mk(SeverityWarning, "tampered-record", "record failed AEAD authentication")
	case EventBootFailure:
		return mk(SeverityCritical, "boot-integrity", "verified boot halted: "+ev.Detail) //worksim:allow alert detail built only when an attack fires, never in steady state
	case EventAttestationFailure:
		return mk(SeverityCritical, "attestation", "remote attestation failed: "+ev.Detail) //worksim:allow alert detail built only when an attack fires, never in steady state
	default:
		return nil
	}
}

// DeauthFloodDetector alerts when more than threshold de-auth frames arrive
// within a sliding window — the Wi-Fi disconnection attack from the mining
// survey.
type DeauthFloodDetector struct {
	threshold int
	window    time.Duration
	seen      map[string][]time.Duration
	alerted   map[string]time.Duration
}

// NewDeauthFloodDetector returns a flood detector with the given per-window
// threshold.
func NewDeauthFloodDetector(threshold int, window time.Duration) *DeauthFloodDetector {
	return &DeauthFloodDetector{
		threshold: threshold,
		window:    window,
		seen:      make(map[string][]time.Duration),
		alerted:   make(map[string]time.Duration),
	}
}

var _ Detector = (*DeauthFloodDetector)(nil)

// Name implements Detector.
func (d *DeauthFloodDetector) Name() string { return "deauth-flood" }

// Process implements Detector.
//
//worksim:hotpath
func (d *DeauthFloodDetector) Process(ev Event) []Alert {
	if ev.Kind != EventDeauth {
		return nil
	}
	times := append(d.seen[ev.Source], ev.At) //worksim:allow amortized per-source window buffer: the slice is stored back below, so growth is the scratch pattern across calls
	// Trim events outside the window by copying down in place: re-slicing
	// forward (times = times[cut:]) would walk the stored slice away from its
	// backing array's start and force a reallocation every window's worth of
	// events, forever.
	cut := 0
	for cut < len(times) && ev.At-times[cut] > d.window {
		cut++
	}
	if cut > 0 {
		times = times[:copy(times, times[cut:])]
	}
	d.seen[ev.Source] = times
	if len(times) < d.threshold {
		return nil
	}
	// Rate-limit: one alert per window per source.
	if last, ok := d.alerted[ev.Source]; ok && ev.At-last < d.window {
		return nil
	}
	d.alerted[ev.Source] = ev.At
	return []Alert{{
		At:       ev.At,
		Severity: SeverityCritical,
		Type:     "deauth-flood",
		Source:   ev.Source,
		Detail:   fmt.Sprintf("%d de-auth frames within %v", len(times), d.window), //worksim:allow alert detail built at most once per window per source, only under attack
	}}
}

// LinkQualityDetector tracks an EWMA of link delivery and alerts when it
// collapses — the observable signature of jamming or severe interference.
type LinkQualityDetector struct {
	alpha     float64
	threshold float64
	ewma      map[string]float64
	samples   map[string]int
	alarming  map[string]bool
}

// NewLinkQualityDetector returns a detector alerting when the delivery EWMA
// falls below threshold. alpha is the EWMA smoothing factor in (0,1].
func NewLinkQualityDetector(threshold, alpha float64) *LinkQualityDetector {
	return &LinkQualityDetector{
		alpha:     alpha,
		threshold: threshold,
		ewma:      make(map[string]float64),
		samples:   make(map[string]int),
		alarming:  make(map[string]bool),
	}
}

var _ Detector = (*LinkQualityDetector)(nil)

// Name implements Detector.
func (d *LinkQualityDetector) Name() string { return "link-quality" }

// Process implements Detector.
//
//worksim:hotpath
func (d *LinkQualityDetector) Process(ev Event) []Alert {
	if ev.Kind != EventLinkSample {
		return nil
	}
	cur, ok := d.ewma[ev.Source]
	if !ok {
		cur = 1 // assume healthy until proven otherwise
	}
	cur = (1-d.alpha)*cur + d.alpha*ev.Value
	d.ewma[ev.Source] = cur
	d.samples[ev.Source]++
	if d.samples[ev.Source] < 5 {
		return nil // warm-up
	}
	below := cur < d.threshold
	if below && !d.alarming[ev.Source] {
		d.alarming[ev.Source] = true
		return []Alert{{
			At:       ev.At,
			Severity: SeverityCritical,
			Type:     "link-degraded",
			Source:   ev.Source,
			Detail:   fmt.Sprintf("delivery EWMA %.2f below %.2f (jamming or interference)", cur, d.threshold), //worksim:allow alert detail built once per alarm transition, not per sample
		}}
	}
	if !below && d.alarming[ev.Source] && cur > d.threshold+0.15 {
		d.alarming[ev.Source] = false
		return []Alert{{
			At:       ev.At,
			Severity: SeverityInfo,
			Type:     "link-recovered",
			Source:   ev.Source,
			Detail:   fmt.Sprintf("delivery EWMA recovered to %.2f", cur), //worksim:allow alert detail built once per recovery transition, not per sample
		}}
	}
	return nil
}

// EWMA returns the current delivery estimate for a link, for diagnostics.
func (d *LinkQualityDetector) EWMA(source string) (float64, bool) {
	v, ok := d.ewma[source]
	return v, ok
}

// GNSSConsistencyDetector alerts after N consecutive untrustworthy GNSS
// verdicts from the same machine — spoofing/jamming indication.
type GNSSConsistencyDetector struct {
	needed   int
	streak   map[string]int
	alarming map[string]bool
}

// NewGNSSConsistencyDetector returns a detector requiring `needed`
// consecutive bad verdicts.
func NewGNSSConsistencyDetector(needed int) *GNSSConsistencyDetector {
	return &GNSSConsistencyDetector{
		needed:   needed,
		streak:   make(map[string]int),
		alarming: make(map[string]bool),
	}
}

var _ Detector = (*GNSSConsistencyDetector)(nil)

// Name implements Detector.
func (d *GNSSConsistencyDetector) Name() string { return "gnss-consistency" }

// Process implements Detector.
//
//worksim:hotpath
func (d *GNSSConsistencyDetector) Process(ev Event) []Alert {
	if ev.Kind != EventGNSSVerdict {
		return nil
	}
	if ev.OK {
		d.streak[ev.Source] = 0
		if d.alarming[ev.Source] {
			d.alarming[ev.Source] = false
			return []Alert{{
				At: ev.At, Severity: SeverityInfo, Type: "gnss-recovered",
				Source: ev.Source, Detail: "GNSS plausibility restored",
			}}
		}
		return nil
	}
	d.streak[ev.Source]++
	if d.streak[ev.Source] == d.needed && !d.alarming[ev.Source] {
		d.alarming[ev.Source] = true
		return []Alert{{
			At:       ev.At,
			Severity: SeverityCritical,
			Type:     "gnss-anomaly",
			Source:   ev.Source,
			Detail:   fmt.Sprintf("%d consecutive implausible fixes: %s", d.needed, ev.Detail), //worksim:allow alert detail built once per anomaly streak, only under spoofing
		}}
	}
	return nil
}
