package rng

import (
	"encoding/hex"
	"testing"
)

// The golden values below are the actual draws of seed 42 as produced when
// this test was written. The determinism analyzer guarantees nothing reads
// ambient randomness; this test pins the complementary half of the contract:
// the streams themselves are stable across Go versions and refactors of the
// derivation scheme. Every recorded experiment (BENCH files, campaign JSON,
// report goldens) implicitly depends on these exact sequences — if this test
// fails, the change did not just perturb a constant, it invalidated every
// artifact recorded under the old streams and must be called out loudly.

func TestGoldenRootStream(t *testing.T) {
	want := []int64{
		7057817503701597796, 3886379789183912854, 3852854910790389930,
		917280330006601903, 8818549808859476127, 7208981969031906795,
		605862286157319845, 2845280925051854799,
	}
	r := New(42)
	for i, w := range want {
		if got := r.Int63(); got != w {
			t.Fatalf("New(42) draw %d = %d, want %d (seed-stability broken: recorded artifacts are invalidated)", i, got, w)
		}
	}
}

func TestGoldenFloat64Stream(t *testing.T) {
	want := []float64{
		0.7652101070519493, 0.4213621410536955, 0.4177273664550385,
		0.09945173265713782, 0.9561090860937074, 0.7815993912233222,
	}
	r := New(42)
	for i, w := range want {
		if got := r.Float64(); got != w {
			t.Fatalf("New(42) Float64 draw %d = %v, want %v", i, got, w)
		}
	}
}

func TestGoldenDerivedStreams(t *testing.T) {
	cases := []struct {
		name   string
		stream *Rand
		want   []int64
	}{
		{"radio", New(42).Derive("radio"), []int64{
			3185101929885060461, 2771375082969567433, 7222682656295905336,
			3951363078013198657, 4148453438764820169, 3660394192893684250,
		}},
		{"sensors/gnss", New(42).Derive("sensors").Derive("gnss"), []int64{
			9094601572489788738, 2572903405296992777, 8215176081870602224,
			2162027206121087101, 7232406885506051229, 8707818076352550274,
		}},
	}
	for _, c := range cases {
		for i, w := range c.want {
			if got := c.stream.Int63(); got != w {
				t.Fatalf("Derive(%q) draw %d = %d, want %d", c.name, i, got, w)
			}
		}
	}
}

func TestGoldenReadStream(t *testing.T) {
	const wantHex = "c6ee48492728f4916a40ed241d338623"
	buf := make([]byte, 16)
	if _, err := New(42).Derive("key").Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := hex.EncodeToString(buf); got != wantHex {
		t.Fatalf("Derive(key) bytes = %s, want %s (deterministic key material changed)", got, wantHex)
	}
}
