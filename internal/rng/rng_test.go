package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	a := root.Derive("radio")
	b := root.Derive("sensors")
	same := 0
	for i := 0; i < 200; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams correlated: %d/200 identical draws", same)
	}
}

func TestDeriveRepeatable(t *testing.T) {
	a := New(7).Derive("x")
	b := New(7).Derive("x")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) derivation diverged")
		}
	}
}

func TestDeriveDoesNotPerturbParent(t *testing.T) {
	a := New(3)
	b := New(3)
	_ = a.Derive("child")
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Derive consumed parent stream state")
		}
	}
}

func TestBoolBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(99)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want ~0.3", frac)
	}
}

func TestExp(t *testing.T) {
	r := New(5)
	if !math.IsInf(r.Exp(0), 1) {
		t.Fatal("Exp(0) should be +Inf")
	}
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	mean := sum / float64(n)
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("Exp(2) mean = %.3f, want ~0.5", mean)
	}
}

func TestPick(t *testing.T) {
	r := New(11)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 1})]++
	}
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("weighted pick did not prefer heavy index: %v", counts)
	}
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights: got %d, want 0", got)
	}
	if got := r.Pick([]float64{0, 5, 0}); got != 1 {
		t.Fatalf("single positive weight: got %d, want 1", got)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	var sum, sumSq float64
	n := 50000
	for i := 0; i < n; i++ {
		x := r.Norm(10, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Norm mean = %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("Norm stddev = %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestReadDeterministic(t *testing.T) {
	a, b := New(123).Derive("k"), New(123).Derive("k")
	bufA, bufB := make([]byte, 64), make([]byte, 64)
	if _, err := a.Read(bufA); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := b.Read(bufB); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatal("Read streams diverged")
		}
	}
}

func TestPropertyFloat64Range(t *testing.T) {
	f := func(seed int64) bool {
		r := New(seed)
		for i := 0; i < 20; i++ {
			x := r.Float64()
			if x < 0 || x >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRangeWithin(t *testing.T) {
	f := func(seed int64) bool {
		r := New(seed)
		for i := 0; i < 20; i++ {
			x := r.Range(-5, 5)
			if x < -5 || x >= 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := New(seed)
		p := r.Perm(10)
		seen := make(map[int]bool, 10)
		for _, v := range p {
			if v < 0 || v >= 10 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
