// Package rng provides deterministic, stream-splittable randomness for the
// forestry worksite simulator.
//
// Every stochastic component of the simulation (radio fading, sensor noise,
// worker movement, attack timing) draws from a Rand derived from a single
// experiment seed. Derivation is by name, so adding a new consumer does not
// perturb the streams of existing ones — a property the benchmark harness
// relies on when comparing secured vs. unsecured runs of the same scenario.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Rand is a deterministic random stream. It wraps math/rand with a
// name-derivation scheme so that independent simulation components receive
// independent, reproducible sub-streams.
type Rand struct {
	src  *rand.Rand
	seed uint64
}

// New returns a Rand rooted at the given experiment seed.
func New(seed int64) *Rand {
	u := uint64(seed)
	return &Rand{
		src:  rand.New(rand.NewSource(int64(mix(u)))),
		seed: u,
	}
}

// Derive returns a new independent stream identified by name. Streams derived
// with the same (seed, name) pair are identical across runs; streams with
// different names are statistically independent.
func (r *Rand) Derive(name string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	child := mix(r.seed ^ h.Sum64())
	return &Rand{
		src:  rand.New(rand.NewSource(int64(child))),
		seed: child,
	}
}

// mix is a splitmix64 finalizer; it decorrelates nearby seeds.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Norm returns a normally distributed value with the given mean and standard
// deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (events per unit time). Rate must be > 0; a non-positive rate yields +Inf.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.src.ExpFloat64() / rate
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Read fills p with pseudo-random bytes, making *Rand usable as an io.Reader
// for deterministic key generation in tests and reproducible experiments.
// It never returns an error.
func (r *Rand) Read(p []byte) (int, error) { return r.src.Read(p) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Pick returns a uniformly chosen index weighted by weights. Weights must be
// non-negative; if all weights are zero Pick returns 0.
func (r *Rand) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
