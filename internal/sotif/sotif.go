// Package sotif adapts the Safety of the Intended Functionality concept
// (ISO 21448, automotive) to forestry machinery, as Section III-C of the
// paper proposes: performance insufficiencies of the people-detection
// function — occlusion, weather, darkness — are not random hardware failures
// and are invisible to ISO 13849; they require scenario-space analysis.
//
// The scenario space is classified into the standard's four areas: known-safe
// (1), known-unsafe (2), unknown-unsafe (3), unknown-safe (4). An Analysis
// evaluates scenarios with an injected evaluator (the benchmark harness wires
// it to the fusion/worksite simulation), classifies them against an
// acceptance criterion, and reports how the unsafe areas shrink when the
// drone's additional point of view (Fig. 2) is added.
package sotif

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/sensors"
)

// Area is an ISO 21448 scenario-space quadrant.
type Area int

// Scenario areas.
const (
	Area1KnownSafe Area = iota + 1
	Area2KnownUnsafe
	Area3UnknownUnsafe
	Area4UnknownSafe
)

// String returns a short area label.
func (a Area) String() string {
	switch a {
	case Area1KnownSafe:
		return "known-safe"
	case Area2KnownUnsafe:
		return "known-unsafe"
	case Area3UnknownUnsafe:
		return "unknown-unsafe"
	case Area4UnknownSafe:
		return "unknown-safe"
	default:
		return fmt.Sprintf("area(%d)", int(a))
	}
}

// Scenario is one operating condition of the people-detection function.
type Scenario struct {
	ID string `json:"id"`
	// Weather during the scenario.
	Weather sensors.Weather `json:"weather"`
	// OcclusionDensity is the tree/obstacle density around the interaction.
	OcclusionDensity float64 `json:"occlusionDensity"`
	// CrossingRate is how often workers cross the machine corridor (per
	// minute).
	CrossingRate float64 `json:"crossingRate"`
	// Known marks scenarios in the a-priori validation catalog; scenarios
	// sampled during exploration are unknown.
	Known bool `json:"known"`
}

// TriggeringCondition names a condition that turns a performance limitation
// into hazardous behaviour (ISO 21448 §6). The catalog lists the conditions
// the forestry adaptation starts from.
type TriggeringCondition struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description"`
}

// Catalog returns the forestry triggering conditions derived from Section
// III-C/III-D.
func Catalog() []TriggeringCondition {
	return []TriggeringCondition{
		{"TC1", "Terrain occlusion", "Terrain obstacles hide a person from the forwarder's ground-level sensors (the Fig. 2 problem)."},
		{"TC2", "Canopy cover", "Dense canopy hides a person from the drone's aerial view."},
		{"TC3", "Heavy precipitation", "Rain degrades LiDAR returns and camera contrast."},
		{"TC4", "Low light", "Dusk/night operation degrades camera detection."},
		{"TC5", "Fog", "Fog degrades both camera and LiDAR range."},
		{"TC6", "Unexpected crossing", "A worker enters the machine corridor outside planned interaction points."},
	}
}

// Outcome is the classification of one evaluated scenario.
type Outcome struct {
	Scenario   Scenario `json:"scenario"`
	HazardRate float64  `json:"hazardRate"`
	Acceptable bool     `json:"acceptable"`
	Area       Area     `json:"area"`
}

// Report aggregates a scenario-space evaluation.
type Report struct {
	Outcomes []Outcome `json:"outcomes"`
	// ByArea counts scenarios per area.
	ByArea map[string]int `json:"byArea"`
	// ResidualRisk is the mean hazard rate over unsafe scenarios, weighted
	// equally (the quantity the improvement loop must drive down).
	ResidualRisk float64 `json:"residualRisk"`
	// Discovered lists unknown-unsafe scenario IDs — newly found triggering
	// combinations that must move into the known catalog.
	Discovered []string `json:"discovered,omitempty"`
}

// Analysis evaluates scenario hazard rates against an acceptance criterion.
type Analysis struct {
	// Acceptance is the maximum tolerable hazard rate (hazardous events per
	// interaction opportunity).
	Acceptance float64
}

// NewAnalysis returns an analysis with the given acceptance criterion.
func NewAnalysis(acceptance float64) *Analysis {
	return &Analysis{Acceptance: acceptance}
}

// Classify places one evaluated scenario in the scenario space.
func (a *Analysis) Classify(sc Scenario, hazardRate float64) Outcome {
	acceptable := hazardRate <= a.Acceptance
	var area Area
	switch {
	case sc.Known && acceptable:
		area = Area1KnownSafe
	case sc.Known && !acceptable:
		area = Area2KnownUnsafe
	case !sc.Known && !acceptable:
		area = Area3UnknownUnsafe
	default:
		area = Area4UnknownSafe
	}
	return Outcome{Scenario: sc, HazardRate: hazardRate, Acceptable: acceptable, Area: area}
}

// Evaluate runs the evaluator over all scenarios and builds the report.
// The evaluator returns the measured hazard rate for a scenario (typically
// from a worksite/fusion simulation).
func (a *Analysis) Evaluate(scenarios []Scenario, eval func(Scenario) float64) Report {
	rep := Report{ByArea: make(map[string]int, 4)}
	var unsafeSum float64
	unsafeN := 0
	for _, sc := range scenarios {
		out := a.Classify(sc, eval(sc))
		rep.Outcomes = append(rep.Outcomes, out)
		rep.ByArea[out.Area.String()]++
		if !out.Acceptable {
			unsafeSum += out.HazardRate
			unsafeN++
			if !sc.Known {
				rep.Discovered = append(rep.Discovered, sc.ID)
			}
		}
	}
	if unsafeN > 0 {
		rep.ResidualRisk = unsafeSum / float64(unsafeN)
	}
	sort.Strings(rep.Discovered)
	return rep
}

// KnownCatalog returns the a-priori validation scenarios: the benign corners
// and the catalogued triggering conditions.
func KnownCatalog() []Scenario {
	return []Scenario{
		{ID: "S-CLEAR", Weather: sensors.Clear(), OcclusionDensity: 0.1, CrossingRate: 0.5, Known: true},
		{ID: "S-OCCLUDED", Weather: sensors.Clear(), OcclusionDensity: 0.35, CrossingRate: 0.5, Known: true},
		{ID: "S-RAIN", Weather: sensors.Weather{Rain: 0.8}, OcclusionDensity: 0.15, CrossingRate: 0.5, Known: true},
		{ID: "S-NIGHT", Weather: sensors.Weather{Darkness: 0.9}, OcclusionDensity: 0.15, CrossingRate: 0.5, Known: true},
		{ID: "S-FOG", Weather: sensors.Weather{Fog: 0.7}, OcclusionDensity: 0.15, CrossingRate: 0.5, Known: true},
		{ID: "S-BUSY", Weather: sensors.Clear(), OcclusionDensity: 0.2, CrossingRate: 2, Known: true},
	}
}

// ExploreSpace samples n unknown scenarios uniformly over the parameter
// space (the standard's "unknown scenario" discovery activity).
func ExploreSpace(r *rng.Rand, n int) []Scenario {
	er := r.Derive("sotif-explore")
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Scenario{
			ID: fmt.Sprintf("X-%03d", i+1),
			Weather: sensors.Weather{
				Rain:     er.Range(0, 1),
				Fog:      er.Range(0, 0.8),
				Darkness: er.Range(0, 1),
			},
			OcclusionDensity: er.Range(0.05, 0.45),
			CrossingRate:     er.Range(0.2, 3),
			Known:            false,
		})
	}
	return out
}

// CompareReports quantifies an improvement loop step: how many scenarios
// moved out of the unsafe areas between two evaluations of the same
// scenario list (e.g. forwarder-only vs forwarder+drone).
type Improvement struct {
	UnsafeBefore int     `json:"unsafeBefore"`
	UnsafeAfter  int     `json:"unsafeAfter"`
	Moved        int     `json:"moved"`
	ResidualDrop float64 `json:"residualDrop"`
}

// CompareReports computes the improvement between two reports over the same
// scenarios.
func CompareReports(before, after Report) Improvement {
	unsafe := func(r Report) map[string]bool {
		m := make(map[string]bool)
		for _, o := range r.Outcomes {
			if !o.Acceptable {
				m[o.Scenario.ID] = true
			}
		}
		return m
	}
	ub, ua := unsafe(before), unsafe(after)
	moved := 0
	for id := range ub {
		if !ua[id] {
			moved++
		}
	}
	return Improvement{
		UnsafeBefore: len(ub),
		UnsafeAfter:  len(ua),
		Moved:        moved,
		ResidualDrop: before.ResidualRisk - after.ResidualRisk,
	}
}
