package sotif

import (
	"testing"

	"repro/internal/rng"
)

func TestClassifyQuadrants(t *testing.T) {
	a := NewAnalysis(0.1)
	tests := []struct {
		known  bool
		hazard float64
		want   Area
	}{
		{true, 0.05, Area1KnownSafe},
		{true, 0.5, Area2KnownUnsafe},
		{false, 0.5, Area3UnknownUnsafe},
		{false, 0.05, Area4UnknownSafe},
	}
	for _, tt := range tests {
		out := a.Classify(Scenario{ID: "s", Known: tt.known}, tt.hazard)
		if out.Area != tt.want {
			t.Fatalf("known=%v hazard=%v: area = %v, want %v", tt.known, tt.hazard, out.Area, tt.want)
		}
	}
}

func TestAcceptanceBoundaryInclusive(t *testing.T) {
	a := NewAnalysis(0.1)
	out := a.Classify(Scenario{Known: true}, 0.1)
	if !out.Acceptable {
		t.Fatal("hazard rate exactly at acceptance must be acceptable")
	}
}

func TestEvaluateReport(t *testing.T) {
	a := NewAnalysis(0.1)
	scenarios := []Scenario{
		{ID: "k-safe", Known: true},
		{ID: "k-unsafe", Known: true},
		{ID: "u-unsafe", Known: false},
		{ID: "u-safe", Known: false},
	}
	rates := map[string]float64{
		"k-safe": 0.01, "k-unsafe": 0.4, "u-unsafe": 0.6, "u-safe": 0.02,
	}
	rep := a.Evaluate(scenarios, func(sc Scenario) float64 { return rates[sc.ID] })
	if rep.ByArea["known-safe"] != 1 || rep.ByArea["known-unsafe"] != 1 ||
		rep.ByArea["unknown-unsafe"] != 1 || rep.ByArea["unknown-safe"] != 1 {
		t.Fatalf("byArea = %v", rep.ByArea)
	}
	if len(rep.Discovered) != 1 || rep.Discovered[0] != "u-unsafe" {
		t.Fatalf("discovered = %v, want [u-unsafe]", rep.Discovered)
	}
	wantResidual := (0.4 + 0.6) / 2
	if rep.ResidualRisk != wantResidual {
		t.Fatalf("residual = %v, want %v", rep.ResidualRisk, wantResidual)
	}
}

func TestKnownCatalogAndConditions(t *testing.T) {
	if len(KnownCatalog()) < 5 {
		t.Fatal("known catalog too small")
	}
	for _, sc := range KnownCatalog() {
		if !sc.Known {
			t.Fatalf("catalog scenario %s not marked known", sc.ID)
		}
	}
	if len(Catalog()) < 5 {
		t.Fatal("triggering-condition catalog too small")
	}
}

func TestExploreSpaceDeterministicAndBounded(t *testing.T) {
	r := rng.New(42)
	a := ExploreSpace(r, 50)
	b := ExploreSpace(rng.New(42), 50)
	if len(a) != 50 {
		t.Fatalf("scenarios = %d", len(a))
	}
	for i, sc := range a {
		if sc.Known {
			t.Fatal("explored scenario marked known")
		}
		if sc.Weather.Rain < 0 || sc.Weather.Rain > 1 || sc.OcclusionDensity < 0 {
			t.Fatalf("out-of-range parameters: %+v", sc)
		}
		if sc.ID != b[i].ID || sc.OcclusionDensity != b[i].OcclusionDensity {
			t.Fatal("exploration not deterministic")
		}
	}
}

func TestCompareReportsImprovement(t *testing.T) {
	a := NewAnalysis(0.1)
	scenarios := []Scenario{
		{ID: "s1", Known: true}, {ID: "s2", Known: true}, {ID: "s3", Known: false},
	}
	before := a.Evaluate(scenarios, func(sc Scenario) float64 { return 0.5 })
	// The drone improves s1 and s3 below acceptance.
	after := a.Evaluate(scenarios, func(sc Scenario) float64 {
		if sc.ID == "s2" {
			return 0.3
		}
		return 0.05
	})
	imp := CompareReports(before, after)
	if imp.UnsafeBefore != 3 || imp.UnsafeAfter != 1 || imp.Moved != 2 {
		t.Fatalf("improvement = %+v", imp)
	}
	if imp.ResidualDrop <= 0 {
		t.Fatalf("residual drop = %v, want positive", imp.ResidualDrop)
	}
}
