package geo

import (
	"fmt"

	"repro/internal/rng"
)

// Terrain classifies a grid cell. Trees and rocks occlude line of sight and
// block driving; roads are preferred by the path planner.
type Terrain uint8

// Terrain kinds. Ground is the zero value: an empty, drivable, transparent
// cell, which is the desirable default for a cleared worksite.
const (
	Ground Terrain = iota
	Road
	Tree
	Rock
	Water
)

// String returns a short human-readable terrain name.
func (t Terrain) String() string {
	switch t {
	case Ground:
		return "ground"
	case Road:
		return "road"
	case Tree:
		return "tree"
	case Rock:
		return "rock"
	case Water:
		return "water"
	default:
		return fmt.Sprintf("terrain(%d)", uint8(t))
	}
}

// Occludes reports whether the terrain blocks line of sight at ground level.
func (t Terrain) Occludes() bool { return t == Tree || t == Rock }

// Drivable reports whether a ground machine can traverse the terrain.
func (t Terrain) Drivable() bool { return t == Ground || t == Road }

// Grid is a rectangular worksite map of square cells.
type Grid struct {
	cols, rows int
	cellSize   float64 // metres per cell edge
	cells      []Terrain
}

// NewGrid allocates a cols×rows grid of Ground cells with the given cell edge
// length in metres. It returns an error if any dimension is non-positive.
func NewGrid(cols, rows int, cellSize float64) (*Grid, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("grid dimensions must be positive, got %dx%d", cols, rows)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("cell size must be positive, got %g", cellSize)
	}
	return &Grid{
		cols:     cols,
		rows:     rows,
		cellSize: cellSize,
		cells:    make([]Terrain, cols*rows),
	}, nil
}

// Cols returns the number of columns.
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of rows.
func (g *Grid) Rows() int { return g.rows }

// CellSize returns the cell edge length in metres.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Width returns the grid width in metres.
func (g *Grid) Width() float64 { return float64(g.cols) * g.cellSize }

// Height returns the grid height in metres.
func (g *Grid) Height() float64 { return float64(g.rows) * g.cellSize }

// InBounds reports whether the cell is inside the grid.
func (g *Grid) InBounds(c Cell) bool {
	return c.Col >= 0 && c.Col < g.cols && c.Row >= 0 && c.Row < g.rows
}

// At returns the terrain of cell c. Out-of-bounds cells read as Rock so that
// the site boundary occludes and blocks movement.
func (g *Grid) At(c Cell) Terrain {
	if !g.InBounds(c) {
		return Rock
	}
	return g.cells[c.Row*g.cols+c.Col]
}

// Set assigns the terrain of cell c. Out-of-bounds cells are ignored.
func (g *Grid) Set(c Cell, t Terrain) {
	if !g.InBounds(c) {
		return
	}
	g.cells[c.Row*g.cols+c.Col] = t
}

// CellOf returns the cell containing the world position p. Positions outside
// the grid map to the nearest boundary cell's neighbouring out-of-bounds cell.
func (g *Grid) CellOf(p Vec) Cell {
	return Cell{Col: int(p.X / g.cellSize), Row: int(p.Y / g.cellSize)}
}

// Center returns the world position of the centre of cell c.
func (g *Grid) Center(c Cell) Vec {
	return Vec{
		X: (float64(c.Col) + 0.5) * g.cellSize,
		Y: (float64(c.Row) + 0.5) * g.cellSize,
	}
}

// OccludedAt reports whether the world position p lies in an occluding cell.
func (g *Grid) OccludedAt(p Vec) bool { return g.At(g.CellOf(p)).Occludes() }

// LineOfSight reports whether an unobstructed ground-level sight line exists
// from a to b. The endpoints' own cells never occlude (an observer standing
// next to a tree can still see out). Traversal uses a DDA walk so no
// intersected cell is skipped. This runs once per sensor-target pair per
// control tick, so it walks the cells iteratively instead of materialising
// them.
func (g *Grid) LineOfSight(a, b Vec) bool {
	_, blocked := g.firstOccluder(a, b)
	return !blocked
}

// FirstObstruction returns the first occluding cell strictly between a and b,
// and whether one exists.
func (g *Grid) FirstObstruction(a, b Vec) (Cell, bool) {
	return g.firstOccluder(a, b)
}

// firstOccluder walks the same cell sequence as traverse and returns the
// first occluding cell strictly between the endpoints' own cells.
func (g *Grid) firstOccluder(a, b Vec) (Cell, bool) {
	start, end := g.CellOf(a), g.CellOf(b)
	w := newGridWalker(g, a, b)
	for {
		c, ok := w.next()
		if !ok {
			return Cell{}, false
		}
		if c == start || c == end {
			continue
		}
		if g.At(c).Occludes() {
			return c, true
		}
	}
}

// traverse returns the cells intersected by segment a→b in order, using an
// Amanatides–Woo DDA walk over the grid. Hot-path callers (LineOfSight)
// iterate the walker directly instead of materialising the slice.
func (g *Grid) traverse(a, b Vec) []Cell {
	w := newGridWalker(g, a, b)
	var cells []Cell
	for {
		c, ok := w.next()
		if !ok {
			return cells
		}
		cells = append(cells, c)
	}
}

// gridWalker yields the cells intersected by a segment one at a time — the
// Amanatides–Woo DDA walk as an iterator, so sight-line checks allocate
// nothing. The walker is a value type; it stays on the caller's stack.
type gridWalker struct {
	cur, end     Cell
	stepX, stepY int
	tMaxX, tMaxY float64
	tDeltaX      float64
	tDeltaY      float64
	remaining    int // bound: a segment crosses at most cols+rows+2 boundaries
	started      bool
	done         bool
}

func newGridWalker(g *Grid, a, b Vec) gridWalker {
	w := gridWalker{
		cur:       g.CellOf(a),
		end:       g.CellOf(b),
		stepX:     1,
		stepY:     1,
		remaining: g.cols + g.rows + 2,
	}
	d := b.Sub(a)
	if d.X < 0 {
		w.stepX = -1
	}
	if d.Y < 0 {
		w.stepY = -1
	}

	// tMaxX/tMaxY: parametric distance along the segment to the next vertical/
	// horizontal cell boundary. tDelta: distance between successive boundaries.
	inf := 1e18
	w.tMaxX, w.tDeltaX = inf, inf
	if d.X != 0 {
		var nextX float64
		if w.stepX > 0 {
			nextX = float64(w.cur.Col+1) * g.cellSize
		} else {
			nextX = float64(w.cur.Col) * g.cellSize
		}
		w.tMaxX = (nextX - a.X) / d.X
		w.tDeltaX = g.cellSize / absF(d.X)
	}
	w.tMaxY, w.tDeltaY = inf, inf
	if d.Y != 0 {
		var nextY float64
		if w.stepY > 0 {
			nextY = float64(w.cur.Row+1) * g.cellSize
		} else {
			nextY = float64(w.cur.Row) * g.cellSize
		}
		w.tMaxY = (nextY - a.Y) / d.Y
		w.tDeltaY = g.cellSize / absF(d.Y)
	}
	return w
}

// next returns the next intersected cell. The start cell is yielded first;
// the walk ends after the end cell, the segment's extent, or the boundary
// bound, whichever comes first.
func (w *gridWalker) next() (Cell, bool) {
	if w.done {
		return Cell{}, false
	}
	if !w.started {
		w.started = true
		if w.cur == w.end {
			w.done = true
		}
		return w.cur, true
	}
	for w.remaining > 0 {
		w.remaining--
		if w.tMaxX < w.tMaxY {
			if w.tMaxX > 1 {
				break
			}
			w.cur.Col += w.stepX
			w.tMaxX += w.tDeltaX
		} else {
			if w.tMaxY > 1 {
				break
			}
			w.cur.Row += w.stepY
			w.tMaxY += w.tDeltaY
		}
		if w.cur == w.end {
			w.done = true
		}
		return w.cur, true
	}
	w.done = true
	return Cell{}, false
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ForestOptions configures random forest generation.
type ForestOptions struct {
	// TreeDensity is the fraction of cells occupied by trees, in [0, 1].
	TreeDensity float64
	// RockDensity is the fraction of cells occupied by rocks, in [0, 1].
	RockDensity float64
	// ClearRadius keeps a circle of Ground cells around each clearing centre,
	// in metres. Used for landing areas and harvest sites.
	ClearRadius float64
	// Clearings are kept free of trees and rocks.
	Clearings []Vec
}

// GenerateForest populates the grid with randomly placed trees and rocks,
// preserving the requested clearings. Existing Road cells are preserved.
func (g *Grid) GenerateForest(r *rng.Rand, opts ForestOptions) {
	for row := 0; row < g.rows; row++ {
		for col := 0; col < g.cols; col++ {
			c := C(col, row)
			if g.At(c) == Road {
				continue
			}
			center := g.Center(c)
			inClearing := false
			for _, cl := range opts.Clearings {
				if center.Dist(cl) <= opts.ClearRadius {
					inClearing = true
					break
				}
			}
			if inClearing {
				g.Set(c, Ground)
				continue
			}
			switch {
			case r.Bool(opts.TreeDensity):
				g.Set(c, Tree)
			case r.Bool(opts.RockDensity):
				g.Set(c, Rock)
			default:
				g.Set(c, Ground)
			}
		}
	}
}

// CarveRoad sets all cells along segment a→b to Road, making a drivable,
// non-occluding strip.
func (g *Grid) CarveRoad(a, b Vec) {
	for _, c := range g.traverse(a, b) {
		g.Set(c, Road)
	}
}

// CountTerrain returns the number of cells with terrain t.
func (g *Grid) CountTerrain(t Terrain) int {
	n := 0
	for _, c := range g.cells {
		if c == t {
			n++
		}
	}
	return n
}
