package geo

import (
	"container/heap"
	"errors"
	"math"
)

// ErrNoPath is returned when the planner cannot connect start and goal.
var ErrNoPath = errors.New("no drivable path between start and goal")

// roadCostFactor makes roads preferred over raw ground by the planner.
const roadCostFactor = 0.5

// FindPath plans a drivable route from world position start to goal using A*
// over the grid's drivable cells (8-connected, corner-cut safe). It returns
// the route as a sequence of world waypoints including the goal, or ErrNoPath.
func (g *Grid) FindPath(start, goal Vec) ([]Vec, error) {
	s, t := g.CellOf(start), g.CellOf(goal)
	if !g.InBounds(s) || !g.InBounds(t) {
		return nil, ErrNoPath
	}
	if !g.At(s).Drivable() || !g.At(t).Drivable() {
		return nil, ErrNoPath
	}
	if s == t {
		return []Vec{goal}, nil
	}

	idx := func(c Cell) int { return c.Row*g.cols + c.Col }
	gScore := make(map[int]float64, 256)
	came := make(map[int]Cell, 256)
	gScore[idx(s)] = 0

	open := &cellQueue{}
	heap.Init(open)
	heap.Push(open, cellItem{cell: s, priority: g.heuristic(s, t)})

	closed := make(map[int]bool, 256)

	for open.Len() > 0 {
		item, ok := heap.Pop(open).(cellItem)
		if !ok {
			break
		}
		cur := item.cell
		ci := idx(cur)
		if closed[ci] {
			continue
		}
		closed[ci] = true
		if cur == t {
			return g.reconstruct(came, cur, s, goal), nil
		}
		for _, step := range neighborSteps {
			next := Cell{Col: cur.Col + step.dc, Row: cur.Row + step.dr}
			if !g.InBounds(next) || !g.At(next).Drivable() {
				continue
			}
			// Disallow cutting corners diagonally past blocked cells.
			if step.dc != 0 && step.dr != 0 {
				side1 := Cell{Col: cur.Col + step.dc, Row: cur.Row}
				side2 := Cell{Col: cur.Col, Row: cur.Row + step.dr}
				if !g.At(side1).Drivable() || !g.At(side2).Drivable() {
					continue
				}
			}
			cost := step.cost * g.cellSize
			if g.At(next) == Road {
				cost *= roadCostFactor
			}
			ni := idx(next)
			tentative := gScore[ci] + cost
			if prev, seen := gScore[ni]; seen && tentative >= prev {
				continue
			}
			gScore[ni] = tentative
			came[ni] = cur
			heap.Push(open, cellItem{cell: next, priority: tentative + g.heuristic(next, t)})
		}
	}
	return nil, ErrNoPath
}

func (g *Grid) heuristic(a, b Cell) float64 {
	dx := float64(a.Col - b.Col)
	dy := float64(a.Row - b.Row)
	return math.Hypot(dx, dy) * g.cellSize * roadCostFactor
}

func (g *Grid) reconstruct(came map[int]Cell, cur, start Cell, goal Vec) []Vec {
	idx := func(c Cell) int { return c.Row*g.cols + c.Col }
	var rev []Cell
	for cur != start {
		rev = append(rev, cur)
		cur = came[idx(cur)]
	}
	path := make([]Vec, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, g.Center(rev[i]))
	}
	if len(path) == 0 {
		return []Vec{goal}
	}
	path[len(path)-1] = goal
	return path
}

var neighborSteps = []struct {
	dc, dr int
	cost   float64
}{
	{1, 0, 1}, {-1, 0, 1}, {0, 1, 1}, {0, -1, 1},
	{1, 1, math.Sqrt2}, {1, -1, math.Sqrt2}, {-1, 1, math.Sqrt2}, {-1, -1, math.Sqrt2},
}

type cellItem struct {
	cell     Cell
	priority float64
}

type cellQueue []cellItem

func (q cellQueue) Len() int            { return len(q) }
func (q cellQueue) Less(i, j int) bool  { return q[i].priority < q[j].priority }
func (q cellQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *cellQueue) Push(x interface{}) { *q = append(*q, x.(cellItem)) }
func (q *cellQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
