// Package geo provides the 2-D geometry substrate of the worksite simulator:
// vectors, poses, the terrain grid with tree/rock occlusions, line-of-sight
// ray casting, and grid path finding.
//
// The forestry worksite of the paper's Fig. 1 is modelled as a rectangular
// grid of square cells. Machines and workers move in continuous coordinates
// over the grid; occlusion queries (the core of the Fig. 2 drone point-of-view
// experiment) are resolved by tracing grid cells along the sight line.
package geo

import "math"

// Vec is a 2-D vector in metres (world coordinates).
type Vec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + o.
func (v Vec) Add(o Vec) Vec { return Vec{X: v.X + o.X, Y: v.Y + o.Y} }

// Sub returns v - o.
func (v Vec) Sub(o Vec) Vec { return Vec{X: v.X - o.X, Y: v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{X: v.X * s, Y: v.Y * s} }

// Dot returns the dot product of v and o.
func (v Vec) Dot(o Vec) float64 { return v.X*o.X + v.Y*o.Y }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and o.
func (v Vec) Dist(o Vec) float64 { return v.Sub(o).Len() }

// Norm returns the unit vector in the direction of v, or the zero vector if v
// has zero length.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Angle returns the heading of v in radians, in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Lerp linearly interpolates from v to o by t in [0,1].
func (v Vec) Lerp(o Vec, t float64) Vec {
	return Vec{X: v.X + (o.X-v.X)*t, Y: v.Y + (o.Y-v.Y)*t}
}

// Pose is a position plus heading.
type Pose struct {
	Pos     Vec     `json:"pos"`
	Heading float64 `json:"headingRad"`
}

// Forward returns the unit vector in the pose's heading direction.
func (p Pose) Forward() Vec {
	return Vec{X: math.Cos(p.Heading), Y: math.Sin(p.Heading)}
}

// Cell is an integer grid coordinate.
type Cell struct {
	Col int `json:"col"`
	Row int `json:"row"`
}

// C is shorthand for constructing a Cell.
func C(col, row int) Cell { return Cell{Col: col, Row: row} }
