package geo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestVecOps(t *testing.T) {
	tests := []struct {
		name string
		got  Vec
		want Vec
	}{
		{"add", V(1, 2).Add(V(3, 4)), V(4, 6)},
		{"sub", V(3, 4).Sub(V(1, 2)), V(2, 2)},
		{"scale", V(1, -2).Scale(3), V(3, -6)},
		{"lerp-mid", V(0, 0).Lerp(V(10, 20), 0.5), V(5, 10)},
		{"lerp-end", V(0, 0).Lerp(V(10, 20), 1), V(10, 20)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Fatalf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecLenDist(t *testing.T) {
	if got := V(3, 4).Len(); got != 5 {
		t.Fatalf("Len = %v, want 5", got)
	}
	if got := V(1, 1).Dist(V(4, 5)); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := V(0, 0).Norm(); got != (Vec{}) {
		t.Fatalf("Norm of zero = %v, want zero", got)
	}
	n := V(10, 0).Norm()
	if math.Abs(n.Len()-1) > 1e-12 {
		t.Fatalf("Norm length = %v, want 1", n.Len())
	}
}

func TestPoseForward(t *testing.T) {
	p := Pose{Heading: math.Pi / 2}
	f := p.Forward()
	if math.Abs(f.X) > 1e-12 || math.Abs(f.Y-1) > 1e-12 {
		t.Fatalf("Forward = %v, want (0,1)", f)
	}
}

func mustGrid(t *testing.T, cols, rows int, cell float64) *Grid {
	t.Helper()
	g, err := NewGrid(cols, rows, cell)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5, 1); err == nil {
		t.Fatal("want error for zero cols")
	}
	if _, err := NewGrid(5, 5, 0); err == nil {
		t.Fatal("want error for zero cell size")
	}
}

func TestGridBoundsAndTerrain(t *testing.T) {
	g := mustGrid(t, 10, 10, 2)
	if g.Width() != 20 || g.Height() != 20 {
		t.Fatalf("dims = %vx%v, want 20x20", g.Width(), g.Height())
	}
	if got := g.At(C(-1, 0)); got != Rock {
		t.Fatalf("out-of-bounds terrain = %v, want Rock", got)
	}
	g.Set(C(3, 4), Tree)
	if got := g.At(C(3, 4)); got != Tree {
		t.Fatalf("terrain = %v, want Tree", got)
	}
	g.Set(C(100, 100), Tree) // must not panic
	if !g.At(C(3, 4)).Occludes() {
		t.Fatal("Tree must occlude")
	}
	if g.At(C(3, 4)).Drivable() {
		t.Fatal("Tree must not be drivable")
	}
	if !Road.Drivable() || Road.Occludes() {
		t.Fatal("Road must be drivable and transparent")
	}
}

func TestCellCenterRoundTrip(t *testing.T) {
	g := mustGrid(t, 8, 8, 5)
	for _, c := range []Cell{C(0, 0), C(3, 7), C(7, 0)} {
		if got := g.CellOf(g.Center(c)); got != c {
			t.Fatalf("CellOf(Center(%v)) = %v", c, got)
		}
	}
}

func TestLineOfSightClear(t *testing.T) {
	g := mustGrid(t, 20, 20, 1)
	if !g.LineOfSight(V(0.5, 0.5), V(19.5, 19.5)) {
		t.Fatal("empty grid must have LOS")
	}
}

func TestLineOfSightBlockedByTree(t *testing.T) {
	g := mustGrid(t, 20, 20, 1)
	// Wall of trees across the middle.
	for col := 0; col < 20; col++ {
		g.Set(C(col, 10), Tree)
	}
	if g.LineOfSight(V(5, 2), V(5, 18)) {
		t.Fatal("tree wall must block LOS")
	}
	if !g.LineOfSight(V(5, 2), V(15, 2)) {
		t.Fatal("parallel-to-wall LOS must be clear")
	}
}

func TestLineOfSightEndpointsDontOcclude(t *testing.T) {
	g := mustGrid(t, 10, 10, 1)
	g.Set(C(1, 1), Tree)
	g.Set(C(8, 8), Tree)
	if !g.LineOfSight(g.Center(C(1, 1)), g.Center(C(8, 8))) {
		t.Fatal("endpoint cells must not occlude")
	}
}

func TestFirstObstruction(t *testing.T) {
	g := mustGrid(t, 20, 1, 1)
	g.Set(C(7, 0), Rock)
	g.Set(C(12, 0), Tree)
	c, blocked := g.FirstObstruction(V(0.5, 0.5), V(19.5, 0.5))
	if !blocked {
		t.Fatal("want obstruction")
	}
	if c != C(7, 0) {
		t.Fatalf("first obstruction = %v, want (7,0)", c)
	}
	if _, blocked := g.FirstObstruction(V(0.5, 0.5), V(5.5, 0.5)); blocked {
		t.Fatal("short segment must be clear")
	}
}

func TestFindPathStraight(t *testing.T) {
	g := mustGrid(t, 10, 10, 1)
	path, err := g.FindPath(V(0.5, 0.5), V(9.5, 0.5))
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	last := path[len(path)-1]
	if last.Dist(V(9.5, 0.5)) > 1e-9 {
		t.Fatalf("path must end at goal, got %v", last)
	}
}

func TestFindPathAroundWall(t *testing.T) {
	g := mustGrid(t, 10, 10, 1)
	// Wall with one gap at row 9.
	for row := 0; row < 9; row++ {
		g.Set(C(5, row), Rock)
	}
	path, err := g.FindPath(V(1.5, 1.5), V(8.5, 1.5))
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	// The path must pass through the gap region (row >= 8).
	sawGap := false
	for _, p := range path {
		if g.CellOf(p).Row >= 8 {
			sawGap = true
		}
		if !g.At(g.CellOf(p)).Drivable() {
			t.Fatalf("path crosses blocked cell at %v", p)
		}
	}
	if !sawGap {
		t.Fatal("path did not route around the wall")
	}
}

func TestFindPathNoRoute(t *testing.T) {
	g := mustGrid(t, 10, 10, 1)
	for row := 0; row < 10; row++ {
		g.Set(C(5, row), Rock)
	}
	_, err := g.FindPath(V(1.5, 1.5), V(8.5, 1.5))
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestFindPathStartEqualsGoal(t *testing.T) {
	g := mustGrid(t, 5, 5, 1)
	path, err := g.FindPath(V(2.5, 2.5), V(2.6, 2.6))
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	if len(path) != 1 {
		t.Fatalf("same-cell path length = %d, want 1", len(path))
	}
}

func TestFindPathPrefersRoad(t *testing.T) {
	g := mustGrid(t, 20, 3, 1)
	g.CarveRoad(V(0.5, 1.5), V(19.5, 1.5))
	path, err := g.FindPath(V(0.5, 0.5), V(19.5, 0.5))
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	onRoad := 0
	for _, p := range path {
		if g.At(g.CellOf(p)) == Road {
			onRoad++
		}
	}
	if onRoad < len(path)/2 {
		t.Fatalf("path used road for %d/%d waypoints, want majority", onRoad, len(path))
	}
}

func TestGenerateForestDensity(t *testing.T) {
	g := mustGrid(t, 50, 50, 2)
	r := rng.New(42)
	g.GenerateForest(r, ForestOptions{TreeDensity: 0.3})
	frac := float64(g.CountTerrain(Tree)) / float64(50*50)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("tree fraction = %.3f, want ~0.3", frac)
	}
}

func TestGenerateForestClearings(t *testing.T) {
	g := mustGrid(t, 40, 40, 1)
	r := rng.New(7)
	center := V(20, 20)
	g.GenerateForest(r, ForestOptions{
		TreeDensity: 0.9,
		ClearRadius: 5,
		Clearings:   []Vec{center},
	})
	for dc := -3; dc <= 3; dc++ {
		for dr := -3; dr <= 3; dr++ {
			c := C(20+dc, 20+dr)
			if g.Center(c).Dist(center) <= 5 && g.At(c) != Ground {
				t.Fatalf("clearing cell %v is %v, want Ground", c, g.At(c))
			}
		}
	}
}

func TestGenerateForestPreservesRoads(t *testing.T) {
	g := mustGrid(t, 30, 30, 1)
	g.CarveRoad(V(0.5, 15.5), V(29.5, 15.5))
	before := g.CountTerrain(Road)
	g.GenerateForest(rng.New(3), ForestOptions{TreeDensity: 0.5})
	if after := g.CountTerrain(Road); after != before {
		t.Fatalf("roads changed: %d -> %d", before, after)
	}
}

func TestPropertyTraverseConnectsEndpoints(t *testing.T) {
	g := mustGrid(t, 30, 30, 1)
	f := func(ax, ay, bx, by uint8) bool {
		a := V(float64(ax%30)+0.5, float64(ay%30)+0.5)
		b := V(float64(bx%30)+0.5, float64(by%30)+0.5)
		cells := g.traverse(a, b)
		if len(cells) == 0 {
			return false
		}
		if cells[0] != g.CellOf(a) {
			return false
		}
		// Successive cells are 4-adjacent (DDA moves one axis per step).
		for i := 1; i < len(cells); i++ {
			dc := cells[i].Col - cells[i-1].Col
			dr := cells[i].Row - cells[i-1].Row
			if dc*dc+dr*dr != 1 {
				return false
			}
		}
		return cells[len(cells)-1] == g.CellOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPathEndsAtGoalAndStaysDrivable(t *testing.T) {
	g := mustGrid(t, 25, 25, 1)
	g.GenerateForest(rng.New(9), ForestOptions{TreeDensity: 0.2})
	// Guarantee start/goal corners are open.
	g.Set(C(0, 0), Ground)
	g.Set(C(24, 24), Ground)
	f := func(gx, gy uint8) bool {
		goalCell := C(int(gx%25), int(gy%25))
		if !g.At(goalCell).Drivable() {
			return true // skip blocked goals
		}
		goal := g.Center(goalCell)
		path, err := g.FindPath(V(0.5, 0.5), goal)
		if errors.Is(err, ErrNoPath) {
			return true // disconnected pockets are legitimate
		}
		if err != nil {
			return false
		}
		for _, p := range path {
			if !g.At(g.CellOf(p)).Drivable() {
				return false
			}
		}
		return path[len(path)-1].Dist(goal) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
