// Package simclock implements the deterministic discrete-event scheduler that
// drives the worksite simulation.
//
// All worksite dynamics — machine control ticks, radio frame deliveries,
// attack campaign phases, IDS evaluation — are events on a single virtual
// timeline. Events at equal times fire in scheduling order (FIFO), which makes
// every run with the same seed bit-for-bit repeatable, a prerequisite for the
// secured-vs-unsecured comparisons in the benchmark harness.
package simclock

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the scheduler was stopped explicitly.
var ErrStopped = errors.New("scheduler stopped")

// Event is a scheduled callback. The callback receives the scheduler so it can
// schedule follow-up events.
type Event func(s *Scheduler)

// Task is the allocation-free alternative to Event: a pooled object whose
// RunEvent method fires at the scheduled time. High-rate schedulers (the radio
// medium's frame deliveries) implement it on recycled structs so scheduling
// does not allocate a closure per event.
type Task interface {
	RunEvent(s *Scheduler)
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle uint64

// Scheduler is a deterministic discrete-event scheduler over virtual time.
// The zero value is not usable; construct with New.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	// canceled marks handles whose events must not fire.
	canceled map[Handle]struct{}
	// free recycles queue nodes: the control loop schedules one event per
	// tick and the radio one per delivery, so node reuse keeps the steady
	// state allocation-free.
	free []*queuedEvent
}

// New returns an empty scheduler at virtual time zero.
func New() *Scheduler {
	return &Scheduler{canceled: make(map[Handle]struct{})}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at absolute virtual time t. Times in the past are
// clamped to now. It returns a Handle usable with Cancel.
//
//worksim:hotpath
func (s *Scheduler) At(t time.Duration, fn Event) Handle {
	return s.schedule(t, fn, nil)
}

// AtTask schedules task.RunEvent at absolute virtual time t. Unlike At it
// performs no allocation beyond the (pooled) queue node, so callers can reuse
// task objects for a zero-allocation steady state.
//
//worksim:hotpath
func (s *Scheduler) AtTask(t time.Duration, task Task) Handle {
	return s.schedule(t, nil, task)
}

//worksim:hotpath
func (s *Scheduler) schedule(t time.Duration, fn Event, task Task) Handle {
	if t < s.now {
		t = s.now
	}
	s.seq++
	h := Handle(s.seq)
	var qe *queuedEvent
	if n := len(s.free); n > 0 {
		qe = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		qe = new(queuedEvent) //worksim:allow pool warm-up: allocates only until the node pool reaches high water
	}
	*qe = queuedEvent{at: t, seq: s.seq, fn: fn, task: task, handle: h}
	heap.Push(&s.queue, qe)
	return h
}

// After schedules fn to run d after the current virtual time.
//
//worksim:hotpath
func (s *Scheduler) After(d time.Duration, fn Event) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AfterTask schedules task.RunEvent d after the current virtual time.
//
//worksim:hotpath
func (s *Scheduler) AfterTask(d time.Duration, task Task) Handle {
	if d < 0 {
		d = 0
	}
	return s.AtTask(s.now+d, task)
}

// release returns a fired (or skipped) node to the free list. The node's
// references are dropped so recycled nodes do not pin callbacks alive.
//
//worksim:hotpath
func (s *Scheduler) release(qe *queuedEvent) {
	*qe = queuedEvent{}
	s.free = append(s.free, qe)
}

// Every schedules fn to run repeatedly with the given period, starting one
// period from now, until the returned cancel function is called. Period must
// be positive or no events are scheduled.
func (s *Scheduler) Every(period time.Duration, fn Event) (cancel func()) {
	if period <= 0 {
		return func() {}
	}
	stopped := false
	var tick Event
	tick = func(sch *Scheduler) {
		if stopped {
			return
		}
		fn(sch)
		if !stopped {
			sch.After(period, tick)
		}
	}
	s.After(period, tick)
	return func() { stopped = true }
}

// Cancel prevents the event identified by h from firing. Cancelling an
// already-fired or unknown handle is a no-op.
func (s *Scheduler) Cancel(h Handle) {
	s.canceled[h] = struct{}{}
}

// Stop makes Run return ErrStopped after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of queued (possibly cancelled) events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Run executes events in order until the queue empties, virtual time would
// exceed until, or Stop is called. Events scheduled exactly at until still
// run. It returns ErrStopped if stopped, nil otherwise.
//
//worksim:hotpath
func (s *Scheduler) Run(until time.Duration) error {
	for s.queue.Len() > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.at > until {
			// Leave future events queued; advance the clock to the horizon.
			s.now = until
			return nil
		}
		heap.Pop(&s.queue)
		s.fire(next)
	}
	if s.now < until {
		s.now = until
	}
	return nil
}

// Step executes exactly one pending event (skipping cancelled ones) and
// reports whether an event ran.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		next, ok := heap.Pop(&s.queue).(*queuedEvent)
		if !ok {
			return false
		}
		if s.fire(next) {
			return true
		}
	}
	return false
}

// fire releases a popped node and runs its callback, advancing the clock to
// the node's time. It reports whether the callback actually ran (false for
// a cancelled handle). The node is recycled before the callback executes so
// re-entrant scheduling can reuse it.
//
//worksim:hotpath
func (s *Scheduler) fire(next *queuedEvent) bool {
	if _, dead := s.canceled[next.handle]; dead {
		delete(s.canceled, next.handle)
		s.release(next)
		return false
	}
	s.now = next.at
	fn, task := next.fn, next.task
	s.release(next)
	if task != nil {
		task.RunEvent(s)
	} else {
		fn(s)
	}
	return true
}

type queuedEvent struct {
	at     time.Duration
	seq    uint64
	fn     Event
	task   Task
	handle Handle
}

type eventQueue []*queuedEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

//worksim:hotpath
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*queuedEvent)) }

//worksim:hotpath
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}
