package simclock

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3*time.Second, func(*Scheduler) { order = append(order, 3) })
	s.At(1*time.Second, func(*Scheduler) { order = append(order, 1) })
	s.At(2*time.Second, func(*Scheduler) { order = append(order, 2) })
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(time.Second, func(*Scheduler) { order = append(order, i) })
	}
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := New()
	var at time.Duration
	s.After(5*time.Second, func(sch *Scheduler) { at = sch.Now() })
	if err := s.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5*time.Second {
		t.Fatalf("event saw Now = %v, want 5s", at)
	}
	if s.Now() != time.Minute {
		t.Fatalf("Now after Run = %v, want horizon 1m", s.Now())
	}
}

func TestRunHorizonLeavesFutureEvents(t *testing.T) {
	s := New()
	fired := false
	s.At(10*time.Second, func(*Scheduler) { fired = true })
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if err := s.Run(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event did not fire on second Run")
	}
}

func TestPastTimesClampToNow(t *testing.T) {
	s := New()
	var firedAt time.Duration
	s.At(5*time.Second, func(sch *Scheduler) {
		sch.At(time.Second, func(sch2 *Scheduler) { firedAt = sch2.Now() })
	})
	if err := s.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedAt != 5*time.Second {
		t.Fatalf("past-scheduled event fired at %v, want clamp to 5s", firedAt)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(time.Second, func(*Scheduler) { fired = true })
	s.Cancel(h)
	if err := s.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(time.Second, func(sch *Scheduler) { count++; sch.Stop() })
	s.At(2*time.Second, func(*Scheduler) { count++ })
	err := s.Run(time.Minute)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (stop halts subsequent events)", count)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	count := 0
	var cancel func()
	cancel = s.Every(time.Second, func(sch *Scheduler) {
		count++
		if count == 3 {
			cancel()
		}
	})
	if err := s.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEveryZeroPeriodNoop(t *testing.T) {
	s := New()
	cancel := s.Every(0, func(*Scheduler) { t.Fatal("must not fire") })
	cancel()
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStep(t *testing.T) {
	s := New()
	count := 0
	s.At(time.Second, func(*Scheduler) { count++ })
	s.At(2*time.Second, func(*Scheduler) { count++ })
	if !s.Step() || count != 1 {
		t.Fatalf("first Step: count = %d, want 1", count)
	}
	if !s.Step() || count != 2 {
		t.Fatalf("second Step: count = %d, want 2", count)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventsScheduleFollowUps(t *testing.T) {
	s := New()
	depth := 0
	var recurse Event
	recurse = func(sch *Scheduler) {
		depth++
		if depth < 10 {
			sch.After(time.Second, recurse)
		}
	}
	s.After(time.Second, recurse)
	if err := s.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	if s.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m", s.Now())
	}
}

func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var times []time.Duration
		for _, d := range delays {
			s.At(time.Duration(d)*time.Millisecond, func(sch *Scheduler) {
				times = append(times, sch.Now())
			})
		}
		if err := s.Run(time.Hour); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
