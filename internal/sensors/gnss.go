package sensors

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
)

// GNSSMode captures the electromagnetic condition of the receiver.
type GNSSMode int

// GNSS operating conditions. Spoofed and Jammed are set by the attack
// framework (the mining survey's "GNSS attacks to spoof or jam GNSS signals,
// causing inaccurate navigation").
const (
	GNSSNominal GNSSMode = iota + 1
	GNSSJammed
	GNSSSpoofed
)

// String returns a short mode label.
func (m GNSSMode) String() string {
	switch m {
	case GNSSNominal:
		return "nominal"
	case GNSSJammed:
		return "jammed"
	case GNSSSpoofed:
		return "spoofed"
	default:
		return "unknown"
	}
}

// GNSSReading is one position fix with the signal characteristics Ren et al.
// (Section IV-C) recommend checking as a spoofing defence.
type GNSSReading struct {
	HasFix     bool     `json:"hasFix"`
	Pos        geo.Vec  `json:"pos"`
	HDOP       float64  `json:"hdop"`
	CN0DBHz    float64  `json:"cn0DBHz"` // carrier-to-noise density
	Satellites int      `json:"satellites"`
	Mode       GNSSMode `json:"-"` // ground truth, not visible to consumers
}

// GNSS simulates a receiver mounted on a machine.
type GNSS struct {
	rand *rng.Rand
	// NoiseSigmaM is the nominal per-axis position noise (metres).
	NoiseSigmaM float64
	// Mode is the current electromagnetic condition.
	Mode GNSSMode
	// SpoofOffset displaces reported positions while spoofed.
	SpoofOffset geo.Vec
}

// NewGNSS creates a receiver with nominal 1.2 m noise.
func NewGNSS(r *rng.Rand) *GNSS {
	return &GNSS{rand: r.Derive("gnss"), NoiseSigmaM: 1.2, Mode: GNSSNominal}
}

// Sample produces a reading for a receiver truly located at truth.
//
//worksim:hotpath
func (g *GNSS) Sample(truth geo.Vec) GNSSReading {
	switch g.Mode {
	case GNSSJammed:
		// Receiver loses lock; residual readings show elevated noise floor
		// (low C/N0) and few satellites.
		return GNSSReading{
			HasFix:     false,
			HDOP:       99,
			CN0DBHz:    g.rand.Range(8, 18),
			Satellites: g.rand.Intn(3),
			Mode:       GNSSJammed,
		}
	case GNSSSpoofed:
		// Spoofers overpower authentic signals: the fix is confident but
		// displaced, and C/N0 is anomalously high and uniform.
		p := truth.Add(g.SpoofOffset)
		return GNSSReading{
			HasFix:     true,
			Pos:        geo.V(p.X+g.rand.Norm(0, 0.3), p.Y+g.rand.Norm(0, 0.3)),
			HDOP:       g.rand.Range(0.6, 0.9),
			CN0DBHz:    g.rand.Range(50, 54),
			Satellites: 12,
			Mode:       GNSSSpoofed,
		}
	default:
		return GNSSReading{
			HasFix:     true,
			Pos:        geo.V(truth.X+g.rand.Norm(0, g.NoiseSigmaM), truth.Y+g.rand.Norm(0, g.NoiseSigmaM)),
			HDOP:       g.rand.Range(0.8, 1.6),
			CN0DBHz:    g.rand.Range(38, 46),
			Satellites: 8 + g.rand.Intn(5),
			Mode:       GNSSNominal,
		}
	}
}

// GNSSGuard is the plausibility monitor the navigation stack runs over
// consecutive readings (Ren et al.'s "checking the signal characters, e.g.,
// strength"). It flags fixes whose signal statistics or kinematics are
// implausible; the IDS consumes these flags.
type GNSSGuard struct {
	// MaxSpeedMPS bounds plausible machine speed.
	MaxSpeedMPS float64
	// MaxCN0DBHz is the highest plausible authentic carrier strength.
	MaxCN0DBHz float64

	havePrev bool
	prevPos  geo.Vec
	prevT    float64
}

// NewGNSSGuard returns a guard tuned for a forwarder (max 12 m/s; authentic
// C/N0 rarely exceeds 48 dB-Hz).
func NewGNSSGuard() *GNSSGuard {
	return &GNSSGuard{MaxSpeedMPS: 12, MaxCN0DBHz: 48}
}

// GNSSVerdict is the guard's assessment of one reading.
type GNSSVerdict struct {
	Trustworthy bool   `json:"trustworthy"`
	Reason      string `json:"reason,omitempty"`
}

// Check evaluates a reading taken at virtual time tSec (seconds).
//
//worksim:hotpath
func (gd *GNSSGuard) Check(r GNSSReading, tSec float64) GNSSVerdict {
	if !r.HasFix {
		return GNSSVerdict{Trustworthy: false, Reason: "no fix"}
	}
	if r.CN0DBHz > gd.MaxCN0DBHz {
		return GNSSVerdict{Trustworthy: false, Reason: "carrier strength implausibly high"}
	}
	if gd.havePrev && tSec > gd.prevT {
		dt := tSec - gd.prevT
		speed := r.Pos.Dist(gd.prevPos) / dt
		if speed > gd.MaxSpeedMPS {
			gd.prevPos, gd.prevT = r.Pos, tSec
			return GNSSVerdict{Trustworthy: false, Reason: "position jump exceeds max speed"}
		}
	}
	gd.havePrev = true
	gd.prevPos, gd.prevT = r.Pos, tSec
	return GNSSVerdict{Trustworthy: true}
}

// PositionError returns the distance between a reading and ground truth,
// or +Inf without a fix — the metric the navigation experiments report.
func PositionError(r GNSSReading, truth geo.Vec) float64 {
	if !r.HasFix {
		return math.Inf(1)
	}
	return r.Pos.Dist(truth)
}
