package sensors

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Target is a ground-truth object a perception sensor may detect (a worker,
// another machine, an obstacle).
type Target struct {
	ID  string
	Pos geo.Vec
}

// Detection is a perceived target.
type Detection struct {
	TargetID   string  `json:"targetId"`
	Pos        geo.Vec `json:"pos"`
	Confidence float64 `json:"confidence"`
	Sensor     string  `json:"sensor"`
	// FalsePositive marks clutter detections (ground truth, for scoring).
	FalsePositive bool `json:"falsePositive"`
}

// Lidar is a ground-level scanning range sensor. Detection requires grid
// line of sight (terrain obstacles occlude — the Fig. 2 problem) and degrades
// with range and rain (droplet returns).
type Lidar struct {
	rand *rng.Rand
	grid *geo.Grid
	// RangeM is the maximum detection range.
	RangeM float64
	// BaseDetectProb is the per-scan detection probability at close range in
	// clear weather.
	BaseDetectProb float64
	// PosSigmaM is detection position noise.
	PosSigmaM float64

	scratch []Detection
}

// NewLidar creates a LiDAR with a 40 m range over the given grid.
func NewLidar(r *rng.Rand, grid *geo.Grid) *Lidar {
	return &Lidar{
		rand:           r.Derive("lidar"),
		grid:           grid,
		RangeM:         40,
		BaseDetectProb: 0.95,
		PosSigmaM:      0.3,
	}
}

// Scan attempts to detect each target from the sensor position. The returned
// slice is a scratch buffer owned by the sensor: it is valid until the next
// Scan, so callers must consume (or copy) it before scanning again.
//
//worksim:hotpath
func (l *Lidar) Scan(from geo.Vec, targets []Target, w Weather) []Detection {
	out := l.scratch[:0]
	// Weather attenuation is invariant across targets; hoist it out of the
	// loop. The multiplication order below matches the original per-target
	// expression exactly so detection probabilities stay bit-identical.
	fRain, fFog := 1-0.5*w.Rain, 1-0.3*w.Fog
	for _, t := range targets {
		d := from.Dist(t.Pos)
		if d > l.RangeM {
			continue
		}
		if !l.grid.LineOfSight(from, t.Pos) {
			continue
		}
		p := l.BaseDetectProb * rangeFalloff(d, l.RangeM) * fRain * fFog
		if !l.rand.Bool(p) {
			continue
		}
		out = append(out, Detection{
			TargetID:   t.ID,
			Pos:        geo.V(t.Pos.X+l.rand.Norm(0, l.PosSigmaM), t.Pos.Y+l.rand.Norm(0, l.PosSigmaM)),
			Confidence: p,
			Sensor:     "lidar",
		})
	}
	l.scratch = out
	return out
}

// Camera is a ground-level vision sensor running a people-detection model.
// It degrades with darkness and fog and can be blinded by the camera attacks
// of Petit et al. (Section IV-C). It also produces clutter false positives.
type Camera struct {
	rand *rng.Rand
	grid *geo.Grid
	// RangeM is the maximum detection range.
	RangeM float64
	// BaseDetectProb is the close-range clear-weather detection probability.
	BaseDetectProb float64
	// FalsePositiveRate is the per-scan probability of one clutter detection.
	FalsePositiveRate float64
	// Blinded is set by the camera-blinding attack.
	Blinded bool
	// PosSigmaM is detection position noise.
	PosSigmaM float64

	fpCount int
	scratch []Detection
}

// NewCamera creates a camera with a 50 m range over the given grid.
func NewCamera(r *rng.Rand, grid *geo.Grid) *Camera {
	return &Camera{
		rand:              r.Derive("camera"),
		grid:              grid,
		RangeM:            50,
		BaseDetectProb:    0.9,
		FalsePositiveRate: 0.01,
		PosSigmaM:         0.8,
	}
}

// Scan attempts to detect each target from the sensor position. The returned
// slice is a scratch buffer owned by the sensor: it is valid until the next
// Scan, so callers must consume (or copy) it before scanning again.
//
//worksim:hotpath
func (c *Camera) Scan(from geo.Vec, targets []Target, w Weather) []Detection {
	out := c.scratch[:0]
	if c.Blinded {
		// A blinded camera sees almost nothing and hallucinates glare blobs.
		if c.rand.Bool(0.05) {
			out = append(out, c.clutter(from))
		}
		c.scratch = out
		return out
	}
	// Hoisted weather attenuation; multiplication order matches the original
	// per-target expression so probabilities stay bit-identical.
	fDark, fFog, fRain := 1-0.7*w.Darkness, 1-0.5*w.Fog, 1-0.3*w.Rain
	for _, t := range targets {
		d := from.Dist(t.Pos)
		if d > c.RangeM {
			continue
		}
		if !c.grid.LineOfSight(from, t.Pos) {
			continue
		}
		p := c.BaseDetectProb * rangeFalloff(d, c.RangeM) *
			fDark * fFog * fRain
		if !c.rand.Bool(p) {
			continue
		}
		out = append(out, Detection{
			TargetID:   t.ID,
			Pos:        geo.V(t.Pos.X+c.rand.Norm(0, c.PosSigmaM), t.Pos.Y+c.rand.Norm(0, c.PosSigmaM)),
			Confidence: p,
			Sensor:     "camera",
		})
	}
	if c.rand.Bool(c.FalsePositiveRate) {
		out = append(out, c.clutter(from))
	}
	c.scratch = out
	return out
}

//worksim:hotpath
func (c *Camera) clutter(from geo.Vec) Detection {
	c.fpCount++
	angle := c.rand.Range(0, 2*math.Pi)
	dist := c.rand.Range(5, c.RangeM)
	return Detection{
		TargetID:      "",
		Pos:           from.Add(geo.V(math.Cos(angle), math.Sin(angle)).Scale(dist)),
		Confidence:    c.rand.Range(0.3, 0.6),
		Sensor:        "camera",
		FalsePositive: true,
	}
}

// Ultrasonic is a short-range ranger used as the last-resort protective
// field sensor: nearly weather-independent, no line-of-sight subtleties
// beyond range.
type Ultrasonic struct {
	rand *rng.Rand
	// RangeM is the maximum detection range.
	RangeM float64
	// DetectProb is the in-range detection probability.
	DetectProb float64

	scratch []Detection
}

// NewUltrasonic creates a ranger with a 5 m range.
func NewUltrasonic(r *rng.Rand) *Ultrasonic {
	return &Ultrasonic{rand: r.Derive("ultrasonic"), RangeM: 5, DetectProb: 0.99}
}

// Scan detects targets within the short protective field. The returned slice
// is a scratch buffer owned by the sensor: it is valid until the next Scan.
//
//worksim:hotpath
func (u *Ultrasonic) Scan(from geo.Vec, targets []Target, _ Weather) []Detection {
	out := u.scratch[:0]
	for _, t := range targets {
		if from.Dist(t.Pos) > u.RangeM {
			continue
		}
		if !u.rand.Bool(u.DetectProb) {
			continue
		}
		out = append(out, Detection{TargetID: t.ID, Pos: t.Pos, Confidence: 0.99, Sensor: "ultrasonic"})
	}
	u.scratch = out
	return out
}

// AerialCamera is the drone's downward-looking detector: terrain obstacles do
// not occlude it, only canopy directly over the target does (the Fig. 2
// "additional point of view" that eliminates occlusions caused by terrain
// obstacles).
type AerialCamera struct {
	rand *rng.Rand
	grid *geo.Grid
	// RangeM is the ground-projected detection radius.
	RangeM float64
	// BaseDetectProb is the clear-weather detection probability.
	BaseDetectProb float64
	// CanopyBlockProb is the probability a target directly under a tree cell
	// is hidden from above.
	CanopyBlockProb float64
	// Blinded is set by camera attacks against the drone.
	Blinded bool
	// PosSigmaM is detection position noise.
	PosSigmaM float64

	scratch []Detection
}

// NewAerialCamera creates a drone camera with a 60 m footprint.
func NewAerialCamera(r *rng.Rand, grid *geo.Grid) *AerialCamera {
	return &AerialCamera{
		rand:            r.Derive("aerial-camera"),
		grid:            grid,
		RangeM:          60,
		BaseDetectProb:  0.92,
		CanopyBlockProb: 0.65,
		PosSigmaM:       1.0,
	}
}

// Scan attempts to detect each target from the drone's ground-projected
// position. The returned slice is a scratch buffer owned by the sensor: it
// is valid until the next Scan.
//
//worksim:hotpath
func (a *AerialCamera) Scan(from geo.Vec, targets []Target, w Weather) []Detection {
	if a.Blinded {
		return nil
	}
	out := a.scratch[:0]
	// Hoisted weather attenuation; multiplication order matches the original
	// per-target expression so probabilities stay bit-identical.
	fFog, fDark, fRain := 1-0.6*w.Fog, 1-0.5*w.Darkness, 1-0.3*w.Rain
	for _, t := range targets {
		d := from.Dist(t.Pos)
		if d > a.RangeM {
			continue
		}
		underCanopy := a.grid.At(a.grid.CellOf(t.Pos)) == geo.Tree
		p := a.BaseDetectProb * rangeFalloff(d, a.RangeM) *
			fFog * fDark * fRain
		if underCanopy {
			p *= 1 - a.CanopyBlockProb
		}
		if !a.rand.Bool(p) {
			continue
		}
		out = append(out, Detection{
			TargetID:   t.ID,
			Pos:        geo.V(t.Pos.X+a.rand.Norm(0, a.PosSigmaM), t.Pos.Y+a.rand.Norm(0, a.PosSigmaM)),
			Confidence: p,
			Sensor:     "aerial-camera",
		})
	}
	a.scratch = out
	return out
}

// rangeFalloff maps distance to a [0,1] multiplier: flat to half range, then
// linear decay to 0.4 at full range.
//
//worksim:hotpath
func rangeFalloff(d, max float64) float64 {
	if d <= max/2 {
		return 1
	}
	frac := (d - max/2) / (max / 2)
	return 1 - 0.6*frac
}
