package sensors

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

func testGrid(t *testing.T) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(100, 100, 1)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestGNSSNominal(t *testing.T) {
	g := NewGNSS(rng.New(1))
	truth := geo.V(50, 50)
	var errSum float64
	n := 500
	for i := 0; i < n; i++ {
		r := g.Sample(truth)
		if !r.HasFix {
			t.Fatal("nominal GNSS lost fix")
		}
		if r.Mode != GNSSNominal {
			t.Fatalf("mode = %v", r.Mode)
		}
		errSum += PositionError(r, truth)
	}
	mean := errSum / float64(n)
	if mean < 0.5 || mean > 3 {
		t.Fatalf("mean position error = %.2f m, want ~1.5", mean)
	}
}

func TestGNSSJammed(t *testing.T) {
	g := NewGNSS(rng.New(2))
	g.Mode = GNSSJammed
	r := g.Sample(geo.V(10, 10))
	if r.HasFix {
		t.Fatal("jammed GNSS produced a fix")
	}
	if !math.IsInf(PositionError(r, geo.V(10, 10)), 1) {
		t.Fatal("jammed position error should be +Inf")
	}
}

func TestGNSSSpoofedDisplacement(t *testing.T) {
	g := NewGNSS(rng.New(3))
	g.Mode = GNSSSpoofed
	g.SpoofOffset = geo.V(100, 0)
	truth := geo.V(50, 50)
	r := g.Sample(truth)
	if !r.HasFix {
		t.Fatal("spoofed GNSS must report a confident fix")
	}
	if err := PositionError(r, truth); err < 90 {
		t.Fatalf("spoofed error = %.1f m, want ~100", err)
	}
	if r.CN0DBHz < 48 {
		t.Fatalf("spoofed C/N0 = %.1f, want suspiciously high", r.CN0DBHz)
	}
}

func TestGNSSGuardFlagsSpoof(t *testing.T) {
	g := NewGNSS(rng.New(4))
	guard := NewGNSSGuard()
	truth := geo.V(50, 50)
	// Establish a baseline with nominal fixes.
	for i := 0; i < 5; i++ {
		v := guard.Check(g.Sample(truth), float64(i))
		if !v.Trustworthy {
			t.Fatalf("nominal reading flagged: %s", v.Reason)
		}
	}
	g.Mode = GNSSSpoofed
	g.SpoofOffset = geo.V(200, 0)
	v := guard.Check(g.Sample(truth), 5)
	if v.Trustworthy {
		t.Fatal("guard accepted a spoofed fix")
	}
}

func TestGNSSGuardFlagsJump(t *testing.T) {
	guard := NewGNSSGuard()
	r1 := GNSSReading{HasFix: true, Pos: geo.V(0, 0), CN0DBHz: 40}
	r2 := GNSSReading{HasFix: true, Pos: geo.V(500, 0), CN0DBHz: 40}
	if v := guard.Check(r1, 0); !v.Trustworthy {
		t.Fatalf("baseline flagged: %s", v.Reason)
	}
	if v := guard.Check(r2, 1); v.Trustworthy {
		t.Fatal("guard accepted 500 m/s jump")
	}
}

func TestGNSSGuardNoFix(t *testing.T) {
	guard := NewGNSSGuard()
	if v := guard.Check(GNSSReading{HasFix: false}, 0); v.Trustworthy {
		t.Fatal("guard trusted a no-fix reading")
	}
}

func TestLidarDetectsInOpen(t *testing.T) {
	grid := testGrid(t)
	l := NewLidar(rng.New(5), grid)
	targets := []Target{{ID: "w1", Pos: geo.V(60, 50)}}
	hits := 0
	for i := 0; i < 200; i++ {
		if len(l.Scan(geo.V(50, 50), targets, Clear())) > 0 {
			hits++
		}
	}
	if hits < 170 {
		t.Fatalf("open-field lidar detection = %d/200, want >= 170", hits)
	}
}

func TestLidarBlockedByTrees(t *testing.T) {
	grid := testGrid(t)
	for row := 0; row < 100; row++ {
		grid.Set(geo.C(55, row), geo.Tree)
	}
	l := NewLidar(rng.New(6), grid)
	targets := []Target{{ID: "w1", Pos: geo.V(60, 50)}}
	for i := 0; i < 100; i++ {
		if len(l.Scan(geo.V(50, 50), targets, Clear())) > 0 {
			t.Fatal("lidar saw through a tree wall")
		}
	}
}

func TestLidarRangeLimit(t *testing.T) {
	grid := testGrid(t)
	l := NewLidar(rng.New(7), grid)
	targets := []Target{{ID: "w1", Pos: geo.V(95, 50)}}
	if got := l.Scan(geo.V(50, 50), targets, Clear()); len(got) != 0 {
		t.Fatal("lidar detected beyond range")
	}
}

func TestLidarRainDegradation(t *testing.T) {
	grid := testGrid(t)
	l := NewLidar(rng.New(8), grid)
	targets := []Target{{ID: "w1", Pos: geo.V(65, 50)}}
	clear, rain := 0, 0
	for i := 0; i < 400; i++ {
		if len(l.Scan(geo.V(50, 50), targets, Clear())) > 0 {
			clear++
		}
		if len(l.Scan(geo.V(50, 50), targets, Weather{Rain: 1})) > 0 {
			rain++
		}
	}
	if rain >= clear {
		t.Fatalf("rain detection %d not worse than clear %d", rain, clear)
	}
}

func TestCameraBlinded(t *testing.T) {
	grid := testGrid(t)
	c := NewCamera(rng.New(9), grid)
	targets := []Target{{ID: "w1", Pos: geo.V(60, 50)}}
	c.Blinded = true
	real := 0
	for i := 0; i < 200; i++ {
		for _, d := range c.Scan(geo.V(50, 50), targets, Clear()) {
			if !d.FalsePositive {
				real++
			}
		}
	}
	if real != 0 {
		t.Fatalf("blinded camera made %d real detections", real)
	}
}

func TestCameraDarknessDegradation(t *testing.T) {
	grid := testGrid(t)
	c := NewCamera(rng.New(10), grid)
	targets := []Target{{ID: "w1", Pos: geo.V(60, 50)}}
	day, night := 0, 0
	for i := 0; i < 400; i++ {
		if hasReal(c.Scan(geo.V(50, 50), targets, Clear())) {
			day++
		}
		if hasReal(c.Scan(geo.V(50, 50), targets, Weather{Darkness: 1})) {
			night++
		}
	}
	if night >= day/2 {
		t.Fatalf("night detection %d vs day %d: darkness should heavily degrade", night, day)
	}
}

func TestCameraFalsePositives(t *testing.T) {
	grid := testGrid(t)
	c := NewCamera(rng.New(11), grid)
	c.FalsePositiveRate = 0.5
	fp := 0
	for i := 0; i < 200; i++ {
		for _, d := range c.Scan(geo.V(50, 50), nil, Clear()) {
			if d.FalsePositive {
				fp++
			}
		}
	}
	if fp < 50 {
		t.Fatalf("false positives = %d/200 at rate 0.5", fp)
	}
}

func TestUltrasonicShortRange(t *testing.T) {
	u := NewUltrasonic(rng.New(12))
	near := []Target{{ID: "w1", Pos: geo.V(52, 50)}}
	far := []Target{{ID: "w2", Pos: geo.V(60, 50)}}
	if len(u.Scan(geo.V(50, 50), far, Clear())) != 0 {
		t.Fatal("ultrasonic detected beyond range")
	}
	hits := 0
	for i := 0; i < 100; i++ {
		if len(u.Scan(geo.V(50, 50), near, Clear())) > 0 {
			hits++
		}
	}
	if hits < 95 {
		t.Fatalf("ultrasonic near detection = %d/100", hits)
	}
}

func TestAerialCameraIgnoresTerrainWalls(t *testing.T) {
	grid := testGrid(t)
	// Tree wall that blocks all ground LOS.
	for row := 0; row < 100; row++ {
		grid.Set(geo.C(55, row), geo.Tree)
	}
	a := NewAerialCamera(rng.New(13), grid)
	targets := []Target{{ID: "w1", Pos: geo.V(60, 50)}} // behind the wall, open cell
	hits := 0
	for i := 0; i < 200; i++ {
		if len(a.Scan(geo.V(50, 50), targets, Clear())) > 0 {
			hits++
		}
	}
	if hits < 150 {
		t.Fatalf("aerial detection behind wall = %d/200, want high (terrain must not occlude)", hits)
	}
}

func TestAerialCameraCanopyBlocks(t *testing.T) {
	grid := testGrid(t)
	grid.Set(geo.C(60, 50), geo.Tree) // target directly under canopy
	a := NewAerialCamera(rng.New(14), grid)
	open := []Target{{ID: "w1", Pos: geo.V(62.5, 50.5)}}
	canopy := []Target{{ID: "w2", Pos: geo.V(60.5, 50.5)}}
	openHits, canopyHits := 0, 0
	for i := 0; i < 400; i++ {
		if len(a.Scan(geo.V(50, 50), open, Clear())) > 0 {
			openHits++
		}
		if len(a.Scan(geo.V(50, 50), canopy, Clear())) > 0 {
			canopyHits++
		}
	}
	if canopyHits >= openHits {
		t.Fatalf("canopy hits %d not below open hits %d", canopyHits, openHits)
	}
}

func TestAerialCameraBlinded(t *testing.T) {
	grid := testGrid(t)
	a := NewAerialCamera(rng.New(15), grid)
	a.Blinded = true
	targets := []Target{{ID: "w1", Pos: geo.V(55, 50)}}
	if got := a.Scan(geo.V(50, 50), targets, Clear()); len(got) != 0 {
		t.Fatal("blinded aerial camera detected targets")
	}
}

func TestWeatherSeverity(t *testing.T) {
	if Clear().Severity() != 0 {
		t.Fatal("clear severity must be 0")
	}
	worst := Weather{Rain: 1, Fog: 1, Darkness: 1}
	if s := worst.Severity(); s != 1 {
		t.Fatalf("worst severity = %v, want 1", s)
	}
	mid := Weather{Rain: 0.5}
	if s := mid.Severity(); s <= 0 || s >= 1 {
		t.Fatalf("mid severity = %v, want in (0,1)", s)
	}
}

func hasReal(ds []Detection) bool {
	for _, d := range ds {
		if !d.FalsePositive {
			return true
		}
	}
	return false
}
