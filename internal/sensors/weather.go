// Package sensors models the perception and localisation sensors of the
// worksite machines: GNSS (with spoofing/jamming responses), LiDAR, camera,
// and ultrasonic rangers, under an environmental weather model.
//
// Section III-C/III-D of the paper motivates exactly this layer: "increased
// reliance on sensors leads to risks of non-hardware related functional
// inefficiencies like misinterpretation of sensor data [or] inadequate
// sensing due to environmental conditions" — so every detector degrades with
// rain, fog and low light, and every degradation parameter is explicit so the
// SOTIF analysis can sweep it.
package sensors

// Weather captures the environmental conditions relevant to perception.
// All factors are normalised to [0, 1]; zero is benign.
type Weather struct {
	// Rain intensity: 0 dry, 1 torrential.
	Rain float64 `json:"rain"`
	// Fog density: 0 clear, 1 dense.
	Fog float64 `json:"fog"`
	// Darkness: 0 full daylight, 1 night.
	Darkness float64 `json:"darkness"`
}

// Clear returns benign daylight weather.
func Clear() Weather { return Weather{} }

// clamp01 limits x to [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Severity aggregates the weather factors into one [0,1] degradation index
// (used by availability heuristics and reports; individual sensors use the
// specific factors they are sensitive to).
func (w Weather) Severity() float64 {
	return clamp01(0.5*w.Rain + 0.3*w.Fog + 0.2*w.Darkness)
}
