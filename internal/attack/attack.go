// Package attack implements the adversary: the attack classes the paper's
// survey enumerates for autonomous machinery over wireless links (Section
// IV-C, after Gaber et al. and Ren et al.) packaged as schedulable campaign
// phases against the simulated worksite.
//
// Implemented attacks: RF jamming (narrow and wideband), Wi-Fi de-auth
// flooding, GNSS spoofing and jamming, camera blinding, record replay, and
// command injection (MITM-style forged frames). A Campaign runs attacks over
// timed windows on the simulation scheduler so that secured and unsecured
// sites can be exposed to bit-identical adversary behaviour.
package attack

import (
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/sensors"
	"repro/internal/simclock"
)

// Attack is a campaign phase that can be switched on and off.
type Attack interface {
	// Name identifies the attack in logs and result tables.
	Name() string
	// Begin activates the attack.
	Begin(s *simclock.Scheduler)
	// End deactivates the attack.
	End(s *simclock.Scheduler)
}

// Window is one scheduled activation of an attack.
type Window struct {
	Start  time.Duration
	Stop   time.Duration
	Attack Attack
}

// Campaign schedules attack windows onto a simulation.
type Campaign struct {
	windows []Window
	log     []PhaseEvent

	// OnPhase, if set before Schedule, is invoked for every phase change as
	// it happens — the seam the scenario layer uses to stream AttackPhase
	// events into a worksite session. It runs on the simulation loop and
	// must not mutate the campaign.
	OnPhase func(PhaseEvent)
}

// PhaseEvent records an activation change, for experiment reports.
type PhaseEvent struct {
	At     time.Duration `json:"atNs"`
	Attack string        `json:"attack"`
	Active bool          `json:"active"`
}

// NewCampaign returns an empty campaign.
func NewCampaign() *Campaign { return &Campaign{} }

// Add appends an attack window. Stop <= Start means the attack never ends
// once begun.
func (c *Campaign) Add(start, stop time.Duration, a Attack) {
	c.windows = append(c.windows, Window{Start: start, Stop: stop, Attack: a})
}

// Schedule installs all windows on the scheduler.
func (c *Campaign) Schedule(s *simclock.Scheduler) {
	ws := make([]Window, len(c.windows))
	copy(ws, c.windows)
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	for _, w := range ws {
		w := w
		s.At(w.Start, func(sch *simclock.Scheduler) {
			w.Attack.Begin(sch)
			c.record(PhaseEvent{At: sch.Now(), Attack: w.Attack.Name(), Active: true})
		})
		if w.Stop > w.Start {
			s.At(w.Stop, func(sch *simclock.Scheduler) {
				w.Attack.End(sch)
				c.record(PhaseEvent{At: sch.Now(), Attack: w.Attack.Name(), Active: false})
			})
		}
	}
}

func (c *Campaign) record(e PhaseEvent) {
	c.log = append(c.log, e)
	if c.OnPhase != nil {
		c.OnPhase(e)
	}
}

// Log returns a copy of the phase-change log.
func (c *Campaign) Log() []PhaseEvent {
	out := make([]PhaseEvent, len(c.log))
	copy(out, c.log)
	return out
}

// Windows returns a copy of the configured windows.
func (c *Campaign) Windows() []Window {
	out := make([]Window, len(c.windows))
	copy(out, c.windows)
	return out
}

// --- Jamming ---

// Jamming raises the interference floor on the victim channel via a radio
// jammer placed on the site.
type Jamming struct {
	medium *radio.Medium
	jammer *radio.Jammer
}

// NewJamming creates a jammer at pos with the given power and registers it
// (inactive) on the medium. wideband jams all channels.
func NewJamming(medium *radio.Medium, id string, pos geo.Vec, channel int, powerDBm float64, wideband bool) *Jamming {
	j := &radio.Jammer{
		ID:       id,
		Pos:      func() geo.Vec { return pos },
		Channel:  channel,
		Wideband: wideband,
		PowerDBm: powerDBm,
	}
	medium.AddJammer(j)
	return &Jamming{medium: medium, jammer: j}
}

var _ Attack = (*Jamming)(nil)

// Name implements Attack.
func (a *Jamming) Name() string { return "rf-jamming" }

// Begin implements Attack.
func (a *Jamming) Begin(*simclock.Scheduler) { a.jammer.Active = true }

// End implements Attack.
func (a *Jamming) End(*simclock.Scheduler) { a.jammer.Active = false }

// --- De-auth flood ---

// DeauthFlood forges de-authentication frames from a claimed source to a
// victim at a fixed rate, the mining survey's disconnection attack.
type DeauthFlood struct {
	injector *netsim.Adapter
	claimSrc radio.NodeID
	victim   radio.NodeID
	period   time.Duration
	cancel   func()
	injected int
}

// NewDeauthFlood creates a flood using the attacker's adapter, claiming
// frames come from claimSrc, addressed to victim, one per period.
func NewDeauthFlood(injector *netsim.Adapter, claimSrc, victim radio.NodeID, period time.Duration) *DeauthFlood {
	return &DeauthFlood{injector: injector, claimSrc: claimSrc, victim: victim, period: period}
}

var _ Attack = (*DeauthFlood)(nil)

// Name implements Attack.
func (a *DeauthFlood) Name() string { return "deauth-flood" }

// Begin implements Attack.
func (a *DeauthFlood) Begin(s *simclock.Scheduler) {
	a.cancel = s.Every(a.period, func(*simclock.Scheduler) {
		a.injected++
		// A real flooder scans for the victim's channel before transmitting.
		a.injector.TuneTo(a.victim)
		// Errors (e.g. attacker radio offline) end the attack silently; the
		// adversary has no recourse.
		_ = a.injector.InjectRaw(netsim.Frame{
			Kind: netsim.FrameDeauth,
			Src:  a.claimSrc,
			Dst:  a.victim,
		})
	})
}

// End implements Attack.
func (a *DeauthFlood) End(*simclock.Scheduler) {
	if a.cancel != nil {
		a.cancel()
	}
}

// Injected returns the number of forged frames sent.
func (a *DeauthFlood) Injected() int { return a.injected }

// --- GNSS attacks ---

// GNSSSpoof overpowers a machine's GNSS receiver with displaced fixes.
type GNSSSpoof struct {
	gnss   *sensors.GNSS
	offset geo.Vec
}

// NewGNSSSpoof creates a spoofing attack displacing the victim receiver's
// fixes by offset.
func NewGNSSSpoof(gnss *sensors.GNSS, offset geo.Vec) *GNSSSpoof {
	return &GNSSSpoof{gnss: gnss, offset: offset}
}

var _ Attack = (*GNSSSpoof)(nil)

// Name implements Attack.
func (a *GNSSSpoof) Name() string { return "gnss-spoof" }

// Begin implements Attack.
func (a *GNSSSpoof) Begin(*simclock.Scheduler) {
	a.gnss.Mode = sensors.GNSSSpoofed
	a.gnss.SpoofOffset = a.offset
}

// End implements Attack.
func (a *GNSSSpoof) End(*simclock.Scheduler) { a.gnss.Mode = sensors.GNSSNominal }

// GNSSJam denies a machine its position fix.
type GNSSJam struct {
	gnss *sensors.GNSS
}

// NewGNSSJam creates a GNSS jamming attack on the victim receiver.
func NewGNSSJam(gnss *sensors.GNSS) *GNSSJam { return &GNSSJam{gnss: gnss} }

var _ Attack = (*GNSSJam)(nil)

// Name implements Attack.
func (a *GNSSJam) Name() string { return "gnss-jam" }

// Begin implements Attack.
func (a *GNSSJam) Begin(*simclock.Scheduler) { a.gnss.Mode = sensors.GNSSJammed }

// End implements Attack.
func (a *GNSSJam) End(*simclock.Scheduler) { a.gnss.Mode = sensors.GNSSNominal }

// --- Camera blinding ---

// CameraBlind blinds a perception camera (laser/glare attack per Petit et
// al.). The setter abstracts over ground and aerial cameras.
type CameraBlind struct {
	name string
	set  func(bool)
}

// NewCameraBlind creates a blinding attack; set toggles the victim camera's
// blinded state.
func NewCameraBlind(name string, set func(bool)) *CameraBlind {
	return &CameraBlind{name: name, set: set}
}

var _ Attack = (*CameraBlind)(nil)

// Name implements Attack.
func (a *CameraBlind) Name() string { return a.name }

// Begin implements Attack.
func (a *CameraBlind) Begin(*simclock.Scheduler) { a.set(true) }

// End implements Attack.
func (a *CameraBlind) End(*simclock.Scheduler) { a.set(false) }

// --- Replay ---

// Recorder passively captures data frames off the air (the medium's observer
// port) for later replay. The adversary needs no keys: it replays ciphertext
// verbatim, which succeeds against an unsecured stack and is rejected by the
// secure channel's sequence window.
type Recorder struct {
	// FilterSrc/FilterDst restrict capture to one flow when non-empty.
	FilterSrc radio.NodeID
	FilterDst radio.NodeID
	frames    []netsim.Frame
}

// Tap is installed as (or chained into) the radio medium's Observer.
func (r *Recorder) Tap(p radio.Packet, _ radio.NodeID, _ float64, cause radio.DropCause) {
	if cause != radio.DropNone {
		return
	}
	// SnapshotFrame deep-copies the payload: in-flight frames are pooled and
	// recycled after delivery, while captures must stay intact until replay.
	f, ok := netsim.SnapshotFrame(p)
	if !ok || f.Kind != netsim.FrameData {
		return
	}
	if r.FilterSrc != "" && f.Src != r.FilterSrc {
		return
	}
	if r.FilterDst != "" && f.Dst != r.FilterDst {
		return
	}
	r.frames = append(r.frames, f)
}

// Captured returns the number of recorded frames.
func (r *Recorder) Captured() int { return len(r.frames) }

// Replay re-injects previously captured frames at a fixed rate, cycling
// through the capture buffer.
type Replay struct {
	injector *netsim.Adapter
	rec      *Recorder
	period   time.Duration
	next     int
	injected int
	cancel   func()
}

// NewReplay creates a replay attack fed by rec.
func NewReplay(injector *netsim.Adapter, rec *Recorder, period time.Duration) *Replay {
	return &Replay{injector: injector, rec: rec, period: period}
}

var _ Attack = (*Replay)(nil)

// Name implements Attack.
func (a *Replay) Name() string { return "replay" }

// Begin implements Attack.
func (a *Replay) Begin(s *simclock.Scheduler) {
	a.cancel = s.Every(a.period, func(*simclock.Scheduler) {
		if len(a.rec.frames) == 0 {
			return
		}
		f := a.rec.frames[a.next%len(a.rec.frames)]
		a.next++
		a.injected++
		a.injector.TuneTo(f.Dst)
		_ = a.injector.InjectRaw(f)
	})
}

// End implements Attack.
func (a *Replay) End(*simclock.Scheduler) {
	if a.cancel != nil {
		a.cancel()
	}
}

// Injected returns the number of replayed frames.
func (a *Replay) Injected() int { return a.injected }

// --- Command injection ---

// CommandInjection forges data frames with a claimed source (e.g. the
// coordinator) carrying attacker-chosen payloads — the MITM/spoofed-command
// scenario motivating mutual authentication.
type CommandInjection struct {
	injector *netsim.Adapter
	claimSrc radio.NodeID
	victim   radio.NodeID
	payload  func() []byte
	period   time.Duration
	injected int
	cancel   func()
}

// NewCommandInjection creates an injection attack sending payload() to victim
// claiming to be claimSrc, once per period.
func NewCommandInjection(injector *netsim.Adapter, claimSrc, victim radio.NodeID, payload func() []byte, period time.Duration) *CommandInjection {
	return &CommandInjection{
		injector: injector,
		claimSrc: claimSrc,
		victim:   victim,
		payload:  payload,
		period:   period,
	}
}

var _ Attack = (*CommandInjection)(nil)

// Name implements Attack.
func (a *CommandInjection) Name() string { return "command-injection" }

// Begin implements Attack.
func (a *CommandInjection) Begin(s *simclock.Scheduler) {
	a.cancel = s.Every(a.period, func(*simclock.Scheduler) {
		a.injected++
		a.injector.TuneTo(a.victim)
		_ = a.injector.InjectRaw(netsim.Frame{
			Kind:    netsim.FrameData,
			Src:     a.claimSrc,
			Dst:     a.victim,
			Payload: a.payload(),
		})
	})
}

// End implements Attack.
func (a *CommandInjection) End(*simclock.Scheduler) {
	if a.cancel != nil {
		a.cancel()
	}
}

// Injected returns the number of forged commands sent.
func (a *CommandInjection) Injected() int { return a.injected }

// --- Generic ---

// Func adapts a pair of closures into an Attack, for scenario-specific
// adversary behaviour.
type Func struct {
	AttackName string
	OnBegin    func(s *simclock.Scheduler)
	OnEnd      func(s *simclock.Scheduler)
}

var _ Attack = (*Func)(nil)

// Name implements Attack.
func (a *Func) Name() string { return a.AttackName }

// Begin implements Attack.
func (a *Func) Begin(s *simclock.Scheduler) {
	if a.OnBegin != nil {
		a.OnBegin(s)
	}
}

// End implements Attack.
func (a *Func) End(s *simclock.Scheduler) {
	if a.OnEnd != nil {
		a.OnEnd(s)
	}
}
