package attack

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sensors"
	"repro/internal/simclock"
)

type rig struct {
	sched  *simclock.Scheduler
	medium *radio.Medium
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sched := simclock.New()
	grid, err := geo.NewGrid(50, 50, 2)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := radio.NewMedium(sched, grid, rng.New(1), radio.Config{
		ShadowSigmaDB:   0.001,
		SINRThresholdDB: -50,
	})
	return &rig{sched: sched, medium: m}
}

func (r *rig) adapter(t *testing.T, id radio.NodeID, pos geo.Vec) *netsim.Adapter {
	t.Helper()
	r.medium.AddNode(&radio.Node{
		ID: id, Pos: func() geo.Vec { return pos }, Channel: 1, TxPowerDBm: 20, Online: true,
	})
	a, err := netsim.NewAdapter(r.medium, id, netsim.Options{})
	if err != nil {
		t.Fatalf("NewAdapter: %v", err)
	}
	return a
}

func TestCampaignScheduling(t *testing.T) {
	r := newRig(t)
	gnss := sensors.NewGNSS(rng.New(2))
	c := NewCampaign()
	c.Add(time.Second, 3*time.Second, NewGNSSJam(gnss))
	c.Schedule(r.sched)

	if err := r.sched.Run(500 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gnss.Mode != sensors.GNSSNominal {
		t.Fatal("attack active before its window")
	}
	if err := r.sched.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gnss.Mode != sensors.GNSSJammed {
		t.Fatal("attack not active within window")
	}
	if err := r.sched.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gnss.Mode != sensors.GNSSNominal {
		t.Fatal("attack not deactivated after window")
	}
	log := c.Log()
	if len(log) != 2 || !log[0].Active || log[1].Active {
		t.Fatalf("phase log = %+v", log)
	}
}

func TestCampaignOpenEndedWindow(t *testing.T) {
	r := newRig(t)
	gnss := sensors.NewGNSS(rng.New(3))
	c := NewCampaign()
	c.Add(time.Second, 0, NewGNSSSpoof(gnss, geo.V(10, 0))) // never ends
	c.Schedule(r.sched)
	if err := r.sched.Run(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gnss.Mode != sensors.GNSSSpoofed {
		t.Fatal("open-ended attack ended")
	}
}

func TestJammingToggle(t *testing.T) {
	r := newRig(t)
	j := NewJamming(r.medium, "j1", geo.V(50, 50), 1, 30, false)
	j.Begin(r.sched)
	received := 0
	a := r.adapter(t, "a", geo.V(40, 50))
	b := r.adapter(t, "b", geo.V(60, 50))
	b.OnMessage = func(radio.NodeID, []byte) { received++ }
	_ = a
	j.End(r.sched)
	// After End the jammer must be inactive: SINR between nodes is healthy.
	sinr, ok := r.medium.SINRBetween("a", "b")
	if !ok || sinr < 0 {
		t.Fatalf("post-attack SINR = %.1f/%v, want healthy", sinr, ok)
	}
}

func TestDeauthFloodInjects(t *testing.T) {
	r := newRig(t)
	atk := r.adapter(t, "attacker", geo.V(50, 50))
	victim := r.adapter(t, "victim", geo.V(52, 50))
	peer := r.adapter(t, "peer", geo.V(54, 50))
	if err := peer.Associate("victim"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	if err := r.sched.Run(100 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !victim.Associated("peer") {
		t.Fatal("setup: link not associated")
	}

	f := NewDeauthFlood(atk, "peer", "victim", 100*time.Millisecond)
	f.Begin(r.sched)
	if err := r.sched.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f.End(r.sched)
	if f.Injected() < 10 {
		t.Fatalf("injected = %d, want >= 10 over 2 s at 10 Hz", f.Injected())
	}
	if victim.Associated("peer") {
		t.Fatal("unprotected victim still associated under flood")
	}
}

func TestRecorderAndReplay(t *testing.T) {
	r := newRig(t)
	atk := r.adapter(t, "attacker", geo.V(50, 50))
	a := r.adapter(t, "a", geo.V(52, 50))
	b := r.adapter(t, "b", geo.V(54, 50))

	rec := &Recorder{FilterDst: "b"}
	r.medium.Observer = rec.Tap

	if err := a.Associate("b"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	if err := r.sched.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := a.SendData("b", []byte{byte(i)}); err != nil {
			t.Fatalf("SendData: %v", err)
		}
	}
	if err := r.sched.Run(200 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rec.Captured() != 5 {
		t.Fatalf("captured = %d, want 5 data frames", rec.Captured())
	}

	delivered := 0
	b.OnMessage = func(radio.NodeID, []byte) { delivered++ }
	rp := NewReplay(atk, rec, 50*time.Millisecond)
	rp.Begin(r.sched)
	if err := r.sched.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rp.End(r.sched)
	if rp.Injected() < 10 {
		t.Fatalf("replayed = %d", rp.Injected())
	}
	// Unsecured link layer accepts replays (the Src "a" is associated).
	if delivered == 0 {
		t.Fatal("no replayed frames delivered on unsecured stack")
	}
}

func TestRecorderFilters(t *testing.T) {
	rec := &Recorder{FilterSrc: "x"}
	frame := netsim.Frame{Kind: netsim.FrameData, Src: "y", Dst: "z"}
	rec.Tap(radio.Packet{From: "y", Payload: frame}, "z", 10, radio.DropNone)
	if rec.Captured() != 0 {
		t.Fatal("recorder captured frame from filtered-out source")
	}
	// Drops are not captured either.
	frame.Src = "x"
	rec.Tap(radio.Packet{From: "x", Payload: frame}, "z", 10, radio.DropJammed)
	if rec.Captured() != 0 {
		t.Fatal("recorder captured a dropped frame")
	}
	rec.Tap(radio.Packet{From: "x", Payload: frame}, "z", 10, radio.DropNone)
	if rec.Captured() != 1 {
		t.Fatal("recorder missed matching frame")
	}
}

func TestCommandInjectionCounts(t *testing.T) {
	r := newRig(t)
	atk := r.adapter(t, "attacker", geo.V(50, 50))
	victim := r.adapter(t, "victim", geo.V(52, 50))
	coordAd := r.adapter(t, "coord", geo.V(54, 50))
	if err := victim.Associate("coord"); err != nil {
		t.Fatalf("Associate: %v", err)
	}
	if err := r.sched.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = coordAd

	got := 0
	victim.OnMessage = func(from radio.NodeID, payload []byte) {
		if from == "coord" && string(payload) == "evil" {
			got++
		}
	}
	inj := NewCommandInjection(atk, "coord", "victim", func() []byte { return []byte("evil") }, 100*time.Millisecond)
	inj.Begin(r.sched)
	if err := r.sched.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	inj.End(r.sched)
	if inj.Injected() < 10 {
		t.Fatalf("injected = %d", inj.Injected())
	}
	if got == 0 {
		t.Fatal("no forged commands accepted by unsecured victim")
	}
}

func TestCameraBlind(t *testing.T) {
	grid, err := geo.NewGrid(10, 10, 1)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	cam := sensors.NewCamera(rng.New(4), grid)
	a := NewCameraBlind("camera-blind", func(b bool) { cam.Blinded = b })
	sched := simclock.New()
	a.Begin(sched)
	if !cam.Blinded {
		t.Fatal("camera not blinded")
	}
	a.End(sched)
	if cam.Blinded {
		t.Fatal("camera still blinded after End")
	}
}

func TestFuncAttack(t *testing.T) {
	var begun, ended bool
	a := &Func{
		AttackName: "custom",
		OnBegin:    func(*simclock.Scheduler) { begun = true },
		OnEnd:      func(*simclock.Scheduler) { ended = true },
	}
	sched := simclock.New()
	a.Begin(sched)
	a.End(sched)
	if !begun || !ended {
		t.Fatalf("func attack: begun=%v ended=%v", begun, ended)
	}
	if a.Name() != "custom" {
		t.Fatalf("name = %s", a.Name())
	}
}

func TestGNSSJamAndSpoofToggle(t *testing.T) {
	gnss := sensors.NewGNSS(rng.New(5))
	sched := simclock.New()
	jam := NewGNSSJam(gnss)
	jam.Begin(sched)
	if gnss.Mode != sensors.GNSSJammed {
		t.Fatal("not jammed")
	}
	jam.End(sched)
	if gnss.Mode != sensors.GNSSNominal {
		t.Fatal("jam not cleared")
	}
	sp := NewGNSSSpoof(gnss, geo.V(5, 5))
	sp.Begin(sched)
	if gnss.Mode != sensors.GNSSSpoofed || gnss.SpoofOffset != geo.V(5, 5) {
		t.Fatal("spoof not applied")
	}
	sp.End(sched)
	if gnss.Mode != sensors.GNSSNominal {
		t.Fatal("spoof not cleared")
	}
}
