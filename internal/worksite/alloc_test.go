package worksite

import (
	"testing"
)

// assertZeroAllocTicks locks the tick loop for cfg at zero heap allocations
// per steady-state control tick, so an allocation regression fails `go test`
// rather than waiting for someone to read a benchmark.
//
// "Steady state" excludes ticks with discrete transitions: mission phase
// changes replan the route (A* allocates its search state), safety/mode
// transitions append to the operational timeline, and alert transitions
// build their detail strings. Those are event-driven, bounded per run, and
// deliberately out of scope — the invariant is that the per-tick work
// (worker movement, drone orbit + detection downlink over the radio, sensing,
// fusion, protective fields, navigation, scoring, event fan-out, and under
// the secured profile the record layer, IDS suite and live risk register)
// allocates nothing. The helper therefore scouts the deterministic run for a
// window of transition-free ticks and measures there.
func assertZeroAllocTicks(t *testing.T, cfg Config) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	const (
		warmTicks    = 240 // two simulated minutes: buffers reach high water
		measureTicks = 50
	)

	// Scout pass: the run is deterministic, so a first session tells us
	// which ticks carry transitions. A tick is "quiet" when nothing about
	// the mission/safety/mode state changed from the previous tick.
	scout, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const scoutTicks = warmTicks + 4000
	quiet := make([]bool, scoutTicks+1)
	var prev TickSnapshot
	for i := 1; i <= scoutTicks; i++ {
		tick, ok := scout.Step()
		if !ok {
			t.Fatalf("scout session ended at tick %d", i)
		}
		quiet[i] = i > 1 &&
			tick.Mission == prev.Mission &&
			tick.Mode == prev.Mode &&
			tick.Unsafe == prev.Unsafe &&
			tick.Colliding == prev.Colliding &&
			tick.Stopped == prev.Stopped &&
			tick.Alerts == prev.Alerts
		prev = tick
	}

	// Find the first fully quiet window after warm-up. AllocsPerRun performs
	// one extra warm-up call, and we pad one tick on each side so a
	// transition adjacent to the window cannot bleed into it.
	start := -1
	for s := warmTicks; s+measureTicks+2 <= scoutTicks; s++ {
		ok := true
		for i := s; i < s+measureTicks+2; i++ {
			if !quiet[i] {
				ok = false
				break
			}
		}
		if ok {
			start = s
			break
		}
	}
	if start < 0 {
		t.Fatalf("no transition-free window of %d ticks found in %d scouted ticks", measureTicks+2, scoutTicks)
	}

	// Measurement pass on a fresh, byte-identical session.
	se, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < start; i++ {
		if _, ok := se.Step(); !ok {
			t.Fatalf("session ended at tick %d", i)
		}
	}
	avg := testing.AllocsPerRun(measureTicks, func() {
		if _, ok := se.Step(); !ok {
			t.Fatal("session ended mid-measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state control tick allocates: %v allocs/op (ticks %d..%d), want 0",
			avg, start, start+measureTicks)
	}
}

// TestTickLoopZeroAllocs locks the unsecured E1 baseline tick at zero heap
// allocations per steady-state tick.
func TestTickLoopZeroAllocs(t *testing.T) {
	assertZeroAllocTicks(t, DefaultConfig(42)) // the E1 baseline: unsecured, drone on
}

// TestSecuredTickZeroAllocs locks the full secured profile — record-layer
// crypto on every message, the IDS detector suite on every packet, the 1Hz
// live risk register — at the same zero-allocation bar as the baseline.
func TestSecuredTickZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Profile = Secured()
	assertZeroAllocTicks(t, cfg)
}
