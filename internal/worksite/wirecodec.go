package worksite

import (
	"strconv"
	"unsafe"

	"repro/internal/geo"
	"repro/internal/sensors"
)

// Wire-message fast codec.
//
// Every application message on the worksite network is a JSON-encoded
// wireMsg, produced by encoding/json; the drone streams one detections
// message per control tick, so decoding is squarely on the simulation's hot
// path. fastParseWireMsg parses exactly the closed grammar encoding/json
// emits for wireMsg — ASCII strings without escapes, JSON numbers, the known
// key set — into a caller-owned message without allocating (strings are
// interned, the detections slice is reused). Anything outside that grammar
// (escape sequences, non-ASCII bytes, unknown keys, null, malformed input)
// makes it return false, and the caller falls back to encoding/json — so the
// fast path can only ever accept inputs the stdlib would accept, with
// identical results, and every divergent or hostile input is judged by the
// stdlib itself. TestWireCodecDifferential locks that equivalence.

// internTable deduplicates the small closed set of strings that ride the
// wire (message types, node names, states, sensor names, verdict reasons) so
// steady-state decoding performs zero string allocations.
type internTable map[string]string

//worksim:hotpath
func (t internTable) get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if v, ok := t[string(b)]; ok { // compiler-optimised: no conversion alloc
		return v
	}
	v := string(b)
	t[v] = v
	return v
}

// fastParseWireMsg parses payload into msg, returning false (with msg in an
// unspecified state) when the input falls outside the fast grammar. msg must
// be reset by the caller beforehand.
//
//worksim:hotpath
func fastParseWireMsg(payload []byte, msg *wireMsg, intern internTable) bool {
	p := wireParser{b: payload, intern: intern}
	if !p.parseTopLevel(msg) {
		return false
	}
	p.ws()
	return p.i == len(p.b) // trailing garbage: let the stdlib judge it
}

type wireParser struct {
	b      []byte
	i      int
	intern internTable
}

//worksim:hotpath
func (p *wireParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

//worksim:hotpath
func (p *wireParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

//worksim:hotpath
func (p *wireParser) peek() (byte, bool) {
	if p.i < len(p.b) {
		return p.b[p.i], true
	}
	return 0, false
}

// parseString parses a JSON string containing only printable ASCII without
// escapes and returns the raw bytes between the quotes.
//
//worksim:hotpath
func (p *wireParser) parseString() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, false // escapes / control / non-ASCII: stdlib's call
		}
		p.i++
	}
	return nil, false
}

// parseNumberToken scans a JSON number token and validates it against the
// JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
//
//worksim:hotpath
func (p *wireParser) parseNumberToken() ([]byte, bool) {
	start := p.i
	i, b := p.i, p.b
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	p.i = i
	return b[start:i], true
}

//worksim:hotpath
func (p *wireParser) parseFloat() (float64, bool) {
	tok, ok := p.parseNumberToken()
	if !ok {
		return 0, false
	}
	// unsafe.String avoids a per-number []byte->string copy; ParseFloat does
	// not retain its argument, so the view never outlives tok.
	v, err := strconv.ParseFloat(unsafe.String(&tok[0], len(tok)), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

//worksim:hotpath
func (p *wireParser) parseUint() (uint64, bool) {
	tok, ok := p.parseNumberToken()
	if !ok {
		return 0, false
	}
	var v uint64
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, false // fraction, exponent or sign: stdlib's call
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false // overflow: stdlib reports the precise error
		}
		v = v*10 + d
	}
	return v, true
}

//worksim:hotpath
func (p *wireParser) parseBool() (bool, bool) {
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "true" {
		p.i += 4
		return true, true
	}
	if p.i+5 <= len(p.b) && string(p.b[p.i:p.i+5]) == "false" {
		p.i += 5
		return false, true
	}
	return false, false
}

//worksim:hotpath
func (p *wireParser) parseTopLevel(msg *wireMsg) bool {
	p.ws()
	if !p.eat('{') {
		return false
	}
	first := true
	for {
		p.ws()
		if p.eat('}') {
			return true
		}
		if !first && !p.eat(',') {
			return false
		}
		if !first {
			p.ws()
		}
		first = false
		key, ok := p.parseString()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		if !p.parseTopValue(msg, key) {
			return false
		}
	}
}

//worksim:hotpath
func (p *wireParser) parseTopValue(msg *wireMsg, key []byte) bool {
	switch string(key) { // compiler-optimised: no conversion alloc
	case "type":
		return p.stringInto(&msg.Type)
	case "from":
		return p.stringInto(&msg.From)
	case "seq":
		v, ok := p.parseUint()
		msg.Seq = v
		return ok
	case "posX":
		v, ok := p.parseFloat()
		msg.PosX = v
		return ok
	case "posY":
		v, ok := p.parseFloat()
		msg.PosY = v
		return ok
	case "state":
		return p.stringInto(&msg.State)
	case "gnssOk":
		v, ok := p.parseBool()
		msg.GNSSOK = v
		return ok
	case "gnssWhy":
		return p.stringInto(&msg.GNSSWhy)
	case "command":
		return p.stringInto(&msg.Command)
	case "detections":
		return p.parseDetections(msg)
	default:
		return false // unknown key (or case variant): stdlib's call
	}
}

//worksim:hotpath
func (p *wireParser) stringInto(dst *string) bool {
	s, ok := p.parseString()
	if !ok {
		return false
	}
	*dst = p.intern.get(s)
	return true
}

//worksim:hotpath
func (p *wireParser) parseDetections(msg *wireMsg) bool {
	if !p.eat('[') {
		return false
	}
	dets := msg.Detections[:0] // a duplicate key replaces, like the stdlib
	p.ws()
	if p.eat(']') {
		msg.Detections = dets
		return true
	}
	for {
		var d sensors.Detection
		if !p.parseDetection(&d) {
			return false
		}
		dets = append(dets, d)
		p.ws()
		if p.eat(']') {
			msg.Detections = dets
			return true
		}
		if !p.eat(',') {
			return false
		}
		p.ws()
	}
}

//worksim:hotpath
func (p *wireParser) parseDetection(d *sensors.Detection) bool {
	if !p.eat('{') {
		return false
	}
	first := true
	for {
		p.ws()
		if p.eat('}') {
			return true
		}
		if !first && !p.eat(',') {
			return false
		}
		if !first {
			p.ws()
		}
		first = false
		key, ok := p.parseString()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch string(key) {
		case "targetId":
			if !p.stringInto(&d.TargetID) {
				return false
			}
		case "pos":
			if !p.parseVec(&d.Pos) {
				return false
			}
		case "confidence":
			v, ok := p.parseFloat()
			if !ok {
				return false
			}
			d.Confidence = v
		case "sensor":
			if !p.stringInto(&d.Sensor) {
				return false
			}
		case "falsePositive":
			v, ok := p.parseBool()
			if !ok {
				return false
			}
			d.FalsePositive = v
		default:
			return false
		}
	}
}

//worksim:hotpath
func (p *wireParser) parseVec(v *geo.Vec) bool {
	if !p.eat('{') {
		return false
	}
	first := true
	for {
		p.ws()
		if p.eat('}') {
			return true
		}
		if !first && !p.eat(',') {
			return false
		}
		if !first {
			p.ws()
		}
		first = false
		key, ok := p.parseString()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch string(key) {
		case "x":
			f, ok := p.parseFloat()
			if !ok {
				return false
			}
			v.X = f
		case "y":
			f, ok := p.parseFloat()
			if !ok {
				return false
			}
			v.Y = f
		default:
			return false
		}
	}
}
