package worksite

import (
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
)

// Event is the common interface of everything a session publishes to its
// observers: per-tick snapshots plus the discrete incidents (alerts, attack
// phase changes, security responses, mode changes, mission transitions,
// safety events). Every event carries its virtual timestamp in its At
// field and a stable kind string used by JSON trace streams.
type Event interface {
	// EventKind returns the stable kind tag ("tick", "alert", ...).
	EventKind() string
}

// TickSnapshot is the per-control-tick state of the worksite: where the
// forwarder really is, where it believes it is, the mission and operating
// mode, and the live safety flags. It is both the value Session.Step returns
// and the event observers receive once per tick.
//
// Cumulative counters (LogsDelivered, Collisions, UnsafeEpisodes, Alerts)
// include the current tick; MinWorkerDistM is the per-tick minimum
// (-1 on a site without workers), not the run minimum.
type TickSnapshot struct {
	// N is the control-tick number, starting at 1.
	N int `json:"n"`
	// At is the virtual time of the tick.
	At time.Duration `json:"atNs"`
	// Mission is the haul-cycle phase ("to-harvest", "loading", ...).
	Mission string `json:"mission"`
	// Mode is the live-risk operating mode ("normal" when continuous risk
	// assessment is disabled).
	Mode string `json:"mode"`
	// TruePos and BelievedPos are the forwarder's real and GNSS-believed
	// positions; NavErrM is their distance (the attack effect E5 measures).
	TruePos     geo.Vec `json:"truePos"`
	BelievedPos geo.Vec `json:"believedPos"`
	NavErrM     float64 `json:"navErrM"`
	// MinWorkerDistM is this tick's closest worker distance, -1 when the
	// site has no workers.
	MinWorkerDistM float64 `json:"minWorkerDistM"`
	// Unsafe is true while a worker is inside the danger radius of the
	// moving machine; Colliding while one is inside the collision radius.
	Unsafe    bool `json:"unsafe"`
	Colliding bool `json:"colliding"`
	// Stopped is true while any stop latch holds the forwarder.
	Stopped bool `json:"stopped"`
	// Cumulative outcome counters as of this tick.
	LogsDelivered  int `json:"logsDelivered"`
	Collisions     int `json:"collisions"`
	UnsafeEpisodes int `json:"unsafeEpisodes"`
	// Alerts is the cumulative IDS alert count (0 when the IDS is off).
	Alerts int `json:"alerts"`
}

// EventKind implements Event.
func (TickSnapshot) EventKind() string { return "tick" }

// Tick is the record Session.Step returns — the same per-tick snapshot the
// observer stream carries.
type Tick = TickSnapshot

// AlertRaised is published for every IDS alert, as it fires.
type AlertRaised struct {
	At    time.Duration `json:"atNs"`
	Alert ids.Alert     `json:"alert"`
}

// EventKind implements Event.
func (AlertRaised) EventKind() string { return "alert" }

// AttackPhase is published when a scheduled attack window begins or ends.
// The scenario layer owns the attack campaign and injects these via
// Session.EmitAttackPhase; sites driven without a campaign never see one.
type AttackPhase struct {
	At     time.Duration `json:"atNs"`
	Attack string        `json:"attack"`
	Active bool          `json:"active"`
}

// EventKind implements Event.
func (AttackPhase) EventKind() string { return "attack-phase" }

// Security-response kinds.
const (
	// ResponseModeEscalation: the live risk register escalated the
	// operating mode (counted as Metrics.SecurityResponses).
	ResponseModeEscalation = "mode-escalation"
	// ResponseChannelHop: the coordinator hopped the site off a degraded
	// channel (counted as Metrics.ChannelHops).
	ResponseChannelHop = "channel-hop"
)

// SecurityResponse is published when the site actively responds to an
// attack: a live-risk mode escalation or a channel-agility hop.
type SecurityResponse struct {
	At     time.Duration `json:"atNs"`
	Kind   string        `json:"kind"` // ResponseModeEscalation | ResponseChannelHop
	Detail string        `json:"detail"`
}

// EventKind implements Event.
func (SecurityResponse) EventKind() string { return "security-response" }

// ModeChange is published on every operating-mode transition of the
// continuous risk assessment, escalations and relaxations alike.
type ModeChange struct {
	At   time.Duration `json:"atNs"`
	From string        `json:"from"`
	To   string        `json:"to"`
}

// EventKind implements Event.
func (ModeChange) EventKind() string { return "mode-change" }

// MissionPhase is published on every haul-cycle phase transition.
type MissionPhase struct {
	At    time.Duration `json:"atNs"`
	Phase string        `json:"phase"`
	// Detail is the human-readable transition ("phase -> to-landing
	// (loaded=true)"), mirroring the operational timeline entry.
	Detail string `json:"detail"`
}

// EventKind implements Event.
func (MissionPhase) EventKind() string { return "mission-phase" }

// Safety-event kinds.
const (
	// SafetyUnsafeEnter/SafetyUnsafeExit bound an unsafe episode: a worker
	// inside the danger radius while the machine moves.
	SafetyUnsafeEnter = "unsafe-enter"
	SafetyUnsafeExit  = "unsafe-exit"
	// SafetyCollision: a worker inside the collision radius (New marks the
	// first tick of contact; the event repeats every colliding tick because
	// the collision metric is tick-based).
	SafetyCollision = "collision"
	// SafetyFailSafeEngaged/Released bound a fail-safe stop latch
	// (nav-integrity or comms-watchdog).
	SafetyFailSafeEngaged  = "failsafe-engaged"
	SafetyFailSafeReleased = "failsafe-released"
)

// SafetyEvent is published on safety-relevant transitions: unsafe-episode
// boundaries, collision ticks, and fail-safe latch changes.
type SafetyEvent struct {
	At   time.Duration `json:"atNs"`
	Kind string        `json:"kind"`
	// Detail names the latch for fail-safe events and is empty otherwise.
	Detail string `json:"detail,omitempty"`
	// MinWorkerDistM is the triggering worker distance for unsafe/collision
	// events, 0 otherwise.
	MinWorkerDistM float64 `json:"minWorkerDistM,omitempty"`
	// New is true on the first tick of a collision contact.
	New bool `json:"new,omitempty"`
}

// EventKind implements Event.
func (SafetyEvent) EventKind() string { return "safety" }

// Observer receives the typed event stream of a session. Implementations
// must be fast and must not mutate the site: they run synchronously inside
// the simulation loop, and determinism depends on runs being identical with
// and without subscribers. Use ObserverFuncs to implement a subset.
type Observer interface {
	OnTick(TickSnapshot)
	OnAlert(AlertRaised)
	OnAttackPhase(AttackPhase)
	OnSecurityResponse(SecurityResponse)
	OnModeChange(ModeChange)
	OnMissionPhase(MissionPhase)
	OnSafetyEvent(SafetyEvent)
}

// ObserverFuncs adapts a set of optional callbacks into an Observer; nil
// fields ignore their event type.
type ObserverFuncs struct {
	Tick             func(TickSnapshot)
	Alert            func(AlertRaised)
	AttackPhase      func(AttackPhase)
	SecurityResponse func(SecurityResponse)
	ModeChange       func(ModeChange)
	MissionPhase     func(MissionPhase)
	Safety           func(SafetyEvent)
}

var _ Observer = (*ObserverFuncs)(nil)

// OnTick implements Observer.
func (o *ObserverFuncs) OnTick(t TickSnapshot) {
	if o.Tick != nil {
		o.Tick(t)
	}
}

// OnAlert implements Observer.
func (o *ObserverFuncs) OnAlert(a AlertRaised) {
	if o.Alert != nil {
		o.Alert(a)
	}
}

// OnAttackPhase implements Observer.
func (o *ObserverFuncs) OnAttackPhase(a AttackPhase) {
	if o.AttackPhase != nil {
		o.AttackPhase(a)
	}
}

// OnSecurityResponse implements Observer.
func (o *ObserverFuncs) OnSecurityResponse(s SecurityResponse) {
	if o.SecurityResponse != nil {
		o.SecurityResponse(s)
	}
}

// OnModeChange implements Observer.
func (o *ObserverFuncs) OnModeChange(m ModeChange) {
	if o.ModeChange != nil {
		o.ModeChange(m)
	}
}

// OnMissionPhase implements Observer.
func (o *ObserverFuncs) OnMissionPhase(m MissionPhase) {
	if o.MissionPhase != nil {
		o.MissionPhase(m)
	}
}

// OnSafetyEvent implements Observer.
func (o *ObserverFuncs) OnSafetyEvent(s SafetyEvent) {
	if o.Safety != nil {
		o.Safety(s)
	}
}

// Subscribe registers an observer for the site's event stream. Observers
// are invoked in subscription order, after the built-in metrics and
// timeline observers, synchronously on the simulation loop.
func (s *Site) Subscribe(o Observer) {
	s.observers = append(s.observers, o)
}

// publishTick fans a tick snapshot out without boxing it into the Event
// interface — this runs once per control tick, the simulation's hot loop,
// and the large snapshot struct would otherwise heap-allocate on every
// conversion. The rare discrete events go through publish.
func (s *Site) publishTick(t TickSnapshot) {
	for _, o := range s.observers {
		o.OnTick(t)
	}
}

// The typed publishers fan one event out to every observer (built-ins
// first). The control loop calls them directly rather than through
// publish(Event) so discrete events never box into the interface on the hot
// path.

func (s *Site) publishAlert(e AlertRaised) {
	for _, o := range s.observers {
		o.OnAlert(e)
	}
}

func (s *Site) publishAttackPhase(e AttackPhase) {
	for _, o := range s.observers {
		o.OnAttackPhase(e)
	}
}

func (s *Site) publishSecurityResponse(e SecurityResponse) {
	for _, o := range s.observers {
		o.OnSecurityResponse(e)
	}
}

func (s *Site) publishModeChange(e ModeChange) {
	for _, o := range s.observers {
		o.OnModeChange(e)
	}
}

func (s *Site) publishMissionPhase(e MissionPhase) {
	for _, o := range s.observers {
		o.OnMissionPhase(e)
	}
}

func (s *Site) publishSafety(e SafetyEvent) {
	for _, o := range s.observers {
		o.OnSafetyEvent(e)
	}
}

// publish fans one event out to every observer (built-ins first) — the
// interface-typed entry point for event injection seams (Session.EmitAttackPhase).
func (s *Site) publish(ev Event) {
	switch e := ev.(type) {
	case TickSnapshot:
		s.publishTick(e)
	case AlertRaised:
		s.publishAlert(e)
	case AttackPhase:
		s.publishAttackPhase(e)
	case SecurityResponse:
		s.publishSecurityResponse(e)
	case ModeChange:
		s.publishModeChange(e)
	case MissionPhase:
		s.publishMissionPhase(e)
	case SafetyEvent:
		s.publishSafety(e)
	}
}
