package worksite

import "fmt"

// The built-in observers: the KPI accumulator and the operational timeline
// are ordinary subscribers of the same event stream external observers see,
// subscribed first at commissioning time. Site.Run and the Session API
// therefore share one code path, and a run with extra subscribers is
// bit-identical to one without.

// metricsObserver folds the event stream into the run's Metrics. The
// event-independent counters (send failures, blocked forgeries/replays,
// applied commands, distance, stop time) stay with the network and drive
// code that owns them; everything derived from ticks and responses
// accumulates here.
type metricsObserver struct {
	m *Metrics
}

var _ Observer = (*metricsObserver)(nil)

func (o *metricsObserver) OnTick(t TickSnapshot) {
	if t.MinWorkerDistM >= 0 && t.MinWorkerDistM < o.m.MinWorkerDistM {
		o.m.MinWorkerDistM = t.MinWorkerDistM
	}
	if t.Unsafe {
		o.m.UnsafeTicks++
	}
	o.m.navErrSum += t.NavErrM
	o.m.navErrCount++
	if t.NavErrM > o.m.NavErrMaxM {
		o.m.NavErrMaxM = t.NavErrM
	}
}

func (o *metricsObserver) OnSafetyEvent(e SafetyEvent) {
	switch e.Kind {
	case SafetyUnsafeEnter:
		o.m.UnsafeEpisodes++
	case SafetyCollision:
		o.m.Collisions++
	}
}

func (o *metricsObserver) OnSecurityResponse(r SecurityResponse) {
	switch r.Kind {
	case ResponseModeEscalation:
		o.m.SecurityResponses++
	case ResponseChannelHop:
		o.m.ChannelHops++
	}
}

func (o *metricsObserver) OnAlert(AlertRaised)         {}
func (o *metricsObserver) OnAttackPhase(AttackPhase)   {}
func (o *metricsObserver) OnModeChange(ModeChange)     {}
func (o *metricsObserver) OnMissionPhase(MissionPhase) {}

// timelineObserver materialises the operational timeline from the event
// stream: mission transitions, live-risk mode changes, channel hops, attack
// phases and safety transitions. IDS alerts are merged in at read time by
// Site.Timeline, so they are not recorded twice.
type timelineObserver struct {
	site *Site
}

var _ Observer = (*timelineObserver)(nil)

func (o *timelineObserver) OnMissionPhase(e MissionPhase) {
	o.site.recordEvent(e.At, "mission", e.Detail)
}

func (o *timelineObserver) OnModeChange(e ModeChange) {
	o.site.recordEvent(e.At, "risk-mode", fmt.Sprintf("%s -> %s", e.From, e.To))
}

func (o *timelineObserver) OnSecurityResponse(e SecurityResponse) {
	if e.Kind == ResponseChannelHop {
		o.site.recordEvent(e.At, "channel-hop", e.Detail)
	}
}

func (o *timelineObserver) OnAttackPhase(e AttackPhase) {
	state := "ends"
	if e.Active {
		state = "begins"
	}
	o.site.recordEvent(e.At, "attack", fmt.Sprintf("%s %s", e.Attack, state))
}

func (o *timelineObserver) OnSafetyEvent(e SafetyEvent) {
	switch e.Kind {
	case SafetyUnsafeEnter:
		o.site.recordEvent(e.At, "safety", fmt.Sprintf("unsafe episode begins (worker at %.1f m)", e.MinWorkerDistM))
	case SafetyUnsafeExit:
		o.site.recordEvent(e.At, "safety", "unsafe episode ends")
	case SafetyCollision:
		if e.New {
			o.site.recordEvent(e.At, "safety", fmt.Sprintf("collision contact (worker at %.1f m)", e.MinWorkerDistM))
		}
	case SafetyFailSafeEngaged:
		o.site.recordEvent(e.At, "safety", "fail-safe engaged: "+e.Detail)
	case SafetyFailSafeReleased:
		o.site.recordEvent(e.At, "safety", "fail-safe released: "+e.Detail)
	}
}

func (o *timelineObserver) OnTick(TickSnapshot) {}
func (o *timelineObserver) OnAlert(AlertRaised) {}
