// Package worksite assembles the paper's Fig. 1 system of systems: an
// autonomous forwarder hauling logs between a harvest site and a landing
// area, a manually operated harvester, an observation drone providing the
// Fig. 2 additional point of view, workers on foot, and a site coordinator —
// all over the simulated radio medium, optionally hardened with the full
// security stack (worksite PKI + secure channels, protected management
// frames, GNSS plausibility guarding, communication fail-safe, IDS).
//
// The same scenario can be run with any subset of the defences enabled,
// which is how the E5 attack-interplay experiment compares the unsecured and
// secured pathways under bit-identical adversary schedules.
package worksite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/fusion"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/pki"
	"repro/internal/radio"
	"repro/internal/risk"
	"repro/internal/rng"
	"repro/internal/securechan"
	"repro/internal/sensors"
	"repro/internal/simclock"
)

// Node identifiers on the worksite network.
const (
	NodeCoordinator radio.NodeID = "coordinator"
	NodeForwarder   radio.NodeID = "forwarder-1"
	NodeDrone       radio.NodeID = "drone-1"
	NodeHarvester   radio.NodeID = "harvester-1"
	NodeAttacker    radio.NodeID = "attacker"
)

// SecurityProfile selects which defences of the certification pathway are
// active.
type SecurityProfile struct {
	// SecureChannels authenticates and encrypts all application traffic over
	// the worksite PKI.
	SecureChannels bool `json:"secureChannels"`
	// ProtectedMgmt enables 802.11w-style management-frame protection.
	ProtectedMgmt bool `json:"protectedMgmt"`
	// GNSSGuard enables plausibility checking of GNSS fixes with a
	// nav-integrity fail-safe.
	GNSSGuard bool `json:"gnssGuard"`
	// CommsFailSafe stops the forwarder when the coordinator heartbeat is
	// lost.
	CommsFailSafe bool `json:"commsFailSafe"`
	// IDSEnabled runs the worksite intrusion detection system.
	IDSEnabled bool `json:"idsEnabled"`
	// ContinuousRisk keeps the TARA live during operations (ISO/SAE 21434
	// continuous activities, paper Section VI): IDS alerts escalate matching
	// threat scenarios and the coordinator derives the operating mode from
	// the live register. Requires IDSEnabled.
	ContinuousRisk bool `json:"continuousRisk"`
	// ChannelAgility hops the worksite to the next radio channel when the
	// IDS reports link degradation — the availability countermeasure against
	// narrowband jamming (CTRL-CHAN-AGILITY in the risk model). Requires
	// IDSEnabled.
	ChannelAgility bool `json:"channelAgility"`
}

// Unsecured returns the pathway baseline: no cyber defences (the pre-CE
// state of the art the paper argues against).
func Unsecured() SecurityProfile { return SecurityProfile{} }

// Secured returns the full defence stack.
func Secured() SecurityProfile {
	return SecurityProfile{
		SecureChannels: true,
		ProtectedMgmt:  true,
		GNSSGuard:      true,
		CommsFailSafe:  true,
		IDSEnabled:     true,
		ContinuousRisk: true,
		ChannelAgility: true,
	}
}

// Config parameterises a worksite scenario.
type Config struct {
	Seed int64
	// Site geometry.
	Cols, Rows int
	CellSizeM  float64
	// Forest composition.
	TreeDensity float64
	RockDensity float64
	// Weather for the whole run.
	Weather sensors.Weather
	// Workers on foot near the harvest site.
	Workers int
	// Profile selects the active defences.
	Profile SecurityProfile
	// Fusion policy: hits to confirm a person track (1 = OR-fusion).
	ConfirmHits int
	// DroneEnabled adds the observation drone (Fig. 2 on) or removes it.
	DroneEnabled bool
	// Mission timing.
	LoadTime   time.Duration
	UnloadTime time.Duration
	// TickPeriod is the control-loop period.
	TickPeriod time.Duration
}

// DefaultConfig returns the E1 baseline scenario: a 400x400 m site, moderate
// forest, three workers, clear weather, drone on, secured stack off.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Cols:         100,
		Rows:         100,
		CellSizeM:    4,
		TreeDensity:  0.22,
		RockDensity:  0.03,
		Workers:      3,
		ConfirmHits:  2,
		DroneEnabled: true,
		LoadTime:     45 * time.Second,
		UnloadTime:   30 * time.Second,
		TickPeriod:   500 * time.Millisecond,
	}
}

// Validate rejects configurations that would produce a meaningless
// simulation, so malformed scenario specs fail fast with a clear message
// instead of odd sim behaviour. New calls it; scenario tooling can call it
// directly to vet a spec without commissioning a site.
func (c Config) Validate() error {
	if c.Cols <= 0 || c.Rows <= 0 {
		return fmt.Errorf("worksite config: grid dimensions must be positive, got %dx%d", c.Cols, c.Rows)
	}
	if c.CellSizeM <= 0 {
		return fmt.Errorf("worksite config: cell size must be positive, got %v m", c.CellSizeM)
	}
	if c.TreeDensity < 0 || c.TreeDensity > 1 {
		return fmt.Errorf("worksite config: tree density must be in [0,1], got %v", c.TreeDensity)
	}
	if c.RockDensity < 0 || c.RockDensity > 1 {
		return fmt.Errorf("worksite config: rock density must be in [0,1], got %v", c.RockDensity)
	}
	if c.Weather.Rain < 0 || c.Weather.Rain > 1 ||
		c.Weather.Fog < 0 || c.Weather.Fog > 1 ||
		c.Weather.Darkness < 0 || c.Weather.Darkness > 1 {
		return fmt.Errorf("worksite config: weather factors must be in [0,1], got %+v", c.Weather)
	}
	if c.Workers < 0 {
		return fmt.Errorf("worksite config: worker count must be non-negative, got %d", c.Workers)
	}
	if c.ConfirmHits < 0 {
		return fmt.Errorf("worksite config: fusion confirm hits must be non-negative, got %d", c.ConfirmHits)
	}
	if c.LoadTime <= 0 || c.UnloadTime <= 0 {
		return fmt.Errorf("worksite config: load/unload times must be positive, got %v/%v", c.LoadTime, c.UnloadTime)
	}
	if c.TickPeriod <= 0 {
		return fmt.Errorf("worksite config: tick period must be positive, got %v", c.TickPeriod)
	}
	// Cross-field profile invariants: these defences are driven by IDS
	// alerts and are silently inert without the engine.
	if c.Profile.ContinuousRisk && !c.Profile.IDSEnabled {
		return fmt.Errorf("worksite config: profile enables continuousRisk without idsEnabled (the live register is driven by IDS alerts)")
	}
	if c.Profile.ChannelAgility && !c.Profile.IDSEnabled {
		return fmt.Errorf("worksite config: profile enables channelAgility without idsEnabled (hops are triggered by IDS link alerts)")
	}
	return nil
}

// Site is a fully wired worksite simulation.
type Site struct {
	cfg   Config
	rand  *rng.Rand
	sched *simclock.Scheduler
	grid  *geo.Grid
	med   *radio.Medium

	landing geo.Vec
	harvest geo.Vec

	forwarder *machine.Machine
	harvester *machine.Machine
	drone     *machine.Machine
	workers   []*worker

	fwGNSS    *sensors.GNSS
	fwGuard   *sensors.GNSSGuard
	fwLidar   *sensors.Lidar
	fwCamera  *sensors.Camera
	fwUltra   *sensors.Ultrasonic
	droneCam  *sensors.AerialCamera
	tracker   *fusion.Tracker
	safety    *machine.SafetyController
	watchdog  *machine.Watchdog
	gnssErr   geo.Vec // believed-minus-true positioning error (attack effect)
	navPath   []geo.Vec
	navIdx    int
	mission   missionPhase
	phaseLeft time.Duration

	adapters map[radio.NodeID]*netsim.Adapter
	channels map[chanKey]*securechan.Channel
	engine   *ids.Engine
	ca       *pki.CA
	assessor *risk.ContinuousAssessor
	mode     risk.OperatingMode
	lastHop  time.Duration
	hops     int

	// riskScratch is the reusable live-register buffer for the 1Hz
	// operating-mode recomputation (see risk.CurrentInto).
	riskScratch []risk.AssessedRisk

	// linkNames precomputes the IDS link labels for every commissioned node
	// pair, so the promiscuous medium observer does not concatenate a fresh
	// string per observed packet.
	linkNames map[chanKey]string

	// shared, when non-nil, is the batch's pre-commissioned security bundle;
	// commissionPKI forks its established channels instead of handshaking.
	shared *SharedSecurity

	droneDets   []sensors.Detection
	droneDetsAt time.Duration

	workerRand     *rng.Rand
	believed       geo.Vec // forwarder's believed position (GNSS-derived)
	droneAngle     float64
	loaded         bool
	tickNo         int
	lastVerdictOK  bool
	lastVerdictWhy string

	metrics     Metrics
	unsafe      bool // currently inside an unsafe episode
	colliding   bool // currently inside the collision radius
	navStopOn   bool // nav-integrity fail-safe latch shadow (event edge detection)
	commsStopOn bool // comms-watchdog fail-safe latch shadow
	timeline    []TimelineEvent

	// Per-tick scratch state. The control loop runs at 2 Hz for every
	// simulated machine-minute, so its working set is reused tick over tick:
	// target/detection/position buffers, the wire-message encoder, and the
	// receive-side parse scratch. A steady-state tick performs zero heap
	// allocations (locked by TestTickLoopZeroAllocs).
	ticksPerSec      int
	scratchTargets   []sensors.Target
	scratchDets      []sensors.Detection
	scratchPositions []geo.Vec
	sendBuf          bytes.Buffer
	sendEnc          *json.Encoder
	sendScratch      wireMsg
	recvMsg          wireMsg
	intern           internTable

	// observers receive the typed event stream; the built-in metrics and
	// timeline observers subscribe first at commissioning.
	observers   []Observer
	lastTick    TickSnapshot
	firstTickAt time.Duration // virtual time of control tick #1 (commissioning + one period)
}

type chanKey struct {
	local, peer radio.NodeID
}

type worker struct {
	id     string
	pos    geo.Vec
	target geo.Vec
	speed  float64
}

type missionPhase int

const (
	phaseToHarvest missionPhase = iota + 1
	phaseLoading
	phaseToLanding
	phaseUnloading
)

func (p missionPhase) String() string {
	switch p {
	case phaseToHarvest:
		return "to-harvest"
	case phaseLoading:
		return "loading"
	case phaseToLanding:
		return "to-landing"
	case phaseUnloading:
		return "unloading"
	default:
		return "unknown"
	}
}

// New builds and commissions a worksite from cfg.
func New(cfg Config) (*Site, error) { return newSite(cfg, nil) }

func newSite(cfg Config, sh *SharedSecurity) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	grid, err := geo.NewGrid(cfg.Cols, cfg.Rows, cfg.CellSizeM)
	if err != nil {
		return nil, fmt.Errorf("worksite: %w", err)
	}

	s := &Site{
		cfg:      cfg,
		rand:     r,
		sched:    simclock.New(),
		grid:     grid,
		adapters: make(map[radio.NodeID]*netsim.Adapter),
		channels: make(map[chanKey]*securechan.Channel),
		mission:  phaseToHarvest,
		intern:   make(internTable),
		shared:   sh,
	}
	s.sendEnc = json.NewEncoder(&s.sendBuf)
	s.ticksPerSec = ticksPerSecond(cfg.TickPeriod)
	s.landing = geo.V(0.15*grid.Width(), 0.5*grid.Height())
	s.harvest = geo.V(0.85*grid.Width(), 0.5*grid.Height())

	grid.CarveRoad(s.landing, s.harvest)
	grid.GenerateForest(r.Derive("forest"), geo.ForestOptions{
		TreeDensity: cfg.TreeDensity,
		RockDensity: cfg.RockDensity,
		ClearRadius: 6 * cfg.CellSizeM,
		Clearings:   []geo.Vec{s.landing, s.harvest},
	})

	s.med = radio.NewMedium(s.sched, grid, r, radio.Config{})

	if err := s.commissionActors(); err != nil {
		return nil, err
	}
	if err := s.commissionNetwork(); err != nil {
		return nil, err
	}
	s.commissionControl()
	return s, nil
}

func (s *Site) commissionActors() error {
	s.forwarder = machine.New(string(NodeForwarder), machine.KindForwarder,
		geo.Pose{Pos: s.landing})
	s.harvester = machine.New(string(NodeHarvester), machine.KindHarvester,
		geo.Pose{Pos: s.harvest.Add(geo.V(10, 14))})
	if s.cfg.DroneEnabled {
		s.drone = machine.New(string(NodeDrone), machine.KindDrone,
			geo.Pose{Pos: s.landing.Add(geo.V(0, 20))})
	}

	wr := s.rand.Derive("workers")
	for i := 0; i < s.cfg.Workers; i++ {
		w := &worker{
			id:    fmt.Sprintf("worker-%d", i+1),
			pos:   s.harvest.Add(geo.V(wr.Range(-25, 25), wr.Range(-25, 25))),
			speed: wr.Range(0.8, 1.4),
		}
		w.target = w.pos
		s.workers = append(s.workers, w)
	}

	sr := s.rand.Derive("sensors")
	s.fwGNSS = sensors.NewGNSS(sr)
	s.fwGuard = sensors.NewGNSSGuard()
	s.fwLidar = sensors.NewLidar(sr, s.grid)
	s.fwCamera = sensors.NewCamera(sr, s.grid)
	s.fwUltra = sensors.NewUltrasonic(sr)
	if s.cfg.DroneEnabled {
		s.droneCam = sensors.NewAerialCamera(sr, s.grid)
	}
	s.tracker = fusion.NewTracker(fusion.Options{ConfirmHits: s.cfg.ConfirmHits})
	s.safety = machine.NewSafetyController(s.forwarder)
	s.watchdog = machine.NewWatchdog(3 * time.Second)
	return nil
}

// Accessors used by the attack framework and experiment harnesses.

// Scheduler returns the simulation scheduler.
func (s *Site) Scheduler() *simclock.Scheduler { return s.sched }

// Medium returns the radio medium.
func (s *Site) Medium() *radio.Medium { return s.med }

// Grid returns the terrain grid.
func (s *Site) Grid() *geo.Grid { return s.grid }

// ForwarderGNSS returns the forwarder's GNSS receiver (attack surface).
func (s *Site) ForwarderGNSS() *sensors.GNSS { return s.fwGNSS }

// ForwarderCamera returns the forwarder's camera (attack surface).
func (s *Site) ForwarderCamera() *sensors.Camera { return s.fwCamera }

// DroneCamera returns the drone's aerial camera, nil when the drone is
// disabled.
func (s *Site) DroneCamera() *sensors.AerialCamera { return s.droneCam }

// AttackerAdapter returns the pre-provisioned (silent) attacker radio
// adapter.
func (s *Site) AttackerAdapter() *netsim.Adapter { return s.adapters[NodeAttacker] }

// Adapter returns a node's network adapter.
func (s *Site) Adapter(id radio.NodeID) *netsim.Adapter { return s.adapters[id] }

// IDS returns the intrusion detection engine (nil alerts when disabled).
func (s *Site) IDS() *ids.Engine { return s.engine }

// Forwarder returns the forwarder machine.
func (s *Site) Forwarder() *machine.Machine { return s.forwarder }

// Drone returns the drone machine, nil when disabled.
func (s *Site) Drone() *machine.Machine { return s.drone }

// Landing returns the landing-area centre.
func (s *Site) Landing() geo.Vec { return s.landing }

// Harvest returns the harvest-site centre.
func (s *Site) Harvest() geo.Vec { return s.harvest }

// CA returns the worksite certificate authority (secured profile only).
func (s *Site) CA() *pki.CA { return s.ca }

// OperatingMode returns the coordinator's current live-risk operating mode
// (ModeNormal when continuous risk assessment is disabled).
func (s *Site) OperatingMode() risk.OperatingMode {
	if s.assessor == nil {
		return risk.ModeNormal
	}
	return s.mode
}
