package worksite

import (
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/geo"
)

// armSpoof schedules the standard GNSS-spoof burst used across these tests.
func armSpoof(s *Site, onPhase func(attack.PhaseEvent)) {
	c := attack.NewCampaign()
	c.OnPhase = onPhase
	c.Add(2*time.Minute, 8*time.Minute, attack.NewGNSSSpoof(s.ForwarderGNSS(), geo.V(60, 40)))
	c.Schedule(s.Scheduler())
}

// TestSessionReportMatchesLegacyRun: the acceptance criterion — a session
// with subscribed observers produces a Report byte-identical to the legacy
// Site.Run path, under attack, on the secured profile.
func TestSessionReportMatchesLegacyRun(t *testing.T) {
	const d = 10 * time.Minute
	cfg := DefaultConfig(71)
	cfg.Profile = Secured()

	legacySite, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	armSpoof(legacySite, nil)
	legacyRep, err := legacySite.Run(d)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	var events int
	sess.Subscribe(&ObserverFuncs{
		Tick:             func(TickSnapshot) { events++ },
		Alert:            func(AlertRaised) { events++ },
		SecurityResponse: func(SecurityResponse) { events++ },
		ModeChange:       func(ModeChange) { events++ },
		MissionPhase:     func(MissionPhase) { events++ },
		Safety:           func(SafetyEvent) { events++ },
	})
	armSpoof(sess.Site(), func(e attack.PhaseEvent) { sess.EmitAttackPhase(e.At, e.Attack, e.Active) })
	sessRep, err := sess.Run(context.Background(), d)
	if err != nil {
		t.Fatalf("session Run: %v", err)
	}
	if events == 0 {
		t.Fatal("subscribed observer saw no events")
	}

	a, err := json.Marshal(legacyRep)
	if err != nil {
		t.Fatalf("marshal legacy: %v", err)
	}
	b, err := json.Marshal(sessRep)
	if err != nil {
		t.Fatalf("marshal session: %v", err)
	}
	if string(a) != string(b) {
		t.Fatalf("session report differs from legacy Run:\n--- legacy ---\n%s\n--- session ---\n%s", a, b)
	}
}

// TestSessionStepEquivalence: driving a session tick by tick to its horizon
// yields the same report bytes as one bulk RunFor.
func TestSessionStepEquivalence(t *testing.T) {
	const d = 5 * time.Minute
	cfg := DefaultConfig(73)

	bulk, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bulk.SetHorizon(d)
	if err := bulk.RunFor(context.Background(), d); err != nil {
		t.Fatal(err)
	}

	stepped, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepped.SetHorizon(d)
	var last Tick
	steps := 0
	for {
		tick, ok := stepped.Step()
		if !ok {
			break
		}
		if tick.N <= last.N {
			t.Fatalf("tick numbers not increasing: %d after %d", tick.N, last.N)
		}
		if tick.At <= last.At {
			t.Fatalf("tick times not increasing: %v after %v", tick.At, last.At)
		}
		last = tick
		steps++
	}
	if steps == 0 {
		t.Fatal("no steps before horizon")
	}
	if !stepped.Done() {
		t.Fatal("session not done after Step returned false")
	}
	if stepped.Now() != d {
		t.Fatalf("stepped session advanced %v, want %v", stepped.Now(), d)
	}

	a, _ := json.Marshal(bulk.Report())
	b, _ := json.Marshal(stepped.Report())
	if string(a) != string(b) {
		t.Fatalf("stepped report differs from bulk report:\n%s\n%s", a, b)
	}
}

// TestSessionObserverEventStream: the typed events are consistent with the
// final report's counters.
func TestSessionObserverEventStream(t *testing.T) {
	const d = 12 * time.Minute
	cfg := DefaultConfig(37)
	cfg.Profile = Secured()
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		ticks, alerts, escalations, modeChanges, missions int
		phases                                            []AttackPhase
	)
	sess.Subscribe(&ObserverFuncs{
		Tick:  func(TickSnapshot) { ticks++ },
		Alert: func(AlertRaised) { alerts++ },
		SecurityResponse: func(r SecurityResponse) {
			if r.Kind == ResponseModeEscalation {
				escalations++
			}
		},
		ModeChange:   func(ModeChange) { modeChanges++ },
		MissionPhase: func(MissionPhase) { missions++ },
		AttackPhase:  func(p AttackPhase) { phases = append(phases, p) },
	})
	c := attack.NewCampaign()
	c.OnPhase = func(e attack.PhaseEvent) { sess.EmitAttackPhase(e.At, e.Attack, e.Active) }
	c.Add(2*time.Minute, 8*time.Minute, attack.NewCommandInjection(
		sess.Site().AttackerAdapter(), NodeCoordinator, NodeForwarder,
		func() []byte {
			return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`)
		},
		time.Second))
	c.Schedule(sess.Site().Scheduler())

	rep, err := sess.Run(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}

	// Every control tick is observed exactly once (the count is one short
	// of d/TickPeriod because link association consumes 50ms up front).
	if ticks != sess.site.tickNo {
		t.Fatalf("observed %d ticks, site ran %d", ticks, sess.site.tickNo)
	}
	if approx := int(d / cfg.TickPeriod); ticks < approx-1 || ticks > approx {
		t.Fatalf("observed %d ticks over %v, want about %d", ticks, d, approx)
	}
	var wantAlerts int
	for _, n := range rep.Alerts {
		wantAlerts += n
	}
	if alerts != wantAlerts {
		t.Fatalf("observed %d alerts, report has %d", alerts, wantAlerts)
	}
	if escalations != rep.Metrics.SecurityResponses {
		t.Fatalf("observed %d escalations, report has %d", escalations, rep.Metrics.SecurityResponses)
	}
	if escalations == 0 {
		t.Fatal("injection attack produced no mode escalation events")
	}
	if modeChanges < escalations {
		t.Fatalf("mode changes (%d) < escalations (%d)", modeChanges, escalations)
	}
	if missions == 0 {
		t.Fatal("no mission phase events over a productive run")
	}
	if len(phases) != 2 {
		t.Fatalf("attack phases = %+v, want begin+end", phases)
	}
	if !phases[0].Active || phases[1].Active {
		t.Fatalf("attack phase order wrong: %+v", phases)
	}
	if phases[0].At != 2*time.Minute || phases[1].At != 8*time.Minute {
		t.Fatalf("attack phase times = %v, %v", phases[0].At, phases[1].At)
	}
}

// TestSessionStepAfterRunFor: Step composes with RunFor at any offset —
// after a bulk advance to an arbitrary (non-tick-aligned) time, Step lands
// exactly on the next control tick, with no later events executed.
func TestSessionStepAfterRunFor(t *testing.T) {
	cfg := DefaultConfig(79)
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunFor(context.Background(), 45*time.Second+123*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tick, ok := sess.Step()
	if !ok {
		t.Fatal("Step failed after RunFor")
	}
	if sess.Now() != tick.At {
		t.Fatalf("Now() = %v overshoots the returned tick at %v", sess.Now(), tick.At)
	}
	if tick.At <= 45*time.Second || tick.At > 45*time.Second+123*time.Millisecond+cfg.TickPeriod {
		t.Fatalf("tick at %v, want the first tick after the bulk advance", tick.At)
	}
}

// TestSessionRunUntil: a predicate ends the run early and Report covers the
// shortened window.
func TestSessionRunUntil(t *testing.T) {
	const d = 10 * time.Minute
	cfg := DefaultConfig(41)
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.SetHorizon(d)
	stopAt := 90 * time.Second
	stopped, err := sess.RunUntil(context.Background(), func(tk Tick) bool { return tk.At >= stopAt })
	if err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Fatal("predicate never fired")
	}
	if sess.Now() < stopAt || sess.Now() > stopAt+cfg.TickPeriod {
		t.Fatalf("stopped at %v, want within one tick of %v", sess.Now(), stopAt)
	}
	if rep := sess.Report(); rep.Duration != sess.Now() {
		t.Fatalf("report duration %v != session time %v", rep.Duration, sess.Now())
	}

	// A predicate that never fires runs to the horizon.
	rest, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rest.SetHorizon(2 * time.Minute)
	stopped, err = rest.RunUntil(context.Background(), func(Tick) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if stopped || rest.Now() != 2*time.Minute {
		t.Fatalf("stopped=%v now=%v, want full horizon", stopped, rest.Now())
	}
}

// TestSessionFailSafeEvents: the GNSS guard's nav-integrity latch surfaces
// as fail-safe safety events.
func TestSessionFailSafeEvents(t *testing.T) {
	cfg := DefaultConfig(47)
	cfg.Profile = Secured()
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var engaged, released int
	sess.Subscribe(&ObserverFuncs{Safety: func(e SafetyEvent) {
		switch e.Kind {
		case SafetyFailSafeEngaged:
			engaged++
		case SafetyFailSafeReleased:
			released++
		}
	}})
	armSpoof(sess.Site(), nil)
	if _, err := sess.Run(context.Background(), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if engaged == 0 {
		t.Fatal("spoofing never engaged the nav fail-safe")
	}
	if released == 0 {
		t.Fatal("fail-safe never released after the attack window")
	}
}

// TestZeroWorkersReportMarshals: without workers MinWorkerDistM has no
// minimum; the report must marshal (the +Inf regression) and record -1.
func TestZeroWorkersReportMarshals(t *testing.T) {
	cfg := DefaultConfig(59)
	cfg.Workers = 0
	rep := runSite(t, cfg, 2*time.Minute, nil)
	if rep.Metrics.MinWorkerDistM != -1 {
		t.Fatalf("MinWorkerDistM = %v, want -1 sentinel", rep.Metrics.MinWorkerDistM)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("zero-worker report does not marshal: %v", err)
	}
}

// TestEarlyReportDoesNotCorruptMetrics: reading a Report before any tick
// (MinWorkerDistM still +Inf) must not poison the live accumulator — a
// later Report still carries the true minimum.
func TestEarlyReportDoesNotCorruptMetrics(t *testing.T) {
	sess, err := NewSession(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if early := sess.Report(); early.Metrics.MinWorkerDistM != -1 {
		t.Fatalf("pre-tick MinWorkerDistM = %v, want -1 sentinel", early.Metrics.MinWorkerDistM)
	}
	rep, err := sess.Run(context.Background(), 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.MinWorkerDistM <= 0 {
		t.Fatalf("MinWorkerDistM = %v after running, early Report poisoned the accumulator", rep.Metrics.MinWorkerDistM)
	}
}

// TestTickSnapshotMarshals: every tick snapshot is JSON-safe, including on
// a worker-less site (the -trace stream guarantee).
func TestTickSnapshotMarshals(t *testing.T) {
	cfg := DefaultConfig(61)
	cfg.Workers = 0
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.SetHorizon(time.Minute)
	for {
		tick, ok := sess.Step()
		if !ok {
			break
		}
		if math.IsInf(tick.MinWorkerDistM, 0) || math.IsNaN(tick.MinWorkerDistM) {
			t.Fatalf("tick %d carries non-finite MinWorkerDistM", tick.N)
		}
		if _, err := json.Marshal(tick); err != nil {
			t.Fatalf("tick %d does not marshal: %v", tick.N, err)
		}
	}
}
