package worksite

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TimelineEvent is one entry of the worksite's operational timeline: mission
// phase changes, live-risk mode changes, and channel hops. Together with the
// IDS alert log and the attack campaign's phase log it reconstructs an
// incident end-to-end — the evidence trail a conformity assessment asks for.
type TimelineEvent struct {
	At     time.Duration `json:"atNs"`
	Kind   string        `json:"kind"` // mission | risk-mode | channel-hop | attack | safety | alert (merged at read time)
	Detail string        `json:"detail"`
}

// recordEvent appends to the site timeline.
func (s *Site) recordEvent(at time.Duration, kind, detail string) {
	s.timeline = append(s.timeline, TimelineEvent{At: at, Kind: kind, Detail: detail})
}

// Timeline returns a copy of the operational timeline, merged with the IDS
// alert log, sorted by time (stable on ties).
func (s *Site) Timeline() []TimelineEvent {
	out := make([]TimelineEvent, len(s.timeline))
	copy(out, s.timeline)
	if s.engine != nil {
		for _, a := range s.engine.Alerts() {
			out = append(out, TimelineEvent{
				At:     a.At,
				Kind:   "alert",
				Detail: fmt.Sprintf("%s [%s] %s: %s", a.Type, a.Severity, a.Source, a.Detail),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// RenderTimeline formats the timeline, capped at maxEvents entries (0 means
// all).
func (s *Site) RenderTimeline(maxEvents int) string {
	events := s.Timeline()
	if maxEvents > 0 && len(events) > maxEvents {
		events = events[:maxEvents]
	}
	var b strings.Builder
	b.WriteString("Worksite timeline\n")
	for _, e := range events {
		fmt.Fprintf(&b, "%9.1fs  %-11s  %s\n", e.At.Seconds(), e.Kind, e.Detail)
	}
	return b.String()
}
