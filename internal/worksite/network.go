package worksite

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/pki"
	"repro/internal/radio"
	"repro/internal/risk"
	"repro/internal/rng"
	"repro/internal/securechan"
	"repro/internal/sensors"
)

// wireMsg is the application-layer envelope exchanged between worksite
// actors.
type wireMsg struct {
	Type string `json:"type"` // heartbeat | status | detections | command
	From string `json:"from"`
	// Heartbeat/status fields.
	Seq     uint64  `json:"seq,omitempty"`
	PosX    float64 `json:"posX,omitempty"`
	PosY    float64 `json:"posY,omitempty"`
	State   string  `json:"state,omitempty"`
	GNSSOK  bool    `json:"gnssOk,omitempty"`
	GNSSWhy string  `json:"gnssWhy,omitempty"`
	// Detections payload (drone -> forwarder).
	Detections []sensors.Detection `json:"detections,omitempty"`
	// Command payload (coordinator -> machines; the injection target).
	Command string `json:"command,omitempty"`
}

// Command verbs. CommandClearStops is the dangerous one: it releases latched
// safety stops (legitimately used by the coordinator after an operator
// confirms the site is clear; catastrophically abused by command injection
// on an unauthenticated stack).
const (
	CommandPause      = "pause"
	CommandResume     = "resume"
	CommandClearStops = "clear-stops"
)

func (s *Site) commissionNetwork() error {
	type radioSpec struct {
		id  radio.NodeID
		pos func() geo.Vec
	}
	specs := []radioSpec{
		{NodeCoordinator, s.staticPos(s.landing.Add(geo.V(-8, 0)))},
		{NodeForwarder, func() geo.Vec { return s.forwarder.Pose.Pos }},
		{NodeHarvester, s.staticPos(s.harvester.Pose.Pos)},
		{NodeAttacker, s.staticPos(geo.V(0.5*s.grid.Width(), 0.35*s.grid.Height()))},
	}
	if s.cfg.DroneEnabled {
		specs = append(specs, radioSpec{NodeDrone, func() geo.Vec { return s.drone.Pose.Pos }})
	}

	mgmtKey := []byte("agrarsense-site-mgmt-key-v1")
	for _, sp := range specs {
		s.med.AddNode(&radio.Node{
			ID:         sp.id,
			Pos:        sp.pos,
			Channel:    1,
			TxPowerDBm: 23,
			Online:     true,
		})
		opts := netsim.Options{}
		if s.cfg.Profile.ProtectedMgmt && sp.id != NodeAttacker {
			opts = netsim.Options{ProtectedMgmt: true, MgmtKey: mgmtKey}
		}
		ad, err := netsim.NewAdapter(s.med, sp.id, opts)
		if err != nil {
			return fmt.Errorf("worksite: %w", err)
		}
		s.adapters[sp.id] = ad
	}

	s.linkNames = make(map[chanKey]string, len(specs)*(len(specs)-1)/2)
	for _, a := range specs {
		for _, b := range specs {
			if a.id < b.id {
				s.linkNames[chanKey{a.id, b.id}] = string(a.id) + "<->" + string(b.id)
			}
		}
	}

	if s.cfg.Profile.IDSEnabled {
		s.commissionIDS()
	}
	if s.cfg.Profile.SecureChannels {
		if err := s.commissionPKI(); err != nil {
			return err
		}
	}
	s.wireMessageHandlers()
	return s.associateLinks()
}

func (s *Site) staticPos(p geo.Vec) func() geo.Vec {
	return func() geo.Vec { return p }
}

// commissionPKI stands up the site CA and establishes pairwise secure
// channels. Pairing happens at commissioning over a trusted link (the depot),
// mirroring real fleet onboarding; subsequent records travel over the air.
// Under a shared bundle (batched sessions) the expensive half — keygen,
// issuance, handshakes — happened once in CommissionSecurity, and this
// session only forks the established channels.
func (s *Site) commissionPKI() error {
	if s.shared != nil && s.shared.bundle != nil {
		s.ca = s.shared.bundle.ca
		// Sorted keys: should two forks ever fail, the reported error must
		// not depend on map iteration order.
		keys := make([]chanKey, 0, len(s.shared.bundle.channels))
		for k := range s.shared.bundle.channels {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].local != keys[j].local {
				return keys[i].local < keys[j].local
			}
			return keys[i].peer < keys[j].peer
		})
		for _, k := range keys {
			fork, err := s.shared.bundle.channels[k].Fork()
			if err != nil {
				return fmt.Errorf("worksite: fork channel %s->%s: %w", k.local, k.peer, err)
			}
			s.channels[k] = fork
		}
		return nil
	}
	b, err := buildSecurity(s.cfg.DroneEnabled, s.rand, s.sched.Now)
	if err != nil {
		return err
	}
	s.ca = b.ca
	s.channels = b.channels
	return nil
}

// securityBundle is the output of security commissioning: the site CA and
// the established pairwise channels, keyed from each endpoint's side.
type securityBundle struct {
	ca       *pki.CA
	channels map[chanKey]*securechan.Channel
}

// buildSecurity is the seed-threaded security commissioning: CA keygen,
// identity issuance, and the pairwise handshakes, drawing from r's "pki" and
// "handshakes" streams. Both the per-session path and the shared batch
// template go through here, so the two can never drift.
func buildSecurity(droneEnabled bool, r *rng.Rand, now func() time.Duration) (*securityBundle, error) {
	ca, err := pki.NewCA("agrarsense-site-ca", r.Derive("pki"))
	if err != nil {
		return nil, fmt.Errorf("worksite: %w", err)
	}
	validity := 30 * 24 * time.Hour

	idents := make(map[radio.NodeID]pki.Identity)
	for _, spec := range []struct {
		id   radio.NodeID
		role pki.Role
	}{
		{NodeCoordinator, pki.RoleCoordinator},
		{NodeForwarder, pki.RoleMachine},
		{NodeHarvester, pki.RoleMachine},
		{NodeDrone, pki.RoleDrone},
	} {
		if spec.id == NodeDrone && !droneEnabled {
			continue
		}
		ident, err := ca.Issue(string(spec.id), spec.role, 0, validity)
		if err != nil {
			return nil, fmt.Errorf("worksite: %w", err)
		}
		idents[spec.id] = ident
	}

	verifier := pki.NewVerifier(ca.Cert(), ca.CRL())
	pairs := [][2]radio.NodeID{
		{NodeCoordinator, NodeForwarder},
		{NodeCoordinator, NodeHarvester},
	}
	if droneEnabled {
		pairs = append(pairs,
			[2]radio.NodeID{NodeCoordinator, NodeDrone},
			[2]radio.NodeID{NodeForwarder, NodeDrone},
		)
	}
	b := &securityBundle{ca: ca, channels: make(map[chanKey]*securechan.Channel, 2*len(pairs))}
	hr := r.Derive("handshakes")
	for _, p := range pairs {
		init := securechan.NewInitiator(idents[p[0]], verifier, securechan.Options{
			Rand: hr.Derive(string(p[0]) + ">" + string(p[1])),
			Now:  now,
		})
		resp := securechan.NewResponder(idents[p[1]], verifier, securechan.Options{
			Rand: hr.Derive(string(p[1]) + "<" + string(p[0])),
			Now:  now,
		})
		if err := runPairing(init, resp); err != nil {
			return nil, fmt.Errorf("worksite: pairing %s-%s: %w", p[0], p[1], err)
		}
		b.channels[chanKey{p[0], p[1]}] = init
		b.channels[chanKey{p[1], p[0]}] = resp
	}
	return b, nil
}

// runPairing executes the 3-message handshake over the trusted commissioning
// link.
func runPairing(init, resp *securechan.Channel) error {
	m1, err := init.Start()
	if err != nil {
		return err
	}
	m2, err := resp.HandleHandshake(m1)
	if err != nil {
		return err
	}
	m3, err := init.HandleHandshake(m2)
	if err != nil {
		return err
	}
	if _, err := resp.HandleHandshake(m3); err != nil {
		return err
	}
	return nil
}

func (s *Site) commissionIDS() {
	s.engine = ids.DefaultEngine()
	if s.cfg.Profile.ContinuousRisk {
		uc := risk.BuildUseCase()
		assessor, err := risk.NewContinuousAssessor(&uc.Model, uc.FullControls())
		if err == nil {
			// Attack quiet for two minutes relaxes the live register (field
			// timescale, not the 21434 default office timescale).
			assessor.DecayAfter = 2 * time.Minute
			s.assessor = assessor
			s.mode = risk.ModeNormal
		}
	}
	s.engine.OnAlert = s.handleAlert

	// The IDS taps the medium promiscuously: it samples delivery success on
	// the coordinator's links (jamming signature) and is fed protocol
	// violations by the adapters below.
	s.med.Observer = func(p radio.Packet, to radio.NodeID, _ float64, cause radio.DropCause) {
		if cause == radio.DropOffline {
			return
		}
		if to != NodeCoordinator && p.From != NodeCoordinator {
			return
		}
		v := 0.0
		if cause == radio.DropNone {
			v = 1.0
		}
		s.engine.Ingest(ids.Event{
			Kind:   ids.EventLinkSample,
			At:     s.sched.Now(),
			Source: s.linkName(p.From, to),
			OK:     cause == radio.DropNone,
			Value:  v,
		})
	}
}

// handleAlert is the coordinator's security-response entry point: alerts
// feed the live risk register and, for link degradation, trigger the
// channel-agility countermeasure.
func (s *Site) handleAlert(a ids.Alert) {
	s.publishAlert(AlertRaised{At: a.At, Alert: a})
	if s.assessor != nil {
		s.assessor.ObserveAlertType(a.Type, a.At)
	}
	if s.cfg.Profile.ChannelAgility && a.Type == "link-degraded" {
		s.hopChannel(a.At)
	}
}

// hopChannelCooldown rate-limits coordinated channel hops.
const hopChannelCooldown = 30 * time.Second

// hopChannel moves every worksite radio (not the attacker's) to the next
// channel of the pre-shared hop sequence. A narrowband jammer keeps heating
// the old channel; a wideband jammer follows everywhere — exactly the
// escalation the risk model prices into CTRL-CHAN-AGILITY.
func (s *Site) hopChannel(now time.Duration) {
	if s.hops > 0 && now-s.lastHop < hopChannelCooldown {
		return
	}
	s.lastHop = now
	s.hops++
	s.publishSecurityResponse(SecurityResponse{
		At:     now,
		Kind:   ResponseChannelHop,
		Detail: fmt.Sprintf("hop #%d (link degradation)", s.hops),
	})
	for id := range s.adapters {
		if id == NodeAttacker {
			continue
		}
		if n, ok := s.med.Node(id); ok {
			n.Channel++
		}
	}
}

// linkName returns the canonical IDS label for the a<->b link from the table
// precomputed at commissioning, so per-packet ingest does not build a fresh
// string. Pairs outside the table (none in practice) fall back to concat.
//
//worksim:hotpath
func (s *Site) linkName(a, b radio.NodeID) string {
	if a > b {
		a, b = b, a
	}
	if name, ok := s.linkNames[chanKey{a, b}]; ok {
		return name
	}
	return string(a) + "<->" + string(b) //worksim:allow fallback for pairs outside the precomputed table; commissioning registers every pair, so steady-state ingest never reaches it
}

func (s *Site) wireMessageHandlers() {
	for id, ad := range s.adapters {
		if id == NodeAttacker {
			continue
		}
		id, ad := id, ad
		ad.OnMessage = func(from radio.NodeID, payload []byte) {
			s.handleAppPayload(id, from, payload)
		}
		ad.OnMgmtReject = func(f netsim.Frame) {
			s.ingestIDS(ids.Event{
				Kind:   ids.EventMgmtForgery,
				At:     s.sched.Now(),
				Source: string(id),
				Detail: fmt.Sprintf("claimed src %s", f.Src),
			})
		}
		ad.OnDeauth = func(from radio.NodeID, authentic bool) {
			s.ingestIDS(ids.Event{
				Kind:   ids.EventDeauth,
				At:     s.sched.Now(),
				Source: string(id),
				OK:     false,
				Detail: fmt.Sprintf("deauth claiming %s (authentic=%v)", from, authentic),
			})
		}
	}
}

//worksim:hotpath
func (s *Site) ingestIDS(ev ids.Event) {
	if s.engine != nil {
		s.engine.Ingest(ev)
	}
}

func (s *Site) associateLinks() error {
	pairs := [][2]radio.NodeID{
		{NodeForwarder, NodeCoordinator},
		{NodeHarvester, NodeCoordinator},
	}
	if s.cfg.DroneEnabled {
		pairs = append(pairs,
			[2]radio.NodeID{NodeDrone, NodeCoordinator},
			[2]radio.NodeID{NodeDrone, NodeForwarder},
		)
	}
	for _, p := range pairs {
		if err := s.adapters[p[0]].Associate(p[1]); err != nil {
			return fmt.Errorf("worksite: associate %s->%s: %w", p[0], p[1], err)
		}
	}
	// Let association frames fly before the mission starts.
	return s.sched.Run(50 * time.Millisecond)
}

// send transmits an application message from -> to, sealing it when the
// secured profile is active. Send errors are expected under attack (link
// torn down) and are absorbed as lost traffic.
//
// Encoding reuses the site's buffer and encoder: Encode produces exactly
// json.Marshal's bytes plus a trailing newline (trimmed below), and the
// adapter copies the payload into its own frame storage before Transmit
// returns, so the buffer is free for the next message immediately.
//
//worksim:hotpath
func (s *Site) send(from, to radio.NodeID, msg wireMsg) {
	s.sendScratch = msg
	s.sendBuf.Reset()
	if err := s.sendEnc.Encode(&s.sendScratch); err != nil {
		return
	}
	payload := s.sendBuf.Bytes()
	payload = payload[:len(payload)-1]
	if s.cfg.Profile.SecureChannels {
		ch := s.channels[chanKey{from, to}]
		if ch == nil {
			return
		}
		sealed, err := ch.Seal(payload)
		if err != nil {
			return
		}
		payload = sealed
	}
	ad := s.adapters[from]
	if ad == nil {
		return
	}
	if err := ad.SendData(to, payload); err != nil {
		// Link torn down (e.g. by de-auth): attempt re-association so the
		// system can self-heal once the attack stops.
		_ = ad.Associate(to)
		s.metrics.SendFailures++
	}
}

// handleAppPayload authenticates (when secured) and dispatches an inbound
// application message at the receiving node.
//
//worksim:hotpath
func (s *Site) handleAppPayload(local, from radio.NodeID, payload []byte) {
	if s.cfg.Profile.SecureChannels {
		ch := s.channels[chanKey{local, from}]
		if ch == nil {
			return
		}
		plain, err := ch.Open(payload)
		if err != nil {
			kind := ids.EventDecryptFailure
			if errors.Is(err, securechan.ErrReplay) {
				kind = ids.EventReplayRejected
				s.metrics.ReplaysBlocked++
			} else {
				s.metrics.ForgeriesBlocked++
			}
			s.ingestIDS(ids.Event{
				Kind:   kind,
				At:     s.sched.Now(),
				Source: s.linkName(local, from),
				Detail: err.Error(),
			})
			return
		}
		payload = plain
	}
	// Parse into the reused receive scratch: the fast path covers everything
	// the encoder above emits; anything else (hostile or malformed input)
	// falls back to encoding/json for the authoritative verdict. The
	// fallback decodes into a fresh message — the stdlib merges into
	// within-capacity slice elements without zeroing them, so reusing the
	// scratch there would leak fields of an earlier message into this one.
	msg := &s.recvMsg
	*msg = wireMsg{Detections: msg.Detections[:0]}
	if !fastParseWireMsg(payload, msg, s.intern) {
		var fallback wireMsg
		if err := json.Unmarshal(payload, &fallback); err != nil {
			return
		}
		s.dispatch(local, from, fallback)
		return
	}
	s.dispatch(local, from, *msg)
}

//worksim:hotpath
func (s *Site) dispatch(local, from radio.NodeID, msg wireMsg) {
	switch {
	case local == NodeForwarder && msg.Type == "heartbeat":
		s.watchdog.Beat(s.sched.Now())
	case local == NodeForwarder && msg.Type == "detections":
		// Copy out of the receive scratch: droneDets must stay valid across
		// ticks while the scratch is reused on the next message.
		s.droneDets = append(s.droneDets[:0], msg.Detections...)
		s.droneDetsAt = s.sched.Now()
	case local == NodeForwarder && msg.Type == "command":
		s.handleCommand(msg)
	case local == NodeCoordinator && msg.Type == "status":
		// The coordinator relays machine-reported GNSS verdicts to the IDS.
		s.ingestIDS(ids.Event{
			Kind:   ids.EventGNSSVerdict,
			At:     s.sched.Now(),
			Source: msg.From,
			OK:     msg.GNSSOK,
			Detail: msg.GNSSWhy,
		})
	}
	_ = from
}

// handleCommand applies a coordinator command at the forwarder. On the
// unsecured stack the link layer cannot authenticate the sender, so forged
// commands from the attacker arrive here too — the unsafe consequence E5
// measures.
func (s *Site) handleCommand(msg wireMsg) {
	switch msg.Command {
	case CommandPause:
		s.forwarder.SetStop(machine.StopReasonSecurity, true)
	case CommandResume:
		s.forwarder.SetStop(machine.StopReasonSecurity, false)
	case CommandClearStops:
		s.metrics.CommandsApplied++
		for _, r := range s.forwarder.StopReasons() {
			s.forwarder.SetStop(r, false)
		}
	}
}
