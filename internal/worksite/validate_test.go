package worksite

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidateErrors drives every rejection path: a malformed scenario
// spec must fail commissioning with a message naming the offending field.
func TestConfigValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(c *Config)
		wantSub string
	}{
		{"zero cols", func(c *Config) { c.Cols = 0 }, "grid dimensions"},
		{"negative rows", func(c *Config) { c.Rows = -3 }, "grid dimensions"},
		{"zero cell size", func(c *Config) { c.CellSizeM = 0 }, "cell size"},
		{"negative tree density", func(c *Config) { c.TreeDensity = -0.1 }, "tree density"},
		{"tree density above one", func(c *Config) { c.TreeDensity = 1.5 }, "tree density"},
		{"negative rock density", func(c *Config) { c.RockDensity = -0.2 }, "rock density"},
		{"rain above one", func(c *Config) { c.Weather.Rain = 2 }, "weather"},
		{"negative darkness", func(c *Config) { c.Weather.Darkness = -1 }, "weather"},
		{"negative workers", func(c *Config) { c.Workers = -1 }, "worker count"},
		{"negative confirm hits", func(c *Config) { c.ConfirmHits = -2 }, "confirm hits"},
		{"zero load time", func(c *Config) { c.LoadTime = 0 }, "load/unload"},
		{"negative unload time", func(c *Config) { c.UnloadTime = -time.Second }, "load/unload"},
		{"zero tick period", func(c *Config) { c.TickPeriod = 0 }, "tick period"},
		{"continuous risk without IDS", func(c *Config) { c.Profile.ContinuousRisk = true }, "idsEnabled"},
		{"channel agility without IDS", func(c *Config) { c.Profile.ChannelAgility = true }, "idsEnabled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name the field (want substring %q)", err, tc.wantSub)
			}
			// New must reject the same config with the same diagnosis.
			if _, nerr := New(cfg); nerr == nil {
				t.Fatalf("New accepted %s", tc.name)
			}
		})
	}
}

// TestConfigValidateAcceptsDefault pins the contract that the baseline
// configuration (and its legitimate zero-valued variants) stays valid.
func TestConfigValidateAcceptsDefault(t *testing.T) {
	cfg := DefaultConfig(7)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cfg.Workers = 0 // a site without workers on foot is a real scenario
	cfg.DroneEnabled = false
	if err := cfg.Validate(); err != nil {
		t.Fatalf("worker-free drone-free config rejected: %v", err)
	}
}
