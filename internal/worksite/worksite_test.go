package worksite

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/geo"
	"repro/internal/radio"
)

func runSite(t *testing.T, cfg Config, d time.Duration, arm func(*Site)) Report {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if arm != nil {
		arm(s)
	}
	rep, err := s.Run(d)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestBaselineProductivity(t *testing.T) {
	cfg := DefaultConfig(42)
	rep := runSite(t, cfg, 30*time.Minute, nil)
	if rep.Metrics.LogsDelivered < 2 {
		t.Fatalf("logs delivered = %d, want >= 2 in 30 min", rep.Metrics.LogsDelivered)
	}
	if rep.Metrics.Collisions != 0 {
		t.Fatalf("collisions = %d, want 0 with working safety function", rep.Metrics.Collisions)
	}
	if rep.Metrics.DistanceM < 100 {
		t.Fatalf("distance = %.0f m, forwarder barely moved", rep.Metrics.DistanceM)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig(7)
	a := runSite(t, cfg, 10*time.Minute, nil)
	b := runSite(t, cfg, 10*time.Minute, nil)
	if a.Metrics != b.Metrics {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := runSite(t, DefaultConfig(1), 10*time.Minute, nil)
	b := runSite(t, DefaultConfig(2), 10*time.Minute, nil)
	if a.Metrics == b.Metrics {
		t.Fatal("different seeds produced identical metrics (suspicious)")
	}
}

func TestSecuredBaselineStillProductive(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 30*time.Minute, nil)
	if rep.Metrics.LogsDelivered < 2 {
		t.Fatalf("secured site delivered %d logs, want >= 2 (defences must not break ops)",
			rep.Metrics.LogsDelivered)
	}
	if rep.Metrics.Collisions != 0 {
		t.Fatalf("collisions = %d", rep.Metrics.Collisions)
	}
}

func TestGNSSSpoofingUnguardedCausesNavError(t *testing.T) {
	cfg := DefaultConfig(11)
	rep := runSite(t, cfg, 20*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(2*time.Minute, 18*time.Minute,
			attack.NewGNSSSpoof(s.ForwarderGNSS(), geo.V(60, 40)))
		c.Schedule(s.Scheduler())
	})
	if rep.Metrics.NavErrMaxM < 40 {
		t.Fatalf("max nav error = %.1f m under 72 m spoof, want large", rep.Metrics.NavErrMaxM)
	}
}

func TestGNSSSpoofingGuardedFailsSafe(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 20*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(2*time.Minute, 18*time.Minute,
			attack.NewGNSSSpoof(s.ForwarderGNSS(), geo.V(60, 40)))
		c.Schedule(s.Scheduler())
	})
	// The guard rejects the spoofed fixes: believed position freezes at the
	// last trusted value, so nav error stays bounded by real motion, and the
	// nav-integrity latch parks the machine.
	if rep.Metrics.NavErrMaxM > 20 {
		t.Fatalf("guarded nav error = %.1f m, want bounded", rep.Metrics.NavErrMaxM)
	}
	if rep.Metrics.StoppedFor == 0 {
		t.Fatal("guarded machine never entered fail-safe stop under spoofing")
	}
	if rep.Alerts["gnss-anomaly"] == 0 {
		t.Fatalf("IDS alerts = %v, want gnss-anomaly", rep.Alerts)
	}
}

func TestCommandInjectionUnsecuredAccepted(t *testing.T) {
	cfg := DefaultConfig(13)
	rep := runSite(t, cfg, 10*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(time.Minute, 9*time.Minute, attack.NewCommandInjection(
			s.AttackerAdapter(), NodeCoordinator, NodeForwarder,
			func() []byte { return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`) },
			2*time.Second))
		c.Schedule(s.Scheduler())
	})
	if rep.Metrics.CommandsApplied == 0 {
		t.Fatal("unsecured forwarder never applied forged clear-stops commands")
	}
}

func TestCommandInjectionSecuredBlocked(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 10*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(time.Minute, 9*time.Minute, attack.NewCommandInjection(
			s.AttackerAdapter(), NodeCoordinator, NodeForwarder,
			func() []byte { return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`) },
			2*time.Second))
		c.Schedule(s.Scheduler())
	})
	if rep.Metrics.CommandsApplied != 0 {
		t.Fatalf("secured forwarder applied %d forged commands", rep.Metrics.CommandsApplied)
	}
	if rep.Metrics.ForgeriesBlocked == 0 {
		t.Fatal("secure channel blocked no forgeries (attack not exercised?)")
	}
	if rep.Alerts["tampered-record"] == 0 {
		t.Fatalf("IDS alerts = %v, want tampered-record", rep.Alerts)
	}
}

func TestDeauthFloodUnprotectedTearsLinks(t *testing.T) {
	cfg := DefaultConfig(17)
	rep := runSite(t, cfg, 10*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(time.Minute, 9*time.Minute, attack.NewDeauthFlood(
			s.AttackerAdapter(), NodeForwarder, NodeCoordinator, 200*time.Millisecond))
		c.Schedule(s.Scheduler())
	})
	if rep.Metrics.SendFailures == 0 {
		t.Fatal("deauth flood caused no send failures on unprotected stack")
	}
}

func TestDeauthFloodProtectedResists(t *testing.T) {
	cfg := DefaultConfig(17)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 10*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(time.Minute, 9*time.Minute, attack.NewDeauthFlood(
			s.AttackerAdapter(), NodeForwarder, NodeCoordinator, 200*time.Millisecond))
		c.Schedule(s.Scheduler())
	})
	if rep.Alerts["mgmt-forgery"] == 0 {
		t.Fatalf("IDS alerts = %v, want mgmt-forgery", rep.Alerts)
	}
	// Links hold: productivity comparable to clean secured run.
	if rep.Metrics.LogsDelivered == 0 {
		t.Fatal("protected site delivered nothing under deauth flood")
	}
}

func TestRFJammingDegradesComms(t *testing.T) {
	cfg := DefaultConfig(19)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 12*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		mid := geo.V(0.5*s.Grid().Width(), 0.5*s.Grid().Height())
		c.Add(2*time.Minute, 10*time.Minute,
			attack.NewJamming(s.Medium(), "jam-1", mid, 1, 40, true))
		c.Schedule(s.Scheduler())
	})
	if rep.Radio["jammed"] == 0 {
		t.Fatalf("radio drops = %v, want jammed losses", rep.Radio)
	}
	if rep.Alerts["link-degraded"] == 0 {
		t.Fatalf("IDS alerts = %v, want link-degraded", rep.Alerts)
	}
}

func TestReplayAttackSecuredBlocked(t *testing.T) {
	cfg := DefaultConfig(23)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 12*time.Minute, func(s *Site) {
		rec := &attack.Recorder{FilterDst: NodeForwarder}
		prev := s.Medium().Observer
		s.Medium().Observer = func(p radio.Packet, to radio.NodeID, sinr float64, cause radio.DropCause) {
			rec.Tap(p, to, sinr, cause)
			if prev != nil {
				prev(p, to, sinr, cause)
			}
		}
		c := attack.NewCampaign()
		c.Add(3*time.Minute, 10*time.Minute,
			attack.NewReplay(s.AttackerAdapter(), rec, time.Second))
		c.Schedule(s.Scheduler())
	})
	if rep.Metrics.ReplaysBlocked == 0 {
		t.Fatal("secured site blocked no replays")
	}
	if rep.Alerts["replay"] == 0 {
		t.Fatalf("IDS alerts = %v, want replay", rep.Alerts)
	}
}

func TestDroneOffReducesDetections(t *testing.T) {
	with := DefaultConfig(29)
	without := DefaultConfig(29)
	without.DroneEnabled = false
	a := runSite(t, with, 20*time.Minute, nil)
	b := runSite(t, without, 20*time.Minute, nil)
	if a.Metrics.TracksConfirmed <= b.Metrics.TracksConfirmed {
		t.Fatalf("drone-on confirms %d <= drone-off %d",
			a.Metrics.TracksConfirmed, b.Metrics.TracksConfirmed)
	}
}

func TestUnsafeEpisodesIncreaseWhenBlinded(t *testing.T) {
	// Blind both cameras and remove the drone: detection falls to lidar only,
	// so unsafe proximity episodes should not decrease.
	cfg := DefaultConfig(31)
	cfg.DroneEnabled = false
	cfg.Weather.Rain = 0.8 // lidar heavily degraded too
	blind := runSite(t, cfg, 20*time.Minute, func(s *Site) {
		s.ForwarderCamera().Blinded = true
	})
	clear := runSite(t, DefaultConfig(31), 20*time.Minute, nil)
	if blind.Metrics.UnsafeTicks < clear.Metrics.UnsafeTicks {
		t.Fatalf("degraded perception unsafe ticks %d < full stack %d",
			blind.Metrics.UnsafeTicks, clear.Metrics.UnsafeTicks)
	}
}

func TestReportShape(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 5*time.Minute, nil)
	if rep.Duration != 5*time.Minute {
		t.Fatalf("duration = %v", rep.Duration)
	}
	if rep.Config.Seed != 3 {
		t.Fatal("config not echoed")
	}
	if rep.Alerts == nil {
		t.Fatal("secured report missing alerts map")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.TickPeriod = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("want error for zero tick period")
	}
}
