package worksite

import (
	"context"
	"fmt"
	"time"
)

// Session is a steppable handle on a commissioned worksite simulation. It
// owns the progression of virtual time — step one control tick at a time,
// advance in bulk with RunFor, or drive until a predicate fires — and fans
// the typed event stream (TickSnapshot, AlertRaised, AttackPhase,
// SecurityResponse, ModeChange, MissionPhase, SafetyEvent) out to
// subscribed observers.
//
// Determinism contract: observers are passive taps on the simulation loop,
// so a session produces a Report byte-identical to the closed-loop
// Site.Run(d) path for the same config, however its time was advanced and
// whatever was subscribed. Site.Run itself is a thin wrapper over a
// session.
type Session struct {
	site    *Site
	elapsed time.Duration // virtual time advanced so far (absolute)
	horizon time.Duration // 0 = unbounded
	stopped bool
	err     error // scheduler stop, sticky once set
}

// NewSession commissions a worksite from cfg and returns a steppable
// session over it. No virtual time has elapsed beyond commissioning; call
// Step, RunFor or RunUntil to advance.
func NewSession(cfg Config) (*Session, error) {
	site, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{site: site}, nil
}

// Site returns the underlying worksite, e.g. for attack arming, map
// rendering or accessor queries. Mutating it mid-run breaks the determinism
// contract unless the mutation is itself scheduled (the attack framework's
// approach).
func (se *Session) Site() *Site { return se.site }

// Subscribe registers an observer for the session's event stream.
func (se *Session) Subscribe(o Observer) { se.site.Subscribe(o) }

// Now returns how much virtual time the session has advanced.
func (se *Session) Now() time.Duration { return se.elapsed }

// SetHorizon bounds the session at d of virtual time: Step and RunUntil
// report done once it is reached, and RunFor clamps to it. Zero removes the
// bound. scenario.Build sets the horizon to the scenario duration.
func (se *Session) SetHorizon(d time.Duration) { se.horizon = d }

// Horizon returns the configured bound (0 = unbounded).
func (se *Session) Horizon() time.Duration { return se.horizon }

// Done reports whether the session has reached its horizon (never true
// while unbounded) or was stopped by the scheduler.
func (se *Session) Done() bool {
	return se.stopped || (se.horizon > 0 && se.elapsed >= se.horizon)
}

// Err returns the sticky scheduler-stop error, nil while the session only
// ran to its horizon. Check it after Step returns false to distinguish a
// completed run from a stopped one.
func (se *Session) Err() error { return se.err }

// Step advances the simulation to exactly the next control tick and
// returns its snapshot, so Now() equals the returned tick's time and no
// later event has run yet — Step composes with RunFor at any offset. It
// reports false — with the last completed tick, after draining events up
// to the horizon — once the horizon is reached or the scheduler was
// stopped (see Err).
func (se *Session) Step() (Tick, bool) {
	if se.Done() {
		return se.site.lastTick, false
	}
	next := se.site.firstTickAt + time.Duration(se.site.tickNo)*se.site.cfg.TickPeriod
	if next <= se.elapsed {
		// Defensive: never run backwards.
		next = se.elapsed + se.site.cfg.TickPeriod
	}
	if se.horizon > 0 && next > se.horizon {
		// No full tick left before the horizon; drain the remainder.
		if err := se.advanceTo(se.horizon); err != nil {
			return se.site.lastTick, false
		}
		return se.site.lastTick, false
	}
	if err := se.advanceTo(next); err != nil {
		return se.site.lastTick, false
	}
	return se.site.lastTick, true
}

// advanceTo runs the scheduler to the absolute virtual time target,
// recording a scheduler stop in the session's sticky error.
func (se *Session) advanceTo(target time.Duration) error {
	if err := se.site.sched.Run(target); err != nil {
		se.stopped = true
		se.err = fmt.Errorf("worksite run: %w", err)
		return se.err
	}
	se.elapsed = target
	return nil
}

// RunFor advances the simulation by d of virtual time (clamped to the
// horizon when one is set), firing all scheduled events and observer
// notifications on the way.
//
// The context bounds wall-clock execution: between control ticks the session
// checks ctx and returns ctx.Err() as soon as it is cancelled or past its
// deadline, leaving the session stopped at the last completed tick (still
// steppable, reportable over the time actually advanced). A context that
// never fires — including context.Background() — yields byte-identical
// results to an uncancellable run: cancellation is observed only between
// ticks, never inside one, so the event stream up to the stopping point is
// the same either way.
func (se *Session) RunFor(ctx context.Context, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("worksite session: negative duration %v", d)
	}
	target := se.elapsed + d
	if se.horizon > 0 && target > se.horizon {
		target = se.horizon
	}
	if target <= se.elapsed {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		// Nothing can ever cancel this context: advance in one stride,
		// exactly the pre-context execution path.
		return se.advanceTo(target)
	}
	//worksim:tickloop
	for se.elapsed < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := se.site.firstTickAt + time.Duration(se.site.tickNo)*se.site.cfg.TickPeriod
		if next <= se.elapsed {
			next = se.elapsed + se.site.cfg.TickPeriod
		}
		if next > target {
			next = target
		}
		if err := se.advanceTo(next); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil steps tick by tick until stop returns true for a snapshot, the
// horizon is reached, the context fires, or the scheduler stops. It reports
// whether the predicate fired — the campaign layer's early-stop primitive. A
// horizon is required (the control loop reschedules forever, so a predicate
// that never fires would otherwise spin unboundedly); a nil predicate runs
// straight to the horizon. Like RunFor, cancellation is observed between
// ticks and surfaces as ctx.Err().
func (se *Session) RunUntil(ctx context.Context, stop func(Tick) bool) (bool, error) {
	if se.horizon <= 0 {
		return false, fmt.Errorf("worksite session: RunUntil requires a horizon (SetHorizon)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if stop == nil {
		return false, se.RunFor(ctx, se.horizon-se.elapsed)
	}
	cancellable := ctx.Done() != nil
	//worksim:tickloop
	for {
		if cancellable {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		tick, ok := se.Step()
		if !ok {
			return false, se.err
		}
		if stop(tick) {
			return true, nil
		}
	}
}

// Report finalises and returns the report over the time advanced so far.
// The session remains steppable afterwards; a later Report covers the
// longer window.
func (se *Session) Report() Report { return se.site.report(se.elapsed) }

// Run is the convenience closed loop: RunFor(ctx, d) then Report.
func (se *Session) Run(ctx context.Context, d time.Duration) (Report, error) {
	if err := se.RunFor(ctx, d); err != nil {
		return Report{}, err
	}
	return se.Report(), nil
}

// EmitAttackPhase injects an attack-phase event into the event stream. The
// attack campaign lives a layer above the worksite (the scenario package
// arms and schedules it), so phase transitions enter the stream through
// this seam rather than a site-internal hook.
func (se *Session) EmitAttackPhase(at time.Duration, attack string, active bool) {
	se.site.publish(AttackPhase{At: at, Attack: attack, Active: active})
}
