package worksite

import (
	"strings"

	"repro/internal/geo"
)

// RenderMap returns an ASCII rendering of the worksite — the textual Fig. 1:
// terrain (trees '^', rocks '#', road '='), the landing 'L' and harvest 'H'
// areas, the forwarder 'F', harvester 'V', drone 'D', workers 'w', the
// coordinator 'C' and the attacker position 'X'. The grid is downsampled to
// at most maxCols columns.
func (s *Site) RenderMap(maxCols int) string {
	if maxCols <= 0 {
		maxCols = 80
	}
	step := 1
	for s.grid.Cols()/step > maxCols {
		step++
	}
	rows := s.grid.Rows() / step
	cols := s.grid.Cols() / step

	canvas := make([][]byte, rows)
	for r := range canvas {
		canvas[r] = make([]byte, cols)
		for c := range canvas[r] {
			// Majority terrain in the step x step block.
			counts := map[geo.Terrain]int{}
			for dr := 0; dr < step; dr++ {
				for dc := 0; dc < step; dc++ {
					counts[s.grid.At(geo.C(c*step+dc, r*step+dr))]++
				}
			}
			best, bestN := geo.Ground, -1
			for t, n := range counts {
				if n > bestN {
					best, bestN = t, n
				}
			}
			switch best {
			case geo.Tree:
				canvas[r][c] = '^'
			case geo.Rock:
				canvas[r][c] = '#'
			case geo.Road:
				canvas[r][c] = '='
			case geo.Water:
				canvas[r][c] = '~'
			default:
				canvas[r][c] = '.'
			}
		}
	}

	plot := func(p geo.Vec, ch byte) {
		cell := s.grid.CellOf(p)
		r, c := cell.Row/step, cell.Col/step
		if r >= 0 && r < rows && c >= 0 && c < cols {
			canvas[r][c] = ch
		}
	}
	plot(s.landing, 'L')
	plot(s.harvest, 'H')
	for _, w := range s.workers {
		plot(w.pos, 'w')
	}
	plot(s.harvester.Pose.Pos, 'V')
	if s.drone != nil {
		plot(s.drone.Pose.Pos, 'D')
	}
	plot(s.landing.Add(geo.V(-8, 0)), 'C')
	plot(geo.V(0.5*s.grid.Width(), 0.35*s.grid.Height()), 'X')
	plot(s.forwarder.Pose.Pos, 'F')

	var b strings.Builder
	b.WriteString("Worksite map (L landing, H harvest, F forwarder, D drone, V harvester, w worker, C coordinator, X attacker)\n")
	for _, row := range canvas {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
