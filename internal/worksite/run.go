package worksite

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/machine"
	"repro/internal/risk"
	"repro/internal/sensors"
	"repro/internal/simclock"
)

// Safety-relevant distances (metres). DangerRadiusM defines an unsafe event:
// a worker inside it while the forwarder moves. CollisionRadiusM counts as an
// accident.
const (
	DangerRadiusM    = 5.0
	CollisionRadiusM = 1.5
	arriveRadiusM    = 6.0
	effectiveRadiusM = 15.0
	waypointRadiusM  = 2.5
	droneOrbitM      = 25.0
	droneStaleness   = 2 * time.Second
)

// Metrics are the worksite KPIs collected during a run.
type Metrics struct {
	// Productivity.
	LogsDelivered   int     `json:"logsDelivered"`
	EmptyDeliveries int     `json:"emptyDeliveries"` // unloads without cargo (navigation failure)
	DistanceM       float64 `json:"distanceM"`
	// Safety.
	SafetyStops    int           `json:"safetyStops"`
	StoppedFor     time.Duration `json:"stoppedForNs"`
	UnsafeEpisodes int           `json:"unsafeEpisodes"`
	UnsafeTicks    int           `json:"unsafeTicks"`
	Collisions     int           `json:"collisions"`
	MinWorkerDistM float64       `json:"minWorkerDistM"`
	// Navigation integrity.
	NavErrMeanM float64 `json:"navErrMeanM"`
	NavErrMaxM  float64 `json:"navErrMaxM"`
	// Security outcomes.
	SendFailures      int `json:"sendFailures"`
	ReplaysBlocked    int `json:"replaysBlocked"`
	ForgeriesBlocked  int `json:"forgeriesBlocked"`
	CommandsApplied   int `json:"commandsApplied"`   // clear-stops commands executed
	SecurityResponses int `json:"securityResponses"` // live-risk mode escalations
	ChannelHops       int `json:"channelHops"`       // channel-agility responses
	// Perception.
	TracksConfirmed int `json:"tracksConfirmed"`
	FalseAlarms     int `json:"falseAlarms"`

	navErrSum   float64
	navErrCount int
}

// Report is the outcome of a worksite run.
type Report struct {
	Config   Config           `json:"config"`
	Duration time.Duration    `json:"durationNs"`
	Metrics  Metrics          `json:"metrics"`
	Alerts   map[string]int   `json:"alertsByType,omitempty"`
	Radio    map[string]int64 `json:"radioDrops,omitempty"`
}

// commissionControl installs the periodic control loop, the built-in
// metrics/timeline observers, and the initial mission.
func (s *Site) commissionControl() {
	s.workerRand = s.rand.Derive("worker-move")
	s.metrics.MinWorkerDistM = math.Inf(1)
	s.believed = s.forwarder.Pose.Pos
	s.planTo(s.harvest, s.believed)
	s.mission = phaseToHarvest
	s.forwarder.SetState(machine.StateDriving)

	// Built-ins subscribe first so external observers see the same stream
	// the report is accumulated from, never a divergent one.
	s.Subscribe(&metricsObserver{m: &s.metrics})
	s.Subscribe(&timelineObserver{site: s})

	s.firstTickAt = s.sched.Now() + s.cfg.TickPeriod
	s.sched.Every(s.cfg.TickPeriod, func(sch *simclock.Scheduler) {
		s.tickNo++
		s.controlTick(sch.Now())
	})
}

// Run executes the scenario for d of virtual time and returns the report.
// It is a thin compatibility wrapper over the Session API: construct a
// session (or use NewSession) for stepping, observers and early stop.
func (s *Site) Run(d time.Duration) (Report, error) {
	se := &Session{site: s}
	return se.Run(context.Background(), d)
}

func (s *Site) report(d time.Duration) Report {
	fm := s.tracker.Metrics()
	s.metrics.TracksConfirmed = fm.ConfirmedTotal
	s.metrics.FalseAlarms = fm.FalseAlarms
	s.metrics.SafetyStops = s.forwarder.StopTransitions()
	if s.metrics.navErrCount > 0 {
		s.metrics.NavErrMeanM = s.metrics.navErrSum / float64(s.metrics.navErrCount)
	}
	rep := Report{Config: s.cfg, Duration: d, Metrics: s.metrics}
	if math.IsInf(rep.Metrics.MinWorkerDistM, 1) {
		// No minimum observed (no workers, or no ticks yet): report -1
		// instead of +Inf, which json.Marshal rejects. Only the returned
		// copy is translated — the live accumulator keeps +Inf so later
		// ticks can still set a real minimum.
		rep.Metrics.MinWorkerDistM = -1
	}
	if s.engine != nil {
		rep.Alerts = s.engine.CountByType()
	}
	rep.Radio = s.med.Stats().Drops
	return rep
}

// --- control loop ---

//worksim:hotpath
func (s *Site) controlTick(now time.Duration) {
	dt := s.cfg.TickPeriod
	s.moveWorkers(dt)
	if s.cfg.DroneEnabled {
		s.droneTick(dt)
	}
	s.forwarderTick(now, dt)

	// 1 Hz housekeeping: heartbeats, status reports, live-risk response.
	if s.tickNo%s.ticksPerSec == 0 {
		s.send(NodeCoordinator, NodeForwarder, wireMsg{Type: "heartbeat", From: string(NodeCoordinator)})
		s.sendForwarderStatus(now)
		s.updateOperatingMode(now)
	}
	s.scoreTick(now)
}

// stopReasonRiskMode is the latch owned by the continuous-risk response (kept
// separate from coordinator pause commands so a mode relaxation cannot clear
// an operator's pause).
const stopReasonRiskMode = "live-risk-mode"

// updateOperatingMode derives the operating mode from the live risk register
// (ISO/SAE 21434 continuous activities) and drives the forwarder's
// security-response latches.
//
//worksim:hotpath
func (s *Site) updateOperatingMode(now time.Duration) {
	if s.assessor == nil {
		return
	}
	s.riskScratch = s.assessor.CurrentInto(s.riskScratch, now)
	mode := risk.RecommendMode(s.riskScratch)
	if mode == s.mode {
		return
	}
	if mode > s.mode {
		s.publishSecurityResponse(SecurityResponse{
			At:     now,
			Kind:   ResponseModeEscalation,
			Detail: fmt.Sprintf("%s -> %s", s.mode, mode), //worksim:allow mode escalations are discrete transitions, excluded from the steady-state zero-alloc window
		})
	}
	s.publishModeChange(ModeChange{At: now, From: s.mode.String(), To: mode.String()})
	s.mode = mode
	switch mode {
	case risk.ModeSafeStop:
		s.forwarder.SetStop(stopReasonRiskMode, true)
		s.forwarder.SetSlow(stopReasonRiskMode, true)
	case risk.ModeRestricted:
		s.forwarder.SetStop(stopReasonRiskMode, false)
		s.forwarder.SetSlow(stopReasonRiskMode, true)
	case risk.ModeNormal:
		s.forwarder.SetStop(stopReasonRiskMode, false)
		s.forwarder.SetSlow(stopReasonRiskMode, false)
	}
}

func ticksPerSecond(dt time.Duration) int {
	n := int(time.Second / dt)
	if n < 1 {
		return 1
	}
	return n
}

// moveWorkers advances each worker toward its waypoint; on arrival a new
// waypoint is drawn near the harvest site, occasionally crossing toward the
// forwarder (the hazardous interaction the safety function exists for).
//
//worksim:hotpath
func (s *Site) moveWorkers(dt time.Duration) {
	for _, w := range s.workers {
		if w.pos.Dist(w.target) < 1 {
			if s.workerRand.Bool(0.12) {
				// Approach the machine corridor.
				jitter := geo.V(s.workerRand.Range(-6, 6), s.workerRand.Range(-6, 6))
				w.target = s.forwarder.Pose.Pos.Add(jitter)
			} else {
				w.target = s.harvest.Add(geo.V(s.workerRand.Range(-30, 30), s.workerRand.Range(-30, 30)))
			}
			continue
		}
		dir := w.target.Sub(w.pos).Norm()
		w.pos = w.pos.Add(dir.Scale(w.speed * dt.Seconds()))
	}
}

// droneTick keeps the drone orbiting the forwarder and streams its aerial
// detections down — the Fig. 2 collaborative safety function.
//
//worksim:hotpath
func (s *Site) droneTick(dt time.Duration) {
	s.droneAngle += 0.4 * dt.Seconds()
	orbit := s.forwarder.Pose.Pos.Add(
		geo.V(math.Cos(s.droneAngle), math.Sin(s.droneAngle)).Scale(droneOrbitM))
	// Fly toward the orbit point at drone speed.
	dir := orbit.Sub(s.drone.Pose.Pos)
	maxStep := s.drone.MaxSpeedMPS * dt.Seconds()
	if dir.Len() > maxStep {
		dir = dir.Norm().Scale(maxStep)
	}
	s.drone.Pose.Pos = s.drone.Pose.Pos.Add(dir)

	dets := s.droneCam.Scan(s.drone.Pose.Pos, s.targets(), s.cfg.Weather)
	s.send(NodeDrone, NodeForwarder, wireMsg{
		Type:       "detections",
		From:       string(NodeDrone),
		Detections: dets,
	})
}

// targets snapshots the ground-truth sensor targets into a reused scratch
// buffer; the result is valid until the next call.
//
//worksim:hotpath
func (s *Site) targets() []sensors.Target {
	out := s.scratchTargets[:0]
	for _, w := range s.workers {
		out = append(out, sensors.Target{ID: w.id, Pos: w.pos})
	}
	s.scratchTargets = out
	return out
}

//worksim:hotpath
func (s *Site) forwarderTick(now time.Duration, dt time.Duration) {
	s.updateLocalization(now)
	s.updateCommsFailSafe(now)
	s.updatePerception(now)
	s.missionStep(now, dt)
}

// updateLocalization samples GNSS, maintains the believed position, and runs
// the plausibility guard when enabled.
//
//worksim:hotpath
func (s *Site) updateLocalization(now time.Duration) {
	reading := s.fwGNSS.Sample(s.forwarder.Pose.Pos)
	verdict := s.fwGuard.Check(reading, now.Seconds())

	if s.cfg.Profile.GNSSGuard {
		// Fail-safe: untrusted localization latches a nav-integrity stop.
		s.setFailSafe(now, machine.StopReasonNav, &s.navStopOn, !verdict.Trustworthy)
		if verdict.Trustworthy && reading.HasFix {
			s.believed = reading.Pos
		}
	} else if reading.HasFix {
		// Unguarded stack trusts whatever arrives (the spoofing victim).
		s.believed = reading.Pos
	}
	// Without a fix and without a guard the forwarder dead-reckons on the
	// last believed position.
	s.gnssErr = s.believed.Sub(s.forwarder.Pose.Pos)

	s.lastVerdictOK, s.lastVerdictWhy = verdict.Trustworthy, verdict.Reason
}

//worksim:hotpath
func (s *Site) updateCommsFailSafe(now time.Duration) {
	if !s.cfg.Profile.CommsFailSafe {
		return
	}
	s.setFailSafe(now, machine.StopReasonComms, &s.commsStopOn, s.watchdog.Expired(now))
}

// setFailSafe drives a fail-safe stop latch and publishes a SafetyEvent on
// each transition. latched is the site-side shadow of the latch state (the
// machine dedups internally, but transitions are an event concern).
//
//worksim:hotpath
func (s *Site) setFailSafe(now time.Duration, reason string, latched *bool, on bool) {
	if on != *latched {
		*latched = on
		kind := SafetyFailSafeReleased
		if on {
			kind = SafetyFailSafeEngaged
		}
		s.publishSafety(SafetyEvent{At: now, Kind: kind, Detail: reason})
	}
	s.forwarder.SetStop(reason, on)
}

// updatePerception fuses local sensors with (fresh) drone detections and
// drives the protective fields. Detections accumulate in a site-owned
// scratch buffer (each sensor's Scan result is itself a reused buffer, so
// the copies here are what decouple their lifetimes).
//
//worksim:hotpath
func (s *Site) updatePerception(now time.Duration) {
	targets := s.targets()
	pos := s.forwarder.Pose.Pos
	dets := s.scratchDets[:0]
	dets = append(dets, s.fwLidar.Scan(pos, targets, s.cfg.Weather)...)
	dets = append(dets, s.fwCamera.Scan(pos, targets, s.cfg.Weather)...)
	dets = append(dets, s.fwUltra.Scan(pos, targets, s.cfg.Weather)...)
	if s.cfg.DroneEnabled && now-s.droneDetsAt <= droneStaleness {
		dets = append(dets, s.droneDets...)
	}
	s.scratchDets = dets
	s.tracker.Update(now, dets)

	s.scratchPositions = s.tracker.AppendConfirmedPositions(
		s.scratchPositions[:0], pos, s.safety.WarningRadiusM+5)
	s.safety.Assess(now, s.scratchPositions)
}

// missionStep advances the haul cycle. Navigation control operates in the
// believed (GNSS) frame: under an undetected spoof the control error steers
// the true position off course — exactly the hazardous effect the guard and
// the E5 experiment quantify.
//
//worksim:hotpath
func (s *Site) missionStep(now time.Duration, dt time.Duration) {
	switch s.mission {
	case phaseToHarvest, phaseToLanding:
		s.drive(dt)
		goal := s.harvest
		if s.mission == phaseToLanding {
			goal = s.landing
		}
		if s.believed.Dist(goal) <= arriveRadiusM || s.navDone() {
			detail := "phase -> loading"
			if s.mission == phaseToHarvest {
				s.mission = phaseLoading
				s.phaseLeft = s.cfg.LoadTime
				s.forwarder.SetState(machine.StateLoading)
			} else {
				s.mission = phaseUnloading
				s.phaseLeft = s.cfg.UnloadTime
				s.forwarder.SetState(machine.StateUnloading)
				detail = "phase -> unloading"
			}
			s.publishMissionPhase(MissionPhase{At: now, Phase: s.mission.String(), Detail: detail})
		}
	case phaseLoading:
		if s.forwarder.Stopped() {
			return // loading pauses while a person is in the field
		}
		s.phaseLeft -= dt
		if s.phaseLeft <= 0 {
			// Loading only succeeds if the machine is physically at the
			// harvest site (a spoofed machine "loads" thin air).
			s.loaded = s.forwarder.Pose.Pos.Dist(s.harvest) <= effectiveRadiusM
			s.mission = phaseToLanding
			s.planTo(s.landing, s.believed)
			s.forwarder.SetState(machine.StateDriving)
			detail := "phase -> to-landing (loaded=false)"
			if s.loaded {
				detail = "phase -> to-landing (loaded=true)"
			}
			s.publishMissionPhase(MissionPhase{At: now, Phase: s.mission.String(), Detail: detail})
		}
	case phaseUnloading:
		if s.forwarder.Stopped() {
			return
		}
		s.phaseLeft -= dt
		if s.phaseLeft <= 0 {
			atLanding := s.forwarder.Pose.Pos.Dist(s.landing) <= effectiveRadiusM
			if s.loaded && atLanding {
				s.metrics.LogsDelivered++
			} else {
				s.metrics.EmptyDeliveries++
			}
			delivered := s.loaded && atLanding
			s.loaded = false
			s.mission = phaseToHarvest
			s.planTo(s.harvest, s.believed)
			s.forwarder.SetState(machine.StateDriving)
			detail := "phase -> to-harvest (delivered=false)"
			if delivered {
				detail = "phase -> to-harvest (delivered=true)"
			}
			s.publishMissionPhase(MissionPhase{At: now, Phase: s.mission.String(), Detail: detail})
		}
	}
}

// drive moves the forwarder toward the current waypoint in the believed
// frame.
//
//worksim:hotpath
func (s *Site) drive(dt time.Duration) {
	speed := s.forwarder.EffectiveSpeed()
	if speed <= 0 {
		s.metrics.StoppedFor += dt
		return
	}
	if s.navDone() {
		return
	}
	wp := s.navPath[s.navIdx]
	if s.believed.Dist(wp) <= waypointRadiusM {
		s.navIdx++
		if s.navDone() {
			return
		}
		wp = s.navPath[s.navIdx]
	}
	// Control error in the believed frame, applied to the true position.
	dir := wp.Sub(s.believed).Norm()
	step := dir.Scale(speed * dt.Seconds())
	s.forwarder.Pose.Pos = s.forwarder.Pose.Pos.Add(step)
	s.forwarder.Pose.Heading = dir.Angle()
	// Believed position advances with odometry between GNSS fixes.
	s.believed = s.believed.Add(step)
	s.metrics.DistanceM += step.Len()
}

func (s *Site) navDone() bool { return s.navIdx >= len(s.navPath) }

func (s *Site) planTo(goal, from geo.Vec) {
	path, err := s.grid.FindPath(from, goal)
	if err != nil {
		path = []geo.Vec{goal}
	}
	s.navPath = path
	s.navIdx = 0
}

//worksim:hotpath
func (s *Site) sendForwarderStatus(now time.Duration) {
	s.send(NodeForwarder, NodeCoordinator, wireMsg{
		Type:    "status",
		From:    string(NodeForwarder),
		PosX:    s.believed.X,
		PosY:    s.believed.Y,
		State:   s.forwarder.State().String(),
		GNSSOK:  s.lastVerdictOK,
		GNSSWhy: s.lastVerdictWhy,
	})
	_ = now
}

// scoreTick assesses the tick's safety and navigation state and publishes
// it: safety transitions first, then the tick snapshot. The KPI
// accumulation itself lives in the built-in metricsObserver, so external
// subscribers read the exact stream the report is computed from.
//
//worksim:hotpath
func (s *Site) scoreTick(now time.Duration) {
	pos := s.forwarder.Pose.Pos
	minDist := math.Inf(1)
	for _, w := range s.workers {
		if d := w.pos.Dist(pos); d < minDist {
			minDist = d
		}
	}

	moving := s.forwarder.EffectiveSpeed() > 0.1 && s.forwarder.State() == machine.StateDriving
	unsafeNow := moving && minDist < DangerRadiusM
	collidingNow := unsafeNow && minDist < CollisionRadiusM
	if unsafeNow && !s.unsafe {
		s.publishSafety(SafetyEvent{At: now, Kind: SafetyUnsafeEnter, MinWorkerDistM: minDist})
	}
	if !unsafeNow && s.unsafe {
		s.publishSafety(SafetyEvent{At: now, Kind: SafetyUnsafeExit})
	}
	if collidingNow {
		// Repeats every colliding tick: the collision KPI is tick-based.
		s.publishSafety(SafetyEvent{At: now, Kind: SafetyCollision, MinWorkerDistM: minDist, New: !s.colliding})
	}
	s.unsafe, s.colliding = unsafeNow, collidingNow

	snapDist := minDist
	if math.IsInf(snapDist, 1) {
		snapDist = -1 // no workers on site
	}
	alerts := 0
	if s.engine != nil {
		alerts = s.engine.Total()
	}
	s.lastTick = TickSnapshot{
		N:              s.tickNo,
		At:             now,
		Mission:        s.mission.String(),
		Mode:           s.OperatingMode().String(),
		TruePos:        pos,
		BelievedPos:    s.believed,
		NavErrM:        s.gnssErr.Len(),
		MinWorkerDistM: snapDist,
		Unsafe:         unsafeNow,
		Colliding:      collidingNow,
		Stopped:        s.forwarder.Stopped(),
		LogsDelivered:  s.metrics.LogsDelivered,
		Collisions:     s.metrics.Collisions,
		UnsafeEpisodes: s.metrics.UnsafeEpisodes,
		Alerts:         alerts,
	}
	s.publishTick(s.lastTick)
}
