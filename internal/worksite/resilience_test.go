package worksite

import (
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/geo"
	"repro/internal/risk"
	"repro/internal/simclock"
)

// --- continuous-risk response ---

func TestContinuousRiskResponseUnderInjection(t *testing.T) {
	cfg := DefaultConfig(37)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 12*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(2*time.Minute, 8*time.Minute, attack.NewCommandInjection(
			s.AttackerAdapter(), NodeCoordinator, NodeForwarder,
			func() []byte { return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`) },
			time.Second))
		c.Schedule(s.Scheduler())
	})
	if rep.Metrics.SecurityResponses == 0 {
		t.Fatal("live risk register never escalated the operating mode under injection")
	}
}

func TestContinuousRiskQuietBaseline(t *testing.T) {
	cfg := DefaultConfig(37)
	cfg.Profile = Secured()
	rep := runSite(t, cfg, 15*time.Minute, nil)
	if rep.Metrics.SecurityResponses != 0 {
		t.Fatalf("benign run triggered %d security responses", rep.Metrics.SecurityResponses)
	}
}

func TestContinuousRiskModeRelaxesAfterAttack(t *testing.T) {
	cfg := DefaultConfig(41)
	cfg.Profile = Secured()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := attack.NewCampaign()
	// Short spoof burst early; DecayAfter is two minutes.
	c.Add(time.Minute, 2*time.Minute, attack.NewGNSSSpoof(s.ForwarderGNSS(), geo.V(60, 40)))
	c.Schedule(s.Scheduler())
	if _, err := s.Run(10 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.OperatingMode() != risk.ModeNormal {
		t.Fatalf("mode = %v eight minutes after the attack, want normal", s.OperatingMode())
	}
}

func TestContinuousRiskDisabledProfile(t *testing.T) {
	cfg := DefaultConfig(37)
	cfg.Profile = Secured()
	cfg.Profile.ContinuousRisk = false
	rep := runSite(t, cfg, 10*time.Minute, func(s *Site) {
		c := attack.NewCampaign()
		c.Add(time.Minute, 8*time.Minute, attack.NewCommandInjection(
			s.AttackerAdapter(), NodeCoordinator, NodeForwarder,
			func() []byte { return []byte(`{"type":"command"}`) }, time.Second))
		c.Schedule(s.Scheduler())
	})
	if rep.Metrics.SecurityResponses != 0 {
		t.Fatal("security responses with continuous risk disabled")
	}
}

// --- failure injection ---

func TestDroneRadioFailureDegradesGracefully(t *testing.T) {
	cfg := DefaultConfig(43)
	rep := runSite(t, cfg, 15*time.Minute, func(s *Site) {
		// The drone's radio dies five minutes in (hardware fault, not attack).
		s.Scheduler().At(5*time.Minute, func(*simclock.Scheduler) {
			if n, ok := s.Medium().Node(NodeDrone); ok {
				n.Online = false
			}
		})
	})
	// The site keeps operating on the forwarder's own sensors.
	if rep.Metrics.LogsDelivered == 0 {
		t.Fatal("site stalled entirely after drone radio failure")
	}
	if rep.Metrics.Collisions != 0 {
		t.Fatalf("collisions = %d after drone loss", rep.Metrics.Collisions)
	}
}

func TestCoordinatorSilenceTriggersFailSafe(t *testing.T) {
	cfg := DefaultConfig(47)
	cfg.Profile = Secured()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// The coordinator radio dies at minute 3 and never recovers: heartbeats
	// stop, the watchdog must park the forwarder.
	s.Scheduler().At(3*time.Minute, func(*simclock.Scheduler) {
		if n, ok := s.Medium().Node(NodeCoordinator); ok {
			n.Online = false
		}
	})
	rep, err := s.Run(10 * time.Minute)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.Forwarder().Stopped() {
		t.Fatal("forwarder still moving without coordinator heartbeats")
	}
	found := false
	for _, r := range s.Forwarder().StopReasons() {
		if r == "comms-watchdog" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stop reasons = %v, want comms-watchdog", s.Forwarder().StopReasons())
	}
	if rep.Metrics.StoppedFor < 3*time.Minute {
		t.Fatalf("stopped for %v, want most of the post-failure window", rep.Metrics.StoppedFor)
	}
}

func TestCoordinatorSilenceUnsecuredKeepsDriving(t *testing.T) {
	// Without the comms fail-safe the machine keeps operating blind — the
	// hazardous legacy behaviour.
	cfg := DefaultConfig(47)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Scheduler().At(3*time.Minute, func(*simclock.Scheduler) {
		if n, ok := s.Medium().Node(NodeCoordinator); ok {
			n.Online = false
		}
	})
	if _, err := s.Run(10 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, r := range s.Forwarder().StopReasons() {
		if r == "comms-watchdog" {
			t.Fatal("unsecured profile latched a comms stop")
		}
	}
}

func TestHarshWeatherStillSafe(t *testing.T) {
	cfg := DefaultConfig(53)
	cfg.Weather.Rain = 0.9
	cfg.Weather.Fog = 0.6
	cfg.Weather.Darkness = 0.8
	rep := runSite(t, cfg, 15*time.Minute, nil)
	// Perception is heavily degraded; the ultrasonic last line plus drone
	// keep collisions at zero even if unsafe proximity rises.
	if rep.Metrics.Collisions != 0 {
		t.Fatalf("collisions = %d in harsh weather", rep.Metrics.Collisions)
	}
}

func TestZeroWorkersNoUnsafeEvents(t *testing.T) {
	cfg := DefaultConfig(59)
	cfg.Workers = 0
	rep := runSite(t, cfg, 10*time.Minute, nil)
	if rep.Metrics.UnsafeEpisodes != 0 || rep.Metrics.Collisions != 0 {
		t.Fatalf("unsafe events without workers: %+v", rep.Metrics)
	}
	if rep.Metrics.LogsDelivered == 0 {
		t.Fatal("no productivity on an empty site")
	}
}

// --- timeline ---

func TestTimelineRecordsIncident(t *testing.T) {
	cfg := DefaultConfig(67)
	cfg.Profile = Secured()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := attack.NewCampaign()
	c.Add(2*time.Minute, 6*time.Minute, attack.NewGNSSSpoof(s.ForwarderGNSS(), geo.V(60, 40)))
	c.Schedule(s.Scheduler())
	if _, err := s.Run(10 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	events := s.Timeline()
	if len(events) == 0 {
		t.Fatal("empty timeline")
	}
	kinds := map[string]bool{}
	for i, e := range events {
		kinds[e.Kind] = true
		if i > 0 && e.At < events[i-1].At {
			t.Fatal("timeline not sorted")
		}
	}
	for _, want := range []string{"mission", "alert", "risk-mode"} {
		if !kinds[want] {
			t.Fatalf("timeline kinds = %v, missing %q", kinds, want)
		}
	}
	full := s.RenderTimeline(0)
	if !strings.Contains(full, "gnss-anomaly") || !strings.Contains(full, "mission") {
		t.Fatalf("full rendering missing content:\n%s", full)
	}
	capped := s.RenderTimeline(20)
	if lines := strings.Count(capped, "\n"); lines > 21 {
		t.Fatalf("cap not applied: %d lines", lines)
	}
}

// --- rendering ---

func TestRenderMap(t *testing.T) {
	cfg := DefaultConfig(61)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := s.RenderMap(80)
	for _, want := range []string{"F", "L", "H", "V", "D", "^"} {
		if !strings.Contains(m, want) {
			t.Fatalf("map missing %q:\n%s", want, m)
		}
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if len(lines) < 10 {
		t.Fatalf("map too small: %d lines", len(lines))
	}
	// Width bounded as requested.
	for _, l := range lines[1:] {
		if len(l) > 80 {
			t.Fatalf("map line exceeds 80 cols: %d", len(l))
		}
	}
}
