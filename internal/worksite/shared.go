package worksite

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// SharedSecurity is the seed-invariant half of security commissioning: the
// site CA, the issued machine identities, and the pairwise channels already
// taken through their handshakes. A batch builds it once; every per-seed
// session then forks the established channels instead of re-running keygen,
// issuance and four SIGMA handshakes.
//
// Sharing key material across seeds is sound because no simulation-observable
// byte depends on it: record lengths are key-independent, replay and decrypt
// rejections carry constant or sequence-derived detail, and packet-drop
// decisions are position- and rng-driven. Skipping the per-session "pki" and
// "handshakes" rng streams is equally invisible — rng.Derive children are
// independent, so sibling streams never shift. The OpenBatch-vs-Open
// differential test in the worksim facade locks both claims byte for byte.
//
// The bundle is immutable after CommissionSecurity returns and safe for
// concurrent forking from pool workers.
type SharedSecurity struct {
	droneEnabled bool
	secured      bool
	bundle       *securityBundle
}

// CommissionSecurity builds the shareable security bundle for cfg. For a
// profile without secure channels the bundle carries nothing and sessions
// commission as usual. The handshakes run on the commissioning clock
// (virtual time zero), exactly when every session would run its own.
func CommissionSecurity(cfg Config) (*SharedSecurity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sh := &SharedSecurity{droneEnabled: cfg.DroneEnabled, secured: cfg.Profile.SecureChannels}
	if !sh.secured {
		return sh, nil
	}
	b, err := buildSecurity(cfg.DroneEnabled, rng.New(cfg.Seed), func() time.Duration { return 0 })
	if err != nil {
		return nil, err
	}
	sh.bundle = b
	return sh, nil
}

// NewShared commissions a worksite like New, adopting the shared security
// bundle instead of re-running keygen and handshakes. A nil bundle is the
// plain New path.
func NewShared(cfg Config, sh *SharedSecurity) (*Site, error) {
	if sh != nil {
		if sh.droneEnabled != cfg.DroneEnabled {
			return nil, fmt.Errorf("worksite: shared security was commissioned with droneEnabled=%v, config wants %v", sh.droneEnabled, cfg.DroneEnabled)
		}
		if cfg.Profile.SecureChannels && !sh.secured {
			return nil, fmt.Errorf("worksite: config wants secure channels but the shared bundle was commissioned without them")
		}
	}
	return newSite(cfg, sh)
}

// NewSessionShared is NewSession over a shared security bundle.
func NewSessionShared(cfg Config, sh *SharedSecurity) (*Session, error) {
	site, err := NewShared(cfg, sh)
	if err != nil {
		return nil, err
	}
	return &Session{site: site}, nil
}
