package worksite

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/sensors"
)

// checkAgainstStdlib runs one input through the fast parser and asserts its
// contract: whenever the fast path accepts, encoding/json must accept the
// same bytes and produce an identical message. (The fast path rejecting is
// always fine — the caller falls back to the stdlib.)
func checkAgainstStdlib(t *testing.T, payload []byte) {
	t.Helper()
	intern := make(internTable)
	var fast wireMsg
	ok := fastParseWireMsg(payload, &fast, intern)

	var std wireMsg
	err := json.Unmarshal(payload, &std)
	if !ok {
		return
	}
	if err != nil {
		t.Fatalf("fast path accepted input the stdlib rejects (%v): %q", err, payload)
	}
	// nil-vs-empty detections is the one representational difference the
	// scratch reuse introduces; the consumers only look at len.
	if len(fast.Detections) == 0 {
		fast.Detections = nil
	}
	if len(std.Detections) == 0 {
		std.Detections = nil
	}
	if !reflect.DeepEqual(fast, std) {
		t.Fatalf("fast path diverges from stdlib on %q:\nfast: %+v\nstd:  %+v", payload, fast, std)
	}
}

// TestWireCodecDifferential feeds the fast parser every message shape the
// worksite actually sends (marshalled by the same encoder production uses)
// plus edge and hostile inputs, checking equivalence with encoding/json.
func TestWireCodecDifferential(t *testing.T) {
	msgs := []wireMsg{
		{},
		{Type: "heartbeat", From: "coordinator"},
		{Type: "status", From: "forwarder-1", PosX: 123.456789012345, PosY: -0.000123,
			State: "driving", GNSSOK: true, GNSSWhy: ""},
		{Type: "status", From: "forwarder-1", PosX: 1e21, PosY: -1e-7,
			GNSSOK: false, GNSSWhy: "position jump exceeds max speed"},
		{Type: "command", From: "coordinator", Command: "clear-stops", Seq: 18446744073709551615},
		{Type: "detections", From: "drone-1", Detections: []sensors.Detection{
			{TargetID: "worker-1", Pos: geo.V(200.123456789, 199.55), Confidence: 0.92, Sensor: "aerial-camera"},
			{TargetID: "", Pos: geo.V(-3.5, 0), Confidence: 0.31, Sensor: "camera", FalsePositive: true},
		}},
		{Type: "detections", From: "drone-1", Detections: []sensors.Detection{}},
	}
	for _, m := range msgs {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstStdlib(t, data)

		// The fast path must accept its own production grammar: a rejected
		// self-encoded message would silently fall back every tick.
		intern := make(internTable)
		var fast wireMsg
		if !fastParseWireMsg(data, &fast, intern) {
			t.Fatalf("fast path rejected self-encoded message %q", data)
		}
	}

	edgeInputs := []string{
		``, `{}`, `null`, `true`, `42`, `"str"`, `[]`,
		`{"type":"heartbeat"`,                             // truncated
		`{"type":"heartbeat",}`,                           // trailing comma
		`{"type":"heartbeat"} garbage`,                    // trailing bytes
		`{"type": "heartbeat" , "from" : "coordinator" }`, // whitespace
		`{"TYPE":"heartbeat"}`,                            // case-insensitive stdlib match
		`{"type":"he\u0061rtbeat"}`,                       // escape
		`{"type":"tick\ttock"}`,                           // raw control char (invalid JSON)
		`{"unknown":{"nested":[1,2,{"x":3}]},"type":"x"}`, // unknown keys
		`{"seq":-1}`, `{"seq":1.5}`, `{"seq":1e3}`,        // non-uint seq forms
		`{"posX":0.1e+5,"posY":-0}`,                   // exotic but valid numbers
		`{"posX":00.1}`, `{"posX":.5}`, `{"posX":5.}`, // invalid numbers
		`{"posX":0x1p3}`, `{"posX":Inf}`, `{"posX":NaN}`, // ParseFloat-only forms
		`{"gnssOk":1}`, `{"gnssOk":"true"}`, // non-bool bools
		`{"detections":null}`,                                // null array
		`{"detections":[null]}`,                              // null element
		`{"detections":[{"pos":{"x":1,"y":2,"z":3}}]}`,       // unknown vec key
		`{"detections":[{"targetId":"w","pos":{"x":1}}]}`,    // partial vec
		`{"type":"detections","detections":[]}`,              // empty array
		`{"type":"a","type":"b"}`,                            // duplicate key
		`{"detections":[{"confidence":1},{"confidence":2}]}`, // multiple elements
		`{"type":"x","detections":[{"falsePositive":true}],"command":"pause"}`,
		"{\"type\":\"caf\xc3\xa9\"}",                // non-ASCII UTF-8
		"{\"type\":\"bad\xff\xfe\"}",                // invalid UTF-8 (stdlib coerces; fast must reject)
		`{"posX":123456789012345678901234567890.5}`, // huge mantissa
		`{"seq":18446744073709551616}`,              // uint64 overflow
	}
	for _, in := range edgeInputs {
		checkAgainstStdlib(t, []byte(in))
	}
}

// TestWireCodecScratchReuse exercises the production calling pattern: one
// scratch message decoded repeatedly with interning, ensuring a later decode
// fully overwrites an earlier one.
func TestWireCodecScratchReuse(t *testing.T) {
	intern := make(internTable)
	var msg wireMsg

	decode := func(m wireMsg) wireMsg {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		msg = wireMsg{Detections: msg.Detections[:0]}
		if !fastParseWireMsg(data, &msg, intern) {
			t.Fatalf("fast path rejected %q", data)
		}
		return msg
	}

	full := wireMsg{Type: "detections", From: "drone-1", Detections: []sensors.Detection{
		{TargetID: "worker-2", Pos: geo.V(1, 2), Confidence: 0.5, Sensor: "aerial-camera"},
	}}
	got := decode(full)
	if got.Type != "detections" || len(got.Detections) != 1 || got.Detections[0].TargetID != "worker-2" {
		t.Fatalf("first decode wrong: %+v", got)
	}
	first := got.Detections[0]

	got = decode(wireMsg{Type: "heartbeat", From: "coordinator"})
	if got.Type != "heartbeat" || got.From != "coordinator" || len(got.Detections) != 0 {
		t.Fatalf("scratch not fully overwritten: %+v", got)
	}

	// Interning must hand back the same string backing across decodes.
	got = decode(full)
	if got.Detections[0].TargetID != first.TargetID || got.Detections[0].Sensor != first.Sensor {
		t.Fatalf("re-decode differs: %+v", got.Detections[0])
	}
}

// FuzzWireCodec drives the differential check with arbitrary bytes: the fast
// parser must never accept anything encoding/json rejects, nor produce a
// different message for anything both accept.
func FuzzWireCodec(f *testing.F) {
	seeds := []string{
		`{"type":"heartbeat","from":"coordinator"}`,
		`{"type":"status","from":"forwarder-1","posX":204.35,"posY":199.9,"state":"driving","gnssOk":true}`,
		`{"type":"detections","from":"drone-1","detections":[{"targetId":"worker-1","pos":{"x":1.5,"y":-2},"confidence":0.9,"sensor":"aerial-camera","falsePositive":false}]}`,
		`{"type":"command","from":"attacker","command":"clear-stops","seq":7}`,
		`{"posX":1e308,"posY":-1e-308}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		intern := make(internTable)
		var fast wireMsg
		ok := fastParseWireMsg(data, &fast, intern)
		if !ok {
			return
		}
		var std wireMsg
		if err := json.Unmarshal(data, &std); err != nil {
			t.Fatalf("fast path accepted input the stdlib rejects (%v): %q", err, data)
		}
		if len(fast.Detections) == 0 {
			fast.Detections = nil
		}
		if len(std.Detections) == 0 {
			std.Detections = nil
		}
		if !reflect.DeepEqual(fast, std) {
			t.Fatalf("divergence on %q:\nfast: %+v\nstd:  %+v", data, fast, std)
		}
	})
}

// TestFallbackDecodeDoesNotLeakScratch locks the fix for a scratch-reuse
// bug: when a message falls back to encoding/json (here forced via an escape
// sequence), the decode must start from a zero message — the stdlib merges
// into within-capacity slice elements without zeroing, so decoding into the
// reused scratch would leak fields of an earlier detections message into the
// new one.
func TestFallbackDecodeDoesNotLeakScratch(t *testing.T) {
	site, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}

	full := []byte(`{"type":"detections","from":"drone-1","detections":` +
		`[{"targetId":"worker-1","pos":{"x":1,"y":2},"confidence":0.92,"sensor":"aerial-camera","falsePositive":true}]}`)
	site.handleAppPayload(NodeForwarder, NodeDrone, full)
	if len(site.droneDets) != 1 || site.droneDets[0].Confidence != 0.92 {
		t.Fatalf("fast-path decode wrong: %+v", site.droneDets)
	}

	// The \u0041 escape forces the stdlib fallback; every omitted field must
	// be zero.
	sparse := []byte(`{"type":"detections","from":"drone-1","detections":[{"targetId":"x\u0041"}]}`)
	site.handleAppPayload(NodeForwarder, NodeDrone, sparse)
	got := site.droneDets
	if len(got) != 1 || got[0].TargetID != "xA" {
		t.Fatalf("fallback decode wrong: %+v", got)
	}
	if got[0].Confidence != 0 || got[0].Sensor != "" || got[0].FalsePositive {
		t.Fatalf("fallback decode leaked fields from the previous message: %+v", got[0])
	}
}
