package worksite

// Concurrent-use safety: the campaign runner executes many Site instances at
// once, so two sites built from the same config must neither share state nor
// perturb each other. Every random stream hangs off the per-site rng root —
// this test pins that property under the race detector.

import (
	"sync"
	"testing"
	"time"
)

func runSecured(t *testing.T, seed int64, d time.Duration) Report {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Profile = Secured()
	site, err := New(cfg)
	if err != nil {
		t.Fatalf("worksite: %v", err)
	}
	rep, err := site.Run(d)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep
}

func TestConcurrentSitesIndependent(t *testing.T) {
	const d = 3 * time.Minute
	baseline := runSecured(t, 42, d)

	// Run the same seed four times concurrently, alongside different seeds
	// as interference.
	var wg sync.WaitGroup
	reports := make([]Report, 4)
	for i := range reports {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			cfg := DefaultConfig(42)
			cfg.Profile = Secured()
			site, err := New(cfg)
			if err != nil {
				t.Errorf("worksite: %v", err)
				return
			}
			rep, err := site.Run(d)
			if err != nil {
				t.Errorf("run: %v", err)
				return
			}
			reports[slot] = rep
		}(i)
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cfg := DefaultConfig(seed)
			site, err := New(cfg)
			if err != nil {
				t.Errorf("worksite: %v", err)
				return
			}
			if _, err := site.Run(d); err != nil {
				t.Errorf("run: %v", err)
			}
		}(int64(100 + i))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, rep := range reports {
		if rep.Metrics != baseline.Metrics {
			t.Fatalf("concurrent run %d diverged from serial baseline:\n%+v\nvs\n%+v",
				i, rep.Metrics, baseline.Metrics)
		}
	}
}
