package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("beta-longer", 2.5)
	out := tab.Render()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, headers, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: all data lines equal length or longer than header line.
	if !strings.Contains(out, "beta-longer") || !strings.Contains(out, "2.500") {
		t.Fatalf("row content missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("plain", "with,comma")
	csv := tab.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("header malformed: %s", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.142"},
		{-2, "-2"},
		{0.5, "0.500"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.in); got != tt.want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := NewFigure("Miss rate", "occlusion")
	a := fig.AddSeries("fw_only")
	b := fig.AddSeries("with_drone")
	a.Add(0.1, 0.2)
	a.Add(0.2, 0.4)
	b.Add(0.1, 0.05)
	b.Add(0.2, 0.1)
	out := fig.Render()
	for _, want := range []string{"Miss rate", "occlusion", "fw_only", "with_drone", "0.400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyFigure(t *testing.T) {
	fig := NewFigure("Empty", "x")
	if out := fig.Render(); !strings.Contains(out, "Empty") {
		t.Fatalf("empty figure rendering: %s", out)
	}
}

func TestTableRows(t *testing.T) {
	tab := NewTable("", "a")
	if tab.Rows() != 0 {
		t.Fatal("fresh table has rows")
	}
	tab.AddRow("x")
	if tab.Rows() != 1 {
		t.Fatal("row count wrong")
	}
}
