package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("beta-longer", 2.5)
	out := tab.Render()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, headers, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: all data lines equal length or longer than header line.
	if !strings.Contains(out, "beta-longer") || !strings.Contains(out, "2.500") {
		t.Fatalf("row content missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("plain", "with,comma")
	csv := tab.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("header malformed: %s", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.142"},
		{-2, "-2"},
		{0.5, "0.500"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.in); got != tt.want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFormatFloatEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		in   float64
		want string
	}{
		{"nan", math.NaN(), "NaN"},
		{"pos-inf", math.Inf(1), "+Inf"},
		{"neg-inf", math.Inf(-1), "-Inf"},
		{"huge", 1e20, "1e+20"},
		{"huge-negative", -2.5e18, "-2.5e+18"},
		{"threshold", 1e15, "1e+15"},
		{"below-threshold-integer", 1e14, "100000000000000"},
		{"max-float", math.MaxFloat64, "1.79769e+308"},
		{"tiny", 1e-12, "0.000"},
		{"negative-zero", math.Copysign(0, -1), "0"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.in); got != tt.want {
			t.Fatalf("%s: FormatFloat(%v) = %q, want %q", tt.name, tt.in, got, tt.want)
		}
	}
}

// TestTableNonFiniteCells: a table row carrying NaN/Inf renders and exports
// without panicking or emitting fixed-point garbage.
func TestTableNonFiniteCells(t *testing.T) {
	tab := NewTable("edge", "metric", "value")
	tab.AddRow("nan", math.NaN())
	tab.AddRow("inf", math.Inf(1))
	out := tab.Render()
	for _, want := range []string{"NaN", "+Inf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	if csv := tab.CSV(); !strings.Contains(csv, "nan,NaN\n") || !strings.Contains(csv, "inf,+Inf\n") {
		t.Fatalf("CSV missing non-finite cells:\n%s", csv)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("ignored title", "plain", "tricky")
	tab.AddRow("a,b", `say "hi"`)
	tab.AddRow("line\nbreak", "clean")
	csv := tab.CSV()
	lines := strings.SplitN(csv, "\n", 2)
	if lines[0] != "plain,tricky" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []string{
		`"a,b"`,           // comma cell quoted
		`"say ""hi"""`,    // quote cell quoted with doubled quotes
		"\"line\nbreak\"", // newline cell quoted
		"clean",           // plain cell untouched
	} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv)
		}
	}
	if strings.Contains(csv, `"clean"`) {
		t.Fatalf("plain cell needlessly quoted:\n%s", csv)
	}
}

func TestFigureRender(t *testing.T) {
	fig := NewFigure("Miss rate", "occlusion")
	a := fig.AddSeries("fw_only")
	b := fig.AddSeries("with_drone")
	a.Add(0.1, 0.2)
	a.Add(0.2, 0.4)
	b.Add(0.1, 0.05)
	b.Add(0.2, 0.1)
	out := fig.Render()
	for _, want := range []string{"Miss rate", "occlusion", "fw_only", "with_drone", "0.400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyFigure(t *testing.T) {
	fig := NewFigure("Empty", "x")
	if out := fig.Render(); !strings.Contains(out, "Empty") {
		t.Fatalf("empty figure rendering: %s", out)
	}
}

func TestTableRows(t *testing.T) {
	tab := NewTable("", "a")
	if tab.Rows() != 0 {
		t.Fatal("fresh table has rows")
	}
	tab.AddRow("x")
	if tab.Rows() != 1 {
		t.Fatal("row count wrong")
	}
}

// TestAddCountRowsByteStable locks the fix for nondeterministic counter-map
// rendering: tables built from the same map must render byte-identically on
// every call, with rows in sorted key order.
func TestAddCountRowsByteStable(t *testing.T) {
	alerts := map[string]int{
		"link-degraded": 4, "replay-rejected": 2, "deauth-flood": 9,
		"gnss-implausible": 1, "decrypt-failure": 7, "mgmt-forgery": 3,
	}
	drops := map[string]int64{"jammed": 120, "weak-signal": 44, "offline": 1}

	render := func() string {
		at := NewTable("IDS alerts", "type", "count")
		AddCountRows(at, alerts)
		rt := NewTable("Radio drops", "cause", "count")
		AddCountRows(rt, drops)
		return at.Render() + rt.Render()
	}
	first := render()
	for i := 0; i < 100; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, got, first)
		}
	}
	wantOrder := []string{"deauth-flood", "decrypt-failure", "gnss-implausible",
		"link-degraded", "mgmt-forgery", "replay-rejected"}
	idx := -1
	for _, k := range wantOrder {
		next := strings.Index(first, k)
		if next < 0 || next < idx {
			t.Fatalf("key %q out of sorted order in rendering:\n%s", k, first)
		}
		idx = next
	}
}
