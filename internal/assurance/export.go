package assurance

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Export is the interchange form of an assurance case: nodes, edges and
// evidence in a stable, tool-consumable JSON layout (the usage scenarios of
// Mohamad et al. [35] — assessment, decision support, litigation — all need
// the case out of the building tool).
type Export struct {
	ID       string        `json:"id"`
	TopGoal  string        `json:"topGoal"`
	Nodes    []Node        `json:"nodes"`
	Edges    []ExportEdge  `json:"edges"`
	Evidence []ExportBound `json:"evidence"`
}

// ExportEdge is one relationship in the exported case.
type ExportEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Kind string `json:"kind"` // supportedBy | inContextOf
}

// ExportBound ties evidence to its solution in the export.
type ExportBound struct {
	SolutionID string   `json:"solutionId"`
	Evidence   Evidence `json:"evidence"`
}

// Export serialises the case structure.
func (c *Case) Export() Export {
	out := Export{ID: c.id, TopGoal: c.TopGoal()}
	for _, id := range c.order {
		out.Nodes = append(out.Nodes, *c.nodes[id])
	}
	for _, parent := range c.order {
		for _, child := range c.supported[parent] {
			out.Edges = append(out.Edges, ExportEdge{From: parent, To: child, Kind: "supportedBy"})
		}
		for _, ctx := range c.inContext[parent] {
			out.Edges = append(out.Edges, ExportEdge{From: parent, To: ctx, Kind: "inContextOf"})
		}
	}
	solutions := make([]string, 0, len(c.evidence))
	for sol := range c.evidence {
		solutions = append(solutions, sol)
	}
	sort.Strings(solutions)
	for _, sol := range solutions {
		for _, ev := range c.evidence[sol] {
			out.Evidence = append(out.Evidence, ExportBound{SolutionID: sol, Evidence: ev})
		}
	}
	return out
}

// MarshalJSON renders the export with stable field ordering.
func (c *Case) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Export())
}

// Import reconstructs a case from an export. The resulting case evaluates
// and renders identically to the original.
func Import(exp Export) (*Case, error) {
	if len(exp.Nodes) == 0 {
		return nil, fmt.Errorf("%w: export has no nodes", ErrBadStructure)
	}
	if exp.Nodes[0].ID != exp.TopGoal {
		return nil, fmt.Errorf("%w: first node %q is not the top goal %q",
			ErrBadStructure, exp.Nodes[0].ID, exp.TopGoal)
	}
	c, err := NewCase(exp.ID, exp.TopGoal, exp.Nodes[0].Statement)
	if err != nil {
		return nil, err
	}
	// Preserve top-goal flags.
	c.nodes[exp.TopGoal].Undeveloped = exp.Nodes[0].Undeveloped
	c.nodes[exp.TopGoal].Module = exp.Nodes[0].Module
	for _, n := range exp.Nodes[1:] {
		if err := c.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, e := range exp.Edges {
		switch e.Kind {
		case "supportedBy":
			if err := c.Support(e.From, e.To); err != nil {
				return nil, err
			}
		case "inContextOf":
			if err := c.InContextOf(e.From, e.To); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unknown edge kind %q", ErrBadStructure, e.Kind)
		}
	}
	for _, b := range exp.Evidence {
		if err := c.Bind(b.SolutionID, b.Evidence); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ParseExport decodes an exported case from JSON.
func ParseExport(data []byte) (*Case, error) {
	var exp Export
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, fmt.Errorf("parse assurance export: %w", err)
	}
	return Import(exp)
}

// EvaluationDiff captures what changed between two evaluations of the same
// case — the continuous incremental assurance of Bloomfield & Rushby
// ("Assurance 2.0", paper Section V): as new evidence arrives during
// operations, only the delta needs review, not the whole case.
type EvaluationDiff struct {
	// NewlySupported lists nodes unsupported before and supported now.
	NewlySupported []string `json:"newlySupported,omitempty"`
	// NewlyUnsupported lists regressions: supported before, unsupported now.
	NewlyUnsupported []string `json:"newlyUnsupported,omitempty"`
	// ScoreDelta is after minus before.
	ScoreDelta float64 `json:"scoreDelta"`
	// TopGoalChanged reports a verdict flip on the top-level claim.
	TopGoalChanged bool `json:"topGoalChanged"`
}

// DiffEvaluations compares two evaluations (typically of the same case
// before and after new evidence was bound).
func DiffEvaluations(before, after Evaluation) EvaluationDiff {
	was := make(map[string]bool, len(before.Unsupported))
	for _, id := range before.Unsupported {
		was[id] = true
	}
	is := make(map[string]bool, len(after.Unsupported))
	for _, id := range after.Unsupported {
		is[id] = true
	}
	var diff EvaluationDiff
	for id := range was {
		if !is[id] {
			diff.NewlySupported = append(diff.NewlySupported, id)
		}
	}
	for id := range is {
		if !was[id] {
			diff.NewlyUnsupported = append(diff.NewlyUnsupported, id)
		}
	}
	sort.Strings(diff.NewlySupported)
	sort.Strings(diff.NewlyUnsupported)
	diff.ScoreDelta = after.Score - before.Score
	diff.TopGoalChanged = before.Supported != after.Supported
	return diff
}
