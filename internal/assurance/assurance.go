// Package assurance implements security assurance cases (SACs) as Section V
// of the paper describes: structured bodies of argument and evidence in Goal
// Structuring Notation (GSN) with a Claim-Argument-Evidence (CAE) rendering,
// organised as modules per concern (safety, cybersecurity, AI) so that
// "compliance requirements necessitate the separation of concerns ... which
// calls for creating and adopting a modular approach".
//
// A Case is a typed directed acyclic graph of goals, strategies, solutions,
// contexts, assumptions and justifications. Solutions bind to Evidence items
// produced elsewhere in the repository (risk registers, interplay analyses,
// IDS logs, simulation reports); evaluation propagates evidence status up the
// argument and yields a completeness score the CE pathway tracks.
package assurance

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeKind types a GSN element.
type NodeKind int

// GSN node kinds.
const (
	KindGoal NodeKind = iota + 1
	KindStrategy
	KindSolution
	KindContext
	KindAssumption
	KindJustification
)

// String returns the GSN element name.
func (k NodeKind) String() string {
	switch k {
	case KindGoal:
		return "Goal"
	case KindStrategy:
		return "Strategy"
	case KindSolution:
		return "Solution"
	case KindContext:
		return "Context"
	case KindAssumption:
		return "Assumption"
	case KindJustification:
		return "Justification"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors matchable with errors.Is.
var (
	ErrDuplicateNode = errors.New("node already exists")
	ErrUnknownNode   = errors.New("unknown node")
	ErrBadStructure  = errors.New("invalid GSN structure")
	ErrCycle         = errors.New("support edge would create a cycle")
)

// Node is one GSN element.
type Node struct {
	ID        string   `json:"id"`
	Kind      NodeKind `json:"kind"`
	Statement string   `json:"statement"`
	// Undeveloped marks goals intentionally left open (GSN diamond).
	Undeveloped bool `json:"undeveloped,omitempty"`
	// Module tags the node's concern module (safety/security/ai/...).
	Module string `json:"module,omitempty"`
}

// Evidence is an artefact bound to a solution.
type Evidence struct {
	ID          string `json:"id"`
	Description string `json:"description"`
	Source      string `json:"source"` // producing module or file
	OK          bool   `json:"ok"`     // whether the artefact supports the claim
}

// Case is a GSN assurance case.
type Case struct {
	id        string
	nodes     map[string]*Node
	supported map[string][]string // parent -> supporting children (goals/strategies/solutions)
	inContext map[string][]string // parent -> context/assumption/justification
	evidence  map[string][]Evidence
	order     []string // insertion order for deterministic rendering
}

// NewCase creates a case with a top-level goal.
func NewCase(id, topGoalID, statement string) (*Case, error) {
	c := &Case{
		id:        id,
		nodes:     make(map[string]*Node),
		supported: make(map[string][]string),
		inContext: make(map[string][]string),
		evidence:  make(map[string][]Evidence),
	}
	if err := c.AddNode(Node{ID: topGoalID, Kind: KindGoal, Statement: statement}); err != nil {
		return nil, err
	}
	return c, nil
}

// TopGoal returns the case's root goal ID.
func (c *Case) TopGoal() string {
	if len(c.order) == 0 {
		return ""
	}
	return c.order[0]
}

// AddNode inserts a node.
func (c *Case) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("%w: empty node ID", ErrBadStructure)
	}
	if _, ok := c.nodes[n.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, n.ID)
	}
	node := n
	c.nodes[n.ID] = &node
	c.order = append(c.order, n.ID)
	return nil
}

// Node returns a node by ID.
func (c *Case) Node(id string) (Node, bool) {
	n, ok := c.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Support adds a supportedBy edge parent -> child, enforcing GSN structure:
// goals are supported by strategies, solutions or sub-goals; strategies by
// goals or solutions; solutions support nothing.
func (c *Case) Support(parentID, childID string) error {
	parent, ok := c.nodes[parentID]
	if !ok {
		return fmt.Errorf("%w: parent %q", ErrUnknownNode, parentID)
	}
	child, ok := c.nodes[childID]
	if !ok {
		return fmt.Errorf("%w: child %q", ErrUnknownNode, childID)
	}
	switch parent.Kind {
	case KindGoal:
		if child.Kind != KindStrategy && child.Kind != KindSolution && child.Kind != KindGoal {
			return fmt.Errorf("%w: goal supported by %s", ErrBadStructure, child.Kind)
		}
	case KindStrategy:
		if child.Kind != KindGoal && child.Kind != KindSolution {
			return fmt.Errorf("%w: strategy supported by %s", ErrBadStructure, child.Kind)
		}
	default:
		return fmt.Errorf("%w: %s cannot be supported", ErrBadStructure, parent.Kind)
	}
	if c.reaches(childID, parentID) {
		return fmt.Errorf("%w: %s -> %s", ErrCycle, parentID, childID)
	}
	c.supported[parentID] = append(c.supported[parentID], childID)
	return nil
}

// InContextOf attaches a context, assumption or justification to a goal or
// strategy.
func (c *Case) InContextOf(parentID, ctxID string) error {
	parent, ok := c.nodes[parentID]
	if !ok {
		return fmt.Errorf("%w: parent %q", ErrUnknownNode, parentID)
	}
	ctx, ok := c.nodes[ctxID]
	if !ok {
		return fmt.Errorf("%w: context %q", ErrUnknownNode, ctxID)
	}
	if parent.Kind != KindGoal && parent.Kind != KindStrategy {
		return fmt.Errorf("%w: context on %s", ErrBadStructure, parent.Kind)
	}
	if ctx.Kind != KindContext && ctx.Kind != KindAssumption && ctx.Kind != KindJustification {
		return fmt.Errorf("%w: %s used as context", ErrBadStructure, ctx.Kind)
	}
	c.inContext[parentID] = append(c.inContext[parentID], ctxID)
	return nil
}

// Bind attaches evidence to a solution.
func (c *Case) Bind(solutionID string, ev Evidence) error {
	n, ok := c.nodes[solutionID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, solutionID)
	}
	if n.Kind != KindSolution {
		return fmt.Errorf("%w: evidence bound to %s", ErrBadStructure, n.Kind)
	}
	c.evidence[solutionID] = append(c.evidence[solutionID], ev)
	return nil
}

// reaches reports whether `to` is reachable from `from` via support edges.
func (c *Case) reaches(from, to string) bool {
	if from == to {
		return true
	}
	for _, next := range c.supported[from] {
		if c.reaches(next, to) {
			return true
		}
	}
	return false
}

// Evaluation is the result of propagating evidence through the argument.
type Evaluation struct {
	Supported bool `json:"supported"` // is the top goal supported?
	// Score is the fraction of solutions with valid evidence.
	Score float64 `json:"score"`
	// Solutions / SupportedSolutions count the evidence leaves.
	Solutions          int `json:"solutions"`
	SupportedSolutions int `json:"supportedSolutions"`
	// Undeveloped lists goals flagged or left without support.
	Undeveloped []string `json:"undeveloped,omitempty"`
	// Unsupported lists node IDs that fail to propagate support.
	Unsupported []string `json:"unsupported,omitempty"`
}

// Evaluate propagates evidence: a solution is supported iff it has at least
// one OK evidence item and no failed item; a goal/strategy is supported iff
// it has children and all are supported; an Undeveloped goal counts as
// unsupported but is reported separately.
func (c *Case) Evaluate() Evaluation {
	var ev Evaluation
	memo := make(map[string]bool, len(c.nodes))
	var visit func(id string) bool
	visit = func(id string) bool {
		if v, ok := memo[id]; ok {
			return v
		}
		n := c.nodes[id]
		var ok bool
		switch n.Kind {
		case KindSolution:
			items := c.evidence[id]
			ok = len(items) > 0
			for _, it := range items {
				if !it.OK {
					ok = false
					break
				}
			}
		case KindGoal, KindStrategy:
			if n.Undeveloped {
				ok = false
				break
			}
			children := c.supported[id]
			ok = len(children) > 0
			for _, ch := range children {
				if !visit(ch) {
					ok = false
				}
			}
		default:
			ok = true // contexts don't gate support
		}
		memo[id] = ok
		return ok
	}

	for _, id := range c.order {
		n := c.nodes[id]
		supported := visit(id)
		switch n.Kind {
		case KindSolution:
			ev.Solutions++
			if supported {
				ev.SupportedSolutions++
			}
		case KindGoal:
			if n.Undeveloped || (len(c.supported[id]) == 0) {
				ev.Undeveloped = append(ev.Undeveloped, id)
			}
		}
		if !supported && (n.Kind == KindGoal || n.Kind == KindStrategy || n.Kind == KindSolution) {
			ev.Unsupported = append(ev.Unsupported, id)
		}
	}
	if ev.Solutions > 0 {
		ev.Score = float64(ev.SupportedSolutions) / float64(ev.Solutions)
	}
	ev.Supported = memo[c.TopGoal()]
	sort.Strings(ev.Undeveloped)
	sort.Strings(ev.Unsupported)
	return ev
}

// RenderGSN returns a deterministic ASCII tree of the argument.
func (c *Case) RenderGSN() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Assurance case %s\n", c.id)
	seen := make(map[string]bool)
	var walk func(id, indent string)
	walk = func(id, indent string) {
		n := c.nodes[id]
		marker := ""
		if n.Undeveloped {
			marker = " <undeveloped>"
		}
		fmt.Fprintf(&b, "%s[%s] %s: %s%s\n", indent, shortKind(n.Kind), n.ID, n.Statement, marker)
		if seen[id] {
			return
		}
		seen[id] = true
		for _, ctx := range c.inContext[id] {
			cn := c.nodes[ctx]
			fmt.Fprintf(&b, "%s  (%s %s: %s)\n", indent, shortKind(cn.Kind), cn.ID, cn.Statement)
		}
		for _, ev := range c.evidence[id] {
			status := "OK"
			if !ev.OK {
				status = "FAILED"
			}
			fmt.Fprintf(&b, "%s  * evidence %s [%s] %s\n", indent, ev.ID, status, ev.Description)
		}
		for _, ch := range c.supported[id] {
			walk(ch, indent+"  ")
		}
	}
	walk(c.TopGoal(), "")
	return b.String()
}

// RenderCAE renders the claim-argument-evidence view.
func (c *Case) RenderCAE() string {
	var b strings.Builder
	var walk func(id string, depth int)
	walk = func(id string, depth int) {
		n := c.nodes[id]
		pad := strings.Repeat("  ", depth)
		switch n.Kind {
		case KindGoal:
			fmt.Fprintf(&b, "%sClaim %s: %s\n", pad, n.ID, n.Statement)
		case KindStrategy:
			fmt.Fprintf(&b, "%sArgument %s: %s\n", pad, n.ID, n.Statement)
		case KindSolution:
			fmt.Fprintf(&b, "%sEvidence %s: %s\n", pad, n.ID, n.Statement)
			for _, ev := range c.evidence[id] {
				fmt.Fprintf(&b, "%s  - %s (%s, ok=%v)\n", pad, ev.ID, ev.Source, ev.OK)
			}
		}
		for _, ch := range c.supported[id] {
			walk(ch, depth+1)
		}
	}
	walk(c.TopGoal(), 0)
	return b.String()
}

func shortKind(k NodeKind) string {
	switch k {
	case KindGoal:
		return "G"
	case KindStrategy:
		return "S"
	case KindSolution:
		return "Sn"
	case KindContext:
		return "C"
	case KindAssumption:
		return "A"
	case KindJustification:
		return "J"
	default:
		return "?"
	}
}

// Modules returns the distinct module tags in the case, sorted — the
// "separation of concerns" index of Section V.
func (c *Case) Modules() []string {
	set := make(map[string]bool)
	for _, id := range c.order {
		if m := c.nodes[id].Module; m != "" {
			set[m] = true
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// NodesByModule returns the node IDs tagged with the given module, in
// insertion order.
func (c *Case) NodesByModule(module string) []string {
	var out []string
	for _, id := range c.order {
		if c.nodes[id].Module == module {
			out = append(out, id)
		}
	}
	return out
}
