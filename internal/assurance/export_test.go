package assurance

import (
	"encoding/json"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	c := buildSmallCase(t)
	if err := c.Bind("Sn1", Evidence{ID: "E1", OK: true, Source: "tests"}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := c.Bind("Sn2", Evidence{ID: "E2", OK: false, Source: "ids"}); err != nil {
		t.Fatalf("Bind: %v", err)
	}

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseExport(data)
	if err != nil {
		t.Fatalf("ParseExport: %v", err)
	}

	if back.RenderGSN() != c.RenderGSN() {
		t.Fatalf("GSN rendering changed across round trip:\n%s\nvs\n%s",
			back.RenderGSN(), c.RenderGSN())
	}
	evA, evB := c.Evaluate(), back.Evaluate()
	if evA.Supported != evB.Supported || evA.Score != evB.Score ||
		evA.Solutions != evB.Solutions {
		t.Fatalf("evaluation changed: %+v vs %+v", evA, evB)
	}
}

func TestExportStructure(t *testing.T) {
	c := buildSmallCase(t)
	exp := c.Export()
	if exp.TopGoal != "G1" {
		t.Fatalf("top goal = %s", exp.TopGoal)
	}
	if len(exp.Nodes) != 7 {
		t.Fatalf("nodes = %d, want 7", len(exp.Nodes))
	}
	support, context := 0, 0
	for _, e := range exp.Edges {
		switch e.Kind {
		case "supportedBy":
			support++
		case "inContextOf":
			context++
		default:
			t.Fatalf("unknown edge kind %q", e.Kind)
		}
	}
	if support != 5 || context != 1 {
		t.Fatalf("edges: support=%d context=%d", support, context)
	}
}

func TestDiffEvaluationsIncrementalAssurance(t *testing.T) {
	c := buildSmallCase(t)
	_ = c.Bind("Sn1", Evidence{ID: "E1", OK: true})
	before := c.Evaluate()

	// New evidence arrives for the second solution.
	_ = c.Bind("Sn2", Evidence{ID: "E2", OK: true})
	after := c.Evaluate()

	diff := DiffEvaluations(before, after)
	if !diff.TopGoalChanged {
		t.Fatal("top goal flip not detected")
	}
	if diff.ScoreDelta <= 0 {
		t.Fatalf("score delta = %v, want positive", diff.ScoreDelta)
	}
	wantSupported := map[string]bool{"Sn2": true, "G3": true, "S1": true, "G1": true}
	for _, id := range diff.NewlySupported {
		if !wantSupported[id] {
			t.Fatalf("unexpected newly supported node %s", id)
		}
	}
	if len(diff.NewlySupported) != len(wantSupported) {
		t.Fatalf("newly supported = %v", diff.NewlySupported)
	}
	if len(diff.NewlyUnsupported) != 0 {
		t.Fatalf("regressions = %v", diff.NewlyUnsupported)
	}
}

func TestDiffEvaluationsRegression(t *testing.T) {
	c := buildSmallCase(t)
	_ = c.Bind("Sn1", Evidence{ID: "E1", OK: true})
	_ = c.Bind("Sn2", Evidence{ID: "E2", OK: true})
	before := c.Evaluate()
	// A failing re-test of E2's artefact regresses the case.
	_ = c.Bind("Sn2", Evidence{ID: "E2-retest", OK: false})
	after := c.Evaluate()
	diff := DiffEvaluations(before, after)
	if len(diff.NewlyUnsupported) == 0 || !diff.TopGoalChanged {
		t.Fatalf("regression not detected: %+v", diff)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ParseExport([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Import(Export{ID: "x"}); err == nil {
		t.Fatal("empty export accepted")
	}
	if _, err := Import(Export{
		ID: "x", TopGoal: "G1",
		Nodes: []Node{{ID: "OTHER", Kind: KindGoal}},
	}); err == nil {
		t.Fatal("mismatched top goal accepted")
	}
	if _, err := Import(Export{
		ID: "x", TopGoal: "G1",
		Nodes: []Node{{ID: "G1", Kind: KindGoal}, {ID: "G2", Kind: KindGoal}},
		Edges: []ExportEdge{{From: "G1", To: "G2", Kind: "mystery"}},
	}); err == nil {
		t.Fatal("unknown edge kind accepted")
	}
}
