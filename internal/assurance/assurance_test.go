package assurance

import (
	"errors"
	"strings"
	"testing"
)

func buildSmallCase(t *testing.T) *Case {
	t.Helper()
	c, err := NewCase("SAC-1", "G1", "The worksite is acceptably secure")
	if err != nil {
		t.Fatalf("NewCase: %v", err)
	}
	nodes := []Node{
		{ID: "S1", Kind: KindStrategy, Statement: "Argue over identified threats"},
		{ID: "G2", Kind: KindGoal, Statement: "Injection attacks are mitigated", Module: "security"},
		{ID: "G3", Kind: KindGoal, Statement: "Jamming is detected", Module: "security"},
		{ID: "Sn1", Kind: KindSolution, Statement: "Secure channel test results"},
		{ID: "Sn2", Kind: KindSolution, Statement: "IDS campaign log"},
		{ID: "C1", Kind: KindContext, Statement: "Fig. 2 use case"},
	}
	for _, n := range nodes {
		if err := c.AddNode(n); err != nil {
			t.Fatalf("AddNode(%s): %v", n.ID, err)
		}
	}
	mustSupport(t, c, "G1", "S1")
	mustSupport(t, c, "S1", "G2")
	mustSupport(t, c, "S1", "G3")
	mustSupport(t, c, "G2", "Sn1")
	mustSupport(t, c, "G3", "Sn2")
	if err := c.InContextOf("G1", "C1"); err != nil {
		t.Fatalf("InContextOf: %v", err)
	}
	return c
}

func mustSupport(t *testing.T, c *Case, p, ch string) {
	t.Helper()
	if err := c.Support(p, ch); err != nil {
		t.Fatalf("Support(%s,%s): %v", p, ch, err)
	}
}

func TestEvaluateUnsupportedWithoutEvidence(t *testing.T) {
	c := buildSmallCase(t)
	ev := c.Evaluate()
	if ev.Supported {
		t.Fatal("case supported without any evidence")
	}
	if ev.Score != 0 {
		t.Fatalf("score = %v, want 0", ev.Score)
	}
	if ev.Solutions != 2 {
		t.Fatalf("solutions = %d, want 2", ev.Solutions)
	}
}

func TestEvaluateFullySupported(t *testing.T) {
	c := buildSmallCase(t)
	if err := c.Bind("Sn1", Evidence{ID: "E1", OK: true, Source: "securechan tests"}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := c.Bind("Sn2", Evidence{ID: "E2", OK: true, Source: "ids log"}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	ev := c.Evaluate()
	if !ev.Supported {
		t.Fatalf("case not supported with full evidence: unsupported=%v", ev.Unsupported)
	}
	if ev.Score != 1 {
		t.Fatalf("score = %v, want 1", ev.Score)
	}
}

func TestFailedEvidenceBreaksSupport(t *testing.T) {
	c := buildSmallCase(t)
	_ = c.Bind("Sn1", Evidence{ID: "E1", OK: true})
	_ = c.Bind("Sn2", Evidence{ID: "E2", OK: false}) // failing artefact
	ev := c.Evaluate()
	if ev.Supported {
		t.Fatal("case supported despite failed evidence")
	}
	if ev.SupportedSolutions != 1 {
		t.Fatalf("supported solutions = %d, want 1", ev.SupportedSolutions)
	}
}

func TestUndevelopedGoalReported(t *testing.T) {
	c := buildSmallCase(t)
	if err := c.AddNode(Node{ID: "G4", Kind: KindGoal, Statement: "AI validity argued", Undeveloped: true}); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	mustSupport(t, c, "S1", "G4")
	_ = c.Bind("Sn1", Evidence{ID: "E1", OK: true})
	_ = c.Bind("Sn2", Evidence{ID: "E2", OK: true})
	ev := c.Evaluate()
	if ev.Supported {
		t.Fatal("case supported despite undeveloped goal")
	}
	found := false
	for _, id := range ev.Undeveloped {
		if id == "G4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("undeveloped = %v, want G4", ev.Undeveloped)
	}
}

func TestStructuralRules(t *testing.T) {
	c := buildSmallCase(t)
	if err := c.AddNode(Node{ID: "Sn3", Kind: KindSolution, Statement: "x"}); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := c.Support("Sn1", "Sn3"); !errors.Is(err, ErrBadStructure) {
		t.Fatalf("solution supporting solution: err = %v", err)
	}
	if err := c.Support("G1", "C1"); !errors.Is(err, ErrBadStructure) {
		t.Fatalf("goal supported by context: err = %v", err)
	}
	if err := c.Bind("G1", Evidence{ID: "E"}); !errors.Is(err, ErrBadStructure) {
		t.Fatalf("evidence on goal: err = %v", err)
	}
	if err := c.InContextOf("Sn1", "C1"); !errors.Is(err, ErrBadStructure) {
		t.Fatalf("context on solution: err = %v", err)
	}
	if err := c.Support("G1", "GHOST"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown child: err = %v", err)
	}
	if err := c.AddNode(Node{ID: "G1", Kind: KindGoal}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate node: err = %v", err)
	}
}

func TestCycleRejected(t *testing.T) {
	c := buildSmallCase(t)
	// G2 -> S1 would close a cycle G1->S1->G2->S1... wait S1 is strategy;
	// goal G2 supported by strategy S1 creates S1->G2->S1.
	if err := c.Support("G2", "S1"); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestRenderGSNAndCAE(t *testing.T) {
	c := buildSmallCase(t)
	_ = c.Bind("Sn1", Evidence{ID: "E1", OK: true, Description: "handshake tests pass"})
	gsn := c.RenderGSN()
	for _, want := range []string{"G1", "S1", "Sn1", "C1", "E1", "OK"} {
		if !strings.Contains(gsn, want) {
			t.Fatalf("GSN rendering missing %q:\n%s", want, gsn)
		}
	}
	cae := c.RenderCAE()
	if !strings.Contains(cae, "Claim G1") || !strings.Contains(cae, "Argument S1") ||
		!strings.Contains(cae, "Evidence Sn1") {
		t.Fatalf("CAE rendering malformed:\n%s", cae)
	}
}

func TestModules(t *testing.T) {
	c := buildSmallCase(t)
	mods := c.Modules()
	if len(mods) != 1 || mods[0] != "security" {
		t.Fatalf("modules = %v", mods)
	}
	ids := c.NodesByModule("security")
	if len(ids) != 2 {
		t.Fatalf("security nodes = %v", ids)
	}
}

func TestDeterministicRendering(t *testing.T) {
	a := buildSmallCase(t).RenderGSN()
	b := buildSmallCase(t).RenderGSN()
	if a != b {
		t.Fatal("GSN rendering not deterministic")
	}
}
