// Package experiments implements the E1–E9 experiment runners of
// EXPERIMENTS.md — one per table/figure of the paper (and per quantified
// claim, where the paper's artifact is descriptive). The benchmark harness
// (bench_test.go), the command-line tools and the examples all call these
// runners, so every reported number has exactly one producing code path.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/risk"
	"repro/internal/scenario"
	"repro/internal/sotif"
	"repro/internal/worksite"
)

// E1Result is the Fig. 1 worksite baseline: the partially autonomous site
// operates productively and safely, with and without the defence stack.
type E1Result struct {
	Unsecured worksite.Report
	Secured   worksite.Report
	Table     *report.Table
}

// E1WorksiteBaseline runs the clean (attack-free) baseline scenario under
// both profiles.
func E1WorksiteBaseline(ctx context.Context, seed int64, d time.Duration) (E1Result, error) {
	run := func(profile worksite.SecurityProfile) (worksite.Report, error) {
		return scenario.Run(ctx, scenario.Baseline().WithProfile(profile), seed, d)
	}
	uns, err := run(worksite.Unsecured())
	if err != nil {
		return E1Result{}, fmt.Errorf("e1: %w", err)
	}
	sec, err := run(worksite.Secured())
	if err != nil {
		return E1Result{}, fmt.Errorf("e1: %w", err)
	}
	t := report.NewTable(
		fmt.Sprintf("E1 (Fig. 1): worksite baseline, %v simulated, seed %d", d, seed),
		"profile", "logs", "distance_m", "safety_stops", "unsafe_episodes", "collisions", "tracks_confirmed", "false_alarms")
	add := func(name string, r worksite.Report) {
		m := r.Metrics
		t.AddRow(name, m.LogsDelivered, m.DistanceM, m.SafetyStops,
			m.UnsafeEpisodes, m.Collisions, m.TracksConfirmed, m.FalseAlarms)
	}
	add("unsecured", uns)
	add("secured", sec)
	return E1Result{Unsecured: uns, Secured: sec, Table: t}, nil
}

// E2Point is one sweep point of the drone point-of-view experiment.
type E2Point struct {
	Occlusion     float64
	MissFwOnly    float64
	MissWithDrone float64
}

// E2Result is the Fig. 2 reproduction: detection performance vs occlusion
// density, forwarder-only vs forwarder+drone.
type E2Result struct {
	Points []E2Point
	Figure *report.Figure
}

// E2DronePOV sweeps occlusion density and measures people-detection miss
// rates with and without the drone's additional point of view.
func E2DronePOV(seed int64, trials int) E2Result {
	densities := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	fig := report.NewFigure(
		fmt.Sprintf("E2 (Fig. 2): people-detection miss rate vs occlusion density (%d trials/point)", trials),
		"occlusion")
	fwOnly := fig.AddSeries("miss_fw_only")
	withDrone := fig.AddSeries("miss_with_drone")
	var res E2Result
	for _, d := range densities {
		sc := sotif.Scenario{ID: fmt.Sprintf("occ-%.2f", d), OcclusionDensity: d}
		m0 := core.DetectionMissRate(seed, sc, false, trials)
		m1 := core.DetectionMissRate(seed, sc, true, trials)
		fwOnly.Add(d, m0)
		withDrone.Add(d, m1)
		res.Points = append(res.Points, E2Point{Occlusion: d, MissFwOnly: m0, MissWithDrone: m1})
	}
	res.Figure = fig
	return res
}

// E2aPoint is one confirmation-policy cell of the fusion ablation.
type E2aPoint struct {
	ConfirmHits   int
	MissFwOnly    float64
	MissWithDrone float64
}

// E2aResult is the fusion-policy ablation result.
type E2aResult struct {
	Points []E2aPoint
	Table  *report.Table
}

// E2aFusionPolicy is the fusion-policy ablation: confirmation threshold K
// trades detection latency/false alarms.
func E2aFusionPolicy(seed int64, trials int) E2aResult {
	t := report.NewTable(
		fmt.Sprintf("E2a: fusion confirmation policy ablation (occlusion 0.25, %d trials)", trials),
		"confirm_hits", "miss_rate_fw_only", "miss_rate_with_drone")
	sc := sotif.Scenario{ID: "policy", OcclusionDensity: 0.25}
	var res E2aResult
	for _, k := range []int{1, 2, 3} {
		m0 := core.DetectionMissRateWithPolicy(seed, sc, false, trials, k)
		m1 := core.DetectionMissRateWithPolicy(seed, sc, true, trials, k)
		t.AddRow(k, m0, m1)
		res.Points = append(res.Points, E2aPoint{ConfirmHits: k, MissFwOnly: m0, MissWithDrone: m1})
	}
	res.Table = t
	return res
}

// E3CharacteristicTable regenerates the paper's Table I from the risk
// catalog, with per-characteristic threat and control counts from the use
// case model.
func E3CharacteristicTable() *report.Table {
	uc := risk.BuildUseCase()
	t := report.NewTable("E3 (Table I): forestry-specific characteristics with model coverage",
		"id", "characteristic", "threats", "controls", "description")
	for _, cov := range risk.CoverageByCharacteristic(&uc.Model) {
		t.AddRow(cov.Characteristic.ID, cov.Characteristic.Name,
			len(cov.ThreatIDs), len(cov.ControlIDs), cov.Characteristic.Description)
	}
	return t
}

// E4Result is the Fig. 3 knowledge-transfer reproduction.
type E4Result struct {
	Transfer risk.TransferReport
	Table    *report.Table
}

// E4KnowledgeTransfer evaluates the knowledge-transfer claim: the forestry
// threat profile assembled from mining + automotive + forestry-native
// scenarios covers every Table-I characteristic.
func E4KnowledgeTransfer() E4Result {
	uc := risk.BuildUseCase()
	rep := risk.TransferKnowledge(&uc.Model)
	t := report.NewTable("E4 (Fig. 3): knowledge transfer into the forestry threat profile",
		"source_domain", "threat_scenarios")
	for _, d := range []string{risk.DomainMining, risk.DomainAutomotive, risk.DomainForestry} {
		t.AddRow(d, rep.ByDomain[d])
	}
	t.AddRow("table-I coverage", fmt.Sprintf("%v (uncovered: %d)", rep.FullyCovered, len(rep.UncoveredChars)))
	return E4Result{Transfer: rep, Table: t}
}

// E5Row is one cell of the attack × profile matrix.
type E5Row struct {
	Attack  string
	Profile string
	Report  worksite.Report
}

// E5Result is the attack-interplay matrix (Section III-B / IV-C).
type E5Result struct {
	Rows  []E5Row
	Table *report.Table
}

// E5AttackNames lists the matrix rows: the clean control followed by every
// attack class in the scenario arming registry, sorted. Deriving the list
// from the registry means a newly registered attack class appears in the
// matrix (and in every CLI help string) without touching this package.
func E5AttackNames() []string {
	return append([]string{"none"}, scenario.AttackNames()...)
}

// E5AttackMatrix runs every registered attack class against both profiles
// under identical seeds and reports safety/productivity/security outcomes.
// Each cell is the class's catalog scenario with the profile swapped in, so
// the matrix and the scenario API can never disagree about an attack's
// schedule or parameters.
func E5AttackMatrix(ctx context.Context, seed int64, d time.Duration) (E5Result, error) {
	var res E5Result
	t := report.NewTable(
		fmt.Sprintf("E5: attack x defence matrix, %v simulated, seed %d", d, seed),
		"attack", "profile", "logs", "unsafe_episodes", "collisions", "nav_err_max_m",
		"cmds_applied", "forgeries_blocked", "replays_blocked", "alert_types")
	for _, atk := range E5AttackNames() {
		spec, err := scenario.ForAttack(atk)
		if err != nil {
			return E5Result{}, fmt.Errorf("e5 %s: %w", atk, err)
		}
		for _, prof := range []struct {
			name    string
			profile worksite.SecurityProfile
		}{
			{"unsecured", worksite.Unsecured()},
			{"secured", worksite.Secured()},
		} {
			rep, err := scenario.Run(ctx, spec.WithProfile(prof.profile), seed, d)
			if err != nil {
				return E5Result{}, fmt.Errorf("e5 %s/%s: %w", atk, prof.name, err)
			}
			m := rep.Metrics
			t.AddRow(atk, prof.name, m.LogsDelivered, m.UnsafeEpisodes, m.Collisions,
				m.NavErrMaxM, m.CommandsApplied, m.ForgeriesBlocked, m.ReplaysBlocked, len(rep.Alerts))
			res.Rows = append(res.Rows, E5Row{Attack: atk, Profile: prof.name, Report: rep})
		}
	}
	res.Table = t
	return res, nil
}

// E5bRow is one agility cell of the availability ablation.
type E5bRow struct {
	Agility     bool
	Logs        int
	ChannelHops int
	JammedDrops int64
	LinkAlerts  int
}

// E5bResult is the channel-agility ablation result.
type E5bResult struct {
	Rows  []E5bRow
	Table *report.Table
}

// E5bChannelAgility is the availability ablation: a narrowband jammer against
// the secured site with and without the channel-agility response.
func E5bChannelAgility(ctx context.Context, seed int64, d time.Duration) (E5bResult, error) {
	var res E5bResult
	t := report.NewTable(
		fmt.Sprintf("E5b: narrowband jamming vs channel agility, %v simulated", d),
		"agility", "logs", "channel_hops", "jammed_drops", "link_alerts")
	spec, err := scenario.Get("rf-jamming-narrowband")
	if err != nil {
		return E5bResult{}, fmt.Errorf("e5b: %w", err)
	}
	for _, agility := range []bool{false, true} {
		prof := worksite.Secured()
		prof.ChannelAgility = agility
		rep, err := scenario.Run(ctx, spec.WithProfile(prof), seed, d)
		if err != nil {
			return E5bResult{}, fmt.Errorf("e5b: %w", err)
		}
		row := E5bRow{
			Agility:     agility,
			Logs:        rep.Metrics.LogsDelivered,
			ChannelHops: rep.Metrics.ChannelHops,
			JammedDrops: rep.Radio["jammed"],
			LinkAlerts:  rep.Alerts["link-degraded"],
		}
		t.AddRow(row.Agility, row.Logs, row.ChannelHops, row.JammedDrops, row.LinkAlerts)
		res.Rows = append(res.Rows, row)
	}
	res.Table = t
	return res, nil
}

// E5aIDSLatency measures the IDS ablation: with the IDS on, how quickly the
// de-auth flood is flagged, and how much damage (failed sends) accumulates
// before the first alert.
type E5aResult struct {
	DetectionLatency time.Duration
	Detected         bool
	SendFailures     int
	Table            *report.Table
}

// E5aIDSLatencyRun executes the IDS-latency ablation.
func E5aIDSLatencyRun(ctx context.Context, seed int64, d time.Duration) (E5aResult, error) {
	spec, err := scenario.ForAttack("deauth-flood")
	if err != nil {
		return E5aResult{}, err
	}
	prof := worksite.Secured()
	prof.ProtectedMgmt = false // leave the flood effective so the IDS has something to catch
	sess, _, err := scenario.Build(spec.WithProfile(prof), seed, d)
	if err != nil {
		return E5aResult{}, err
	}
	rep, err := sess.Run(ctx, d)
	if err != nil {
		return E5aResult{}, err
	}
	res := E5aResult{SendFailures: rep.Metrics.SendFailures}
	if ids := sess.Site().IDS(); ids != nil {
		if lat, ok := ids.DetectionLatency("deauth-flood", "deauth"); ok {
			res.DetectionLatency = lat
			res.Detected = true
		}
	}
	t := report.NewTable("E5a: IDS detection of de-auth flood (protected mgmt off)",
		"detected", "detection_latency", "send_failures_total")
	t.AddRow(res.Detected, res.DetectionLatency.String(), res.SendFailures)
	res.Table = t
	return res, nil
}
