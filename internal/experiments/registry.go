package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/risk"
	"repro/internal/worksite"
)

// This file registers every experiment in the campaign registry so the
// benchmark harness, the campaign CLI and future tooling discover them by ID
// instead of hard-coding loose function calls. Each registration carries the
// metric extraction for its result type; campaign metrics are deterministic
// functions of (seed, params) — wall-clock rates (E9 record throughput, E9a
// rekey sweep) stay in their tables and in the testing.B micro-benchmarks.

func init() {
	campaign.Register(campaign.Experiment{
		ID:          "e1",
		Section:     "Fig. 1",
		Description: "worksite baseline: productivity and safety, unsecured vs secured",
		Defaults:    campaign.Params{Duration: 20 * time.Minute},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E1WorksiteBaseline(ctx, p.Seed, p.Duration)
			if err != nil {
				return campaign.Outcome{}, err
			}
			m := make(map[string]float64)
			addWorksiteMetrics(m, "unsecured", res.Unsecured)
			addWorksiteMetrics(m, "secured", res.Secured)
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e2",
		Section:     "Fig. 2",
		Description: "people-detection miss rate vs occlusion, forwarder-only vs with drone",
		Defaults:    campaign.Params{Trials: 60},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res := E2DronePOV(p.Seed, p.Trials)
			m := make(map[string]float64)
			var sumFw, sumDrone float64
			for _, pt := range res.Points {
				sumFw += pt.MissFwOnly
				sumDrone += pt.MissWithDrone
			}
			n := float64(len(res.Points))
			m["miss_fw_only/mean"] = sumFw / n
			m["miss_with_drone/mean"] = sumDrone / n
			last := res.Points[len(res.Points)-1]
			m[fmt.Sprintf("miss_fw_only/occ=%.2f", last.Occlusion)] = last.MissFwOnly
			m[fmt.Sprintf("miss_with_drone/occ=%.2f", last.Occlusion)] = last.MissWithDrone
			m[fmt.Sprintf("miss_reduction/occ=%.2f", last.Occlusion)] = last.MissFwOnly - last.MissWithDrone
			return campaign.Outcome{Figures: []*report.Figure{res.Figure}, Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e2a",
		Section:     "Fig. 2 ablation",
		Description: "fusion confirmation-policy ablation (K = 1..3 hits)",
		Defaults:    campaign.Params{Trials: 40},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res := E2aFusionPolicy(p.Seed, p.Trials)
			m := make(map[string]float64)
			for _, pt := range res.Points {
				m[fmt.Sprintf("miss_fw_only/k=%d", pt.ConfirmHits)] = pt.MissFwOnly
				m[fmt.Sprintf("miss_with_drone/k=%d", pt.ConfirmHits)] = pt.MissWithDrone
			}
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:              "e3",
		Section:         "Table I",
		Description:     "forestry-specific characteristics with threat/control coverage",
		SeedIndependent: true,
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			t := E3CharacteristicTable()
			uc := risk.BuildUseCase()
			m := map[string]float64{"characteristics": float64(t.Rows())}
			var threats, controls float64
			for _, cov := range risk.CoverageByCharacteristic(&uc.Model) {
				threats += float64(len(cov.ThreatIDs))
				controls += float64(len(cov.ControlIDs))
			}
			m["threat_links"] = threats
			m["control_links"] = controls
			return campaign.Outcome{Tables: tables(t), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:              "e4",
		Section:         "Fig. 3",
		Description:     "knowledge transfer into the forestry threat profile",
		SeedIndependent: true,
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res := E4KnowledgeTransfer()
			m := map[string]float64{
				"scenarios/mining":     float64(res.Transfer.ByDomain[risk.DomainMining]),
				"scenarios/automotive": float64(res.Transfer.ByDomain[risk.DomainAutomotive]),
				"scenarios/forestry":   float64(res.Transfer.ByDomain[risk.DomainForestry]),
				"fully_covered":        b2f(res.Transfer.FullyCovered),
				"uncovered":            float64(len(res.Transfer.UncoveredChars)),
			}
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e5",
		Section:     "III-B / IV-C",
		Description: "attack x defence matrix over every implemented attack class",
		Defaults:    campaign.Params{Duration: 10 * time.Minute},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E5AttackMatrix(ctx, p.Seed, p.Duration)
			if err != nil {
				return campaign.Outcome{}, err
			}
			// Every row exports the same security-outcome keys: which ones
			// are non-zero is itself an experimental result, and keeping the
			// export uniform means no attack-name knowledge outside the
			// scenario registry.
			m := make(map[string]float64)
			for _, row := range res.Rows {
				key := row.Attack + "/" + row.Profile
				mm := row.Report.Metrics
				m["logs/"+key] = float64(mm.LogsDelivered)
				m["unsafe/"+key] = float64(mm.UnsafeEpisodes)
				m["cmds_applied/"+key] = float64(mm.CommandsApplied)
				m["forgeries_blocked/"+key] = float64(mm.ForgeriesBlocked)
				m["replays_blocked/"+key] = float64(mm.ReplaysBlocked)
				m["nav_err_max_m/"+key] = mm.NavErrMaxM
			}
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e5a",
		Section:     "IV-C ablation",
		Description: "IDS detection latency for the de-auth flood",
		Defaults:    campaign.Params{Duration: 8 * time.Minute},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E5aIDSLatencyRun(ctx, p.Seed, p.Duration)
			if err != nil {
				return campaign.Outcome{}, err
			}
			m := map[string]float64{
				"detected":            b2f(res.Detected),
				"detection_latency_s": res.DetectionLatency.Seconds(),
				"send_failures":       float64(res.SendFailures),
			}
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e5b",
		Section:     "IV-C ablation",
		Description: "narrowband jamming vs the channel-agility response",
		Defaults:    campaign.Params{Duration: 10 * time.Minute},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E5bChannelAgility(ctx, p.Seed, p.Duration)
			if err != nil {
				return campaign.Outcome{}, err
			}
			m := make(map[string]float64)
			for _, row := range res.Rows {
				key := "agility=off"
				if row.Agility {
					key = "agility=on"
				}
				m["logs/"+key] = float64(row.Logs)
				m["channel_hops/"+key] = float64(row.ChannelHops)
				m["jammed_drops/"+key] = float64(row.JammedDrops)
				m["link_alerts/"+key] = float64(row.LinkAlerts)
			}
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:              "e6",
		Section:         "IV-D",
		Description:     "combined TARA + IEC TS 63074 interplay, untreated vs treated",
		SeedIndependent: true,
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E6CombinedRisk()
			if err != nil {
				return campaign.Outcome{}, err
			}
			m := map[string]float64{
				"scenarios_assessed":   float64(len(res.Before)),
				"risk_total/untreated": sumRisk(res.Before),
				"risk_total/treated":   sumRisk(res.After),
				"meets_plr/untreated":  countMeets(res.InterBefore),
				"meets_plr/treated":    countMeets(res.InterAfter),
			}
			return campaign.Outcome{Tables: tables(res.Register, res.Interplay), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e7",
		Section:     "V",
		Description: "assurance case and CE conformity, secured vs unsecured pathway",
		Defaults:    campaign.Params{Duration: 10 * time.Minute},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E7Assurance(ctx, p.Seed, p.Duration)
			if err != nil {
				return campaign.Outcome{}, err
			}
			m := map[string]float64{
				"sac_score/secured":           res.Secured.SACEval.Score,
				"sac_score/unsecured":         res.Unsecured.SACEval.Score,
				"sac_supported/secured":       b2f(res.Secured.SACEval.Supported),
				"ce_ready/secured":            b2f(res.Secured.Conformity.Ready),
				"ce_ready/unsecured":          b2f(res.Unsecured.Conformity.Ready),
				"mandatory_covered/secured":   float64(res.Secured.Conformity.MandatoryCovered),
				"mandatory_covered/unsecured": float64(res.Unsecured.Conformity.MandatoryCovered),
			}
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e8",
		Section:     "III-D",
		Description: "simulation-validity metrics discriminate synthetic sources",
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E8SimValidity(p.Seed)
			if err != nil {
				return campaign.Outcome{}, err
			}
			m := make(map[string]float64)
			discriminates := 1.0
			for _, r := range res.Results {
				m["ks/"+r.Name] = r.KS
				m["valid/"+r.Name] = b2f(r.Valid)
				if (r.Name == "matched") != r.Valid {
					discriminates = 0
				}
			}
			m["discriminates"] = discriminates
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e9",
		Section:     "IV-A/B",
		Description: "secure-substrate handshake and boot-chain tamper sweep",
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res, err := E9SecureSubstrate(p.Seed, 0)
			if err != nil {
				return campaign.Outcome{}, err
			}
			// No record loop (records = 0): RecordsPerSec is wall-clock and
			// deliberately not a campaign metric; throughput lives in
			// BenchmarkSealOpen256.
			m := map[string]float64{
				"handshake_ok":     b2f(res.HandshakeOK),
				"tampers_detected": float64(res.TamperTable.Rows() - 1),
			}
			return campaign.Outcome{Tables: tables(res.TamperTable), Metrics: m}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e9a",
		Section:     "IV-A ablation",
		Description: "rekey interval vs record throughput (wall-clock; table only)",
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			t, err := E9aRekeySweep(p.Seed)
			if err != nil {
				return campaign.Outcome{}, err
			}
			// Throughput is wall-clock: no deterministic metrics to aggregate.
			return campaign.Outcome{Tables: tables(t)}, nil
		},
	})

	campaign.Register(campaign.Experiment{
		ID:          "e10",
		Section:     "ISO 21448 §10",
		Description: "SOTIF unknown-space exploration, forwarder-only vs with drone",
		Defaults:    campaign.Params{Scenarios: 12, Trials: 25},
		Run: func(ctx context.Context, p campaign.Params) (campaign.Outcome, error) {
			res := E10SOTIFExploration(p.Seed, p.Scenarios, p.Trials)
			m := map[string]float64{
				"unknown_unsafe/forwarder-only": float64(res.Improvement.UnsafeBefore),
				"unknown_unsafe/with-drone":     float64(res.Improvement.UnsafeAfter),
				"moved_to_safe":                 float64(res.Improvement.Moved),
				"residual/forwarder-only":       res.WithoutDrone.ResidualRisk,
				"residual/with-drone":           res.WithDrone.ResidualRisk,
				"discovered/forwarder-only":     float64(len(res.WithoutDrone.Discovered)),
				"discovered/with-drone":         float64(len(res.WithDrone.Discovered)),
			}
			return campaign.Outcome{Tables: tables(res.Table), Metrics: m}, nil
		},
	})
}

// tables wraps a table list literal.
func tables(ts ...*report.Table) []*report.Table { return ts }

// addWorksiteMetrics flattens a worksite report's KPIs under a profile prefix.
func addWorksiteMetrics(m map[string]float64, profile string, r worksite.Report) {
	mm := r.Metrics
	m["logs/"+profile] = float64(mm.LogsDelivered)
	m["distance_m/"+profile] = mm.DistanceM
	m["safety_stops/"+profile] = float64(mm.SafetyStops)
	m["unsafe/"+profile] = float64(mm.UnsafeEpisodes)
	m["collisions/"+profile] = float64(mm.Collisions)
	m["tracks_confirmed/"+profile] = float64(mm.TracksConfirmed)
	m["false_alarms/"+profile] = float64(mm.FalseAlarms)
	m["min_worker_dist_m/"+profile] = mm.MinWorkerDistM
}

func sumRisk(rs []risk.AssessedRisk) float64 {
	var s float64
	for _, r := range rs {
		s += float64(r.RiskValue)
	}
	return s
}

func countMeets(rs []risk.SecurityInformedPL) float64 {
	var n float64
	for _, r := range rs {
		if r.MeetsRequired {
			n++
		}
	}
	return n
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
