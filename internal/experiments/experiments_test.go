package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestE1Baseline(t *testing.T) {
	res, err := E1WorksiteBaseline(context.Background(), 42, 15*time.Minute)
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	if res.Unsecured.Metrics.LogsDelivered == 0 || res.Secured.Metrics.LogsDelivered == 0 {
		t.Fatalf("baseline productivity zero: unsecured=%d secured=%d",
			res.Unsecured.Metrics.LogsDelivered, res.Secured.Metrics.LogsDelivered)
	}
	if res.Table.Rows() != 2 {
		t.Fatalf("table rows = %d", res.Table.Rows())
	}
}

func TestE2DronePOVShape(t *testing.T) {
	res := E2DronePOV(7, 40)
	if len(res.Points) != 8 {
		t.Fatalf("points = %d, want 8", len(res.Points))
	}
	// The paper's claim: at high occlusion the drone recovers detections.
	last := res.Points[len(res.Points)-1]
	if last.MissWithDrone >= last.MissFwOnly {
		t.Fatalf("at occlusion %.2f: drone miss %.2f >= fw-only %.2f",
			last.Occlusion, last.MissWithDrone, last.MissFwOnly)
	}
	// Forwarder-only misses grow with occlusion (first vs last).
	if res.Points[0].MissFwOnly >= last.MissFwOnly {
		t.Fatalf("fw-only miss rate not increasing: %.2f -> %.2f",
			res.Points[0].MissFwOnly, last.MissFwOnly)
	}
	if !strings.Contains(res.Figure.Render(), "miss_with_drone") {
		t.Fatal("figure rendering incomplete")
	}
}

func TestE2aFusionPolicy(t *testing.T) {
	res := E2aFusionPolicy(7, 30)
	if res.Table.Rows() != 3 || len(res.Points) != 3 {
		t.Fatalf("rows = %d points = %d, want 3 policies", res.Table.Rows(), len(res.Points))
	}
}

func TestE3TableI(t *testing.T) {
	tab := E3CharacteristicTable()
	if tab.Rows() != 8 {
		t.Fatalf("Table I rows = %d, want 8", tab.Rows())
	}
	out := tab.Render()
	for _, want := range []string{"Remote and Isolated Locations", "Heavy Machinery", "Autonomous Machinery"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q", want)
		}
	}
}

func TestE4Transfer(t *testing.T) {
	res := E4KnowledgeTransfer()
	if !res.Transfer.FullyCovered {
		t.Fatalf("uncovered characteristics: %v", res.Transfer.UncoveredChars)
	}
	if res.Table.Rows() != 4 {
		t.Fatalf("rows = %d", res.Table.Rows())
	}
}

func TestE5MatrixShape(t *testing.T) {
	res, err := E5AttackMatrix(context.Background(), 11, 8*time.Minute)
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	// The matrix covers the clean control plus every attack class in the
	// scenario arming registry, each under both profiles.
	want := len(E5AttackNames()) * 2
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d (%d attacks x 2 profiles)", len(res.Rows), want, len(E5AttackNames()))
	}
	byKey := make(map[string]E5Row, len(res.Rows))
	for _, r := range res.Rows {
		byKey[r.Attack+"/"+r.Profile] = r
	}
	// Injection: unsecured applies forged commands, secured blocks them.
	if byKey["command-injection/unsecured"].Report.Metrics.CommandsApplied == 0 {
		t.Fatal("unsecured injection applied no commands")
	}
	if byKey["command-injection/secured"].Report.Metrics.CommandsApplied != 0 {
		t.Fatal("secured site applied forged commands")
	}
	// GNSS spoof: unsecured nav error exceeds secured.
	if byKey["gnss-spoof/unsecured"].Report.Metrics.NavErrMaxM <=
		byKey["gnss-spoof/secured"].Report.Metrics.NavErrMaxM {
		t.Fatal("spoofed nav error not worse unsecured")
	}
	// Secured site raises alerts under every attack (not under none).
	for _, atk := range []string{"rf-jamming", "deauth-flood", "gnss-spoof", "command-injection"} {
		if len(byKey[atk+"/secured"].Report.Alerts) == 0 {
			t.Fatalf("secured profile produced no alerts under %s", atk)
		}
	}
}

func TestE5bChannelAgility(t *testing.T) {
	res, err := E5bChannelAgility(context.Background(), 17, 12*time.Minute)
	if err != nil {
		t.Fatalf("E5b: %v", err)
	}
	if res.Table.Rows() != 2 || len(res.Rows) != 2 {
		t.Fatalf("rows = %d", res.Table.Rows())
	}
	out := res.Table.Render()
	if !strings.Contains(out, "true") {
		t.Fatalf("agility row missing:\n%s", out)
	}
}

func TestE5aIDSLatency(t *testing.T) {
	res, err := E5aIDSLatencyRun(context.Background(), 13, 8*time.Minute)
	if err != nil {
		t.Fatalf("E5a: %v", err)
	}
	if !res.Detected {
		t.Fatal("IDS did not detect the de-auth flood")
	}
	if res.DetectionLatency <= 0 || res.DetectionLatency > 30*time.Second {
		t.Fatalf("detection latency = %v, implausible", res.DetectionLatency)
	}
}

func TestE6CombinedRisk(t *testing.T) {
	res, err := E6CombinedRisk()
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	if res.Register.Rows() != len(res.Before) {
		t.Fatalf("register table rows = %d, want %d", res.Register.Rows(), len(res.Before))
	}
	if res.Interplay.Rows() != len(res.InterBefore) {
		t.Fatalf("interplay rows = %d", res.Interplay.Rows())
	}
}

func TestE7Assurance(t *testing.T) {
	res, err := E7Assurance(context.Background(), 42, 8*time.Minute)
	if err != nil {
		t.Fatalf("E7: %v", err)
	}
	if !res.Secured.SACEval.Supported {
		t.Fatalf("secured SAC unsupported: %v", res.Secured.SACEval.Unsupported)
	}
	if res.Unsecured.SACEval.Supported {
		t.Fatal("unsecured SAC supported")
	}
	if !res.Secured.Conformity.Ready || res.Unsecured.Conformity.Ready {
		t.Fatalf("conformity: secured=%v unsecured=%v",
			res.Secured.Conformity.Ready, res.Unsecured.Conformity.Ready)
	}
}

func TestE8SimValidity(t *testing.T) {
	res, err := E8SimValidity(3)
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	want := map[string]bool{
		"matched": true, "biased-mean": false, "wrong-variance": false, "degenerate": false,
	}
	for _, r := range res.Results {
		if r.Valid != want[r.Name] {
			t.Fatalf("%s: valid=%v, want %v", r.Name, r.Valid, want[r.Name])
		}
	}
}

func TestE10SOTIFExploration(t *testing.T) {
	res := E10SOTIFExploration(42, 12, 25)
	// The drone must not enlarge the unsafe areas, and typically shrinks them.
	if res.Improvement.UnsafeAfter > res.Improvement.UnsafeBefore {
		t.Fatalf("drone enlarged the unsafe area: %d -> %d",
			res.Improvement.UnsafeBefore, res.Improvement.UnsafeAfter)
	}
	if res.Improvement.Moved == 0 {
		t.Fatal("no scenarios moved out of the unsafe areas with the drone")
	}
	// Exploration discovers unknown-unsafe scenarios on the forwarder-only
	// configuration (that is the point of the activity).
	if len(res.WithoutDrone.Discovered) == 0 {
		t.Fatal("exploration discovered no unknown-unsafe scenarios")
	}
	if res.Table.Rows() != 2 {
		t.Fatalf("rows = %d", res.Table.Rows())
	}
}

func TestE9SecureSubstrate(t *testing.T) {
	res, err := E9SecureSubstrate(5, 2000)
	if err != nil {
		t.Fatalf("E9: %v", err)
	}
	if !res.HandshakeOK {
		t.Fatal("handshake failed")
	}
	if res.RecordsPerSec <= 0 {
		t.Fatal("no record throughput measured")
	}
	if res.TamperTable.Rows() != 5 {
		t.Fatalf("tamper sweep rows = %d, want 5", res.TamperTable.Rows())
	}
}

func TestE9aRekeySweep(t *testing.T) {
	tab, err := E9aRekeySweep(5)
	if err != nil {
		t.Fatalf("E9a: %v", err)
	}
	if tab.Rows() != 5 {
		t.Fatalf("rows = %d", tab.Rows())
	}
}
