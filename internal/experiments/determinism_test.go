package experiments

// Determinism regression tests: the parallel campaign runner (and the whole
// "identical adversary schedule" comparison methodology of E5) depends on
// every experiment being a pure function of its seed. Running the same
// experiment twice with the same seed must produce byte-identical rendered
// tables — any drift here (map-iteration order leaking into a table,
// wall-clock values in a rendered cell, shared mutable state) breaks the
// Monte-Carlo aggregation guarantees.

import (
	"context"
	"testing"
	"time"
)

func TestE1DeterministicRendering(t *testing.T) {
	run := func() string {
		res, err := E1WorksiteBaseline(context.Background(), 42, 10*time.Minute)
		if err != nil {
			t.Fatalf("E1: %v", err)
		}
		return res.Table.Render()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("E1 table not byte-identical across same-seed runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestE5DeterministicRendering(t *testing.T) {
	run := func() string {
		res, err := E5AttackMatrix(context.Background(), 42, 6*time.Minute)
		if err != nil {
			t.Fatalf("E5: %v", err)
		}
		return res.Table.Render()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("E5 table not byte-identical across same-seed runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestE1SeedSensitivity guards the other direction: different seeds must
// actually produce different trajectories, otherwise the campaign's seed
// sweep measures nothing.
func TestE1SeedSensitivity(t *testing.T) {
	one, err := E1WorksiteBaseline(context.Background(), 1, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	two, err := E1WorksiteBaseline(context.Background(), 2, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if one.Table.Render() == two.Table.Render() {
		t.Fatal("seeds 1 and 2 produced identical E1 tables; seed plumbing broken")
	}
}
