package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/pki"
	"repro/internal/report"
	"repro/internal/risk"
	"repro/internal/rng"
	"repro/internal/secureboot"
	"repro/internal/securechan"
	"repro/internal/simval"
	"repro/internal/sotif"
)

// E6Result is the combined risk-assessment experiment (IEC TS 63074
// interplay, Section IV-D).
type E6Result struct {
	Before      []risk.AssessedRisk
	After       []risk.AssessedRisk
	InterBefore []risk.SecurityInformedPL
	InterAfter  []risk.SecurityInformedPL
	Register    *report.Table
	Interplay   *report.Table
}

// E6CombinedRisk runs the TARA before/after treatment and the interplay
// analysis on both registers.
func E6CombinedRisk() (E6Result, error) {
	uc := risk.BuildUseCase()
	before, err := uc.Model.Assess(nil)
	if err != nil {
		return E6Result{}, fmt.Errorf("e6: %w", err)
	}
	after, err := uc.Model.Assess(uc.FullControls())
	if err != nil {
		return E6Result{}, fmt.Errorf("e6: %w", err)
	}
	ib, err := risk.AnalyzeInterplay(uc.SafetyFunctions, before)
	if err != nil {
		return E6Result{}, fmt.Errorf("e6: %w", err)
	}
	ia, err := risk.AnalyzeInterplay(uc.SafetyFunctions, after)
	if err != nil {
		return E6Result{}, fmt.Errorf("e6: %w", err)
	}

	reg := report.NewTable("E6: TARA register, untreated vs treated",
		"threat", "asset", "impact", "feas_before", "risk_before", "risk_after", "cal", "treatment")
	afterByID := make(map[string]risk.AssessedRisk, len(after))
	for _, r := range after {
		afterByID[r.Scenario.ID] = r
	}
	for _, r := range before {
		ra := afterByID[r.Scenario.ID]
		reg.AddRow(r.Scenario.ID, r.Scenario.AssetID, r.Damage.Impact.Overall().String(),
			r.Feasibility.String(), r.RiskValue, ra.RiskValue, r.CAL.String(), r.Treatment.String())
	}

	inter := report.NewTable("E6: security-informed performance levels (IEC TS 63074)",
		"safety_function", "required", "designed", "effective_untreated", "effective_treated", "meets_after")
	iaByID := make(map[string]risk.SecurityInformedPL, len(ia))
	for _, r := range ia {
		iaByID[r.Function.ID] = r
	}
	for _, r := range ib {
		ra := iaByID[r.Function.ID]
		inter.AddRow(r.Function.ID, r.Function.RequiredPL.String(), r.DesignedPL.String(),
			r.EffectivePL.String(), ra.EffectivePL.String(), ra.MeetsRequired)
	}
	return E6Result{Before: before, After: after, InterBefore: ib, InterAfter: ia,
		Register: reg, Interplay: inter}, nil
}

// E7Result is the assurance-case experiment (Section V).
type E7Result struct {
	Secured   *core.PathwayResult
	Unsecured *core.PathwayResult
	Table     *report.Table
}

// E7Assurance runs the full pathway under both profiles and compares the
// resulting assurance cases and conformity verdicts.
func E7Assurance(ctx context.Context, seed int64, evidenceRun time.Duration) (E7Result, error) {
	sec, err := core.RunPathway(ctx, core.PathwayOptions{
		Seed: seed, Secured: true, EvidenceRun: evidenceRun, SOTIFTrials: 40,
	})
	if err != nil {
		return E7Result{}, fmt.Errorf("e7 secured: %w", err)
	}
	uns, err := core.RunPathway(ctx, core.PathwayOptions{
		Seed: seed, Secured: false, EvidenceRun: evidenceRun, SOTIFTrials: 40,
	})
	if err != nil {
		return E7Result{}, fmt.Errorf("e7 unsecured: %w", err)
	}
	t := report.NewTable("E7: assurance case and CE conformity, secured vs unsecured pathway",
		"pathway", "sac_supported", "sac_score", "solutions", "mandatory_covered", "ce_ready")
	add := func(name string, r *core.PathwayResult) {
		t.AddRow(name, r.SACEval.Supported, r.SACEval.Score, r.SACEval.Solutions,
			fmt.Sprintf("%d/%d", r.Conformity.MandatoryCovered, r.Conformity.MandatoryTotal),
			r.Conformity.Ready)
	}
	add("secured", sec)
	add("unsecured", uns)
	return E7Result{Secured: sec, Unsecured: uns, Table: t}, nil
}

// E8Result is the simulation-validity experiment (Section III-D).
type E8Result struct {
	Results []simval.Result
	Table   *report.Table
}

// E8SimValidity compares matched, biased and degenerate synthetic sensor
// distributions against a reference and shows the metrics discriminate.
func E8SimValidity(seed int64) (E8Result, error) {
	r := rng.New(seed)
	const n = 2500
	sample := func(rr *rng.Rand, mean, std float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rr.Norm(mean, std)
		}
		return out
	}
	ref := sample(r.Derive("ref"), 20, 4) // e.g. lidar detection range distribution
	cases := []struct {
		name string
		syn  []float64
	}{
		{"matched", sample(r.Derive("matched"), 20, 4)},
		{"biased-mean", sample(r.Derive("biased"), 26, 4)},
		{"wrong-variance", sample(r.Derive("variance"), 20, 9)},
		{"degenerate", make([]float64, n)},
	}
	for i := range cases[3].syn {
		cases[3].syn[i] = 20
	}

	t := report.NewTable(fmt.Sprintf("E8: simulation validity metrics (n=%d per sample)", n),
		"synthetic_source", "ks", "psi", "mean_err", "std_err", "valid")
	var res E8Result
	for _, cse := range cases {
		out, err := simval.Validate(cse.name, ref, cse.syn, simval.DefaultCriteria())
		if err != nil {
			return E8Result{}, fmt.Errorf("e8: %w", err)
		}
		res.Results = append(res.Results, out)
		t.AddRow(cse.name, out.KS, out.PSI, out.MeanRelErr, out.StdRelErr, out.Valid)
	}
	res.Table = t
	return res, nil
}

// E9Result is the secure-substrate experiment: handshake and record costs
// plus boot-chain tamper detection coverage.
type E9Result struct {
	HandshakeOK   bool
	RecordsPerSec float64
	TamperTable   *report.Table
}

// E9SecureSubstrate performs one handshake, optionally measures a wall-clock
// record loop (records > 0; precise costs come from the testing.B
// benchmarks), and sweeps boot-chain tamper scenarios. The campaign path
// passes records = 0: it keeps only the deterministic outcomes, so paying
// for a throughput measurement it would discard is pointless.
func E9SecureSubstrate(seed int64, records int) (E9Result, error) {
	var res E9Result
	init, resp, err := NewChannelPair(seed, 0)
	if err != nil {
		return E9Result{}, fmt.Errorf("e9: %w", err)
	}
	res.HandshakeOK = init.Established() && resp.Established()

	if records > 0 {
		payload := make([]byte, 256)
		start := time.Now() //worksim:allow host-throughput benchmark: RecordsPerSec measures wall time by design and the campaign path skips it (records = 0)
		for i := 0; i < records; i++ {
			rec, err := init.Seal(payload)
			if err != nil {
				return E9Result{}, fmt.Errorf("e9 seal: %w", err)
			}
			if _, err := resp.Open(rec); err != nil {
				return E9Result{}, fmt.Errorf("e9 open: %w", err)
			}
		}
		el := time.Since(start).Seconds() //worksim:allow host-throughput benchmark: wall-clock elapsed is the measurement itself
		if el > 0 {
			res.RecordsPerSec = float64(records) / el
		}
	}

	res.TamperTable, err = bootTamperSweep(seed)
	if err != nil {
		return E9Result{}, err
	}
	return res, nil
}

// bootTamperSweep verifies every tamper class against the boot chain.
func bootTamperSweep(seed int64) (*report.Table, error) {
	r := rng.New(seed)
	ca, err := pki.NewCA("vendor", r.Derive("ca"))
	if err != nil {
		return nil, err
	}
	vendor, err := ca.Issue("signing", pki.RoleOperator, 0, 24*time.Hour)
	if err != nil {
		return nil, err
	}
	rogueCA, err := pki.NewCA("rogue", r.Derive("rogue"))
	if err != nil {
		return nil, err
	}
	rogue, err := rogueCA.Issue("rogue-signing", pki.RoleOperator, 0, 24*time.Hour)
	if err != nil {
		return nil, err
	}

	mkChain := func() secureboot.Chain {
		images := []secureboot.Image{
			{Name: "bootloader", Version: 2, Content: []byte("bl v2")},
			{Name: "rtos", Version: 5, Content: []byte("rtos v5")},
			{Name: "app", Version: 9, Content: []byte("app v9")},
		}
		var ch secureboot.Chain
		for _, im := range images {
			ch.Stages = append(ch.Stages, secureboot.Stage{Image: im, Manifest: secureboot.SignManifest(vendor, im)})
		}
		return ch
	}

	t := report.NewTable("E9: boot-chain tamper detection sweep",
		"tamper_class", "boot_halted", "detected_stage")
	scenarios := []struct {
		name   string
		mutate func(ch *secureboot.Chain, dev *secureboot.Device)
	}{
		{"none", func(*secureboot.Chain, *secureboot.Device) {}},
		{"modified-image", func(ch *secureboot.Chain, _ *secureboot.Device) {
			ch.Stages[1].Image.Content = []byte("rtos v5 implant")
		}},
		{"forged-manifest", func(ch *secureboot.Chain, _ *secureboot.Device) {
			evil := secureboot.Image{Name: "rtos", Version: 6, Content: []byte("evil")}
			ch.Stages[1] = secureboot.Stage{Image: evil, Manifest: secureboot.SignManifest(rogue, evil)}
		}},
		{"rollback", func(ch *secureboot.Chain, dev *secureboot.Device) {
			dev.MinVersions["rtos"] = 7
		}},
		{"swapped-manifests", func(ch *secureboot.Chain, _ *secureboot.Device) {
			ch.Stages[0].Manifest, ch.Stages[1].Manifest = ch.Stages[1].Manifest, ch.Stages[0].Manifest
		}},
	}
	for _, sc := range scenarios {
		ch := mkChain()
		dev := secureboot.NewDevice(vendor.Cert)
		sc.mutate(&ch, dev)
		rep, bootErr := dev.Boot(ch)
		halted := bootErr != nil
		stage := "-"
		if halted && len(rep.Log) > 0 {
			stage = rep.Log[len(rep.Log)-1].Stage
		}
		if sc.name == "none" && halted {
			return nil, fmt.Errorf("e9: clean chain failed to boot: %v", bootErr)
		}
		if sc.name != "none" && !halted {
			return nil, fmt.Errorf("e9: tamper class %q not detected", sc.name)
		}
		t.AddRow(sc.name, halted, stage)
	}
	return t, nil
}

// E10Result is the SOTIF unknown-space exploration experiment (ISO 21448
// §10: identification of unknown hazardous scenarios).
type E10Result struct {
	WithoutDrone sotif.Report
	WithDrone    sotif.Report
	Improvement  sotif.Improvement
	Table        *report.Table
}

// E10SOTIFExploration samples unknown scenarios over the weather/occlusion/
// crossing space, evaluates them with the detection probe, and shows how the
// drone's additional point of view shrinks the unknown-unsafe area (Area 3).
func E10SOTIFExploration(seed int64, scenarios, trials int) E10Result {
	analysis := sotif.NewAnalysis(0.15)
	space := append(sotif.KnownCatalog(), sotif.ExploreSpace(rng.New(seed), scenarios)...)

	eval := func(droneOn bool) sotif.Report {
		return analysis.Evaluate(space, func(sc sotif.Scenario) float64 {
			return core.DetectionMissRate(seed, sc, droneOn, trials)
		})
	}
	without := eval(false)
	with := eval(true)

	t := report.NewTable(
		fmt.Sprintf("E10: SOTIF scenario space (%d known + %d explored, %d trials each)",
			len(sotif.KnownCatalog()), scenarios, trials),
		"configuration", "known-safe", "known-unsafe", "unknown-unsafe", "unknown-safe", "residual", "discovered")
	add := func(name string, r sotif.Report) {
		t.AddRow(name,
			r.ByArea[sotif.Area1KnownSafe.String()],
			r.ByArea[sotif.Area2KnownUnsafe.String()],
			r.ByArea[sotif.Area3UnknownUnsafe.String()],
			r.ByArea[sotif.Area4UnknownSafe.String()],
			r.ResidualRisk, len(r.Discovered))
	}
	add("forwarder-only", without)
	add("with-drone", with)
	return E10Result{
		WithoutDrone: without,
		WithDrone:    with,
		Improvement:  sotif.CompareReports(without, with),
		Table:        t,
	}
}

// NewChannelPair constructs and pairs a secure channel for benchmarks. A
// rekeyInterval of zero keeps the default.
func NewChannelPair(seed int64, rekeyInterval uint64) (*securechan.Channel, *securechan.Channel, error) {
	r := rng.New(seed)
	ca, err := pki.NewCA("bench-ca", r.Derive("ca"))
	if err != nil {
		return nil, nil, err
	}
	a, err := ca.Issue("a", pki.RoleMachine, 0, 24*time.Hour)
	if err != nil {
		return nil, nil, err
	}
	b, err := ca.Issue("b", pki.RoleCoordinator, 0, 24*time.Hour)
	if err != nil {
		return nil, nil, err
	}
	v := pki.NewVerifier(ca.Cert(), nil)
	init := securechan.NewInitiator(a, v, securechan.Options{Rand: r.Derive("i"), RekeyInterval: rekeyInterval})
	resp := securechan.NewResponder(b, v, securechan.Options{Rand: r.Derive("r"), RekeyInterval: rekeyInterval})

	m1, err := init.Start()
	if err != nil {
		return nil, nil, err
	}
	m2, err := resp.HandleHandshake(m1)
	if err != nil {
		return nil, nil, err
	}
	m3, err := init.HandleHandshake(m2)
	if err != nil {
		return nil, nil, err
	}
	if _, err := resp.HandleHandshake(m3); err != nil {
		return nil, nil, err
	}
	return init, resp, nil
}

// E9aRekeySweep measures record throughput across rekey intervals (the
// security/throughput ablation).
func E9aRekeySweep(seed int64) (*report.Table, error) {
	t := report.NewTable("E9a: rekey interval vs record throughput (256 B payloads)",
		"rekey_interval", "records_per_sec")
	for _, interval := range []uint64{16, 64, 256, 1024, 4096} {
		init, resp, err := NewChannelPair(seed, interval)
		if err != nil {
			return nil, fmt.Errorf("e9a: %w", err)
		}
		payload := make([]byte, 256)
		const records = 4000
		start := time.Now() //worksim:allow host-throughput benchmark: the E9a ablation measures wall-clock records/sec by design
		for i := 0; i < records; i++ {
			rec, err := init.Seal(payload)
			if err != nil {
				return nil, fmt.Errorf("e9a seal: %w", err)
			}
			if _, err := resp.Open(rec); err != nil {
				return nil, fmt.Errorf("e9a open: %w", err)
			}
		}
		el := time.Since(start).Seconds() //worksim:allow host-throughput benchmark: wall-clock elapsed is the measurement itself
		rate := math.Inf(1)
		if el > 0 {
			rate = records / el
		}
		t.AddRow(interval, rate)
	}
	return t, nil
}
