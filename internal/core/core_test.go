package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/sotif"
)

func runPathway(t *testing.T, secured bool) *PathwayResult {
	t.Helper()
	res, err := RunPathway(context.Background(), PathwayOptions{
		Seed:        42,
		Secured:     secured,
		EvidenceRun: 10 * time.Minute,
		SOTIFTrials: 30,
	})
	if err != nil {
		t.Fatalf("RunPathway(secured=%v): %v", secured, err)
	}
	return res
}

func TestSecuredPathwaySupported(t *testing.T) {
	res := runPathway(t, true)
	if !res.SACEval.Supported {
		t.Fatalf("secured pathway SAC unsupported; unsupported nodes: %v\n%s",
			res.SACEval.Unsupported, res.SAC.RenderGSN())
	}
	if res.SACEval.Score != 1 {
		t.Fatalf("secured SAC score = %.2f, want 1.0 (unsupported: %v)",
			res.SACEval.Score, res.SACEval.Unsupported)
	}
	if !res.Conformity.Ready {
		t.Fatalf("secured pathway not CE-ready: %d/%d mandatory covered",
			res.Conformity.MandatoryCovered, res.Conformity.MandatoryTotal)
	}
}

func TestUnsecuredPathwayFails(t *testing.T) {
	res := runPathway(t, false)
	if res.SACEval.Supported {
		t.Fatal("unsecured pathway SAC claimed supported")
	}
	if res.Conformity.Ready {
		t.Fatal("unsecured pathway claimed CE-ready")
	}
	if res.SACEval.Score >= 1 {
		t.Fatalf("unsecured SAC score = %.2f, want < 1", res.SACEval.Score)
	}
}

func TestTreatmentShrinksRegister(t *testing.T) {
	res := runPathway(t, true)
	maxBefore, maxAfter := 0, 0
	for _, r := range res.RegisterBefore {
		if r.RiskValue > maxBefore {
			maxBefore = r.RiskValue
		}
	}
	for _, r := range res.RegisterAfter {
		if r.RiskValue > maxAfter {
			maxAfter = r.RiskValue
		}
	}
	if maxBefore < 4 {
		t.Fatalf("untreated max risk = %d, model too benign", maxBefore)
	}
	if maxAfter >= 4 {
		t.Fatalf("treated max risk = %d, controls insufficient", maxAfter)
	}
}

func TestInterplayImproves(t *testing.T) {
	res := runPathway(t, true)
	meetsBefore, meetsAfter := 0, 0
	for _, r := range res.InterplayBefore {
		if r.MeetsRequired {
			meetsBefore++
		}
	}
	for _, r := range res.InterplayAfter {
		if r.MeetsRequired {
			meetsAfter++
		}
	}
	if meetsAfter <= meetsBefore {
		t.Fatalf("interplay meets: %d -> %d, want improvement", meetsBefore, meetsAfter)
	}
	if meetsAfter != len(res.InterplayAfter) {
		t.Fatalf("treated stack: %d/%d functions meet PLr", meetsAfter, len(res.InterplayAfter))
	}
}

func TestSLGapsCloseWithControls(t *testing.T) {
	res := runPathway(t, true)
	unmet := func(zs []interface {
	}) int {
		return 0
	}
	_ = unmet
	unmetBefore, unmetAfter := 0, 0
	for _, z := range res.SLBefore {
		if !z.Met {
			unmetBefore++
		}
	}
	for _, z := range res.SLAfter {
		if !z.Met {
			unmetAfter++
		}
	}
	if unmetBefore == 0 {
		t.Fatal("bare architecture met all SL targets")
	}
	if unmetAfter != 0 {
		t.Fatalf("%d zones/conduits still unmet with full controls", unmetAfter)
	}
}

func TestBootEvidence(t *testing.T) {
	res := runPathway(t, true)
	if !res.BootOK || !res.TamperDet || !res.AttestOK {
		t.Fatalf("boot evidence: ok=%v tamper=%v attest=%v", res.BootOK, res.TamperDet, res.AttestOK)
	}
}

func TestSOTIFDroneImprovement(t *testing.T) {
	res := runPathway(t, true)
	if res.SOTIFImp.UnsafeAfter > res.SOTIFImp.UnsafeBefore {
		t.Fatalf("drone made SOTIF worse: %d -> %d unsafe",
			res.SOTIFImp.UnsafeBefore, res.SOTIFImp.UnsafeAfter)
	}
}

func TestRenderings(t *testing.T) {
	res := runPathway(t, true)
	gsn := res.SAC.RenderGSN()
	for _, want := range []string{"G-TOP", "G-SECURITY", "G-SAFETY", "G-AI", "Sn-BOOT", "E-GNSS"} {
		if !strings.Contains(gsn, want) {
			t.Fatalf("GSN missing %q", want)
		}
	}
	mods := res.SAC.Modules()
	if len(mods) != 4 {
		t.Fatalf("modules = %v, want security/safety/ai/compliance", mods)
	}
}

func TestDetectionMissRateOcclusionMonotonic(t *testing.T) {
	low := DetectionMissRate(7, sotif.Scenario{ID: "lo", OcclusionDensity: 0.05}, false, 60)
	high := DetectionMissRate(7, sotif.Scenario{ID: "hi", OcclusionDensity: 0.4}, false, 60)
	if high <= low {
		t.Fatalf("miss rate: occlusion 0.05 -> %.2f, 0.40 -> %.2f; want increase", low, high)
	}
}

func TestDetectionMissRateDroneHelps(t *testing.T) {
	sc := sotif.Scenario{ID: "occ", OcclusionDensity: 0.35}
	without := DetectionMissRate(7, sc, false, 80)
	with := DetectionMissRate(7, sc, true, 80)
	if with >= without {
		t.Fatalf("drone did not reduce miss rate: %.2f -> %.2f", without, with)
	}
}

func TestPathwayDeterminism(t *testing.T) {
	a := runPathway(t, true)
	b := runPathway(t, true)
	if a.SACEval.Score != b.SACEval.Score ||
		a.Worksite.Metrics != b.Worksite.Metrics ||
		a.Conformity.Readiness != b.Conformity.Readiness {
		t.Fatal("pathway not deterministic for equal seeds")
	}
}
