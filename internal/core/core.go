// Package core is the facade of the reproduction: the holistic
// certification-pathway pipeline the paper sketches. One call runs the
// combined risk assessment (TARA + IEC 62443 + ISO 13849 + IEC TS 63074
// interplay), executes an attack campaign against the simulated worksite to
// generate operational security evidence, boots the measured-boot substrate,
// probes simulation validity and SOTIF residual risk, assembles the modular
// security assurance case, and checks CE conformity against the standards
// registry.
//
// Running the pipeline with Secured=false evaluates the unsecured baseline
// pathway (the pre-regulation state of the art); with Secured=true it
// evaluates the full defence stack. The difference between the two results —
// supported vs. unsupported assurance case, ready vs. not-ready conformity —
// is the paper's thesis in executable form.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/assurance"
	"repro/internal/attack"
	"repro/internal/geo"
	"repro/internal/risk"
	"repro/internal/secureboot"
	"repro/internal/simval"
	"repro/internal/sotif"
	"repro/internal/standards"
	"repro/internal/worksite"
)

// PathwayOptions parameterise a pathway evaluation.
type PathwayOptions struct {
	// Seed drives all stochastic components.
	Seed int64
	// Secured selects the full defence stack (true) or the unsecured
	// baseline (false).
	Secured bool
	// EvidenceRun is the virtual duration of the attack-campaign evidence
	// run. Zero means 15 minutes.
	EvidenceRun time.Duration
	// SOTIFTrials is the number of detection trials per SOTIF scenario.
	// Zero means 60.
	SOTIFTrials int
}

func (o PathwayOptions) withDefaults() PathwayOptions {
	if o.EvidenceRun == 0 {
		o.EvidenceRun = 15 * time.Minute
	}
	if o.SOTIFTrials == 0 {
		o.SOTIFTrials = 60
	}
	return o
}

// PathwayResult is the complete output of a pathway evaluation.
type PathwayResult struct {
	Options PathwayOptions `json:"options"`

	// Combined risk assessment.
	RegisterBefore  []risk.AssessedRisk       `json:"registerBefore"`
	RegisterAfter   []risk.AssessedRisk       `json:"registerAfter"`
	SLBefore        []risk.ZoneAssessment     `json:"slBefore"`
	SLAfter         []risk.ZoneAssessment     `json:"slAfter"`
	InterplayBefore []risk.SecurityInformedPL `json:"interplayBefore"`
	InterplayAfter  []risk.SecurityInformedPL `json:"interplayAfter"`
	Transfer        risk.TransferReport       `json:"transfer"`

	// Operational evidence.
	Worksite  worksite.Report        `json:"worksite"`
	Boot      secureboot.Report      `json:"boot"`
	BootOK    bool                   `json:"bootOk"`
	TamperDet bool                   `json:"tamperDetected"`
	AttestOK  bool                   `json:"attestOk"`
	SimVal    simval.ToolchainReport `json:"simval"`
	SOTIF     sotif.Report           `json:"sotif"`
	SOTIFImp  sotif.Improvement      `json:"sotifImprovement"`

	// Assurance and conformity.
	SAC        *assurance.Case            `json:"-"`
	SACEval    assurance.Evaluation       `json:"sacEval"`
	Conformity standards.ConformityReport `json:"conformity"`
}

// RunPathway executes the full pipeline. The context bounds the wall-clock
// of the operational-evidence campaign (the pipeline's only long-running
// stage): a cancelled or expired context surfaces as ctx.Err().
func RunPathway(ctx context.Context, opts PathwayOptions) (*PathwayResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	res := &PathwayResult{Options: opts}
	uc := risk.BuildUseCase()

	// 1. Combined risk assessment, untreated vs. treated.
	var err error
	res.RegisterBefore, err = uc.Model.Assess(nil)
	if err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}
	applied := []string(nil)
	if opts.Secured {
		applied = uc.FullControls()
	}
	res.RegisterAfter, err = uc.Model.Assess(applied)
	if err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}
	res.SLBefore = risk.AssessArchitecture(uc.Architecture, risk.AchievedSL(&uc.Model, nil))
	res.SLAfter = risk.AssessArchitecture(uc.Architecture, risk.AchievedSL(&uc.Model, applied))
	res.InterplayBefore, err = risk.AnalyzeInterplay(uc.SafetyFunctions, res.RegisterBefore)
	if err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}
	res.InterplayAfter, err = risk.AnalyzeInterplay(uc.SafetyFunctions, res.RegisterAfter)
	if err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}
	res.Transfer = risk.TransferKnowledge(&uc.Model)

	// 2. Operational evidence: attack campaign against the (un)secured site.
	res.Worksite, err = runEvidenceCampaign(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}

	// 3. Platform integrity evidence.
	if err := res.runBootEvidence(opts); err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}

	// 4. Simulation validity and SOTIF probes.
	res.SimVal, err = simValProbe(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}
	res.SOTIF, res.SOTIFImp = sotifProbe(opts.Seed, opts.SOTIFTrials)

	// 5. Assurance case.
	res.SAC, err = buildSAC(uc, res)
	if err != nil {
		return nil, fmt.Errorf("pathway: %w", err)
	}
	res.SACEval = res.SAC.Evaluate()

	// 6. CE conformity.
	res.Conformity = standards.CheckConformity(res.evidenceInventory())
	return res, nil
}

// runEvidenceCampaign runs the worksite under a representative multi-attack
// campaign and returns the KPI report — the operational evidence the
// assurance case binds.
func runEvidenceCampaign(ctx context.Context, opts PathwayOptions) (worksite.Report, error) {
	cfg := worksite.DefaultConfig(opts.Seed)
	if opts.Secured {
		cfg.Profile = worksite.Secured()
	}
	sess, err := worksite.NewSession(cfg)
	if err != nil {
		return worksite.Report{}, err
	}
	site := sess.Site()
	d := opts.EvidenceRun
	c := attack.NewCampaign()
	// Phases at fractions of the run so shorter evidence runs still see all
	// attack classes.
	frac := func(num, den int64) time.Duration { return d * time.Duration(num) / time.Duration(den) }
	c.Add(frac(1, 10), frac(3, 10), attack.NewDeauthFlood(
		site.AttackerAdapter(), worksite.NodeForwarder, worksite.NodeCoordinator, 200*time.Millisecond))
	c.Add(frac(3, 10), frac(5, 10), attack.NewCommandInjection(
		site.AttackerAdapter(), worksite.NodeCoordinator, worksite.NodeForwarder,
		func() []byte {
			return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`)
		}, time.Second))
	c.Add(frac(5, 10), frac(7, 10), attack.NewGNSSSpoof(site.ForwarderGNSS(), geo.V(60, 40)))
	mid := geo.V(0.5*site.Grid().Width(), 0.5*site.Grid().Height())
	c.Add(frac(7, 10), frac(9, 10), attack.NewJamming(site.Medium(), "jam-ev", mid, 1, 38, true))
	c.Schedule(site.Scheduler())
	return sess.Run(ctx, d)
}

// runBootEvidence exercises the measured-boot substrate: a clean boot with
// attestation, then a tamper attempt that must be detected.
func (res *PathwayResult) runBootEvidence(opts PathwayOptions) error {
	fix, err := buildBootFixture(opts.Seed)
	if err != nil {
		return err
	}
	dev := secureboot.NewDevice(fix.vendor.Cert)
	rep, err := dev.Boot(fix.chain)
	if err != nil {
		return fmt.Errorf("clean boot: %w", err)
	}
	res.Boot = rep
	res.BootOK = rep.OK

	nonce := []byte("pathway-challenge")
	quote := secureboot.Attest(fix.machine, rep, nonce)
	res.AttestOK = secureboot.VerifyQuote(fix.machine.Cert, quote, secureboot.GoldenPCR(fix.chain), nonce) == nil

	// Tamper attempt: modified control application must be caught.
	tampered := fix.chain
	tampered.Stages = append([]secureboot.Stage(nil), fix.chain.Stages...)
	img := tampered.Stages[len(tampered.Stages)-1].Image
	img.Content = append(append([]byte(nil), img.Content...), []byte(" implant")...)
	tampered.Stages[len(tampered.Stages)-1].Image = img
	_, tamperErr := secureboot.NewDevice(fix.vendor.Cert).Boot(tampered)
	res.TamperDet = tamperErr != nil
	return nil
}

// evidenceInventory maps standards evidence kinds to the artefacts this run
// actually produced *successfully*. Evidence of a failed defence is not
// evidence of conformity, so each kind is gated on the measured outcome.
func (res *PathwayResult) evidenceInventory() map[string][]string {
	inv := map[string][]string{
		"risk-register":      {"core: TARA register"},
		"pl-analysis":        {"core: ISO 13849 PL analysis"},
		"sl-gap-analysis":    {"core: IEC 62443 zone/conduit gaps"},
		"interplay-analysis": {"core: IEC TS 63074 interplay"},
		"sotif-report":       {"core: SOTIF scenario-space report"},
	}
	m := res.Worksite.Metrics
	if m.CommandsApplied == 0 && m.Collisions == 0 {
		inv["attack-campaign"] = []string{"worksite: campaign withstood"}
	}
	if m.ForgeriesBlocked > 0 || m.ReplaysBlocked > 0 {
		inv["secure-channel-tests"] = []string{"securechan: forgeries/replays rejected in campaign"}
	}
	if len(res.Worksite.Alerts) > 0 {
		inv["ids-log"] = []string{"ids: campaign alert log"}
	}
	if res.Options.Secured && m.SafetyStops > 0 {
		inv["failsafe-tests"] = []string{"worksite: fail-safe stops exercised"}
	}
	if res.Options.Secured && res.BootOK && res.TamperDet {
		inv["secure-boot-report"] = []string{"secureboot: clean boot + tamper detection"}
	}
	if res.Options.Secured && res.AttestOK {
		inv["attestation"] = []string{"secureboot: attestation quote verified"}
	}
	if res.SimVal.Valid {
		inv["simval-report"] = []string{"simval: toolchain representative"}
	}
	if res.SACEval.Score >= 0.8 {
		inv["assurance-case"] = []string{"assurance: GSN case evaluated"}
	}
	return inv
}
