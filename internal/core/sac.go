package core

import (
	"fmt"

	"repro/internal/assurance"
	"repro/internal/risk"
	"repro/internal/standards"
)

// buildSAC assembles the modular GSN security assurance case of Section V:
// a top-level CE claim argued by separation of concerns (security, safety,
// AI, compliance), with every solution bound to evidence produced by this
// pathway run. Evidence OK flags come from measured outcomes, so the same
// argument structure evaluates supported for the secured pathway and
// unsupported for the unsecured baseline.
func buildSAC(uc *risk.UseCase, res *PathwayResult) (*assurance.Case, error) {
	c, err := assurance.NewCase("SAC-AGRARSENSE", "G-TOP",
		"The partially autonomous forestry worksite is acceptably safe and secure for CE marking under Regulation (EU) 2023/1230")
	if err != nil {
		return nil, err
	}

	add := func(n assurance.Node) error { return c.AddNode(n) }
	type edge struct{ p, ch string }
	var supports []edge
	var contexts []edge

	nodes := []assurance.Node{
		{ID: "C-UC", Kind: assurance.KindContext, Statement: "Use case: autonomous forwarder + observation drone + manual harvester (paper Fig. 2)"},
		{ID: "C-REG", Kind: assurance.KindContext, Statement: "Regulation (EU) 2023/1230 Annex III incl. protection against corruption"},
		{ID: "A-SIM", Kind: assurance.KindAssumption, Statement: "Simulation evidence is representative (argued under G-AI-SIMVAL)"},
		{ID: "S-CONCERNS", Kind: assurance.KindStrategy, Statement: "Argument by separation of concerns with modular sub-cases (Bloomfield et al.)"},

		{ID: "G-SECURITY", Kind: assurance.KindGoal, Statement: "All identified threat scenarios are treated to acceptable residual risk", Module: "security"},
		{ID: "S-SEC", Kind: assurance.KindStrategy, Statement: "Argue over the ISO/SAE 21434 TARA register and per-control operational evidence", Module: "security"},
		{ID: "G-SEC-RISK", Kind: assurance.KindGoal, Statement: "No residual risk value of 4 or higher remains in the register", Module: "security"},
		{ID: "Sn-REGISTER", Kind: assurance.KindSolution, Statement: "Treated TARA risk register", Module: "security"},
		{ID: "G-SEC-COMMS", Kind: assurance.KindGoal, Statement: "Machine communication is mutually authenticated, encrypted and replay-protected", Module: "security"},
		{ID: "Sn-CHAN", Kind: assurance.KindSolution, Statement: "Secure-channel campaign evidence: forged/replayed records rejected", Module: "security"},
		{ID: "G-SEC-MGMT", Kind: assurance.KindGoal, Statement: "Management frames resist forgery (de-auth attack)", Module: "security"},
		{ID: "Sn-PMF", Kind: assurance.KindSolution, Statement: "Protected-management campaign evidence", Module: "security"},
		{ID: "G-SEC-NAV", Kind: assurance.KindGoal, Statement: "Navigation rejects implausible GNSS input and fails safe", Module: "security"},
		{ID: "Sn-GNSS", Kind: assurance.KindSolution, Statement: "GNSS-guard campaign evidence: spoof detected, nav error bounded", Module: "security"},
		{ID: "G-SEC-BOOT", Kind: assurance.KindGoal, Statement: "Platform integrity is verified at boot and attestable", Module: "security"},
		{ID: "Sn-BOOT", Kind: assurance.KindSolution, Statement: "Measured-boot report, tamper detection, attestation quote", Module: "security"},
		{ID: "G-SEC-MON", Kind: assurance.KindGoal, Statement: "Security events are monitored with timely response (IEC 62443 SR 6.2)", Module: "security"},
		{ID: "Sn-IDS", Kind: assurance.KindSolution, Statement: "IDS alert log from the attack campaign", Module: "security"},

		{ID: "G-SAFETY", Kind: assurance.KindGoal, Statement: "All safety functions meet their required PL including security-informed degradation (IEC TS 63074)", Module: "safety"},
		{ID: "S-SAFE", Kind: assurance.KindStrategy, Statement: "Argue per safety function over the interplay analysis", Module: "safety"},

		{ID: "G-AI", Kind: assurance.KindGoal, Statement: "AI/simulation-based components are valid for the operational design domain", Module: "ai"},
		{ID: "S-AI", Kind: assurance.KindStrategy, Statement: "Argue via simulation validity and SOTIF residual risk", Module: "ai"},
		{ID: "G-AI-SIMVAL", Kind: assurance.KindGoal, Statement: "The simulation toolchain is representative (Section III-D)", Module: "ai"},
		{ID: "Sn-SIMVAL", Kind: assurance.KindSolution, Statement: "Per-sensor distribution validity report", Module: "ai"},
		{ID: "G-AI-SOTIF", Kind: assurance.KindGoal, Statement: "Known-unsafe SOTIF area is acceptably small with the collaborative drone view", Module: "ai"},
		{ID: "Sn-SOTIF", Kind: assurance.KindSolution, Statement: "SOTIF scenario-space report with drone improvement", Module: "ai"},

		{ID: "G-COMP", Kind: assurance.KindGoal, Statement: "All mandatory conformity requirements have discharging evidence", Module: "compliance"},
		{ID: "Sn-CONF", Kind: assurance.KindSolution, Statement: "CE conformity gap analysis", Module: "compliance"},
	}
	for _, n := range nodes {
		if err := add(n); err != nil {
			return nil, err
		}
	}
	contexts = append(contexts, edge{"G-TOP", "C-UC"}, edge{"G-TOP", "C-REG"}, edge{"S-CONCERNS", "A-SIM"})
	supports = append(supports,
		edge{"G-TOP", "S-CONCERNS"},
		edge{"S-CONCERNS", "G-SECURITY"},
		edge{"S-CONCERNS", "G-SAFETY"},
		edge{"S-CONCERNS", "G-AI"},
		edge{"S-CONCERNS", "G-COMP"},
		edge{"G-SECURITY", "S-SEC"},
		edge{"S-SEC", "G-SEC-RISK"}, edge{"G-SEC-RISK", "Sn-REGISTER"},
		edge{"S-SEC", "G-SEC-COMMS"}, edge{"G-SEC-COMMS", "Sn-CHAN"},
		edge{"S-SEC", "G-SEC-MGMT"}, edge{"G-SEC-MGMT", "Sn-PMF"},
		edge{"S-SEC", "G-SEC-NAV"}, edge{"G-SEC-NAV", "Sn-GNSS"},
		edge{"S-SEC", "G-SEC-BOOT"}, edge{"G-SEC-BOOT", "Sn-BOOT"},
		edge{"S-SEC", "G-SEC-MON"}, edge{"G-SEC-MON", "Sn-IDS"},
		edge{"G-SAFETY", "S-SAFE"},
		edge{"G-AI", "S-AI"},
		edge{"S-AI", "G-AI-SIMVAL"}, edge{"G-AI-SIMVAL", "Sn-SIMVAL"},
		edge{"S-AI", "G-AI-SOTIF"}, edge{"G-AI-SOTIF", "Sn-SOTIF"},
		edge{"G-COMP", "Sn-CONF"},
	)

	// One goal + solution per safety function.
	for _, sf := range uc.SafetyFunctions {
		gid := "G-SF-" + sf.ID
		sid := "Sn-SF-" + sf.ID
		if err := add(assurance.Node{
			ID: gid, Kind: assurance.KindGoal, Module: "safety",
			Statement: fmt.Sprintf("%s meets %s under security-informed analysis", sf.Name, sf.RequiredPL),
		}); err != nil {
			return nil, err
		}
		if err := add(assurance.Node{
			ID: sid, Kind: assurance.KindSolution, Module: "safety",
			Statement: "Interplay analysis row for " + sf.ID,
		}); err != nil {
			return nil, err
		}
		supports = append(supports, edge{"S-SAFE", gid}, edge{gid, sid})
	}

	for _, e := range supports {
		if err := c.Support(e.p, e.ch); err != nil {
			return nil, err
		}
	}
	for _, e := range contexts {
		if err := c.InContextOf(e.p, e.ch); err != nil {
			return nil, err
		}
	}

	if err := bindEvidence(c, res); err != nil {
		return nil, err
	}
	return c, nil
}

// bindEvidence attaches measured artefacts to the solutions, with OK flags
// reflecting the actual outcomes of this run.
func bindEvidence(c *assurance.Case, res *PathwayResult) error {
	m := res.Worksite.Metrics
	maxResidual := 0
	for _, r := range res.RegisterAfter {
		if r.RiskValue > maxResidual {
			maxResidual = r.RiskValue
		}
	}
	interplayOK := true
	for _, r := range res.InterplayAfter {
		if !r.MeetsRequired {
			interplayOK = false
		}
	}
	_ = interplayOK

	binds := []struct {
		sol string
		ev  assurance.Evidence
	}{
		{"Sn-REGISTER", assurance.Evidence{
			ID: "E-REGISTER", Source: "internal/risk",
			Description: fmt.Sprintf("treated register: max residual risk %d", maxResidual),
			OK:          maxResidual < 4,
		}},
		{"Sn-CHAN", assurance.Evidence{
			ID: "E-CHAN", Source: "internal/securechan + campaign",
			Description: fmt.Sprintf("forgeries blocked %d, replays blocked %d, forged commands applied %d",
				m.ForgeriesBlocked, m.ReplaysBlocked, m.CommandsApplied),
			OK: m.ForgeriesBlocked > 0 && m.CommandsApplied == 0,
		}},
		{"Sn-PMF", assurance.Evidence{
			ID: "E-PMF", Source: "internal/netsim + campaign",
			Description: fmt.Sprintf("mgmt forgery alerts %d, distance under attack %.0f m",
				res.Worksite.Alerts["mgmt-forgery"], m.DistanceM),
			OK: res.Worksite.Alerts["mgmt-forgery"] > 0 && m.DistanceM > 100,
		}},
		{"Sn-GNSS", assurance.Evidence{
			ID: "E-GNSS", Source: "internal/sensors (GNSSGuard) + campaign",
			Description: fmt.Sprintf("gnss anomaly alerts %d, max nav error %.1f m",
				res.Worksite.Alerts["gnss-anomaly"], m.NavErrMaxM),
			OK: res.Worksite.Alerts["gnss-anomaly"] > 0 && m.NavErrMaxM < 20,
		}},
		{"Sn-BOOT", assurance.Evidence{
			ID: "E-BOOT", Source: "internal/secureboot",
			Description: fmt.Sprintf("clean boot ok=%v, tamper detected=%v, attestation ok=%v",
				res.BootOK, res.TamperDet, res.AttestOK),
			OK: res.Options.Secured && res.BootOK && res.TamperDet && res.AttestOK,
		}},
		{"Sn-IDS", assurance.Evidence{
			ID: "E-IDS", Source: "internal/ids + campaign",
			Description: fmt.Sprintf("alert types observed: %d", len(res.Worksite.Alerts)),
			OK:          len(res.Worksite.Alerts) >= 2,
		}},
		{"Sn-SIMVAL", assurance.Evidence{
			ID: "E-SIMVAL", Source: "internal/simval",
			Description: fmt.Sprintf("toolchain valid=%v, failed=%v", res.SimVal.Valid, res.SimVal.Failed),
			OK:          res.SimVal.Valid,
		}},
		{"Sn-SOTIF", assurance.Evidence{
			ID: "E-SOTIF", Source: "internal/sotif + detection probe",
			Description: fmt.Sprintf("unsafe scenarios %d->%d with drone, residual drop %.3f",
				res.SOTIFImp.UnsafeBefore, res.SOTIFImp.UnsafeAfter, res.SOTIFImp.ResidualDrop),
			OK: res.SOTIFImp.UnsafeAfter < res.SOTIFImp.UnsafeBefore || res.SOTIFImp.UnsafeAfter == 0,
		}},
	}
	for _, r := range res.InterplayAfter {
		binds = append(binds, struct {
			sol string
			ev  assurance.Evidence
		}{
			"Sn-SF-" + r.Function.ID,
			assurance.Evidence{
				ID: "E-SF-" + r.Function.ID, Source: "internal/risk (interplay)",
				Description: fmt.Sprintf("designed %s, effective %s, required %s",
					r.DesignedPL, r.EffectivePL, r.Function.RequiredPL),
				OK: r.MeetsRequired,
			},
		})
	}
	for _, b := range binds {
		if err := c.Bind(b.sol, b.ev); err != nil {
			return err
		}
	}

	// Conformity evidence is bound after the first evaluation pass would be
	// circular (conformity consumes the SAC score); instead bind the
	// mandatory-requirement outcome computed from the same inventory minus
	// the assurance-case kind.
	preInv := res.evidenceInventory()
	delete(preInv, "assurance-case")
	return c.Bind("Sn-CONF", assurance.Evidence{
		ID: "E-CONF", Source: "internal/standards",
		Description: "CE conformity pre-check (excluding the assurance case itself)",
		OK:          conformityMandatoryOK(preInv),
	})
}

// conformityMandatoryOK reports whether every mandatory requirement other
// than the assurance-case requirement itself (which this SAC discharges) is
// covered by the inventory.
func conformityMandatoryOK(inv map[string][]string) bool {
	rep := standards.CheckConformity(inv)
	for _, st := range rep.Statuses {
		if !st.Requirement.Mandatory || st.Requirement.ID == "REQ-ASSURANCE" {
			continue
		}
		if !st.Covered {
			return false
		}
	}
	return true
}
