package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fusion"
	"repro/internal/geo"
	"repro/internal/pki"
	"repro/internal/rng"
	"repro/internal/secureboot"
	"repro/internal/sensors"
	"repro/internal/simval"
	"repro/internal/sotif"
)

// bootFixture is the measured-boot evidence setup: a vendor signing identity,
// a machine attestation identity, and the forwarder's three-stage chain.
type bootFixture struct {
	vendor  pki.Identity
	machine pki.Identity
	chain   secureboot.Chain
}

func buildBootFixture(seed int64) (bootFixture, error) {
	r := rng.New(seed)
	ca, err := pki.NewCA("vendor-root", r.Derive("boot-ca"))
	if err != nil {
		return bootFixture{}, err
	}
	vendor, err := ca.Issue("forwarder-vendor-signing", pki.RoleOperator, 0, 365*24*time.Hour)
	if err != nil {
		return bootFixture{}, err
	}
	machine, err := ca.Issue("forwarder-ecu", pki.RoleMachine, 0, 365*24*time.Hour)
	if err != nil {
		return bootFixture{}, err
	}
	images := []secureboot.Image{
		{Name: "bootloader", Version: 2, Content: []byte("forwarder bootloader v2")},
		{Name: "rtos", Version: 5, Content: []byte("forwarder rtos v5")},
		{Name: "control-app", Version: 11, Content: []byte("forwarder control app v11")},
	}
	var chain secureboot.Chain
	for _, im := range images {
		chain.Stages = append(chain.Stages, secureboot.Stage{
			Image:    im,
			Manifest: secureboot.SignManifest(vendor, im),
		})
	}
	return bootFixture{vendor: vendor, machine: machine, chain: chain}, nil
}

// simValProbe validates the sensor simulation against a designated golden
// reference: the same sensor models driven by an independent seed stand in
// for real-world measurements (the documented substitution for Section
// III-D's missing forestry datasets). Each sensor contributes one observable
// distribution.
func simValProbe(seed int64) (simval.ToolchainReport, error) {
	ref := rng.New(seed).Derive("simval-reference")
	syn := rng.New(seed).Derive("simval-synthetic")

	const n = 1500
	sample := func(r *rng.Rand, f func(*rng.Rand) float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = f(r)
		}
		return out
	}

	// Radial position error (positive mean, so the relative-moment criteria
	// are well-conditioned).
	gnssNoise := func(r *rng.Rand) float64 { return math.Hypot(r.Norm(0, 1.2), r.Norm(0, 1.2)) }
	lidarRange := func(r *rng.Rand) float64 { return 5 + r.Exp(0.08) }
	cameraConf := func(r *rng.Rand) float64 { return clamp01(r.Norm(0.8, 0.1)) }

	crit := simval.DefaultCriteria()
	var results []simval.Result
	for _, spec := range []struct {
		name string
		f    func(*rng.Rand) float64
	}{
		{"gnss-position-noise", gnssNoise},
		{"lidar-detection-range", lidarRange},
		{"camera-confidence", cameraConf},
	} {
		res, err := simval.Validate(spec.name,
			sample(ref.Derive(spec.name), spec.f),
			sample(syn.Derive(spec.name), spec.f), crit)
		if err != nil {
			return simval.ToolchainReport{}, fmt.Errorf("simval probe: %w", err)
		}
		results = append(results, res)
	}
	return simval.Aggregate(results), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// sotifProbe evaluates the known SOTIF scenario catalog with and without the
// drone's additional point of view, returning the with-drone report and the
// improvement the drone buys (the Fig. 2 claim as a SOTIF statement).
func sotifProbe(seed int64, trials int) (sotif.Report, sotif.Improvement) {
	analysis := sotif.NewAnalysis(0.15)
	scenarios := sotif.KnownCatalog()

	evalWith := func(droneOn bool) sotif.Report {
		return analysis.Evaluate(scenarios, func(sc sotif.Scenario) float64 {
			return DetectionMissRate(seed, sc, droneOn, trials)
		})
	}
	before := evalWith(false)
	after := evalWith(true)
	return after, sotif.CompareReports(before, after)
}

// DetectionMissRate measures the people-detection miss rate for one SOTIF
// scenario: the fraction of trials in which a worker near the forwarder is
// never confirmed within the time budget. It is the shared evaluator behind
// the E2 benchmark, the SOTIF probe and the dronecollab example.
func DetectionMissRate(seed int64, sc sotif.Scenario, droneOn bool, trials int) float64 {
	return DetectionMissRateWithPolicy(seed, sc, droneOn, trials, 2)
}

// DetectionMissRateWithPolicy is DetectionMissRate with an explicit fusion
// confirmation threshold (the E2a ablation knob).
func DetectionMissRateWithPolicy(seed int64, sc sotif.Scenario, droneOn bool, trials, confirmHits int) float64 {
	r := rng.New(seed).Derive("sotif-" + sc.ID + map[bool]string{true: "-drone", false: ""}[droneOn])
	grid, err := geo.NewGrid(60, 60, 2) // 120x120 m interaction area
	if err != nil {
		return 1
	}
	grid.GenerateForest(r.Derive("forest"), geo.ForestOptions{TreeDensity: sc.OcclusionDensity})

	fwPos := geo.V(60, 60)
	// Keep the forwarder's own cell open.
	grid.Set(grid.CellOf(fwPos), geo.Ground)

	lidar := sensors.NewLidar(r, grid)
	camera := sensors.NewCamera(r, grid)
	var aerial *sensors.AerialCamera
	if droneOn {
		aerial = sensors.NewAerialCamera(r, grid)
	}

	tr := r.Derive("trials")
	misses := 0
	const (
		ticks      = 20 // 10 s at 500 ms
		tickPeriod = 500 * time.Millisecond
	)
	for trial := 0; trial < trials; trial++ {
		// Worker appears somewhere within 30 m of the machine.
		angle := tr.Range(0, 6.28318)
		dist := tr.Range(8, 30)
		worker := fwPos.Add(geo.V(cos(angle), sin(angle)).Scale(dist))
		targets := []sensors.Target{{ID: "w", Pos: worker}}

		tracker := fusion.NewTracker(fusion.Options{ConfirmHits: confirmHits})
		dronePos := fwPos.Add(geo.V(25, 0))
		detected := false
		for tick := 0; tick < ticks; tick++ {
			now := time.Duration(tick) * tickPeriod
			dets := lidar.Scan(fwPos, targets, sc.Weather)
			dets = append(dets, camera.Scan(fwPos, targets, sc.Weather)...)
			if aerial != nil {
				// Drone orbits the machine.
				a := float64(tick) * 0.3
				dronePos = fwPos.Add(geo.V(cos(a), sin(a)).Scale(25))
				dets = append(dets, aerial.Scan(dronePos, targets, sc.Weather)...)
			}
			for _, confirmed := range tracker.Update(now, dets) {
				if confirmed.TargetID == "w" {
					detected = true
				}
			}
			if detected {
				break
			}
		}
		if !detected {
			misses++
		}
	}
	return float64(misses) / float64(trials)
}

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }
