// Package standards is the machine-readable registry of the regulations and
// standards the paper's certification pathway navigates (Sections I, II,
// IV-D): the Machinery Regulation (EU) 2023/1230 and its predecessor
// directive, the adjacent EU acts (CRA, Data Act, AI Act), and the technical
// standards the combined methodology draws on (ISO 13849, ISO 12100,
// ISO 21448, IEC 62443, ISO/SAE 21434, IEC TS 63074, ISO/CD PAS 8800,
// ISO/IEC TR 5469).
//
// On top of the registry sits a CE conformity checklist: essential
// requirements extracted from the Machinery Regulation's cybersecurity-
// relevant clauses, each mapped to the kinds of evidence this repository can
// produce, with a gap analysis for any given evidence inventory.
package standards

import (
	"fmt"
	"sort"
)

// Kind classifies a registry entry.
type Kind int

// Registry entry kinds.
const (
	KindRegulation Kind = iota + 1
	KindDirective
	KindStandard
	KindTechSpec
	KindTechReport
	KindPAS
)

// String returns a short kind label.
func (k Kind) String() string {
	switch k {
	case KindRegulation:
		return "regulation"
	case KindDirective:
		return "directive"
	case KindStandard:
		return "standard"
	case KindTechSpec:
		return "technical-specification"
	case KindTechReport:
		return "technical-report"
	case KindPAS:
		return "publicly-available-specification"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Status captures the lifecycle state relevant to conformity planning.
type Status int

// Lifecycle states.
const (
	StatusInForce Status = iota + 1
	StatusUpcoming
	StatusDraft
	StatusRepealed
)

// String returns a short status label.
func (s Status) String() string {
	switch s {
	case StatusInForce:
		return "in-force"
	case StatusUpcoming:
		return "upcoming"
	case StatusDraft:
		return "draft"
	case StatusRepealed:
		return "repealed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Entry is one regulation or standard.
type Entry struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	Org        string `json:"org"`
	Kind       Kind   `json:"kind"`
	Status     Status `json:"status"`
	Harmonized bool   `json:"harmonized"` // with Regulation (EU) 2023/1230
	// Topic summarises what the pathway uses it for.
	Topic string `json:"topic"`
}

// Registry returns all entries the paper cites, keyed by the IDs used in
// requirements.
func Registry() []Entry {
	return []Entry{
		{"REG-2023/1230", "Machinery Regulation (EU) 2023/1230", "EU", KindRegulation, StatusUpcoming, false,
			"CE essential health and safety requirements incl. cybersecurity; applies from early 2027"},
		{"DIR-2006/42", "Machinery Directive 2006/42/EC", "EU", KindDirective, StatusInForce, false,
			"Predecessor legal framework, repealed by 2023/1230"},
		{"CRA", "Cyber Resilience Act (proposal)", "EU", KindRegulation, StatusDraft, false,
			"Horizontal cybersecurity requirements for products with digital elements"},
		{"DATA-ACT", "Data Act (EU) 2023/2854", "EU", KindRegulation, StatusInForce, false,
			"Fair access to and use of data from connected machinery"},
		{"AI-ACT", "Artificial Intelligence Act (proposal)", "EU", KindRegulation, StatusDraft, false,
			"Harmonised rules for AI components in safety-critical functions"},
		{"ISO-13849", "ISO 13849:2023 Safety-related parts of control systems", "ISO", KindStandard, StatusInForce, false,
			"Performance levels for safety functions"},
		{"ISO-12100", "ISO 12100:2010 Risk assessment and risk reduction", "ISO", KindStandard, StatusInForce, false,
			"General machinery risk assessment principles"},
		{"ISO-21448", "ISO 21448:2022 Safety of the intended functionality", "ISO", KindStandard, StatusInForce, false,
			"Scenario-space analysis of performance insufficiencies (adapted from road vehicles)"},
		{"IEC-62443", "IEC 62443 Industrial communication network and system security", "IEC", KindStandard, StatusInForce, false,
			"Security levels, zones and conduits for industrial automation"},
		{"ISO-SAE-21434", "ISO/SAE 21434:2021 Road vehicles — cybersecurity engineering", "ISO/SAE", KindStandard, StatusInForce, false,
			"TARA, CAL, lifecycle cybersecurity engineering (adapted from road vehicles)"},
		{"IEC-TS-63074", "IEC TS 63074:2023 Security aspects of safety-related control systems", "IEC", KindTechSpec, StatusInForce, false,
			"Interplay: security threats compromising functional safety"},
		{"ISO-PAS-8800", "ISO/CD PAS 8800 Road vehicles — safety and artificial intelligence", "ISO", KindPAS, StatusDraft, false,
			"Guidance for developing and validating AI safety components"},
		{"ISO-IEC-TR-5469", "ISO/IEC TR 5469:2024 AI — functional safety and AI systems", "ISO/IEC", KindTechReport, StatusInForce, false,
			"Guidance on AI in functional-safety contexts"},
	}
}

// Lookup returns the registry entry with the given ID.
func Lookup(id string) (Entry, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// HarmonizedCount returns how many registry entries are harmonized with the
// Machinery Regulation — zero as of the paper's writing, which is exactly
// the gap the paper highlights.
func HarmonizedCount() int {
	n := 0
	for _, e := range Registry() {
		if e.Harmonized {
			n++
		}
	}
	return n
}

// Requirement is one conformity requirement with the evidence kinds that can
// discharge it.
type Requirement struct {
	ID         string `json:"id"`
	StandardID string `json:"standardId"`
	Clause     string `json:"clause"`
	Text       string `json:"text"`
	// EvidenceKinds lists acceptable evidence identifiers (see package core
	// for the kinds this repository produces).
	EvidenceKinds []string `json:"evidenceKinds"`
	// Mandatory requirements gate CE readiness; advisory ones improve it.
	Mandatory bool `json:"mandatory"`
}

// Requirements returns the cybersecurity-and-safety conformity checklist for
// the autonomous forestry use case.
func Requirements() []Requirement {
	return []Requirement{
		{"REQ-CORRUPTION", "REG-2023/1230", "Annex III 1.1.9",
			"Protection against corruption: connections must not lead to hazardous situations; evidence of protection against accidental or intentional corruption.",
			[]string{"secure-channel-tests", "attack-campaign", "ids-log"}, true},
		{"REQ-SAFE-CONTROL", "REG-2023/1230", "Annex III 1.2.1",
			"Control systems must withstand intended operating stresses and external influences including malicious attempts.",
			[]string{"attack-campaign", "failsafe-tests"}, true},
		{"REQ-SW-INTEGRITY", "REG-2023/1230", "Annex III 1.1.9(b)",
			"Evidence of software integrity: the machine must identify installed software and detect unauthorized modification.",
			[]string{"secure-boot-report", "attestation"}, true},
		{"REQ-RISK-ASSESS", "ISO-12100", "§5-6",
			"Iterative risk assessment and reduction covering all life-cycle phases.",
			[]string{"risk-register"}, true},
		{"REQ-PL", "ISO-13849", "§4",
			"Safety functions achieve their required performance levels.",
			[]string{"pl-analysis"}, true},
		{"REQ-TARA", "ISO-SAE-21434", "§15",
			"Threat analysis and risk assessment with treatment decisions for all threat scenarios.",
			[]string{"risk-register"}, true},
		{"REQ-SL", "IEC-62443", "3-3",
			"Zones and conduits meet their target security levels over all foundational requirements.",
			[]string{"sl-gap-analysis"}, true},
		{"REQ-INTERPLAY", "IEC-TS-63074", "§6",
			"Security risks that can compromise safety functions are identified and mitigated.",
			[]string{"interplay-analysis"}, true},
		{"REQ-SOTIF", "ISO-21448", "§7-11",
			"Performance insufficiencies and triggering conditions analysed; residual unsafe area acceptably small.",
			[]string{"sotif-report"}, true},
		{"REQ-MONITORING", "IEC-62443", "SR 6.2",
			"Continuous monitoring with timely response to security events.",
			[]string{"ids-log"}, true},
		{"REQ-AI-VALIDATION", "ISO-PAS-8800", "draft",
			"AI components validated for the target operational design domain, including simulation validity.",
			[]string{"simval-report", "sotif-report"}, false},
		{"REQ-AI-FS", "ISO-IEC-TR-5469", "guidance",
			"AI contributions to safety functions analysed for functional-safety implications.",
			[]string{"interplay-analysis", "sotif-report"}, false},
		{"REQ-DATA-GOV", "DATA-ACT", "Art. 3-5",
			"Machine-generated data access and sharing obligations addressed.",
			[]string{"data-inventory"}, false},
		{"REQ-CRA-SUPPORT", "CRA", "Annex I",
			"Vulnerability handling and security-update capability over the product lifetime.",
			[]string{"update-process", "secure-boot-report"}, false},
		{"REQ-ASSURANCE", "ISO-SAE-21434", "§6 / RQ-06-01",
			"A cybersecurity case provides the argument for cybersecurity of the item.",
			[]string{"assurance-case"}, true},
	}
}

// ReqStatus is the evaluation of one requirement against available evidence.
type ReqStatus struct {
	Requirement Requirement `json:"requirement"`
	Covered     bool        `json:"covered"`
	MatchedBy   []string    `json:"matchedBy,omitempty"`
	Missing     []string    `json:"missing,omitempty"`
}

// ConformityReport is the CE gap analysis.
type ConformityReport struct {
	Statuses []ReqStatus `json:"statuses"`
	// MandatoryCovered / MandatoryTotal gate the readiness verdict.
	MandatoryCovered int     `json:"mandatoryCovered"`
	MandatoryTotal   int     `json:"mandatoryTotal"`
	AdvisoryCovered  int     `json:"advisoryCovered"`
	AdvisoryTotal    int     `json:"advisoryTotal"`
	Readiness        float64 `json:"readiness"` // covered fraction, all requirements
	Ready            bool    `json:"ready"`     // all mandatory covered
}

// CheckConformity evaluates the checklist against an evidence inventory
// (evidence kind → references). A requirement is covered when at least one
// of its acceptable evidence kinds is present.
func CheckConformity(available map[string][]string) ConformityReport {
	reqs := Requirements()
	rep := ConformityReport{}
	covered := 0
	for _, rq := range reqs {
		st := ReqStatus{Requirement: rq}
		for _, kind := range rq.EvidenceKinds {
			if refs, ok := available[kind]; ok && len(refs) > 0 {
				st.Covered = true
				st.MatchedBy = append(st.MatchedBy, kind)
			} else {
				st.Missing = append(st.Missing, kind)
			}
		}
		sort.Strings(st.MatchedBy)
		sort.Strings(st.Missing)
		if rq.Mandatory {
			rep.MandatoryTotal++
			if st.Covered {
				rep.MandatoryCovered++
			}
		} else {
			rep.AdvisoryTotal++
			if st.Covered {
				rep.AdvisoryCovered++
			}
		}
		if st.Covered {
			covered++
		}
		rep.Statuses = append(rep.Statuses, st)
	}
	rep.Readiness = float64(covered) / float64(len(reqs))
	rep.Ready = rep.MandatoryCovered == rep.MandatoryTotal
	return rep
}
