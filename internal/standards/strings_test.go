package standards

import "testing"

func TestKindStrings(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		{KindRegulation.String(), "regulation"},
		{KindDirective.String(), "directive"},
		{KindStandard.String(), "standard"},
		{KindTechSpec.String(), "technical-specification"},
		{KindTechReport.String(), "technical-report"},
		{KindPAS.String(), "publicly-available-specification"},
		{Kind(99).String(), "kind(99)"},
		{StatusInForce.String(), "in-force"},
		{StatusUpcoming.String(), "upcoming"},
		{StatusDraft.String(), "draft"},
		{StatusRepealed.String(), "repealed"},
		{Status(99).String(), "status(99)"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Fatalf("got %q, want %q", tt.got, tt.want)
		}
	}
}

func TestMachineryRegulationUpcoming(t *testing.T) {
	// The paper: Regulation 2023/1230 is "effective from early 2027".
	e, ok := Lookup("REG-2023/1230")
	if !ok || e.Status != StatusUpcoming {
		t.Fatalf("machinery regulation status = %v/%v", e.Status, ok)
	}
	d, ok := Lookup("DIR-2006/42")
	if !ok || d.Kind != KindDirective {
		t.Fatalf("directive entry = %+v/%v", d, ok)
	}
}

func TestAdvisoryVsMandatorySplit(t *testing.T) {
	mand, adv := 0, 0
	for _, rq := range Requirements() {
		if rq.Mandatory {
			mand++
		} else {
			adv++
		}
	}
	if mand == 0 || adv == 0 {
		t.Fatalf("requirements split mand=%d adv=%d, want both present", mand, adv)
	}
}
